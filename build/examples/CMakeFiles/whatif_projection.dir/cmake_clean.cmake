file(REMOVE_RECURSE
  "CMakeFiles/whatif_projection.dir/whatif_projection.cpp.o"
  "CMakeFiles/whatif_projection.dir/whatif_projection.cpp.o.d"
  "whatif_projection"
  "whatif_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
