# Empty dependencies file for whatif_projection.
# This may be replaced when dependencies are built.
