
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/cactus/dcgan.cc" "src/workloads/CMakeFiles/cactus_workloads.dir/cactus/dcgan.cc.o" "gcc" "src/workloads/CMakeFiles/cactus_workloads.dir/cactus/dcgan.cc.o.d"
  "/root/repo/src/workloads/cactus/graph_bfs.cc" "src/workloads/CMakeFiles/cactus_workloads.dir/cactus/graph_bfs.cc.o" "gcc" "src/workloads/CMakeFiles/cactus_workloads.dir/cactus/graph_bfs.cc.o.d"
  "/root/repo/src/workloads/cactus/graph_ext.cc" "src/workloads/CMakeFiles/cactus_workloads.dir/cactus/graph_ext.cc.o" "gcc" "src/workloads/CMakeFiles/cactus_workloads.dir/cactus/graph_ext.cc.o.d"
  "/root/repo/src/workloads/cactus/ml_common.cc" "src/workloads/CMakeFiles/cactus_workloads.dir/cactus/ml_common.cc.o" "gcc" "src/workloads/CMakeFiles/cactus_workloads.dir/cactus/ml_common.cc.o.d"
  "/root/repo/src/workloads/cactus/molecular.cc" "src/workloads/CMakeFiles/cactus_workloads.dir/cactus/molecular.cc.o" "gcc" "src/workloads/CMakeFiles/cactus_workloads.dir/cactus/molecular.cc.o.d"
  "/root/repo/src/workloads/cactus/neural_style.cc" "src/workloads/CMakeFiles/cactus_workloads.dir/cactus/neural_style.cc.o" "gcc" "src/workloads/CMakeFiles/cactus_workloads.dir/cactus/neural_style.cc.o.d"
  "/root/repo/src/workloads/cactus/reinforcement.cc" "src/workloads/CMakeFiles/cactus_workloads.dir/cactus/reinforcement.cc.o" "gcc" "src/workloads/CMakeFiles/cactus_workloads.dir/cactus/reinforcement.cc.o.d"
  "/root/repo/src/workloads/cactus/spatial_transformer.cc" "src/workloads/CMakeFiles/cactus_workloads.dir/cactus/spatial_transformer.cc.o" "gcc" "src/workloads/CMakeFiles/cactus_workloads.dir/cactus/spatial_transformer.cc.o.d"
  "/root/repo/src/workloads/cactus/transformer.cc" "src/workloads/CMakeFiles/cactus_workloads.dir/cactus/transformer.cc.o" "gcc" "src/workloads/CMakeFiles/cactus_workloads.dir/cactus/transformer.cc.o.d"
  "/root/repo/src/workloads/cactus/translation.cc" "src/workloads/CMakeFiles/cactus_workloads.dir/cactus/translation.cc.o" "gcc" "src/workloads/CMakeFiles/cactus_workloads.dir/cactus/translation.cc.o.d"
  "/root/repo/src/workloads/prt/parboil.cc" "src/workloads/CMakeFiles/cactus_workloads.dir/prt/parboil.cc.o" "gcc" "src/workloads/CMakeFiles/cactus_workloads.dir/prt/parboil.cc.o.d"
  "/root/repo/src/workloads/prt/rodinia.cc" "src/workloads/CMakeFiles/cactus_workloads.dir/prt/rodinia.cc.o" "gcc" "src/workloads/CMakeFiles/cactus_workloads.dir/prt/rodinia.cc.o.d"
  "/root/repo/src/workloads/prt/tango.cc" "src/workloads/CMakeFiles/cactus_workloads.dir/prt/tango.cc.o" "gcc" "src/workloads/CMakeFiles/cactus_workloads.dir/prt/tango.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
