file(REMOVE_RECURSE
  "CMakeFiles/cactus_workloads.dir/cactus/dcgan.cc.o"
  "CMakeFiles/cactus_workloads.dir/cactus/dcgan.cc.o.d"
  "CMakeFiles/cactus_workloads.dir/cactus/graph_bfs.cc.o"
  "CMakeFiles/cactus_workloads.dir/cactus/graph_bfs.cc.o.d"
  "CMakeFiles/cactus_workloads.dir/cactus/graph_ext.cc.o"
  "CMakeFiles/cactus_workloads.dir/cactus/graph_ext.cc.o.d"
  "CMakeFiles/cactus_workloads.dir/cactus/ml_common.cc.o"
  "CMakeFiles/cactus_workloads.dir/cactus/ml_common.cc.o.d"
  "CMakeFiles/cactus_workloads.dir/cactus/molecular.cc.o"
  "CMakeFiles/cactus_workloads.dir/cactus/molecular.cc.o.d"
  "CMakeFiles/cactus_workloads.dir/cactus/neural_style.cc.o"
  "CMakeFiles/cactus_workloads.dir/cactus/neural_style.cc.o.d"
  "CMakeFiles/cactus_workloads.dir/cactus/reinforcement.cc.o"
  "CMakeFiles/cactus_workloads.dir/cactus/reinforcement.cc.o.d"
  "CMakeFiles/cactus_workloads.dir/cactus/spatial_transformer.cc.o"
  "CMakeFiles/cactus_workloads.dir/cactus/spatial_transformer.cc.o.d"
  "CMakeFiles/cactus_workloads.dir/cactus/transformer.cc.o"
  "CMakeFiles/cactus_workloads.dir/cactus/transformer.cc.o.d"
  "CMakeFiles/cactus_workloads.dir/cactus/translation.cc.o"
  "CMakeFiles/cactus_workloads.dir/cactus/translation.cc.o.d"
  "CMakeFiles/cactus_workloads.dir/prt/parboil.cc.o"
  "CMakeFiles/cactus_workloads.dir/prt/parboil.cc.o.d"
  "CMakeFiles/cactus_workloads.dir/prt/rodinia.cc.o"
  "CMakeFiles/cactus_workloads.dir/prt/rodinia.cc.o.d"
  "CMakeFiles/cactus_workloads.dir/prt/tango.cc.o"
  "CMakeFiles/cactus_workloads.dir/prt/tango.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cactus_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
