# Empty dependencies file for cactus_workloads.
# This may be replaced when dependencies are built.
