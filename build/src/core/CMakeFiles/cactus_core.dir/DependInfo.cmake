
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/benchmark.cc" "src/core/CMakeFiles/cactus_core.dir/benchmark.cc.o" "gcc" "src/core/CMakeFiles/cactus_core.dir/benchmark.cc.o.d"
  "/root/repo/src/core/harness.cc" "src/core/CMakeFiles/cactus_core.dir/harness.cc.o" "gcc" "src/core/CMakeFiles/cactus_core.dir/harness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/cactus_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cactus_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
