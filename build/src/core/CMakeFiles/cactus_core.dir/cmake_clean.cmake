file(REMOVE_RECURSE
  "CMakeFiles/cactus_core.dir/benchmark.cc.o"
  "CMakeFiles/cactus_core.dir/benchmark.cc.o.d"
  "CMakeFiles/cactus_core.dir/harness.cc.o"
  "CMakeFiles/cactus_core.dir/harness.cc.o.d"
  "libcactus_core.a"
  "libcactus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cactus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
