# Empty dependencies file for cactus_core.
# This may be replaced when dependencies are built.
