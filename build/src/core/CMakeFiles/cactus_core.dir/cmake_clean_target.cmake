file(REMOVE_RECURSE
  "libcactus_core.a"
)
