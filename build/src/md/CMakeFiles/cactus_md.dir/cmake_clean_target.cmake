file(REMOVE_RECURSE
  "libcactus_md.a"
)
