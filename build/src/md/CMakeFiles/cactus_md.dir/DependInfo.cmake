
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/md/engine.cc" "src/md/CMakeFiles/cactus_md.dir/engine.cc.o" "gcc" "src/md/CMakeFiles/cactus_md.dir/engine.cc.o.d"
  "/root/repo/src/md/forces.cc" "src/md/CMakeFiles/cactus_md.dir/forces.cc.o" "gcc" "src/md/CMakeFiles/cactus_md.dir/forces.cc.o.d"
  "/root/repo/src/md/neighbor.cc" "src/md/CMakeFiles/cactus_md.dir/neighbor.cc.o" "gcc" "src/md/CMakeFiles/cactus_md.dir/neighbor.cc.o.d"
  "/root/repo/src/md/pme.cc" "src/md/CMakeFiles/cactus_md.dir/pme.cc.o" "gcc" "src/md/CMakeFiles/cactus_md.dir/pme.cc.o.d"
  "/root/repo/src/md/system.cc" "src/md/CMakeFiles/cactus_md.dir/system.cc.o" "gcc" "src/md/CMakeFiles/cactus_md.dir/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/cactus_gpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
