# Empty compiler generated dependencies file for cactus_md.
# This may be replaced when dependencies are built.
