file(REMOVE_RECURSE
  "CMakeFiles/cactus_md.dir/engine.cc.o"
  "CMakeFiles/cactus_md.dir/engine.cc.o.d"
  "CMakeFiles/cactus_md.dir/forces.cc.o"
  "CMakeFiles/cactus_md.dir/forces.cc.o.d"
  "CMakeFiles/cactus_md.dir/neighbor.cc.o"
  "CMakeFiles/cactus_md.dir/neighbor.cc.o.d"
  "CMakeFiles/cactus_md.dir/pme.cc.o"
  "CMakeFiles/cactus_md.dir/pme.cc.o.d"
  "CMakeFiles/cactus_md.dir/system.cc.o"
  "CMakeFiles/cactus_md.dir/system.cc.o.d"
  "libcactus_md.a"
  "libcactus_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cactus_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
