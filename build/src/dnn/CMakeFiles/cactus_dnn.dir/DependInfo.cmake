
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnn/layers.cc" "src/dnn/CMakeFiles/cactus_dnn.dir/layers.cc.o" "gcc" "src/dnn/CMakeFiles/cactus_dnn.dir/layers.cc.o.d"
  "/root/repo/src/dnn/ops.cc" "src/dnn/CMakeFiles/cactus_dnn.dir/ops.cc.o" "gcc" "src/dnn/CMakeFiles/cactus_dnn.dir/ops.cc.o.d"
  "/root/repo/src/dnn/optim.cc" "src/dnn/CMakeFiles/cactus_dnn.dir/optim.cc.o" "gcc" "src/dnn/CMakeFiles/cactus_dnn.dir/optim.cc.o.d"
  "/root/repo/src/dnn/spatial.cc" "src/dnn/CMakeFiles/cactus_dnn.dir/spatial.cc.o" "gcc" "src/dnn/CMakeFiles/cactus_dnn.dir/spatial.cc.o.d"
  "/root/repo/src/dnn/tensor.cc" "src/dnn/CMakeFiles/cactus_dnn.dir/tensor.cc.o" "gcc" "src/dnn/CMakeFiles/cactus_dnn.dir/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/cactus_gpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
