# Empty compiler generated dependencies file for cactus_dnn.
# This may be replaced when dependencies are built.
