file(REMOVE_RECURSE
  "CMakeFiles/cactus_dnn.dir/layers.cc.o"
  "CMakeFiles/cactus_dnn.dir/layers.cc.o.d"
  "CMakeFiles/cactus_dnn.dir/ops.cc.o"
  "CMakeFiles/cactus_dnn.dir/ops.cc.o.d"
  "CMakeFiles/cactus_dnn.dir/optim.cc.o"
  "CMakeFiles/cactus_dnn.dir/optim.cc.o.d"
  "CMakeFiles/cactus_dnn.dir/spatial.cc.o"
  "CMakeFiles/cactus_dnn.dir/spatial.cc.o.d"
  "CMakeFiles/cactus_dnn.dir/tensor.cc.o"
  "CMakeFiles/cactus_dnn.dir/tensor.cc.o.d"
  "libcactus_dnn.a"
  "libcactus_dnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cactus_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
