file(REMOVE_RECURSE
  "libcactus_dnn.a"
)
