# Empty compiler generated dependencies file for cactus_analysis.
# This may be replaced when dependencies are built.
