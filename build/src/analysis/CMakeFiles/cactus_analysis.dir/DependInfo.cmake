
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/eigen.cc" "src/analysis/CMakeFiles/cactus_analysis.dir/eigen.cc.o" "gcc" "src/analysis/CMakeFiles/cactus_analysis.dir/eigen.cc.o.d"
  "/root/repo/src/analysis/famd.cc" "src/analysis/CMakeFiles/cactus_analysis.dir/famd.cc.o" "gcc" "src/analysis/CMakeFiles/cactus_analysis.dir/famd.cc.o.d"
  "/root/repo/src/analysis/hcluster.cc" "src/analysis/CMakeFiles/cactus_analysis.dir/hcluster.cc.o" "gcc" "src/analysis/CMakeFiles/cactus_analysis.dir/hcluster.cc.o.d"
  "/root/repo/src/analysis/matrix.cc" "src/analysis/CMakeFiles/cactus_analysis.dir/matrix.cc.o" "gcc" "src/analysis/CMakeFiles/cactus_analysis.dir/matrix.cc.o.d"
  "/root/repo/src/analysis/pearson.cc" "src/analysis/CMakeFiles/cactus_analysis.dir/pearson.cc.o" "gcc" "src/analysis/CMakeFiles/cactus_analysis.dir/pearson.cc.o.d"
  "/root/repo/src/analysis/report.cc" "src/analysis/CMakeFiles/cactus_analysis.dir/report.cc.o" "gcc" "src/analysis/CMakeFiles/cactus_analysis.dir/report.cc.o.d"
  "/root/repo/src/analysis/roofline.cc" "src/analysis/CMakeFiles/cactus_analysis.dir/roofline.cc.o" "gcc" "src/analysis/CMakeFiles/cactus_analysis.dir/roofline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/cactus_gpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
