file(REMOVE_RECURSE
  "libcactus_analysis.a"
)
