file(REMOVE_RECURSE
  "CMakeFiles/cactus_analysis.dir/eigen.cc.o"
  "CMakeFiles/cactus_analysis.dir/eigen.cc.o.d"
  "CMakeFiles/cactus_analysis.dir/famd.cc.o"
  "CMakeFiles/cactus_analysis.dir/famd.cc.o.d"
  "CMakeFiles/cactus_analysis.dir/hcluster.cc.o"
  "CMakeFiles/cactus_analysis.dir/hcluster.cc.o.d"
  "CMakeFiles/cactus_analysis.dir/matrix.cc.o"
  "CMakeFiles/cactus_analysis.dir/matrix.cc.o.d"
  "CMakeFiles/cactus_analysis.dir/pearson.cc.o"
  "CMakeFiles/cactus_analysis.dir/pearson.cc.o.d"
  "CMakeFiles/cactus_analysis.dir/report.cc.o"
  "CMakeFiles/cactus_analysis.dir/report.cc.o.d"
  "CMakeFiles/cactus_analysis.dir/roofline.cc.o"
  "CMakeFiles/cactus_analysis.dir/roofline.cc.o.d"
  "libcactus_analysis.a"
  "libcactus_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cactus_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
