file(REMOVE_RECURSE
  "libcactus_graph.a"
)
