file(REMOVE_RECURSE
  "CMakeFiles/cactus_graph.dir/bfs.cc.o"
  "CMakeFiles/cactus_graph.dir/bfs.cc.o.d"
  "CMakeFiles/cactus_graph.dir/csr.cc.o"
  "CMakeFiles/cactus_graph.dir/csr.cc.o.d"
  "CMakeFiles/cactus_graph.dir/primitives.cc.o"
  "CMakeFiles/cactus_graph.dir/primitives.cc.o.d"
  "libcactus_graph.a"
  "libcactus_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cactus_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
