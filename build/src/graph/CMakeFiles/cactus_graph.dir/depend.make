# Empty dependencies file for cactus_graph.
# This may be replaced when dependencies are built.
