# Empty compiler generated dependencies file for cactus_gpu.
# This may be replaced when dependencies are built.
