file(REMOVE_RECURSE
  "libcactus_gpu.a"
)
