file(REMOVE_RECURSE
  "CMakeFiles/cactus_gpu.dir/cache.cc.o"
  "CMakeFiles/cactus_gpu.dir/cache.cc.o.d"
  "CMakeFiles/cactus_gpu.dir/coalescer.cc.o"
  "CMakeFiles/cactus_gpu.dir/coalescer.cc.o.d"
  "CMakeFiles/cactus_gpu.dir/device.cc.o"
  "CMakeFiles/cactus_gpu.dir/device.cc.o.d"
  "CMakeFiles/cactus_gpu.dir/metrics.cc.o"
  "CMakeFiles/cactus_gpu.dir/metrics.cc.o.d"
  "CMakeFiles/cactus_gpu.dir/occupancy.cc.o"
  "CMakeFiles/cactus_gpu.dir/occupancy.cc.o.d"
  "CMakeFiles/cactus_gpu.dir/profiler.cc.o"
  "CMakeFiles/cactus_gpu.dir/profiler.cc.o.d"
  "CMakeFiles/cactus_gpu.dir/timing.cc.o"
  "CMakeFiles/cactus_gpu.dir/timing.cc.o.d"
  "CMakeFiles/cactus_gpu.dir/trace.cc.o"
  "CMakeFiles/cactus_gpu.dir/trace.cc.o.d"
  "libcactus_gpu.a"
  "libcactus_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cactus_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
