
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/cache.cc" "src/gpu/CMakeFiles/cactus_gpu.dir/cache.cc.o" "gcc" "src/gpu/CMakeFiles/cactus_gpu.dir/cache.cc.o.d"
  "/root/repo/src/gpu/coalescer.cc" "src/gpu/CMakeFiles/cactus_gpu.dir/coalescer.cc.o" "gcc" "src/gpu/CMakeFiles/cactus_gpu.dir/coalescer.cc.o.d"
  "/root/repo/src/gpu/device.cc" "src/gpu/CMakeFiles/cactus_gpu.dir/device.cc.o" "gcc" "src/gpu/CMakeFiles/cactus_gpu.dir/device.cc.o.d"
  "/root/repo/src/gpu/metrics.cc" "src/gpu/CMakeFiles/cactus_gpu.dir/metrics.cc.o" "gcc" "src/gpu/CMakeFiles/cactus_gpu.dir/metrics.cc.o.d"
  "/root/repo/src/gpu/occupancy.cc" "src/gpu/CMakeFiles/cactus_gpu.dir/occupancy.cc.o" "gcc" "src/gpu/CMakeFiles/cactus_gpu.dir/occupancy.cc.o.d"
  "/root/repo/src/gpu/profiler.cc" "src/gpu/CMakeFiles/cactus_gpu.dir/profiler.cc.o" "gcc" "src/gpu/CMakeFiles/cactus_gpu.dir/profiler.cc.o.d"
  "/root/repo/src/gpu/timing.cc" "src/gpu/CMakeFiles/cactus_gpu.dir/timing.cc.o" "gcc" "src/gpu/CMakeFiles/cactus_gpu.dir/timing.cc.o.d"
  "/root/repo/src/gpu/trace.cc" "src/gpu/CMakeFiles/cactus_gpu.dir/trace.cc.o" "gcc" "src/gpu/CMakeFiles/cactus_gpu.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
