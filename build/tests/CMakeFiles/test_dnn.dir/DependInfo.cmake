
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dnn/im2col_test.cc" "tests/CMakeFiles/test_dnn.dir/dnn/im2col_test.cc.o" "gcc" "tests/CMakeFiles/test_dnn.dir/dnn/im2col_test.cc.o.d"
  "/root/repo/tests/dnn/layers_grad_test.cc" "tests/CMakeFiles/test_dnn.dir/dnn/layers_grad_test.cc.o" "gcc" "tests/CMakeFiles/test_dnn.dir/dnn/layers_grad_test.cc.o.d"
  "/root/repo/tests/dnn/ops_test.cc" "tests/CMakeFiles/test_dnn.dir/dnn/ops_test.cc.o" "gcc" "tests/CMakeFiles/test_dnn.dir/dnn/ops_test.cc.o.d"
  "/root/repo/tests/dnn/training_test.cc" "tests/CMakeFiles/test_dnn.dir/dnn/training_test.cc.o" "gcc" "tests/CMakeFiles/test_dnn.dir/dnn/training_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dnn/CMakeFiles/cactus_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/cactus_gpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
