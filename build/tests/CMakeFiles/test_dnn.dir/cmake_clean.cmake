file(REMOVE_RECURSE
  "CMakeFiles/test_dnn.dir/dnn/im2col_test.cc.o"
  "CMakeFiles/test_dnn.dir/dnn/im2col_test.cc.o.d"
  "CMakeFiles/test_dnn.dir/dnn/layers_grad_test.cc.o"
  "CMakeFiles/test_dnn.dir/dnn/layers_grad_test.cc.o.d"
  "CMakeFiles/test_dnn.dir/dnn/ops_test.cc.o"
  "CMakeFiles/test_dnn.dir/dnn/ops_test.cc.o.d"
  "CMakeFiles/test_dnn.dir/dnn/training_test.cc.o"
  "CMakeFiles/test_dnn.dir/dnn/training_test.cc.o.d"
  "test_dnn"
  "test_dnn.pdb"
  "test_dnn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
