
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gpu/cache_test.cc" "tests/CMakeFiles/test_gpu.dir/gpu/cache_test.cc.o" "gcc" "tests/CMakeFiles/test_gpu.dir/gpu/cache_test.cc.o.d"
  "/root/repo/tests/gpu/coalescer_test.cc" "tests/CMakeFiles/test_gpu.dir/gpu/coalescer_test.cc.o" "gcc" "tests/CMakeFiles/test_gpu.dir/gpu/coalescer_test.cc.o.d"
  "/root/repo/tests/gpu/device_test.cc" "tests/CMakeFiles/test_gpu.dir/gpu/device_test.cc.o" "gcc" "tests/CMakeFiles/test_gpu.dir/gpu/device_test.cc.o.d"
  "/root/repo/tests/gpu/memory_model_test.cc" "tests/CMakeFiles/test_gpu.dir/gpu/memory_model_test.cc.o" "gcc" "tests/CMakeFiles/test_gpu.dir/gpu/memory_model_test.cc.o.d"
  "/root/repo/tests/gpu/occupancy_test.cc" "tests/CMakeFiles/test_gpu.dir/gpu/occupancy_test.cc.o" "gcc" "tests/CMakeFiles/test_gpu.dir/gpu/occupancy_test.cc.o.d"
  "/root/repo/tests/gpu/presets_test.cc" "tests/CMakeFiles/test_gpu.dir/gpu/presets_test.cc.o" "gcc" "tests/CMakeFiles/test_gpu.dir/gpu/presets_test.cc.o.d"
  "/root/repo/tests/gpu/profiler_test.cc" "tests/CMakeFiles/test_gpu.dir/gpu/profiler_test.cc.o" "gcc" "tests/CMakeFiles/test_gpu.dir/gpu/profiler_test.cc.o.d"
  "/root/repo/tests/gpu/timing_test.cc" "tests/CMakeFiles/test_gpu.dir/gpu/timing_test.cc.o" "gcc" "tests/CMakeFiles/test_gpu.dir/gpu/timing_test.cc.o.d"
  "/root/repo/tests/gpu/trace_test.cc" "tests/CMakeFiles/test_gpu.dir/gpu/trace_test.cc.o" "gcc" "tests/CMakeFiles/test_gpu.dir/gpu/trace_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/cactus_gpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
