file(REMOVE_RECURSE
  "CMakeFiles/test_gpu.dir/gpu/cache_test.cc.o"
  "CMakeFiles/test_gpu.dir/gpu/cache_test.cc.o.d"
  "CMakeFiles/test_gpu.dir/gpu/coalescer_test.cc.o"
  "CMakeFiles/test_gpu.dir/gpu/coalescer_test.cc.o.d"
  "CMakeFiles/test_gpu.dir/gpu/device_test.cc.o"
  "CMakeFiles/test_gpu.dir/gpu/device_test.cc.o.d"
  "CMakeFiles/test_gpu.dir/gpu/memory_model_test.cc.o"
  "CMakeFiles/test_gpu.dir/gpu/memory_model_test.cc.o.d"
  "CMakeFiles/test_gpu.dir/gpu/occupancy_test.cc.o"
  "CMakeFiles/test_gpu.dir/gpu/occupancy_test.cc.o.d"
  "CMakeFiles/test_gpu.dir/gpu/presets_test.cc.o"
  "CMakeFiles/test_gpu.dir/gpu/presets_test.cc.o.d"
  "CMakeFiles/test_gpu.dir/gpu/profiler_test.cc.o"
  "CMakeFiles/test_gpu.dir/gpu/profiler_test.cc.o.d"
  "CMakeFiles/test_gpu.dir/gpu/timing_test.cc.o"
  "CMakeFiles/test_gpu.dir/gpu/timing_test.cc.o.d"
  "CMakeFiles/test_gpu.dir/gpu/trace_test.cc.o"
  "CMakeFiles/test_gpu.dir/gpu/trace_test.cc.o.d"
  "test_gpu"
  "test_gpu.pdb"
  "test_gpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
