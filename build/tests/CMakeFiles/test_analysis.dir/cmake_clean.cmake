file(REMOVE_RECURSE
  "CMakeFiles/test_analysis.dir/analysis/famd_hcluster_test.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/famd_hcluster_test.cc.o.d"
  "CMakeFiles/test_analysis.dir/analysis/matrix_eigen_test.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/matrix_eigen_test.cc.o.d"
  "CMakeFiles/test_analysis.dir/analysis/pearson_test.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/pearson_test.cc.o.d"
  "CMakeFiles/test_analysis.dir/analysis/roofline_report_test.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/roofline_report_test.cc.o.d"
  "test_analysis"
  "test_analysis.pdb"
  "test_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
