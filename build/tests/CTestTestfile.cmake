# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_gpu[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_md[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_dnn[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
