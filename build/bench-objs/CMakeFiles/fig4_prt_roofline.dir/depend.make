# Empty dependencies file for fig4_prt_roofline.
# This may be replaced when dependencies are built.
