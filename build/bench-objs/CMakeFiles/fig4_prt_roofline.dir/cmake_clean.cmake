file(REMOVE_RECURSE
  "../bench/fig4_prt_roofline"
  "../bench/fig4_prt_roofline.pdb"
  "CMakeFiles/fig4_prt_roofline.dir/fig4_prt_roofline.cc.o"
  "CMakeFiles/fig4_prt_roofline.dir/fig4_prt_roofline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_prt_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
