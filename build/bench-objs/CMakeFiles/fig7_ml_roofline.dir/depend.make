# Empty dependencies file for fig7_ml_roofline.
# This may be replaced when dependencies are built.
