file(REMOVE_RECURSE
  "../bench/fig7_ml_roofline"
  "../bench/fig7_ml_roofline.pdb"
  "CMakeFiles/fig7_ml_roofline.dir/fig7_ml_roofline.cc.o"
  "CMakeFiles/fig7_ml_roofline.dir/fig7_ml_roofline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_ml_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
