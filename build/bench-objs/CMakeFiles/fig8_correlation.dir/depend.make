# Empty dependencies file for fig8_correlation.
# This may be replaced when dependencies are built.
