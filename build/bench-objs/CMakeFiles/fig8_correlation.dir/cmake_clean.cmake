file(REMOVE_RECURSE
  "../bench/fig8_correlation"
  "../bench/fig8_correlation.pdb"
  "CMakeFiles/fig8_correlation.dir/fig8_correlation.cc.o"
  "CMakeFiles/fig8_correlation.dir/fig8_correlation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
