# Empty compiler generated dependencies file for ablation_simulator.
# This may be replaced when dependencies are built.
