file(REMOVE_RECURSE
  "../bench/ablation_simulator"
  "../bench/ablation_simulator.pdb"
  "CMakeFiles/ablation_simulator.dir/ablation_simulator.cc.o"
  "CMakeFiles/ablation_simulator.dir/ablation_simulator.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
