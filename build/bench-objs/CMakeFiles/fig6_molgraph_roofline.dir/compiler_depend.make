# Empty compiler generated dependencies file for fig6_molgraph_roofline.
# This may be replaced when dependencies are built.
