file(REMOVE_RECURSE
  "../bench/fig6_molgraph_roofline"
  "../bench/fig6_molgraph_roofline.pdb"
  "CMakeFiles/fig6_molgraph_roofline.dir/fig6_molgraph_roofline.cc.o"
  "CMakeFiles/fig6_molgraph_roofline.dir/fig6_molgraph_roofline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_molgraph_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
