# Empty dependencies file for table1_cactus_stats.
# This may be replaced when dependencies are built.
