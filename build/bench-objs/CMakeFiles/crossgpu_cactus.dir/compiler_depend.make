# Empty compiler generated dependencies file for crossgpu_cactus.
# This may be replaced when dependencies are built.
