file(REMOVE_RECURSE
  "../bench/crossgpu_cactus"
  "../bench/crossgpu_cactus.pdb"
  "CMakeFiles/crossgpu_cactus.dir/crossgpu_cactus.cc.o"
  "CMakeFiles/crossgpu_cactus.dir/crossgpu_cactus.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossgpu_cactus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
