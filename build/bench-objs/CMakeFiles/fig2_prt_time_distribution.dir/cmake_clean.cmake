file(REMOVE_RECURSE
  "../bench/fig2_prt_time_distribution"
  "../bench/fig2_prt_time_distribution.pdb"
  "CMakeFiles/fig2_prt_time_distribution.dir/fig2_prt_time_distribution.cc.o"
  "CMakeFiles/fig2_prt_time_distribution.dir/fig2_prt_time_distribution.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_prt_time_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
