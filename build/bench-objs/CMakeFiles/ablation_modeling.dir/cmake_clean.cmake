file(REMOVE_RECURSE
  "../bench/ablation_modeling"
  "../bench/ablation_modeling.pdb"
  "CMakeFiles/ablation_modeling.dir/ablation_modeling.cc.o"
  "CMakeFiles/ablation_modeling.dir/ablation_modeling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_modeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
