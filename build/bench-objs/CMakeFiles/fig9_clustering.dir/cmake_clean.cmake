file(REMOVE_RECURSE
  "../bench/fig9_clustering"
  "../bench/fig9_clustering.pdb"
  "CMakeFiles/fig9_clustering.dir/fig9_clustering.cc.o"
  "CMakeFiles/fig9_clustering.dir/fig9_clustering.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
