# Empty dependencies file for fig9_clustering.
# This may be replaced when dependencies are built.
