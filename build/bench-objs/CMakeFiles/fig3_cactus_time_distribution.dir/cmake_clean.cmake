file(REMOVE_RECURSE
  "../bench/fig3_cactus_time_distribution"
  "../bench/fig3_cactus_time_distribution.pdb"
  "CMakeFiles/fig3_cactus_time_distribution.dir/fig3_cactus_time_distribution.cc.o"
  "CMakeFiles/fig3_cactus_time_distribution.dir/fig3_cactus_time_distribution.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_cactus_time_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
