# Empty compiler generated dependencies file for fig3_cactus_time_distribution.
# This may be replaced when dependencies are built.
