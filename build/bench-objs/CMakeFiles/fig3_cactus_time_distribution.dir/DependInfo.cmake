
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig3_cactus_time_distribution.cc" "bench-objs/CMakeFiles/fig3_cactus_time_distribution.dir/fig3_cactus_time_distribution.cc.o" "gcc" "bench-objs/CMakeFiles/fig3_cactus_time_distribution.dir/fig3_cactus_time_distribution.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cactus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cactus_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/cactus_md.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cactus_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/cactus_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/cactus_gpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
