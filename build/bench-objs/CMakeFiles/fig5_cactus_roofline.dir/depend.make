# Empty dependencies file for fig5_cactus_roofline.
# This may be replaced when dependencies are built.
