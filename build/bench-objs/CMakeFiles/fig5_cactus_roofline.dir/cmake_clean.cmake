file(REMOVE_RECURSE
  "../bench/fig5_cactus_roofline"
  "../bench/fig5_cactus_roofline.pdb"
  "CMakeFiles/fig5_cactus_roofline.dir/fig5_cactus_roofline.cc.o"
  "CMakeFiles/fig5_cactus_roofline.dir/fig5_cactus_roofline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_cactus_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
