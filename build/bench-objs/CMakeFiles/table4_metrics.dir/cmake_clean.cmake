file(REMOVE_RECURSE
  "../bench/table4_metrics"
  "../bench/table4_metrics.pdb"
  "CMakeFiles/table4_metrics.dir/table4_metrics.cc.o"
  "CMakeFiles/table4_metrics.dir/table4_metrics.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
