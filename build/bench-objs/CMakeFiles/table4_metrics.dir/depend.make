# Empty dependencies file for table4_metrics.
# This may be replaced when dependencies are built.
