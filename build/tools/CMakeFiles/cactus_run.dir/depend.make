# Empty dependencies file for cactus_run.
# This may be replaced when dependencies are built.
