file(REMOVE_RECURSE
  "CMakeFiles/cactus_run.dir/cactus_run.cc.o"
  "CMakeFiles/cactus_run.dir/cactus_run.cc.o.d"
  "cactus_run"
  "cactus_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cactus_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
