/**
 * @file
 * Molecular-dynamics example: build a solvated-protein-like system, run
 * an NPT equilibration on the simulated GPU (the GMS configuration of
 * the Cactus suite), and report thermodynamics plus the GPU-time
 * distribution over the kernel pipeline.
 *
 * Build & run:  ./build/examples/md_simulation
 */

#include <cstdio>

#include "gpu/profiler.hh"
#include "md/engine.hh"

int
main()
{
    using namespace cactus;

    Rng rng(42);
    auto system = md::ParticleSystem::proteinLike(2000, rng);
    std::printf("system: %d atoms, %zu bonds, %zu angles, "
                "%zu dihedrals, box %.2f\n",
                system.numAtoms(), system.bonds.size(),
                system.angles.size(), system.dihedrals.size(),
                system.box);

    md::MdConfig cfg;
    cfg.steps = 10;
    cfg.pairStyle = md::PairStyle::NbnxnEwald;
    cfg.bonded = true;
    cfg.pme = true;
    cfg.pmeGrid = 16;
    cfg.constraints = true;
    cfg.ensemble = md::Ensemble::NPT;
    cfg.targetTemp = 1.0f;

    gpu::Device dev;
    md::Simulation sim(std::move(system), cfg);

    std::printf("\n%6s %12s %12s %10s\n", "step", "potential",
                "kinetic", "temp");
    for (int s = 0; s < cfg.steps; ++s) {
        sim.step(dev);
        const auto &obs = sim.lastObservables();
        std::printf("%6d %12.2f %12.2f %10.3f\n", s + 1,
                    obs.potential, obs.kinetic, obs.temperature);
    }

    // Where did the GPU time go?
    const auto profiles =
        gpu::aggregateLaunches(dev.launches(), dev.config());
    double total = 0;
    for (const auto &kp : profiles)
        total += kp.seconds;
    std::printf("\nGPU time by kernel (%zu kernels, %.2f ms "
                "simulated):\n",
                profiles.size(), total * 1e3);
    for (const auto &kp : profiles) {
        std::printf("  %-24s %6.1f%%  (%llu launches, II %.1f)\n",
                    kp.name.c_str(), 100.0 * kp.seconds / total,
                    static_cast<unsigned long long>(kp.invocations),
                    kp.metrics.instIntensity);
    }
    std::printf("\nNote the mixed profile: the pair kernel is "
                "compute-intensive while the\nPME and integration "
                "kernels are memory-intensive - the paper's "
                "Observation #6.\n");
    return 0;
}
