/**
 * @file
 * What-if projection example: capture a workload's launch trace once,
 * then project its runtime onto other GPU platforms offline — the
 * trace-replay workflow the paper's future work describes, without
 * re-running the workload.
 *
 * Build & run:  ./build/examples/whatif_projection
 */

#include <cstdio>

#include "core/benchmark.hh"
#include "gpu/trace.hh"

int
main()
{
    using namespace cactus;

    // 1. Run a workload once and capture its trace.
    auto bench = core::Registry::instance().create("stencil",
                                                   core::Scale::Small);
    gpu::Device dev(gpu::DeviceConfig::scaledExperiment());
    bench->run(dev);
    double recorded = 0;
    for (const auto &l : dev.launches())
        recorded += l.timing.seconds;
    std::printf("captured %zu launches of '%s' (%.3f ms on the "
                "RTX 3080 model)\n\n",
                dev.launches().size(), bench->name().c_str(),
                recorded * 1e3);

    // 2. Serialize and reload - in a real workflow this happens in a
    // different process or on a different day.
    const char *path = "/tmp/cactus_whatif.jsonl";
    gpu::writeLaunchTrace(path, dev.launches());
    auto trace = gpu::readLaunchTrace(path);

    // 3. Project onto other platforms by re-running only the timing
    // model: instruction counts and memory traffic stay fixed.
    struct Target
    {
        const char *label;
        gpu::DeviceConfig cfg;
    };
    const Target targets[] = {
        {"RTX 2080 Ti", gpu::DeviceConfig::rtx2080Ti()},
        {"RTX 3080", gpu::DeviceConfig{}},
        {"A100", gpu::DeviceConfig::a100()},
    };
    double projected[3];
    for (int i = 0; i < 3; ++i) {
        auto copy = trace;
        projected[i] = gpu::retimeTrace(targets[i].cfg, copy);
    }
    const double base = projected[1]; // RTX 3080.
    std::printf("%-12s %12s %10s\n", "platform", "projected",
                "vs 3080");
    for (int i = 0; i < 3; ++i) {
        std::printf("%-12s %9.3f ms %9.2fx\n", targets[i].label,
                    projected[i] * 1e3,
                    projected[i] > 0 ? base / projected[i] : 0.0);
    }
    std::printf("\nA stencil is bandwidth-bound: the projections track "
                "the platforms'\nDRAM bandwidth (616 / 760 / 1555 "
                "GB/s), not their compute rates.\n");
    return 0;
}
