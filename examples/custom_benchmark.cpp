/**
 * @file
 * Extending the suite: define a new benchmark, register it, run it
 * under the profiling harness next to the built-in suites, and place
 * it on the roofline. This is the workflow for adding the "additional
 * modern-day applications" the paper lists as future work.
 *
 * Build & run:  ./build/examples/custom_benchmark
 */

#include <cstdio>
#include <vector>

#include "analysis/roofline.hh"
#include "core/harness.hh"

namespace {

using namespace cactus;

/**
 * A made-up two-phase application: a gather-heavy sparse phase and a
 * dense compute phase - enough to get a mixed kernel profile.
 */
class MySparseDense : public core::Benchmark
{
  public:
    explicit MySparseDense(core::Scale) {}

    std::string name() const override { return "my_sparse_dense"; }
    std::string suite() const override { return "Custom"; }
    std::string domain() const override { return "Demo"; }

    void
    run(gpu::Device &dev) override
    {
        const int n = 1 << 18;
        std::vector<float> data(n, 1.f), out(n, 0.f);
        std::vector<int> idx(n);
        for (int i = 0; i < n; ++i)
            idx[i] = (i * 2654435761u) % n;

        // Phase 1: random gather (memory-intensive).
        dev.launchLinear(
            gpu::KernelDesc("sparse_gather", 24), n, 256,
            [&](gpu::ThreadCtx &ctx) {
                const auto i = ctx.globalId();
                const int j = ctx.ld(&idx[i]);
                ctx.fp32(2);
                ctx.st(&out[i], ctx.ld(&data[j]) * 1.5f + 0.5f);
            });

        // Phase 2: dense iteration (compute-intensive).
        dev.launchLinear(
            gpu::KernelDesc("dense_iterate", 40), n, 256,
            [&](gpu::ThreadCtx &ctx) {
                const auto i = ctx.globalId();
                float v = ctx.ld(&out[i]);
                for (int k = 0; k < 200; ++k)
                    v = v * 0.999f + 0.001f;
                ctx.fp32(200);
                ctx.st(&out[i], v);
            });
    }
};

// One macro call adds it to the global registry.
CACTUS_REGISTER_BENCHMARK(MySparseDense, "my_sparse_dense", "Custom",
                          "Demo");

} // namespace

int
main()
{
    using namespace cactus;

    // The registry now contains the built-in suites plus ours.
    std::printf("registered suites:\n");
    for (const char *suite : {"Cactus", "Parboil", "Rodinia", "Tango",
                              "Custom"}) {
        std::printf("  %-8s %2zu benchmarks\n", suite,
                    core::Registry::instance().list(suite).size());
    }

    // Run ours through the same harness the paper's analyses use.
    const auto profile = core::runProfiled("my_sparse_dense",
                                           core::Scale::Small);
    const analysis::Roofline roof(profile.config);
    std::printf("\nprofile of %s: %d kernels, %.3f ms\n",
                profile.name.c_str(), profile.kernelCount(),
                profile.totalSeconds * 1e3);
    for (const auto &kp : profile.kernels) {
        std::printf("  %-16s II %8.2f  GIPS %8.2f  -> %s-intensive\n",
                    kp.name.c_str(), kp.metrics.instIntensity,
                    kp.metrics.gips,
                    analysis::intensityClassName(roof.classifyIntensity(
                        kp.metrics.instIntensity)));
    }
    std::printf("\naggregate: II %.2f, %.2f GIPS -> a mixed-kernel "
                "application,\nlike the real-life workloads Cactus "
                "argues for.\n",
                profile.aggregateIntensity(), profile.aggregateGips());
    return 0;
}
