/**
 * @file
 * Deep-learning example: train a small DCGAN on synthetic images with
 * the framework's layers, autograd and Adam, then show the many-kernel
 * execution profile that makes ML workloads so different from classic
 * GPU benchmarks (the paper's Observations #1 and #7).
 *
 * Build & run:  ./build/examples/train_gan
 */

#include <cstdio>

#include "dnn/layers.hh"
#include "dnn/optim.hh"
#include "gpu/profiler.hh"
#include "workloads/cactus/ml_common.hh"

int
main()
{
    using namespace cactus;
    using namespace cactus::dnn;

    Rng rng(123);
    gpu::Device dev;

    const int batch = 8, zdim = 16;

    Sequential gen;
    gen.add<ConvTranspose2d>(zdim, 32, 4, 1, 0, rng); // 4x4.
    gen.add<BatchNorm2d>(32);
    gen.add<ActivationLayer>(Activation::ReLU);
    gen.add<ConvTranspose2d>(32, 1, 4, 2, 1, rng);    // 8x8.
    gen.add<ActivationLayer>(Activation::Tanh);

    Sequential disc;
    disc.add<Conv2d>(1, 16, 3, 2, 1, rng);            // 4x4.
    disc.add<ActivationLayer>(Activation::LeakyReLU);
    disc.add<Conv2d>(16, 1, 4, 1, 0, rng);            // 1x1.

    Adam opt_g(gen.params(), 2e-3f);
    Adam opt_d(disc.params(), 2e-3f);

    std::printf("%5s %12s %12s\n", "iter", "d_loss", "g_loss");
    for (int it = 0; it < 5; ++it) {
        // Discriminator step.
        opt_d.zeroGrad();
        workloads::syntheticImages(batch, 1, 8, rng); // Warm the rng.
        Tensor real = workloads::syntheticImages(batch, 1, 8, rng);
        Tensor d_real = disc.forward(dev, real, true);
        Tensor ones = Tensor::full(d_real.shape(), 1.f);
        Tensor grad_r(d_real.shape());
        double d_loss = mseLossBackward(dev, d_real.data(),
                                        ones.data(), grad_r.data(),
                                        d_real.size());
        disc.backward(dev, grad_r);

        Tensor z = Tensor::randn({batch, zdim, 1, 1}, rng, 1.f);
        Tensor fake = gen.forward(dev, z, true);
        Tensor d_fake = disc.forward(dev, fake, true);
        Tensor zeros = Tensor::zeros(d_fake.shape());
        Tensor grad_f(d_fake.shape());
        d_loss += mseLossBackward(dev, d_fake.data(), zeros.data(),
                                  grad_f.data(), d_fake.size());
        disc.backward(dev, grad_f);
        opt_d.step(dev);

        // Generator step.
        opt_g.zeroGrad();
        Tensor z2 = Tensor::randn({batch, zdim, 1, 1}, rng, 1.f);
        Tensor fake2 = gen.forward(dev, z2, true);
        Tensor d_fake2 = disc.forward(dev, fake2, true);
        Tensor ones2 = Tensor::full(d_fake2.shape(), 1.f);
        Tensor grad_g(d_fake2.shape());
        const double g_loss =
            mseLossBackward(dev, d_fake2.data(), ones2.data(),
                            grad_g.data(), d_fake2.size());
        const Tensor dimage = disc.backward(dev, grad_g);
        gen.backward(dev, dimage);
        opt_g.step(dev);

        std::printf("%5d %12.4f %12.4f\n", it + 1, d_loss, g_loss);
    }

    const auto profiles =
        gpu::aggregateLaunches(dev.launches(), dev.config());
    std::printf("\nexecuted %zu distinct kernels over %zu launches:\n",
                profiles.size(), dev.launches().size());
    int shown = 0;
    for (const auto &kp : profiles) {
        if (shown++ >= 12) {
            std::printf("  ... and %zu more\n", profiles.size() - 12);
            break;
        }
        std::printf("  %-38s x%llu\n", kp.name.c_str(),
                    static_cast<unsigned long long>(kp.invocations));
    }
    std::printf("\nEven this toy GAN runs tens of distinct kernels - "
                "the top-down,\nmany-kernel profile the Cactus paper "
                "contrasts with classic suites.\n");
    return 0;
}
