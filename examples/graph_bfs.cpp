/**
 * @file
 * Graph-analytics example: run the Gunrock-style BFS on a social-
 * network graph and on a road network, and show how the input shape
 * changes which kernels execute (the paper's Observation #3).
 *
 * Build & run:  ./build/examples/graph_bfs
 */

#include <cstdio>
#include <map>

#include "gpu/profiler.hh"
#include "graph/bfs.hh"

namespace {

void
runOne(const char *title, const cactus::graph::CsrGraph &g, int source)
{
    using namespace cactus;

    gpu::Device dev;
    const auto result = graph::gunrockBfs(dev, g, source);

    int depth = 0;
    std::int64_t reached = 0;
    for (int l : result.levels) {
        depth = std::max(depth, l);
        reached += l >= 0;
    }
    std::printf("=== %s ===\n", title);
    std::printf("  %d vertices, %lld directed edges, max degree %d\n",
                g.numVertices(),
                static_cast<long long>(g.numDirectedEdges()),
                g.maxDegree());
    std::printf("  BFS depth %d, reached %lld vertices in %d "
                "iterations\n",
                depth, static_cast<long long>(reached),
                result.iterations);

    // Which advance strategy ran per iteration?
    std::map<std::string, int> strategy_count;
    for (const auto &k : result.kernelSequence)
        ++strategy_count[k];
    std::printf("  advance strategies:");
    for (const auto &[name, count] : strategy_count)
        std::printf(" %s x%d", name.c_str(), count);
    std::printf("\n");

    const auto profiles =
        gpu::aggregateLaunches(dev.launches(), dev.config());
    std::printf("  %zu distinct kernels, %.3f ms simulated GPU "
                "time\n\n",
                profiles.size(), dev.elapsedSeconds() * 1e3);
}

} // namespace

int
main()
{
    using namespace cactus;

    Rng rng(7);
    // SOC-Twitter10 stand-in: heavy-tailed RMAT graph.
    auto social = graph::CsrGraph::rmat(14, 16, rng);
    runOne("social network (RMAT)", social,
           social.highestDegreeVertex());

    // Road-USA stand-in: large-diameter grid road network.
    auto road = graph::CsrGraph::roadGrid(128, 128, rng);
    runOne("road network (grid)", road, 0);

    std::printf("The social graph's hub frontiers trigger the "
                "CTA/bottom-up kernels;\nthe road network's tiny "
                "frontiers run thread-mapped advance for hundreds\n"
                "of iterations - same code, different kernels "
                "(Observation #3).\n");
    return 0;
}
