/**
 * @file
 * Quickstart: write a GPU kernel against the simulator's public API,
 * launch it, and read the profiler metrics — the 60-second tour of the
 * library.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>
#include <vector>

#include "analysis/roofline.hh"
#include "gpu/device.hh"

int
main()
{
    using namespace cactus;

    // A simulated RTX 3080-class device.
    gpu::Device dev;
    std::printf("device: %s\n", dev.config().name.c_str());
    std::printf("peak %.1f GIPS, %.2f GTXN/s, roofline elbow %.2f\n\n",
                dev.config().peakGips(), dev.config().peakGtxnPerSec(),
                dev.config().elbowIntensity());

    // Kernels are ordinary C++ callables, one invocation per thread.
    // Loads/stores are functional *and* instrumented; arithmetic is
    // accounted with fp32()/intOp()/sfu().
    const std::size_t n = 1 << 20;
    std::vector<float> x(n, 1.0f), y(n, 2.0f), z(n, 0.0f);
    const float a = 3.5f;

    dev.launchLinear(
        gpu::KernelDesc("saxpy", /*regs=*/24), n, /*block=*/256,
        [&](gpu::ThreadCtx &ctx) {
            const auto i = ctx.globalId();
            const float xv = ctx.ld(&x[i]);
            const float yv = ctx.ld(&y[i]);
            ctx.fp32(1); // One FMA.
            ctx.st(&z[i], a * xv + yv);
        });

    // Results are real: the kernel actually computed.
    std::printf("z[42] = %.1f (expect %.1f)\n\n", z[42], a * 1.f + 2.f);

    // Every launch is profiled.
    const gpu::LaunchStats &stats = dev.launches().back();
    std::printf("kernel %s:\n", stats.desc.name.c_str());
    std::printf("  warp instructions : %llu\n",
                static_cast<unsigned long long>(stats.counts.total()));
    std::printf("  simulated runtime : %.1f us\n",
                stats.timing.seconds * 1e6);
    std::printf("  GIPS              : %.1f\n", stats.metrics.gips);
    std::printf("  inst intensity    : %.2f warp insts / 32B txn\n",
                stats.metrics.instIntensity);
    std::printf("  L1 / L2 hit rate  : %.2f / %.2f\n",
                stats.metrics.l1HitRate, stats.metrics.l2HitRate);
    std::printf("  DRAM read         : %.1f GB/s\n",
                stats.metrics.dramReadBps / 1e9);

    // Classify it on the instruction roofline, as the paper does.
    const analysis::Roofline roof(dev.config());
    std::printf("  class             : %s-intensive, %s-bound\n",
                analysis::intensityClassName(roof.classifyIntensity(
                    stats.metrics.instIntensity)),
                analysis::boundClassName(
                    roof.classifyBound(stats.metrics.gips)));
    std::printf("\nA streaming SAXPY sits far left of the elbow "
                "(memory-intensive), as expected.\n");
    return 0;
}
