/**
 * @file
 * Unit tests for the dense matrix and the Jacobi eigensolver.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "analysis/eigen.hh"
#include "analysis/matrix.hh"

namespace {

using cactus::analysis::jacobiEigen;
using cactus::analysis::Matrix;

TEST(Matrix, MultiplyKnownValues)
{
    Matrix a(2, 3), b(3, 2);
    int v = 1;
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            a(i, j) = v++;
    v = 1;
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 2; ++j)
            b(i, j) = v++;
    const Matrix c = a.multiply(b);
    EXPECT_DOUBLE_EQ(c(0, 0), 22.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 28.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 49.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 64.0);
}

TEST(Matrix, TransposeRoundTrip)
{
    Matrix a(3, 2);
    a(0, 0) = 1;
    a(2, 1) = 5;
    const Matrix t = a.transpose();
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.cols(), 3u);
    EXPECT_DOUBLE_EQ(t(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(t(1, 2), 5.0);
}

TEST(Matrix, ColumnStatistics)
{
    Matrix a(4, 2);
    const double col0[] = {2, 4, 6, 8};
    for (std::size_t i = 0; i < 4; ++i) {
        a(i, 0) = col0[i];
        a(i, 1) = 7.0;
    }
    const auto means = a.columnMeans();
    const auto sds = a.columnStddevs();
    EXPECT_DOUBLE_EQ(means[0], 5.0);
    EXPECT_DOUBLE_EQ(means[1], 7.0);
    EXPECT_NEAR(sds[0], std::sqrt(5.0), 1e-12);
    EXPECT_DOUBLE_EQ(sds[1], 0.0);
}

TEST(JacobiEigen, DiagonalMatrix)
{
    Matrix a(3, 3);
    a(0, 0) = 3;
    a(1, 1) = 1;
    a(2, 2) = 2;
    const auto eig = jacobiEigen(a);
    EXPECT_NEAR(eig.values[0], 3.0, 1e-12);
    EXPECT_NEAR(eig.values[1], 2.0, 1e-12);
    EXPECT_NEAR(eig.values[2], 1.0, 1e-12);
}

TEST(JacobiEigen, Known2x2)
{
    // [[2,1],[1,2]] has eigenvalues 3 and 1.
    Matrix a(2, 2);
    a(0, 0) = 2;
    a(0, 1) = 1;
    a(1, 0) = 1;
    a(1, 1) = 2;
    const auto eig = jacobiEigen(a);
    EXPECT_NEAR(eig.values[0], 3.0, 1e-12);
    EXPECT_NEAR(eig.values[1], 1.0, 1e-12);
    // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
    EXPECT_NEAR(std::fabs(eig.vectors(0, 0)), std::sqrt(0.5), 1e-9);
    EXPECT_NEAR(std::fabs(eig.vectors(1, 0)), std::sqrt(0.5), 1e-9);
}

TEST(JacobiEigen, ReconstructsMatrix)
{
    // A = V diag(L) V' must reproduce the input.
    Matrix a(4, 4);
    const double vals[4][4] = {{4, 1, 0.5, 0},
                               {1, 3, 0.2, 0.1},
                               {0.5, 0.2, 2, 0.3},
                               {0, 0.1, 0.3, 1}};
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            a(i, j) = vals[i][j];
    const auto eig = jacobiEigen(a);
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            double acc = 0;
            for (int k = 0; k < 4; ++k)
                acc += eig.vectors(i, k) * eig.values[k] *
                       eig.vectors(j, k);
            EXPECT_NEAR(acc, vals[i][j], 1e-9);
        }
    }
}

TEST(JacobiEigen, EigenvectorsOrthonormal)
{
    Matrix a(5, 5);
    for (int i = 0; i < 5; ++i)
        for (int j = 0; j < 5; ++j)
            a(i, j) = 1.0 / (1.0 + i + j); // Hilbert-like, symmetric.
    const auto eig = jacobiEigen(a);
    for (int p = 0; p < 5; ++p) {
        for (int q = 0; q < 5; ++q) {
            double dot = 0;
            for (int k = 0; k < 5; ++k)
                dot += eig.vectors(k, p) * eig.vectors(k, q);
            EXPECT_NEAR(dot, p == q ? 1.0 : 0.0, 1e-9);
        }
    }
}

TEST(JacobiEigen, TraceEqualsEigenvalueSum)
{
    Matrix a(6, 6);
    for (int i = 0; i < 6; ++i)
        for (int j = i; j < 6; ++j)
            a(i, j) = a(j, i) = (i * 7 + j * 3) % 5 - 2.0;
    for (int i = 0; i < 6; ++i)
        a(i, i) = i + 1.0;
    const auto eig = jacobiEigen(a);
    double trace = 0, sum = 0;
    for (int i = 0; i < 6; ++i)
        trace += a(i, i);
    for (double v : eig.values)
        sum += v;
    EXPECT_NEAR(trace, sum, 1e-9);
}

} // namespace
