/**
 * @file
 * Tests for the roofline classifier and the report renderers.
 */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "analysis/report.hh"
#include "analysis/roofline.hh"

namespace {

using namespace cactus::analysis;
using cactus::gpu::DeviceConfig;

TEST(Roofline, ElbowMatchesPaper)
{
    Roofline roof{DeviceConfig{}};
    EXPECT_NEAR(roof.elbow(), 21.75, 0.05);
    EXPECT_NEAR(roof.peakGips(), 516.8, 1e-9);
    EXPECT_NEAR(roof.latencyThresholdGips(), 5.168, 1e-9);
}

TEST(Roofline, RoofShape)
{
    Roofline roof{DeviceConfig{}};
    // Memory side: roof is linear in intensity.
    EXPECT_NEAR(roof.roofGips(1.0), 23.759375, 1e-6);
    EXPECT_NEAR(roof.roofGips(10.0), 237.59375, 1e-6);
    // Compute side: flat at peak.
    EXPECT_NEAR(roof.roofGips(100.0), 516.8, 1e-9);
    // Exactly at the elbow both roofs agree.
    EXPECT_NEAR(roof.roofGips(roof.elbow()), 516.8, 1e-6);
}

TEST(Roofline, ClassificationAgainstPaperThresholds)
{
    Roofline roof{DeviceConfig{}};
    EXPECT_EQ(roof.classifyIntensity(5.0),
              IntensityClass::MemoryIntensive);
    EXPECT_EQ(roof.classifyIntensity(100.0),
              IntensityClass::ComputeIntensive);
    EXPECT_EQ(roof.classifyBound(1.0), BoundClass::LatencyBound);
    EXPECT_EQ(roof.classifyBound(50.0), BoundClass::BandwidthBound);
}

TEST(Roofline, MakePointFillsLabels)
{
    Roofline roof{DeviceConfig{}};
    const auto p = roof.makePoint("k", 30.0, 400.0, 0.5);
    EXPECT_EQ(p.intensityClass, IntensityClass::ComputeIntensive);
    EXPECT_EQ(p.boundClass, BoundClass::BandwidthBound);
    EXPECT_EQ(p.label, "k");
    EXPECT_DOUBLE_EQ(p.timeShare, 0.5);
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22222"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TextTable, CsvQuotesSpecialCharacters)
{
    TextTable t({"a", "b"});
    t.addRow({"x,y", "he said \"hi\""});
    const std::string csv = t.renderCsv();
    EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
    EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTable, RowWidthMismatchPanics)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

TEST(Formatting, CountsWithSeparators)
{
    EXPECT_EQ(fmtCount(0), "0");
    EXPECT_EQ(fmtCount(999), "999");
    EXPECT_EQ(fmtCount(1000), "1,000");
    EXPECT_EQ(fmtCount(1234567890ull), "1,234,567,890");
}

TEST(AsciiScatter, PointsAndRoofAppear)
{
    ScatterOptions opts;
    opts.roofPeakY = 516.8;
    opts.roofSlope = 23.76;
    ScatterSeries s;
    s.glyph = 'M';
    s.points = {{1.0, 10.0}, {100.0, 400.0}};
    const std::string art = asciiScatter({s}, opts);
    EXPECT_NE(art.find('M'), std::string::npos);
    EXPECT_NE(art.find('.'), std::string::npos);
}

TEST(AsciiScatter, OutOfRangePointsAreDropped)
{
    ScatterOptions opts;
    ScatterSeries s;
    s.glyph = 'Z';
    s.points = {{1e9, 1e9}};
    const std::string art = asciiScatter({s}, opts);
    EXPECT_EQ(art.find('Z'), std::string::npos);
}

TEST(AsciiScatter, NonFinitePointsAreSkippedNotPlotted)
{
    ScatterOptions opts;
    ScatterSeries s;
    s.glyph = 'N';
    s.points = {{std::nan(""), 10.0},
                {10.0, std::numeric_limits<double>::infinity()},
                {std::nan(""), std::nan("")}};
    const std::string art = asciiScatter({s}, opts);
    EXPECT_EQ(art.find('N'), std::string::npos);
    // The frame still renders at full size.
    EXPECT_NE(art.find('+'), std::string::npos);
}

} // namespace
