/**
 * @file
 * Unit tests for Pearson correlation and the Figure 8 bucketing.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "analysis/pearson.hh"
#include "common/error.hh"

#include "../support/expect_error.hh"

namespace {

using namespace cactus::analysis;

TEST(Pearson, PerfectPositiveCorrelation)
{
    std::vector<double> x{1, 2, 3, 4, 5};
    std::vector<double> y{10, 20, 30, 40, 50};
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegativeCorrelation)
{
    std::vector<double> x{1, 2, 3, 4, 5};
    std::vector<double> y{5, 4, 3, 2, 1};
    EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, AffineInvariance)
{
    std::vector<double> x{1.5, -2, 7, 3.25, 0};
    std::vector<double> y;
    for (double v : x)
        y.push_back(3.0 * v - 11.0);
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, KnownHandComputedValue)
{
    // r = 0.5298 for this classic textbook data set.
    std::vector<double> x{43, 21, 25, 42, 57, 59};
    std::vector<double> y{99, 65, 79, 75, 87, 81};
    EXPECT_NEAR(pearson(x, y), 0.5298, 5e-4);
}

TEST(Pearson, ZeroVarianceGivesZero)
{
    std::vector<double> x{3, 3, 3, 3};
    std::vector<double> y{1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(Pearson, UncorrelatedOrthogonalPattern)
{
    std::vector<double> x{-1, 1, -1, 1};
    std::vector<double> y{-1, -1, 1, 1};
    EXPECT_NEAR(pearson(x, y), 0.0, 1e-12);
}

TEST(Pearson, SymmetricInArguments)
{
    std::vector<double> x{1, 4, 2, 8, 5, 7};
    std::vector<double> y{3, 1, 4, 1, 5, 9};
    EXPECT_DOUBLE_EQ(pearson(x, y), pearson(y, x));
}

TEST(CorrelationMatrix, DiagonalOnesAndSymmetry)
{
    Matrix samples(6, 3);
    for (int i = 0; i < 6; ++i) {
        samples(i, 0) = i;
        samples(i, 1) = i * i;
        samples(i, 2) = 6 - i;
    }
    const Matrix corr = correlationMatrix(samples);
    for (int i = 0; i < 3; ++i)
        EXPECT_DOUBLE_EQ(corr(i, i), 1.0);
    EXPECT_DOUBLE_EQ(corr(0, 1), corr(1, 0));
    EXPECT_NEAR(corr(0, 2), -1.0, 1e-12);
}

TEST(CorrelationBuckets, PaperThresholds)
{
    EXPECT_EQ(classifyCorrelation(0.0), CorrelationStrength::None);
    EXPECT_EQ(classifyCorrelation(0.19), CorrelationStrength::None);
    EXPECT_EQ(classifyCorrelation(0.2), CorrelationStrength::Weak);
    EXPECT_EQ(classifyCorrelation(-0.35), CorrelationStrength::Weak);
    EXPECT_EQ(classifyCorrelation(0.49999), CorrelationStrength::Weak);
    EXPECT_EQ(classifyCorrelation(0.5), CorrelationStrength::Strong);
    EXPECT_EQ(classifyCorrelation(-1.0), CorrelationStrength::Strong);
}

/** Property: |r| <= 1 for arbitrary data. */
class PearsonBoundSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(PearsonBoundSweep, AlwaysWithinUnitInterval)
{
    const int seed = GetParam();
    std::vector<double> x, y;
    unsigned state = static_cast<unsigned>(seed) * 2654435761u + 1u;
    for (int i = 0; i < 50; ++i) {
        state = state * 1664525u + 1013904223u;
        x.push_back((state >> 8) % 1000 / 10.0);
        state = state * 1664525u + 1013904223u;
        y.push_back((state >> 8) % 1000 / 10.0);
    }
    const double r = pearson(x, y);
    EXPECT_LE(std::fabs(r), 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PearsonBoundSweep,
                         ::testing::Range(1, 8));

TEST(Pearson, ZeroVarianceAgainstVaryingSeriesGivesZero)
{
    // Regression: a constant series must yield "no correlation", not
    // a NaN from the zero standard deviation in the denominator.
    const std::vector<double> flat{3.5, 3.5, 3.5, 3.5};
    const std::vector<double> rising{1, 2, 3, 4};
    EXPECT_EQ(pearson(flat, rising), 0.0);
    EXPECT_EQ(pearson(rising, flat), 0.0);
    EXPECT_FALSE(std::isnan(pearson(flat, flat)));
}

TEST(Pearson, NonFiniteSampleIsAnIntegrityError)
{
    const std::vector<double> x{1, 2, std::nan(""), 4};
    const std::vector<double> y{1, 2, 3, 4};
    cactus::test::expectError<cactus::IntegrityError>(
        [&] { pearson(x, y); }, "observation 2");
    cactus::test::expectError<cactus::IntegrityError>(
        [&] { pearson(y, x); }, "finite");
}

TEST(Pearson, ResultIsClampedToUnitInterval)
{
    // Large nearly-collinear values can round epsilon past 1.
    std::vector<double> x, y;
    for (int i = 0; i < 64; ++i) {
        x.push_back(1e15 + i);
        y.push_back(2e15 + 2 * i);
    }
    const double r = pearson(x, y);
    EXPECT_LE(std::fabs(r), 1.0);
}

} // namespace
