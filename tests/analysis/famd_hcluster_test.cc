/**
 * @file
 * Tests for FAMD and Ward hierarchical clustering: recovery of planted
 * structure, invariants of the decomposition, and dendrogram rendering.
 */

#include <cmath>
#include <limits>
#include <set>

#include <gtest/gtest.h>

#include "analysis/famd.hh"
#include "analysis/hcluster.hh"
#include "common/error.hh"
#include "common/rng.hh"

#include "../support/expect_error.hh"

namespace {

using namespace cactus::analysis;
using cactus::Rng;

/** Two well-separated Gaussian blobs with a matching categorical label. */
MixedData
twoBlobData(int per_blob, bool with_qualitative)
{
    MixedData data;
    data.quantitative = Matrix(2 * per_blob, 3);
    Rng rng(42);
    for (int i = 0; i < 2 * per_blob; ++i) {
        const double center = i < per_blob ? 0.0 : 20.0;
        for (int j = 0; j < 3; ++j)
            data.quantitative(i, j) = rng.normal(center, 1.0);
    }
    if (with_qualitative) {
        std::vector<int> cat(2 * per_blob);
        for (int i = 0; i < 2 * per_blob; ++i)
            cat[i] = i < per_blob ? 0 : 1;
        data.qualitative.push_back(cat);
    }
    return data;
}

TEST(Famd, FirstComponentSeparatesBlobs)
{
    const auto data = twoBlobData(10, false);
    const auto result = famd(data, 2);
    ASSERT_EQ(result.coordinates.rows(), 20u);
    // Component 1 must separate blob A (rows 0..9) from blob B.
    double min_a = 1e300, max_a = -1e300, min_b = 1e300, max_b = -1e300;
    for (int i = 0; i < 10; ++i) {
        min_a = std::min(min_a, result.coordinates(i, 0));
        max_a = std::max(max_a, result.coordinates(i, 0));
        min_b = std::min(min_b, result.coordinates(10 + i, 0));
        max_b = std::max(max_b, result.coordinates(10 + i, 0));
    }
    EXPECT_TRUE(max_a < min_b || max_b < min_a);
}

TEST(Famd, ExplainedVarianceDescendingAndBounded)
{
    const auto data = twoBlobData(12, true);
    const auto result = famd(data, 4);
    double cum = 0;
    for (std::size_t j = 0; j < result.explained.size(); ++j) {
        if (j > 0) {
            EXPECT_LE(result.explained[j],
                      result.explained[j - 1] + 1e-12);
        }
        EXPECT_GE(result.explained[j], -1e-12);
        cum += result.explained[j];
    }
    EXPECT_LE(cum, 1.0 + 1e-9);
    // Two clear blobs: the first component dominates.
    EXPECT_GT(result.explained[0], 0.5);
}

TEST(Famd, QualitativeVariableContributes)
{
    // With a category aligned to the blobs, component 1 must still
    // separate them and the eigenvalue grows versus quantitative-only.
    const auto no_qual = famd(twoBlobData(10, false), 1);
    const auto with_qual = famd(twoBlobData(10, true), 1);
    EXPECT_GT(with_qual.eigenvalues[0], no_qual.eigenvalues[0]);
}

TEST(Famd, ComponentsForVarianceThreshold)
{
    const auto result = famd(twoBlobData(10, true), 6);
    const std::size_t k90 = componentsForVariance(result, 0.90);
    EXPECT_GE(k90, 1u);
    EXPECT_LE(k90, result.explained.size());
    double cum = 0;
    for (std::size_t j = 0; j < k90; ++j)
        cum += result.explained[j];
    EXPECT_GE(cum, 0.90 - 1e-9);
}

TEST(Famd, ConstantColumnIsIgnoredGracefully)
{
    MixedData data;
    data.quantitative = Matrix(6, 2);
    for (int i = 0; i < 6; ++i) {
        data.quantitative(i, 0) = i;
        data.quantitative(i, 1) = 5.0; // Zero variance.
    }
    const auto result = famd(data, 2);
    EXPECT_GT(result.eigenvalues[0], 0.5);
    EXPECT_NEAR(result.eigenvalues[1], 0.0, 1e-9);
}

TEST(WardClustering, RecoversTwoBlobs)
{
    const auto data = twoBlobData(8, false);
    const auto linkage = wardLinkage(data.quantitative);
    ASSERT_EQ(linkage.merges.size(), 15u);
    const auto labels = cutTree(linkage, 2);
    ASSERT_EQ(labels.size(), 16u);
    for (int i = 1; i < 8; ++i)
        EXPECT_EQ(labels[i], labels[0]);
    for (int i = 9; i < 16; ++i)
        EXPECT_EQ(labels[i], labels[8]);
    EXPECT_NE(labels[0], labels[8]);
}

TEST(WardClustering, FourBlobsFourClusters)
{
    Matrix pts(20, 2);
    Rng rng(7);
    const double centers[4][2] = {{0, 0}, {30, 0}, {0, 30}, {30, 30}};
    for (int i = 0; i < 20; ++i) {
        pts(i, 0) = rng.normal(centers[i / 5][0], 0.5);
        pts(i, 1) = rng.normal(centers[i / 5][1], 0.5);
    }
    const auto labels = cutTree(wardLinkage(pts), 4);
    std::set<int> distinct(labels.begin(), labels.end());
    EXPECT_EQ(distinct.size(), 4u);
    for (int b = 0; b < 4; ++b)
        for (int i = 1; i < 5; ++i)
            EXPECT_EQ(labels[b * 5 + i], labels[b * 5]);
}

TEST(WardClustering, MergeHeightsNonDecreasing)
{
    const auto data = twoBlobData(10, false);
    const auto linkage = wardLinkage(data.quantitative);
    for (std::size_t s = 1; s < linkage.merges.size(); ++s)
        EXPECT_GE(linkage.merges[s].height,
                  linkage.merges[s - 1].height - 1e-9);
}

TEST(WardClustering, CutIntoOneClusterIsTrivial)
{
    const auto data = twoBlobData(4, false);
    const auto labels = cutTree(wardLinkage(data.quantitative), 1);
    for (int l : labels)
        EXPECT_EQ(l, 0);
}

TEST(WardClustering, CutIntoNClustersIsIdentityPartition)
{
    const auto data = twoBlobData(4, false);
    const auto labels = cutTree(wardLinkage(data.quantitative), 8);
    std::set<int> distinct(labels.begin(), labels.end());
    EXPECT_EQ(distinct.size(), 8u);
}

TEST(Dendrogram, ContainsEveryLabelExactlyOnce)
{
    Matrix pts(5, 1);
    for (int i = 0; i < 5; ++i)
        pts(i, 0) = i * i; // Distinct, asymmetric spacing.
    const auto linkage = wardLinkage(pts);
    const std::vector<std::string> labels{"aa", "bb", "cc", "dd", "ee"};
    const std::string art = renderDendrogram(linkage, labels);
    for (const auto &l : labels) {
        const auto first = art.find(l);
        ASSERT_NE(first, std::string::npos) << l;
        EXPECT_EQ(art.find(l, first + 1), std::string::npos) << l;
    }
}

TEST(Dendrogram, SingleLeafRendersLabel)
{
    Matrix pts(1, 1);
    const auto linkage = wardLinkage(pts);
    EXPECT_EQ(renderDendrogram(linkage, {"only"}), "only\n");
}

TEST(Famd, NonFiniteCellIsAnIntegrityErrorNamingTheCell)
{
    MixedData data;
    data.quantitative = Matrix(3, 2);
    data.quantNames = {"gips", "l1_hit"};
    data.quantitative(0, 0) = 1.0;
    data.quantitative(1, 1) = std::nan("");
    data.qualitative.push_back({0, 1, 0});
    cactus::test::expectError<cactus::IntegrityError>(
        [&] { famd(data, 2); }, "row 1, column 'l1_hit'");
}

TEST(WardLinkage, NonFinitePointIsAnIntegrityError)
{
    Matrix points(3, 2);
    points(0, 0) = 1.0;
    points(2, 1) = std::numeric_limits<double>::infinity();
    cactus::test::expectError<cactus::IntegrityError>(
        [&] { wardLinkage(points); }, "point 2, dimension 1");
}

TEST(WardLinkage, FiniteDegenerateDuplicatesStillCluster)
{
    // All-identical points: distances are all zero; the linkage must
    // still produce n-1 merges at height 0 rather than stalling.
    Matrix points(4, 2);
    const Linkage linkage = wardLinkage(points);
    ASSERT_EQ(linkage.merges.size(), 3u);
    for (const auto &m : linkage.merges)
        EXPECT_EQ(m.height, 0.0);
}

} // namespace
