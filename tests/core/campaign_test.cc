/**
 * @file
 * Tests for the fault-tolerant campaign runner: per-benchmark failure
 * isolation, watchdog timeouts on a slow stub, retry recovery of a
 * flaky stub, checkpoint/resume (including torn manifest lines), and
 * deterministic fault injection.
 *
 * Stubs are plain local BenchmarkInfo entries, never registered
 * globally — the registry tests assert exact per-suite counts.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "common/fault.hh"
#include "core/campaign.hh"

namespace {

using namespace cactus::core;
using cactus::BenchmarkError;
using cactus::FaultInjector;
using cactus::gpu::KernelDesc;
using cactus::gpu::ThreadCtx;

/** Deterministic well-behaved stub: one small vector-add launch. */
class OkBenchmark : public Benchmark
{
  public:
    explicit OkBenchmark(std::string name) : name_(std::move(name)) {}
    std::string name() const override { return name_; }
    std::string suite() const override { return "Test"; }
    std::string domain() const override { return "Test"; }

    void
    run(cactus::gpu::Device &dev) override
    {
        const std::size_t n = 4096;
        std::vector<float> a(n, 1.f), b(n, 2.f), c(n, 0.f);
        dev.launchLinear(KernelDesc(name_ + "_vadd"), n, 256,
                         [&](ThreadCtx &ctx) {
                             const auto i = ctx.globalId();
                             ctx.fp32();
                             ctx.st(&c[i],
                                    ctx.ld(&a[i]) + ctx.ld(&b[i]));
                         });
        recordOutput(c);
    }

  private:
    std::string name_;
};

/** Always throws before launching anything. */
class BrokenBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "Broken"; }
    std::string suite() const override { return "Test"; }
    std::string domain() const override { return "Test"; }
    void
    run(cactus::gpu::Device &) override
    {
        throw BenchmarkError("synthetic failure");
    }
};

/** Fails the first @p failures runs, then behaves. */
class FlakyBenchmark : public Benchmark
{
  public:
    FlakyBenchmark(std::shared_ptr<std::atomic<int>> runs,
                   int failures)
        : runs_(std::move(runs)), failures_(failures)
    {
    }
    std::string name() const override { return "Flaky"; }
    std::string suite() const override { return "Test"; }
    std::string domain() const override { return "Test"; }

    void
    run(cactus::gpu::Device &dev) override
    {
        if (runs_->fetch_add(1) < failures_)
            throw BenchmarkError("transient failure");
        OkBenchmark("Flaky").run(dev);
    }

  private:
    std::shared_ptr<std::atomic<int>> runs_;
    int failures_;
};

/** Many launches with host-side sleeps between them, so a watchdog
 *  deadline always lands between two kernel-launch boundaries. */
class SlowBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "Slow"; }
    std::string suite() const override { return "Test"; }
    std::string domain() const override { return "Test"; }

    void
    run(cactus::gpu::Device &dev) override
    {
        std::vector<float> x(256, 1.f);
        for (int i = 0; i < 300; ++i) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
            dev.launchLinear(KernelDesc("slow_step"), x.size(), 256,
                             [&](ThreadCtx &ctx) {
                                 ctx.fp32();
                                 ctx.ld(&x[ctx.globalId()]);
                             });
        }
    }
};

/** Throws from inside a kernel functor under a 4-thread host pool, so
 *  the failure crosses the worker-pool rethrow path. */
class ThrowInKernelBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "ThrowInKernel"; }
    std::string suite() const override { return "Test"; }
    std::string domain() const override { return "Test"; }

    void
    run(cactus::gpu::Device &dev) override
    {
        std::vector<float> x(1 << 14, 1.f);
        dev.launchLinear(KernelDesc("poison"), x.size(), 256,
                         [&](ThreadCtx &ctx) {
                             if (ctx.globalId() == 4097)
                                 throw BenchmarkError(
                                     "poisoned thread");
                             ctx.ld(&x[ctx.globalId()]);
                         });
    }
};

BenchmarkInfo
okInfo(const std::string &name)
{
    return {name, "Test", "Test", [name](Scale) {
                return std::unique_ptr<Benchmark>(
                    new OkBenchmark(name));
            }};
}

template <typename B, typename... Args>
BenchmarkInfo
stubInfo(const std::string &name, Args... args)
{
    return {name, "Test", "Test", [=](Scale) {
                return std::unique_ptr<Benchmark>(new B(args...));
            }};
}

std::string
tmpPath(const std::string &leaf)
{
    const std::string path = "/tmp/" + leaf;
    std::remove(path.c_str());
    return path;
}

TEST(Campaign, FailingBenchmarkDoesNotStopTheSuite)
{
    const std::vector<BenchmarkInfo> benchmarks = {
        okInfo("A"), stubInfo<BrokenBenchmark>("Broken"),
        okInfo("B")};
    const auto result = runCampaign(benchmarks, CampaignOptions{});

    ASSERT_EQ(result.entries.size(), 3u);
    EXPECT_EQ(result.entries[0].status, RunStatus::OK);
    EXPECT_EQ(result.entries[1].status, RunStatus::Failed);
    EXPECT_EQ(result.entries[1].error, "synthetic failure");
    EXPECT_EQ(result.entries[2].status, RunStatus::OK);
    EXPECT_EQ(result.okCount, 2);
    EXPECT_EQ(result.failedCount, 1);
    EXPECT_FALSE(result.allOk());
}

TEST(Campaign, AllOkSuiteReportsClean)
{
    const std::vector<BenchmarkInfo> benchmarks = {okInfo("A"),
                                                   okInfo("B")};
    int callbacks = 0;
    CampaignOptions opts;
    opts.onEntry = [&](const CampaignEntry &entry) {
        ++callbacks;
        EXPECT_EQ(entry.status, RunStatus::OK);
        EXPECT_GT(entry.profile.launches, 0u);
    };
    const auto result = runCampaign(benchmarks, opts);
    EXPECT_TRUE(result.allOk());
    EXPECT_EQ(result.okCount, 2);
    EXPECT_EQ(callbacks, 2);
}

TEST(Campaign, WatchdogTimesOutSlowBenchmark)
{
    const std::vector<BenchmarkInfo> benchmarks = {
        stubInfo<SlowBenchmark>("Slow"), okInfo("After")};
    CampaignOptions opts;
    opts.timeoutSeconds = 0.15;
    opts.retries = 3; // Must be ignored: timeouts are not retried.
    const auto result = runCampaign(benchmarks, opts);

    ASSERT_EQ(result.entries.size(), 2u);
    const auto &slow = result.entries[0];
    EXPECT_EQ(slow.status, RunStatus::Timeout);
    EXPECT_EQ(slow.attempts, 1);
    EXPECT_NE(slow.error.find("watchdog"), std::string::npos)
        << slow.error;
    // Cancelled at a launch boundary well before the stub's ~3 s of
    // sleeps completed.
    EXPECT_LT(slow.wallSeconds, 2.0);
    EXPECT_EQ(result.entries[1].status, RunStatus::OK);
    EXPECT_EQ(result.timeoutCount, 1);
}

TEST(Campaign, RetriesRecoverAFlakyBenchmark)
{
    auto runs = std::make_shared<std::atomic<int>>(0);
    const std::vector<BenchmarkInfo> benchmarks = {
        stubInfo<FlakyBenchmark>("Flaky", runs, 2)};
    CampaignOptions opts;
    opts.retries = 2;
    opts.backoffSeconds = 0.001;
    const auto result = runCampaign(benchmarks, opts);

    EXPECT_EQ(result.entries[0].status, RunStatus::OK);
    EXPECT_EQ(result.entries[0].attempts, 3);
    EXPECT_TRUE(result.entries[0].error.empty());
    EXPECT_TRUE(result.allOk());
}

TEST(Campaign, ExhaustedRetriesReportTheLastError)
{
    auto runs = std::make_shared<std::atomic<int>>(0);
    const std::vector<BenchmarkInfo> benchmarks = {
        stubInfo<FlakyBenchmark>("Flaky", runs, 5)};
    CampaignOptions opts;
    opts.retries = 1;
    opts.backoffSeconds = 0.001;
    const auto result = runCampaign(benchmarks, opts);

    EXPECT_EQ(result.entries[0].status, RunStatus::Failed);
    EXPECT_EQ(result.entries[0].attempts, 2);
    EXPECT_EQ(result.entries[0].error, "transient failure");
    EXPECT_EQ(runs->load(), 2);
}

TEST(Campaign, PoolExceptionSurfacesAsFailedEntry)
{
    const std::vector<BenchmarkInfo> benchmarks = {
        stubInfo<ThrowInKernelBenchmark>("ThrowInKernel"),
        okInfo("After")};
    CampaignOptions opts;
    opts.config.hostThreads = 4;
    const auto result = runCampaign(benchmarks, opts);

    EXPECT_EQ(result.entries[0].status, RunStatus::Failed);
    EXPECT_EQ(result.entries[0].error, "poisoned thread");
    EXPECT_EQ(result.entries[1].status, RunStatus::OK);
}

TEST(Campaign, CheckpointResumeSkipsCompletedEntries)
{
    const auto path = tmpPath("cactus_campaign_resume.jsonl");
    const std::vector<BenchmarkInfo> benchmarks = {okInfo("A"),
                                                   okInfo("B")};
    CampaignOptions opts;
    opts.checkpointPath = path;

    const auto first = runCampaign(benchmarks, opts);
    ASSERT_TRUE(first.allOk());

    const auto second = runCampaign(benchmarks, opts);
    ASSERT_EQ(second.entries.size(), 2u);
    EXPECT_EQ(second.skippedCount, 2);
    EXPECT_TRUE(second.allOk());
    for (std::size_t i = 0; i < 2; ++i) {
        const auto &orig = first.entries[i].profile;
        const auto &restored = second.entries[i].profile;
        EXPECT_EQ(second.entries[i].status, RunStatus::Skipped);
        EXPECT_EQ(second.entries[i].attempts, 0);
        EXPECT_EQ(restored.name, orig.name);
        EXPECT_EQ(restored.suite, orig.suite);
        EXPECT_EQ(restored.launches, orig.launches);
        EXPECT_EQ(restored.totalWarpInsts, orig.totalWarpInsts);
        EXPECT_EQ(restored.totalDramSectors, orig.totalDramSectors);
        // precision-17 manifest round-trip is bit-exact.
        EXPECT_EQ(restored.totalSeconds, orig.totalSeconds);
    }
    std::remove(path.c_str());
}

TEST(Campaign, ResumeRunsOnlyTheIncompleteBenchmarks)
{
    const auto path = tmpPath("cactus_campaign_partial.jsonl");
    CampaignOptions opts;
    opts.checkpointPath = path;

    // First campaign completes only A.
    const std::vector<BenchmarkInfo> partial = {okInfo("A")};
    ASSERT_TRUE(runCampaign(partial, opts).allOk());

    // Simulate a kill mid-write: a torn trailing record must be
    // skipped, not crash the resume.
    {
        std::ofstream out(path, std::ios::app);
        out << "{\"name\":\"B\",\"status\":\"o";
    }

    const std::vector<BenchmarkInfo> full = {okInfo("A"), okInfo("B")};
    const auto result = runCampaign(full, opts);
    ASSERT_EQ(result.entries.size(), 2u);
    EXPECT_EQ(result.entries[0].status, RunStatus::Skipped);
    EXPECT_EQ(result.entries[1].status, RunStatus::OK);
    EXPECT_EQ(result.skippedCount, 1);
    EXPECT_EQ(result.okCount, 1);

    // The resumed run appended B; a third run skips everything.
    const auto third = runCampaign(full, opts);
    EXPECT_EQ(third.skippedCount, 2);
    std::remove(path.c_str());
}

TEST(Campaign, CheckpointRoundTripsNewlineInBenchmarkName)
{
    // Regression: the old campaign-local unescaper dropped the
    // backslash of \n and kept the 'n', so a stored newline came back
    // as a literal 'n' and the resume re-ran (or mislabelled) the
    // benchmark. The shared escaper in common/json.hh round-trips it.
    const auto path = tmpPath("cactus_campaign_newline.jsonl");
    const std::string weird = "A\nB\t\"C\"\\D\r";
    const std::vector<BenchmarkInfo> benchmarks = {okInfo(weird)};
    CampaignOptions opts;
    opts.checkpointPath = path;

    const auto first = runCampaign(benchmarks, opts);
    ASSERT_TRUE(first.allOk());

    // The manifest must still be one record per line: the newline in
    // the name is escaped, not written raw.
    {
        std::ifstream in(path);
        std::string line;
        int lines = 0;
        while (std::getline(in, line))
            ++lines;
        EXPECT_EQ(lines, 1);
    }

    const auto second = runCampaign(benchmarks, opts);
    ASSERT_EQ(second.entries.size(), 1u);
    EXPECT_EQ(second.entries[0].status, RunStatus::Skipped);
    EXPECT_EQ(second.entries[0].profile.name, weird);
    EXPECT_EQ(second.skippedCount, 1);
    std::remove(path.c_str());
}

TEST(Campaign, ReadCheckpointToleratesMissingFile)
{
    EXPECT_TRUE(
        readCheckpoint("/tmp/cactus_no_such_manifest.jsonl").empty());
}

TEST(Campaign, UnwritableCheckpointIsAConfigError)
{
    const std::vector<BenchmarkInfo> benchmarks = {okInfo("A")};
    CampaignOptions opts;
    opts.checkpointPath = "/nonexistent-dir/manifest.jsonl";
    EXPECT_THROW(runCampaign(benchmarks, opts), cactus::ConfigError);
}

TEST(Campaign, InjectedLaunchFaultFailsDeterministically)
{
    const std::vector<BenchmarkInfo> benchmarks = {
        okInfo("A"), okInfo("B"), okInfo("C"), okInfo("D")};

    auto statuses = [&](const char *spec) {
        CampaignOptions opts;
        opts.config.fault = FaultInjector::parse(spec);
        std::vector<RunStatus> out;
        for (const auto &entry : runCampaign(benchmarks, opts).entries)
            out.push_back(entry.status);
        return out;
    };

    // Certain failure at every launch: nothing survives.
    const auto all_fail = statuses("launch:1:1");
    for (const auto status : all_fail)
        EXPECT_EQ(status, RunStatus::Failed);

    // Partial probability: the pattern is a pure function of the
    // seed, so two campaigns agree benchmark by benchmark.
    EXPECT_EQ(statuses("launch:0.5:42"), statuses("launch:0.5:42"));
    // And the error text names the injection site.
    CampaignOptions opts;
    opts.config.fault = FaultInjector::parse("launch:1:1");
    const auto result =
        runCampaign({okInfo("A")}, opts);
    EXPECT_NE(result.entries[0].error.find("injected fault"),
              std::string::npos)
        << result.entries[0].error;
}

TEST(Campaign, InjectedAllocFaultFailsDeviceConstruction)
{
    CampaignOptions opts;
    opts.config.fault = FaultInjector::parse("alloc:1:1");
    const auto result = runCampaign({okInfo("A")}, opts);
    EXPECT_EQ(result.entries[0].status, RunStatus::Failed);
    EXPECT_NE(result.entries[0].error.find("alloc"),
              std::string::npos)
        << result.entries[0].error;
}

TEST(Campaign, StatsCorruptFaultBecomesCorruptNotFailed)
{
    CampaignOptions opts;
    opts.config.fault = FaultInjector::parse("stats-corrupt:1:7");
    opts.retries = 3; // Must be ignored: corruption is deterministic.
    const auto result = runCampaign({okInfo("A"), okInfo("B")}, opts);

    EXPECT_EQ(result.corruptCount, 2);
    EXPECT_EQ(result.failedCount, 0);
    EXPECT_FALSE(result.allOk());
    for (const auto &entry : result.entries) {
        EXPECT_EQ(entry.status, RunStatus::Corrupt);
        EXPECT_EQ(entry.attempts, 1)
            << "corruption must never be retried";
        EXPECT_NE(entry.error.find("l1Misses <= l1Accesses"),
                  std::string::npos)
            << entry.error;
    }
}

TEST(Campaign, GoldenRecordThenVerifyRoundTrips)
{
    const std::vector<BenchmarkInfo> benchmarks = {okInfo("A"),
                                                   okInfo("B")};
    GoldenTable goldens;
    CampaignOptions record;
    record.recordGoldens = &goldens;
    EXPECT_TRUE(runCampaign(benchmarks, record).allOk());
    EXPECT_EQ(goldens.size(), 2u);

    CampaignOptions check;
    check.verifyOutputs = true;
    check.goldens = &goldens;
    const auto result = runCampaign(benchmarks, check);
    EXPECT_TRUE(result.allOk());
    EXPECT_EQ(result.okCount, 2);
}

TEST(Campaign, GoldenMismatchIsCorrupt)
{
    const std::vector<BenchmarkInfo> benchmarks = {okInfo("A")};
    GoldenTable goldens;
    goldens.set("A", scaleToken(Scale::Small),
                VerifyResult{0xdeadbeefu, 1, 0});
    CampaignOptions opts;
    opts.verifyOutputs = true;
    opts.goldens = &goldens;
    const auto result = runCampaign(benchmarks, opts);
    EXPECT_EQ(result.entries[0].status, RunStatus::Corrupt);
    EXPECT_NE(result.entries[0].error.find("output digest"),
              std::string::npos)
        << result.entries[0].error;
}

TEST(Campaign, MissingGoldenIsCorrupt)
{
    const std::vector<BenchmarkInfo> benchmarks = {okInfo("A")};
    const GoldenTable goldens; // Empty: nothing recorded for "A".
    CampaignOptions opts;
    opts.verifyOutputs = true;
    opts.goldens = &goldens;
    const auto result = runCampaign(benchmarks, opts);
    EXPECT_EQ(result.entries[0].status, RunStatus::Corrupt);
    EXPECT_NE(result.entries[0].error.find("none recorded"),
              std::string::npos)
        << result.entries[0].error;
}

TEST(Campaign, VerifyWithoutGoldenTableIsAConfigError)
{
    CampaignOptions opts;
    opts.verifyOutputs = true;
    EXPECT_THROW(runCampaign({okInfo("A")}, opts),
                 cactus::ConfigError);
}

TEST(Campaign, LowSampleCoverageIsCorruptUnderAFloor)
{
    // Force heavy sampling: 4096 threads = 128 warps, but only 8 are
    // replayed, so coverage is well below 1.
    CampaignOptions opts;
    opts.config.maxSampledWarps = 8;
    opts.minCoverage = 0.99;
    const auto result = runCampaign({okInfo("A")}, opts);
    EXPECT_EQ(result.entries[0].status, RunStatus::Corrupt);
    EXPECT_NE(result.entries[0].error.find("--min-coverage"),
              std::string::npos)
        << result.entries[0].error;

    // The same run passes with the floor disabled.
    CampaignOptions relaxed;
    relaxed.config.maxSampledWarps = 8;
    const auto ok = runCampaign({okInfo("A")}, relaxed);
    EXPECT_EQ(ok.entries[0].status, RunStatus::OK);
    EXPECT_LT(ok.entries[0].profile.minSampleCoverage, 0.99);
}

TEST(Campaign, CheckpointRoundTripsMinCoverage)
{
    const std::string path =
        tmpPath("cactus_campaign_coverage.jsonl");
    CampaignOptions opts;
    opts.config.maxSampledWarps = 8;
    opts.checkpointPath = path;
    const auto first = runCampaign({okInfo("A")}, opts);
    ASSERT_EQ(first.entries[0].status, RunStatus::OK);
    const double recorded =
        first.entries[0].profile.minSampleCoverage;
    EXPECT_LT(recorded, 1.0);

    const auto restored = readCheckpoint(path);
    ASSERT_EQ(restored.size(), 1u);
    EXPECT_DOUBLE_EQ(restored[0].profile.minSampleCoverage, recorded);
    std::remove(path.c_str());
}

} // namespace
