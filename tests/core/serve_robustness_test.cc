/**
 * @file
 * Robustness tests for the serving layer: admission-queue semantics
 * (admit / queue / shed / drain), taxonomy-correct rejection of
 * malformed, oversized, and truncated request lines, crash-safe cache
 * persistence (old-or-new-complete-file, digest-validated loads, torn
 * final lines), graceful drain completing in-flight work, and
 * survival under injected network faults. The common thread: no input
 * and no injected fault may crash the server, hang a client forever,
 * or poison the cache.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.hh"
#include "common/json.hh"
#include "core/coord.hh"
#include "core/serve.hh"

namespace cactus::core {

namespace {

// ---------------------------------------------------------------------------
// AdmissionQueue

TEST(AdmissionQueue, AdmitsUpToInflightThenShedsBeyondQueue)
{
    AdmissionQueue q(2, 0); // 2 slots, no queue.
    EXPECT_EQ(q.acquire(), AdmissionQueue::Outcome::Admitted);
    EXPECT_EQ(q.acquire(), AdmissionQueue::Outcome::Admitted);
    EXPECT_EQ(q.inflight(), 2);

    // Saturated with no queue: the third asker is shed immediately,
    // never blocked.
    EXPECT_EQ(q.acquire(), AdmissionQueue::Outcome::Rejected);
    EXPECT_EQ(q.rejected(), 1u);

    q.release();
    EXPECT_EQ(q.acquire(), AdmissionQueue::Outcome::Admitted);
    q.release();
    q.release();
    EXPECT_TRUE(q.awaitIdle(0));
}

TEST(AdmissionQueue, QueuedAskerGetsSlotOnRelease)
{
    AdmissionQueue q(1, 4);
    ASSERT_EQ(q.acquire(), AdmissionQueue::Outcome::Admitted);

    std::atomic<bool> admitted{false};
    std::thread waiter([&] {
        EXPECT_EQ(q.acquire(), AdmissionQueue::Outcome::Admitted);
        admitted = true;
        q.release();
    });

    // The waiter parks in the queue rather than being shed.
    while (q.queued() == 0)
        std::this_thread::yield();
    EXPECT_FALSE(admitted);

    q.release(); // Hands the slot to the queued waiter.
    waiter.join();
    EXPECT_TRUE(admitted);
    EXPECT_TRUE(q.awaitIdle(1.0));
    EXPECT_EQ(q.rejected(), 0u);
}

TEST(AdmissionQueue, CloseRefusesNewWorkOnly)
{
    AdmissionQueue q(1, 4);
    ASSERT_EQ(q.acquire(), AdmissionQueue::Outcome::Admitted);
    q.close();
    // Draining: a new asker is refused with Closed (distinct from
    // Rejected so the client message can say "server draining")...
    EXPECT_EQ(q.acquire(), AdmissionQueue::Outcome::Closed);
    // ...but already-admitted work keeps its slot until released.
    EXPECT_EQ(q.inflight(), 1);
    q.release();
    EXPECT_TRUE(q.awaitIdle(0));
}

// ---------------------------------------------------------------------------
// Crash-safe persistence

class TempFile
{
  public:
    explicit TempFile(const char *tag)
        : path_(std::string("/tmp/cactus_robust_") + tag + "_" +
                std::to_string(::getpid()) + ".ndjson")
    {
        std::remove(path_.c_str());
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

TEST(ResultCacheRobust, FailedSaveLeavesPreviousFileIntact)
{
    TempFile file("atomic_save");
    ResultCache cache(4);
    cache.insert("k1", "{\"v\":1}");
    cache.saveNdjson(file.path());
    const std::string before = slurp(file.path());
    ASSERT_FALSE(before.empty());

    // A save that tears mid-write (injected cache-write fault) must
    // throw AND leave the previous complete file byte-identical —
    // old or new, never a hybrid.
    cache.insert("k2", "{\"v\":2}");
    const auto always = FaultInjector::parse("cache-write:1:7");
    EXPECT_THROW(cache.saveNdjson(file.path(), always), Error);
    EXPECT_EQ(slurp(file.path()), before);

    // The next healthy save replaces the file completely.
    cache.saveNdjson(file.path());
    ResultCache reloaded(4);
    ResultCache::LoadStats stats;
    EXPECT_EQ(reloaded.loadNdjson(file.path(), &stats), 2u);
    EXPECT_EQ(stats.corrupt, 0u);
    EXPECT_EQ(stats.torn, 0u);
}

TEST(ResultCacheRobust, LoadSkipsTornAndCorruptRecords)
{
    TempFile file("load_mixed");
    {
        std::ofstream out(file.path());
        // A healthy digest-carrying record round-tripped via save.
        ResultCache seed(4);
        seed.insert("good", "{\"v\":1}");
        TempFile tmp("load_seed");
        seed.saveNdjson(tmp.path());
        out << slurp(tmp.path());
        // A legacy record without a digest field: trusted as before.
        out << "{\"key\":\"legacy\",\"body\":\"{}\"}\n";
        // A record whose body does not hash to its digest: silent
        // corruption, skipped rather than served.
        out << "{\"key\":\"bad\",\"digest\":\"0000000000000000\","
               "\"body\":\"{}\"}\n";
        // A torn final line — the crash signature loadNdjson must
        // tolerate (no trailing newline, truncated JSON).
        out << "{\"key\":\"torn\",\"dig";
    }

    ResultCache cache(8);
    ResultCache::LoadStats stats;
    EXPECT_EQ(cache.loadNdjson(file.path(), &stats), 2u);
    EXPECT_EQ(stats.loaded, 2u);
    EXPECT_EQ(stats.corrupt, 1u);
    EXPECT_EQ(stats.torn, 1u);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_TRUE(cache.peek("good").has_value());
    EXPECT_TRUE(cache.peek("legacy").has_value());
    EXPECT_FALSE(cache.peek("bad").has_value());
    EXPECT_FALSE(cache.peek("torn").has_value());
}

TEST(CoordinationLogRobust, NewlineGuardIsolatesTornFinalLine)
{
    TempFile file("coord_torn");
    {
        // A writer died mid-append: the file ends in a torn, half
        // record with no newline.
        std::ofstream out(file.path());
        out << "{\"state\":\"lease\",\"gen\":1,\"task\":\"t0\","
               "\"worker\":\"w0\"}\n";
        out << "{\"state\":\"lease\",\"gen\":1,\"ta";
    }

    // A recovering worker must not weld its first record onto the
    // torn fragment: the guard appends a newline first, so the new
    // lease parses and the fragment stands alone (and is skipped).
    CoordinationLog log(file.path(), "w1", false);
    EXPECT_EQ(log.claim("t1"), CoordinationLog::Claim::Won);
    // t0's lease (a complete line) still binds.
    EXPECT_EQ(log.claim("t0"), CoordinationLog::Claim::Leased);
}

// ---------------------------------------------------------------------------
// processRequest: admission hook and health

TEST(ProcessRequestRobust, ShedsViaAdmissionHookWithoutCaching)
{
    ResultCache cache(4);
    RequestContext ctx;
    ctx.cancel = CancelToken::make();
    ctx.admitSimulation = [](std::string &why) {
        why = "admission queue full (1 inflight, 0 queued)";
        return false;
    };

    const auto out = processRequest(
        "{\"bench\":\"GMS\",\"scale\":\"tiny\"}", cache, ctx);
    EXPECT_TRUE(out.error);
    std::string taxonomy;
    ASSERT_TRUE(jsonFindText(out.response, "taxonomy", taxonomy))
        << out.response;
    EXPECT_EQ(taxonomy, "overloaded");
    EXPECT_EQ(out.taxonomy, "overloaded");
    // Overload rejections are never cached: a later admitted retry
    // must run the real simulation.
    EXPECT_EQ(cache.size(), 0u);
}

TEST(ProcessRequestRobust, HealthReportsSnapshotFields)
{
    ResultCache cache(4);
    RequestContext ctx;
    ctx.cancel = CancelToken::make();
    ctx.health = [] {
        HealthSnapshot h;
        h.draining = false;
        h.inflight = 2;
        h.queued = 3;
        h.maxInflight = 4;
        h.maxQueue = 64;
        h.uptimeSeconds = 12.5;
        h.requests = 100;
        h.cacheHits = 75;
        h.cacheMisses = 25;
        h.cacheSize = 20;
        return h;
    };

    const auto out =
        processRequest("{\"op\":\"health\"}", cache, ctx);
    EXPECT_FALSE(out.error);
    double inflight = 0, queued = 0, hit_rate = 0;
    EXPECT_TRUE(jsonFindNumber(out.response, "inflight", inflight));
    EXPECT_TRUE(jsonFindNumber(out.response, "queued", queued));
    EXPECT_TRUE(jsonFindNumber(out.response, "hit_rate", hit_rate));
    EXPECT_EQ(inflight, 2);
    EXPECT_EQ(queued, 3);
    EXPECT_NEAR(hit_rate, 0.75, 1e-9);
    // Health is a read-only probe: nothing entered the cache.
    EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end over a real socket

class Client
{
  public:
    Client(const std::string &host, int port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<std::uint16_t>(port));
        ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
        connected_ =
            fd_ >= 0 &&
            ::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof addr) == 0;
    }

    ~Client()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool connected() const { return connected_; }

    bool
    send(const std::string &bytes)
    {
        return ::send(fd_, bytes.data(), bytes.size(),
                      MSG_NOSIGNAL) ==
            static_cast<ssize_t>(bytes.size());
    }

    /** Read one newline-terminated line; empty on EOF/reset. */
    std::string
    readLine()
    {
        std::string response;
        char c;
        while (::recv(fd_, &c, 1, 0) == 1) {
            if (c == '\n')
                return response;
            response.push_back(c);
        }
        return {};
    }

    std::string
    roundTrip(const std::string &request)
    {
        if (!send(request + "\n"))
            return {};
        return readLine();
    }

  private:
    int fd_ = -1;
    bool connected_ = false;
};

TEST(ServerRobust, MalformedLinesGetTaxonomyErrorsNeverCrash)
{
    ServeOptions opts;
    opts.port = 0;
    Server server(opts);
    server.start();
    ASSERT_GT(server.port(), 0);

    Client client("127.0.0.1", server.port());
    ASSERT_TRUE(client.connected());

    // Garbage, truncated JSON, and unknown fields each get a
    // well-formed config-taxonomy error on the same connection.
    // Note the tolerant field scanner makes some truncations
    // harmless (a lost "scale" falls back to its default); these
    // four are truly invalid: no readable bench name (garbage or
    // truncated mid-value), an unknown bench, and an unknown cmd.
    const std::vector<std::string> bad_lines{
        "this is not json",
        "{\"bench\":\"GM",
        "{\"bench\":\"NoSuchBench\"}",
        "{\"cmd\":\"no-such-cmd\"}"};
    for (const std::string &bad : bad_lines) {
        const auto resp = client.roundTrip(bad);
        ASSERT_FALSE(resp.empty()) << bad;
        std::string taxonomy;
        ASSERT_TRUE(jsonFindText(resp, "taxonomy", taxonomy))
            << resp;
        EXPECT_EQ(taxonomy, "config") << bad;
    }

    // The server survived and serves healthy requests; nothing was
    // cached for the malformed inputs.
    EXPECT_NE(client.roundTrip("{\"cmd\":\"ping\"}")
                  .find("\"pong\":true"),
              std::string::npos);
    EXPECT_EQ(server.cache().size(), 0u);
    server.stop();
    EXPECT_EQ(server.stats().errors, 4u);
}

TEST(ServerRobust, OversizedLineIsRejectedThenConnectionCloses)
{
    ServeOptions opts;
    opts.port = 0;
    opts.maxLineBytes = 128;
    Server server(opts);
    server.start();

    Client client("127.0.0.1", server.port());
    ASSERT_TRUE(client.connected());

    // Feed a request line far over the cap without a newline — the
    // 1-GB-line attack in miniature. The server answers with a
    // config error and closes, instead of buffering forever.
    const std::string flood(4096, 'x');
    ASSERT_TRUE(client.send(flood));
    const auto resp = client.readLine();
    ASSERT_FALSE(resp.empty());
    std::string taxonomy;
    ASSERT_TRUE(jsonFindText(resp, "taxonomy", taxonomy)) << resp;
    EXPECT_EQ(taxonomy, "config");
    EXPECT_EQ(client.readLine(), ""); // Closed after the error.

    // Fresh connections are unaffected.
    Client next("127.0.0.1", server.port());
    ASSERT_TRUE(next.connected());
    EXPECT_NE(next.roundTrip("{\"cmd\":\"ping\"}")
                  .find("\"pong\":true"),
              std::string::npos);
    server.stop();
}

TEST(ServerRobust, IdleConnectionIsReaped)
{
    ServeOptions opts;
    opts.port = 0;
    opts.idleTimeoutSeconds = 0.1;
    Server server(opts);
    server.start();

    Client client("127.0.0.1", server.port());
    ASSERT_TRUE(client.connected());
    EXPECT_FALSE(client.roundTrip("{\"cmd\":\"ping\"}").empty());

    // Say nothing past the idle deadline: the server closes us.
    EXPECT_EQ(client.readLine(), "");
    server.stop();
}

TEST(ServerRobust, DrainCompletesInflightThenRefusesNewWork)
{
    ServeOptions opts;
    opts.port = 0;
    Server server(opts);
    server.start();

    Client client("127.0.0.1", server.port());
    ASSERT_TRUE(client.connected());

    // Put a real request on the wire, then drain while it is (very
    // likely still) in flight. Drain must wait for the response
    // bytes, so the client sees a complete result either way.
    ASSERT_TRUE(
        client.send("{\"bench\":\"GMS\",\"scale\":\"tiny\"}\n"));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(server.drain(30.0));
    EXPECT_TRUE(server.draining());

    const auto resp = client.readLine();
    ASSERT_FALSE(resp.empty());
    std::string status;
    ASSERT_TRUE(jsonFindText(resp, "status", status)) << resp;
    EXPECT_EQ(status, "ok");

    // The drained server still answers pings and health on the open
    // connection, but refuses to start new simulations.
    const auto refused = client.roundTrip(
        "{\"bench\":\"GMS\",\"scale\":\"tiny\",\"l2_kb\":512}");
    ASSERT_FALSE(refused.empty());
    std::string taxonomy;
    ASSERT_TRUE(jsonFindText(refused, "taxonomy", taxonomy))
        << refused;
    EXPECT_EQ(taxonomy, "overloaded");
    EXPECT_NE(refused.find("draining"), std::string::npos);

    // New connections are refused outright: the listener is closed.
    Client late("127.0.0.1", server.port());
    EXPECT_FALSE(late.connected());

    server.stop();
    EXPECT_GE(server.stats().overloaded, 1u);
}

TEST(ServerRobust, SurvivesInjectedNetworkFaults)
{
    for (const char *spec : {"net-read:1:7", "net-write:1:7"}) {
        ServeOptions opts;
        opts.port = 0;
        opts.fault = FaultInjector::parse(spec);
        Server server(opts);
        server.start();

        // Every read (or write) fails: the client sees resets, the
        // server sheds the connection and keeps running.
        for (int i = 0; i < 3; ++i) {
            Client client("127.0.0.1", server.port());
            ASSERT_TRUE(client.connected()) << spec;
            client.roundTrip("{\"cmd\":\"ping\"}");
        }
        server.stop(); // No crash, clean join.
    }

    // net-accept: the accepted connection is dropped before its
    // first byte; later connections (fault p=1 still) also drop, but
    // the accept loop itself never dies and stop() joins cleanly.
    ServeOptions opts;
    opts.port = 0;
    opts.fault = FaultInjector::parse("net-accept:1:7");
    Server server(opts);
    server.start();
    Client client("127.0.0.1", server.port());
    // connect() may succeed before the server-side close lands; the
    // first round trip must then fail fast rather than hang.
    if (client.connected()) {
        EXPECT_EQ(client.roundTrip("{\"cmd\":\"ping\"}"), "");
    }
    server.stop();
}

} // namespace

} // namespace cactus::core
