/**
 * @file
 * Tests for the characterization service: ResultCache semantics (LRU
 * order, in-flight coalescing, error propagation), processRequest's
 * schema and taxonomy, the cache-hit == fresh-run byte-identity
 * guarantee, and an end-to-end socket round trip against a live
 * Server on an ephemeral port.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "core/serve.hh"

namespace cactus::core {

namespace {

using Source = ResultCache::Source;

TEST(ResultCache, ComputesOnceThenServesFromCache)
{
    ResultCache cache(4);
    int calls = 0;
    const auto compute = [&] {
        ++calls;
        return std::string("body");
    };

    const auto first = cache.getOrCompute("k", compute);
    EXPECT_EQ(first.source, Source::Computed);
    EXPECT_EQ(first.body, "body");

    const auto second = cache.getOrCompute("k", compute);
    EXPECT_EQ(second.source, Source::Cache);
    EXPECT_EQ(second.body, "body");
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(ResultCache, EvictsLeastRecentlyUsedInOrder)
{
    ResultCache cache(3);
    const auto body = [](const std::string &k) {
        return [k] { return "body-" + k; };
    };
    cache.getOrCompute("a", body("a"));
    cache.getOrCompute("b", body("b"));
    cache.getOrCompute("c", body("c"));

    // Touch "a": it becomes MRU, so "b" is now the eviction victim.
    cache.getOrCompute("a", body("a"));
    EXPECT_EQ(cache.keysMruFirst(),
              (std::vector<std::string>{"a", "c", "b"}));

    cache.getOrCompute("d", body("d"));
    EXPECT_EQ(cache.keysMruFirst(),
              (std::vector<std::string>{"d", "a", "c"}));
    EXPECT_EQ(cache.evictions(), 1u);

    // "b" was evicted: asking again recomputes.
    EXPECT_EQ(cache.getOrCompute("b", body("b")).source,
              Source::Computed);
    EXPECT_EQ(cache.keysMruFirst(),
              (std::vector<std::string>{"b", "d", "a"}));
    EXPECT_EQ(cache.evictions(), 2u);
}

TEST(ResultCache, CoalescesConcurrentIdenticalRequests)
{
    constexpr int kWaiters = 4;
    ResultCache cache(4);

    std::mutex mutex;
    std::condition_variable cv;
    bool release = false;
    std::atomic<int> calls{0};

    // The first asker blocks inside compute until the test releases
    // it — after proving that every other thread has coalesced.
    std::thread first([&] {
        const auto lookup = cache.getOrCompute("k", [&] {
            calls.fetch_add(1);
            std::unique_lock<std::mutex> lock(mutex);
            cv.wait(lock, [&] { return release; });
            return std::string("slow-body");
        });
        EXPECT_EQ(lookup.source, Source::Computed);
    });

    // Wait until the computation is registered in-flight.
    while (cache.misses() == 0)
        std::this_thread::yield();

    std::vector<std::thread> waiters;
    std::atomic<int> coalesced{0};
    for (int i = 0; i < kWaiters; ++i) {
        waiters.emplace_back([&] {
            const auto lookup = cache.getOrCompute("k", [&] {
                calls.fetch_add(1);
                return std::string("wrong-body");
            });
            EXPECT_EQ(lookup.body, "slow-body");
            if (lookup.source == Source::Coalesced)
                coalesced.fetch_add(1);
        });
    }

    // Deterministic rendezvous: don't release the computation until
    // every waiter is provably blocked on the in-flight entry.
    while (cache.inflightWaiters("k") <
           static_cast<std::size_t>(kWaiters))
        std::this_thread::yield();
    {
        std::lock_guard<std::mutex> lock(mutex);
        release = true;
    }
    cv.notify_all();

    first.join();
    for (auto &t : waiters)
        t.join();

    // N concurrent identical requests -> exactly 1 simulation.
    EXPECT_EQ(calls.load(), 1);
    EXPECT_EQ(coalesced.load(), kWaiters);
    EXPECT_EQ(cache.coalesced(), static_cast<std::uint64_t>(kWaiters));
    EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCache, ErrorsPropagateToWaitersAndAreNotCached)
{
    ResultCache cache(4);

    std::mutex mutex;
    std::condition_variable cv;
    bool release = false;

    std::thread first([&] {
        EXPECT_THROW(
            cache.getOrCompute("k",
                               [&]() -> std::string {
                                   std::unique_lock<std::mutex> lock(
                                       mutex);
                                   cv.wait(lock,
                                           [&] { return release; });
                                   throw std::runtime_error("boom");
                               }),
            std::runtime_error);
    });
    while (cache.misses() == 0)
        std::this_thread::yield();

    std::thread waiter([&] {
        EXPECT_THROW(cache.getOrCompute(
                         "k", [] { return std::string("x"); }),
                     std::runtime_error);
    });
    while (cache.inflightWaiters("k") < 1)
        std::this_thread::yield();
    {
        std::lock_guard<std::mutex> lock(mutex);
        release = true;
    }
    cv.notify_all();
    first.join();
    waiter.join();

    // A transient failure must not shadow a future success.
    EXPECT_EQ(cache.size(), 0u);
    const auto retry =
        cache.getOrCompute("k", [] { return std::string("ok"); });
    EXPECT_EQ(retry.source, Source::Computed);
    EXPECT_EQ(retry.body, "ok");
}

TEST(ResultCache, PeekNeverComputesAndRefreshesRecency)
{
    ResultCache cache(3);
    EXPECT_FALSE(cache.peek("a").has_value());
    EXPECT_EQ(cache.misses(), 1u);

    cache.insert("a", "body-a");
    cache.insert("b", "body-b");
    const auto hit = cache.peek("a");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "body-a");
    EXPECT_EQ(cache.hits(), 1u);
    // The peek made "a" most recently used.
    EXPECT_EQ(cache.keysMruFirst(),
              (std::vector<std::string>{"a", "b"}));
}

TEST(ResultCache, InsertOverwritesAndEvictsBeyondCapacity)
{
    ResultCache cache(2);
    cache.insert("a", "old");
    cache.insert("a", "new"); // Overwrite, not a second entry.
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(*cache.peek("a"), "new");

    cache.insert("b", "body-b");
    cache.insert("c", "body-c"); // Evicts the LRU entry ("a").
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.keysMruFirst(),
              (std::vector<std::string>{"c", "b"}));
}

TEST(ResultCache, NdjsonRoundTripPreservesContentsAndOrder)
{
    const std::string path = "/tmp/serve_cache_roundtrip.ndjson";
    std::remove(path.c_str());

    ResultCache cache(8);
    cache.insert("a", "body-a");
    cache.insert("b", R"(body with "quotes" and
newline)");
    cache.insert("c", "body-c");
    cache.peek("a"); // Recency: a, c, b.
    cache.saveNdjson(path);

    ResultCache restored(8);
    EXPECT_EQ(restored.loadNdjson(path), 3u);
    EXPECT_EQ(restored.size(), 3u);
    EXPECT_EQ(restored.keysMruFirst(), cache.keysMruFirst());
    EXPECT_EQ(*restored.peek("b"), *cache.peek("b"));
    // Warming is not traffic: only the two explicit peeks counted.
    EXPECT_EQ(restored.hits(), 1u);
    EXPECT_EQ(restored.misses(), 0u);
}

TEST(ResultCache, LoadToleratesAbsentFilesAndTornLines)
{
    ResultCache cache(8);
    EXPECT_EQ(cache.loadNdjson("/nonexistent/warm.ndjson"), 0u);

    const std::string path = "/tmp/serve_cache_torn.ndjson";
    {
        std::ofstream f(path, std::ios::trunc);
        f << R"({"key":"good","body":"intact"})" << '\n'
          << R"({"key":"torn","bo)"; // Killed mid-write.
    }
    EXPECT_EQ(cache.loadNdjson(path), 1u);
    EXPECT_EQ(*cache.peek("good"), "intact");
    EXPECT_FALSE(cache.peek("torn").has_value());
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// processRequest

RequestContext
testContext()
{
    RequestContext ctx;
    ctx.cancel = CancelToken::make();
    ctx.defaultHostThreads = 1;
    return ctx;
}

TEST(ProcessRequest, PingPongs)
{
    ResultCache cache(4);
    const auto out =
        processRequest("{\"cmd\":\"ping\"}", cache, testContext());
    EXPECT_FALSE(out.error);
    EXPECT_NE(out.response.find("\"pong\":true"), std::string::npos);
}

TEST(ProcessRequest, BadRequestsMapToConfigTaxonomy)
{
    ResultCache cache(4);
    const auto ctx = testContext();
    const char *bad[] = {
        "{}",
        "{\"bench\":\"NoSuchBenchmark\"}",
        "{\"bench\":\"GMS\",\"scale\":\"huge\"}",
        "{\"bench\":\"GMS\",\"scale\":\"tiny\",\"l2_kb\":0}",
        "{\"bench\":\"GMS\",\"scale\":\"tiny\",\"l2_kb\":1.5}",
        "{\"cmd\":\"selfdestruct\"}",
    };
    for (const char *line : bad) {
        const auto out = processRequest(line, cache, ctx);
        EXPECT_TRUE(out.error) << line;
        std::string taxonomy;
        ASSERT_TRUE(
            jsonFindText(out.response, "taxonomy", taxonomy))
            << out.response;
        EXPECT_EQ(taxonomy, "config") << line;
    }
    EXPECT_EQ(cache.size(), 0u); // Errors are never cached.
}

TEST(ProcessRequest, CacheHitIsByteIdenticalToFreshRun)
{
    // Two *independent* caches each compute the result from scratch;
    // the bodies must agree byte-for-byte (the determinism the cache
    // is built on). Within one cache, the repeat must be a hit with
    // the exact same bytes.
    const std::string req =
        "{\"bench\":\"GMS\",\"scale\":\"tiny\",\"l2_kb\":512}";
    const auto ctx = testContext();

    ResultCache fresh1(4), fresh2(4);
    const auto a = processRequest(req, fresh1, ctx);
    const auto b = processRequest(req, fresh2, ctx);
    const auto c = processRequest(req, fresh1, ctx);
    ASSERT_FALSE(a.error) << a.response;
    ASSERT_FALSE(b.error);
    ASSERT_FALSE(c.error);

    std::string sa, sb, sc;
    ASSERT_TRUE(jsonFindText(a.response, "source", sa));
    ASSERT_TRUE(jsonFindText(b.response, "source", sb));
    ASSERT_TRUE(jsonFindText(c.response, "source", sc));
    EXPECT_EQ(sa, "computed");
    EXPECT_EQ(sb, "computed");
    EXPECT_EQ(sc, "cache");

    // Strip the (intentionally different) "source" field; everything
    // else — key and result bytes — must be identical.
    const auto stripSource = [](std::string s) {
        const auto at = s.find(",\"source\":\"");
        const auto end = s.find('"', at + 11);
        return s.erase(at, end + 1 - at);
    };
    EXPECT_EQ(stripSource(a.response), stripSource(b.response));
    EXPECT_EQ(stripSource(a.response), stripSource(c.response));
}

TEST(ProcessRequest, ExecutionKnobsDoNotChangeTheKeyOrBytes)
{
    // threads and fast_forward affect how the simulation executes,
    // not what it computes (PRs 1/2/5) — so they share a cache entry.
    const auto ctx = testContext();
    ResultCache cache(4);
    const auto cold = processRequest(
        "{\"bench\":\"GMS\",\"scale\":\"tiny\",\"threads\":1}",
        cache, ctx);
    const auto hit = processRequest(
        "{\"bench\":\"GMS\",\"scale\":\"tiny\",\"threads\":2,"
        "\"fast_forward\":1}",
        cache, ctx);
    ASSERT_FALSE(cold.error) << cold.response;
    ASSERT_FALSE(hit.error);

    std::string source;
    ASSERT_TRUE(jsonFindText(hit.response, "source", source));
    EXPECT_EQ(source, "cache");
    EXPECT_EQ(cache.size(), 1u);
}

TEST(ProcessRequest, ModelKnobsChangeTheKey)
{
    const auto ctx = testContext();
    ResultCache cache(8);
    const auto a = processRequest(
        "{\"bench\":\"GMS\",\"scale\":\"tiny\",\"l2_kb\":256}",
        cache, ctx);
    const auto b = processRequest(
        "{\"bench\":\"GMS\",\"scale\":\"tiny\",\"l2_kb\":512}",
        cache, ctx);
    ASSERT_FALSE(a.error) << a.response;
    ASSERT_FALSE(b.error);

    std::string ka, kb;
    ASSERT_TRUE(jsonFindText(a.response, "key", ka));
    ASSERT_TRUE(jsonFindText(b.response, "key", kb));
    EXPECT_NE(ka, kb);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(ProcessRequest, ServerShutdownCancelsAsTimeout)
{
    // A pre-requested server token is the shutdown race distilled:
    // the request must come back as a timeout-taxonomy error, not
    // hang or crash.
    RequestContext ctx;
    ctx.cancel = CancelToken::make();
    ctx.cancel.request();
    ResultCache cache(4);
    const auto out = processRequest(
        "{\"bench\":\"GMS\",\"scale\":\"tiny\"}", cache, ctx);
    EXPECT_TRUE(out.error);
    std::string taxonomy;
    ASSERT_TRUE(jsonFindText(out.response, "taxonomy", taxonomy))
        << out.response;
    EXPECT_EQ(taxonomy, "timeout");
    EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end over a real socket

class Client
{
  public:
    Client(const std::string &host, int port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<std::uint16_t>(port));
        ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
        connected_ =
            fd_ >= 0 &&
            ::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof addr) == 0;
    }

    ~Client()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool connected() const { return connected_; }

    std::string
    roundTrip(const std::string &request)
    {
        const std::string line = request + "\n";
        if (::send(fd_, line.data(), line.size(), MSG_NOSIGNAL) !=
            static_cast<ssize_t>(line.size()))
            return {};
        std::string response;
        char c;
        while (::recv(fd_, &c, 1, 0) == 1) {
            if (c == '\n')
                return response;
            response.push_back(c);
        }
        return {};
    }

  private:
    int fd_ = -1;
    bool connected_ = false;
};

TEST(Server, EndToEndRoundTripWithCacheHit)
{
    ServeOptions opts;
    opts.port = 0; // Ephemeral.
    opts.cacheCapacity = 8;
    Server server(opts);
    server.start();
    ASSERT_GT(server.port(), 0);

    Client client("127.0.0.1", server.port());
    ASSERT_TRUE(client.connected());

    EXPECT_NE(client.roundTrip("{\"cmd\":\"ping\"}")
                  .find("\"pong\":true"),
              std::string::npos);

    const std::string req =
        "{\"bench\":\"GMS\",\"scale\":\"tiny\"}";
    const auto cold = client.roundTrip(req);
    const auto hit = client.roundTrip(req);
    ASSERT_FALSE(cold.empty());
    ASSERT_FALSE(hit.empty());

    std::string coldSource, hitSource;
    ASSERT_TRUE(jsonFindText(cold, "source", coldSource)) << cold;
    ASSERT_TRUE(jsonFindText(hit, "source", hitSource));
    EXPECT_EQ(coldSource, "computed");
    EXPECT_EQ(hitSource, "cache");

    // Same bytes modulo the source field.
    const auto stripSource = [](std::string s) {
        const auto at = s.find(",\"source\":\"");
        const auto end = s.find('"', at + 11);
        return s.erase(at, end + 1 - at);
    };
    EXPECT_EQ(stripSource(cold), stripSource(hit));

    // A second connection shares the cache.
    Client other("127.0.0.1", server.port());
    ASSERT_TRUE(other.connected());
    const auto third = other.roundTrip(req);
    std::string thirdSource;
    ASSERT_TRUE(jsonFindText(third, "source", thirdSource));
    EXPECT_EQ(thirdSource, "cache");

    server.stop();
    const auto stats = server.stats();
    EXPECT_EQ(stats.requests, 4u);
    EXPECT_EQ(stats.computed, 1u);
    EXPECT_EQ(stats.cacheHits, 2u);
    EXPECT_EQ(stats.errors, 0u);
}

TEST(Server, StopIsIdempotentAndUnblocksClients)
{
    ServeOptions opts;
    opts.port = 0;
    Server server(opts);
    server.start();

    Client client("127.0.0.1", server.port());
    ASSERT_TRUE(client.connected());
    EXPECT_FALSE(client.roundTrip("{\"cmd\":\"ping\"}").empty());

    server.stop();
    server.stop(); // Second stop is a no-op, not a crash.

    // The connection was shut down server-side: the next round trip
    // fails instead of hanging.
    EXPECT_TRUE(client.roundTrip("{\"cmd\":\"ping\"}").empty());
}

} // namespace

} // namespace cactus::core
