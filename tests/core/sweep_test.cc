/**
 * @file
 * Tests for the design-space sweep engine: axis parsing, cartesian
 * expansion, content-addressed task identity, static shard
 * partitioning, the deterministic checkpoint merge, the append-only
 * coordination log, and runSweep()'s resume / dedup / cache / claim
 * behavior on stub benchmarks.
 *
 * Stubs are plain local BenchmarkInfo entries, never registered
 * globally — the registry tests assert exact per-suite counts.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "core/campaign.hh"
#include "core/coord.hh"
#include "core/serve.hh"
#include "core/sweep.hh"
#include "core/verify.hh"

namespace {

using namespace cactus::core;
using cactus::ConfigError;
using cactus::gpu::DeviceConfig;
using cactus::gpu::KernelDesc;
using cactus::gpu::ThreadCtx;

/** Deterministic well-behaved stub: one small vector-add launch. */
class OkBenchmark : public Benchmark
{
  public:
    explicit OkBenchmark(std::string name) : name_(std::move(name)) {}
    std::string name() const override { return name_; }
    std::string suite() const override { return "Test"; }
    std::string domain() const override { return "Test"; }

    void
    run(cactus::gpu::Device &dev) override
    {
        const std::size_t n = 4096;
        std::vector<float> a(n, 1.f), b(n, 2.f), c(n, 0.f);
        dev.launchLinear(KernelDesc(name_ + "_vadd"), n, 256,
                         [&](ThreadCtx &ctx) {
                             const auto i = ctx.globalId();
                             ctx.fp32();
                             ctx.st(&c[i],
                                    ctx.ld(&a[i]) + ctx.ld(&b[i]));
                         });
        recordOutput(c);
    }

  private:
    std::string name_;
};

BenchmarkInfo
okInfo(const std::string &name)
{
    return {name, "Test", "Test", [name](Scale) {
                return std::unique_ptr<Benchmark>(
                    new OkBenchmark(name));
            }};
}

std::string
tmpPath(const std::string &leaf)
{
    const std::string path = "/tmp/" + leaf;
    std::remove(path.c_str());
    return path;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** Expand bench x axes into the runSweep task list, the way
 *  cactus_run does. */
std::vector<CampaignTask>
tasksFor(const std::vector<BenchmarkInfo> &benches,
         const DeviceConfig &base,
         const std::vector<SweepAxis> &axes)
{
    std::vector<CampaignTask> tasks;
    for (const auto &info : benches)
        for (const auto &point : expandSweep(base, axes))
            tasks.push_back({info, point.config, point.label});
    return tasks;
}

// ---------------------------------------------------------------- //
// Axis parsing and cartesian expansion
// ---------------------------------------------------------------- //

TEST(Sweep, ParseAxisSplitsKeyAndValues)
{
    const auto axis = parseSweepAxis("l2_kb=256,512,1024");
    EXPECT_EQ(axis.key, "l2_kb");
    EXPECT_EQ(axis.values,
              (std::vector<std::string>{"256", "512", "1024"}));
}

TEST(Sweep, ParseAxisRejectsBadSpecs)
{
    EXPECT_THROW(parseSweepAxis("no_equals"), ConfigError);
    EXPECT_THROW(parseSweepAxis("=256"), ConfigError);
    EXPECT_THROW(parseSweepAxis("voltage=1,2"), ConfigError);
    EXPECT_THROW(parseSweepAxis("l2_kb="), ConfigError);
    EXPECT_THROW(parseSweepAxis("l2_kb=,,"), ConfigError);
}

TEST(Sweep, ExpandIsOrderedCartesianProduct)
{
    const DeviceConfig base;
    const auto points = expandSweep(
        base, {parseSweepAxis("l2_kb=256,512"),
               parseSweepAxis("l2_slices=2,4")});
    ASSERT_EQ(points.size(), 4u);
    // First axis varies slowest; labels record the full coordinates.
    EXPECT_EQ(points[0].label, "l2_kb=256,l2_slices=2");
    EXPECT_EQ(points[1].label, "l2_kb=256,l2_slices=4");
    EXPECT_EQ(points[2].label, "l2_kb=512,l2_slices=2");
    EXPECT_EQ(points[3].label, "l2_kb=512,l2_slices=4");
    EXPECT_EQ(points[0].config.l2SizeBytes, 256 * 1024);
    EXPECT_EQ(points[3].config.l2SizeBytes, 512 * 1024);
    EXPECT_EQ(points[3].config.numL2Slices, 4);
}

TEST(Sweep, NoAxesYieldsTheBasePoint)
{
    const DeviceConfig base;
    const auto points = expandSweep(base, {});
    ASSERT_EQ(points.size(), 1u);
    EXPECT_EQ(points[0].label, "");
    EXPECT_EQ(points[0].config.digest(), base.digest());
}

TEST(Sweep, ExecutionKnobsDoNotChangeTaskIdentity)
{
    const DeviceConfig base;
    const auto threads =
        expandSweep(base, {parseSweepAxis("threads=1,2,4")});
    ASSERT_EQ(threads.size(), 3u);
    // Results are invariant to host threading, so all three points
    // share one content address — the dedup the campaign relies on.
    EXPECT_EQ(sweepTaskId("SN", "small", threads[0].config),
              sweepTaskId("SN", "small", threads[1].config));
    EXPECT_EQ(sweepTaskId("SN", "small", threads[1].config),
              sweepTaskId("SN", "small", threads[2].config));

    const auto l2 = expandSweep(base, {parseSweepAxis("l2_kb=256,512")});
    EXPECT_NE(sweepTaskId("SN", "small", l2[0].config),
              sweepTaskId("SN", "small", l2[1].config));
    // Different benchmark or scale: different task.
    EXPECT_NE(sweepTaskId("SN", "small", l2[0].config),
              sweepTaskId("GMS", "small", l2[0].config));
    EXPECT_NE(sweepTaskId("SN", "small", l2[0].config),
              sweepTaskId("SN", "tiny", l2[0].config));
}

TEST(Sweep, ShardPartitionIsTotalAndDisjoint)
{
    const DeviceConfig base;
    const auto points = expandSweep(
        base, {parseSweepAxis("l2_kb=128,256,512,1024"),
               parseSweepAxis("l2_slices=1,2,4")});
    const int shards = 4;
    for (const auto &bench : {"SN", "GMS", "LBM", "SPMV"}) {
        for (const auto &point : points) {
            const auto id = sweepTaskId(bench, "small", point.config);
            int owners = 0;
            for (int shard = 0; shard < shards; ++shard)
                owners += taskInShard(id, shards, shard) ? 1 : 0;
            EXPECT_EQ(owners, 1) << id;
            // A single shard owns everything.
            EXPECT_TRUE(taskInShard(id, 1, 0));
        }
    }
}

// ---------------------------------------------------------------- //
// Deterministic merge
// ---------------------------------------------------------------- //

std::string
fakeRecord(const std::string &task, const std::string &marker)
{
    return checkpointRecordLine(
        task,
        "{\"benchmark\":\"X\",\"suite\":\"T\",\"launches\":1,"
        "\"total_seconds\":1,\"total_warp_insts\":1,"
        "\"total_dram_sectors\":1,\"marker\":\"" + marker + "\"}");
}

TEST(Merge, DedupsSortsAndIsInputOrderInvariant)
{
    const auto in_a = tmpPath("merge_a.jsonl");
    const auto in_b = tmpPath("merge_b.jsonl");
    {
        std::ofstream a(in_a), b(in_b);
        // Overlapping byte-identical records, written out of order.
        a << fakeRecord("b/small/02", "x") << '\n'
          << fakeRecord("a/small/01", "x") << '\n';
        b << fakeRecord("a/small/01", "x") << '\n'
          << fakeRecord("c/small/03", "x") << '\n';
    }

    const auto out_ab = tmpPath("merge_ab.jsonl");
    const auto out_ba = tmpPath("merge_ba.jsonl");
    const auto mr = mergeCheckpoints({in_a, in_b}, out_ab);
    EXPECT_TRUE(mr.clean());
    EXPECT_EQ(mr.records, 4u);
    EXPECT_EQ(mr.tasks, 3u);
    EXPECT_EQ(mr.duplicates, 1u);
    mergeCheckpoints({in_b, in_a}, out_ba);

    const auto merged = slurp(out_ab);
    EXPECT_EQ(merged, slurp(out_ba)); // Bit-identical either order.
    // Sorted by task id, one record per task.
    const auto pos_a = merged.find("a/small/01");
    const auto pos_b = merged.find("b/small/02");
    const auto pos_c = merged.find("c/small/03");
    EXPECT_LT(pos_a, pos_b);
    EXPECT_LT(pos_b, pos_c);
    EXPECT_EQ(std::count(merged.begin(), merged.end(), '\n'), 3);
}

TEST(Merge, FlagsDisagreeingRecordsAsCorrupt)
{
    const auto in = tmpPath("merge_corrupt.jsonl");
    {
        std::ofstream f(in);
        f << fakeRecord("a/small/01", "x") << '\n'
          << fakeRecord("a/small/01", "y") << '\n' // Conflicts!
          << fakeRecord("b/small/02", "x") << '\n';
    }
    const auto out = tmpPath("merge_corrupt_out.jsonl");
    const auto mr = mergeCheckpoints({in}, out);
    EXPECT_FALSE(mr.clean());
    ASSERT_EQ(mr.corruptTasks.size(), 1u);
    EXPECT_EQ(mr.corruptTasks[0], "a/small/01");
    // The corrupt task is excluded; the clean one survives.
    const auto merged = slurp(out);
    EXPECT_EQ(merged.find("a/small/01"), std::string::npos);
    EXPECT_NE(merged.find("b/small/02"), std::string::npos);
}

TEST(Merge, SkipsLeaseLegacyAndTornLines)
{
    const auto in = tmpPath("merge_noise.jsonl");
    {
        std::ofstream f(in);
        f << R"({"state":"lease","gen":1,"task":"t","worker":"w"})"
          << '\n'
          << R"({"benchmark":"Old","status":"ok","launches":1,)"
          << R"("total_seconds":1,"total_warp_insts":1,)"
          << R"("total_dram_sectors":1})" << '\n'
          << fakeRecord("a/small/01", "x") << '\n'
          << R"({"task":"torn","sta)" << '\n';
    }
    const auto out = tmpPath("merge_noise_out.jsonl");
    const auto mr = mergeCheckpoints({in}, out);
    EXPECT_TRUE(mr.clean());
    EXPECT_EQ(mr.records, 1u);
    EXPECT_EQ(mr.legacy, 1u);
    EXPECT_EQ(mr.ignored, 2u); // Lease + torn line.
}

TEST(Merge, MissingInputsWarnCountAndNeverAbortTheMerge)
{
    // A partially crashed fleet must still merge: an absent input and
    // a zero-length one (a worker that died before its first
    // completion) are skipped and counted, not fatal.
    const auto in = tmpPath("merge_present.jsonl");
    {
        std::ofstream f(in);
        f << fakeRecord("a/small/01", "x") << '\n';
    }
    const auto empty = tmpPath("merge_empty.jsonl");
    {
        std::ofstream f(empty); // Created, zero bytes.
    }
    const auto out = tmpPath("merge_missing_out.jsonl");
    const auto mr = mergeCheckpoints(
        {"/nonexistent/nope.jsonl", in, empty}, out);
    EXPECT_TRUE(mr.clean());
    EXPECT_EQ(mr.missingInputs, 2u);
    EXPECT_EQ(mr.tasks, 1u);
    EXPECT_NE(slurp(out).find("a/small/01"), std::string::npos);

    // The output path is the one merge failure that stays fatal.
    EXPECT_THROW(mergeCheckpoints({in}, "/nonexistent/dir/out.jsonl"),
                 ConfigError);
}

// ---------------------------------------------------------------- //
// Coordination log
// ---------------------------------------------------------------- //

TEST(Coordination, FirstLeaseWinsAcrossWorkers)
{
    const auto log = tmpPath("coord_race.jsonl");
    CoordinationLog a(log, "alice");
    CoordinationLog b(log, "bob");
    EXPECT_EQ(a.generation(), 1);
    EXPECT_EQ(b.generation(), 1);

    EXPECT_EQ(a.claim("t1"), CoordinationLog::Claim::Won);
    EXPECT_EQ(b.claim("t1"), CoordinationLog::Claim::Leased);
    EXPECT_EQ(b.claim("t2"), CoordinationLog::Claim::Won);
    EXPECT_EQ(a.claim("t2"), CoordinationLog::Claim::Leased);
    // Re-claiming one's own lease still wins: a worker that retries a
    // task it owns is not blocked by its own record.
    EXPECT_EQ(a.claim("t1"), CoordinationLog::Claim::Won);
}

TEST(Coordination, DoneRecordsMarkTasksCompleted)
{
    const auto log = tmpPath("coord_done.jsonl");
    {
        CoordinationLog a(log, "alice");
        ASSERT_EQ(a.claim("t1"), CoordinationLog::Claim::Won);
        a.recordDone(fakeRecord("t1", "x"));
    }
    // A fresh worker — any generation — sees the completion.
    CoordinationLog b(log, "bob");
    EXPECT_EQ(b.claim("t1"), CoordinationLog::Claim::Completed);
    EXPECT_TRUE(b.completedTasks().count("t1"));
    EXPECT_EQ(b.claim("t2"), CoordinationLog::Claim::Won);
}

TEST(Coordination, LateJoinerHonoursTheLiveFleetsLeases)
{
    const auto log = tmpPath("coord_join.jsonl");
    CoordinationLog a(log, "alice");
    ASSERT_EQ(a.claim("t1"), CoordinationLog::Claim::Won);

    // Opened AFTER alice leased: joins her generation and respects
    // the lease (the duplicated-work bug this semantics prevents).
    CoordinationLog b(log, "bob");
    EXPECT_EQ(b.generation(), a.generation());
    EXPECT_EQ(b.claim("t1"), CoordinationLog::Claim::Leased);
}

TEST(Coordination, NewGenerationUnbindsStaleLeases)
{
    const auto log = tmpPath("coord_recover.jsonl");
    {
        CoordinationLog crashed(log, "crashed");
        ASSERT_EQ(crashed.claim("t1"), CoordinationLog::Claim::Won);
        crashed.recordDone(fakeRecord("t2", "x"));
        // ...and the fleet dies without completing t1.
    }
    CoordinationLog recovery(log, "recovery",
                             /*newGeneration=*/true);
    EXPECT_EQ(recovery.generation(), 2);
    // The stale lease is unbound; the done record still holds.
    EXPECT_EQ(recovery.claim("t1"), CoordinationLog::Claim::Won);
    EXPECT_EQ(recovery.claim("t2"),
              CoordinationLog::Claim::Completed);
}

// ---------------------------------------------------------------- //
// runSweep: resume, dedup, cache, coordination
// ---------------------------------------------------------------- //

TEST(RunSweep, CheckpointResumesPerConfiguration)
{
    const auto manifest = tmpPath("sweep_resume.jsonl");
    const DeviceConfig base;
    CampaignOptions opts;
    opts.checkpointPath = manifest;

    const auto two = tasksFor({okInfo("A")}, base,
                              {parseSweepAxis("l2_kb=256,512")});
    const auto first = runSweep(two, opts);
    EXPECT_EQ(first.okCount, 2);

    // Same matrix again: both points resume from the checkpoint.
    const auto again = runSweep(two, opts);
    EXPECT_EQ(again.okCount, 0);
    EXPECT_EQ(again.skippedCount, 2);

    // A wider matrix re-runs only the unexplored configuration.
    const auto three = tasksFor(
        {okInfo("A")}, base, {parseSweepAxis("l2_kb=256,512,1024")});
    const auto extended = runSweep(three, opts);
    EXPECT_EQ(extended.okCount, 1);
    EXPECT_EQ(extended.skippedCount, 2);
    EXPECT_EQ(extended.entries[2].status, RunStatus::OK);
    EXPECT_EQ(extended.entries[2].label, "l2_kb=1024");
}

TEST(RunSweep, LegacyNameRecordHonouredOnlyWhenUnambiguous)
{
    const auto manifest = tmpPath("sweep_legacy.jsonl");
    {
        // A pre-task-id manifest line, as PR 5 campaigns wrote them.
        std::ofstream f(manifest);
        f << R"({"benchmark":"A","status":"ok","suite":"Test",)"
          << R"("domain":"Test","launches":1,"total_seconds":0.5,)"
          << R"("total_warp_insts":128,"total_dram_sectors":16})"
          << '\n';
    }
    const DeviceConfig base;
    CampaignOptions opts;
    opts.checkpointPath = manifest;

    // One task per name: the legacy record is unambiguous — honour it.
    const auto single = runSweep(tasksFor({okInfo("A")}, base, {}),
                                 opts);
    EXPECT_EQ(single.skippedCount, 1);
    EXPECT_EQ(single.okCount, 0);

    // Two configurations of the same name: the record cannot say
    // which one completed, so both points run (the pre-sweep resume
    // bug this keying fixes).
    const auto swept = runSweep(
        tasksFor({okInfo("A")}, base,
                 {parseSweepAxis("l2_kb=256,512")}),
        opts);
    EXPECT_EQ(swept.okCount, 2);
    EXPECT_EQ(swept.skippedCount, 0);
}

TEST(RunSweep, ExecutionKnobPointsShareOneResult)
{
    const DeviceConfig base;
    CampaignOptions opts;
    const auto result = runSweep(
        tasksFor({okInfo("A")}, base,
                 {parseSweepAxis("threads=1,2,4")}),
        opts);
    // One simulation satisfies all three points: equal task ids.
    EXPECT_EQ(result.okCount, 1);
    EXPECT_EQ(result.skippedCount, 2);
    EXPECT_EQ(result.entries[0].taskId, result.entries[1].taskId);
    EXPECT_EQ(result.entries[1].taskId, result.entries[2].taskId);
}

TEST(RunSweep, CacheAnswersRepeatSweepsByteIdentically)
{
    const DeviceConfig base;
    ResultCache cache(64);
    CampaignOptions opts;
    opts.cache = &cache;

    const auto tasks = tasksFor({okInfo("A"), okInfo("B")}, base,
                                {parseSweepAxis("l2_kb=256,512")});

    const auto cold_manifest = tmpPath("sweep_cache_cold.jsonl");
    opts.checkpointPath = cold_manifest;
    const auto cold = runSweep(tasks, opts);
    EXPECT_EQ(cold.okCount, 4);
    EXPECT_EQ(cache.size(), 4u);

    // Warm pass, fresh checkpoint: every task answered by the cache,
    // and the manifest it writes is byte-identical to the cold one —
    // a cache hit is provably a fresh run.
    const auto warm_manifest = tmpPath("sweep_cache_warm.jsonl");
    opts.checkpointPath = warm_manifest;
    const auto warm = runSweep(tasks, opts);
    EXPECT_EQ(warm.okCount, 0);
    EXPECT_EQ(warm.cachedCount, 4);
    for (const auto &entry : warm.entries) {
        EXPECT_EQ(entry.status, RunStatus::Cached);
        EXPECT_FALSE(entry.resultBody.empty());
        EXPECT_GT(entry.profile.launches, 0u);
    }
    EXPECT_EQ(slurp(cold_manifest), slurp(warm_manifest));
}

TEST(RunSweep, CachePersistenceSurvivesAProcessBoundary)
{
    const DeviceConfig base;
    const auto cache_file = tmpPath("sweep_cache.ndjson");
    const auto tasks = tasksFor({okInfo("A")}, base,
                                {parseSweepAxis("l2_kb=256,512")});
    {
        ResultCache cache(64);
        CampaignOptions opts;
        opts.cache = &cache;
        EXPECT_EQ(runSweep(tasks, opts).okCount, 2);
        cache.saveNdjson(cache_file);
    }
    // "New process": a fresh cache warmed from disk answers the whole
    // sweep without simulating.
    ResultCache warmed(64);
    EXPECT_EQ(warmed.loadNdjson(cache_file), 2u);
    CampaignOptions opts;
    opts.cache = &warmed;
    const auto result = runSweep(tasks, opts);
    EXPECT_EQ(result.okCount, 0);
    EXPECT_EQ(result.cachedCount, 2);
}

TEST(RunSweep, CoordinationSplitsWorkAndSharesCompletions)
{
    const auto log = tmpPath("sweep_coord.jsonl");
    const DeviceConfig base;
    const auto tasks = tasksFor({okInfo("A"), okInfo("B")}, base,
                                {parseSweepAxis("l2_kb=256,512")});

    CoordinationLog worker_a(log, "alice");
    CampaignOptions opts;
    opts.coordination = &worker_a;
    const auto first = runSweep(tasks, opts);
    EXPECT_EQ(first.okCount, 4);

    // A second worker on the same log: every task already has a done
    // record, nothing runs twice.
    CoordinationLog worker_b(log, "bob");
    opts.coordination = &worker_b;
    const auto second = runSweep(tasks, opts);
    EXPECT_EQ(second.okCount, 0);
    EXPECT_EQ(second.skippedCount, 4);

    // The log doubles as a checkpoint: merging it yields one record
    // per task, clean.
    const auto merged = tmpPath("sweep_coord_merged.jsonl");
    const auto mr = mergeCheckpoints({log}, merged);
    EXPECT_TRUE(mr.clean());
    EXPECT_EQ(mr.tasks, 4u);
}

TEST(RunSweep, CachedEntriesStillFaceTheIntegrityGate)
{
    const DeviceConfig base;
    ResultCache cache(64);
    CampaignOptions opts;
    opts.cache = &cache;
    const auto tasks = tasksFor({okInfo("A")}, base, {});
    ASSERT_EQ(runSweep(tasks, opts).okCount, 1);

    // A floor no real run could meet: the cached answer must be
    // rejected just like a fresh one would be.
    opts.minCoverage = 2.0;
    const auto gated = runSweep(tasks, opts);
    EXPECT_EQ(gated.corruptCount, 1);
    EXPECT_EQ(gated.entries[0].status, RunStatus::Corrupt);
}

} // namespace
