/**
 * @file
 * Tests for the golden-verification primitives: order independence
 * and canonicalization of OutputDigest, and GoldenTable round-trip,
 * lenient loading, and malformed-table rejection.
 */

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "core/verify.hh"

#include "../support/expect_error.hh"

namespace {

using namespace cactus::core;
using cactus::ConfigError;
using cactus::test::expectError;

std::string
tmpPath(const std::string &leaf)
{
    const std::string path = "/tmp/" + leaf;
    std::remove(path.c_str());
    return path;
}

TEST(OutputDigest, IsIndependentOfRecordingOrder)
{
    OutputDigest forward, backward;
    const std::vector<double> values{1.5, -2.25, 0.0, 42.0, 1e-9};
    for (std::size_t i = 0; i < values.size(); ++i)
        forward.add(i, values[i]);
    for (std::size_t i = values.size(); i-- > 0;)
        backward.add(i, values[i]);
    EXPECT_EQ(forward.result().digest, backward.result().digest);
    EXPECT_EQ(forward.result().elements, values.size());
}

TEST(OutputDigest, IndexParticipatesInTheHash)
{
    OutputDigest a, b;
    a.add(0, 1.0);
    a.add(1, 2.0);
    b.add(0, 2.0);
    b.add(1, 1.0);
    EXPECT_NE(a.result().digest, b.result().digest);
}

TEST(OutputDigest, NegativeZeroFoldsToPositiveZero)
{
    OutputDigest a, b;
    a.add(0, 0.0);
    b.add(0, -0.0);
    EXPECT_EQ(a.result().digest, b.result().digest);
}

TEST(OutputDigest, NonFiniteValuesAreCountedAndCanonical)
{
    OutputDigest a, b;
    a.add(0, std::numeric_limits<double>::quiet_NaN());
    b.add(0, std::numeric_limits<double>::infinity());
    EXPECT_EQ(a.result().digest, b.result().digest);
    EXPECT_EQ(a.result().nonFinite, 1u);
    EXPECT_EQ(b.result().nonFinite, 1u);
}

TEST(OutputDigest, SplitBuffersMatchOneContiguousBuffer)
{
    const std::vector<float> all{1.f, 2.f, 3.f, 4.f};
    const std::vector<float> head{1.f, 2.f}, tail{3.f, 4.f};
    OutputDigest whole, split;
    whole.addBuffer(all);
    split.addBuffer(head, 0);
    split.addBuffer(tail, head.size());
    EXPECT_EQ(whole.result().digest, split.result().digest);
}

TEST(OutputDigest, IntegerAndFloatBuffersDiffer)
{
    OutputDigest ints, floats;
    ints.addBuffer(std::vector<int>{1, 2, 3});
    floats.addBuffer(std::vector<float>{1.f, 2.f, 3.f});
    EXPECT_NE(ints.result().digest, floats.result().digest);
}

TEST(GoldenTable, SaveLoadRoundTrip)
{
    const std::string path = tmpPath("goldens_roundtrip.txt");
    GoldenTable table;
    OutputDigest d;
    d.addBuffer(std::vector<float>{1.f, 2.f});
    table.set("GST", "tiny", d.result());
    table.set("GST", "small", d.result());
    table.set("sgemm", "tiny", VerifyResult{42, 7, 0});
    table.save(path);

    const GoldenTable loaded = GoldenTable::load(path);
    EXPECT_EQ(loaded.size(), 3u);
    const auto got = loaded.find("GST", "tiny");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->digest, d.result().digest);
    EXPECT_EQ(got->elements, 2u);
    EXPECT_FALSE(loaded.find("GST", "huge").has_value());
    EXPECT_FALSE(loaded.find("nope", "tiny").has_value());
    std::remove(path.c_str());
}

TEST(GoldenTable, LoadRejectsMissingFile)
{
    expectError<ConfigError>(
        [] { GoldenTable::load("/nonexistent/goldens.txt"); },
        "golden");
}

TEST(GoldenTable, LoadOrEmptyToleratesMissingFile)
{
    const GoldenTable table =
        GoldenTable::loadOrEmpty("/nonexistent/goldens.txt");
    EXPECT_EQ(table.size(), 0u);
}

TEST(GoldenTable, LoadRejectsMalformedDigest)
{
    const std::string path = tmpPath("goldens_bad.txt");
    std::ofstream(path) << "GST tiny nothexnothexnotx 12\n";
    expectError<ConfigError>([&] { GoldenTable::load(path); },
                             "expected 'name scale digest16");
    std::remove(path.c_str());
}

TEST(GoldenTable, CommentsAndBlankLinesAreSkipped)
{
    const std::string path = tmpPath("goldens_comments.txt");
    std::ofstream(path) << "# header\n\nGST tiny "
                        << VerifyResult{1, 2, 0}.hex() << " 2\n";
    const GoldenTable table = GoldenTable::load(path);
    EXPECT_EQ(table.size(), 1u);
    std::remove(path.c_str());
}

} // namespace
