/**
 * @file
 * Tests for the benchmark registry and the profiling harness: dominance
 * ranking, cumulative shares, aggregate roofline coordinates, and the
 * FAMD observation builder.
 */

#include <gtest/gtest.h>

#include "core/harness.hh"

#include "../support/expect_error.hh"

namespace {

using namespace cactus::core;
using cactus::gpu::Dim3;
using cactus::gpu::KernelDesc;
using cactus::gpu::ThreadCtx;

/** A synthetic benchmark with a controlled kernel time distribution. */
class SyntheticBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "synthetic"; }
    std::string suite() const override { return "Test"; }
    std::string domain() const override { return "Test"; }

    void
    run(cactus::gpu::Device &dev) override
    {
        // "big" dominates; "mid" is invoked thrice; "small" is tiny.
        std::vector<float> a(1 << 20, 1.f), b(1 << 20, 0.f);
        dev.launchLinear(KernelDesc("big"), a.size(), 256,
                         [&](ThreadCtx &ctx) {
                             const auto i = ctx.globalId();
                             ctx.fp32(20);
                             ctx.st(&b[i], ctx.ld(&a[i]) * 2.f);
                         });
        for (int r = 0; r < 3; ++r) {
            dev.launchLinear(KernelDesc("mid"), a.size() / 8, 256,
                             [&](ThreadCtx &ctx) {
                                 const auto i = ctx.globalId();
                                 ctx.st(&b[i], ctx.ld(&a[i]));
                             });
        }
        dev.launchLinear(KernelDesc("small"), 1024, 256,
                         [&](ThreadCtx &ctx) { ctx.fp32(1); });
    }
};

TEST(Harness, ProfilesAreDominanceOrdered)
{
    SyntheticBenchmark bench;
    const auto profile = runProfiled(bench);
    ASSERT_EQ(profile.kernelCount(), 3);
    EXPECT_EQ(profile.kernels[0].name, "big");
    EXPECT_EQ(profile.kernels[1].invocations, 3u);
    EXPECT_GE(profile.kernels[0].seconds, profile.kernels[1].seconds);
    EXPECT_GE(profile.kernels[1].seconds, profile.kernels[2].seconds);
}

TEST(Harness, CumulativeSharesReachOne)
{
    SyntheticBenchmark bench;
    const auto profile = runProfiled(bench);
    const auto shares = profile.cumulativeTimeShares();
    ASSERT_EQ(shares.size(), 3u);
    EXPECT_GT(shares[0], 0.4);
    EXPECT_NEAR(shares.back(), 1.0, 1e-9);
    for (std::size_t i = 1; i < shares.size(); ++i)
        EXPECT_GE(shares[i], shares[i - 1]);
}

TEST(Harness, KernelsForTimeFraction)
{
    SyntheticBenchmark bench;
    const auto profile = runProfiled(bench);
    EXPECT_GE(profile.kernelsForTimeFraction(0.7), 1);
    EXPECT_LE(profile.kernelsForTimeFraction(0.7), 3);
    EXPECT_EQ(profile.kernelsForTimeFraction(1.0), 3);
}

TEST(Harness, AggregateCoordinatesAreFinite)
{
    SyntheticBenchmark bench;
    const auto profile = runProfiled(bench);
    EXPECT_GT(profile.aggregateGips(), 0.0);
    EXPECT_GT(profile.aggregateIntensity(), 0.0);
    EXPECT_GT(profile.totalWarpInsts, 0u);
    EXPECT_GT(profile.totalSeconds, 0.0);
}

TEST(Harness, DominantObservationsRespectCutoff)
{
    SyntheticBenchmark bench;
    std::vector<BenchmarkProfile> profiles{runProfiled(bench)};
    const auto obs = dominantKernelObservations(profiles, 0.7);
    ASSERT_FALSE(obs.empty());
    EXPECT_LE(obs.size(), 3u);
    double covered = 0;
    for (const auto &o : obs)
        covered += o.timeShare;
    EXPECT_GE(covered, 0.7 - 1e-9);
    EXPECT_EQ(obs[0].benchmark, "synthetic");
}

TEST(Harness, MixedDataHasMetricColumnsAndTwoLabels)
{
    SyntheticBenchmark bench;
    std::vector<BenchmarkProfile> profiles{runProfiled(bench)};
    const auto obs = dominantKernelObservations(profiles, 1.0);
    const auto data =
        buildMixedData(obs, cactus::gpu::DeviceConfig{});
    EXPECT_EQ(data.quantitative.rows(), obs.size());
    EXPECT_EQ(data.quantitative.cols(),
              static_cast<std::size_t>(
                  cactus::gpu::KernelMetrics::kNumColumns));
    ASSERT_EQ(data.qualitative.size(), 2u);
    for (int label : data.qualitative[0]) {
        EXPECT_GE(label, 0);
        EXPECT_LE(label, 1);
    }
}

TEST(Registry, AllSuitesRegistered)
{
    const auto &reg = Registry::instance();
    EXPECT_EQ(reg.list("Cactus").size(), 10u);
    EXPECT_EQ(reg.list("CactusExt").size(), 3u);
    EXPECT_EQ(reg.list("Parboil").size(), 11u);
    EXPECT_EQ(reg.list("Rodinia").size(), 18u);
    EXPECT_EQ(reg.list("Tango").size(), 3u);
    EXPECT_EQ(reg.list().size(), 45u);
}

TEST(Registry, CreateByName)
{
    auto bench = Registry::instance().create("GMS", Scale::Tiny);
    EXPECT_EQ(bench->name(), "GMS");
    EXPECT_EQ(bench->suite(), "Cactus");
    EXPECT_TRUE(Registry::instance().contains("sgemm"));
    EXPECT_FALSE(Registry::instance().contains("no_such"));
}

TEST(RegistryError, UnknownBenchmarkThrows)
{
    cactus::test::expectError<cactus::ConfigError>(
        [] { Registry::instance().create("does_not_exist"); },
        "unknown benchmark");
}

} // namespace
