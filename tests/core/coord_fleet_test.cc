/**
 * @file
 * Tests for the self-healing fleet protocol: heartbeat liveness,
 * TTL-based lease stealing with fencing tokens, zombie abandonment,
 * voluntary release, torn-record and injected-fault tolerance,
 * worker-identity aliasing detection, zombie-duplicate discard in the
 * merge, and runSweep() recovering a sweep whose previous holder died
 * without a --new-generation restart.
 */

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "common/fault.hh"
#include "core/campaign.hh"
#include "core/coord.hh"
#include "core/sweep.hh"

namespace {

using namespace cactus::core;
using cactus::ConfigError;
using cactus::FaultInjector;
using cactus::gpu::DeviceConfig;
using cactus::gpu::KernelDesc;
using cactus::gpu::ThreadCtx;

using Claim = CoordinationLog::Claim;
using Options = CoordinationLog::Options;

std::string
tmpPath(const std::string &leaf)
{
    const std::string path = "/tmp/" + leaf;
    std::remove(path.c_str());
    return path;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

void
appendRaw(const std::string &path, const std::string &line)
{
    std::ofstream out(path, std::ios::app);
    out << line << '\n';
}

const std::string kBody =
    "{\"benchmark\":\"X\",\"suite\":\"T\",\"launches\":1,"
    "\"total_seconds\":1,\"total_warp_insts\":1,"
    "\"total_dram_sectors\":1}";

/** Options with stealing on and no beat throttling, so tests drive
 *  the observer clock one beat() at a time. */
Options
stealOpts(int ttl)
{
    Options opts;
    opts.leaseTtl = ttl;
    opts.beatIntervalSeconds = 0.0;
    return opts;
}

// ---------------------------------------------------------------- //
// Heartbeats
// ---------------------------------------------------------------- //

TEST(Heartbeat, SeqIsMonotonicAcrossHandlesOfOneWorker)
{
    const auto log = tmpPath("fleet_beats.jsonl");
    {
        CoordinationLog a(log, "alice", stealOpts(2));
        a.beat();
        a.beat();
        a.beat();
        EXPECT_EQ(a.lastScan().beats, 3u);
        EXPECT_EQ(a.lastScan().desync, 0u);
    }
    // A second handle in the same process resumes the seq above the
    // log's high-water mark instead of restarting at 1 — a restart
    // that reused the id must never look like a seq regression.
    CoordinationLog again(log, "alice", stealOpts(2));
    again.beat();
    EXPECT_EQ(again.lastScan().beats, 4u);
    EXPECT_EQ(again.lastScan().desync, 0u);

    const auto stats = CoordinationLog::inspect(log);
    EXPECT_EQ(stats.beats, 4u);
    EXPECT_EQ(stats.desync, 0u);
    EXPECT_EQ(stats.workers, 1u);
}

TEST(Heartbeat, MaybeBeatThrottlesByInterval)
{
    const auto log = tmpPath("fleet_throttle.jsonl");
    Options slow;
    slow.leaseTtl = 2;
    slow.beatIntervalSeconds = 1000.0; // Never due again in-test.
    CoordinationLog a(log, "alice", slow);
    EXPECT_TRUE(a.maybeBeat());   // First beat is always due.
    EXPECT_FALSE(a.maybeBeat());  // Throttled.
    EXPECT_EQ(a.lastScan().beats, 1u);

    CoordinationLog b(log, "bob", stealOpts(2)); // Interval 0.
    EXPECT_TRUE(b.maybeBeat());
    EXPECT_TRUE(b.maybeBeat());
}

TEST(Heartbeat, AliasedWorkerIdIsAConfigError)
{
    const auto log = tmpPath("fleet_alias.jsonl");
    CoordinationLog a(log, "alice", stealOpts(2));
    a.beat();
    // A second live process beating under our id: the next rescan
    // must fail fast, naming both pids, instead of letting the two
    // processes honour each other's leases.
    appendRaw(log, "{\"state\":\"beat\",\"gen\":1,"
                   "\"worker\":\"alice\",\"pid\":999999,\"seq\":1}");
    try {
        a.beat();
        FAIL() << "aliased worker id was not detected";
    } catch (const ConfigError &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("alice"), std::string::npos) << what;
        EXPECT_NE(what.find("999999"), std::string::npos) << what;
    }
}

TEST(Heartbeat, DeadPredecessorsBeatsAreTolerated)
{
    const auto log = tmpPath("fleet_alias_dead.jsonl");
    // All of the foreign pid's beats precede our first record: that
    // is a dead predecessor that used the same name, not a live
    // collision — a restarted worker must be able to reuse its id.
    appendRaw(log, "{\"state\":\"beat\",\"gen\":1,"
                   "\"worker\":\"alice\",\"pid\":999999,\"seq\":1}");
    CoordinationLog a(log, "alice", stealOpts(2));
    EXPECT_NO_THROW(a.beat());
    EXPECT_NO_THROW(a.beat());
}

// ---------------------------------------------------------------- //
// Fenced stealing
// ---------------------------------------------------------------- //

TEST(Fencing, StaleLeaseIsStolenAfterTtlObserverBeats)
{
    const auto log = tmpPath("fleet_steal.jsonl");
    CoordinationLog alice(log, "alice", stealOpts(2));
    CoordinationLog bob(log, "bob", stealOpts(2));
    ASSERT_EQ(alice.claim("t1"), Claim::Won);

    // Not stale yet: bob has emitted no beats since alice's lease.
    EXPECT_EQ(bob.claim("t1"), Claim::Leased);
    bob.beat();
    EXPECT_EQ(bob.claim("t1"), Claim::Leased); // 1 beat < ttl 2.
    bob.beat();

    // Two of bob's own beats with no sign of alice: the lease is
    // stale, and bob's re-claim is a steal at fence 1.
    EXPECT_EQ(bob.claim("t1"), Claim::Won);
    const auto stats = CoordinationLog::inspect(log);
    EXPECT_EQ(stats.steals, 1u);
    EXPECT_EQ(stats.desync, 0u);

    // Alice re-reads: her lease is fenced off.
    EXPECT_EQ(alice.claim("t1"), Claim::Stolen);
}

TEST(Fencing, OwnerBeatsKeepTheLeaseAlive)
{
    const auto log = tmpPath("fleet_alive.jsonl");
    CoordinationLog alice(log, "alice", stealOpts(2));
    CoordinationLog bob(log, "bob", stealOpts(2));
    ASSERT_EQ(alice.claim("t1"), Claim::Won);

    bob.beat();
    alice.beat(); // Fresh activity resets bob's staleness window.
    bob.beat();
    EXPECT_EQ(bob.claim("t1"), Claim::Leased); // Only 1 beat since.
    bob.beat();
    EXPECT_EQ(bob.claim("t1"), Claim::Won); // Now 2: stolen.
}

TEST(Fencing, ZombieAbandonsItsResultAfterASteal)
{
    const auto log = tmpPath("fleet_zombie.jsonl");
    CoordinationLog alice(log, "alice", stealOpts(2));
    CoordinationLog bob(log, "bob", stealOpts(2));
    ASSERT_EQ(alice.claim("t1"), Claim::Won);
    bob.beat();
    bob.beat();
    ASSERT_EQ(bob.claim("t1"), Claim::Won); // Steal at fence 1.

    // Alice finishes her now-fenced-off attempt: the result is
    // abandoned — nothing appended, no credit claimed.
    const auto before = CoordinationLog::inspect(log);
    EXPECT_FALSE(alice.recordDone("t1", kBody));
    const auto after = CoordinationLog::inspect(log);
    EXPECT_EQ(after.dones, 0u);
    EXPECT_EQ(after.leases, before.leases);

    // The thief's completion is the one that lands.
    EXPECT_TRUE(bob.recordDone("t1", kBody));
    EXPECT_EQ(CoordinationLog::inspect(log).dones, 1u);
    EXPECT_EQ(alice.claim("t1"), Claim::Completed);
}

TEST(Fencing, CompletionBeatsALateZombieEvenWithoutASteal)
{
    const auto log = tmpPath("fleet_late.jsonl");
    CoordinationLog alice(log, "alice", stealOpts(2));
    ASSERT_EQ(alice.claim("t1"), Claim::Won);
    ASSERT_TRUE(alice.recordDone("t1", kBody));
    // A second completion attempt for a task that is already done is
    // abandoned, whoever makes it.
    EXPECT_FALSE(alice.recordDone("t1", kBody));
    EXPECT_EQ(CoordinationLog::inspect(log).dones, 1u);
}

TEST(Fencing, ReleaseLetsALivePeerRetryImmediately)
{
    const auto log = tmpPath("fleet_release.jsonl");
    CoordinationLog alice(log, "alice", stealOpts(3));
    CoordinationLog bob(log, "bob", stealOpts(3));
    ASSERT_EQ(alice.claim("t1"), Claim::Won);

    // Alice's attempt failed locally; she unbinds voluntarily, so bob
    // re-leases NOW — no waiting out the TTL on a live-but-unlucky
    // peer (the two-live-workers deadlock this record prevents).
    alice.release("t1");
    EXPECT_EQ(bob.claim("t1"), Claim::Won);
    EXPECT_EQ(CoordinationLog::inspect(log).releases, 1u);
}

// ---------------------------------------------------------------- //
// Torn records and injected append faults
// ---------------------------------------------------------------- //

TEST(TornLog, TornLinesAreSkippedAndCountedWithoutDesync)
{
    const auto log = tmpPath("fleet_torn.jsonl");
    appendRaw(log, "{\"state\":\"lease\",\"gen\":1,"
                   "\"task\":\"t1\",\"worker\":\"ghost\",\"fence\":0}");
    // A record that lost its tail mid-append: skipped, counted as
    // torn, and — critically — not counted as protocol desync.
    appendRaw(log, "{\"state\":\"lease\",\"gen\":1,\"ta");
    appendRaw(log, "{\"state\":\"beat\",\"gen\":1,"
                   "\"worker\":\"ghost\",\"pid\":7,\"seq\":1}");

    CoordinationLog reader(log, "reader", stealOpts(2));
    EXPECT_EQ(reader.lastScan().torn, 1u);
    EXPECT_EQ(reader.lastScan().desync, 0u);
    EXPECT_EQ(reader.lastScan().leases, 1u);
    // The intact lease still binds; the torn one has no effect.
    EXPECT_EQ(reader.claim("t1"), Claim::Leased);
    EXPECT_EQ(reader.claim("t2"), Claim::Won);
}

TEST(TornLog, InjectedAppendFaultThrowsAndTheLogStaysReadable)
{
    const auto log = tmpPath("fleet_fault.jsonl");
    {
        CoordinationLog a(log, "alice", stealOpts(2));
        // Probability 1: the very next append tears mid-record and
        // throws, as if the shared filesystem hit ENOSPC.
        a.setFaultInjector(FaultInjector::parse("coord-append:1:1"));
        EXPECT_THROW(a.claim("a-task-id-long-enough-to-tear"),
                     ConfigError);
    }
    // A fresh worker opens the same log: the newline guard seals the
    // torn tail, the scan skips it as torn, and claims proceed.
    CoordinationLog b(log, "bob", stealOpts(2));
    EXPECT_GE(b.lastScan().torn, 1u);
    EXPECT_EQ(b.lastScan().desync, 0u);
    EXPECT_EQ(b.claim("a-task-id-long-enough-to-tear"), Claim::Won);
    EXPECT_TRUE(b.recordDone("a-task-id-long-enough-to-tear", kBody));
    EXPECT_EQ(CoordinationLog::inspect(log).dones, 1u);
}

// ---------------------------------------------------------------- //
// Merge: fence attribution and zombie-duplicate discard
// ---------------------------------------------------------------- //

/** A fenced done record exactly as CoordinationLog::recordDone wraps
 *  it: fence and worker sit before "result". */
std::string
fencedDone(const std::string &task, long fence,
           const std::string &worker, const std::string &body)
{
    return "{\"task\":\"" + task + "\",\"status\":\"ok\",\"fence\":" +
        std::to_string(fence) + ",\"worker\":\"" + worker +
        "\",\"result\":" + body + "}";
}

TEST(MergeFencing, ZombieDuplicateIsDiscardedByFence)
{
    const auto coord = tmpPath("fleet_merge_zombie.jsonl");
    // The zombie's fence-0 completion and the thief's fence-1 one,
    // byte-identical bodies — the deterministic simulator guarantee.
    appendRaw(coord, fencedDone("t1", 0, "alice", kBody));
    appendRaw(coord, fencedDone("t1", 1, "bob", kBody));

    const auto out = tmpPath("fleet_merge_zombie_out.jsonl");
    const auto mr = mergeCheckpoints({coord}, out);
    EXPECT_TRUE(mr.clean());
    EXPECT_EQ(mr.tasks, 1u);
    EXPECT_EQ(mr.duplicates, 1u);        // Equal bodies collapse.
    EXPECT_EQ(mr.zombieDuplicates, 1u);  // ...and the loser is the
                                         // lower fence.
    ASSERT_EQ(mr.recoveredTasks.size(), 1u);
    EXPECT_EQ(mr.recoveredTasks[0].first, "t1");
    EXPECT_EQ(mr.recoveredTasks[0].second, 1);

    // The merged bytes are the canonical checkpoint record — exactly
    // what a serial, never-stolen run would have merged to.
    const auto serial = tmpPath("fleet_merge_serial.jsonl");
    appendRaw(serial, checkpointRecordLine("t1", kBody));
    const auto serial_out = tmpPath("fleet_merge_serial_out.jsonl");
    mergeCheckpoints({serial}, serial_out);
    EXPECT_EQ(slurp(out), slurp(serial_out));
}

TEST(MergeFencing, NoFenceCanBlessADisagreeingBody)
{
    const auto coord = tmpPath("fleet_merge_corrupt.jsonl");
    const std::string other =
        "{\"benchmark\":\"X\",\"suite\":\"T\",\"launches\":2,"
        "\"total_seconds\":2,\"total_warp_insts\":2,"
        "\"total_dram_sectors\":2}";
    appendRaw(coord, fencedDone("t1", 0, "alice", kBody));
    appendRaw(coord, fencedDone("t1", 9, "bob", other));

    const auto out = tmpPath("fleet_merge_corrupt_out.jsonl");
    const auto mr = mergeCheckpoints({coord}, out);
    // Same task id, different bytes: a determinism violation however
    // high the winning fence — CORRUPT, excluded from the report.
    EXPECT_FALSE(mr.clean());
    ASSERT_EQ(mr.corruptTasks.size(), 1u);
    EXPECT_EQ(mr.corruptTasks[0], "t1");
    EXPECT_EQ(slurp(out).find("t1"), std::string::npos);
}

// ---------------------------------------------------------------- //
// runSweep: self-healing without --new-generation
// ---------------------------------------------------------------- //

/** Deterministic stub benchmark (same shape as sweep_test's). */
class OkBenchmark : public Benchmark
{
  public:
    explicit OkBenchmark(std::string name) : name_(std::move(name)) {}
    std::string name() const override { return name_; }
    std::string suite() const override { return "Test"; }
    std::string domain() const override { return "Test"; }

    void
    run(cactus::gpu::Device &dev) override
    {
        const std::size_t n = 4096;
        std::vector<float> a(n, 1.f), b(n, 2.f), c(n, 0.f);
        dev.launchLinear(KernelDesc(name_ + "_vadd"), n, 256,
                         [&](ThreadCtx &ctx) {
                             const auto i = ctx.globalId();
                             ctx.fp32();
                             ctx.st(&c[i],
                                    ctx.ld(&a[i]) + ctx.ld(&b[i]));
                         });
        recordOutput(c);
    }

  private:
    std::string name_;
};

BenchmarkInfo
okInfo(const std::string &name)
{
    return {name, "Test", "Test", [name](Scale) {
                return std::unique_ptr<Benchmark>(
                    new OkBenchmark(name));
            }};
}

TEST(RunSweepFleet, DeadWorkersLeaseIsStolenWithoutNewGeneration)
{
    const auto log = tmpPath("fleet_selfheal.jsonl");
    const DeviceConfig base;
    std::vector<CampaignTask> tasks;
    for (const auto &point :
         expandSweep(base, {parseSweepAxis("l2_kb=256,512")}))
        tasks.push_back({okInfo("A"), point.config, point.label});

    // A ghost worker leased the first task and died silently — no
    // beats, no release, no done record.
    const auto ghosted =
        sweepTaskId("A", "small", tasks[0].config);
    appendRaw(log, "{\"state\":\"lease\",\"gen\":1,\"task\":\"" +
                       ghosted + "\",\"worker\":\"ghost\","
                       "\"fence\":0}");

    // A live worker with heartbeat leases on: the campaign defers the
    // ghosted task, beats past the TTL, steals, and completes the
    // whole sweep — no --new-generation, no human in the loop.
    CoordinationLog worker(log, "live", stealOpts(1));
    CampaignOptions opts;
    opts.coordination = &worker;
    const auto result = runSweep(tasks, opts);
    EXPECT_EQ(result.okCount, 2);
    EXPECT_EQ(result.skippedCount, 0);
    EXPECT_EQ(result.stolenCount, 0);
    EXPECT_TRUE(result.allOk());

    const auto stats = CoordinationLog::inspect(log);
    EXPECT_EQ(stats.steals, 1u);
    EXPECT_EQ(stats.desync, 0u);

    const auto merged = tmpPath("fleet_selfheal_merged.jsonl");
    const auto mr = mergeCheckpoints({log}, merged);
    EXPECT_TRUE(mr.clean());
    EXPECT_EQ(mr.tasks, 2u);
    // The recovered task is attributed to exactly one winning fence.
    ASSERT_EQ(mr.recoveredTasks.size(), 1u);
    EXPECT_EQ(mr.recoveredTasks[0].first, ghosted);
    EXPECT_EQ(mr.recoveredTasks[0].second, 1);
}

TEST(RunSweepFleet, TtlZeroKeepsTheLegacySkipSemantics)
{
    const auto log = tmpPath("fleet_legacy_ttl0.jsonl");
    const DeviceConfig base;
    std::vector<CampaignTask> tasks;
    for (const auto &point : expandSweep(base, {}))
        tasks.push_back({okInfo("A"), point.config, point.label});
    const auto ghosted =
        sweepTaskId("A", "small", tasks[0].config);
    appendRaw(log, "{\"state\":\"lease\",\"gen\":1,\"task\":\"" +
                       ghosted + "\",\"worker\":\"ghost\","
                       "\"fence\":0}");

    // Stealing off: the foreign lease binds until --new-generation,
    // exactly the pre-fencing behaviour.
    CoordinationLog worker(log, "live"); // leaseTtl = 0.
    CampaignOptions opts;
    opts.coordination = &worker;
    const auto result = runSweep(tasks, opts);
    EXPECT_EQ(result.okCount, 0);
    EXPECT_EQ(result.skippedCount, 1);
}

} // namespace
