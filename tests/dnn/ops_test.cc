/**
 * @file
 * Unit tests for the raw DNN kernels: GEMM in all transpose modes,
 * activations, softmax, losses, dropout, and embeddings.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "dnn/ops.hh"
#include "dnn/tensor.hh"

namespace {

using namespace cactus::dnn;
using cactus::Rng;
using cactus::gpu::Device;

TEST(Gemm, KnownValuesNn)
{
    Device dev;
    // A = [[1,2],[3,4]], B = [[5,6],[7,8]]; C = A@B.
    const float a[] = {1, 2, 3, 4};
    const float b[] = {5, 6, 7, 8};
    float c[4] = {};
    gemm(dev, false, false, 2, 2, 2, 1.f, a, b, 0.f, c);
    EXPECT_FLOAT_EQ(c[0], 19);
    EXPECT_FLOAT_EQ(c[1], 22);
    EXPECT_FLOAT_EQ(c[2], 43);
    EXPECT_FLOAT_EQ(c[3], 50);
}

TEST(Gemm, TransposeModesAgree)
{
    Device dev;
    Rng rng(1);
    const int m = 5, n = 7, k = 3;
    Tensor a = Tensor::randn({m, k}, rng, 1.f);
    Tensor b = Tensor::randn({k, n}, rng, 1.f);
    Tensor at({k, m}), bt({n, k});
    for (int i = 0; i < m; ++i)
        for (int p = 0; p < k; ++p)
            at[p * m + i] = a[i * k + p];
    for (int p = 0; p < k; ++p)
        for (int j = 0; j < n; ++j)
            bt[j * k + p] = b[p * n + j];

    Tensor c_nn({m, n}), c_tn({m, n}), c_nt({m, n}), c_tt({m, n});
    gemm(dev, false, false, m, n, k, 1.f, a.data(), b.data(), 0.f,
         c_nn.data());
    gemm(dev, true, false, m, n, k, 1.f, at.data(), b.data(), 0.f,
         c_tn.data());
    gemm(dev, false, true, m, n, k, 1.f, a.data(), bt.data(), 0.f,
         c_nt.data());
    gemm(dev, true, true, m, n, k, 1.f, at.data(), bt.data(), 0.f,
         c_tt.data());
    for (int i = 0; i < m * n; ++i) {
        EXPECT_NEAR(c_tn[i], c_nn[i], 1e-4);
        EXPECT_NEAR(c_nt[i], c_nn[i], 1e-4);
        EXPECT_NEAR(c_tt[i], c_nn[i], 1e-4);
    }
}

TEST(Gemm, AlphaBetaBlend)
{
    Device dev;
    const float a[] = {1, 0, 0, 1}; // Identity.
    const float b[] = {2, 3, 4, 5};
    float c[] = {10, 10, 10, 10};
    gemm(dev, false, false, 2, 2, 2, 0.5f, a, b, 2.f, c);
    EXPECT_FLOAT_EQ(c[0], 21.f);  // 0.5*2 + 2*10.
    EXPECT_FLOAT_EQ(c[1], 21.5f);
}

TEST(Gemm, DispatchesPerTransposeKernelName)
{
    Device dev;
    const float a[] = {1};
    float c[1] = {};
    gemm(dev, false, false, 1, 1, 1, 1.f, a, a, 0.f, c);
    gemm(dev, false, true, 1, 1, 1, 1.f, a, a, 0.f, c);
    EXPECT_EQ(dev.launches()[0].desc.name, "ampere_sgemm_nn_32x32");
    EXPECT_EQ(dev.launches()[1].desc.name, "ampere_sgemm_nt_32x32");
}

TEST(Activations, ForwardValues)
{
    Device dev;
    const float x[] = {-2.f, -0.5f, 0.f, 1.f};
    float out[4];
    activationForward(dev, Activation::ReLU, x, out, 4);
    EXPECT_FLOAT_EQ(out[0], 0.f);
    EXPECT_FLOAT_EQ(out[3], 1.f);
    activationForward(dev, Activation::LeakyReLU, x, out, 4, 0.1f);
    EXPECT_FLOAT_EQ(out[0], -0.2f);
    activationForward(dev, Activation::Tanh, x, out, 4);
    EXPECT_NEAR(out[3], std::tanh(1.f), 1e-6);
    activationForward(dev, Activation::Sigmoid, x, out, 4);
    EXPECT_NEAR(out[2], 0.5f, 1e-6);
}

class ActivationGradient : public ::testing::TestWithParam<Activation>
{
};

TEST_P(ActivationGradient, MatchesNumericalDerivative)
{
    const Activation act = GetParam();
    Device dev;
    const int n = 16;
    Rng rng(2);
    Tensor x = Tensor::randn({n}, rng, 1.f);
    // Avoid the ReLU kink at exactly zero.
    for (int i = 0; i < n; ++i)
        if (std::fabs(x[i]) < 0.05f)
            x[i] = 0.1f;
    Tensor y({n}), dy = Tensor::full({n}, 1.f), dx({n});
    activationForward(dev, act, x.data(), y.data(), n);
    activationBackward(dev, act, x.data(), y.data(), dy.data(),
                       dx.data(), n);
    const float h = 1e-3f;
    for (int i = 0; i < n; ++i) {
        Tensor xp = x, xm = x;
        xp[i] += h;
        xm[i] -= h;
        Tensor yp({n}), ym({n});
        activationForward(dev, act, xp.data(), yp.data(), n);
        activationForward(dev, act, xm.data(), ym.data(), n);
        const float numeric = (yp[i] - ym[i]) / (2 * h);
        EXPECT_NEAR(dx[i], numeric, 2e-2) << "i=" << i;
    }
}

INSTANTIATE_TEST_SUITE_P(All, ActivationGradient,
                         ::testing::Values(Activation::ReLU,
                                           Activation::LeakyReLU,
                                           Activation::Tanh,
                                           Activation::Sigmoid));

TEST(Softmax, RowsSumToOneAndMatchReference)
{
    Device dev;
    const int rows = 3, cols = 5;
    Rng rng(3);
    Tensor x = Tensor::randn({rows, cols}, rng, 2.f);
    Tensor out({rows, cols});
    softmaxForward(dev, x.data(), out.data(), rows, cols);
    for (int r = 0; r < rows; ++r) {
        double sum = 0;
        for (int j = 0; j < cols; ++j)
            sum += out[r * cols + j];
        EXPECT_NEAR(sum, 1.0, 1e-5);
    }
    // Reference on row 0.
    double mx = -1e30;
    for (int j = 0; j < cols; ++j)
        mx = std::max<double>(mx, x[j]);
    double z = 0;
    for (int j = 0; j < cols; ++j)
        z += std::exp(x[j] - mx);
    for (int j = 0; j < cols; ++j)
        EXPECT_NEAR(out[j], std::exp(x[j] - mx) / z, 1e-5);
}

TEST(CrossEntropy, LossAndGradient)
{
    Device dev;
    const int rows = 2, cols = 3;
    // Peaked softmax outputs.
    const float probs[] = {0.7f, 0.2f, 0.1f, 0.1f, 0.8f, 0.1f};
    const int targets[] = {0, 1};
    float dlogits[6];
    const double loss = crossEntropyBackward(dev, probs, targets,
                                             dlogits, rows, cols);
    EXPECT_NEAR(loss, -(std::log(0.7) + std::log(0.8)) / 2, 1e-5);
    // dlogits = (p - onehot)/rows.
    EXPECT_NEAR(dlogits[0], (0.7 - 1.0) / 2, 1e-6);
    EXPECT_NEAR(dlogits[1], 0.2 / 2, 1e-6);
    EXPECT_NEAR(dlogits[4], (0.8 - 1.0) / 2, 1e-6);
}

TEST(MseLoss, ValueAndGradient)
{
    Device dev;
    const float x[] = {1.f, 2.f};
    const float t[] = {0.f, 4.f};
    float dx[2];
    const double loss = mseLossBackward(dev, x, t, dx, 2);
    EXPECT_NEAR(loss, (1.0 + 4.0) / 2, 1e-6);
    EXPECT_NEAR(dx[0], 2.0 * 1.0 / 2, 1e-6);
    EXPECT_NEAR(dx[1], 2.0 * -2.0 / 2, 1e-6);
}

TEST(Dropout, MaskedAndScaled)
{
    Device dev;
    Rng rng(4);
    const int n = 10'000;
    Tensor x = Tensor::full({n}, 1.f);
    Tensor out({n});
    std::vector<std::uint8_t> mask(n);
    const float p = 0.3f;
    dropoutForward(dev, x.data(), out.data(), mask.data(), n, p, rng);
    int kept = 0;
    for (int i = 0; i < n; ++i) {
        if (mask[i]) {
            ++kept;
            EXPECT_NEAR(out[i], 1.f / 0.7f, 1e-5);
        } else {
            EXPECT_FLOAT_EQ(out[i], 0.f);
        }
    }
    EXPECT_NEAR(kept / static_cast<double>(n), 0.7, 0.03);

    // Backward respects the same mask.
    Tensor dy = Tensor::full({n}, 2.f), dx({n});
    dropoutBackward(dev, dy.data(), mask.data(), dx.data(), n, p);
    for (int i = 0; i < n; ++i)
        EXPECT_FLOAT_EQ(dx[i], mask[i] ? 2.f / 0.7f : 0.f);
}

TEST(Embedding, ForwardAndScatterBackward)
{
    Device dev;
    const int vocab = 4, dim = 3, rows = 3;
    Tensor table({vocab, dim});
    for (int i = 0; i < table.size(); ++i)
        table[i] = static_cast<float>(i);
    const int ids[] = {2, 0, 2};
    Tensor out({rows, dim});
    embeddingForward(dev, table.data(), ids, out.data(), rows, dim);
    EXPECT_FLOAT_EQ(out[0], 6.f); // table[2][0].
    EXPECT_FLOAT_EQ(out[3], 0.f); // table[0][0].

    Tensor dy = Tensor::full({rows, dim}, 1.f);
    Tensor dtable = Tensor::zeros({vocab, dim});
    embeddingBackward(dev, dy.data(), ids, dtable.data(), rows, dim);
    EXPECT_FLOAT_EQ(dtable[2 * dim], 2.f); // id 2 twice.
    EXPECT_FLOAT_EQ(dtable[0], 1.f);
    EXPECT_FLOAT_EQ(dtable[1 * dim], 0.f);
}

TEST(BiasOps, AddAndReduceAreInverseShapes)
{
    Device dev;
    const int rows = 4, features = 3;
    Tensor y = Tensor::zeros({rows, features});
    Tensor b({features});
    b[0] = 1;
    b[1] = 2;
    b[2] = 3;
    biasAdd(dev, y.data(), b.data(), rows, features);
    for (int r = 0; r < rows; ++r)
        for (int f = 0; f < features; ++f)
            EXPECT_FLOAT_EQ(y[r * features + f], b[f]);
    Tensor db = Tensor::zeros({features});
    biasReduce(dev, y.data(), db.data(), rows, features);
    for (int f = 0; f < features; ++f)
        EXPECT_FLOAT_EQ(db[f], rows * b[f]);
}

} // namespace
