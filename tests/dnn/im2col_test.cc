/**
 * @file
 * Cross-validation of the two convolution algorithms: the direct
 * (implicit-GEMM-style) kernels against the explicit im2col + GEMM
 * path, plus the im2col/col2im adjoint property. Two independent
 * implementations agreeing on random inputs is strong evidence both
 * are correct.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "dnn/spatial.hh"
#include "dnn/tensor.hh"

namespace {

using namespace cactus::dnn;
using cactus::Rng;
using cactus::gpu::Device;

struct ConvCase
{
    int n, c, h, w, f, k, stride, pad;
};

class ConvAlgorithmsAgree : public ::testing::TestWithParam<ConvCase>
{
};

TEST_P(ConvAlgorithmsAgree, DirectEqualsIm2colGemm)
{
    const auto p = GetParam();
    ConvGeom g{p.n, p.c, p.h, p.w, p.f, p.k, p.stride, p.pad};
    Rng rng(31);
    Tensor x = Tensor::randn({g.n, g.c, g.h, g.w}, rng, 1.f);
    Tensor w = Tensor::randn({g.f, g.c, g.k, g.k}, rng, 0.5f);
    Tensor bias = Tensor::randn({g.f}, rng, 0.1f);
    Tensor y_direct({g.n, g.f, g.outH(), g.outW()});
    Tensor y_gemm(y_direct.shape());

    Device dev;
    conv2dForward(dev, g, x.data(), w.data(), bias.data(),
                  y_direct.data());
    conv2dForwardIm2col(dev, g, x.data(), w.data(), bias.data(),
                        y_gemm.data());
    for (int i = 0; i < y_direct.size(); ++i)
        ASSERT_NEAR(y_gemm[i], y_direct[i],
                    1e-4f * (1.f + std::fabs(y_direct[i])))
            << "element " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvAlgorithmsAgree,
    ::testing::Values(ConvCase{1, 1, 5, 5, 1, 3, 1, 1},
                      ConvCase{2, 3, 8, 8, 4, 3, 1, 1},
                      ConvCase{2, 2, 9, 7, 3, 3, 2, 1},
                      ConvCase{1, 4, 6, 6, 2, 4, 2, 1},
                      ConvCase{3, 2, 4, 4, 5, 1, 1, 0}),
    [](const auto &info) {
        const auto &p = info.param;
        return "n" + std::to_string(p.n) + "c" + std::to_string(p.c) +
               "k" + std::to_string(p.k) + "s" +
               std::to_string(p.stride) + "p" + std::to_string(p.pad);
    });

TEST(Im2col, AdjointProperty)
{
    // <im2col(x), c> == <x, col2im(c)> for random c: im2col and col2im
    // are exact adjoints.
    ConvGeom g{2, 2, 6, 6, 1, 3, 2, 1};
    Rng rng(32);
    Tensor x = Tensor::randn({g.n, g.c, g.h, g.w}, rng, 1.f);
    const std::size_t np =
        static_cast<std::size_t>(g.n) * g.outH() * g.outW();
    const std::size_t ckk =
        static_cast<std::size_t>(g.c) * g.k * g.k;
    Tensor col({static_cast<int>(ckk), static_cast<int>(np)});
    Device dev;
    im2col(dev, g, x.data(), col.data());

    Tensor c = Tensor::randn(col.shape(), rng, 1.f);
    Tensor back = Tensor::zeros(x.shape());
    col2im(dev, g, c.data(), back.data());

    double lhs = 0, rhs = 0;
    for (int i = 0; i < col.size(); ++i)
        lhs += static_cast<double>(col[i]) * c[i];
    for (int i = 0; i < x.size(); ++i)
        rhs += static_cast<double>(x[i]) * back[i];
    EXPECT_NEAR(lhs, rhs, 1e-2 * (1.0 + std::fabs(lhs)));
}

TEST(Im2col, PaddedTapsAreZero)
{
    // With a pad of 1, the first column (output (0,0)) has zero rows
    // for all taps that fall outside the image.
    ConvGeom g{1, 1, 4, 4, 1, 3, 1, 1};
    Tensor x = Tensor::full({1, 1, 4, 4}, 7.f);
    const std::size_t np =
        static_cast<std::size_t>(g.outH()) * g.outW();
    Tensor col({9, static_cast<int>(np)});
    Device dev;
    im2col(dev, g, x.data(), col.data());
    // Output (0,0): taps (ky=0,*) and (kx=0,*) hit the border padding.
    EXPECT_FLOAT_EQ(col[0 * np + 0], 0.f); // (ky=0,kx=0).
    EXPECT_FLOAT_EQ(col[1 * np + 0], 0.f); // (ky=0,kx=1).
    EXPECT_FLOAT_EQ(col[4 * np + 0], 7.f); // (ky=1,kx=1) = x(0,0).
}

} // namespace
