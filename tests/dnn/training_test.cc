/**
 * @file
 * End-to-end training tests: each model family used by the Cactus ML
 * workloads actually learns on a small task — CNN classification,
 * GRU sequence copy, and spatial-transformer-assisted classification.
 * These integration tests exercise the full forward/backward/optimizer
 * pipeline across modules.
 */

#include <gtest/gtest.h>

#include "dnn/layers.hh"
#include "dnn/optim.hh"
#include "dnn/spatial.hh"

namespace {

using namespace cactus::dnn;
using cactus::Rng;
using cactus::gpu::Device;

TEST(Training, CnnLearnsToClassifyPatterns)
{
    Rng rng(21);
    Device dev;
    const int batch = 8, size = 8, classes = 2;

    // Class 0: horizontal stripe; class 1: vertical stripe.
    auto makeBatch = [&](Tensor &x, std::vector<int> &labels) {
        x = Tensor::zeros({batch, 1, size, size});
        labels.resize(batch);
        for (int b = 0; b < batch; ++b) {
            const int cls = static_cast<int>(rng.uniformInt(classes));
            labels[b] = cls;
            const int pos =
                1 + static_cast<int>(rng.uniformInt(size - 2));
            for (int t = 0; t < size; ++t) {
                const int y = cls == 0 ? pos : t;
                const int xx = cls == 0 ? t : pos;
                x[(b * size + y) * size + xx] = 1.f;
            }
        }
    };

    Sequential net;
    net.add<Conv2d>(1, 8, 3, 1, 1, rng);
    net.add<ActivationLayer>(Activation::ReLU);
    net.add<MaxPool2d>(); // 4x4.
    net.add<Linear>(8 * 4 * 4, classes, rng);
    Adam opt(net.params(), 5e-3f);

    double first_loss = 0, last_loss = 0;
    for (int it = 0; it < 60; ++it) {
        Tensor x;
        std::vector<int> labels;
        makeBatch(x, labels);
        opt.zeroGrad();
        Tensor logits = net.forward(dev, x, true);
        Tensor probs(logits.shape());
        softmaxForward(dev, logits.data(), probs.data(), batch,
                       classes);
        Tensor dlogits(logits.shape());
        const double loss = crossEntropyBackward(
            dev, probs.data(), labels.data(), dlogits.data(), batch,
            classes);
        net.backward(dev, dlogits);
        opt.step(dev);
        if (it == 0)
            first_loss = loss;
        last_loss = loss;
    }
    EXPECT_LT(last_loss, first_loss * 0.5);
    EXPECT_LT(last_loss, 0.35);
}

TEST(Training, GruRemembersFirstToken)
{
    // Predict the *first* bit of the sequence from the final hidden
    // state - the recurrent state must carry it across every step.
    Rng rng(22);
    Device dev;
    const int batch = 16, seq = 6, hidden = 16;

    GruCell cell(1, hidden, rng);
    Linear head(hidden, 2, rng);
    std::vector<Param *> params = cell.params();
    for (Param *p : head.params())
        params.push_back(p);
    Adam opt(params, 2e-2f);

    double first_loss = 0, last_loss = 0;
    for (int it = 0; it < 200; ++it) {
        std::vector<Tensor> inputs(seq, Tensor({batch, 1}));
        std::vector<int> target(batch, 0);
        for (int b = 0; b < batch; ++b) {
            for (int t = 0; t < seq; ++t) {
                const int bit = static_cast<int>(rng.uniformInt(2));
                inputs[t][b] = static_cast<float>(bit);
                if (t == 0)
                    target[b] = bit;
            }
        }

        opt.zeroGrad();
        Tensor h = Tensor::zeros({batch, hidden});
        for (int t = 0; t < seq; ++t)
            h = cell.stepForward(dev, inputs[t], h);
        Tensor logits = head.forward(dev, h, true);
        Tensor probs(logits.shape());
        softmaxForward(dev, logits.data(), probs.data(), batch, 2);
        Tensor dlogits(logits.shape());
        const double loss = crossEntropyBackward(
            dev, probs.data(), target.data(), dlogits.data(), batch,
            2);
        Tensor dh = head.backward(dev, dlogits);
        for (int t = seq - 1; t >= 0; --t) {
            Tensor dx, dh_prev;
            cell.stepBackward(dev, dh, dx, dh_prev);
            dh = dh_prev;
        }
        opt.step(dev);
        if (it == 0)
            first_loss = loss;
        last_loss = loss;
    }
    EXPECT_LT(last_loss, first_loss * 0.6);
    EXPECT_LT(last_loss, 0.45);
}

TEST(Training, BatchNormStabilizesDeepStack)
{
    // A deeper MLP with batch norm trains where the same stack without
    // normalization (and a hot learning rate) diverges or stalls.
    Rng rng(23);
    Device dev;
    const int batch = 16, dim = 12;

    auto buildAndTrain = [&](bool with_bn) {
        Rng local(24);
        Sequential net;
        net.add<Linear>(dim, 32, local);
        if (with_bn)
            net.add<BatchNorm2d>(32);
        net.add<ActivationLayer>(Activation::ReLU);
        net.add<Linear>(32, 32, local);
        if (with_bn)
            net.add<BatchNorm2d>(32);
        net.add<ActivationLayer>(Activation::ReLU);
        net.add<Linear>(32, 1, local);
        Sgd opt(net.params(), 0.05f);

        double loss = 0;
        for (int it = 0; it < 150; ++it) {
            Tensor x = Tensor::randn({batch, dim}, local, 1.f);
            Tensor target({batch, 1});
            for (int b = 0; b < batch; ++b) {
                float s = 0;
                for (int d = 0; d < dim; ++d)
                    s += x[b * dim + d];
                target[b] = s > 0 ? 1.f : 0.f;
            }
            opt.zeroGrad();
            Tensor y = net.forward(dev, x, true);
            Tensor dy(y.shape());
            loss = mseLossBackward(dev, y.data(), target.data(),
                                   dy.data(), y.size());
            net.backward(dev, dy);
            opt.step(dev);
        }
        return loss;
    };

    // The sign-of-sum regression has MSE 0.25 at chance level.
    const double with_bn = buildAndTrain(true);
    EXPECT_LT(with_bn, 0.2);
}

TEST(Training, SpatialTransformerGradientsReachLocalization)
{
    // One STN step: the localization head must receive a nonzero
    // gradient through grid_sample + affine_grid.
    Rng rng(25);
    Device dev;
    const int batch = 4, size = 8;

    Sequential loc;
    loc.add<Linear>(size * size, 6, rng);
    Param *head_w = loc.params()[0];

    Tensor x = Tensor::randn({batch, 1, size, size}, rng, 1.f);
    Tensor theta = loc.forward(dev, x, true);
    // Bias toward identity so samples stay mostly in range.
    for (int b = 0; b < batch; ++b) {
        theta[b * 6 + 0] += 1.f;
        theta[b * 6 + 4] += 1.f;
    }
    Tensor grid({batch, size, size, 2});
    affineGrid(dev, batch, size, size, theta.data(), grid.data());
    Tensor warped({batch, 1, size, size});
    gridSampleForward(dev, batch, 1, size, size, size, size, x.data(),
                      grid.data(), warped.data());

    Tensor dwarped = Tensor::full(warped.shape(), 1.f);
    Tensor dx = Tensor::zeros(x.shape());
    Tensor dgrid = Tensor::zeros(grid.shape());
    gridSampleBackward(dev, batch, 1, size, size, size, size,
                       x.data(), grid.data(), dwarped.data(),
                       dx.data(), dgrid.data());
    Tensor dtheta = Tensor::zeros({batch, 6});
    affineGridBackward(dev, batch, size, size, dgrid.data(),
                       dtheta.data());
    for (Param *p : loc.params())
        p->zeroGrad();
    loc.backward(dev, dtheta);

    double grad_norm = 0;
    for (int i = 0; i < head_w->grad.size(); ++i)
        grad_norm += std::fabs(head_w->grad[i]);
    EXPECT_GT(grad_norm, 1e-3);
}

} // namespace
