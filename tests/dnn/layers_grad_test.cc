/**
 * @file
 * Numerical gradient checks for every trainable layer: the analytic
 * backward pass must match central finite differences of a random
 * linear functional of the output. This is the strongest correctness
 * evidence a from-scratch autodiff can have.
 */

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "dnn/layers.hh"
#include "dnn/optim.hh"
#include "dnn/spatial.hh"

namespace {

using namespace cactus::dnn;
using cactus::Rng;
using cactus::gpu::Device;

/** L = sum_i w_i * layer(x)_i for a fixed random w. */
double
lossOf(Device &dev, Layer &layer, const Tensor &x, const Tensor &w)
{
    Tensor y = layer.forward(dev, x, true);
    double acc = 0;
    for (int i = 0; i < y.size(); ++i)
        acc += static_cast<double>(w[i]) * y[i];
    return acc;
}

/**
 * Check dL/dx and dL/dparam against central differences on a sample of
 * coordinates.
 */
void
checkGradients(Layer &layer, Tensor x, double h = 1e-2,
               double tol = 3e-2)
{
    Device dev;
    Rng rng(99);

    Tensor y = layer.forward(dev, x, true);
    Tensor w = Tensor::randn(y.shape(), rng, 1.f);
    for (Param *p : layer.params())
        p->zeroGrad();
    Tensor dx = layer.backward(dev, w);
    ASSERT_TRUE(dx.sameShape(x));

    // Input gradient on a coordinate sample.
    const int stride_x = std::max(1, x.size() / 12);
    for (int i = 0; i < x.size(); i += stride_x) {
        Tensor xp = x, xm = x;
        xp[i] += static_cast<float>(h);
        xm[i] -= static_cast<float>(h);
        const double lp = lossOf(dev, layer, xp, w);
        const double lm = lossOf(dev, layer, xm, w);
        const double numeric = (lp - lm) / (2 * h);
        const double scale =
            std::max({1.0, std::fabs(numeric), std::fabs(
                static_cast<double>(dx[i]))});
        EXPECT_NEAR(dx[i], numeric, tol * scale) << "input coord " << i;
    }

    // Parameter gradients.
    for (Param *p : layer.params()) {
        const int stride_p = std::max(1, p->value.size() / 8);
        for (int i = 0; i < p->value.size(); i += stride_p) {
            const float orig = p->value[i];
            p->value[i] = orig + static_cast<float>(h);
            const double lp = lossOf(dev, layer, x, w);
            p->value[i] = orig - static_cast<float>(h);
            const double lm = lossOf(dev, layer, x, w);
            p->value[i] = orig;
            const double numeric = (lp - lm) / (2 * h);
            const double scale =
                std::max({1.0, std::fabs(numeric), std::fabs(
                    static_cast<double>(p->grad[i]))});
            EXPECT_NEAR(p->grad[i], numeric, tol * scale)
                << "param coord " << i;
        }
    }
}

TEST(GradCheck, Linear)
{
    Rng rng(1);
    Linear layer(6, 4, rng);
    checkGradients(layer, Tensor::randn({3, 6}, rng, 1.f));
}

TEST(GradCheck, Conv2dStride1)
{
    Rng rng(2);
    Conv2d layer(2, 3, 3, 1, 1, rng);
    checkGradients(layer, Tensor::randn({2, 2, 5, 5}, rng, 1.f));
}

TEST(GradCheck, Conv2dStride2)
{
    Rng rng(3);
    Conv2d layer(2, 4, 3, 2, 1, rng);
    checkGradients(layer, Tensor::randn({2, 2, 6, 6}, rng, 1.f));
}

TEST(GradCheck, ConvTranspose2d)
{
    Rng rng(4);
    ConvTranspose2d layer(3, 2, 4, 2, 1, rng);
    checkGradients(layer, Tensor::randn({2, 3, 4, 4}, rng, 1.f));
}

TEST(GradCheck, BatchNorm2d)
{
    Rng rng(5);
    BatchNorm2d layer(3);
    checkGradients(layer, Tensor::randn({4, 3, 3, 3}, rng, 1.f),
                   /*h=*/1e-2, /*tol=*/6e-2);
}

TEST(GradCheck, MaxPool)
{
    Rng rng(6);
    MaxPool2d layer;
    // Well-separated values avoid argmax flips under perturbation.
    Tensor x({1, 2, 4, 4});
    for (int i = 0; i < x.size(); ++i)
        x[i] = static_cast<float>((i * 37) % 101) / 10.f;
    checkGradients(layer, x);
}

TEST(GradCheck, SequentialMlp)
{
    Rng rng(7);
    Sequential net;
    net.add<Linear>(5, 8, rng);
    net.add<ActivationLayer>(Activation::Tanh);
    net.add<Linear>(8, 3, rng);
    checkGradients(net, Tensor::randn({4, 5}, rng, 1.f));
}

TEST(GradCheck, GruCellInputGradient)
{
    Rng rng(8);
    Device dev;
    const int in = 4, hs = 5, rows = 2;
    GruCell cell(in, hs, rng);
    Tensor x = Tensor::randn({rows, in}, rng, 1.f);
    Tensor h = Tensor::randn({rows, hs}, rng, 1.f);
    Tensor y = cell.stepForward(dev, x, h);
    Tensor w = Tensor::randn(y.shape(), rng, 1.f);
    for (Param *p : cell.params())
        p->zeroGrad();
    Tensor dx, dh;
    cell.stepBackward(dev, w, dx, dh);

    auto loss = [&](const Tensor &xx, const Tensor &hh) {
        Tensor out = cell.stepForward(dev, xx, hh);
        cell.clearCache();
        double acc = 0;
        for (int i = 0; i < out.size(); ++i)
            acc += static_cast<double>(w[i]) * out[i];
        return acc;
    };

    const double h_step = 1e-2;
    for (int i = 0; i < x.size(); i += 3) {
        Tensor xp = x, xm = x;
        xp[i] += static_cast<float>(h_step);
        xm[i] -= static_cast<float>(h_step);
        const double numeric =
            (loss(xp, h) - loss(xm, h)) / (2 * h_step);
        EXPECT_NEAR(dx[i], numeric, 3e-2) << i;
    }
    for (int i = 0; i < h.size(); i += 4) {
        Tensor hp = h, hm = h;
        hp[i] += static_cast<float>(h_step);
        hm[i] -= static_cast<float>(h_step);
        const double numeric =
            (loss(x, hp) - loss(x, hm)) / (2 * h_step);
        EXPECT_NEAR(dh[i], numeric, 3e-2) << i;
    }
}

TEST(GradCheck, GruCellWeightGradient)
{
    Rng rng(9);
    Device dev;
    const int in = 3, hs = 4, rows = 2;
    GruCell cell(in, hs, rng);
    Tensor x = Tensor::randn({rows, in}, rng, 1.f);
    Tensor h = Tensor::randn({rows, hs}, rng, 1.f);
    Tensor y = cell.stepForward(dev, x, h);
    Tensor w = Tensor::randn(y.shape(), rng, 1.f);
    for (Param *p : cell.params())
        p->zeroGrad();
    Tensor dx, dh;
    cell.stepBackward(dev, w, dx, dh);

    Param *wih = cell.params()[0];
    const double h_step = 1e-2;
    for (int i = 0; i < wih->value.size(); i += 7) {
        const float orig = wih->value[i];
        auto eval = [&] {
            Tensor out = cell.stepForward(dev, x, h);
            cell.clearCache();
            double acc = 0;
            for (int k = 0; k < out.size(); ++k)
                acc += static_cast<double>(w[k]) * out[k];
            return acc;
        };
        wih->value[i] = orig + static_cast<float>(h_step);
        const double lp = eval();
        wih->value[i] = orig - static_cast<float>(h_step);
        const double lm = eval();
        wih->value[i] = orig;
        EXPECT_NEAR(wih->grad[i], (lp - lm) / (2 * h_step), 3e-2) << i;
    }
}

TEST(GradCheck, GridSampleBilinear)
{
    // Bilinear sampling is piecewise linear in the grid coordinates,
    // with kinks at integer pixel positions. Place every sample safely
    // inside a cell so central differences are valid.
    Rng rng(10);
    Device dev;
    const int n = 1, c = 2, h = 6, w = 6, oh = 3, ow = 3;
    Tensor x = Tensor::randn({n, c, h, w}, rng, 1.f);
    Tensor grid({n, oh, ow, 2});
    for (int p = 0; p < oh * ow; ++p) {
        const float fx = 1.f + (p % ow) + 0.4f; // Cell-interior pixels.
        const float fy = 1.f + (p / ow) + 0.6f;
        grid[p * 2] = 2.f * fx / (w - 1) - 1.f;
        grid[p * 2 + 1] = 2.f * fy / (h - 1) - 1.f;
    }

    auto forward = [&](const Tensor &g) {
        Tensor y({n, c, oh, ow});
        gridSampleForward(dev, n, c, h, w, oh, ow, x.data(), g.data(),
                          y.data());
        return y;
    };

    Tensor y = forward(grid);
    Tensor lw = Tensor::randn(y.shape(), rng, 1.f);
    Tensor dxp = Tensor::zeros(x.shape());
    Tensor dgrid = Tensor::zeros(grid.shape());
    gridSampleBackward(dev, n, c, h, w, oh, ow, x.data(), grid.data(),
                       lw.data(), dxp.data(), dgrid.data());

    auto lossAt = [&](const Tensor &g) {
        const Tensor yy = forward(g);
        double acc = 0;
        for (int k = 0; k < yy.size(); ++k)
            acc += static_cast<double>(lw[k]) * yy[k];
        return acc;
    };

    const double h_step = 1e-3;
    for (int i = 0; i < grid.size(); ++i) {
        Tensor gp = grid, gm = grid;
        gp[i] += static_cast<float>(h_step);
        gm[i] -= static_cast<float>(h_step);
        const double numeric =
            (lossAt(gp) - lossAt(gm)) / (2 * h_step);
        EXPECT_NEAR(dgrid[i], numeric, 3e-2) << "grid coord " << i;
    }
    // Input-image gradient as well.
    for (int i = 0; i < x.size(); i += 9) {
        Tensor xp = x, xm = x;
        xp[i] += static_cast<float>(h_step);
        xm[i] -= static_cast<float>(h_step);
        Tensor ysave = x; // Keep original.
        x = xp;
        const double lp = lossAt(grid);
        x = xm;
        const double lm = lossAt(grid);
        x = ysave;
        EXPECT_NEAR(dxp[i], (lp - lm) / (2 * h_step), 3e-2)
            << "image coord " << i;
    }
}

TEST(GradCheck, AffineGridIsExactlyLinear)
{
    // affineGrid is linear in theta, so its backward must match the
    // numeric derivative to round-off.
    Rng rng(13);
    Device dev;
    const int n = 2, h = 4, w = 5;
    Tensor theta = Tensor::randn({n, 2, 3}, rng, 0.5f);
    Tensor dgrid = Tensor::randn({n, h, w, 2}, rng, 1.f);
    Tensor dtheta = Tensor::zeros({n, 2, 3});
    affineGridBackward(dev, n, h, w, dgrid.data(), dtheta.data());

    auto lossAt = [&](const Tensor &th) {
        Tensor grid({n, h, w, 2});
        affineGrid(dev, n, h, w, th.data(), grid.data());
        double acc = 0;
        for (int k = 0; k < grid.size(); ++k)
            acc += static_cast<double>(dgrid[k]) * grid[k];
        return acc;
    };

    const double h_step = 1e-2;
    for (int i = 0; i < theta.size(); ++i) {
        Tensor tp = theta, tm = theta;
        tp[i] += static_cast<float>(h_step);
        tm[i] -= static_cast<float>(h_step);
        const double numeric =
            (lossAt(tp) - lossAt(tm)) / (2 * h_step);
        EXPECT_NEAR(dtheta[i], numeric, 2e-3) << i;
    }
}

TEST(Training, MlpLearnsXor)
{
    Rng rng(11);
    Device dev;
    Sequential net;
    net.add<Linear>(2, 8, rng);
    net.add<ActivationLayer>(Activation::Tanh);
    net.add<Linear>(8, 1, rng);
    Adam opt(net.params(), 0.05f);

    Tensor x({4, 2});
    const float xv[] = {0, 0, 0, 1, 1, 0, 1, 1};
    for (int i = 0; i < 8; ++i)
        x[i] = xv[i];
    Tensor target({4, 1});
    target[0] = 0;
    target[1] = 1;
    target[2] = 1;
    target[3] = 0;

    double loss = 1e9;
    for (int it = 0; it < 200; ++it) {
        opt.zeroGrad();
        Tensor y = net.forward(dev, x, true);
        Tensor dy(y.shape());
        loss = mseLossBackward(dev, y.data(), target.data(), dy.data(),
                               y.size());
        net.backward(dev, dy);
        opt.step(dev);
    }
    EXPECT_LT(loss, 0.05);
}

TEST(Training, OptimizersReduceQuadraticLoss)
{
    // Minimize ||w||^2 from the same start with all three optimizers.
    for (int which = 0; which < 3; ++which) {
        Rng rng(12);
        Device dev;
        Param p(Tensor::randn({16}, rng, 1.f));
        std::unique_ptr<Optimizer> opt;
        if (which == 0)
            opt = std::make_unique<Sgd>(
                std::vector<Param *>{&p}, 0.05f);
        else if (which == 1)
            opt = std::make_unique<Adam>(
                std::vector<Param *>{&p}, 0.05f);
        else
            opt = std::make_unique<RmsProp>(
                std::vector<Param *>{&p}, 0.05f);
        const double initial = [&] {
            double acc = 0;
            for (int i = 0; i < p.value.size(); ++i)
                acc += static_cast<double>(p.value[i]) * p.value[i];
            return acc;
        }();
        for (int it = 0; it < 60; ++it) {
            opt->zeroGrad();
            for (int i = 0; i < p.value.size(); ++i)
                p.grad[i] = 2.f * p.value[i];
            opt->step(dev);
        }
        double final = 0;
        for (int i = 0; i < p.value.size(); ++i)
            final += static_cast<double>(p.value[i]) * p.value[i];
        EXPECT_LT(final, initial * 0.2) << "optimizer " << which;
    }
}

} // namespace
