/**
 * @file
 * Tests for the betweenness-centrality primitive against the host
 * Brandes reference.
 */

#include <gtest/gtest.h>

#include "graph/primitives.hh"

namespace {

using namespace cactus::graph;
using cactus::Rng;
using cactus::gpu::Device;

class BcCorrectness : public ::testing::TestWithParam<int>
{
};

TEST_P(BcCorrectness, MatchesBrandesReference)
{
    Rng rng(500 + GetParam());
    auto g = CsrGraph::uniformRandom(400, 1200, rng);
    Device dev;
    const auto result = gunrockBetweenness(dev, g, 0);
    const auto expect = referenceBetweenness(g, 0);
    ASSERT_EQ(result.centrality.size(), expect.size());
    for (std::size_t v = 0; v < expect.size(); ++v)
        EXPECT_NEAR(result.centrality[v], expect[v],
                    1e-3f * (1.f + expect[v]))
            << v;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BcCorrectness, ::testing::Range(0, 4));

TEST(Betweenness, PathGraphCenterIsHighest)
{
    // A path 0-1-2-3-4 from source 0: vertex 1 lies on the most
    // shortest paths from the source.
    auto g = CsrGraph::fromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
    Device dev;
    const auto result = gunrockBetweenness(dev, g, 0);
    EXPECT_GT(result.centrality[1], result.centrality[2]);
    EXPECT_GT(result.centrality[2], result.centrality[3]);
    EXPECT_FLOAT_EQ(result.centrality[4], 0.f);
    EXPECT_FLOAT_EQ(result.centrality[0], 0.f); // Source excluded.
}

TEST(Betweenness, StarGraphLeavesAreZero)
{
    auto g = CsrGraph::fromEdges(
        5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
    Device dev;
    // From a leaf, the hub carries all dependency.
    const auto result = gunrockBetweenness(dev, g, 1);
    EXPECT_GT(result.centrality[0], 2.9f);
    EXPECT_FLOAT_EQ(result.centrality[2], 0.f);
}

TEST(Betweenness, LaunchesForwardAndBackwardKernels)
{
    Rng rng(6);
    auto g = CsrGraph::roadGrid(16, 16, rng);
    Device dev;
    gunrockBetweenness(dev, g, 0);
    bool fwd = false, bwd = false;
    for (const auto &l : dev.launches()) {
        fwd |= l.desc.name == "bc_forward";
        bwd |= l.desc.name == "bc_backward";
    }
    EXPECT_TRUE(fwd);
    EXPECT_TRUE(bwd);
}

} // namespace
