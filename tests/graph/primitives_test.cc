/**
 * @file
 * Tests for the extended Gunrock-style primitives: SSSP against a
 * Dijkstra reference, PageRank invariants and convergence, and
 * connected components against a union-find reference.
 */

#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "graph/primitives.hh"

namespace {

using namespace cactus::graph;
using cactus::Rng;
using cactus::gpu::Device;

class SsspCorrectness : public ::testing::TestWithParam<int>
{
};

TEST_P(SsspCorrectness, MatchesDijkstra)
{
    Rng rng(300 + GetParam());
    auto g = CsrGraph::uniformRandom(800, 3200, rng);
    const auto weights = randomEdgeWeights(g, rng);
    Device dev;
    const auto result = gunrockSssp(dev, g, 0, weights);
    const auto expect = referenceSssp(g, 0, weights);
    ASSERT_EQ(result.distances.size(), expect.size());
    for (std::size_t v = 0; v < expect.size(); ++v) {
        if (expect[v] >= 1e29f)
            EXPECT_GE(result.distances[v], 1e29f) << v;
        else
            EXPECT_NEAR(result.distances[v], expect[v],
                        1e-3f * (1.f + expect[v]))
                << v;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SsspCorrectness, ::testing::Range(0, 4));

TEST(Sssp, RoadNetworkDistances)
{
    Rng rng(5);
    auto g = CsrGraph::roadGrid(40, 40, rng);
    const auto weights = randomEdgeWeights(g, rng, 1.f, 2.f);
    Device dev;
    const auto result = gunrockSssp(dev, g, 0, weights);
    EXPECT_EQ(result.distances, referenceSssp(g, 0, weights));
    EXPECT_FLOAT_EQ(result.distances[0], 0.f);
}

TEST(Sssp, WeightsAreSymmetric)
{
    Rng rng(6);
    auto g = CsrGraph::uniformRandom(100, 400, rng);
    const auto weights = randomEdgeWeights(g, rng);
    for (int u = 0; u < g.numVertices(); ++u) {
        const int begin = g.offsets()[u];
        for (int k = 0; k < g.degree(u); ++k) {
            const int v = g.neighborsBegin(u)[k];
            // Find the reverse edge and compare the weight.
            const int vbegin = g.offsets()[v];
            for (int m = 0; m < g.degree(v); ++m) {
                if (g.neighborsBegin(v)[m] == u) {
                    EXPECT_FLOAT_EQ(weights[begin + k],
                                    weights[vbegin + m]);
                }
            }
        }
    }
}

TEST(PageRank, RanksSumToOne)
{
    Rng rng(7);
    auto g = CsrGraph::rmat(10, 8, rng);
    Device dev;
    const auto result = gunrockPageRank(dev, g);
    double total = 0;
    for (float r : result.ranks)
        total += r;
    // Degree-zero vertices leak a little mass; allow modest slack.
    EXPECT_NEAR(total, 1.0, 0.05);
}

TEST(PageRank, HubsRankHigherThanLeaves)
{
    Rng rng(8);
    auto g = CsrGraph::rmat(11, 8, rng);
    Device dev;
    const auto result = gunrockPageRank(dev, g);
    const int hub = g.highestDegreeVertex();
    // The hub must rank above the average vertex by a wide margin.
    const double avg = 1.0 / g.numVertices();
    EXPECT_GT(result.ranks[hub], 5 * avg);
}

TEST(PageRank, ConvergesOnSmallGraph)
{
    auto g = CsrGraph::fromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
    Device dev;
    const auto result = gunrockPageRank(dev, g, 0.85, 1e-7, 100);
    EXPECT_LT(result.finalDelta, 1e-7);
    // A symmetric ring: all ranks equal.
    for (float r : result.ranks)
        EXPECT_NEAR(r, 0.25f, 1e-4f);
}

/** Union-find reference component count. */
int
referenceComponents(const CsrGraph &g, std::vector<int> &rep)
{
    rep.resize(g.numVertices());
    std::iota(rep.begin(), rep.end(), 0);
    auto find = [&](int x) {
        while (rep[x] != x) {
            rep[x] = rep[rep[x]];
            x = rep[x];
        }
        return x;
    };
    for (int v = 0; v < g.numVertices(); ++v)
        for (int k = 0; k < g.degree(v); ++k)
            rep[find(v)] = find(g.neighborsBegin(v)[k]);
    std::set<int> roots;
    for (int v = 0; v < g.numVertices(); ++v)
        roots.insert(find(v));
    return static_cast<int>(roots.size());
}

class CcCorrectness : public ::testing::TestWithParam<int>
{
};

TEST_P(CcCorrectness, MatchesUnionFind)
{
    Rng rng(400 + GetParam());
    // Sparse graph so multiple components exist.
    auto g = CsrGraph::uniformRandom(1000, 700, rng);
    Device dev;
    const auto result = gunrockConnectedComponents(dev, g);
    std::vector<int> rep;
    EXPECT_EQ(result.numComponents, referenceComponents(g, rep));
    // Same-component vertices share a label; different don't.
    auto find = [&](int x) {
        while (rep[x] != x)
            x = rep[x];
        return x;
    };
    for (int v = 1; v < g.numVertices(); ++v) {
        const bool same_ref = find(v) == find(0);
        const bool same_cc = result.labels[v] == result.labels[0];
        ASSERT_EQ(same_cc, same_ref) << v;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CcCorrectness, ::testing::Range(0, 4));

TEST(ConnectedComponents, SingleComponentGrid)
{
    Rng rng(9);
    // A fully connected grid (no removed edges would need p=0; the
    // generator removes ~10%, so check against the reference).
    auto g = CsrGraph::roadGrid(24, 24, rng);
    Device dev;
    const auto result = gunrockConnectedComponents(dev, g);
    std::vector<int> rep;
    EXPECT_EQ(result.numComponents, referenceComponents(g, rep));
}

TEST(Primitives, LaunchDistinctKernelPipelines)
{
    Rng rng(10);
    auto g = CsrGraph::uniformRandom(400, 1600, rng);
    const auto weights = randomEdgeWeights(g, rng);
    Device dev;
    gunrockSssp(dev, g, 0, weights);
    gunrockPageRank(dev, g, 0.85, 1e-3, 5);
    gunrockConnectedComponents(dev, g);
    std::set<std::string> names;
    for (const auto &l : dev.launches())
        names.insert(l.desc.name);
    for (const char *expect :
         {"sssp_init", "sssp_relax", "pr_reset", "pr_push",
          "pr_delta_swap", "cc_init", "cc_hook", "cc_compress"})
        EXPECT_TRUE(names.count(expect)) << expect;
}

} // namespace
