/**
 * @file
 * Tests for the CSR graph, generators, and the Gunrock-style BFS:
 * correctness against a host reference and the input-dependent kernel
 * selection the paper's Observation #3 builds on.
 */

#include <set>

#include <gtest/gtest.h>

#include "graph/bfs.hh"
#include "graph/csr.hh"

#include "../support/expect_error.hh"

namespace {

using namespace cactus::graph;
using cactus::Rng;
using cactus::gpu::Device;

TEST(CsrGraph, FromEdgesSymmetrizesAndDedupes)
{
    auto g = CsrGraph::fromEdges(4, {{0, 1}, {1, 0}, {1, 2}, {2, 2}});
    EXPECT_EQ(g.numVertices(), 4);
    // Self loop dropped; {0,1} stored once each direction.
    EXPECT_EQ(g.numDirectedEdges(), 4);
    EXPECT_EQ(g.degree(0), 1);
    EXPECT_EQ(g.degree(1), 2);
    EXPECT_EQ(g.degree(3), 0);
}

TEST(CsrGraph, NeighborsSorted)
{
    auto g = CsrGraph::fromEdges(5, {{2, 4}, {2, 0}, {2, 3}});
    const int *nb = g.neighborsBegin(2);
    EXPECT_EQ(nb[0], 0);
    EXPECT_EQ(nb[1], 3);
    EXPECT_EQ(nb[2], 4);
}

TEST(CsrGraphError, OutOfRangeEdgeThrows)
{
    cactus::test::expectError(
        [] { CsrGraph::fromEdges(2, {{0, 5}}); }, "out of range");
}

TEST(Generators, RmatIsHeavyTailed)
{
    Rng rng(1);
    auto g = CsrGraph::rmat(12, 8, rng);
    EXPECT_EQ(g.numVertices(), 4096);
    // Power-law skew: the hub degree dwarfs the average.
    const double avg = static_cast<double>(g.numDirectedEdges()) /
                       g.numVertices();
    EXPECT_GT(g.maxDegree(), 10 * avg);
}

TEST(Generators, RoadGridIsLowDegree)
{
    Rng rng(2);
    auto g = CsrGraph::roadGrid(64, 64, rng);
    EXPECT_EQ(g.numVertices(), 4096);
    EXPECT_LE(g.maxDegree(), 8);
    const double avg = static_cast<double>(g.numDirectedEdges()) /
                       g.numVertices();
    EXPECT_GT(avg, 2.0);
    EXPECT_LT(avg, 4.5);
}

TEST(Generators, RoadHasLargerDiameterThanRmat)
{
    Rng rng(3);
    auto road = CsrGraph::roadGrid(64, 64, rng);
    auto soc = CsrGraph::rmat(12, 8, rng);
    const auto road_levels = referenceBfs(road, 0);
    const auto soc_levels = referenceBfs(soc, soc.highestDegreeVertex());
    int road_depth = 0, soc_depth = 0;
    for (int l : road_levels)
        road_depth = std::max(road_depth, l);
    for (int l : soc_levels)
        soc_depth = std::max(soc_depth, l);
    EXPECT_GT(road_depth, 3 * soc_depth);
}

class BfsCorrectness : public ::testing::TestWithParam<int>
{
};

TEST_P(BfsCorrectness, MatchesReferenceOnRandomGraphs)
{
    Rng rng(100 + GetParam());
    auto g = CsrGraph::uniformRandom(2000, 6000, rng);
    Device dev;
    const auto result = gunrockBfs(dev, g, 0);
    const auto expect = referenceBfs(g, 0);
    ASSERT_EQ(result.levels.size(), expect.size());
    for (std::size_t v = 0; v < expect.size(); ++v)
        ASSERT_EQ(result.levels[v], expect[v]) << "vertex " << v;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BfsCorrectness, ::testing::Range(0, 5));

TEST(Bfs, MatchesReferenceOnRmat)
{
    Rng rng(4);
    auto g = CsrGraph::rmat(11, 8, rng);
    Device dev;
    const int src = g.highestDegreeVertex();
    const auto result = gunrockBfs(dev, g, src);
    EXPECT_EQ(result.levels, referenceBfs(g, src));
}

TEST(Bfs, MatchesReferenceOnRoad)
{
    Rng rng(5);
    auto g = CsrGraph::roadGrid(48, 48, rng);
    Device dev;
    const auto result = gunrockBfs(dev, g, 0);
    EXPECT_EQ(result.levels, referenceBfs(g, 0));
}

TEST(Bfs, MatchesReferenceWithoutBottomUp)
{
    Rng rng(6);
    auto g = CsrGraph::rmat(10, 8, rng);
    Device dev;
    BfsOptions opts;
    opts.enableBottomUp = false;
    const int src = g.highestDegreeVertex();
    const auto result = gunrockBfs(dev, g, src, opts);
    EXPECT_EQ(result.levels, referenceBfs(g, src));
}

TEST(Bfs, SocialGraphUsesHighDegreeKernels)
{
    Rng rng(7);
    auto g = CsrGraph::rmat(13, 16, rng);
    Device dev;
    const auto result = gunrockBfs(dev, g, g.highestDegreeVertex());
    std::set<std::string> used(result.kernelSequence.begin(),
                               result.kernelSequence.end());
    // Hubs trigger CTA/warp advance and the bottom-up switch.
    EXPECT_TRUE(used.count("advance_twc_cta") ||
                used.count("bfs_bottom_up"));
}

TEST(Bfs, RoadGraphUsesThreadKernelOnly)
{
    Rng rng(8);
    auto g = CsrGraph::roadGrid(96, 96, rng);
    Device dev;
    const auto result = gunrockBfs(dev, g, 0);
    std::set<std::string> used(result.kernelSequence.begin(),
                               result.kernelSequence.end());
    EXPECT_TRUE(used.count("advance_twc_thread"));
    EXPECT_FALSE(used.count("advance_twc_cta"));
    // Many iterations: the road diameter is large.
    EXPECT_GT(result.iterations, 50);
}

TEST(Bfs, InputDependentKernelSetsDiffer)
{
    // The paper's Observation #3: same code, different inputs, different
    // executed kernels.
    Rng rng(9);
    auto soc = CsrGraph::rmat(12, 16, rng);
    auto road = CsrGraph::roadGrid(64, 64, rng);
    Device dev_a, dev_b;
    const auto ra = gunrockBfs(dev_a, soc, soc.highestDegreeVertex());
    const auto rb = gunrockBfs(dev_b, road, 0);
    const std::set<std::string> ka(ra.kernelSequence.begin(),
                                   ra.kernelSequence.end());
    const std::set<std::string> kb(rb.kernelSequence.begin(),
                                   rb.kernelSequence.end());
    EXPECT_NE(ka, kb);
}

TEST(Bfs, DisconnectedVerticesStayUnreached)
{
    auto g = CsrGraph::fromEdges(6, {{0, 1}, {1, 2}, {4, 5}});
    Device dev;
    const auto result = gunrockBfs(dev, g, 0);
    EXPECT_EQ(result.levels[3], -1);
    EXPECT_EQ(result.levels[4], -1);
    EXPECT_EQ(result.levels[5], -1);
    EXPECT_EQ(result.levels[2], 2);
}

TEST(Bfs, VisitedCountMatchesComponentSize)
{
    Rng rng(10);
    auto g = CsrGraph::roadGrid(32, 32, rng);
    Device dev;
    const auto result = gunrockBfs(dev, g, 0);
    std::int64_t reachable = 0;
    for (int l : result.levels)
        reachable += l >= 0;
    EXPECT_EQ(result.verticesVisited, reachable);
}

} // namespace
