/**
 * @file
 * Registry-wide result-integrity checks: every registered benchmark's
 * every launch passes the recorded-stats conservation audit (the live
 * audit already ran inside Device::endLaunch — this re-checks the
 * published records through the public API), records a non-empty
 * output digest, and produces the same digest at any host thread
 * count.
 */

#include <cctype>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/benchmark.hh"
#include "gpu/audit.hh"

namespace {

using namespace cactus::core;
using cactus::gpu::auditLaunchStats;
using cactus::gpu::Device;
using cactus::gpu::DeviceConfig;

class StatsInvariants
    : public ::testing::TestWithParam<const BenchmarkInfo *>
{
};

TEST_P(StatsInvariants, EveryLaunchSatisfiesConservationLaws)
{
    const BenchmarkInfo *info = GetParam();
    const DeviceConfig cfg = DeviceConfig::scaledExperiment();
    Device dev(cfg);
    auto bench = info->factory(Scale::Tiny);
    bench->run(dev);

    ASSERT_FALSE(dev.launches().empty())
        << info->name << " executed no kernels";
    for (const auto &stats : dev.launches())
        EXPECT_NO_THROW(auditLaunchStats(stats, cfg))
            << info->name << " kernel " << stats.desc.name;
}

TEST_P(StatsInvariants, RecordsAVerifiableOutputDigest)
{
    const BenchmarkInfo *info = GetParam();
    Device dev(DeviceConfig::scaledExperiment());
    auto bench = info->factory(Scale::Tiny);
    bench->run(dev);

    const auto digest = bench->verify();
    ASSERT_TRUE(digest.has_value())
        << info->name << " recorded no output";
    EXPECT_GT(digest->elements, 0u);
    EXPECT_EQ(digest->nonFinite, 0u)
        << info->name << " emitted NaN/Inf output values";
}

TEST_P(StatsInvariants, OutputDigestIsThreadCountInvariant)
{
    const BenchmarkInfo *info = GetParam();
    auto digestAt = [&](int threads) {
        DeviceConfig cfg = DeviceConfig::scaledExperiment();
        cfg.hostThreads = threads;
        // Disable the work gate so the multi-threaded run genuinely
        // sweeps blocks concurrently at tiny scale.
        cfg.minWarpsPerWorker = 0;
        Device dev(cfg);
        auto bench = info->factory(Scale::Tiny);
        bench->run(dev);
        const auto digest = bench->verify();
        return digest ? digest->digest : 0;
    };
    EXPECT_EQ(digestAt(1), digestAt(4))
        << info->name << " output depends on host thread count";
}

std::string
paramName(const ::testing::TestParamInfo<const BenchmarkInfo *> &info)
{
    std::string name = info.param->name;
    for (char &c : name)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, StatsInvariants,
    ::testing::ValuesIn(Registry::instance().list()), paramName);

} // namespace
