/**
 * @file
 * Parallel-execution determinism across the full workload registry:
 * every benchmark must produce bit-identical LaunchStats — launch
 * sequence, warp-level instruction accounting, cache/DRAM traffic,
 * and timing — whether blocks run on one host thread or on a worker
 * pool. The two-stage replay keys every L2-slice stream by
 * (block, seq) and merges all aggregates in fixed index order, so the
 * host schedule cannot influence any field. Traced addresses are
 * rewritten into canonical device addresses before replay, so the
 * measured runs are insensitive to host allocator placement; both
 * runs execute on ONE device (after a discarded warm-up) purely so
 * persistent-L2 and frame-map state is controlled identically, with
 * the caches flushed between runs so each starts cold.
 */

#include <cctype>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/benchmark.hh"
#include "gpu/device.hh"

namespace {

using namespace cactus;

std::vector<gpu::LaunchStats>
runOnce(gpu::Device &dev, const std::string &name, int host_threads)
{
    dev.setHostThreads(host_threads);
    dev.flushCaches();
    dev.clearHistory();
    const auto bench =
        core::Registry::instance().create(name, core::Scale::Tiny);
    bench->run(dev);
    return dev.launches();
}

class ParallelDeterminism
    : public ::testing::TestWithParam<const core::BenchmarkInfo *>
{
};

TEST_P(ParallelDeterminism, LaunchStatsAreBitIdenticalToSerial)
{
    const std::string name = GetParam()->name;
    gpu::DeviceConfig cfg = gpu::DeviceConfig::scaledExperiment();
    cfg.hostThreads = 1;
    // Disable the work gate: tiny-scale launches would otherwise be
    // small enough to run serially in both runs, and this suite exists
    // precisely to drive the parallel replay path.
    cfg.minWarpsPerWorker = 0;
    gpu::Device dev(cfg);
    // Warm-up run: spawns the worker pool and exercises the workload
    // once end-to-end; its results are discarded. Canonical
    // addressing makes the measured runs insensitive to the heap
    // state it leaves behind.
    runOnce(dev, name, 4);
    const auto serial = runOnce(dev, name, 1);
    const auto parallel = runOnce(dev, name, 4);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("launch " + std::to_string(i) + ": " +
                     serial[i].desc.name);
        const auto &s = serial[i];
        const auto &p = parallel[i];
        EXPECT_EQ(s.desc.name, p.desc.name);
        EXPECT_EQ(s.grid.count(), p.grid.count());
        EXPECT_EQ(s.block.count(), p.block.count());
        EXPECT_EQ(s.counts.warpInsts, p.counts.warpInsts);
        EXPECT_EQ(s.counts.threadInsts, p.counts.threadInsts);
        EXPECT_EQ(s.counts.activeLanes, p.counts.activeLanes);
        EXPECT_EQ(s.totalWarps, p.totalWarps);
        EXPECT_EQ(s.sampledWarps, p.sampledWarps);

        // Address-based traffic counters, bit-exact.
        EXPECT_EQ(s.l1Accesses, p.l1Accesses);
        EXPECT_EQ(s.l1Misses, p.l1Misses);
        EXPECT_EQ(s.l2Accesses, p.l2Accesses);
        EXPECT_EQ(s.l2Misses, p.l2Misses);
        EXPECT_EQ(s.l2SliceMaxAccesses, p.l2SliceMaxAccesses);
        EXPECT_EQ(s.dramReadSectors, p.dramReadSectors);
        EXPECT_EQ(s.dramWriteSectors, p.dramWriteSectors);

        // Derived floating-point results: identical inputs through
        // identical expressions, so exact equality is required.
        EXPECT_EQ(s.sampleCoverage, p.sampleCoverage);
        EXPECT_EQ(s.timing.seconds, p.timing.seconds);
        EXPECT_EQ(s.metrics.gips, p.metrics.gips);
        EXPECT_EQ(s.metrics.instIntensity, p.metrics.instIntensity);
        EXPECT_EQ(s.metrics.l1HitRate, p.metrics.l1HitRate);
        EXPECT_EQ(s.metrics.l2HitRate, p.metrics.l2HitRate);
    }
}

std::string
benchName(const ::testing::TestParamInfo<const core::BenchmarkInfo *> &info)
{
    std::string n = info.param->name;
    for (auto &c : n)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return n;
}

INSTANTIATE_TEST_SUITE_P(
    Registry, ParallelDeterminism,
    ::testing::ValuesIn(core::Registry::instance().list()), benchName);

} // namespace
