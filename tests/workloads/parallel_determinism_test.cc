/**
 * @file
 * Parallel-execution determinism across the full workload registry:
 * every benchmark must issue the same launch sequence with the same
 * warp-level instruction accounting whether blocks run on one host
 * thread or on a worker pool. Cache/DRAM counters are address-based
 * and compared bit-exactly in the device tests (with pinned buffers);
 * here the comparison sticks to the address-independent fields so the
 * test is insensitive to heap layout between the two runs.
 */

#include <cctype>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/benchmark.hh"
#include "gpu/device.hh"

namespace {

using namespace cactus;

std::vector<gpu::LaunchStats>
runOnce(const std::string &name, int host_threads)
{
    gpu::DeviceConfig cfg = gpu::DeviceConfig::scaledExperiment();
    cfg.hostThreads = host_threads;
    gpu::Device dev(cfg);
    const auto bench =
        core::Registry::instance().create(name, core::Scale::Tiny);
    bench->run(dev);
    return dev.launches();
}

class ParallelDeterminism
    : public ::testing::TestWithParam<const core::BenchmarkInfo *>
{
};

TEST_P(ParallelDeterminism, LaunchSequenceAndCountsMatchSerial)
{
    const std::string name = GetParam()->name;
    const auto serial = runOnce(name, 1);
    const auto parallel = runOnce(name, 4);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("launch " + std::to_string(i) + ": " +
                     serial[i].desc.name);
        EXPECT_EQ(serial[i].desc.name, parallel[i].desc.name);
        EXPECT_EQ(serial[i].grid.count(), parallel[i].grid.count());
        EXPECT_EQ(serial[i].block.count(), parallel[i].block.count());
        EXPECT_EQ(serial[i].counts.warpInsts,
                  parallel[i].counts.warpInsts);
        EXPECT_EQ(serial[i].counts.threadInsts,
                  parallel[i].counts.threadInsts);
        EXPECT_EQ(serial[i].counts.activeLanes,
                  parallel[i].counts.activeLanes);
        EXPECT_EQ(serial[i].totalWarps, parallel[i].totalWarps);
        EXPECT_EQ(serial[i].sampledWarps, parallel[i].sampledWarps);
    }
}

std::string
benchName(const ::testing::TestParamInfo<const core::BenchmarkInfo *> &info)
{
    std::string n = info.param->name;
    for (auto &c : n)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return n;
}

INSTANTIATE_TEST_SUITE_P(
    Registry, ParallelDeterminism,
    ::testing::ValuesIn(core::Registry::instance().list()), benchName);

} // namespace
