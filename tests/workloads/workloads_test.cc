/**
 * @file
 * Workload-level tests: every registered benchmark runs to completion
 * at Tiny scale, and the key structural claims of the paper hold —
 * Cactus workloads execute many kernels while PRT workloads concentrate
 * time in one or a few; BFS kernel sets depend on the input; the
 * molecular workloads mix compute- and memory-intensive kernels.
 */

#include <set>

#include <gtest/gtest.h>

#include "analysis/roofline.hh"
#include "core/harness.hh"

namespace {

using namespace cactus::core;
using cactus::analysis::IntensityClass;
using cactus::analysis::Roofline;

/** Smoke sweep: every benchmark in the registry completes. */
class AllBenchmarksSmoke : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AllBenchmarksSmoke, RunsAndProducesKernels)
{
    const auto profile = runProfiled(GetParam(), Scale::Tiny);
    EXPECT_GT(profile.kernelCount(), 0);
    EXPECT_GT(profile.totalWarpInsts, 0u);
    EXPECT_GT(profile.totalSeconds, 0.0);
    // Kernel profiles are internally consistent.
    for (const auto &kp : profile.kernels) {
        EXPECT_GT(kp.invocations, 0u);
        EXPECT_GE(kp.seconds, 0.0);
    }
}

std::vector<std::string>
allBenchmarkNames()
{
    std::vector<std::string> names;
    for (const auto *info : Registry::instance().list())
        names.push_back(info->name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(Registry, AllBenchmarksSmoke,
                         ::testing::ValuesIn(allBenchmarkNames()),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (auto &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

TEST(CactusStructure, MolecularWorkloadsRunManyKernels)
{
    for (const char *name : {"GMS", "LMR", "LMC"}) {
        const auto profile = runProfiled(name, Scale::Tiny);
        EXPECT_GE(profile.kernelCount(), 8) << name;
    }
}

TEST(CactusStructure, MlWorkloadsRunManyKernels)
{
    for (const char *name : {"DCG", "SPT"}) {
        const auto profile = runProfiled(name, Scale::Tiny);
        EXPECT_GE(profile.kernelCount(), 10) << name;
    }
}

TEST(CactusStructure, GmsMixesComputeAndMemoryKernels)
{
    const auto profile = runProfiled("GMS", Scale::Tiny);
    const Roofline roof{profile.config};
    bool any_compute = false, any_memory = false;
    for (const auto &kp : profile.kernels) {
        const auto cls =
            roof.classifyIntensity(kp.metrics.instIntensity);
        any_compute |= cls == IntensityClass::ComputeIntensive;
        any_memory |= cls == IntensityClass::MemoryIntensive;
    }
    EXPECT_TRUE(any_compute);
    EXPECT_TRUE(any_memory);
}

TEST(CactusStructure, BfsKernelSetsDependOnInput)
{
    const auto gst = runProfiled("GST", Scale::Tiny);
    const auto gru = runProfiled("GRU", Scale::Tiny);
    std::set<std::string> gst_kernels, gru_kernels;
    for (const auto &kp : gst.kernels)
        gst_kernels.insert(kp.name);
    for (const auto &kp : gru.kernels)
        gru_kernels.insert(kp.name);
    EXPECT_NE(gst_kernels, gru_kernels);
}

TEST(PrtStructure, SingleKernelDominatesTypicalWorkloads)
{
    // Spot-check classic one-kernel workloads.
    for (const char *name : {"sgemm", "stencil", "nn", "lbm"}) {
        const auto profile = runProfiled(name, Scale::Tiny);
        EXPECT_LE(profile.kernelsForTimeFraction(0.7), 2) << name;
    }
}

TEST(PrtStructure, SgemmIsComputeIntensive)
{
    const auto profile = runProfiled("sgemm", Scale::Tiny);
    const Roofline roof{profile.config};
    EXPECT_EQ(roof.classifyIntensity(profile.aggregateIntensity()),
              IntensityClass::ComputeIntensive);
}

TEST(PrtStructure, StreamingWorkloadsAreMemoryIntensive)
{
    for (const char *name : {"stencil", "lbm", "spmv"}) {
        const auto profile = runProfiled(name, Scale::Tiny);
        const Roofline roof{profile.config};
        EXPECT_EQ(roof.classifyIntensity(profile.aggregateIntensity()),
                  IntensityClass::MemoryIntensive)
            << name;
    }
}

TEST(PrtStructure, LudMixesKernelClasses)
{
    // The paper's noted Rodinia exception: LUD has one compute- and one
    // memory-intensive kernel.
    const auto profile = runProfiled("lud", Scale::Tiny);
    const Roofline roof{profile.config};
    std::set<IntensityClass> classes;
    for (const auto &kp : profile.kernels)
        classes.insert(
            roof.classifyIntensity(kp.metrics.instIntensity));
    EXPECT_EQ(classes.size(), 2u);
}

TEST(Determinism, RepeatedRunsProduceIdenticalCounts)
{
    const auto a = runProfiled("histo", Scale::Tiny);
    const auto b = runProfiled("histo", Scale::Tiny);
    EXPECT_EQ(a.totalWarpInsts, b.totalWarpInsts);
    EXPECT_EQ(a.kernelCount(), b.kernelCount());
    // Timing is bit-deterministic too: traced addresses are rewritten
    // into canonical device addresses (arena logical addresses +
    // first-touch frame translation) before replay, so cache set
    // indexing and L2 slice interleaving never see where the host
    // allocator happened to place the buffers of a particular run.
    EXPECT_EQ(a.totalSeconds, b.totalSeconds);
    EXPECT_EQ(a.totalDramSectors, b.totalDramSectors);
}

} // namespace
