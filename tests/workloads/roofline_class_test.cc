/**
 * @file
 * Per-workload roofline-class regression sweep: pins the Figure 4
 * placement of the clearly-sided PRT workloads so a simulator or
 * kernel change that silently flips a benchmark's memory/compute
 * character fails a unit test rather than only skewing the figures.
 */

#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "analysis/roofline.hh"
#include "core/harness.hh"

namespace {

using namespace cactus::core;
using cactus::analysis::IntensityClass;
using cactus::analysis::Roofline;

struct ClassExpectation
{
    const char *name;
    IntensityClass expected;
    Scale scale = Scale::Tiny;
};

class RooflineClassSweep
    : public ::testing::TestWithParam<ClassExpectation>
{
};

TEST_P(RooflineClassSweep, AggregateClassMatchesFigure4)
{
    const auto &param = GetParam();
    const auto profile =
        runProfiled(param.name, param.scale,
                    cactus::gpu::DeviceConfig::scaledExperiment());
    const Roofline roof(profile.config);
    EXPECT_EQ(roof.classifyIntensity(profile.aggregateIntensity()),
              param.expected)
        << param.name << " II=" << profile.aggregateIntensity();
}

INSTANTIATE_TEST_SUITE_P(
    MemoryIntensive, RooflineClassSweep,
    ::testing::Values(
        ClassExpectation{"stencil", IntensityClass::MemoryIntensive},
        ClassExpectation{"lbm", IntensityClass::MemoryIntensive},
        ClassExpectation{"spmv", IntensityClass::MemoryIntensive},
        ClassExpectation{"histo", IntensityClass::MemoryIntensive},
        ClassExpectation{"nn", IntensityClass::MemoryIntensive},
        ClassExpectation{"pathfinder",
                         IntensityClass::MemoryIntensive},
        ClassExpectation{"hotspot3d", IntensityClass::MemoryIntensive},
        ClassExpectation{"backprop", IntensityClass::MemoryIntensive},
        ClassExpectation{"mri_gridding",
                         IntensityClass::MemoryIntensive},
        ClassExpectation{"pb_bfs", IntensityClass::MemoryIntensive},
        ClassExpectation{"rd_bfs", IntensityClass::MemoryIntensive}),
    [](const auto &info) { return std::string(info.param.name); });

INSTANTIATE_TEST_SUITE_P(
    ComputeIntensive, RooflineClassSweep,
    ::testing::Values(
        ClassExpectation{"sgemm", IntensityClass::ComputeIntensive},
        // cutcp and lavamd are scale-sensitive: their arithmetic
        // intensity emerges at the experiment input size.
        ClassExpectation{"cutcp", IntensityClass::ComputeIntensive,
                         Scale::Small},
        ClassExpectation{"mri_q", IntensityClass::ComputeIntensive},
        ClassExpectation{"tpacf", IntensityClass::ComputeIntensive},
        ClassExpectation{"lavamd", IntensityClass::ComputeIntensive,
                         Scale::Small},
        ClassExpectation{"heartwall",
                         IntensityClass::ComputeIntensive},
        ClassExpectation{"btree", IntensityClass::ComputeIntensive},
        ClassExpectation{"leukocyte",
                         IntensityClass::ComputeIntensive},
        ClassExpectation{"RN", IntensityClass::ComputeIntensive}),
    [](const auto &info) { return std::string(info.param.name); });

} // namespace
