/**
 * @file
 * Registry-wide fast-forward bit-identity: every registered benchmark
 * must produce the same output digest and the same per-launch stats
 * with DeviceConfig::fastForward on as with full replay. Workloads
 * that never settle into a periodic launch window (fresh allocations
 * per iteration, data-dependent minibatch loops) simply never skip —
 * the guarantee is unconditional, not limited to iterative kernels.
 */

#include <cctype>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/benchmark.hh"
#include "gpu/device.hh"

namespace {

using namespace cactus;

struct RunResult
{
    std::vector<gpu::LaunchStats> launches;
    std::uint64_t outputDigest = 0;
    gpu::FastForwardSummary summary;
};

RunResult
runOnce(const std::string &name, bool fast_forward)
{
    gpu::DeviceConfig cfg = gpu::DeviceConfig::scaledExperiment();
    cfg.fastForward = fast_forward;
    gpu::Device dev(cfg);
    const auto bench =
        core::Registry::instance().create(name, core::Scale::Tiny);
    bench->run(dev);
    RunResult run;
    run.launches = dev.launches();
    if (const auto digest = bench->verify())
        run.outputDigest = digest->digest;
    run.summary = dev.fastForwardSummary();
    return run;
}

class FastForwardRegistry
    : public ::testing::TestWithParam<const core::BenchmarkInfo *>
{
};

TEST_P(FastForwardRegistry, StatsAndOutputMatchFullReplay)
{
    const std::string name = GetParam()->name;
    const RunResult plain = runOnce(name, false);
    const RunResult ff = runOnce(name, true);

    // The functional sweep always executes, so outputs must agree
    // even before considering the stats path.
    EXPECT_EQ(plain.outputDigest, ff.outputDigest);

    ASSERT_EQ(plain.launches.size(), ff.launches.size());
    EXPECT_EQ(ff.summary.replayedLaunches + ff.summary.skippedLaunches,
              static_cast<std::uint64_t>(ff.launches.size()));
    for (std::size_t i = 0; i < plain.launches.size(); ++i) {
        SCOPED_TRACE("launch " + std::to_string(i) + ": " +
                     plain.launches[i].desc.name);
        const auto &s = plain.launches[i];
        const auto &f = ff.launches[i];
        EXPECT_EQ(s.desc.name, f.desc.name);
        EXPECT_EQ(s.grid.count(), f.grid.count());
        EXPECT_EQ(s.block.count(), f.block.count());
        EXPECT_EQ(s.counts.warpInsts, f.counts.warpInsts);
        EXPECT_EQ(s.counts.threadInsts, f.counts.threadInsts);
        EXPECT_EQ(s.counts.activeLanes, f.counts.activeLanes);
        EXPECT_EQ(s.totalWarps, f.totalWarps);
        EXPECT_EQ(s.sampledWarps, f.sampledWarps);

        // Address-based traffic counters, bit-exact: a synthesized
        // launch is an exact copy of its recorded phase.
        EXPECT_EQ(s.l1Accesses, f.l1Accesses);
        EXPECT_EQ(s.l1Misses, f.l1Misses);
        EXPECT_EQ(s.l2Accesses, f.l2Accesses);
        EXPECT_EQ(s.l2Misses, f.l2Misses);
        EXPECT_EQ(s.l2SliceMaxAccesses, f.l2SliceMaxAccesses);
        EXPECT_EQ(s.dramReadSectors, f.dramReadSectors);
        EXPECT_EQ(s.dramWriteSectors, f.dramWriteSectors);

        // Derived floating-point results: identical inputs through
        // identical expressions, so exact equality is required.
        EXPECT_EQ(s.sampleCoverage, f.sampleCoverage);
        EXPECT_EQ(s.timing.seconds, f.timing.seconds);
        EXPECT_EQ(s.metrics.gips, f.metrics.gips);
        EXPECT_EQ(s.metrics.instIntensity, f.metrics.instIntensity);
        EXPECT_EQ(s.metrics.l1HitRate, f.metrics.l1HitRate);
        EXPECT_EQ(s.metrics.l2HitRate, f.metrics.l2HitRate);
    }
}

std::string
benchName(const ::testing::TestParamInfo<const core::BenchmarkInfo *> &info)
{
    std::string n = info.param->name;
    for (auto &c : n)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return n;
}

INSTANTIATE_TEST_SUITE_P(
    Registry, FastForwardRegistry,
    ::testing::ValuesIn(core::Registry::instance().list()), benchName);

} // namespace
