/**
 * @file
 * Integration and property tests for the MD engine: force correctness
 * against analytic two-body values, energy conservation in NVE,
 * thermostat/barostat convergence, and kernel-pipeline composition.
 */

#include <cmath>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "gpu/device.hh"
#include "gpu/profiler.hh"
#include "md/engine.hh"

namespace {

using namespace cactus::md;
using cactus::Rng;
using cactus::gpu::Device;

/** Two atoms at a known separation, no periodic effects. */
ParticleSystem
twoAtoms(float separation)
{
    ParticleSystem sys;
    sys.box = 100.f;
    sys.pos = {{10.f, 10.f, 10.f}, {10.f + separation, 10.f, 10.f}};
    sys.vel.assign(2, Vec3{});
    sys.force.assign(2, Vec3{});
    sys.charge.assign(2, 0.f);
    sys.mass.assign(2, 1.f);
    sys.radius.assign(2, 0.5f);
    sys.type.assign(2, 0);
    return sys;
}

TEST(PairForces, LennardJonesAnalyticTwoBody)
{
    auto sys = twoAtoms(1.2f);
    Device dev;
    NeighborList nlist(8);
    nlist.build(dev, sys, 3.0f);
    computePairForces(dev, sys, nlist, PairStyle::LjCut, 2.5f);

    // Analytic LJ radial derivative at r = 1.2 (negative: attraction).
    // Force on atom 0 points toward atom 1 (+x), i.e., -fmag.
    const double r = 1.2;
    const double r6 = std::pow(r, -6.0);
    const double fmag = 24.0 * r6 * (2.0 * r6 - 1.0) / (r * r) * r;
    EXPECT_NEAR(sys.force[0].x, -fmag, std::fabs(fmag) * 1e-4);
    EXPECT_NEAR(sys.force[1].x, fmag, std::fabs(fmag) * 1e-4);
    EXPECT_NEAR(sys.force[0].y, 0.0, 1e-6);
}

TEST(PairForces, LjEnergyAnalyticTwoBody)
{
    auto sys = twoAtoms(1.5f);
    Device dev;
    NeighborList nlist(8);
    nlist.build(dev, sys, 3.0f);
    const auto acc =
        computePairForces(dev, sys, nlist, PairStyle::LjCut, 2.5f);
    const double r6 = std::pow(1.5, -6.0);
    const double expect = 4.0 * r6 * (r6 - 1.0);
    EXPECT_NEAR(acc.potential, expect, std::fabs(expect) * 1e-3);
}

TEST(PairForces, CoulombAttractionBetweenOppositeCharges)
{
    auto sys = twoAtoms(1.8f);
    sys.charge = {1.0f, -1.0f};
    Device dev;
    NeighborList nlist(8);
    nlist.build(dev, sys, 3.0f);
    computePairForces(dev, sys, nlist, PairStyle::LjCutCoul, 2.5f);
    auto lj_only = twoAtoms(1.8f);
    NeighborList nlist2(8);
    Device dev2;
    nlist2.build(dev2, lj_only, 3.0f);
    computePairForces(dev2, lj_only, nlist2, PairStyle::LjCut, 2.5f);
    // Opposite charges add attraction: atom 0 is pulled harder toward
    // atom 1 (+x) than with pure LJ.
    EXPECT_GT(sys.force[0].x, lj_only.force[0].x);
}

TEST(PairForces, ColloidForceIsRepulsiveAtContact)
{
    auto sys = twoAtoms(4.2f);
    sys.radius = {2.0f, 2.0f};
    Device dev;
    NeighborList nlist(8);
    nlist.build(dev, sys, 6.0f);
    computePairForces(dev, sys, nlist, PairStyle::Colloid, 6.0f);
    // Gap = 0.2 behind contact: steep core dominates, atoms repel.
    EXPECT_GT(sys.force[1].x, 0.f);
}

TEST(PairForces, NewtonsThirdLawHoldsGlobally)
{
    Rng rng(11);
    auto sys = ParticleSystem::liquid(500, 0.8f, rng);
    Device dev;
    NeighborList nlist(128);
    nlist.build(dev, sys, 2.8f);
    computePairForces(dev, sys, nlist, PairStyle::LjCut, 2.5f);
    double fx = 0, fy = 0, fz = 0;
    for (const auto &f : sys.force) {
        fx += f.x;
        fy += f.y;
        fz += f.z;
    }
    EXPECT_NEAR(fx, 0.0, 1e-2);
    EXPECT_NEAR(fy, 0.0, 1e-2);
    EXPECT_NEAR(fz, 0.0, 1e-2);
}

TEST(BondedForces, BondRestoringForce)
{
    auto sys = twoAtoms(1.5f);
    sys.bonds.push_back(Bond{0, 1, 1.0f, 100.0f});
    Device dev;
    computeBondedForces(dev, sys);
    // Stretched bond pulls the atoms together.
    EXPECT_GT(sys.force[0].x, 0.f);
    EXPECT_LT(sys.force[1].x, 0.f);
    EXPECT_NEAR(sys.force[0].x, 2.0f * 100.0f * 0.5f, 1.0f);
}

TEST(BondedForces, EquilibriumBondGivesNoForce)
{
    auto sys = twoAtoms(1.0f);
    sys.bonds.push_back(Bond{0, 1, 1.0f, 100.0f});
    Device dev;
    computeBondedForces(dev, sys);
    EXPECT_NEAR(sys.force[0].x, 0.f, 1e-3);
}

TEST(Engine, NveConservesEnergy)
{
    Rng rng(12);
    auto sys = ParticleSystem::liquid(400, 0.7f, rng);
    sys.thermalize(0.7f, rng);
    MdConfig cfg;
    cfg.steps = 40;
    cfg.dt = 0.002f;
    cfg.ensemble = Ensemble::NVE;
    Simulation sim(std::move(sys), cfg);
    Device dev;
    sim.step(dev);
    const double e0 = sim.totalEnergy();
    for (int s = 1; s < cfg.steps; ++s)
        sim.step(dev);
    const double e1 = sim.totalEnergy();
    // Single precision leapfrog: total energy drift stays small.
    EXPECT_NEAR(e1, e0, std::fabs(e0) * 0.05 + 1.0);
}

TEST(Engine, ThermostatDrivesTemperatureToTarget)
{
    Rng rng(13);
    auto sys = ParticleSystem::liquid(500, 0.7f, rng);
    sys.thermalize(2.5f, rng); // Start hot.
    MdConfig cfg;
    cfg.steps = 60;
    cfg.ensemble = Ensemble::NVT;
    cfg.targetTemp = 1.0f;
    cfg.tauT = 0.05f; // Tight coupling for a short test.
    Simulation sim(std::move(sys), cfg);
    Device dev;
    sim.run(dev);
    EXPECT_NEAR(sim.lastObservables().temperature, 1.0, 0.25);
}

TEST(Engine, BarostatAdjustsBox)
{
    Rng rng(14);
    auto sys = ParticleSystem::liquid(500, 0.9f, rng); // Dense start.
    const float box0 = sys.box;
    MdConfig cfg;
    cfg.steps = 30;
    cfg.ensemble = Ensemble::NPT;
    cfg.targetPressure = 0.05f;
    cfg.tauP = 0.5f;
    Simulation sim(std::move(sys), cfg);
    Device dev;
    sim.run(dev);
    // Over-pressurized system expands toward the low target pressure.
    EXPECT_NE(sim.system().box, box0);
}

TEST(Engine, ConstraintsKeepBondLengths)
{
    Rng rng(15);
    auto sys = ParticleSystem::proteinLike(800, rng);
    MdConfig cfg;
    cfg.steps = 20;
    cfg.bonded = true;
    cfg.constraints = true;
    cfg.ensemble = Ensemble::NVT;
    Simulation sim(std::move(sys), cfg);
    Device dev;
    sim.run(dev);
    // Bond lengths stay near r0 thanks to SHAKE sweeps.
    double worst = 0;
    const auto &s = sim.system();
    for (const auto &b : s.bonds) {
        const float dx = s.minImage(s.pos[b.i].x - s.pos[b.j].x);
        const float dy = s.minImage(s.pos[b.i].y - s.pos[b.j].y);
        const float dz = s.minImage(s.pos[b.i].z - s.pos[b.j].z);
        const double r = std::sqrt(dx * dx + dy * dy + dz * dz);
        worst = std::max(worst, std::fabs(r - b.r0) / b.r0);
    }
    EXPECT_LT(worst, 0.35);
}

TEST(Engine, PmePipelineLaunchesExpectedKernels)
{
    Rng rng(16);
    auto sys = ParticleSystem::proteinLike(600, rng);
    MdConfig cfg;
    cfg.steps = 2;
    cfg.pme = true;
    cfg.pmeGrid = 16;
    cfg.bonded = true;
    cfg.pairStyle = PairStyle::LjCutCoul;
    cfg.ensemble = Ensemble::NPT;
    cfg.constraints = true;
    Simulation sim(std::move(sys), cfg);
    Device dev;
    sim.run(dev);
    std::set<std::string> names;
    for (const auto &l : dev.launches())
        names.insert(l.desc.name);
    for (const char *expect :
         {"pme_spread", "pme_3dfft", "pme_solve", "pme_gather",
          "pair_lj_charmm_coul", "bonded_bonds", "bonded_angles",
          "bonded_dihedrals", "integrate_leapfrog", "reduce_kinetic",
          "berendsen_thermostat", "berendsen_barostat",
          "settle_constraints", "nb_build_verlet"}) {
        EXPECT_TRUE(names.count(expect)) << expect;
    }
}

TEST(Engine, PairKernelDominatesGpuTime)
{
    Rng rng(17);
    auto sys = ParticleSystem::liquid(1500, 0.8f, rng);
    MdConfig cfg;
    cfg.steps = 5;
    Simulation sim(std::move(sys), cfg);
    Device dev;
    sim.run(dev);
    const auto profiles = cactus::gpu::aggregateLaunches(
        dev.launches(), dev.config());
    ASSERT_FALSE(profiles.empty());
    // The most time-consuming kernel of an LJ liquid is the pair kernel.
    EXPECT_EQ(profiles[0].name, "pair_lj_cut");
}

/** Property: total momentum is conserved across ensembles in NVE. */
class MomentumSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(MomentumSweep, NveMomentumConserved)
{
    Rng rng(100 + GetParam());
    auto sys = ParticleSystem::liquid(300, 0.75f, rng);
    MdConfig cfg;
    cfg.steps = 10;
    Simulation sim(std::move(sys), cfg);
    Device dev;
    sim.run(dev);
    double px = 0;
    const auto &s = sim.system();
    for (int i = 0; i < s.numAtoms(); ++i)
        px += static_cast<double>(s.mass[i]) * s.vel[i].x;
    EXPECT_NEAR(px, 0.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MomentumSweep, ::testing::Range(0, 4));

} // namespace
