/**
 * @file
 * Tests for particle-system construction and GPU neighbor-list builds,
 * validated against a brute-force O(n^2) reference.
 */

#include <set>

#include <gtest/gtest.h>

#include "gpu/device.hh"
#include "md/neighbor.hh"
#include "md/system.hh"

namespace {

using namespace cactus::md;
using cactus::Rng;

TEST(ParticleSystem, LiquidHasRequestedDensity)
{
    Rng rng(1);
    const auto sys = ParticleSystem::liquid(512, 0.8f, rng);
    EXPECT_EQ(sys.numAtoms(), 512);
    const double vol = static_cast<double>(sys.box) * sys.box * sys.box;
    EXPECT_NEAR(512.0 / vol, 0.8, 0.05);
    for (const auto &p : sys.pos) {
        EXPECT_GE(p.x, 0.f);
        EXPECT_LT(p.x, sys.box);
    }
}

TEST(ParticleSystem, ThermalizeHitsTargetTemperature)
{
    Rng rng(2);
    auto sys = ParticleSystem::liquid(2000, 0.8f, rng);
    sys.thermalize(1.5f, rng);
    EXPECT_NEAR(sys.temperature(), 1.5, 0.15);
}

TEST(ParticleSystem, ZeroMomentumAfterThermalize)
{
    Rng rng(3);
    auto sys = ParticleSystem::liquid(500, 0.7f, rng);
    double px = 0;
    for (int i = 0; i < sys.numAtoms(); ++i)
        px += static_cast<double>(sys.mass[i]) * sys.vel[i].x;
    EXPECT_NEAR(px, 0.0, 1e-3);
}

TEST(ParticleSystem, ProteinLikeHasTopology)
{
    Rng rng(4);
    const auto sys = ParticleSystem::proteinLike(2000, rng);
    EXPECT_FALSE(sys.bonds.empty());
    EXPECT_FALSE(sys.angles.empty());
    EXPECT_FALSE(sys.dihedrals.empty());
    // Charged system.
    bool any_charge = false;
    for (float q : sys.charge)
        any_charge |= q != 0.f;
    EXPECT_TRUE(any_charge);
    // Bond indices are valid.
    for (const auto &b : sys.bonds) {
        ASSERT_GE(b.i, 0);
        ASSERT_LT(b.j, sys.numAtoms());
    }
}

TEST(ParticleSystem, ColloidalHasBimodalRadii)
{
    Rng rng(5);
    const auto sys = ParticleSystem::colloidal(1000, rng);
    std::set<float> radii(sys.radius.begin(), sys.radius.end());
    EXPECT_EQ(radii.size(), 2u);
    EXPECT_TRUE(sys.bonds.empty());
}

TEST(ParticleSystem, MinImageConvention)
{
    ParticleSystem sys;
    sys.box = 10.f;
    EXPECT_FLOAT_EQ(sys.minImage(7.f), -3.f);
    EXPECT_FLOAT_EQ(sys.minImage(-7.f), 3.f);
    EXPECT_FLOAT_EQ(sys.minImage(3.f), 3.f);
}

/** Brute-force neighbor reference. */
std::set<std::pair<int, int>>
bruteForcePairs(const ParticleSystem &sys, float cutoff)
{
    std::set<std::pair<int, int>> pairs;
    const float c2 = cutoff * cutoff;
    for (int i = 0; i < sys.numAtoms(); ++i) {
        for (int j = 0; j < sys.numAtoms(); ++j) {
            if (i == j)
                continue;
            const float dx = sys.minImage(sys.pos[i].x - sys.pos[j].x);
            const float dy = sys.minImage(sys.pos[i].y - sys.pos[j].y);
            const float dz = sys.minImage(sys.pos[i].z - sys.pos[j].z);
            if (dx * dx + dy * dy + dz * dz < c2)
                pairs.insert({i, j});
        }
    }
    return pairs;
}

TEST(NeighborList, MatchesBruteForce)
{
    Rng rng(6);
    const auto sys = ParticleSystem::liquid(400, 0.8f, rng);
    cactus::gpu::Device dev;
    NeighborList nlist(128);
    const float cutoff = 2.0f;
    nlist.build(dev, sys, cutoff);
    ASSERT_EQ(nlist.overflows(), 0);

    const auto expected = bruteForcePairs(sys, cutoff);
    std::set<std::pair<int, int>> actual;
    for (int i = 0; i < sys.numAtoms(); ++i)
        for (int k = 0; k < nlist.neighborCount(i); ++k)
            actual.insert({i, nlist.neighborsOf(i)[k]});
    EXPECT_EQ(actual, expected);
}

TEST(NeighborList, SymmetricPairs)
{
    Rng rng(7);
    const auto sys = ParticleSystem::liquid(300, 0.7f, rng);
    cactus::gpu::Device dev;
    NeighborList nlist(128);
    nlist.build(dev, sys, 2.2f);
    for (int i = 0; i < sys.numAtoms(); ++i) {
        for (int k = 0; k < nlist.neighborCount(i); ++k) {
            const int j = nlist.neighborsOf(i)[k];
            bool back = false;
            for (int m = 0; m < nlist.neighborCount(j); ++m)
                back |= nlist.neighborsOf(j)[m] == i;
            ASSERT_TRUE(back) << i << " -> " << j;
        }
    }
}

TEST(NeighborList, OverflowDetected)
{
    Rng rng(8);
    const auto sys = ParticleSystem::liquid(400, 0.9f, rng);
    cactus::gpu::Device dev;
    NeighborList tiny(4);
    tiny.build(dev, sys, 2.5f);
    EXPECT_NE(tiny.overflows(), 0);
}

TEST(NeighborList, LaunchesExpectedKernelPipeline)
{
    Rng rng(9);
    const auto sys = ParticleSystem::liquid(200, 0.8f, rng);
    cactus::gpu::Device dev;
    NeighborList nlist(96);
    nlist.build(dev, sys, 2.0f);
    std::set<std::string> names;
    for (const auto &l : dev.launches())
        names.insert(l.desc.name);
    EXPECT_TRUE(names.count("nb_cell_count"));
    EXPECT_TRUE(names.count("nb_scan_partials"));
    EXPECT_TRUE(names.count("nb_scan_offsets"));
    EXPECT_TRUE(names.count("nb_cell_fill"));
    EXPECT_TRUE(names.count("nb_build_verlet"));
}

TEST(NeighborList, AverageNeighborsMatchesDensityEstimate)
{
    Rng rng(10);
    const float density = 0.8f;
    const float cutoff = 2.5f;
    const auto sys = ParticleSystem::liquid(2000, density, rng);
    cactus::gpu::Device dev;
    NeighborList nlist(160);
    nlist.build(dev, sys, cutoff);
    // Expected: density * 4/3 pi r^3.
    const double expect =
        density * 4.0 / 3.0 * 3.14159265 * cutoff * cutoff * cutoff;
    EXPECT_NEAR(nlist.averageNeighbors(), expect, expect * 0.15);
}

} // namespace
