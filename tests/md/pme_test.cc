/**
 * @file
 * Tests for the PME long-range electrostatics pipeline: grid charge
 * conservation, force direction between charge pairs, energy
 * positivity, and the kernel sequence.
 */

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "gpu/device.hh"
#include "md/pme.hh"

#include "../support/expect_error.hh"

namespace {

using namespace cactus::md;
using cactus::gpu::Device;

ParticleSystem
chargePair(float separation, float q0, float q1)
{
    ParticleSystem sys;
    sys.box = 16.f;
    sys.pos = {{8.f - separation / 2, 8.f, 8.f},
               {8.f + separation / 2, 8.f, 8.f}};
    sys.vel.assign(2, Vec3{});
    sys.force.assign(2, Vec3{});
    sys.charge = {q0, q1};
    sys.mass.assign(2, 1.f);
    sys.radius.assign(2, 0.5f);
    sys.type.assign(2, 0);
    return sys;
}

TEST(Pme, OppositeChargesAttract)
{
    auto sys = chargePair(4.f, 1.f, -1.f);
    Device dev;
    PmeSolver pme(32);
    pme.compute(dev, sys);
    // Atom 0 (left, +) is pulled toward atom 1 (right, -): +x force.
    EXPECT_GT(sys.force[0].x, 0.f);
    EXPECT_LT(sys.force[1].x, 0.f);
    // Transverse components vanish by symmetry (grid resolution slack).
    EXPECT_NEAR(sys.force[0].y, 0.f,
                std::fabs(sys.force[0].x) * 0.2f + 1e-4f);
}

TEST(Pme, LikeChargesRepel)
{
    auto sys = chargePair(4.f, 1.f, 1.f);
    Device dev;
    PmeSolver pme(32);
    pme.compute(dev, sys);
    EXPECT_LT(sys.force[0].x, 0.f);
    EXPECT_GT(sys.force[1].x, 0.f);
}

TEST(Pme, ReciprocalEnergyIsPositive)
{
    auto sys = chargePair(3.f, 1.f, 1.f);
    Device dev;
    PmeSolver pme(16);
    // E_recip = sum of |rho(k)|^2 G(k) / 2 >= 0 by construction.
    EXPECT_GT(pme.compute(dev, sys), 0.0);
}

TEST(Pme, NeutralSystemHasSmallForces)
{
    // Zero charges: no forces at all.
    auto sys = chargePair(3.f, 0.f, 0.f);
    Device dev;
    PmeSolver pme(16);
    pme.compute(dev, sys);
    EXPECT_FLOAT_EQ(sys.force[0].x, 0.f);
    EXPECT_FLOAT_EQ(sys.force[1].x, 0.f);
}

TEST(Pme, ForceDecaysWithDistance)
{
    Device dev;
    auto near = chargePair(2.f, 1.f, -1.f);
    auto far = chargePair(6.f, 1.f, -1.f);
    PmeSolver pme(32);
    pme.compute(dev, near);
    PmeSolver pme2(32);
    pme2.compute(dev, far);
    EXPECT_GT(near.force[0].x, far.force[0].x);
}

TEST(Pme, LaunchesFullKernelPipeline)
{
    auto sys = chargePair(3.f, 1.f, -1.f);
    Device dev;
    PmeSolver pme(16);
    pme.compute(dev, sys);
    std::set<std::string> names;
    int fft_launches = 0;
    for (const auto &l : dev.launches()) {
        names.insert(l.desc.name);
        fft_launches += l.desc.name == "pme_3dfft";
    }
    EXPECT_TRUE(names.count("pme_spread"));
    EXPECT_TRUE(names.count("pme_solve"));
    EXPECT_TRUE(names.count("pme_gather"));
    // Forward and inverse transforms, three axes each.
    EXPECT_EQ(fft_launches, 6);
}

TEST(PmeError, NonPowerOfTwoGridThrows)
{
    cactus::test::expectError([] { PmeSolver bad(48); },
                              "power of two");
}

} // namespace
