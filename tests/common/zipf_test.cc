/**
 * @file
 * Tests for the shared Zipf(theta) rank sampler — the request-skew
 * engine behind the cactus_load generator. Two properties matter for
 * load generation: the empirical rank frequencies must match the CDF
 * the sampler claims to draw from (a chi-squared-style goodness-of-fit
 * check), and a fixed Rng seed must reproduce the exact sample
 * sequence, because replayable load is what makes serve-layer
 * benchmarks comparable across runs.
 */

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/zipf.hh"

namespace cactus {
namespace {

TEST(Zipf, ProbabilityMassSumsToOne)
{
    const ZipfSampler zipf(64, 0.99);
    double sum = 0;
    for (std::size_t r = 0; r < zipf.size(); ++r)
        sum += zipf.probability(r);
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_EQ(zipf.probability(zipf.size()), 0.0);
}

TEST(Zipf, ThetaZeroDegeneratesToUniform)
{
    const ZipfSampler zipf(10, 0.0);
    for (std::size_t r = 0; r < zipf.size(); ++r)
        EXPECT_NEAR(zipf.probability(r), 0.1, 1e-12);
}

TEST(Zipf, RanksAreOrderedHottestFirst)
{
    const ZipfSampler zipf(32, 0.9);
    for (std::size_t r = 1; r < zipf.size(); ++r)
        EXPECT_GT(zipf.probability(r - 1), zipf.probability(r));
}

TEST(Zipf, FrequenciesMatchTheClaimedDistribution)
{
    // Chi-squared goodness of fit: draw N samples and compare
    // per-rank counts against N * probability(r). With n = 16 cells
    // (15 degrees of freedom) the 99.9th percentile of chi-squared is
    // ~37.7; a bound of 60 keeps the test deterministic-in-practice
    // while still catching an off-by-one in the CDF search (which
    // shifts whole probability masses between adjacent ranks and
    // sends the statistic into the thousands).
    const std::size_t n = 16;
    const std::size_t samples = 200000;
    const ZipfSampler zipf(n, 0.99);

    Rng rng(12345);
    std::vector<std::size_t> counts(n, 0);
    for (std::size_t i = 0; i < samples; ++i) {
        const std::size_t r = zipf.sample(rng);
        ASSERT_LT(r, n);
        ++counts[r];
    }

    double chi2 = 0;
    for (std::size_t r = 0; r < n; ++r) {
        const double expected =
            static_cast<double>(samples) * zipf.probability(r);
        ASSERT_GT(expected, 5.0); // classic chi-squared validity floor
        const double delta = static_cast<double>(counts[r]) - expected;
        chi2 += delta * delta / expected;
    }
    EXPECT_LT(chi2, 60.0) << "empirical frequencies drifted from the "
                             "sampler's own probability() masses";
}

TEST(Zipf, FixedSeedReproducesTheExactSequence)
{
    const ZipfSampler zipf(128, 0.7);

    Rng a(42), b(42);
    std::vector<std::size_t> seq_a, seq_b;
    for (int i = 0; i < 4096; ++i) {
        seq_a.push_back(zipf.sample(a));
        seq_b.push_back(zipf.sample(b));
    }
    EXPECT_EQ(seq_a, seq_b);

    // A different seed should diverge somewhere (vanishingly unlikely
    // to coincide for 4096 draws over 128 ranks).
    Rng c(43);
    bool differs = false;
    for (int i = 0; i < 4096 && !differs; ++i)
        differs = zipf.sample(c) != seq_a[static_cast<std::size_t>(i)];
    EXPECT_TRUE(differs);
}

} // namespace
} // namespace cactus
