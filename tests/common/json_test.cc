/**
 * @file
 * Round-trip tests for the shared JSON string escaping in
 * common/json.hh. The original campaign-local pair was asymmetric —
 * jsonEscape wrote "\n" but the unescaper dropped the backslash and
 * kept the 'n', so a benchmark name containing a newline came back
 * from a checkpoint as a different string. These tests pin the
 * invariant the checkpoint and serve layers rely on:
 * unescape(escape(s)) == s for every byte string.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/json.hh"
#include "common/rng.hh"

namespace cactus {

namespace {

/** escape -> unescape must reproduce the input exactly. */
void
expectRoundTrip(const std::string &input)
{
    const std::string escaped = jsonEscape(input);
    std::string back;
    ASSERT_TRUE(jsonUnescape(escaped, back))
        << "escaped form rejected: " << escaped;
    EXPECT_EQ(back, input) << "via escaped form: " << escaped;
}

TEST(Json, EscapeProducesStandardSequences)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape("a\rb"), "a\\rb");
    EXPECT_EQ(jsonEscape("a\tb"), "a\\tb");
    EXPECT_EQ(jsonEscape(std::string("a\x01z", 3)), "a\\u0001z");
}

TEST(Json, RoundTripNamedEscapes)
{
    expectRoundTrip("");
    expectRoundTrip("no escapes at all");
    expectRoundTrip("quote \" backslash \\ slash /");
    expectRoundTrip("newline \n carriage \r tab \t");
    expectRoundTrip("backspace \b formfeed \f");
    expectRoundTrip("trailing newline\n");
    expectRoundTrip("\n leading newline");
    expectRoundTrip("\\n is two chars, \n is one");
}

TEST(Json, RoundTripAllControlBytes)
{
    // Every byte below 0x20 must survive, not just the named ones.
    for (int c = 0; c < 0x20; ++c) {
        std::string s = "ctl[";
        s.push_back(static_cast<char>(c));
        s += "]";
        expectRoundTrip(s);
    }
}

TEST(Json, RoundTripRandomByteStrings)
{
    // Property-style sweep: random strings biased toward the bytes
    // that need escaping. Deterministic seed, so failures reproduce.
    Rng rng(12345);
    const std::string alphabet =
        "ab\"\\\n\r\t\b\f\x01\x1f /{}:,";
    for (int iter = 0; iter < 500; ++iter) {
        std::string s;
        const auto len = rng.uniformInt(40);
        for (std::uint64_t i = 0; i < len; ++i)
            s.push_back(
                alphabet[rng.uniformInt(alphabet.size())]);
        expectRoundTrip(s);
    }
}

TEST(Json, RoundTripUnicodeEscapes)
{
    // \uXXXX forms decode to UTF-8; escape() re-emits the raw bytes
    // (valid JSON — only control characters require escaping).
    std::string out;
    ASSERT_TRUE(jsonUnescape("caf\\u00e9", out));
    EXPECT_EQ(out, "caf\xc3\xa9");
    ASSERT_TRUE(jsonUnescape("\\u2603", out));
    EXPECT_EQ(out, "\xe2\x98\x83"); // snowman
    // Surrogate pair: U+1F600.
    ASSERT_TRUE(jsonUnescape("\\ud83d\\ude00", out));
    EXPECT_EQ(out, "\xf0\x9f\x98\x80");
    expectRoundTrip("caf\xc3\xa9 \xe2\x98\x83 \xf0\x9f\x98\x80");
}

TEST(Json, UnescapeRejectsMalformedInput)
{
    std::string out;
    EXPECT_FALSE(jsonUnescape("trailing backslash \\", out));
    EXPECT_FALSE(jsonUnescape("unknown \\q escape", out));
    EXPECT_FALSE(jsonUnescape("short \\u12", out));
    EXPECT_FALSE(jsonUnescape("bad hex \\uzzzz", out));
    EXPECT_FALSE(jsonUnescape("lone surrogate \\ud83d", out));
}

TEST(Json, FieldScannersParseEscapedValues)
{
    // Embed an adversarial string in an object, then parse it back
    // with the line scanners the checkpoint reader uses.
    const std::string name = "A\nB\t\"quoted\" \\slash\\";
    const std::string line = "{\"name\":\"" + jsonEscape(name) +
        "\",\"launches\":42,\"total_seconds\":0.125}";

    std::string parsed;
    ASSERT_TRUE(jsonFindText(line, "name", parsed));
    EXPECT_EQ(parsed, name);

    double launches = 0, seconds = 0;
    ASSERT_TRUE(jsonFindNumber(line, "launches", launches));
    EXPECT_EQ(launches, 42.0);
    ASSERT_TRUE(jsonFindNumber(line, "total_seconds", seconds));
    EXPECT_EQ(seconds, 0.125);
}

TEST(Json, FindTextRejectsTornRecord)
{
    // A record cut mid-string (kill during checkpoint append) must
    // read as absent, not as a truncated value.
    std::string out;
    EXPECT_FALSE(jsonFindText("{\"name\":\"B", "name", out));
    EXPECT_FALSE(
        jsonFindText("{\"name\":\"B\\", "name", out));
    EXPECT_FALSE(jsonFindText("{\"other\":\"x\"}", "name", out));
}

} // namespace

} // namespace cactus
