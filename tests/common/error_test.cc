/**
 * @file
 * Tests for the common robustness primitives: the recoverable-error
 * taxonomy, guardedMain's process-boundary conversion, strict numeric
 * parsing, cooperative cancellation tokens, and deterministic fault
 * injection.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancel.hh"
#include "common/error.hh"
#include "common/fault.hh"
#include "common/logging.hh"
#include "common/parse.hh"

namespace {

using namespace cactus;

TEST(ErrorTaxonomy, SubclassesAreCatchableAsError)
{
    // Generic recovery code catches cactus::Error; every taxonomy
    // member must land there.
    EXPECT_THROW(throw ConfigError("c"), Error);
    EXPECT_THROW(throw TraceError("t"), Error);
    EXPECT_THROW(throw BenchmarkError("b"), Error);
    EXPECT_THROW(throw TimeoutError("w"), Error);
    EXPECT_THROW(throw Error("e"), std::runtime_error);
}

TEST(ErrorTaxonomy, TimeoutIsABenchmarkError)
{
    // Handlers that treat any benchmark failure uniformly also see
    // timeouts; only the campaign runner distinguishes them.
    EXPECT_THROW(throw TimeoutError("late"), BenchmarkError);
}

TEST(ErrorTaxonomy, TraceErrorCarriesLineNumber)
{
    const TraceError with_line("missing key 'grid'", 7);
    EXPECT_EQ(with_line.line(), 7);
    EXPECT_EQ(std::string(with_line.what()),
              "line 7: missing key 'grid'");

    const TraceError no_line("cannot open trace");
    EXPECT_EQ(no_line.line(), 0);
    EXPECT_EQ(std::string(no_line.what()), "cannot open trace");
}

TEST(ErrorTaxonomy, FatalThrowsFormattedError)
{
    try {
        fatal("bad thing ", 42, " happened");
        FAIL() << "fatal() returned";
    } catch (const Error &e) {
        EXPECT_EQ(std::string(e.what()), "bad thing 42 happened");
    }
}

TEST(GuardedMain, PassesThroughBodyResult)
{
    EXPECT_EQ(guardedMain([] { return 0; }), 0);
    EXPECT_EQ(guardedMain([] { return 3; }), 3);
}

TEST(GuardedMain, ConvertsErrorsToExitStatusOne)
{
    EXPECT_EQ(guardedMain([]() -> int {
        throw ConfigError("bad flag");
    }), 1);
    EXPECT_EQ(guardedMain([]() -> int {
        throw std::runtime_error("other");
    }), 1);
}

TEST(Parse, AcceptsWellFormedNumbers)
{
    EXPECT_EQ(parseInt("42", "--n"), 42);
    EXPECT_EQ(parseInt("-7", "--n"), -7);
    EXPECT_EQ(parseUint64("18446744073709551615", "--seed"),
              18446744073709551615ull);
    EXPECT_DOUBLE_EQ(parseDouble("2.5", "--timeout"), 2.5);
    EXPECT_DOUBLE_EQ(parseDouble("1e-3", "--timeout"), 1e-3);
}

TEST(Parse, RejectsGarbageThatAtoiAcceptedSilently)
{
    // std::atoi maps all of these to 0 or truncates; the strict
    // parsers must refuse them.
    EXPECT_THROW(parseInt("abc", "--n"), ConfigError);
    EXPECT_THROW(parseInt("12abc", "--n"), ConfigError);
    EXPECT_THROW(parseInt("", "--n"), ConfigError);
    EXPECT_THROW(parseInt("4.5", "--n"), ConfigError);
    EXPECT_THROW(parseInt("99999999999999999999", "--n"),
                 ConfigError);
    EXPECT_THROW(parseUint64("-1", "--seed"), ConfigError);
    EXPECT_THROW(parseDouble("1.5x", "--timeout"), ConfigError);
}

TEST(Parse, ErrorNamesTheOptionAtFault)
{
    try {
        parseInt("oops", "--retries");
        FAIL() << "no throw";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("--retries"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("oops"),
                  std::string::npos);
    }
}

TEST(CancelToken, DefaultConstructedIsInert)
{
    const CancelToken token;
    EXPECT_FALSE(token.requested());
    token.request(); // Must be a harmless no-op.
    EXPECT_FALSE(token.requested());
}

TEST(CancelToken, CopiesShareTheFlag)
{
    const CancelToken token = CancelToken::make();
    const CancelToken copy = token;
    EXPECT_FALSE(copy.requested());
    token.request();
    EXPECT_TRUE(copy.requested());
}

TEST(FaultInjector, DisabledByDefault)
{
    const FaultInjector injector;
    EXPECT_FALSE(injector.enabled());
    EXPECT_FALSE(injector.shouldFail("launch"));
}

TEST(FaultInjector, ParsesSpec)
{
    const auto injector = FaultInjector::parse("launch:0.25:42");
    EXPECT_TRUE(injector.enabled());
    EXPECT_EQ(injector.site(), "launch");
}

TEST(FaultInjector, RejectsMalformedSpecs)
{
    EXPECT_THROW(FaultInjector::parse("launch"), ConfigError);
    EXPECT_THROW(FaultInjector::parse("launch:0.5"), ConfigError);
    EXPECT_THROW(FaultInjector::parse(":0.5:42"), ConfigError);
    EXPECT_THROW(FaultInjector::parse("launch:huge:42"), ConfigError);
    EXPECT_THROW(FaultInjector::parse("launch:1.5:42"), ConfigError);
    EXPECT_THROW(FaultInjector::parse("launch:-0.1:42"), ConfigError);
    EXPECT_THROW(FaultInjector::parse("launch:0.5:notaseed"),
                 ConfigError);
}

TEST(FaultInjector, ProbabilityExtremes)
{
    const auto always = FaultInjector::parse("launch:1:9");
    const auto never = FaultInjector::parse("launch:0:9");
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(always.shouldFail("launch"));
        EXPECT_FALSE(never.shouldFail("launch"));
    }
}

TEST(FaultInjector, DecisionSequenceIsDeterministic)
{
    // The same spec reproduces the same failure pattern in any
    // process — the property the CI smoke test and seed hunts rely on.
    const auto a = FaultInjector::parse("launch:0.3:1234");
    const auto b = FaultInjector::parse("launch:0.3:1234");
    int failures = 0;
    for (int i = 0; i < 500; ++i) {
        const bool fa = a.shouldFail("launch");
        EXPECT_EQ(fa, b.shouldFail("launch"));
        failures += fa;
    }
    // ~30% of 500; generous bounds guard the distribution, exact
    // equality above guards determinism.
    EXPECT_GT(failures, 100);
    EXPECT_LT(failures, 220);
}

TEST(FaultInjector, MismatchedSiteDoesNotAdvanceTheSequence)
{
    const auto probed = FaultInjector::parse("launch:0.5:77");
    const auto fresh = FaultInjector::parse("launch:0.5:77");
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(probed.shouldFail("alloc"));
    // Probing a non-matching site consumed no decisions: both
    // injectors now produce the same stream.
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(probed.shouldFail("launch"),
                  fresh.shouldFail("launch"));
}

TEST(FaultInjector, CopiesShareTheCounter)
{
    // A DeviceConfig copy must continue the campaign-wide sequence,
    // not restart it.
    const auto original = FaultInjector::parse("launch:0.5:5");
    const auto reference = FaultInjector::parse("launch:0.5:5");
    std::vector<bool> expected;
    for (int i = 0; i < 20; ++i)
        expected.push_back(reference.shouldFail("launch"));

    const FaultInjector copy = original;
    std::vector<bool> interleaved;
    for (int i = 0; i < 10; ++i) {
        interleaved.push_back(original.shouldFail("launch"));
        interleaved.push_back(copy.shouldFail("launch"));
    }
    EXPECT_EQ(interleaved, expected);
}

TEST(FaultInjector, UnitValueIsInRangeAndSeedSensitive)
{
    bool differs = false;
    for (std::uint64_t n = 0; n < 100; ++n) {
        const double u = FaultInjector::unitValue(1, n);
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        differs |= u != FaultInjector::unitValue(2, n);
    }
    EXPECT_TRUE(differs);
}

} // namespace
