/**
 * @file
 * Shared assertion for recoverable-error paths: since fatal() raises
 * cactus::Error instead of aborting, the old EXPECT_EXIT death tests
 * became throw tests. expectError() checks both the exception type and
 * a what() substring, mirroring the old exit-code + message match.
 */

#ifndef CACTUS_TESTS_SUPPORT_EXPECT_ERROR_HH
#define CACTUS_TESTS_SUPPORT_EXPECT_ERROR_HH

#include <exception>
#include <string>

#include <gtest/gtest.h>

#include "common/error.hh"

namespace cactus::test {

/** Expect fn() to throw E (default cactus::Error) whose what()
 *  contains @p substr. */
template <typename E = cactus::Error, typename Fn>
void
expectError(Fn &&fn, const std::string &substr)
{
    try {
        fn();
        ADD_FAILURE() << "expected an error containing '" << substr
                      << "', but nothing was thrown";
    } catch (const E &e) {
        EXPECT_NE(std::string(e.what()).find(substr),
                  std::string::npos)
            << "error message was: " << e.what();
    } catch (const std::exception &e) {
        ADD_FAILURE() << "wrong exception type thrown: " << e.what();
    }
}

} // namespace cactus::test

#endif // CACTUS_TESTS_SUPPORT_EXPECT_ERROR_HH
