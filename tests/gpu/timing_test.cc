/**
 * @file
 * Unit tests for the interval timing model: roofline geometry, bound
 * classification, metric derivation, and stall attribution.
 */

#include <gtest/gtest.h>

#include "gpu/timing.hh"

namespace {

using cactus::gpu::DeviceConfig;
using cactus::gpu::evaluateTiming;
using cactus::gpu::OpClass;
using cactus::gpu::TimingInputs;

TimingInputs
baseInputs()
{
    TimingInputs in;
    in.numBlocks = 680;        // 10 blocks per SM.
    in.warpsPerBlock = 8;
    in.residentWarpsPerSm = 48;
    in.residentBlocksPerSm = 6;
    return in;
}

TEST(DeviceConfigRoofline, MatchesPaperGeometry)
{
    DeviceConfig cfg;
    EXPECT_NEAR(cfg.peakGips(), 516.8, 1e-9);
    EXPECT_NEAR(cfg.peakGtxnPerSec(), 23.759375, 1e-6);
    EXPECT_NEAR(cfg.elbowIntensity(), 21.75, 0.05);
}

TEST(Timing, ComputeBoundKernelApproachesPeakGips)
{
    DeviceConfig cfg;
    auto in = baseInputs();
    // Pure FP32 work, no memory traffic at all.
    in.counts.warpInsts[static_cast<int>(OpClass::FP32)] = 400'000'000;
    const auto out = evaluateTiming(cfg, in);
    EXPECT_GT(out.metrics.gips, 0.9 * cfg.peakGips());
    EXPECT_LE(out.metrics.gips, cfg.peakGips() * 1.0001);
    EXPECT_NEAR(out.metrics.spUtilization, 1.0, 0.01);
    EXPECT_NEAR(out.metrics.memStall, 0.0, 1e-9);
}

TEST(Timing, MemoryBoundKernelSaturatesDram)
{
    DeviceConfig cfg;
    auto in = baseInputs();
    // Streaming: one load warp-inst per 4 sectors, II well under elbow.
    const std::uint64_t insts = 10'000'000;
    in.counts.warpInsts[static_cast<int>(OpClass::LOAD)] = insts;
    in.l1Accesses = insts * 4;
    in.l1Misses = insts * 4;
    in.l2Accesses = insts * 4;
    in.l2Misses = insts * 4;
    in.dramReadSectors = insts * 4;
    const auto out = evaluateTiming(cfg, in);
    EXPECT_LT(out.metrics.instIntensity, cfg.elbowIntensity());
    EXPECT_GT(out.metrics.memStall, 0.3);
    // Achieved DRAM read bandwidth close to peak.
    EXPECT_GT(out.metrics.dramReadBps, 0.85 * cfg.dramBandwidthGBps * 1e9);
}

TEST(Timing, RooflineBoundIsRespected)
{
    // Performance never exceeds min(peak, II * peak_bandwidth).
    DeviceConfig cfg;
    for (std::uint64_t mem : {1ull, 10ull, 100ull, 1000ull}) {
        auto in = baseInputs();
        in.counts.warpInsts[static_cast<int>(OpClass::FP32)] = 1'000'000;
        in.counts.warpInsts[static_cast<int>(OpClass::LOAD)] =
            1'000'000 / 10;
        in.dramReadSectors = 1'000'000 / mem;
        in.l1Accesses = in.dramReadSectors;
        in.l1Misses = in.dramReadSectors;
        in.l2Accesses = in.dramReadSectors;
        in.l2Misses = in.dramReadSectors;
        const auto out = evaluateTiming(cfg, in);
        const double roof = std::min(
            cfg.peakGips(),
            out.metrics.instIntensity * cfg.peakGtxnPerSec());
        EXPECT_LE(out.metrics.gips, roof * 1.0001);
    }
}

TEST(Timing, SfuHeavyKernelIsPipeBound)
{
    DeviceConfig cfg;
    auto in = baseInputs();
    in.counts.warpInsts[static_cast<int>(OpClass::SFU)] = 10'000'000;
    in.counts.warpInsts[static_cast<int>(OpClass::FP32)] = 10'000'000;
    const auto out = evaluateTiming(cfg, in);
    EXPECT_GT(out.metrics.pipeStall, 0.5);
    // SFU throughput is 1/8 of scheduler throughput.
    EXPECT_LT(out.metrics.gips, 0.3 * cfg.peakGips());
}

TEST(Timing, SmallGridLimitsSmEfficiency)
{
    DeviceConfig cfg;
    auto in = baseInputs();
    in.numBlocks = 17; // A quarter of the SMs get one block.
    in.counts.warpInsts[static_cast<int>(OpClass::FP32)] = 1'000'000;
    const auto out = evaluateTiming(cfg, in);
    EXPECT_NEAR(out.metrics.smEfficiency, 17.0 / 68.0, 1e-9);
}

TEST(Timing, UnbalancedWaveLowersEfficiency)
{
    DeviceConfig cfg;
    auto in = baseInputs();
    in.numBlocks = 69; // One SM gets two blocks, the rest one.
    in.counts.warpInsts[static_cast<int>(OpClass::FP32)] = 1'000'000;
    const auto out = evaluateTiming(cfg, in);
    EXPECT_NEAR(out.metrics.smEfficiency, 69.0 / (2.0 * 68.0), 1e-9);
}

TEST(Timing, LatencyBoundWhenFewWarps)
{
    DeviceConfig cfg;
    // Single small block: nothing to hide the DRAM latency with.
    TimingInputs in;
    in.numBlocks = 1;
    in.warpsPerBlock = 1;
    in.residentWarpsPerSm = 1;
    in.residentBlocksPerSm = 1;
    in.counts.warpInsts[static_cast<int>(OpClass::LOAD)] = 10'000;
    in.l1Accesses = 10'000;
    in.l1Misses = 10'000;
    in.l2Accesses = 10'000;
    in.l2Misses = 10'000;
    in.dramReadSectors = 10'000;
    const auto low_occ = evaluateTiming(cfg, in);

    in.numBlocks = 680;
    in.warpsPerBlock = 8;
    in.residentWarpsPerSm = 48;
    const auto high_occ = evaluateTiming(cfg, in);
    // Same work spread across the machine finishes much faster.
    EXPECT_GT(low_occ.timing.execCycles, 5.0 * high_occ.timing.execCycles);
    EXPECT_GT(low_occ.metrics.memStall, 0.5);
}

TEST(Timing, SyncStallScalesWithBarriers)
{
    DeviceConfig cfg;
    auto in = baseInputs();
    in.counts.warpInsts[static_cast<int>(OpClass::FP32)] = 1'000'000;
    const auto no_sync = evaluateTiming(cfg, in);
    in.counts.warpInsts[static_cast<int>(OpClass::SYNC)] = 100'000;
    const auto with_sync = evaluateTiming(cfg, in);
    EXPECT_GT(with_sync.metrics.syncStall, no_sync.metrics.syncStall);
}

TEST(Timing, FractionMetricsAreExact)
{
    DeviceConfig cfg;
    auto in = baseInputs();
    in.counts.warpInsts[static_cast<int>(OpClass::FP32)] = 600;
    in.counts.warpInsts[static_cast<int>(OpClass::LOAD)] = 250;
    in.counts.warpInsts[static_cast<int>(OpClass::BRANCH)] = 150;
    const auto out = evaluateTiming(cfg, in);
    EXPECT_DOUBLE_EQ(out.metrics.fracBranch, 0.15);
    EXPECT_DOUBLE_EQ(out.metrics.fracLdst, 0.25);
}

TEST(Timing, InstructionIntensityCappedWithoutDram)
{
    DeviceConfig cfg;
    auto in = baseInputs();
    in.counts.warpInsts[static_cast<int>(OpClass::FP32)] = 1'000'000;
    const auto out = evaluateTiming(cfg, in);
    EXPECT_EQ(out.metrics.instIntensity, 1e6);
}

TEST(Timing, LaunchOverheadDominatesTinyKernels)
{
    DeviceConfig cfg;
    TimingInputs in;
    in.numBlocks = 1;
    in.warpsPerBlock = 1;
    in.residentWarpsPerSm = 16;
    in.counts.warpInsts[static_cast<int>(OpClass::FP32)] = 10;
    const auto out = evaluateTiming(cfg, in);
    EXPECT_GT(out.timing.totalCycles, cfg.launchOverheadCycles);
    EXPECT_LT(out.metrics.gips, 0.1);
}

/** Property: runtime is monotone in DRAM traffic. */
class TimingDramSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TimingDramSweep, MonotoneInTraffic)
{
    DeviceConfig cfg;
    auto in = baseInputs();
    in.counts.warpInsts[static_cast<int>(OpClass::LOAD)] = 1'000'000;
    in.dramReadSectors = GetParam();
    in.l1Accesses = in.dramReadSectors;
    in.l1Misses = in.dramReadSectors;
    in.l2Accesses = in.dramReadSectors;
    in.l2Misses = in.dramReadSectors;
    const auto lo = evaluateTiming(cfg, in);
    in.dramReadSectors *= 2;
    in.l1Misses = in.dramReadSectors;
    in.l2Misses = in.dramReadSectors;
    in.l2Accesses = in.dramReadSectors;
    in.l1Accesses = in.dramReadSectors;
    const auto hi = evaluateTiming(cfg, in);
    EXPECT_GE(hi.timing.totalCycles, lo.timing.totalCycles);
}

INSTANTIATE_TEST_SUITE_P(Traffic, TimingDramSweep,
                         ::testing::Values(1000, 100'000, 10'000'000));

} // namespace
