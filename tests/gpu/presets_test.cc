/**
 * @file
 * Tests for the GPU platform presets and cross-platform timing-model
 * properties: published peak rates, elbow ordering, occupancy limits,
 * and the monotone scaling of kernel runtime with machine resources.
 */

#include <vector>

#include <gtest/gtest.h>

#include "gpu/device.hh"

namespace {

using namespace cactus::gpu;

TEST(Presets, Rtx2080TiPeaks)
{
    const auto cfg = DeviceConfig::rtx2080Ti();
    // 68 SMs x 4 schedulers x 1.545 GHz.
    EXPECT_NEAR(cfg.peakGips(), 420.24, 0.01);
    EXPECT_NEAR(cfg.peakGtxnPerSec(), 19.25, 0.01);
    // Similar elbow to the 3080: both balance compute and GDDR6(X).
    EXPECT_NEAR(cfg.elbowIntensity(), 21.83, 0.05);
}

TEST(Presets, A100Peaks)
{
    const auto cfg = DeviceConfig::a100();
    // 108 SMs x 4 schedulers x 1.41 GHz.
    EXPECT_NEAR(cfg.peakGips(), 609.12, 0.01);
    EXPECT_NEAR(cfg.peakGtxnPerSec(), 48.59, 0.01);
    // HBM2 moves the elbow left: more kernels become compute-bound.
    EXPECT_LT(cfg.elbowIntensity(),
              DeviceConfig{}.elbowIntensity() * 0.7);
}

TEST(Presets, ScaledCachesPreserveEverythingElse)
{
    const auto full = DeviceConfig::a100();
    const auto scaled = full.withScaledCaches(16);
    EXPECT_EQ(scaled.l2SizeBytes, full.l2SizeBytes / 16);
    EXPECT_EQ(scaled.numSms, full.numSms);
    EXPECT_DOUBLE_EQ(scaled.peakGips(), full.peakGips());
    // Extreme factors floor at a sane minimum instead of zero.
    const auto floored = full.withScaledCaches(1 << 20);
    EXPECT_GT(floored.l1SizeBytes, 0);
    EXPECT_GT(floored.l2SizeBytes, 0);
}

TEST(Presets, OccupancyRespectsTuringLimits)
{
    const auto cfg = DeviceConfig::rtx2080Ti();
    const auto occ = computeOccupancy(cfg, KernelDesc("k", 32, 0),
                                      Dim3(256));
    // Turing: 1024 threads / 32 warps per SM.
    EXPECT_LE(occ.warpsPerSm, 32);
    EXPECT_EQ(occ.blocksPerSm, 4);
}

TEST(Presets, OccupancyUsesA100Headroom)
{
    const auto cfg = DeviceConfig::a100();
    const auto occ = computeOccupancy(cfg, KernelDesc("k", 32, 0),
                                      Dim3(256));
    // A100: 2048 threads / 64 warps per SM, register-limited here.
    EXPECT_EQ(occ.warpsPerSm, 64);
}

/** The same kernel run on each platform. */
LaunchStats
runStream(const DeviceConfig &cfg)
{
    Device dev(cfg);
    const std::size_t n = 1 << 20;
    std::vector<float> a(n, 1.f), b(n, 0.f);
    dev.launchLinear(KernelDesc("stream"), n, 256,
                     [&](ThreadCtx &ctx) {
                         const auto i = ctx.globalId();
                         ctx.st(&b[i], ctx.ld(&a[i]) + 1.f);
                     });
    return dev.launches().back();
}

TEST(Presets, BandwidthOrdersStreamingKernelRuntime)
{
    const auto t2080 = runStream(DeviceConfig::rtx2080Ti());
    const auto t3080 = runStream(DeviceConfig{});
    const auto ta100 = runStream(DeviceConfig::a100());
    // A pure stream is bandwidth-bound: 616 < 760 < 1555 GB/s.
    EXPECT_GT(t2080.timing.seconds, t3080.timing.seconds);
    EXPECT_GT(t3080.timing.seconds, ta100.timing.seconds);
}

LaunchStats
runCompute(const DeviceConfig &cfg)
{
    Device dev(cfg);
    const std::size_t n = 1 << 18;
    std::vector<float> out(n, 0.f);
    dev.launchLinear(KernelDesc("fma_loop"), n, 256,
                     [&](ThreadCtx &ctx) {
                         const auto i = ctx.globalId();
                         float x = static_cast<float>(i % 13);
                         for (int k = 0; k < 64; ++k)
                             x = x * 1.0001f + 0.5f;
                         ctx.fp32(64);
                         ctx.st(&out[i], x);
                     });
    return dev.launches().back();
}

TEST(Presets, Fp32RateOrdersComputeKernelRuntime)
{
    // FP32 pipe throughput: 3080 (128 lanes/SM at 1.9 GHz) beats both
    // the 2080 Ti and the A100 (64 lanes/SM each).
    const auto t2080 = runCompute(DeviceConfig::rtx2080Ti());
    const auto t3080 = runCompute(DeviceConfig{});
    const auto ta100 = runCompute(DeviceConfig::a100());
    EXPECT_LT(t3080.timing.seconds, t2080.timing.seconds);
    EXPECT_LT(t3080.timing.seconds, ta100.timing.seconds);
}

} // namespace
