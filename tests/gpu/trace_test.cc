/**
 * @file
 * Tests for launch-trace export/import: round-trip fidelity, kernel
 * name escaping, and trace-based profile aggregation (the workflow of
 * simulating a trace without re-running the workload).
 */

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "gpu/device.hh"
#include "gpu/profiler.hh"
#include "gpu/trace.hh"

namespace {

using namespace cactus::gpu;

std::vector<LaunchStats>
sampleLaunches()
{
    Device dev;
    std::vector<float> a(1 << 16, 1.f), b(1 << 16, 0.f);
    dev.launchLinear(KernelDesc("copy_kernel", 24), a.size(), 256,
                     [&](ThreadCtx &ctx) {
                         const auto i = ctx.globalId();
                         ctx.st(&b[i], ctx.ld(&a[i]));
                     });
    dev.launch(KernelDesc("compute \"quoted\"", 48, 4096), Dim3(17, 3),
               Dim3(32, 4), [&](ThreadCtx &ctx) {
                   ctx.fp32(10);
                   ctx.sfu(2);
                   ctx.sync(1);
               });
    return dev.launches();
}

TEST(Trace, RoundTripPreservesEveryField)
{
    const auto launches = sampleLaunches();
    std::stringstream ss;
    EXPECT_EQ(writeLaunchTrace(ss, launches), launches.size());
    const auto loaded = readLaunchTrace(ss);
    ASSERT_EQ(loaded.size(), launches.size());
    for (std::size_t i = 0; i < launches.size(); ++i) {
        const auto &orig = launches[i];
        const auto &got = loaded[i];
        EXPECT_EQ(got.desc.name, orig.desc.name);
        EXPECT_EQ(got.desc.regsPerThread, orig.desc.regsPerThread);
        EXPECT_EQ(got.grid.x, orig.grid.x);
        EXPECT_EQ(got.grid.y, orig.grid.y);
        EXPECT_EQ(got.block.x, orig.block.x);
        EXPECT_EQ(got.block.y, orig.block.y);
        for (int c = 0; c < kNumOpClasses; ++c)
            EXPECT_EQ(got.counts.warpInsts[c],
                      orig.counts.warpInsts[c]);
        EXPECT_EQ(got.totalWarps, orig.totalWarps);
        EXPECT_EQ(got.l1Accesses, orig.l1Accesses);
        EXPECT_EQ(got.dramReadSectors, orig.dramReadSectors);
        EXPECT_EQ(got.dramWriteSectors, orig.dramWriteSectors);
        EXPECT_NEAR(got.timing.seconds, orig.timing.seconds,
                    orig.timing.seconds * 1e-6);
        EXPECT_NEAR(got.metrics.gips, orig.metrics.gips,
                    orig.metrics.gips * 1e-4 + 1e-9);
    }
}

TEST(Trace, QuotedKernelNamesSurvive)
{
    const auto launches = sampleLaunches();
    std::stringstream ss;
    writeLaunchTrace(ss, launches);
    const auto loaded = readLaunchTrace(ss);
    EXPECT_EQ(loaded[1].desc.name, "compute \"quoted\"");
}

TEST(Trace, AggregationWorksOnLoadedTraces)
{
    // The trace-replay workflow: profile aggregation over a loaded
    // trace must match aggregation over the original run.
    const auto launches = sampleLaunches();
    std::stringstream ss;
    writeLaunchTrace(ss, launches);
    const auto loaded = readLaunchTrace(ss);

    const DeviceConfig cfg;
    const auto orig_profiles = aggregateLaunches(launches, cfg);
    const auto trace_profiles = aggregateLaunches(loaded, cfg);
    ASSERT_EQ(orig_profiles.size(), trace_profiles.size());
    for (std::size_t i = 0; i < orig_profiles.size(); ++i) {
        EXPECT_EQ(trace_profiles[i].name, orig_profiles[i].name);
        EXPECT_EQ(trace_profiles[i].warpInsts,
                  orig_profiles[i].warpInsts);
        EXPECT_NEAR(trace_profiles[i].seconds,
                    orig_profiles[i].seconds,
                    orig_profiles[i].seconds * 1e-6);
    }
}

TEST(Trace, FileRoundTrip)
{
    const auto launches = sampleLaunches();
    const std::string path = "/tmp/cactus_trace_test.jsonl";
    writeLaunchTrace(path, launches);
    const auto loaded = readLaunchTrace(path);
    EXPECT_EQ(loaded.size(), launches.size());
}

TEST(Trace, EmptyTraceIsEmpty)
{
    std::stringstream ss;
    EXPECT_TRUE(readLaunchTrace(ss).empty());
    EXPECT_EQ(writeLaunchTrace(ss, {}), 0u);
}

TEST(Trace, MalformedLineRaisesTraceErrorWithLineNumber)
{
    const auto launches = sampleLaunches();
    std::stringstream good;
    writeLaunchTrace(good, launches);

    std::stringstream corrupt;
    std::string line;
    std::getline(good, line);
    corrupt << line << "\n" << "this is not a trace record\n";
    try {
        readLaunchTrace(corrupt);
        FAIL() << "no throw";
    } catch (const cactus::TraceError &e) {
        EXPECT_EQ(e.line(), 2);
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Trace, TruncatedRecordRaisesTraceError)
{
    // A record cut off mid-write (e.g. a killed process) loses keys
    // after the cut; the strict reader must say which line.
    const auto launches = sampleLaunches();
    std::stringstream good;
    writeLaunchTrace(good, launches);
    std::string first, second;
    std::getline(good, first);
    std::getline(good, second);

    std::stringstream torn;
    torn << first << "\n"
         << second.substr(0, second.size() / 2) << "\n";
    try {
        readLaunchTrace(torn);
        FAIL() << "no throw";
    } catch (const cactus::TraceError &e) {
        EXPECT_EQ(e.line(), 2);
    }
}

TEST(Trace, LenientReadSkipsBadRecordsAndCountsThem)
{
    const auto launches = sampleLaunches();
    std::stringstream good;
    writeLaunchTrace(good, launches);
    std::string first, second;
    std::getline(good, first);
    std::getline(good, second);

    std::stringstream mixed;
    mixed << first << "\n"
          << "garbage line\n"
          << second << "\n";
    std::size_t skipped = 0;
    const auto loaded =
        readLaunchTrace(mixed, /*lenient=*/true, &skipped);
    EXPECT_EQ(loaded.size(), 2u);
    EXPECT_EQ(skipped, 1u);
    EXPECT_EQ(loaded[0].desc.name, launches[0].desc.name);
    EXPECT_EQ(loaded[1].desc.name, launches[1].desc.name);
}

TEST(Trace, InjectedWriteFaultShortensTheRecordCount)
{
    const auto launches = sampleLaunches();
    std::stringstream ss;
    const auto written = writeLaunchTrace(
        ss, launches, cactus::FaultInjector::parse("trace-write:1:1"));
    EXPECT_EQ(written, 0u);

    std::stringstream ok;
    const auto all = writeLaunchTrace(
        ok, launches, cactus::FaultInjector::parse("trace-write:0:1"));
    EXPECT_EQ(all, launches.size());
}

TEST(Retime, SameConfigReproducesTiming)
{
    const auto launches = sampleLaunches();
    const DeviceConfig cfg; // Same config the launches ran under.
    for (const auto &orig : launches) {
        const auto redone = retimeLaunch(cfg, orig);
        EXPECT_NEAR(redone.timing.seconds, orig.timing.seconds,
                    orig.timing.seconds * 1e-9);
        EXPECT_NEAR(redone.metrics.gips, orig.metrics.gips,
                    orig.metrics.gips * 1e-9 + 1e-12);
    }
}

TEST(Retime, StreamingTraceProjectsFasterOnA100)
{
    // Capture a bandwidth-bound kernel once, then project: the A100's
    // doubled DRAM bandwidth must shorten it, the 2080 Ti's narrower
    // bus must lengthen it.
    Device dev;
    std::vector<float> a(1 << 21, 1.f), b(1 << 21, 0.f);
    dev.launchLinear(KernelDesc("stream", 24), a.size(), 256,
                     [&](ThreadCtx &ctx) {
                         const auto i = ctx.globalId();
                         ctx.st(&b[i], ctx.ld(&a[i]));
                     });
    const auto &orig = dev.launches().back();
    const auto on_a100 =
        retimeLaunch(DeviceConfig::a100(), orig);
    const auto on_2080 =
        retimeLaunch(DeviceConfig::rtx2080Ti(), orig);
    EXPECT_LT(on_a100.timing.seconds, orig.timing.seconds);
    EXPECT_GT(on_2080.timing.seconds, orig.timing.seconds);
}

TEST(Retime, RoundTripsThroughSerializedTraces)
{
    // The full offline workflow: write, load, retime the whole trace.
    const auto launches = sampleLaunches();
    std::stringstream ss;
    writeLaunchTrace(ss, launches);
    auto loaded = readLaunchTrace(ss);
    const double projected =
        retimeTrace(DeviceConfig::a100(), loaded);
    EXPECT_GT(projected, 0.0);
    for (const auto &l : loaded)
        EXPECT_GT(l.timing.seconds, 0.0);
}

} // namespace
