/**
 * @file
 * Fast-forward tests: PeriodicityDetector window detection in the
 * digest domain, and device-level bit-identity of synthesized
 * steady-state launches against a fully replaying device — including
 * divergence out of an established window.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "gpu/device.hh"
#include "gpu/fastforward.hh"

namespace {

using namespace cactus::gpu;

// --- PeriodicityDetector ----------------------------------------------

TEST(PeriodicityDetector, FindsWindowOfOne)
{
    PeriodicityDetector det(8);
    EXPECT_EQ(det.recordFull(0xA, 0x1), 0); // No prior window yet.
    EXPECT_EQ(det.recordFull(0xA, 0x1), 1); // Tag is a fixed point.
    EXPECT_TRUE(det.steady());
    EXPECT_EQ(det.window(), 1);
    EXPECT_EQ(det.phase(), 0);
}

TEST(PeriodicityDetector, FindsWindowOfThree)
{
    PeriodicityDetector det(8);
    // Digests A B C A B C; the tag after the sixth launch matches the
    // tag after the third, so one window maps that state to itself.
    EXPECT_EQ(det.recordFull(0xA, 0x10), 0);
    EXPECT_EQ(det.recordFull(0xB, 0x11), 0);
    EXPECT_EQ(det.recordFull(0xC, 0x12), 0);
    EXPECT_EQ(det.recordFull(0xA, 0x13), 0);
    EXPECT_EQ(det.recordFull(0xB, 0x14), 0);
    EXPECT_EQ(det.recordFull(0xC, 0x12), 3);
    EXPECT_EQ(det.window(), 3);
}

TEST(PeriodicityDetector, RepeatingDigestsAloneAreNotEnough)
{
    PeriodicityDetector det(8);
    // Identical launches whose boundary state keeps evolving (e.g. a
    // cache still warming up) must not establish a window.
    for (std::uint64_t i = 0; i < 16; ++i)
        EXPECT_EQ(det.recordFull(0xA, /*tag=*/0x100 + i), 0);
    EXPECT_FALSE(det.steady());
}

TEST(PeriodicityDetector, BrokenDigestSequenceIsNotAWindow)
{
    PeriodicityDetector det(8);
    // A B C A X C with a repeating tag: digests must match pairwise
    // across the two candidate windows, and X != B breaks that.
    det.recordFull(0xA, 0x12);
    det.recordFull(0xB, 0x12);
    det.recordFull(0xC, 0x12);
    det.recordFull(0xA, 0x12);
    det.recordFull(0xE, 0x99);
    EXPECT_EQ(det.recordFull(0xC, 0x12), 0);
    // (The same-tag prefix above establishes w=1 windows only when
    // consecutive digests repeat, which they never do here.)
    EXPECT_FALSE(det.steady());
}

TEST(PeriodicityDetector, PrefersTheShortestWindow)
{
    PeriodicityDetector det(8);
    det.recordFull(0xA, 0x1);
    det.recordFull(0xA, 0x1);
    // A period-1 sequence is also period-2; the detector must report
    // the fundamental period.
    EXPECT_EQ(det.window(), 1);
    det.recordFull(0xA, 0x1);
    EXPECT_EQ(det.window(), 1);
}

TEST(PeriodicityDetector, AdvanceWrapsThePhase)
{
    PeriodicityDetector det(8);
    det.recordFull(0xA, 0x10);
    det.recordFull(0xB, 0x11);
    det.recordFull(0xA, 0x10);
    ASSERT_EQ(det.recordFull(0xB, 0x11), 2);
    EXPECT_EQ(det.phase(), 0);
    det.advance();
    EXPECT_EQ(det.phase(), 1);
    det.advance();
    EXPECT_EQ(det.phase(), 0);
}

TEST(PeriodicityDetector, ResetDropsSteadyStateAndHistory)
{
    PeriodicityDetector det(8);
    det.recordFull(0xA, 0x1);
    ASSERT_EQ(det.recordFull(0xA, 0x1), 1);
    det.reset();
    EXPECT_FALSE(det.steady());
    EXPECT_EQ(det.window(), 0);
    // History is gone too: one more record is not enough to re-arm.
    EXPECT_EQ(det.recordFull(0xA, 0x1), 0);
    EXPECT_EQ(det.recordFull(0xA, 0x1), 1);
}

TEST(PeriodicityDetector, WindowLongerThanMaxIsNeverFound)
{
    PeriodicityDetector det(2);
    // Period-3 pattern, maxWindow 2: must never trigger.
    const std::uint64_t digests[] = {0xA, 0xB, 0xC};
    for (int i = 0; i < 30; ++i)
        EXPECT_EQ(det.recordFull(digests[i % 3], 0x40 + i % 3), 0);
    EXPECT_FALSE(det.steady());
}

// --- Device-level bit-identity ----------------------------------------

void
expectLaunchesEqual(const std::vector<LaunchStats> &plain,
                    const std::vector<LaunchStats> &ff)
{
    ASSERT_EQ(plain.size(), ff.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        SCOPED_TRACE("launch " + std::to_string(i) + ": " +
                     plain[i].desc.name);
        const auto &s = plain[i];
        const auto &f = ff[i];
        EXPECT_EQ(s.desc.name, f.desc.name);
        EXPECT_EQ(s.counts.warpInsts, f.counts.warpInsts);
        EXPECT_EQ(s.counts.threadInsts, f.counts.threadInsts);
        EXPECT_EQ(s.totalWarps, f.totalWarps);
        EXPECT_EQ(s.sampledWarps, f.sampledWarps);
        EXPECT_EQ(s.l1Accesses, f.l1Accesses);
        EXPECT_EQ(s.l1Misses, f.l1Misses);
        EXPECT_EQ(s.l2Accesses, f.l2Accesses);
        EXPECT_EQ(s.l2Misses, f.l2Misses);
        EXPECT_EQ(s.l2SliceMaxAccesses, f.l2SliceMaxAccesses);
        EXPECT_EQ(s.dramReadSectors, f.dramReadSectors);
        EXPECT_EQ(s.dramWriteSectors, f.dramWriteSectors);
        EXPECT_EQ(s.sampleCoverage, f.sampleCoverage);
        EXPECT_EQ(s.timing.seconds, f.timing.seconds);
        EXPECT_EQ(s.metrics.gips, f.metrics.gips);
        EXPECT_EQ(s.metrics.l1HitRate, f.metrics.l1HitRate);
        EXPECT_EQ(s.metrics.l2HitRate, f.metrics.l2HitRate);
    }
}

/** Pseudo-random but fixed gather: enough L1/L2 misses per launch for
 *  the hierarchy state to matter, yet identical launch over launch. */
void
gatherLaunch(Device &dev, const std::vector<float> &src,
             std::vector<float> &dst)
{
    dev.launchLinear(KernelDesc("gather"), dst.size(), 128,
                     [&](ThreadCtx &ctx) {
                         const auto i = ctx.globalId();
                         const std::size_t j =
                             (i * 2654435761u) % src.size();
                         ctx.st(&dst[i], ctx.ld(&src[j]));
                     });
}

/** A second kernel with a different trace, to force divergence. */
void
strideLaunch(Device &dev, const std::vector<float> &src,
             std::vector<float> &dst)
{
    dev.launchLinear(KernelDesc("stride"), dst.size(), 128,
                     [&](ThreadCtx &ctx) {
                         const auto i = ctx.globalId();
                         ctx.st(&dst[i],
                                ctx.ld(&src[(i * 7) % src.size()]));
                     });
}

DeviceConfig
ffConfig(bool fast_forward)
{
    DeviceConfig cfg = DeviceConfig::scaledExperiment();
    cfg.fastForward = fast_forward;
    return cfg;
}

TEST(FastForwardDevice, SteadyStateStatsAreBitIdentical)
{
    std::vector<float> src(1 << 15, 1.f);
    std::vector<float> dst(1 << 11, 0.f);

    Device plain(ffConfig(false));
    Device ff(ffConfig(true));
    for (int it = 0; it < 12; ++it) {
        gatherLaunch(plain, src, dst);
        gatherLaunch(ff, src, dst);
    }

    expectLaunchesEqual(plain.launches(), ff.launches());
    const auto sum = ff.fastForwardSummary();
    EXPECT_GE(sum.window, 1);
    EXPECT_GT(sum.skippedLaunches, 0u);
    EXPECT_EQ(sum.replayedLaunches + sum.skippedLaunches, 12u);
    EXPECT_EQ(sum.divergences, 0u);

    // The plain device never skips anything.
    const auto plain_sum = plain.fastForwardSummary();
    EXPECT_EQ(plain_sum.skippedLaunches, 0u);
    EXPECT_EQ(plain_sum.window, 0);
}

TEST(FastForwardDevice, DivergenceOutOfTheWindowStaysBitIdentical)
{
    std::vector<float> src(1 << 15, 1.f);
    std::vector<float> dst(1 << 11, 0.f);

    Device plain(ffConfig(false));
    Device ff(ffConfig(true));
    // Settle into steady state, break out of it with a different
    // kernel (forcing catch-up replay of the skipped phases), then
    // settle again: stats must match full replay throughout.
    const auto run = [&](Device &dev) {
        for (int it = 0; it < 8; ++it)
            gatherLaunch(dev, src, dst);
        strideLaunch(dev, src, dst);
        for (int it = 0; it < 8; ++it)
            gatherLaunch(dev, src, dst);
    };
    run(plain);
    run(ff);

    expectLaunchesEqual(plain.launches(), ff.launches());
    const auto sum = ff.fastForwardSummary();
    EXPECT_GE(sum.divergences, 1u);
    EXPECT_GT(sum.skippedLaunches, 0u);
}

TEST(FastForwardDevice, CacheFlushResetsTheDetector)
{
    std::vector<float> src(1 << 15, 1.f);
    std::vector<float> dst(1 << 11, 0.f);

    Device ff(ffConfig(true));
    for (int it = 0; it < 8; ++it)
        gatherLaunch(ff, src, dst);
    ASSERT_GE(ff.fastForwardSummary().window, 1);

    // A flush invalidates the recorded boundary states: the detector
    // must restart from scratch rather than synthesize against a
    // stale window.
    ff.flushCaches();
    EXPECT_EQ(ff.fastForwardSummary().window, 0);

    // And it must be able to re-establish afterwards.
    Device plain(ffConfig(false));
    for (int it = 0; it < 8; ++it)
        gatherLaunch(plain, src, dst);
    plain.flushCaches();
    for (int it = 0; it < 8; ++it) {
        gatherLaunch(plain, src, dst);
        gatherLaunch(ff, src, dst);
    }
    expectLaunchesEqual(
        std::vector<LaunchStats>(plain.launches().begin() + 8,
                                 plain.launches().end()),
        std::vector<LaunchStats>(ff.launches().begin() + 8,
                                 ff.launches().end()));
    EXPECT_GE(ff.fastForwardSummary().window, 1);
}

} // namespace
