/**
 * @file
 * Exception-safety tests for the host worker pool: a throwing task
 * must surface on the calling thread (never std::terminate), the
 * remaining tasks must drain, and the pool must stay fully usable —
 * including after the *caller's* own task slice throws, which once
 * left a dangling job pointer and a dead generation that deadlocked
 * the next run.
 */

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "gpu/host_pool.hh"

namespace {

using cactus::gpu::WorkerPool;

TEST(WorkerPool, RunsEveryTaskExactlyOnce)
{
    WorkerPool pool(4);
    const std::uint64_t n = 10'000;
    std::atomic<std::uint64_t> sum{0};
    pool.run(n, [&](std::uint64_t t, int) {
        sum.fetch_add(t, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(WorkerPool, HelperExceptionRethrowsOnCaller)
{
    WorkerPool pool(4);
    std::atomic<std::uint64_t> executed{0};
    EXPECT_THROW(
        pool.run(1000,
                 [&](std::uint64_t t, int) {
                     executed.fetch_add(1,
                                        std::memory_order_relaxed);
                     if (t == 17)
                         throw std::runtime_error("task 17 failed");
                 }),
        std::runtime_error);
    // Unclaimed tasks were drained, not executed.
    EXPECT_LE(executed.load(), 1000u);
}

TEST(WorkerPool, ExceptionTypeSurvivesTheRethrow)
{
    WorkerPool pool(2);
    try {
        pool.run(100, [&](std::uint64_t t, int) {
            if (t == 3)
                throw cactus::BenchmarkError("typed failure");
        });
        FAIL() << "no exception";
    } catch (const cactus::BenchmarkError &e) {
        EXPECT_EQ(std::string(e.what()), "typed failure");
    }
}

TEST(WorkerPool, PoolIsReusableAfterAThrow)
{
    WorkerPool pool(4);
    for (int round = 0; round < 3; ++round) {
        EXPECT_THROW(pool.run(500,
                              [&](std::uint64_t, int) {
                                  throw std::runtime_error("always");
                              }),
                     std::runtime_error);
        // Regression: a throw on the calling thread's slice once left
        // job_ dangling and active_ unretired, deadlocking this run.
        std::atomic<std::uint64_t> count{0};
        pool.run(500, [&](std::uint64_t, int) {
            count.fetch_add(1, std::memory_order_relaxed);
        });
        EXPECT_EQ(count.load(), 500u);
    }
}

TEST(WorkerPool, InlinePoolPropagatesDirectly)
{
    // A single-worker pool runs inline; exceptions propagate without
    // touching pool state.
    WorkerPool pool(1);
    EXPECT_THROW(pool.run(10,
                          [&](std::uint64_t t, int) {
                              if (t == 5)
                                  throw std::runtime_error("inline");
                          }),
                 std::runtime_error);
    std::atomic<std::uint64_t> count{0};
    pool.run(10, [&](std::uint64_t, int) { ++count; });
    EXPECT_EQ(count.load(), 10u);
}

TEST(WorkerPool, FirstExceptionWinsWhenAllTasksThrow)
{
    // Many concurrent throwers: exactly one exception must surface and
    // the rest are discarded silently (no terminate, no leak).
    WorkerPool pool(4);
    int caught = 0;
    try {
        pool.run(64, [&](std::uint64_t t, int) {
            throw std::runtime_error("task " + std::to_string(t));
        });
    } catch (const std::runtime_error &) {
        ++caught;
    }
    EXPECT_EQ(caught, 1);
}

} // namespace
