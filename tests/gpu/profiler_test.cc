/**
 * @file
 * Tests for profile aggregation: per-kernel grouping, dominance ordering,
 * and metric recomputation from summed raw quantities.
 */

#include <vector>

#include <gtest/gtest.h>

#include "gpu/device.hh"
#include "gpu/profiler.hh"

namespace {

using namespace cactus::gpu;

class ProfilerFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        a_.assign(kN, 1.f);
        b_.assign(kN, 0.f);
        // "heavy" runs once over all elements; "light" runs 5 times over
        // a small slice. Dominance must rank by total time (r_i x t_i).
        dev_.launchLinear(KernelDesc("heavy"), kN, 256,
                          [&](ThreadCtx &ctx) {
            const auto i = ctx.globalId();
            ctx.st(&b_[i], ctx.ld(&a_[i]) * 2.f);
        });
        for (int r = 0; r < 5; ++r) {
            dev_.launchLinear(KernelDesc("light"), 4096, 256,
                              [&](ThreadCtx &ctx) {
                const auto i = ctx.globalId();
                ctx.st(&b_[i], ctx.ld(&a_[i]) + 1.f);
            });
        }
        profiles_ = aggregateLaunches(dev_.launches(), dev_.config());
    }

    static constexpr std::size_t kN = 1 << 20;
    Device dev_;
    std::vector<float> a_, b_;
    std::vector<KernelProfile> profiles_;
};

TEST_F(ProfilerFixture, GroupsByKernelName)
{
    ASSERT_EQ(profiles_.size(), 2u);
    EXPECT_EQ(profiles_[0].name, "heavy");
    EXPECT_EQ(profiles_[1].name, "light");
}

TEST_F(ProfilerFixture, InvocationCountsAreExact)
{
    EXPECT_EQ(profiles_[0].invocations, 1u);
    EXPECT_EQ(profiles_[1].invocations, 5u);
}

TEST_F(ProfilerFixture, SortedByTotalGpuTime)
{
    EXPECT_GT(profiles_[0].seconds, profiles_[1].seconds);
}

TEST_F(ProfilerFixture, WarpInstsSumAcrossInvocations)
{
    std::uint64_t total = 0;
    for (const auto &launch : dev_.launches())
        total += launch.counts.total();
    std::uint64_t aggregated = 0;
    for (const auto &kp : profiles_)
        aggregated += kp.warpInsts;
    EXPECT_EQ(total, aggregated);
}

TEST_F(ProfilerFixture, GipsRecomputedFromTotals)
{
    for (const auto &kp : profiles_) {
        const double expect =
            static_cast<double>(kp.warpInsts) / kp.seconds / 1e9;
        EXPECT_NEAR(kp.metrics.gips, expect, expect * 1e-9);
    }
}

TEST_F(ProfilerFixture, IntensityRecomputedFromTotals)
{
    for (const auto &kp : profiles_) {
        const std::uint64_t txn =
            kp.dramReadSectors + kp.dramWriteSectors;
        ASSERT_GT(txn, 0u);
        EXPECT_NEAR(kp.metrics.instIntensity,
                    static_cast<double>(kp.warpInsts) / txn, 1e-9);
    }
}

TEST(Profiler, EmptyHistoryYieldsNoProfiles)
{
    DeviceConfig cfg;
    EXPECT_TRUE(aggregateLaunches({}, cfg).empty());
}

TEST(Profiler, MetricColumnNamesAreStable)
{
    EXPECT_STREQ(KernelMetrics::columnName(0), "warp_occupancy");
    EXPECT_STREQ(KernelMetrics::columnName(13), "gips");
    EXPECT_STREQ(KernelMetrics::columnName(14), "inst_intensity");
    KernelMetrics m;
    EXPECT_EQ(m.toVector().size(),
              static_cast<std::size_t>(KernelMetrics::kNumColumns));
}

} // namespace
