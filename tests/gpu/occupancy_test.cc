/**
 * @file
 * Unit tests for the occupancy calculator against the RTX 3080 limits.
 */

#include <gtest/gtest.h>

#include "gpu/occupancy.hh"

#include "../support/expect_error.hh"

namespace {

using cactus::gpu::computeOccupancy;
using cactus::gpu::DeviceConfig;
using cactus::gpu::Dim3;
using cactus::gpu::KernelDesc;
using cactus::gpu::Occupancy;

TEST(Occupancy, FullOccupancyWithLightKernel)
{
    DeviceConfig cfg;
    KernelDesc desc("k", /*regs=*/32, /*smem=*/0);
    const auto occ = computeOccupancy(cfg, desc, Dim3(256));
    // 1536 threads / 256 = 6 blocks, 48 warps; regs: 65536/(32*256)=8.
    EXPECT_EQ(occ.blocksPerSm, 6);
    EXPECT_EQ(occ.warpsPerSm, 48);
    EXPECT_DOUBLE_EQ(occ.occupancy, 1.0);
}

TEST(Occupancy, RegisterLimited)
{
    DeviceConfig cfg;
    KernelDesc desc("k", /*regs=*/128, /*smem=*/0);
    const auto occ = computeOccupancy(cfg, desc, Dim3(256));
    // 65536 / (128*256) = 2 blocks -> 16 warps of 48.
    EXPECT_EQ(occ.blocksPerSm, 2);
    EXPECT_EQ(occ.warpsPerSm, 16);
    EXPECT_EQ(occ.limiter, Occupancy::Limiter::Registers);
    EXPECT_NEAR(occ.occupancy, 16.0 / 48.0, 1e-12);
}

TEST(Occupancy, SharedMemoryLimited)
{
    DeviceConfig cfg;
    KernelDesc desc("k", /*regs=*/32, /*smem=*/48 * 1024);
    const auto occ = computeOccupancy(cfg, desc, Dim3(128));
    // 100 KiB / 48 KiB = 2 blocks.
    EXPECT_EQ(occ.blocksPerSm, 2);
    EXPECT_EQ(occ.limiter, Occupancy::Limiter::SharedMem);
}

TEST(Occupancy, BlockLimitForTinyBlocks)
{
    DeviceConfig cfg;
    KernelDesc desc("k", /*regs=*/16, /*smem=*/0);
    const auto occ = computeOccupancy(cfg, desc, Dim3(32));
    // Tiny blocks: capped at 16 blocks/SM -> 16 warps.
    EXPECT_EQ(occ.blocksPerSm, 16);
    EXPECT_EQ(occ.warpsPerSm, 16);
}

TEST(Occupancy, PartialWarpRoundsUp)
{
    DeviceConfig cfg;
    KernelDesc desc("k", 32, 0);
    const auto occ = computeOccupancy(cfg, desc, Dim3(48));
    // 48 threads = 2 warps per block.
    EXPECT_EQ(occ.warpsPerSm, occ.blocksPerSm * 2);
}

TEST(Occupancy, MultiDimensionalBlock)
{
    DeviceConfig cfg;
    KernelDesc desc("k", 32, 0);
    const auto occ = computeOccupancy(cfg, desc, Dim3(16, 16));
    EXPECT_EQ(occ.blocksPerSm, 6);
    EXPECT_EQ(occ.warpsPerSm, 48);
}

TEST(OccupancyDeath, OversizedBlockIsFatal)
{
    DeviceConfig cfg;
    KernelDesc desc("k", 32, 0);
    cactus::test::expectError(
        [&] { computeOccupancy(cfg, desc, Dim3(2048)); },
        "thread limit");
}

/** Property: occupancy is monotonically non-increasing in register use. */
class OccupancyRegisterSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(OccupancyRegisterSweep, MonotoneInRegisters)
{
    DeviceConfig cfg;
    const int regs = GetParam();
    const auto lighter = computeOccupancy(
        cfg, KernelDesc("a", regs, 0), Dim3(256));
    const auto heavier = computeOccupancy(
        cfg, KernelDesc("b", regs * 2, 0), Dim3(256));
    EXPECT_GE(lighter.warpsPerSm, heavier.warpsPerSm);
}

INSTANTIATE_TEST_SUITE_P(Registers, OccupancyRegisterSweep,
                         ::testing::Values(16, 24, 32, 48, 64, 96));

} // namespace
