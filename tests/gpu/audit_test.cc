/**
 * @file
 * Tests for the stats-conservation auditor: every genuine launch
 * passes the recorded-stats audit, every hand-corrupted field is
 * caught with the violated invariant named, and the stats-corrupt
 * fault site proves the end-to-end detection path inside
 * Device::endLaunch.
 */

#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.hh"
#include "gpu/audit.hh"
#include "gpu/device.hh"

#include "../support/expect_error.hh"

namespace {

using namespace cactus::gpu;
using cactus::FaultInjector;
using cactus::IntegrityError;
using cactus::test::expectError;

/** Run one canonical streaming kernel and return its stats. */
LaunchStats
sampleLaunch(Device &dev, std::size_t n = 1 << 14)
{
    std::vector<float> a(n, 1.f), b(n, 0.f);
    dev.launchLinear(KernelDesc("audit_stream"), n, 256,
                     [&](ThreadCtx &ctx) {
                         const auto i = ctx.globalId();
                         ctx.fp32();
                         ctx.st(&b[i], ctx.ld(&a[i]) + 1.f);
                     });
    return dev.launches().back();
}

TEST(Audit, GenuineLaunchPassesRecordedStatsAudit)
{
    const DeviceConfig cfg;
    Device dev(cfg);
    const LaunchStats stats = sampleLaunch(dev);
    EXPECT_NO_THROW(auditLaunchStats(stats, cfg));
}

TEST(Audit, EveryLaunchOfAMixedKernelSequencePasses)
{
    const DeviceConfig cfg = DeviceConfig::scaledExperiment();
    Device dev(cfg);
    sampleLaunch(dev, 1 << 12);
    sampleLaunch(dev, 1 << 16);
    for (const auto &stats : dev.launches())
        EXPECT_NO_THROW(auditLaunchStats(stats, cfg));
}

TEST(Audit, CaughtL1MissesExceedingAccesses)
{
    const DeviceConfig cfg;
    Device dev(cfg);
    LaunchStats stats = sampleLaunch(dev);
    stats.l1Misses = stats.l1Accesses + 1;
    expectError<IntegrityError>(
        [&] { auditLaunchStats(stats, cfg); },
        "l1Misses <= l1Accesses");
}

TEST(Audit, CaughtL2AccessesDivergingFromL1Misses)
{
    const DeviceConfig cfg;
    Device dev(cfg);
    LaunchStats stats = sampleLaunch(dev);
    stats.l2Accesses += 7;
    expectError<IntegrityError>(
        [&] { auditLaunchStats(stats, cfg); },
        "l2Accesses == l1Misses");
}

TEST(Audit, CaughtL2MissesExceedingAccesses)
{
    const DeviceConfig cfg;
    Device dev(cfg);
    LaunchStats stats = sampleLaunch(dev);
    stats.l2Misses = stats.l2Accesses + 1;
    expectError<IntegrityError>(
        [&] { auditLaunchStats(stats, cfg); },
        "l2Misses <= l2Accesses");
}

TEST(Audit, CaughtImpossibleWarpTotals)
{
    const DeviceConfig cfg;
    Device dev(cfg);
    LaunchStats stats = sampleLaunch(dev);
    stats.totalWarps += 3;
    expectError<IntegrityError>(
        [&] { auditLaunchStats(stats, cfg); }, "totalWarps");
}

TEST(Audit, CaughtOutOfRangeSampleCoverage)
{
    const DeviceConfig cfg;
    Device dev(cfg);
    LaunchStats stats = sampleLaunch(dev);
    stats.sampleCoverage = 1.5;
    expectError<IntegrityError>(
        [&] { auditLaunchStats(stats, cfg); }, "sampleCoverage");
}

TEST(Audit, CaughtNonFiniteMetricColumn)
{
    const DeviceConfig cfg;
    Device dev(cfg);
    LaunchStats stats = sampleLaunch(dev);
    stats.metrics.gips = std::numeric_limits<double>::quiet_NaN();
    expectError<IntegrityError>(
        [&] { auditLaunchStats(stats, cfg); }, "finite");
}

TEST(Audit, CaughtNegativeTiming)
{
    const DeviceConfig cfg;
    Device dev(cfg);
    LaunchStats stats = sampleLaunch(dev);
    stats.timing.seconds = -1.0;
    expectError<IntegrityError>(
        [&] { auditLaunchStats(stats, cfg); }, "seconds");
}

TEST(Audit, ErrorNamesTheKernelAsSubject)
{
    const DeviceConfig cfg;
    Device dev(cfg);
    LaunchStats stats = sampleLaunch(dev);
    stats.l1Misses = stats.l1Accesses + 1;
    try {
        auditLaunchStats(stats, cfg);
        FAIL() << "corrupted stats passed the audit";
    } catch (const IntegrityError &e) {
        EXPECT_EQ(e.subject(), "audit_stream");
        EXPECT_NE(e.invariant().find("l1Misses"), std::string::npos);
    }
}

TEST(Audit, StatsCorruptFaultIsDetectedInsideEndLaunch)
{
    DeviceConfig cfg;
    cfg.fault = FaultInjector::parse("stats-corrupt:1:7");
    Device dev(cfg);
    expectError<IntegrityError>([&] { sampleLaunch(dev); },
                                "l1Misses <= l1Accesses");
    // The corrupted launch must not have entered the device history.
    EXPECT_TRUE(dev.launches().empty());
}

TEST(Audit, ZeroProbabilityStatsCorruptFaultIsHarmless)
{
    DeviceConfig cfg;
    cfg.fault = FaultInjector::parse("stats-corrupt:0:7");
    Device dev(cfg);
    EXPECT_NO_THROW(sampleLaunch(dev));
    EXPECT_EQ(dev.launches().size(), 1u);
}

} // namespace
