/**
 * @file
 * Tests for the refined memory-model mechanisms: streaming (evict-
 * first) loads, L2 write-back accounting, per-kind coalescer
 * alignment, and the scaled experiment configuration.
 */

#include <vector>

#include <gtest/gtest.h>

#include "gpu/coalescer.hh"
#include "gpu/device.hh"

namespace {

using namespace cactus::gpu;

TEST(StreamingLoads, DoNotPolluteCaches)
{
    // A hot table re-read under a huge interleaved stream: with
    // streaming loads for the stream, the table stays L2 resident.
    // Fully traced, small caches, and a table bigger than L1 but
    // smaller than L2, so the stream's pollution is what decides
    // whether table re-reads reach DRAM.
    const std::size_t threads = 1 << 17;
    const std::size_t per_thread = 4; // 1 MiB stream per table cycle.
    const std::size_t hot_n = 16384;  // 64 KiB table: > L1, < L2.
    std::vector<float> stream(threads * per_thread, 1.f);
    std::vector<float> hot(hot_n, 2.f);
    std::vector<float> out(threads, 0.f);

    auto run = [&](bool use_streaming) {
        DeviceConfig cfg = DeviceConfig::scaledExperiment();
        cfg.maxSampledWarps = 1 << 30;
        Device dev(cfg);
        dev.launchLinear(
            KernelDesc("mixed"), threads, 256, [&](ThreadCtx &ctx) {
                const auto i = ctx.globalId();
                float s = 0;
                for (std::size_t k = 0; k < per_thread; ++k) {
                    const float *p = &stream[i * per_thread + k];
                    s += use_streaming ? ctx.ldStream(p) : ctx.ld(p);
                }
                const float h = ctx.ld(&hot[i % hot_n]);
                ctx.fp32(5);
                ctx.st(&out[i], s + h);
            });
        return dev.launches().back();
    };

    const auto with = run(true);
    const auto without = run(false);
    // Stream compulsory misses are identical either way; routing the
    // stream around L1/L2 keeps the hot table resident, so total DRAM
    // reads drop.
    EXPECT_LT(with.dramReadSectors, without.dramReadSectors);
}

TEST(StreamingLoads, SpatialReuseWithinLineIsCaptured)
{
    // Sequential streaming loads of consecutive floats: the stream
    // buffer turns 8 accesses per sector into one DRAM transaction.
    const std::size_t n = 1 << 18;
    std::vector<float> data(n, 1.f);
    Device dev;
    float sink = 0;
    dev.launchLinear(
        KernelDesc("stream_seq"), n, 256, [&](ThreadCtx &ctx) {
            sink += ctx.ldStream(&data[ctx.globalId()]);
            ctx.fp32(1);
        });
    const auto &stats = dev.launches().back();
    // n floats = n/8 sectors; allow slack for alignment.
    EXPECT_LT(stats.dramReadSectors, n / 8 + n / 64);
    EXPECT_GT(stats.dramReadSectors, n / 16);
}

TEST(Writebacks, StoresReachDramAsWritebacks)
{
    // A pure streaming store of a large buffer: every written sector
    // must eventually be written back to DRAM exactly once.
    const std::size_t n = 1 << 20; // 4 MiB >> L2.
    std::vector<float> out(n, 0.f);
    Device dev;
    dev.launchLinear(
        KernelDesc("fill"), n, 256, [&](ThreadCtx &ctx) {
            ctx.st(&out[ctx.globalId()], 1.f);
        });
    const auto &stats = dev.launches().back();
    const double sectors = static_cast<double>(n) * 4 / 32;
    EXPECT_NEAR(static_cast<double>(stats.dramWriteSectors), sectors,
                sectors * 0.1);
    // Write-allocate-no-fetch: no read traffic for a pure fill.
    EXPECT_LT(stats.dramReadSectors, stats.dramWriteSectors / 10);
}

TEST(Writebacks, RewrittenDataWritesBackOnce)
{
    // Rewriting the same small buffer many times: dirty sectors merge
    // in L2, so DRAM writes stay near the footprint, not the traffic.
    const std::size_t n = 2048; // 8 KiB.
    std::vector<float> out(n, 0.f);
    Device dev;
    for (int pass = 0; pass < 8; ++pass) {
        dev.launchLinear(
            KernelDesc("rewrite"), n, 256, [&](ThreadCtx &ctx) {
                ctx.st(&out[ctx.globalId()],
                       static_cast<float>(pass));
            });
    }
    std::uint64_t writes = 0;
    for (const auto &l : dev.launches())
        writes += l.dramWriteSectors;
    const std::uint64_t footprint = n * 4 / 32;
    // 8 passes of raw traffic would be 8x the footprint; the boundary
    // drain clears dirty bits each launch, so expect at most ~1x per
    // launch (plus alignment slack for an unaligned buffer).
    EXPECT_LE(writes, footprint * 8 + 16);
    EXPECT_GE(writes, footprint);
}

TEST(Coalescer, KindsAreAlignedSeparately)
{
    Coalescer coal(32);
    std::vector<std::vector<MemAccess>> lanes(2);
    auto acc = [](std::uint64_t addr, AccessKind kind) {
        MemAccess a;
        a.addr = addr;
        a.size = 4;
        a.kind = kind;
        return a;
    };
    // Lane 0: load, stream; lane 1: stream, load (interleaved kinds).
    lanes[0].push_back(acc(0, AccessKind::Load));
    lanes[0].push_back(acc(1000, AccessKind::StreamLoad));
    lanes[1].push_back(acc(2000, AccessKind::StreamLoad));
    lanes[1].push_back(acc(4, AccessKind::Load));
    const auto out = coal.coalesce(lanes);
    ASSERT_EQ(out.size(), 2u);
    // One pure-Load instruction (addresses 0 and 4 share a sector) and
    // one pure-StreamLoad instruction.
    int loads = 0, streams = 0;
    for (const auto &wi : out) {
        if (wi.kind == AccessKind::Load) {
            ++loads;
            EXPECT_EQ(wi.sectors.size(), 1u);
        } else if (wi.kind == AccessKind::StreamLoad) {
            ++streams;
            EXPECT_EQ(wi.sectors.size(), 2u);
        }
    }
    EXPECT_EQ(loads, 1);
    EXPECT_EQ(streams, 1);
}

TEST(ScaledExperimentConfig, KeepsRooflineGeometry)
{
    const auto scaled = DeviceConfig::scaledExperiment();
    const DeviceConfig full;
    EXPECT_DOUBLE_EQ(scaled.peakGips(), full.peakGips());
    EXPECT_DOUBLE_EQ(scaled.peakGtxnPerSec(), full.peakGtxnPerSec());
    EXPECT_DOUBLE_EQ(scaled.elbowIntensity(), full.elbowIntensity());
    EXPECT_LT(scaled.l2SizeBytes, full.l2SizeBytes);
    EXPECT_LT(scaled.l1SizeBytes, full.l1SizeBytes);
}

TEST(ScaledExperimentConfig, SmallerCachesMeanMoreDram)
{
    // A working set between the two L2 sizes: re-reads hit the full
    // config's L2 but miss the scaled one.
    const std::size_t n = (1 << 20) / 4; // 1 MiB of floats.
    std::vector<float> data(n, 1.f);
    auto dramOf = [&](const DeviceConfig &cfg) {
        Device dev(cfg);
        float sink = 0;
        for (int pass = 0; pass < 2; ++pass) {
            dev.launchLinear(
                KernelDesc("reread"), n, 256, [&](ThreadCtx &ctx) {
                    sink += ctx.ld(&data[ctx.globalId()]);
                    ctx.fp32(1);
                });
        }
        return dev.launches().back().dramReadSectors;
    };
    EXPECT_GT(dramOf(DeviceConfig::scaledExperiment()),
              2 * dramOf(DeviceConfig{}));
}

} // namespace
