/**
 * @file
 * Unit tests for the sectored set-associative cache model.
 */

#include <gtest/gtest.h>

#include "gpu/cache.hh"

namespace {

using cactus::gpu::CacheOutcome;
using cactus::gpu::SectorCache;

TEST(SectorCache, FirstAccessIsLineMiss)
{
    SectorCache cache(4096, 4, 128, 32);
    EXPECT_EQ(cache.access(0, false), CacheOutcome::LineMiss);
}

TEST(SectorCache, RepeatAccessHits)
{
    SectorCache cache(4096, 4, 128, 32);
    cache.access(64, false);
    EXPECT_EQ(cache.access(64, false), CacheOutcome::Hit);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().lineMisses, 1u);
}

TEST(SectorCache, DifferentSectorSameLineIsSectorMiss)
{
    SectorCache cache(4096, 4, 128, 32);
    cache.access(0, false);
    // Same 128 B line, different 32 B sector.
    EXPECT_EQ(cache.access(32, false), CacheOutcome::SectorMiss);
    // Now both sectors are resident.
    EXPECT_EQ(cache.access(0, false), CacheOutcome::Hit);
    EXPECT_EQ(cache.access(32, false), CacheOutcome::Hit);
}

TEST(SectorCache, UnalignedAddressMapsToSector)
{
    SectorCache cache(4096, 4, 128, 32);
    cache.access(7, false);
    EXPECT_EQ(cache.access(31, false), CacheOutcome::Hit);
    EXPECT_EQ(cache.access(33, false), CacheOutcome::SectorMiss);
}

TEST(SectorCache, LruEvictionWithinSet)
{
    // 2-way, 2 sets of 128 B lines => 512 B total.
    SectorCache cache(512, 2, 128, 32);
    ASSERT_EQ(cache.numSets(), 2);
    // Three lines mapping to set 0: line addresses 0, 2, 4 (x128).
    cache.access(0 * 128, false);
    cache.access(2 * 128, false);
    cache.access(0 * 128, false);              // Touch line 0: now MRU.
    cache.access(4 * 128, false);              // Evicts line 2.
    EXPECT_EQ(cache.access(0 * 128, false), CacheOutcome::Hit);
    EXPECT_EQ(cache.access(2 * 128, false), CacheOutcome::LineMiss);
}

TEST(SectorCache, FlushInvalidatesContentsKeepsStats)
{
    SectorCache cache(4096, 4, 128, 32);
    cache.access(0, false);
    cache.access(0, false);
    const auto hits_before = cache.stats().hits;
    cache.flush();
    EXPECT_EQ(cache.access(0, false), CacheOutcome::LineMiss);
    EXPECT_EQ(cache.stats().hits, hits_before);
}

TEST(SectorCache, ResetStatsKeepsContents)
{
    SectorCache cache(4096, 4, 128, 32);
    cache.access(0, false);
    cache.resetStats();
    EXPECT_EQ(cache.stats().accesses, 0u);
    EXPECT_EQ(cache.access(0, false), CacheOutcome::Hit);
}

TEST(SectorCache, HitRateComputation)
{
    SectorCache cache(4096, 4, 128, 32);
    cache.access(0, false);  // miss
    cache.access(0, false);  // hit
    cache.access(0, false);  // hit
    cache.access(0, false);  // hit
    EXPECT_DOUBLE_EQ(cache.stats().hitRate(), 0.75);
}

TEST(SectorCache, WritesAllocate)
{
    SectorCache cache(4096, 4, 128, 32);
    EXPECT_EQ(cache.access(256, true), CacheOutcome::LineMiss);
    EXPECT_EQ(cache.access(256, false), CacheOutcome::Hit);
}

TEST(SectorCache, StreamingAccessNeverHits)
{
    SectorCache cache(1024, 2, 128, 32);
    // A stream far larger than capacity, touching each sector once.
    for (std::uint64_t addr = 0; addr < 64 * 1024; addr += 32)
        cache.access(addr, false);
    EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(SectorCache, WorkingSetWithinCapacityHitsOnSecondPass)
{
    SectorCache cache(64 * 1024, 8, 128, 32);
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t addr = 0; addr < 32 * 1024; addr += 32)
            cache.access(addr, false);
    // Second pass should be all hits: footprint is half the capacity.
    EXPECT_GT(cache.stats().hitRate(), 0.45);
    EXPECT_EQ(cache.stats().hits, 1024u);
}

/** Property sweep: total accesses always equal hits + misses. */
class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CacheGeometry, AccountingInvariant)
{
    const auto [size_kb, assoc] = GetParam();
    SectorCache cache(size_kb * 1024, assoc, 128, 32);
    std::uint64_t addr = 12345;
    for (int i = 0; i < 5000; ++i) {
        addr = addr * 6364136223846793005ull + 1442695040888963407ull;
        cache.access(addr % (1 << 22), (i % 3) == 0);
    }
    const auto &stats = cache.stats();
    EXPECT_EQ(stats.accesses, stats.hits + stats.misses());
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheGeometry,
                         ::testing::Combine(::testing::Values(16, 64, 512),
                                            ::testing::Values(1, 4, 16)));

} // namespace
