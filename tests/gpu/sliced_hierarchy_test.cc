/**
 * @file
 * Unit tests for the sliced memory-hierarchy model: L2 slice address
 * interleaving and slice-local translation, per-SM private L1
 * isolation, replay bit-identity across host thread counts, and the
 * striped atomic locks under contention.
 */

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "gpu/device.hh"

namespace {

using namespace cactus::gpu;

constexpr int kLineShift = 7; ///< 128-byte lines, as in DeviceConfig.
constexpr int kSlices = 8;

TEST(L2SliceHash, SectorsOfOneLineShareASlice)
{
    // The hash input is the line address, so the four 32-byte sectors
    // of any line must land in the same slice (a sector-granularity
    // hash would scatter each line's tag over ~4 slices).
    for (std::uint64_t line = 0; line < 10'000; line += 37) {
        const std::uint64_t base = line << kLineShift;
        const int s0 = l2SliceIndex(base, kLineShift, kSlices);
        for (int sector = 1; sector < 4; ++sector)
            EXPECT_EQ(l2SliceIndex(base + 32 * sector, kLineShift,
                                   kSlices),
                      s0);
    }
}

TEST(L2SliceHash, ConsecutiveLinesInterleaveEvenly)
{
    std::vector<int> hits(kSlices, 0);
    const int lines = 4096;
    for (int line = 0; line < lines; ++line)
        ++hits[l2SliceIndex(static_cast<std::uint64_t>(line)
                                << kLineShift,
                            kLineShift, kSlices)];
    // The XOR fold permutes lines within aligned groups, so a dense
    // sweep still spreads exactly evenly across slices.
    for (int s = 0; s < kSlices; ++s)
        EXPECT_EQ(hits[s], lines / kSlices) << "slice " << s;
}

TEST(L2SliceHash, PowerOfTwoStridesDoNotResonateOntoOneSlice)
{
    // A plain line % kSlices hash sends any stride that is a multiple
    // of kSlices entirely to slice 0; the fold must keep such streams
    // spread out.
    for (int shift = 3; shift <= 12; ++shift) {
        const std::uint64_t stride_lines = std::uint64_t{1} << shift;
        std::set<int> touched;
        for (int i = 0; i < 256; ++i)
            touched.insert(l2SliceIndex(
                (i * stride_lines) << kLineShift, kLineShift, kSlices));
        EXPECT_GE(touched.size(), 2u) << "stride 2^" << shift;
    }
}

TEST(L2SliceHash, SliceLocalAddrIsCollisionFreeWithinASlice)
{
    // Distinct lines mapping to the same slice must keep distinct
    // slice-local addresses, or a slice would conflate their tags.
    std::set<std::pair<int, std::uint64_t>> seen;
    const int lines = 1 << 14;
    for (int line = 0; line < lines; ++line) {
        const std::uint64_t addr = static_cast<std::uint64_t>(line)
                                   << kLineShift;
        const int slice = l2SliceIndex(addr, kLineShift, kSlices);
        const std::uint64_t local =
            l2SliceLocalAddr(addr, kLineShift, kSlices);
        EXPECT_TRUE(seen.insert({slice, local}).second)
            << "line " << line << " collides in slice " << slice;
    }
}

TEST(L2SliceHash, SliceLocalAddrPreservesLineOffset)
{
    for (std::uint64_t addr : {0ull, 96ull, 4096ull + 32, 777'216ull})
        EXPECT_EQ(l2SliceLocalAddr(addr, kLineShift, kSlices) &
                      ((1u << kLineShift) - 1),
                  addr & ((1u << kLineShift) - 1));
}

/** Runs a kernel where two blocks stream the same buffer, and returns
 *  the recorded launch stats. */
LaunchStats
runSharedBufferSweep(DeviceConfig cfg)
{
    Device dev(cfg);
    // 8 KB working set: fits comfortably in one 16 KB scaled L1.
    std::vector<float> buf(2048, 1.f);
    std::vector<float> out(2, 0.f);
    dev.launch(KernelDesc("shared_sweep"), Dim3(2), Dim3(256),
               [&](ThreadCtx &ctx) {
                   float acc = 0.f;
                   for (std::uint64_t i = ctx.threadIdx.x;
                        i < buf.size(); i += 256)
                       acc += ctx.ld(&buf[i]);
                   ctx.fp32(buf.size() / 256);
                   if (ctx.threadIdx.x == 0)
                       ctx.st(&out[ctx.blockIdx.x], acc);
               });
    return dev.launches().back();
}

TEST(SlicedHierarchy, PrivateL1sIsolateBlocksFromCrossBlockReuse)
{
    DeviceConfig shared = DeviceConfig::scaledExperiment();
    shared.numL1Units = 1;
    DeviceConfig split = shared;
    split.numL1Units = 2;

    const auto one = runSharedBufferSweep(shared);
    const auto two = runSharedBufferSweep(split);

    // Same access stream either way.
    EXPECT_EQ(one.l1Accesses, two.l1Accesses);
    // With a single shared L1, block 1 reuses every line block 0
    // fetched; with private per-SM L1s both blocks miss cold, so the
    // split model must see roughly twice the misses.
    EXPECT_GT(two.l1Misses, one.l1Misses);
    EXPECT_GE(two.l1Misses, one.l1Misses * 3 / 2);
}

TEST(SlicedHierarchy, SingleSliceMatchesMultiSliceTrafficTotals)
{
    // Slicing partitions the L2 address stream; it must not change
    // how much traffic reaches L2 in total.
    DeviceConfig mono = DeviceConfig::scaledExperiment();
    mono.numL2Slices = 1;
    DeviceConfig sliced = DeviceConfig::scaledExperiment();
    sliced.numL2Slices = 8;

    const auto a = runSharedBufferSweep(mono);
    const auto b = runSharedBufferSweep(sliced);
    EXPECT_EQ(a.l1Accesses, b.l1Accesses);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    // The monolithic L2 is one slice by definition.
    EXPECT_EQ(a.l2SliceMaxAccesses, a.l2Accesses);
    EXPECT_LE(b.l2SliceMaxAccesses, b.l2Accesses);
}

TEST(SlicedHierarchy, ReplayIsBitIdenticalAcrossHostThreadCounts)
{
    // Registry-wide bit-identity is asserted by the
    // ParallelDeterminism suite; this is the minimal device-level
    // version exercising multiple L1 units and L2 slices directly.
    DeviceConfig cfg = DeviceConfig::scaledExperiment();
    cfg.numL1Units = 4;
    cfg.numL2Slices = 4;
    cfg.hostThreads = 1;
    cfg.minWarpsPerWorker = 0; // Force the parallel path.
    Device dev(cfg);

    std::vector<float> buf(1 << 14, 2.f);
    const auto sweep = [&] {
        dev.launchLinear(KernelDesc("ht_sweep"), buf.size(), 128,
                         [&](ThreadCtx &ctx) {
                             const auto i = ctx.globalId();
                             ctx.st(&buf[i], ctx.ld(&buf[i]) + 1.f);
                             ctx.fp32();
                         });
        return dev.launches().back();
    };

    const auto serial = sweep();
    dev.setHostThreads(8);
    dev.flushCaches();
    const auto parallel = sweep();

    EXPECT_EQ(serial.l1Accesses, parallel.l1Accesses);
    EXPECT_EQ(serial.l1Misses, parallel.l1Misses);
    EXPECT_EQ(serial.l2Accesses, parallel.l2Accesses);
    EXPECT_EQ(serial.l2Misses, parallel.l2Misses);
    EXPECT_EQ(serial.l2SliceMaxAccesses, parallel.l2SliceMaxAccesses);
    EXPECT_EQ(serial.dramReadSectors, parallel.dramReadSectors);
    EXPECT_EQ(serial.dramWriteSectors, parallel.dramWriteSectors);
}

TEST(StripedAtomics, ContendedIntegerAtomicsStayExact)
{
    // Many blocks hammer one hot counter and a spread of striped
    // counters in parallel; integer atomics must linearize exactly
    // regardless of which stripe serializes which address.
    DeviceConfig cfg;
    cfg.hostThreads = 8;
    cfg.minWarpsPerWorker = 0; // Force the parallel path.
    Device dev(cfg);

    const int blocks = 64, threads = 128;
    std::int64_t hot = 0;
    std::vector<std::int64_t> spread(64, 0);
    std::vector<int> high(16, 0);
    dev.launch(KernelDesc("contend"), Dim3(blocks), Dim3(threads),
               [&](ThreadCtx &ctx) {
                   const auto t = ctx.globalId();
                   ctx.atomicAdd(&hot, std::int64_t{1});
                   ctx.atomicAdd(&spread[t % spread.size()],
                                 std::int64_t{2});
                   ctx.atomicMax(&high[t % high.size()],
                                 static_cast<int>(t));
               });

    const std::int64_t total = std::int64_t{blocks} * threads;
    EXPECT_EQ(hot, total);
    for (std::size_t i = 0; i < spread.size(); ++i)
        EXPECT_EQ(spread[i], 2 * total / std::int64_t(spread.size()));
    for (std::size_t i = 0; i < high.size(); ++i)
        EXPECT_EQ(high[i],
                  static_cast<int>(total - high.size() + i));
}

} // namespace
