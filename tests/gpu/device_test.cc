/**
 * @file
 * Integration tests for Device: functional correctness of kernels, warp
 * instruction accounting, sampling, coalescing through the hierarchy, and
 * end-to-end roofline placement of canonical kernels.
 */

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "gpu/device.hh"

#include "../support/expect_error.hh"

namespace {

using namespace cactus::gpu;
using cactus::test::expectError;

TEST(Device, VectorAddIsFunctionallyCorrect)
{
    Device dev;
    const std::size_t n = 10'000;
    std::vector<float> a(n, 1.5f), b(n, 2.25f), c(n, 0.f);
    dev.launchLinear(KernelDesc("vadd"), n, 256, [&](ThreadCtx &ctx) {
        const auto i = ctx.globalId();
        const float x = ctx.ld(&a[i]);
        const float y = ctx.ld(&b[i]);
        ctx.fp32();
        ctx.st(&c[i], x + y);
    });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_FLOAT_EQ(c[i], 3.75f);
}

TEST(Device, ThreadGeometryCoversEveryThreadOnce)
{
    Device dev;
    const unsigned gx = 3, gy = 2, bx = 8, by = 4, bz = 2;
    std::vector<int> hits(gx * gy * bx * by * bz, 0);
    dev.launch(KernelDesc("geom"), Dim3(gx, gy), Dim3(bx, by, bz),
               [&](ThreadCtx &ctx) { ++hits[ctx.globalId()]; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
              static_cast<int>(hits.size()));
    for (int h : hits)
        ASSERT_EQ(h, 1);
}

TEST(Device, WarpInstructionCountsAreWarpLevel)
{
    Device dev;
    // 64 threads = 2 warps; every thread does 5 FP ops.
    dev.launch(KernelDesc("count"), Dim3(1), Dim3(64),
               [&](ThreadCtx &ctx) { ctx.fp32(5); });
    const auto &stats = dev.launches().back();
    EXPECT_EQ(stats.counts.get(OpClass::FP32), 10u); // 2 warps x 5.
    EXPECT_EQ(stats.counts.threadInsts, 320u);       // 64 threads x 5.
    EXPECT_EQ(stats.totalWarps, 2u);
}

TEST(Device, DivergenceCountsMaxOverLanes)
{
    Device dev;
    dev.launch(KernelDesc("div"), Dim3(1), Dim3(32), [&](ThreadCtx &ctx) {
        ctx.branch();
        if (ctx.lane() < 4)
            ctx.fp32(100); // Only a few lanes take the long path.
        else
            ctx.fp32(1);
    });
    const auto &stats = dev.launches().back();
    // Warp executes the longest lane path.
    EXPECT_EQ(stats.counts.get(OpClass::FP32), 100u);
    EXPECT_EQ(stats.counts.get(OpClass::BRANCH), 1u);
}

TEST(Device, AtomicAddIsExact)
{
    Device dev;
    double sum = 0.0;
    const std::size_t n = 4096;
    dev.launchLinear(KernelDesc("reduce"), n, 128, [&](ThreadCtx &ctx) {
        ctx.atomicAdd(&sum, 1.0);
    });
    EXPECT_DOUBLE_EQ(sum, static_cast<double>(n));
}

TEST(Device, StreamingKernelIsMemoryIntensive)
{
    Device dev;
    const std::size_t n = 1 << 20;
    std::vector<float> a(n, 1.f), b(n, 0.f);
    dev.launchLinear(KernelDesc("copy"), n, 256, [&](ThreadCtx &ctx) {
        const auto i = ctx.globalId();
        ctx.st(&b[i], ctx.ld(&a[i]));
    });
    const auto &m = dev.launches().back().metrics;
    // Streaming 8 MiB through a 5 MiB L2: intensity far below the elbow.
    EXPECT_LT(m.instIntensity, dev.config().elbowIntensity() / 2);
    EXPECT_GT(m.memStall, 0.2);
}

TEST(Device, ComputeKernelIsComputeIntensive)
{
    Device dev;
    const std::size_t n = 1 << 16;
    std::vector<float> out(n, 0.f);
    dev.launchLinear(KernelDesc("iterate"), n, 256, [&](ThreadCtx &ctx) {
        const auto i = ctx.globalId();
        float x = 1.0001f * static_cast<float>(i % 97);
        for (int k = 0; k < 400; ++k)
            x = x * 1.000001f + 0.5f;
        ctx.fp32(400);
        ctx.intOp(400);
        ctx.st(&out[i], x);
    });
    const auto &m = dev.launches().back().metrics;
    EXPECT_GT(m.instIntensity, dev.config().elbowIntensity());
    EXPECT_GT(m.gips, 100.0);
}

TEST(Device, CachedRereadHitsInL1)
{
    Device dev;
    // All threads re-read the same small table: near-perfect hit rate.
    std::vector<float> table(64, 1.f);
    std::vector<float> out(1 << 16, 0.f);
    dev.launchLinear(KernelDesc("lut"), out.size(), 256,
                     [&](ThreadCtx &ctx) {
        const auto i = ctx.globalId();
        float acc = 0.f;
        for (int k = 0; k < 16; ++k)
            acc += ctx.ld(&table[(i + k) % table.size()]);
        ctx.fp32(16);
        ctx.st(&out[i], acc);
    });
    const auto &m = dev.launches().back().metrics;
    EXPECT_GT(m.l1HitRate, 0.85);
}

TEST(Device, L2PersistsAcrossLaunchesForProducerConsumer)
{
    Device dev;
    const std::size_t n = 1 << 14; // 64 KiB: fits in L2, not in L1.
    std::vector<float> a(n, 2.f), b(n, 0.f), c(n, 0.f);
    dev.launchLinear(KernelDesc("produce"), n, 256, [&](ThreadCtx &ctx) {
        const auto i = ctx.globalId();
        ctx.st(&b[i], ctx.ld(&a[i]) * 2.f);
    });
    dev.launchLinear(KernelDesc("consume"), n, 256, [&](ThreadCtx &ctx) {
        const auto i = ctx.globalId();
        ctx.st(&c[i], ctx.ld(&b[i]) + 1.f);
    });
    const auto &consume = dev.launches().back();
    // b was just written through L2, so the consumer's loads hit; its
    // cold stores to c miss. Expect a hit rate of about one half, far
    // above what a flushed L2 would give (~0).
    EXPECT_GT(consume.metrics.l2HitRate, 0.45);
}

TEST(Device, SamplingExtrapolationIsAccurate)
{
    // Run the same streaming kernel with full tracing and with sparse
    // sampling; extrapolated DRAM traffic should agree within 10%.
    const std::size_t n = 1 << 21;
    std::vector<float> a(n, 1.f), b(n, 0.f);
    auto run = [&](int max_sampled) {
        DeviceConfig cfg;
        cfg.maxSampledWarps = max_sampled;
        Device dev(cfg);
        dev.launchLinear(KernelDesc("stream"), n, 256,
                         [&](ThreadCtx &ctx) {
            const auto i = ctx.globalId();
            ctx.st(&b[i], ctx.ld(&a[i]) + 1.f);
        });
        return dev.launches().back();
    };
    const auto full = run(1 << 30);
    const auto sampled = run(256);
    EXPECT_EQ(full.sampledWarps, full.totalWarps);
    EXPECT_LT(sampled.sampledWarps, sampled.totalWarps / 16);
    const double full_txn = static_cast<double>(full.dramReadSectors);
    const double samp_txn = static_cast<double>(sampled.dramReadSectors);
    EXPECT_NEAR(samp_txn / full_txn, 1.0, 0.10);
}

TEST(Device, ElapsedTimeAccumulatesAndHistoryClears)
{
    Device dev;
    std::vector<float> x(1024, 0.f);
    for (int i = 0; i < 3; ++i) {
        dev.launchLinear(KernelDesc("k"), x.size(), 128,
                         [&](ThreadCtx &ctx) {
            ctx.st(&x[ctx.globalId()], 1.f);
        });
    }
    EXPECT_EQ(dev.launches().size(), 3u);
    EXPECT_GT(dev.elapsedSeconds(), 0.0);
    dev.clearHistory();
    EXPECT_TRUE(dev.launches().empty());
    EXPECT_EQ(dev.elapsedSeconds(), 0.0);
}

TEST(DeviceError, EmptyGridThrows)
{
    Device dev;
    expectError(
        [&] {
            dev.launch(KernelDesc("bad"), Dim3(0), Dim3(32),
                       [](ThreadCtx &) {});
        },
        "empty grid");
}

TEST(DeviceError, EmptyBlockThrows)
{
    // Regression: an all-zero block once divided by zero in the
    // sample-stride computation instead of failing validation.
    Device dev;
    expectError(
        [&] {
            dev.launch(KernelDesc("bad"), Dim3(4), Dim3(0),
                       [](ThreadCtx &) {});
        },
        "empty block");
}

TEST(DeviceError, ZeroDimensionBlockThrows)
{
    Device dev;
    expectError(
        [&] {
            dev.launch(KernelDesc("bad"), Dim3(4), Dim3(32, 0),
                       [](ThreadCtx &) {});
        },
        "empty block");
}

TEST(DeviceError, NonPositiveLinearBlockSizeThrows)
{
    // Regression: launchLinear once computed a garbage block count from
    // block_size <= 0 and launched a zero-thread block.
    Device dev;
    expectError(
        [&] {
            dev.launchLinear(KernelDesc("bad"), 1024, 0,
                             [](ThreadCtx &) {});
        },
        "non-positive block size");
    expectError(
        [&] {
            dev.launchLinear(KernelDesc("bad"), 1024, -128,
                             [](ThreadCtx &) {});
        },
        "non-positive block size");
}

/** Field-by-field bitwise comparison of two launch records. */
void
expectIdenticalStats(const LaunchStats &a, const LaunchStats &b)
{
    EXPECT_EQ(a.counts.warpInsts, b.counts.warpInsts);
    EXPECT_EQ(a.counts.threadInsts, b.counts.threadInsts);
    EXPECT_EQ(a.counts.activeLanes, b.counts.activeLanes);
    EXPECT_EQ(a.totalWarps, b.totalWarps);
    EXPECT_EQ(a.sampledWarps, b.sampledWarps);
    EXPECT_EQ(a.l1Accesses, b.l1Accesses);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.l2SliceMaxAccesses, b.l2SliceMaxAccesses);
    EXPECT_EQ(a.dramReadSectors, b.dramReadSectors);
    EXPECT_EQ(a.dramWriteSectors, b.dramWriteSectors);
    EXPECT_EQ(a.sampleCoverage, b.sampleCoverage);
    // Timing and metrics derive from the integer inputs above, so exact
    // (not approximate) floating-point equality is expected.
    EXPECT_EQ(a.timing.totalCycles, b.timing.totalCycles);
    EXPECT_EQ(a.timing.seconds, b.timing.seconds);
    EXPECT_EQ(a.metrics.gips, b.metrics.gips);
    EXPECT_EQ(a.metrics.instIntensity, b.metrics.instIntensity);
    EXPECT_EQ(a.metrics.l1HitRate, b.metrics.l1HitRate);
    EXPECT_EQ(a.metrics.l2HitRate, b.metrics.l2HitRate);
}

TEST(DeviceParallel, LaunchStatsAreBitIdenticalToSerial)
{
    // A divergent, memory-heavy producer-consumer pair (stressing
    // sparse sampling, stream loads, and L2 persistence across
    // launches). The buffers are shared between the serial and the
    // parallel run so both observe the same addresses.
    const std::size_t n = 1 << 18;
    std::vector<float> a(n, 1.f), b(n, 0.f), c(n, 0.f);

    auto run = [&](int host_threads) {
        std::fill(b.begin(), b.end(), 0.f);
        std::fill(c.begin(), c.end(), 0.f);
        DeviceConfig cfg = DeviceConfig::scaledExperiment();
        cfg.hostThreads = host_threads;
        cfg.minWarpsPerWorker = 0; // Force the parallel path.
        cfg.maxSampledWarps = 512; // Force a sparse sample stride.
        Device dev(cfg);
        dev.launchLinear(KernelDesc("produce"), n, 192,
                         [&](ThreadCtx &ctx) {
            const auto i = ctx.globalId();
            const float x = ctx.ld(&a[i]);
            ctx.branch();
            if (i % 3 == 0)
                ctx.fp32(50); // Divergent long path.
            else
                ctx.fp32(2);
            ctx.st(&b[i], x * 2.f);
        });
        dev.launchLinear(KernelDesc("consume"), n, 192,
                         [&](ThreadCtx &ctx) {
            const auto i = ctx.globalId();
            const float s = ctx.ldStream(&a[(i * 7) % n]);
            ctx.intOp(2);
            ctx.fp32();
            ctx.st(&c[i], ctx.ld(&b[i]) + s);
        });
        return std::vector<LaunchStats>(dev.launches());
    };

    const auto serial = run(1);
    const auto parallel = run(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(serial[i].desc.name);
        expectIdenticalStats(serial[i], parallel[i]);
    }
    // The workload really exercised the hierarchy.
    EXPECT_GT(serial[0].dramReadSectors, 0u);
    EXPECT_LT(serial[0].sampledWarps, serial[0].totalWarps);
}

TEST(DeviceParallel, GeometryCoversEveryThreadOnce)
{
    DeviceConfig cfg;
    cfg.hostThreads = 3;
    cfg.minWarpsPerWorker = 0; // Force the parallel path.
    Device dev(cfg);
    const unsigned gx = 5, gy = 3, bx = 8, by = 4, bz = 2;
    std::vector<int> hits(gx * gy * bx * by * bz, 0);
    dev.launch(KernelDesc("geom"), Dim3(gx, gy), Dim3(bx, by, bz),
               [&](ThreadCtx &ctx) { ++hits[ctx.globalId()]; });
    for (int h : hits)
        ASSERT_EQ(h, 1);
}

TEST(DeviceParallel, AtomicsAreLinearizedAcrossWorkers)
{
    DeviceConfig cfg;
    cfg.hostThreads = 8; // More workers than hardware threads is fine.
    Device dev(cfg);
    std::int64_t sum = 0;
    const std::size_t n = 1 << 16;
    dev.launchLinear(KernelDesc("reduce"), n, 128, [&](ThreadCtx &ctx) {
        ctx.atomicAdd(&sum, std::int64_t{1});
    });
    EXPECT_EQ(sum, static_cast<std::int64_t>(n));
}

TEST(DeviceParallel, MoreWorkersThanBlocksIsSafe)
{
    DeviceConfig cfg;
    cfg.hostThreads = 16;
    cfg.minWarpsPerWorker = 0; // Force the parallel path.
    Device dev(cfg);
    std::vector<float> x(64, 0.f);
    dev.launchLinear(KernelDesc("tiny"), x.size(), 32,
                     [&](ThreadCtx &ctx) {
        ctx.st(&x[ctx.globalId()], 1.f);
    });
    for (float v : x)
        ASSERT_EQ(v, 1.f);
    EXPECT_EQ(dev.launches().back().totalWarps, 2u);
}

/** Property sweep: warp accounting is exact for any block size. */
class DeviceBlockSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(DeviceBlockSweep, WarpCountMatchesGeometry)
{
    const int block = GetParam();
    Device dev;
    const std::uint64_t n = 10'000;
    dev.launchLinear(KernelDesc("sweep"), n, block,
                     [](ThreadCtx &ctx) { ctx.fp32(); });
    const auto &stats = dev.launches().back();
    const std::uint64_t blocks = (n + block - 1) / block;
    const std::uint64_t warps_per_block = (block + 31) / 32;
    EXPECT_EQ(stats.totalWarps, blocks * warps_per_block);
}

INSTANTIATE_TEST_SUITE_P(Blocks, DeviceBlockSweep,
                         ::testing::Values(32, 64, 96, 128, 256, 512, 1024));

} // namespace
