/**
 * @file
 * Unit tests for the warp-level memory coalescer.
 */

#include <gtest/gtest.h>

#include "gpu/coalescer.hh"

namespace {

using cactus::gpu::AccessKind;
using cactus::gpu::Coalescer;
using cactus::gpu::MemAccess;

std::vector<std::vector<MemAccess>>
makeLanes(int lanes)
{
    return std::vector<std::vector<MemAccess>>(lanes);
}

MemAccess
acc(std::uint64_t addr, std::uint32_t size,
    AccessKind kind = AccessKind::Load)
{
    MemAccess a;
    a.addr = addr;
    a.size = size;
    a.kind = kind;
    return a;
}

TEST(Coalescer, FullyCoalescedFloatLoads)
{
    // 32 lanes loading consecutive 4-byte floats: 128 B = 4 sectors.
    Coalescer coal(32);
    auto lanes = makeLanes(32);
    for (int l = 0; l < 32; ++l)
        lanes[l].push_back(acc(1024 + 4 * l, 4));
    const auto out = coal.coalesce(lanes);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].sectors.size(), 4u);
}

TEST(Coalescer, BroadcastLoadIsOneSector)
{
    Coalescer coal(32);
    auto lanes = makeLanes(32);
    for (int l = 0; l < 32; ++l)
        lanes[l].push_back(acc(4096, 4));
    const auto out = coal.coalesce(lanes);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].sectors.size(), 1u);
}

TEST(Coalescer, FullyDivergentGather)
{
    // Each lane touches a different 4 KiB page: 32 sectors.
    Coalescer coal(32);
    auto lanes = makeLanes(32);
    for (int l = 0; l < 32; ++l)
        lanes[l].push_back(acc(static_cast<std::uint64_t>(l) * 4096, 4));
    const auto out = coal.coalesce(lanes);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].sectors.size(), 32u);
}

TEST(Coalescer, StridedDoublesTouchEverySector)
{
    // 8-byte loads with a 32-byte stride: one sector per lane.
    Coalescer coal(32);
    auto lanes = makeLanes(32);
    for (int l = 0; l < 32; ++l)
        lanes[l].push_back(acc(32 * l, 8));
    const auto out = coal.coalesce(lanes);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].sectors.size(), 32u);
}

TEST(Coalescer, AccessStraddlingSectorCountsBoth)
{
    Coalescer coal(32);
    auto lanes = makeLanes(1);
    lanes[0].push_back(acc(30, 4)); // Bytes 30..33 span sectors 0 and 1.
    const auto out = coal.coalesce(lanes);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].sectors.size(), 2u);
}

TEST(Coalescer, SequentialAccessesFormSeparateInstructions)
{
    Coalescer coal(32);
    auto lanes = makeLanes(32);
    for (int l = 0; l < 32; ++l) {
        lanes[l].push_back(acc(4 * l, 4));
        lanes[l].push_back(acc(8192 + 4 * l, 4, AccessKind::Store));
    }
    const auto out = coal.coalesce(lanes);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].kind, AccessKind::Load);
    EXPECT_EQ(out[1].kind, AccessKind::Store);
    EXPECT_EQ(out[0].sectors.size(), 4u);
    EXPECT_EQ(out[1].sectors.size(), 4u);
}

TEST(Coalescer, DivergedLaneListsAlignByIndex)
{
    // Lane 0 performs two accesses, lane 1 only one: the second warp
    // instruction has only lane 0 active.
    Coalescer coal(32);
    auto lanes = makeLanes(2);
    lanes[0].push_back(acc(0, 4));
    lanes[0].push_back(acc(64, 4));
    lanes[1].push_back(acc(4, 4));
    const auto out = coal.coalesce(lanes);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].sectors.size(), 1u); // 0 and 4 share a sector.
    EXPECT_EQ(out[1].sectors.size(), 1u);
}

TEST(Coalescer, EmptyWarpYieldsNothing)
{
    Coalescer coal(32);
    auto lanes = makeLanes(32);
    EXPECT_TRUE(coal.coalesce(lanes).empty());
}

TEST(Coalescer, DuplicateSectorsDeduplicated)
{
    Coalescer coal(32);
    auto lanes = makeLanes(32);
    for (int l = 0; l < 32; ++l)
        lanes[l].push_back(acc(256 + (l % 4) * 4, 4));
    const auto out = coal.coalesce(lanes);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].sectors.size(), 1u);
}

} // namespace
