/**
 * @file
 * The command-line driver for the suite — the equivalent of the
 * paper's artifact run scripts. Lists registered benchmarks, runs one
 * (or a whole suite) under the profiler, prints the per-kernel profile
 * with roofline classification, and optionally exports the launch
 * trace for offline analysis.
 *
 * Suite runs go through the fault-tolerant campaign runner: one
 * failing or hanging benchmark is recorded in the summary while the
 * rest of the suite completes, and an interrupted campaign resumed
 * with the same --checkpoint manifest re-runs only the incomplete
 * benchmarks. The process exits non-zero only when a benchmark failed
 * or timed out — never by abort.
 *
 * PR 7 turns suite runs into a design-space-exploration engine:
 * --sweep expands a cartesian configuration matrix, --shards/--shard-id
 * statically partitions it across processes, --coordinate lets workers
 * claim tasks dynamically through a shared lease log, --cache answers
 * repeated tasks from a persistent content-addressed result cache, and
 * --merge folds shard outputs into one canonical report.
 *
 * Usage:
 *   cactus_run --list
 *   cactus_run --bench GMS [--tiny] [--full-caches] [--trace out.jsonl]
 *   cactus_run --suite Cactus [--tiny] [--timeout SEC] [--retries N]
 *              [--checkpoint manifest.jsonl]
 *   cactus_run --suite all --benchmarks lbm,spmv --sweep l2_kb=256,512
 *              --shards 4 --shard-id 0 --checkpoint shard0.jsonl
 *   cactus_run --suite all --sweep l2_kb=256,512 --coordinate work.jsonl
 *   cactus_run --merge report.jsonl --input shard0.jsonl --input ...
 *   cactus_run --retime trace.jsonl --platform a100 [--lenient]
 */

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <ctime>
#include <memory>
#include <string>
#include <vector>

#include "analysis/report.hh"
#include "analysis/roofline.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "common/parse.hh"
#include "core/campaign.hh"
#include "core/coord.hh"
#include "core/harness.hh"
#include "core/serve.hh"
#include "core/sweep.hh"
#include "gpu/trace.hh"

namespace {

using namespace cactus;

void
printUsage()
{
    std::printf(
        "usage:\n"
        "  cactus_run --list                 list registered "
        "benchmarks\n"
        "  cactus_run --bench NAME           run one benchmark\n"
        "  cactus_run --suite SUITE          run a whole suite\n"
        "                                    (SUITE 'all' = registry)\n"
        "  cactus_run --retime TRACE         project a saved trace\n"
        "                                    onto --platform\n"
        "  cactus_run --merge OUT --input A [--input B ...]\n"
        "                                    fold shard checkpoints\n"
        "                                    into one canonical report\n"
        "options:\n"
        "  --platform P    2080ti | 3080 | a100 (for --retime)\n"
        "  --tiny          use the test-size inputs\n"
        "  --full-caches   full RTX 3080 caches instead of the\n"
        "                  scaled experiment configuration\n"
        "  --threads N     host worker threads for block execution\n"
        "                  (0 = all hardware threads, 1 = serial;\n"
        "                  results are identical for any N)\n"
        "  --trace PATH    export the launch trace as JSON lines\n"
        "  --fast-forward  skip replay of launches proven periodic\n"
        "                  (steady-state fast-forward; results are\n"
        "                  bit-identical to a full replay)\n"
        "  --timeout SEC   (--suite) watchdog deadline per benchmark;\n"
        "                  a late benchmark is cancelled at its next\n"
        "                  kernel-launch boundary\n"
        "  --retries N     (--suite) extra attempts for a failed\n"
        "                  benchmark, with exponential backoff\n"
        "  --checkpoint P  (--suite) JSONL manifest of completed\n"
        "                  benchmarks; an interrupted campaign\n"
        "                  resumed with the same manifest re-runs\n"
        "                  only the incomplete ones\n"
        "  --verify        check recorded output digests against the\n"
        "                  golden table; a mismatch is CORRUPT and\n"
        "                  the process exits non-zero\n"
        "  --update-goldens\n"
        "                  record digests into the golden table\n"
        "                  instead of checking them\n"
        "  --goldens PATH  golden table location (default:\n"
        "                  tests/goldens/digests.txt in the source\n"
        "                  tree)\n"
        "  --min-coverage X\n"
        "                  (--suite) treat a run whose smallest\n"
        "                  per-launch sampled-warp coverage is below\n"
        "                  X as CORRUPT\n"
        "  --benchmarks CSV\n"
        "                  (--suite) restrict the campaign to the\n"
        "                  named benchmarks\n"
        "  --sweep KEY=V1,V2,...\n"
        "                  (--suite, repeatable) expand a cartesian\n"
        "                  task matrix over configuration values;\n"
        "                  keys: threads, l1_kb, l2_kb, l2_slices,\n"
        "                  sampled_warps, fast_forward\n"
        "  --shards N --shard-id I\n"
        "                  (--suite) run only the tasks statically\n"
        "                  assigned to shard I of N (by task-digest\n"
        "                  hash; every shard computes the same\n"
        "                  partition)\n"
        "  --coordinate P  (--suite) claim tasks dynamically through\n"
        "                  the shared lease log at P; completions are\n"
        "                  appended as checkpoint records, so the log\n"
        "                  is also a merge input\n"
        "  --worker NAME   (--coordinate) worker name for lease\n"
        "                  records (default: host-pid-epoch, unique\n"
        "                  per process; two live processes sharing a\n"
        "                  name fail fast)\n"
        "  --lease-ttl N   (--coordinate) steal a task whose holder\n"
        "                  missed N of this worker's heartbeats, with\n"
        "                  a fencing token so the zombie's late\n"
        "                  result is abandoned (default 3; 0 disables\n"
        "                  stealing and skips leased tasks)\n"
        "  --beat-interval SEC\n"
        "                  (--coordinate) seconds between heartbeat\n"
        "                  records (default 0.5)\n"
        "  --new-generation\n"
        "                  (--coordinate) open a new lease generation,\n"
        "                  unbinding a crashed fleet's stale leases;\n"
        "                  completed tasks stay completed (rarely\n"
        "                  needed with --lease-ttl > 0)\n"
        "  --cache P       (--suite) persistent result cache: loaded\n"
        "                  before the campaign, consulted before every\n"
        "                  simulation, saved back after\n"
        "  --merge OUT     merge mode: dedup task records from every\n"
        "                  --input by content address and write them\n"
        "                  sorted; conflicting records for one task\n"
        "                  are flagged CORRUPT and excluded\n"
        "  --input P       (--merge, repeatable) a shard checkpoint\n"
        "                  or coordination log to merge; missing or\n"
        "                  empty inputs are warned about and counted,\n"
        "                  not fatal\n"
        "  --strict-inputs (--merge) exit non-zero when any --input\n"
        "                  was missing or empty\n"
        "  --lenient       (--retime) skip malformed trace records\n"
        "                  with a warning instead of failing\n"
        "environment:\n"
        "  CACTUS_FAULT=site:probability:seed\n"
        "                  deterministic fault injection at sites\n"
        "                  alloc | launch | trace-write |\n"
        "                  stats-corrupt | coord-append\n");
}

void
printProfile(const core::BenchmarkProfile &profile)
{
    const analysis::Roofline roof(profile.config);
    std::printf("\n%s (%s/%s): %d kernels, %llu launches, %.3f ms "
                "simulated, %s warp insts\n",
                profile.name.c_str(), profile.suite.c_str(),
                profile.domain.c_str(), profile.kernelCount(),
                static_cast<unsigned long long>(profile.launches),
                profile.totalSeconds * 1e3,
                analysis::fmtCount(profile.totalWarpInsts).c_str());
    std::printf("aggregate: II %.2f, %.2f GIPS -> %s-intensive\n",
                profile.aggregateIntensity(), profile.aggregateGips(),
                analysis::intensityClassName(roof.classifyIntensity(
                    profile.aggregateIntensity())));

    analysis::TextTable table({"kernel", "invocations", "time%", "II",
                               "GIPS", "class"});
    for (const auto &kp : profile.kernels) {
        table.addRow(
            {kp.name, std::to_string(kp.invocations),
             analysis::fmt(profile.totalSeconds > 0
                               ? 100.0 * kp.seconds /
                                     profile.totalSeconds
                               : 0.0,
                           1),
             analysis::fmt(kp.metrics.instIntensity, 2),
             analysis::fmt(kp.metrics.gips, 2),
             analysis::intensityClassName(roof.classifyIntensity(
                 kp.metrics.instIntensity))});
    }
    std::printf("%s", table.render().c_str());
}

/** Verification knobs shared by --suite and --bench runs. */
struct VerifySettings
{
    bool verify = false;         ///< Check digests against goldens.
    bool updateGoldens = false;  ///< Record digests instead.
    std::string goldensPath;     ///< Golden table location.
    double minCoverage = 0;      ///< Coverage floor (0 = off).
};

/** Sharding / coordination / caching knobs for a suite campaign. */
struct ShardSettings
{
    std::vector<core::SweepAxis> axes; ///< --sweep, in option order.
    std::vector<std::string> benchmarks; ///< --benchmarks filter.
    int shards = 1;      ///< Static partition count.
    int shardId = 0;     ///< This process's static shard.
    std::string coordinatePath; ///< Lease log; "" = no coordination.
    std::string workerName;     ///< Lease identity; "" = derived.
    bool newGeneration = false; ///< Unbind a crashed fleet's leases.
    int leaseTtl = 3;           ///< Missed beats before a steal;
                                ///< 0 = no stealing (PR 7 behavior).
    double beatInterval = 0.5;  ///< Seconds between heartbeats.
    std::string cachePath;      ///< Persistent cache; "" = off.
};

/** Globally unique default worker identity: host-pid-epoch. Two
 *  processes can never alias each other (the coordination log fails
 *  fast if they somehow do — see CoordinationLog::beat), and a
 *  supervisor-restarted worker gets a fresh identity, so its dead
 *  predecessor's leases go stale and are stolen rather than
 *  ambiguously inherited. */
std::string
defaultWorkerId()
{
    char host[256] = "host";
    if (::gethostname(host, sizeof host - 1) != 0)
        std::strcpy(host, "host");
    host[sizeof host - 1] = '\0';
    return std::string(host) + "-" + std::to_string(::getpid()) +
        "-" +
        std::to_string(
            static_cast<long long>(::time(nullptr)));
}

int
runSuiteCampaign(const std::vector<core::CampaignTask> &tasks,
                 core::Scale scale, double timeout_seconds,
                 int retries, const std::string &checkpoint_path,
                 const VerifySettings &vs, const ShardSettings &ss)
{
    core::CampaignOptions opts;
    opts.scale = scale;
    opts.timeoutSeconds = timeout_seconds;
    opts.retries = retries;
    opts.checkpointPath = checkpoint_path;
    opts.minCoverage = vs.minCoverage;

    // The persistent cache: warm it from disk, let the campaign
    // consult and fill it, save it back at the end. Capacity is
    // generous — a sweep's working set is the whole matrix.
    std::unique_ptr<core::ResultCache> cache;
    if (!ss.cachePath.empty()) {
        cache = std::make_unique<core::ResultCache>(4096);
        core::ResultCache::LoadStats ls;
        const auto loaded = cache->loadNdjson(ss.cachePath, &ls);
        std::printf("cache: loaded %zu result%s from %s"
                    " (%zu torn, %zu corrupt skipped)\n",
                    loaded, loaded == 1 ? "" : "s",
                    ss.cachePath.c_str(), ls.torn, ls.corrupt);
        opts.cache = cache.get();
    }

    std::unique_ptr<core::CoordinationLog> coordination;
    if (!ss.coordinatePath.empty()) {
        std::string worker = ss.workerName;
        if (worker.empty())
            worker = defaultWorkerId();
        core::CoordinationLog::Options copts;
        copts.newGeneration = ss.newGeneration;
        copts.leaseTtl = ss.leaseTtl;
        copts.beatIntervalSeconds = ss.beatInterval;
        coordination = std::make_unique<core::CoordinationLog>(
            ss.coordinatePath, worker, copts);
        std::printf("coordinating as '%s' (generation %ld, lease "
                    "ttl %d beat%s) via %s\n",
                    worker.c_str(), coordination->generation(),
                    ss.leaseTtl, ss.leaseTtl == 1 ? "" : "s",
                    ss.coordinatePath.c_str());
        opts.coordination = coordination.get();
    }

    core::GoldenTable goldens, updated;
    if (vs.updateGoldens) {
        updated = core::GoldenTable::loadOrEmpty(vs.goldensPath);
        opts.recordGoldens = &updated;
    } else if (vs.verify) {
        goldens = core::GoldenTable::load(vs.goldensPath);
        opts.verifyOutputs = true;
        opts.goldens = &goldens;
    }

    opts.onEntry = [](const core::CampaignEntry &entry) {
        const std::string shown = entry.label.empty()
            ? entry.name
            : entry.name + " [" + entry.label + "]";
        switch (entry.status) {
          case core::RunStatus::OK:
            printProfile(entry.profile);
            break;
          case core::RunStatus::Cached:
            std::printf("\n%s: cached (persistent result cache "
                        "already holds this task)\n",
                        shown.c_str());
            break;
          case core::RunStatus::Skipped:
            std::printf("\n%s: skipped (%s)\n", shown.c_str(),
                        entry.error.empty()
                            ? "checkpoint records a completed run"
                            : entry.error.c_str());
            break;
          case core::RunStatus::Timeout:
            std::printf("\n%s: TIMEOUT after %.1f s: %s\n",
                        shown.c_str(), entry.wallSeconds,
                        entry.error.c_str());
            break;
          case core::RunStatus::Corrupt:
            std::printf("\n%s: CORRUPT: %s\n", shown.c_str(),
                        entry.error.c_str());
            break;
          case core::RunStatus::Failed:
            std::printf("\n%s: FAILED after %d attempt%s: %s\n",
                        shown.c_str(), entry.attempts,
                        entry.attempts == 1 ? "" : "s",
                        entry.error.c_str());
            break;
          case core::RunStatus::Stolen:
            std::printf("\n%s: stolen (%s)\n", shown.c_str(),
                        entry.error.c_str());
            break;
        }
        std::fflush(stdout);
    };

    const auto result = core::runSweep(tasks, opts);

    if (cache) {
        cache->saveNdjson(ss.cachePath);
        std::printf("cache: saved %zu result%s to %s\n",
                    cache->size(), cache->size() == 1 ? "" : "s",
                    ss.cachePath.c_str());
    }

    if (vs.updateGoldens) {
        updated.save(vs.goldensPath);
        std::printf("\nwrote %zu golden digests to %s\n",
                    updated.size(), vs.goldensPath.c_str());
    }

    std::printf("\ncampaign summary:\n");
    analysis::TextTable table({"benchmark", "config", "status",
                               "attempts", "wall s", "min cov",
                               "detail"});
    for (const auto &entry : result.entries) {
        std::string detail = entry.error;
        if (detail.size() > 48)
            detail = detail.substr(0, 45) + "...";
        const bool has_profile =
            entry.status == core::RunStatus::OK ||
            entry.status == core::RunStatus::Skipped ||
            entry.status == core::RunStatus::Cached;
        table.addRow(
            {entry.name,
             entry.label.empty() ? std::string("base") : entry.label,
             core::runStatusName(entry.status),
             std::to_string(entry.attempts),
             analysis::fmt(entry.wallSeconds, 2),
             has_profile
                 ? analysis::fmt(entry.profile.minSampleCoverage, 3)
                 : std::string("-"),
             detail});
    }
    std::printf("%s", table.render().c_str());
    std::printf("campaign: %d ok, %d failed, %d timeout, %d corrupt, "
                "%d skipped, %d cached, %d stolen\n",
                result.okCount, result.failedCount,
                result.timeoutCount, result.corruptCount,
                result.skippedCount, result.cachedCount,
                result.stolenCount);
    return result.allOk() ? 0 : 1;
}

int
runMain(int argc, char **argv)
{
    std::string bench_name, suite_name, trace_path, retime_path;
    std::string checkpoint_path, merge_path;
    std::vector<std::string> merge_inputs;
    std::string platform = "3080";
    bool list = false;
    bool lenient = false;
    bool strict_inputs = false;
    bool fast_forward = false;
    int host_threads = 0; // 0 = all hardware threads.
    int retries = 0;
    double timeout_seconds = 0;
    VerifySettings vs;
    ShardSettings ss;
#ifdef CACTUS_SOURCE_DIR
    vs.goldensPath =
        std::string(CACTUS_SOURCE_DIR) + "/tests/goldens/digests.txt";
#else
    vs.goldensPath = "tests/goldens/digests.txt";
#endif
    core::Scale scale = core::Scale::Small;
    gpu::DeviceConfig cfg = gpu::DeviceConfig::scaledExperiment();

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value after ", arg);
            return argv[++i];
        };
        if (arg == "--list") {
            list = true;
        } else if (arg == "--bench") {
            bench_name = next();
        } else if (arg == "--suite") {
            suite_name = next();
        } else if (arg == "--trace") {
            trace_path = next();
        } else if (arg == "--retime") {
            retime_path = next();
        } else if (arg == "--platform") {
            platform = next();
        } else if (arg == "--tiny") {
            scale = core::Scale::Tiny;
        } else if (arg == "--full-caches") {
            cfg = gpu::DeviceConfig{};
        } else if (arg == "--fast-forward") {
            fast_forward = true;
        } else if (arg == "--threads") {
            // 0 is the documented "all hardware threads" sentinel;
            // anything below that is rejected at parse time, before
            // it can reach the worker pool.
            host_threads = parseNonNegativeInt(next(), "--threads");
        } else if (arg == "--timeout") {
            timeout_seconds = parseDouble(next(), "--timeout");
            if (timeout_seconds < 0)
                fatal("--timeout expects a non-negative duration");
        } else if (arg == "--retries") {
            retries = parseNonNegativeInt(next(), "--retries");
        } else if (arg == "--checkpoint") {
            checkpoint_path = next();
        } else if (arg == "--sweep") {
            ss.axes.push_back(core::parseSweepAxis(next()));
        } else if (arg == "--benchmarks") {
            const std::string csv = next();
            for (std::size_t at = 0; at <= csv.size();) {
                auto comma = csv.find(',', at);
                if (comma == std::string::npos)
                    comma = csv.size();
                if (comma > at)
                    ss.benchmarks.push_back(
                        csv.substr(at, comma - at));
                at = comma + 1;
            }
            if (ss.benchmarks.empty())
                fatal("--benchmarks expects a comma-separated list");
        } else if (arg == "--shards") {
            ss.shards = parsePositiveInt(next(), "--shards");
        } else if (arg == "--shard-id") {
            ss.shardId = parseNonNegativeInt(next(), "--shard-id");
        } else if (arg == "--coordinate") {
            ss.coordinatePath = next();
        } else if (arg == "--worker") {
            ss.workerName = next();
        } else if (arg == "--new-generation") {
            ss.newGeneration = true;
        } else if (arg == "--lease-ttl") {
            ss.leaseTtl = parseNonNegativeInt(next(), "--lease-ttl");
        } else if (arg == "--beat-interval") {
            ss.beatInterval = parseDouble(next(), "--beat-interval");
            if (ss.beatInterval < 0)
                fatal("--beat-interval expects a non-negative "
                      "duration");
        } else if (arg == "--cache") {
            ss.cachePath = next();
        } else if (arg == "--merge") {
            merge_path = next();
        } else if (arg == "--input") {
            merge_inputs.push_back(next());
        } else if (arg == "--strict-inputs") {
            strict_inputs = true;
        } else if (arg == "--verify") {
            vs.verify = true;
        } else if (arg == "--update-goldens") {
            vs.updateGoldens = true;
        } else if (arg == "--goldens") {
            vs.goldensPath = next();
        } else if (arg == "--min-coverage") {
            vs.minCoverage = parseDouble(next(), "--min-coverage");
            if (vs.minCoverage < 0 || vs.minCoverage > 1)
                fatal("--min-coverage expects a fraction in [0, 1]");
        } else if (arg == "--lenient") {
            lenient = true;
        } else if (arg == "--help" || arg == "-h") {
            printUsage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            printUsage();
            return 1;
        }
    }

    // Applied after option parsing so they compose with --full-caches
    // in either order.
    cfg.hostThreads = host_threads;
    cfg.fastForward = fast_forward;

    const auto &registry = core::Registry::instance();

    if (!merge_path.empty()) {
        if (merge_inputs.empty())
            fatal("--merge needs at least one --input");
        const auto mr = core::mergeCheckpoints(merge_inputs,
                                               merge_path);
        std::printf("merged %zu input%s (%zu missing): %zu record%s, "
                    "%zu duplicate%s deduped, %zu zombie%s "
                    "discarded, %zu legacy skipped, "
                    "%zu line%s ignored\n",
                    merge_inputs.size(),
                    merge_inputs.size() == 1 ? "" : "s",
                    mr.missingInputs, mr.records,
                    mr.records == 1 ? "" : "s", mr.duplicates,
                    mr.duplicates == 1 ? "" : "s",
                    mr.zombieDuplicates,
                    mr.zombieDuplicates == 1 ? "" : "s", mr.legacy,
                    mr.ignored, mr.ignored == 1 ? "" : "s");
        // Every task completed under a stolen lease is attributed to
        // exactly one winning fence — the self-healing audit trail.
        for (const auto &[task, fence] : mr.recoveredTasks)
            std::printf("recovered task %s: fence %ld wins\n",
                        task.c_str(), fence);
        for (const auto &task : mr.corruptTasks)
            std::printf("CORRUPT task %s: conflicting records for "
                        "one content address\n",
                        task.c_str());
        std::printf("merge: %zu tasks, %zu corrupt -> %s\n", mr.tasks,
                    mr.corruptTasks.size(), merge_path.c_str());
        if (strict_inputs && mr.missingInputs > 0) {
            std::fprintf(stderr,
                         "merge: %zu input%s missing and "
                         "--strict-inputs set\n",
                         mr.missingInputs,
                         mr.missingInputs == 1 ? "" : "s");
            return 1;
        }
        return mr.clean() ? 0 : 1;
    }

    if (ss.shardId < 0 || ss.shardId >= ss.shards)
        fatal("--shard-id must lie in [0, --shards)");

    if (!retime_path.empty()) {
        gpu::DeviceConfig target;
        if (platform == "2080ti")
            target = gpu::DeviceConfig::rtx2080Ti();
        else if (platform == "a100")
            target = gpu::DeviceConfig::a100();
        else if (platform == "3080")
            target = gpu::DeviceConfig{};
        else
            fatal("unknown platform '", platform, "'");
        std::size_t skipped = 0;
        auto launches =
            gpu::readLaunchTrace(retime_path, lenient, &skipped);
        double original = 0;
        for (const auto &l : launches)
            original += l.timing.seconds;
        const double projected = gpu::retimeTrace(target, launches);
        std::printf("trace %s: %zu launches\n", retime_path.c_str(),
                    launches.size());
        if (skipped > 0)
            std::printf("  (skipped %zu malformed record%s)\n",
                        skipped, skipped == 1 ? "" : "s");
        std::printf("  recorded total : %.3f ms\n", original * 1e3);
        std::printf("  on %-12s: %.3f ms (%.2fx)\n",
                    target.name.c_str(), projected * 1e3,
                    projected > 0 ? original / projected : 0.0);
        return 0;
    }

    if (list) {
        analysis::TextTable table({"name", "suite", "domain"});
        for (const auto *info : registry.list())
            table.addRow({info->name, info->suite, info->domain});
        std::printf("%s", table.render().c_str());
        return 0;
    }

    if (!bench_name.empty()) {
        if (!registry.contains(bench_name))
            fatal("unknown benchmark '", bench_name,
                  "' (try --list)");
        // Run with trace capture if requested: re-run on a device we
        // own so the raw launches are available.
        auto bench = registry.create(bench_name, scale);
        gpu::Device dev(cfg);
        bench->run(dev);
        // Aggregate through the same harness path as campaigns.
        const auto profile = core::profileFromDevice(*bench, dev, cfg);
        printProfile(profile);
        if (cfg.fastForward) {
            const auto &ffs = dev.fastForwardSummary();
            std::printf("fast-forward: %llu replayed, %llu skipped, "
                        "%llu window%s, %llu divergence%s\n",
                        static_cast<unsigned long long>(
                            ffs.replayedLaunches),
                        static_cast<unsigned long long>(
                            ffs.skippedLaunches),
                        static_cast<unsigned long long>(
                            ffs.windowsEstablished),
                        ffs.windowsEstablished == 1 ? "" : "s",
                        static_cast<unsigned long long>(
                            ffs.divergences),
                        ffs.divergences == 1 ? "" : "s");
        }

        if (vs.updateGoldens || vs.verify) {
            const auto digest = bench->verify();
            const std::string scale_token = core::scaleToken(scale);
            if (vs.updateGoldens) {
                if (!digest)
                    fatal(bench_name,
                          " recorded no output to make a golden of");
                auto table =
                    core::GoldenTable::loadOrEmpty(vs.goldensPath);
                table.set(bench_name, scale_token, *digest);
                table.save(vs.goldensPath);
                std::printf("\nrecorded golden %s for %s/%s in %s\n",
                            digest->hex().c_str(), bench_name.c_str(),
                            scale_token.c_str(),
                            vs.goldensPath.c_str());
            } else {
                const auto table =
                    core::GoldenTable::load(vs.goldensPath);
                const auto golden =
                    table.find(bench_name, scale_token);
                if (!digest || !golden ||
                    golden->digest != digest->digest ||
                    golden->elements != digest->elements) {
                    std::printf(
                        "\n%s: CORRUPT: output digest %s does not "
                        "match golden %s\n",
                        bench_name.c_str(),
                        digest ? digest->hex().c_str() : "(none)",
                        golden ? golden->hex().c_str()
                               : "(none recorded)");
                    return 1;
                }
                std::printf("\n%s: output digest %s matches golden\n",
                            bench_name.c_str(), digest->hex().c_str());
            }
        }
        if (!trace_path.empty()) {
            const auto n =
                gpu::writeLaunchTrace(trace_path, dev.launches());
            if (n < dev.launches().size())
                throw TraceError(
                    "short trace write: " + std::to_string(n) +
                    " of " +
                    std::to_string(dev.launches().size()) +
                    " records reached '" + trace_path + "'");
            std::printf("\nwrote %zu launch records to %s\n", n,
                        trace_path.c_str());
        }
        return 0;
    }

    if (!suite_name.empty() || !ss.benchmarks.empty()) {
        if (suite_name.empty())
            suite_name = "all"; // --benchmarks alone selects from all.
        auto infos =
            registry.list(suite_name == "all" ? "" : suite_name);
        if (infos.empty())
            fatal("unknown or empty suite '", suite_name, "'");

        if (!ss.benchmarks.empty()) {
            std::vector<const core::BenchmarkInfo *> picked;
            for (const auto &name : ss.benchmarks) {
                const core::BenchmarkInfo *found = nullptr;
                for (const auto *info : infos) {
                    if (info->name == name) {
                        found = info;
                        break;
                    }
                }
                if (found == nullptr)
                    fatal("--benchmarks: '", name,
                          "' is not in suite '", suite_name, "'");
                picked.push_back(found);
            }
            infos = std::move(picked);
        }

        // Expand the sweep matrix, then keep this shard's slice. The
        // matrix order (benchmark-major, first axis slowest) and the
        // partition are pure functions of the command line, so every
        // shard agrees on the assignment with no communication.
        const auto points = core::expandSweep(cfg, ss.axes);
        const std::string scale_tok = core::scaleToken(scale);
        std::vector<core::CampaignTask> tasks;
        std::size_t elsewhere = 0;
        for (const auto *info : infos) {
            for (const auto &point : points) {
                const auto task_id = core::sweepTaskId(
                    info->name, scale_tok, point.config);
                if (!core::taskInShard(task_id, ss.shards,
                                       ss.shardId)) {
                    ++elsewhere;
                    continue;
                }
                tasks.push_back({*info, point.config, point.label});
            }
        }
        if (ss.shards > 1)
            std::printf("shard %d/%d: %zu of %zu tasks\n", ss.shardId,
                        ss.shards, tasks.size(),
                        tasks.size() + elsewhere);
        return runSuiteCampaign(tasks, scale, timeout_seconds,
                                retries, checkpoint_path, vs, ss);
    }

    printUsage();
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    // The single place a cactus::Error may end the process: every
    // library-level failure below main is a recoverable throw.
    return guardedMain([&] { return runMain(argc, argv); });
}
