/**
 * @file
 * The command-line driver for the suite — the equivalent of the
 * paper's artifact run scripts. Lists registered benchmarks, runs one
 * (or a whole suite) under the profiler, prints the per-kernel profile
 * with roofline classification, and optionally exports the launch
 * trace for offline analysis.
 *
 * Usage:
 *   cactus_run --list
 *   cactus_run --bench GMS [--tiny] [--full-caches] [--trace out.jsonl]
 *   cactus_run --suite Cactus [--tiny]
 *   cactus_run --retime trace.jsonl --platform a100
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/report.hh"
#include "analysis/roofline.hh"
#include "common/logging.hh"
#include "core/harness.hh"
#include "gpu/trace.hh"

namespace {

using namespace cactus;

void
printUsage()
{
    std::printf(
        "usage:\n"
        "  cactus_run --list                 list registered "
        "benchmarks\n"
        "  cactus_run --bench NAME           run one benchmark\n"
        "  cactus_run --suite SUITE          run a whole suite\n"
        "  cactus_run --retime TRACE         project a saved trace\n"
        "                                    onto --platform\n"
        "options:\n"
        "  --platform P    2080ti | 3080 | a100 (for --retime)\n"
        "  --tiny          use the test-size inputs\n"
        "  --full-caches   full RTX 3080 caches instead of the\n"
        "                  scaled experiment configuration\n"
        "  --threads N     host worker threads for block execution\n"
        "                  (0 = all hardware threads, 1 = serial;\n"
        "                  results are identical for any N)\n"
        "  --trace PATH    export the launch trace as JSON lines\n");
}

void
printProfile(const core::BenchmarkProfile &profile)
{
    const analysis::Roofline roof(profile.config);
    std::printf("\n%s (%s/%s): %d kernels, %llu launches, %.3f ms "
                "simulated, %s warp insts\n",
                profile.name.c_str(), profile.suite.c_str(),
                profile.domain.c_str(), profile.kernelCount(),
                static_cast<unsigned long long>(profile.launches),
                profile.totalSeconds * 1e3,
                analysis::fmtCount(profile.totalWarpInsts).c_str());
    std::printf("aggregate: II %.2f, %.2f GIPS -> %s-intensive\n",
                profile.aggregateIntensity(), profile.aggregateGips(),
                analysis::intensityClassName(roof.classifyIntensity(
                    profile.aggregateIntensity())));

    analysis::TextTable table({"kernel", "invocations", "time%", "II",
                               "GIPS", "class"});
    for (const auto &kp : profile.kernels) {
        table.addRow(
            {kp.name, std::to_string(kp.invocations),
             analysis::fmt(profile.totalSeconds > 0
                               ? 100.0 * kp.seconds /
                                     profile.totalSeconds
                               : 0.0,
                           1),
             analysis::fmt(kp.metrics.instIntensity, 2),
             analysis::fmt(kp.metrics.gips, 2),
             analysis::intensityClassName(roof.classifyIntensity(
                 kp.metrics.instIntensity))});
    }
    std::printf("%s", table.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string bench_name, suite_name, trace_path, retime_path;
    std::string platform = "3080";
    bool list = false;
    int host_threads = 0; // 0 = all hardware threads.
    core::Scale scale = core::Scale::Small;
    gpu::DeviceConfig cfg = gpu::DeviceConfig::scaledExperiment();

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value after ", arg);
            return argv[++i];
        };
        if (arg == "--list") {
            list = true;
        } else if (arg == "--bench") {
            bench_name = next();
        } else if (arg == "--suite") {
            suite_name = next();
        } else if (arg == "--trace") {
            trace_path = next();
        } else if (arg == "--retime") {
            retime_path = next();
        } else if (arg == "--platform") {
            platform = next();
        } else if (arg == "--tiny") {
            scale = core::Scale::Tiny;
        } else if (arg == "--full-caches") {
            cfg = gpu::DeviceConfig{};
        } else if (arg == "--threads") {
            host_threads = std::atoi(next().c_str());
            if (host_threads < 0)
                fatal("--threads expects a non-negative count");
        } else if (arg == "--help" || arg == "-h") {
            printUsage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            printUsage();
            return 1;
        }
    }

    // Applied after option parsing so it composes with --full-caches
    // in either order.
    cfg.hostThreads = host_threads;

    const auto &registry = core::Registry::instance();

    if (!retime_path.empty()) {
        gpu::DeviceConfig target;
        if (platform == "2080ti")
            target = gpu::DeviceConfig::rtx2080Ti();
        else if (platform == "a100")
            target = gpu::DeviceConfig::a100();
        else if (platform == "3080")
            target = gpu::DeviceConfig{};
        else
            fatal("unknown platform '", platform, "'");
        auto launches = gpu::readLaunchTrace(retime_path);
        double original = 0;
        for (const auto &l : launches)
            original += l.timing.seconds;
        const double projected = gpu::retimeTrace(target, launches);
        std::printf("trace %s: %zu launches\n", retime_path.c_str(),
                    launches.size());
        std::printf("  recorded total : %.3f ms\n", original * 1e3);
        std::printf("  on %-12s: %.3f ms (%.2fx)\n",
                    target.name.c_str(), projected * 1e3,
                    projected > 0 ? original / projected : 0.0);
        return 0;
    }

    if (list) {
        analysis::TextTable table({"name", "suite", "domain"});
        for (const auto *info : registry.list())
            table.addRow({info->name, info->suite, info->domain});
        std::printf("%s", table.render().c_str());
        return 0;
    }

    if (!bench_name.empty()) {
        if (!registry.contains(bench_name))
            fatal("unknown benchmark '", bench_name,
                  "' (try --list)");
        // Run with trace capture if requested: re-run on a device we
        // own so the raw launches are available.
        auto bench = registry.create(bench_name, scale);
        gpu::Device dev(cfg);
        bench->run(dev);
        core::BenchmarkProfile profile;
        {
            // Aggregate through the same harness path.
            profile.name = bench->name();
            profile.suite = bench->suite();
            profile.domain = bench->domain();
            profile.config = cfg;
            profile.kernels =
                gpu::aggregateLaunches(dev.launches(), cfg);
            profile.launches = dev.launches().size();
            for (const auto &kp : profile.kernels) {
                profile.totalSeconds += kp.seconds;
                profile.totalWarpInsts += kp.warpInsts;
                profile.totalDramSectors +=
                    kp.dramReadSectors + kp.dramWriteSectors;
            }
        }
        printProfile(profile);
        if (!trace_path.empty()) {
            const auto n =
                gpu::writeLaunchTrace(trace_path, dev.launches());
            std::printf("\nwrote %zu launch records to %s\n", n,
                        trace_path.c_str());
        }
        return 0;
    }

    if (!suite_name.empty()) {
        const auto infos = registry.list(suite_name);
        if (infos.empty())
            fatal("unknown or empty suite '", suite_name, "'");
        for (const auto *info : infos)
            printProfile(core::runProfiled(info->name, scale, cfg));
        return 0;
    }

    printUsage();
    return 1;
}
