/**
 * @file
 * The command-line driver for the suite — the equivalent of the
 * paper's artifact run scripts. Lists registered benchmarks, runs one
 * (or a whole suite) under the profiler, prints the per-kernel profile
 * with roofline classification, and optionally exports the launch
 * trace for offline analysis.
 *
 * Suite runs go through the fault-tolerant campaign runner: one
 * failing or hanging benchmark is recorded in the summary while the
 * rest of the suite completes, and an interrupted campaign resumed
 * with the same --checkpoint manifest re-runs only the incomplete
 * benchmarks. The process exits non-zero only when a benchmark failed
 * or timed out — never by abort.
 *
 * Usage:
 *   cactus_run --list
 *   cactus_run --bench GMS [--tiny] [--full-caches] [--trace out.jsonl]
 *   cactus_run --suite Cactus [--tiny] [--timeout SEC] [--retries N]
 *              [--checkpoint manifest.jsonl]
 *   cactus_run --retime trace.jsonl --platform a100 [--lenient]
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/report.hh"
#include "analysis/roofline.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "common/parse.hh"
#include "core/campaign.hh"
#include "core/harness.hh"
#include "gpu/trace.hh"

namespace {

using namespace cactus;

void
printUsage()
{
    std::printf(
        "usage:\n"
        "  cactus_run --list                 list registered "
        "benchmarks\n"
        "  cactus_run --bench NAME           run one benchmark\n"
        "  cactus_run --suite SUITE          run a whole suite\n"
        "                                    (SUITE 'all' = registry)\n"
        "  cactus_run --retime TRACE         project a saved trace\n"
        "                                    onto --platform\n"
        "options:\n"
        "  --platform P    2080ti | 3080 | a100 (for --retime)\n"
        "  --tiny          use the test-size inputs\n"
        "  --full-caches   full RTX 3080 caches instead of the\n"
        "                  scaled experiment configuration\n"
        "  --threads N     host worker threads for block execution\n"
        "                  (0 = all hardware threads, 1 = serial;\n"
        "                  results are identical for any N)\n"
        "  --trace PATH    export the launch trace as JSON lines\n"
        "  --fast-forward  skip replay of launches proven periodic\n"
        "                  (steady-state fast-forward; results are\n"
        "                  bit-identical to a full replay)\n"
        "  --timeout SEC   (--suite) watchdog deadline per benchmark;\n"
        "                  a late benchmark is cancelled at its next\n"
        "                  kernel-launch boundary\n"
        "  --retries N     (--suite) extra attempts for a failed\n"
        "                  benchmark, with exponential backoff\n"
        "  --checkpoint P  (--suite) JSONL manifest of completed\n"
        "                  benchmarks; an interrupted campaign\n"
        "                  resumed with the same manifest re-runs\n"
        "                  only the incomplete ones\n"
        "  --verify        check recorded output digests against the\n"
        "                  golden table; a mismatch is CORRUPT and\n"
        "                  the process exits non-zero\n"
        "  --update-goldens\n"
        "                  record digests into the golden table\n"
        "                  instead of checking them\n"
        "  --goldens PATH  golden table location (default:\n"
        "                  tests/goldens/digests.txt in the source\n"
        "                  tree)\n"
        "  --min-coverage X\n"
        "                  (--suite) treat a run whose smallest\n"
        "                  per-launch sampled-warp coverage is below\n"
        "                  X as CORRUPT\n"
        "  --lenient       (--retime) skip malformed trace records\n"
        "                  with a warning instead of failing\n"
        "environment:\n"
        "  CACTUS_FAULT=site:probability:seed\n"
        "                  deterministic fault injection at sites\n"
        "                  alloc | launch | trace-write |\n"
        "                  stats-corrupt\n");
}

void
printProfile(const core::BenchmarkProfile &profile)
{
    const analysis::Roofline roof(profile.config);
    std::printf("\n%s (%s/%s): %d kernels, %llu launches, %.3f ms "
                "simulated, %s warp insts\n",
                profile.name.c_str(), profile.suite.c_str(),
                profile.domain.c_str(), profile.kernelCount(),
                static_cast<unsigned long long>(profile.launches),
                profile.totalSeconds * 1e3,
                analysis::fmtCount(profile.totalWarpInsts).c_str());
    std::printf("aggregate: II %.2f, %.2f GIPS -> %s-intensive\n",
                profile.aggregateIntensity(), profile.aggregateGips(),
                analysis::intensityClassName(roof.classifyIntensity(
                    profile.aggregateIntensity())));

    analysis::TextTable table({"kernel", "invocations", "time%", "II",
                               "GIPS", "class"});
    for (const auto &kp : profile.kernels) {
        table.addRow(
            {kp.name, std::to_string(kp.invocations),
             analysis::fmt(profile.totalSeconds > 0
                               ? 100.0 * kp.seconds /
                                     profile.totalSeconds
                               : 0.0,
                           1),
             analysis::fmt(kp.metrics.instIntensity, 2),
             analysis::fmt(kp.metrics.gips, 2),
             analysis::intensityClassName(roof.classifyIntensity(
                 kp.metrics.instIntensity))});
    }
    std::printf("%s", table.render().c_str());
}

/** Verification knobs shared by --suite and --bench runs. */
struct VerifySettings
{
    bool verify = false;         ///< Check digests against goldens.
    bool updateGoldens = false;  ///< Record digests instead.
    std::string goldensPath;     ///< Golden table location.
    double minCoverage = 0;      ///< Coverage floor (0 = off).
};

int
runSuiteCampaign(const std::vector<const core::BenchmarkInfo *> &infos,
                 core::Scale scale, const gpu::DeviceConfig &cfg,
                 double timeout_seconds, int retries,
                 const std::string &checkpoint_path,
                 const VerifySettings &vs)
{
    core::CampaignOptions opts;
    opts.scale = scale;
    opts.config = cfg;
    opts.timeoutSeconds = timeout_seconds;
    opts.retries = retries;
    opts.checkpointPath = checkpoint_path;
    opts.minCoverage = vs.minCoverage;

    core::GoldenTable goldens, updated;
    if (vs.updateGoldens) {
        updated = core::GoldenTable::loadOrEmpty(vs.goldensPath);
        opts.recordGoldens = &updated;
    } else if (vs.verify) {
        goldens = core::GoldenTable::load(vs.goldensPath);
        opts.verifyOutputs = true;
        opts.goldens = &goldens;
    }

    opts.onEntry = [](const core::CampaignEntry &entry) {
        switch (entry.status) {
          case core::RunStatus::OK:
            printProfile(entry.profile);
            break;
          case core::RunStatus::Skipped:
            std::printf("\n%s: skipped (checkpoint records a "
                        "completed run)\n",
                        entry.name.c_str());
            break;
          case core::RunStatus::Timeout:
            std::printf("\n%s: TIMEOUT after %.1f s: %s\n",
                        entry.name.c_str(), entry.wallSeconds,
                        entry.error.c_str());
            break;
          case core::RunStatus::Corrupt:
            std::printf("\n%s: CORRUPT: %s\n", entry.name.c_str(),
                        entry.error.c_str());
            break;
          case core::RunStatus::Failed:
            std::printf("\n%s: FAILED after %d attempt%s: %s\n",
                        entry.name.c_str(), entry.attempts,
                        entry.attempts == 1 ? "" : "s",
                        entry.error.c_str());
            break;
        }
        std::fflush(stdout);
    };

    std::vector<core::BenchmarkInfo> benchmarks;
    benchmarks.reserve(infos.size());
    for (const auto *info : infos)
        benchmarks.push_back(*info);

    const auto result = core::runCampaign(benchmarks, opts);

    if (vs.updateGoldens) {
        updated.save(vs.goldensPath);
        std::printf("\nwrote %zu golden digests to %s\n",
                    updated.size(), vs.goldensPath.c_str());
    }

    std::printf("\ncampaign summary:\n");
    analysis::TextTable table({"benchmark", "status", "attempts",
                               "wall s", "min cov", "detail"});
    for (const auto &entry : result.entries) {
        std::string detail = entry.error;
        if (detail.size() > 48)
            detail = detail.substr(0, 45) + "...";
        const bool has_profile =
            entry.status == core::RunStatus::OK ||
            entry.status == core::RunStatus::Skipped;
        table.addRow(
            {entry.name, core::runStatusName(entry.status),
             std::to_string(entry.attempts),
             analysis::fmt(entry.wallSeconds, 2),
             has_profile
                 ? analysis::fmt(entry.profile.minSampleCoverage, 3)
                 : std::string("-"),
             detail});
    }
    std::printf("%s", table.render().c_str());
    std::printf("campaign: %d ok, %d failed, %d timeout, %d corrupt, "
                "%d skipped\n",
                result.okCount, result.failedCount,
                result.timeoutCount, result.corruptCount,
                result.skippedCount);
    return result.allOk() ? 0 : 1;
}

int
runMain(int argc, char **argv)
{
    std::string bench_name, suite_name, trace_path, retime_path;
    std::string checkpoint_path;
    std::string platform = "3080";
    bool list = false;
    bool lenient = false;
    bool fast_forward = false;
    int host_threads = 0; // 0 = all hardware threads.
    int retries = 0;
    double timeout_seconds = 0;
    VerifySettings vs;
#ifdef CACTUS_SOURCE_DIR
    vs.goldensPath =
        std::string(CACTUS_SOURCE_DIR) + "/tests/goldens/digests.txt";
#else
    vs.goldensPath = "tests/goldens/digests.txt";
#endif
    core::Scale scale = core::Scale::Small;
    gpu::DeviceConfig cfg = gpu::DeviceConfig::scaledExperiment();

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value after ", arg);
            return argv[++i];
        };
        if (arg == "--list") {
            list = true;
        } else if (arg == "--bench") {
            bench_name = next();
        } else if (arg == "--suite") {
            suite_name = next();
        } else if (arg == "--trace") {
            trace_path = next();
        } else if (arg == "--retime") {
            retime_path = next();
        } else if (arg == "--platform") {
            platform = next();
        } else if (arg == "--tiny") {
            scale = core::Scale::Tiny;
        } else if (arg == "--full-caches") {
            cfg = gpu::DeviceConfig{};
        } else if (arg == "--fast-forward") {
            fast_forward = true;
        } else if (arg == "--threads") {
            // 0 is the documented "all hardware threads" sentinel;
            // anything below that is rejected at parse time, before
            // it can reach the worker pool.
            host_threads = parseNonNegativeInt(next(), "--threads");
        } else if (arg == "--timeout") {
            timeout_seconds = parseDouble(next(), "--timeout");
            if (timeout_seconds < 0)
                fatal("--timeout expects a non-negative duration");
        } else if (arg == "--retries") {
            retries = parseNonNegativeInt(next(), "--retries");
        } else if (arg == "--checkpoint") {
            checkpoint_path = next();
        } else if (arg == "--verify") {
            vs.verify = true;
        } else if (arg == "--update-goldens") {
            vs.updateGoldens = true;
        } else if (arg == "--goldens") {
            vs.goldensPath = next();
        } else if (arg == "--min-coverage") {
            vs.minCoverage = parseDouble(next(), "--min-coverage");
            if (vs.minCoverage < 0 || vs.minCoverage > 1)
                fatal("--min-coverage expects a fraction in [0, 1]");
        } else if (arg == "--lenient") {
            lenient = true;
        } else if (arg == "--help" || arg == "-h") {
            printUsage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            printUsage();
            return 1;
        }
    }

    // Applied after option parsing so they compose with --full-caches
    // in either order.
    cfg.hostThreads = host_threads;
    cfg.fastForward = fast_forward;

    const auto &registry = core::Registry::instance();

    if (!retime_path.empty()) {
        gpu::DeviceConfig target;
        if (platform == "2080ti")
            target = gpu::DeviceConfig::rtx2080Ti();
        else if (platform == "a100")
            target = gpu::DeviceConfig::a100();
        else if (platform == "3080")
            target = gpu::DeviceConfig{};
        else
            fatal("unknown platform '", platform, "'");
        std::size_t skipped = 0;
        auto launches =
            gpu::readLaunchTrace(retime_path, lenient, &skipped);
        double original = 0;
        for (const auto &l : launches)
            original += l.timing.seconds;
        const double projected = gpu::retimeTrace(target, launches);
        std::printf("trace %s: %zu launches\n", retime_path.c_str(),
                    launches.size());
        if (skipped > 0)
            std::printf("  (skipped %zu malformed record%s)\n",
                        skipped, skipped == 1 ? "" : "s");
        std::printf("  recorded total : %.3f ms\n", original * 1e3);
        std::printf("  on %-12s: %.3f ms (%.2fx)\n",
                    target.name.c_str(), projected * 1e3,
                    projected > 0 ? original / projected : 0.0);
        return 0;
    }

    if (list) {
        analysis::TextTable table({"name", "suite", "domain"});
        for (const auto *info : registry.list())
            table.addRow({info->name, info->suite, info->domain});
        std::printf("%s", table.render().c_str());
        return 0;
    }

    if (!bench_name.empty()) {
        if (!registry.contains(bench_name))
            fatal("unknown benchmark '", bench_name,
                  "' (try --list)");
        // Run with trace capture if requested: re-run on a device we
        // own so the raw launches are available.
        auto bench = registry.create(bench_name, scale);
        gpu::Device dev(cfg);
        bench->run(dev);
        // Aggregate through the same harness path as campaigns.
        const auto profile = core::profileFromDevice(*bench, dev, cfg);
        printProfile(profile);
        if (cfg.fastForward) {
            const auto &ffs = dev.fastForwardSummary();
            std::printf("fast-forward: %llu replayed, %llu skipped, "
                        "%llu window%s, %llu divergence%s\n",
                        static_cast<unsigned long long>(
                            ffs.replayedLaunches),
                        static_cast<unsigned long long>(
                            ffs.skippedLaunches),
                        static_cast<unsigned long long>(
                            ffs.windowsEstablished),
                        ffs.windowsEstablished == 1 ? "" : "s",
                        static_cast<unsigned long long>(
                            ffs.divergences),
                        ffs.divergences == 1 ? "" : "s");
        }

        if (vs.updateGoldens || vs.verify) {
            const auto digest = bench->verify();
            const std::string scale_token = core::scaleToken(scale);
            if (vs.updateGoldens) {
                if (!digest)
                    fatal(bench_name,
                          " recorded no output to make a golden of");
                auto table =
                    core::GoldenTable::loadOrEmpty(vs.goldensPath);
                table.set(bench_name, scale_token, *digest);
                table.save(vs.goldensPath);
                std::printf("\nrecorded golden %s for %s/%s in %s\n",
                            digest->hex().c_str(), bench_name.c_str(),
                            scale_token.c_str(),
                            vs.goldensPath.c_str());
            } else {
                const auto table =
                    core::GoldenTable::load(vs.goldensPath);
                const auto golden =
                    table.find(bench_name, scale_token);
                if (!digest || !golden ||
                    golden->digest != digest->digest ||
                    golden->elements != digest->elements) {
                    std::printf(
                        "\n%s: CORRUPT: output digest %s does not "
                        "match golden %s\n",
                        bench_name.c_str(),
                        digest ? digest->hex().c_str() : "(none)",
                        golden ? golden->hex().c_str()
                               : "(none recorded)");
                    return 1;
                }
                std::printf("\n%s: output digest %s matches golden\n",
                            bench_name.c_str(), digest->hex().c_str());
            }
        }
        if (!trace_path.empty()) {
            const auto n =
                gpu::writeLaunchTrace(trace_path, dev.launches());
            if (n < dev.launches().size())
                throw TraceError(
                    "short trace write: " + std::to_string(n) +
                    " of " +
                    std::to_string(dev.launches().size()) +
                    " records reached '" + trace_path + "'");
            std::printf("\nwrote %zu launch records to %s\n", n,
                        trace_path.c_str());
        }
        return 0;
    }

    if (!suite_name.empty()) {
        const auto infos =
            registry.list(suite_name == "all" ? "" : suite_name);
        if (infos.empty())
            fatal("unknown or empty suite '", suite_name, "'");
        return runSuiteCampaign(infos, scale, cfg, timeout_seconds,
                                retries, checkpoint_path, vs);
    }

    printUsage();
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    // The single place a cactus::Error may end the process: every
    // library-level failure below main is a recoverable throw.
    return guardedMain([&] { return runMain(argc, argv); });
}
