/**
 * @file
 * The characterization-as-a-service daemon. Binds a local TCP socket,
 * answers newline-delimited JSON characterization requests
 * (benchmark x DeviceConfig knobs x scale), and serves repeats from
 * the content-addressed LRU cache in core/serve.{hh,cc} — a cache hit
 * is provably equivalent to a fresh run because every result is a
 * pure, digest-keyed function of (benchmark, config, scale).
 *
 * Usage:
 *   cactus_serve [--port N] [--port-file PATH] [--cache N]
 *                [--cache-file PATH] [--timeout SEC] [--sim-threads N]
 *                [--max-inflight N] [--max-queue N] [--max-line BYTES]
 *                [--idle-timeout SEC] [--io-deadline SEC]
 *                [--drain-timeout SEC]
 *
 *   --port N        TCP port on 127.0.0.1 (0 = ephemeral, default)
 *   --port-file P   write the bound port to P once listening (lets
 *                   scripts use --port 0 without racing); written
 *                   atomically (temp + rename) so a watcher never
 *                   reads a half-written port
 *   --cache N       LRU capacity in results (default 128)
 *   --cache-file P  persistent cache: load results from P before
 *                   serving (absent file = cold start) and save the
 *                   cache back to P on shutdown — the same NDJSON
 *                   format cactus_run --cache reads and writes, so
 *                   campaigns and the daemon share warm state. The
 *                   save is crash-safe (write-temp + fsync + atomic
 *                   rename) and retried; a save that still fails is a
 *                   warning, never a dirty exit.
 *   --timeout SEC   per-request watchdog; a simulation over deadline
 *                   is cancelled at its next launch boundary and the
 *                   client gets a "timeout" error response
 *   --sim-threads N host threads per simulation when the request
 *                   does not say (0 = all hardware threads;
 *                   default 1 — closed-loop clients supply the
 *                   concurrency, so per-request fan-out mostly adds
 *                   oversubscription)
 *
 * Overload control (see DESIGN.md §9):
 *   --max-inflight N   concurrent simulations (default 4); cache
 *                      hits, coalesced joins, ping and health never
 *                      consume a slot
 *   --max-queue N      admission queue depth (default 64); beyond it
 *                      requests get a fast, well-formed "overloaded"
 *                      error — never a hang, never a cached entry
 *   --max-line BYTES   per-connection request-line cap (default 64
 *                      KiB); an oversized line gets a config error
 *                      and the connection closes
 *   --idle-timeout SEC close a connection idle this long between
 *                      requests (0 = never, default)
 *   --io-deadline SEC  a started request line must complete, and a
 *                      response write must finish, within this span
 *                      (0 = no deadline, default) — the slowloris
 *                      guard
 *
 * Shutdown: SIGTERM or SIGINT triggers graceful drain: the listener
 * closes, new simulations are refused ("overloaded: server
 * draining"), queued and in-flight work runs to completion — response
 * bytes on the wire — for up to --drain-timeout seconds (default 10;
 * 0 = cancel immediately). Work outliving the deadline is cancelled
 * cooperatively (same CancelToken machinery as the campaign
 * watchdog). Either way the process exits 0 after printing a
 * request-count summary with the drain result.
 */

#include <csignal>
#include <cstdio>
#include <string>

#include <unistd.h>

#include "common/atomic_file.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "common/parse.hh"
#include "core/serve.hh"

namespace {

using namespace cactus;

/** Self-pipe for async-signal-safe shutdown notification. */
int g_signal_pipe[2] = {-1, -1};

extern "C" void
onSignal(int)
{
    const char byte = 's';
    [[maybe_unused]] const ssize_t n =
        ::write(g_signal_pipe[1], &byte, 1);
}

int
runMain(int argc, char **argv)
{
    core::ServeOptions opts;
    std::string port_file, cache_file;
    double drain_timeout = 10.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--port") {
            opts.port = parseNonNegativeInt(next(), "--port");
            if (opts.port > 65535)
                fatal("--port expects a port number <= 65535");
        } else if (arg == "--port-file") {
            port_file = next();
        } else if (arg == "--cache") {
            opts.cacheCapacity = static_cast<std::size_t>(
                parsePositiveInt(next(), "--cache"));
        } else if (arg == "--cache-file") {
            cache_file = next();
        } else if (arg == "--timeout") {
            opts.timeoutSeconds = parseDouble(next(), "--timeout");
            if (opts.timeoutSeconds < 0)
                fatal("--timeout expects a non-negative duration");
        } else if (arg == "--sim-threads") {
            opts.defaultHostThreads =
                parseNonNegativeInt(next(), "--sim-threads");
        } else if (arg == "--max-inflight") {
            opts.maxInflight =
                parsePositiveInt(next(), "--max-inflight");
        } else if (arg == "--max-queue") {
            opts.maxQueue = parseNonNegativeInt(next(), "--max-queue");
        } else if (arg == "--max-line") {
            opts.maxLineBytes = static_cast<std::size_t>(
                parsePositiveInt(next(), "--max-line"));
        } else if (arg == "--idle-timeout") {
            opts.idleTimeoutSeconds =
                parseDouble(next(), "--idle-timeout");
            if (opts.idleTimeoutSeconds < 0)
                fatal("--idle-timeout expects a non-negative "
                      "duration");
        } else if (arg == "--io-deadline") {
            opts.ioDeadlineSeconds =
                parseDouble(next(), "--io-deadline");
            if (opts.ioDeadlineSeconds < 0)
                fatal("--io-deadline expects a non-negative duration");
        } else if (arg == "--drain-timeout") {
            drain_timeout = parseDouble(next(), "--drain-timeout");
            if (drain_timeout < 0)
                fatal("--drain-timeout expects a non-negative "
                      "duration");
        } else {
            fatal("unknown argument: ", arg);
        }
    }

    if (::pipe(g_signal_pipe) != 0)
        fatal("cannot create signal pipe");
    struct sigaction sa = {};
    sa.sa_handler = onSignal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);

    core::Server server(opts);
    if (!cache_file.empty()) {
        core::ResultCache::LoadStats ls;
        const auto loaded =
            server.cache().loadNdjson(cache_file, &ls);
        std::printf("cactus_serve: warmed %zu result%s from %s"
                    " (%zu torn, %zu corrupt skipped)\n",
                    loaded, loaded == 1 ? "" : "s",
                    cache_file.c_str(), ls.torn, ls.corrupt);
    }
    server.start();
    std::printf("cactus_serve: listening on %s:%d "
                "(cache %zu results, timeout %s)\n",
                opts.bindAddress.c_str(), server.port(),
                opts.cacheCapacity,
                opts.timeoutSeconds > 0
                    ? (std::to_string(opts.timeoutSeconds) + " s")
                          .c_str()
                    : "off");
    std::fflush(stdout);

    if (!port_file.empty()) {
        // Atomic (temp + rename): a watcher polling for this file
        // either sees nothing or the complete port number, never a
        // partial write. The injector is deliberately disabled here —
        // the cache-write chaos site must not be able to break the
        // port handshake the harness depends on.
        atomicWriteFile(port_file,
                        std::to_string(server.port()) + "\n",
                        FaultInjector{});
    }

    // Block until a shutdown signal arrives.
    char byte;
    while (::read(g_signal_pipe[0], &byte, 1) < 0) {
        // EINTR: a signal interrupted the read before writing the
        // pipe — retry; any other failure means the pipe is gone.
        if (errno != EINTR)
            break;
    }

    // Graceful degradation: drain first (accepted work completes,
    // response bytes on the wire), then stop. Whatever outlives the
    // drain deadline is cancelled cooperatively inside drain().
    const bool drained = server.drain(drain_timeout);
    if (!drained)
        warn("drain timeout (", drain_timeout,
             " s) expired; cancelling in-flight work");
    server.stop();

    if (!cache_file.empty()) {
        // The save is retried so a chaos run with a cache-write fault
        // probability does not turn shutdown into a coin flip; a
        // persistent failure degrades to a warning (the previous
        // complete file is still intact on disk) rather than a dirty
        // exit.
        bool saved = false;
        for (int attempt = 0; attempt < 3 && !saved; ++attempt) {
            try {
                server.cache().saveNdjson(cache_file);
                saved = true;
            } catch (const Error &e) {
                warn("cache save attempt ", attempt + 1,
                     " failed: ", e.what());
            }
        }
        if (saved)
            std::printf("cactus_serve: saved %zu result%s to %s\n",
                        server.cache().size(),
                        server.cache().size() == 1 ? "" : "s",
                        cache_file.c_str());
        else
            warn("cache not saved; previous '", cache_file,
                 "' left intact");
    }
    const auto stats = server.stats();
    std::printf("cactus_serve: shutdown: %llu requests "
                "(%llu computed, %llu cache hits, %llu coalesced), "
                "%llu errors, %llu overloaded, %llu evictions, "
                "%zu cached results, drain %s\n",
                static_cast<unsigned long long>(stats.requests),
                static_cast<unsigned long long>(stats.computed),
                static_cast<unsigned long long>(stats.cacheHits),
                static_cast<unsigned long long>(stats.coalesced),
                static_cast<unsigned long long>(stats.errors),
                static_cast<unsigned long long>(stats.overloaded),
                static_cast<unsigned long long>(stats.evictions),
                server.cache().size(),
                drained ? "clean" : "timed out");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return guardedMain([&] { return runMain(argc, argv); });
}
