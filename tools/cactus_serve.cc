/**
 * @file
 * The characterization-as-a-service daemon. Binds a local TCP socket,
 * answers newline-delimited JSON characterization requests
 * (benchmark x DeviceConfig knobs x scale), and serves repeats from
 * the content-addressed LRU cache in core/serve.{hh,cc} — a cache hit
 * is provably equivalent to a fresh run because every result is a
 * pure, digest-keyed function of (benchmark, config, scale).
 *
 * Usage:
 *   cactus_serve [--port N] [--port-file PATH] [--cache N]
 *                [--cache-file PATH] [--timeout SEC] [--sim-threads N]
 *
 *   --port N        TCP port on 127.0.0.1 (0 = ephemeral, default)
 *   --port-file P   write the bound port to P once listening (lets
 *                   scripts use --port 0 without racing)
 *   --cache N       LRU capacity in results (default 128)
 *   --cache-file P  persistent cache: load results from P before
 *                   serving (absent file = cold start) and save the
 *                   cache back to P on shutdown — the same NDJSON
 *                   format cactus_run --cache reads and writes, so
 *                   campaigns and the daemon share warm state
 *   --timeout SEC   per-request watchdog; a simulation over deadline
 *                   is cancelled at its next launch boundary and the
 *                   client gets a "timeout" error response
 *   --sim-threads N host threads per simulation when the request
 *                   does not say (0 = all hardware threads;
 *                   default 1 — closed-loop clients supply the
 *                   concurrency, so per-request fan-out mostly adds
 *                   oversubscription)
 *
 * Shutdown: SIGTERM or SIGINT. In-flight simulations are cancelled
 * cooperatively (same CancelToken machinery as the campaign
 * watchdog), every connection is unblocked and joined, and the
 * process exits 0 after printing a request-count summary.
 */

#include <csignal>
#include <cstdio>
#include <string>

#include <unistd.h>

#include "common/error.hh"
#include "common/logging.hh"
#include "common/parse.hh"
#include "core/serve.hh"

namespace {

using namespace cactus;

/** Self-pipe for async-signal-safe shutdown notification. */
int g_signal_pipe[2] = {-1, -1};

extern "C" void
onSignal(int)
{
    const char byte = 's';
    [[maybe_unused]] const ssize_t n =
        ::write(g_signal_pipe[1], &byte, 1);
}

int
runMain(int argc, char **argv)
{
    core::ServeOptions opts;
    std::string port_file, cache_file;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--port") {
            opts.port = parseNonNegativeInt(next(), "--port");
            if (opts.port > 65535)
                fatal("--port expects a port number <= 65535");
        } else if (arg == "--port-file") {
            port_file = next();
        } else if (arg == "--cache") {
            opts.cacheCapacity = static_cast<std::size_t>(
                parsePositiveInt(next(), "--cache"));
        } else if (arg == "--cache-file") {
            cache_file = next();
        } else if (arg == "--timeout") {
            opts.timeoutSeconds = parseDouble(next(), "--timeout");
            if (opts.timeoutSeconds < 0)
                fatal("--timeout expects a non-negative duration");
        } else if (arg == "--sim-threads") {
            opts.defaultHostThreads =
                parseNonNegativeInt(next(), "--sim-threads");
        } else {
            fatal("unknown argument: ", arg);
        }
    }

    if (::pipe(g_signal_pipe) != 0)
        fatal("cannot create signal pipe");
    struct sigaction sa = {};
    sa.sa_handler = onSignal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);

    core::Server server(opts);
    if (!cache_file.empty()) {
        const auto loaded = server.cache().loadNdjson(cache_file);
        std::printf("cactus_serve: warmed %zu result%s from %s\n",
                    loaded, loaded == 1 ? "" : "s",
                    cache_file.c_str());
    }
    server.start();
    std::printf("cactus_serve: listening on %s:%d "
                "(cache %zu results, timeout %s)\n",
                opts.bindAddress.c_str(), server.port(),
                opts.cacheCapacity,
                opts.timeoutSeconds > 0
                    ? (std::to_string(opts.timeoutSeconds) + " s")
                          .c_str()
                    : "off");
    std::fflush(stdout);

    if (!port_file.empty()) {
        std::FILE *f = std::fopen(port_file.c_str(), "w");
        if (!f)
            fatal("cannot write port file '", port_file, "'");
        std::fprintf(f, "%d\n", server.port());
        std::fclose(f);
    }

    // Block until a shutdown signal arrives.
    char byte;
    while (::read(g_signal_pipe[0], &byte, 1) < 0) {
        // EINTR: a signal interrupted the read before writing the
        // pipe — retry; any other failure means the pipe is gone.
        if (errno != EINTR)
            break;
    }

    server.stop();
    if (!cache_file.empty()) {
        server.cache().saveNdjson(cache_file);
        std::printf("cactus_serve: saved %zu result%s to %s\n",
                    server.cache().size(),
                    server.cache().size() == 1 ? "" : "s",
                    cache_file.c_str());
    }
    const auto stats = server.stats();
    std::printf("cactus_serve: shutdown: %llu requests "
                "(%llu computed, %llu cache hits, %llu coalesced), "
                "%llu errors, %llu evictions, %zu cached results\n",
                static_cast<unsigned long long>(stats.requests),
                static_cast<unsigned long long>(stats.computed),
                static_cast<unsigned long long>(stats.cacheHits),
                static_cast<unsigned long long>(stats.coalesced),
                static_cast<unsigned long long>(stats.errors),
                static_cast<unsigned long long>(stats.evictions),
                server.cache().size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return guardedMain([&] { return runMain(argc, argv); });
}
