/**
 * @file
 * The fleet supervisor: forks N `cactus_run --coordinate` workers
 * over one shared coordination log, restarts the ones that crash
 * (with exponential backoff and a fleet-wide restart budget), and
 * finishes by folding the log into one canonical merged report.
 *
 * The supervisor is deliberately dumb about work: it never assigns
 * tasks, never reads results, never arbitrates. All of that lives in
 * the coordination log's lease/heartbeat/fencing protocol
 * (core/coord.hh) — workers claim tasks dynamically, steal from dead
 * peers after the lease TTL, and fence off zombies, so the sweep
 * completes even if the supervisor restarts nothing at all. Restarts
 * only restore parallelism; correctness never depends on them.
 *
 * A built-in chaos mode (--chaos-kills) SIGKILLs randomly chosen live
 * workers mid-sweep on a deterministic schedule (seeded by
 * --chaos-seed through the same SplitMix64 stream fault injection
 * uses), which is the kill -9 harness the CI kill-smoke job drives:
 * after any number of kills the merged report must be byte-identical
 * to a serial run's, with 0 corrupt tasks and 0 desync records.
 *
 * Usage:
 *   cactus_fleet --workers 4 --coordinate coord.jsonl \
 *       --out merged.jsonl [--chaos-kills 2 --chaos-seed 7] \
 *       -- --benchmarks lbm,spmv --tiny --sweep l2_kb=256,512
 */

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hh"
#include "common/fault.hh"
#include "common/logging.hh"
#include "common/parse.hh"
#include "core/coord.hh"
#include "core/sweep.hh"

namespace {

using namespace cactus;

volatile sig_atomic_t g_stop_signal = 0;

void
onStopSignal(int sig)
{
    g_stop_signal = sig;
}

void
printUsage()
{
    std::printf(
        "usage:\n"
        "  cactus_fleet --workers N --coordinate LOG --out MERGED\n"
        "               [options] -- <cactus_run sweep args>\n"
        "options:\n"
        "  --workers N         worker processes to fork (required)\n"
        "  --coordinate LOG    shared coordination log (required);\n"
        "                      also the merge input\n"
        "  --out MERGED        merged canonical report (required)\n"
        "  --runner PATH       cactus_run binary (default: next to\n"
        "                      this executable)\n"
        "  --max-restarts N    fleet-wide crash-restart budget\n"
        "                      (default 8)\n"
        "  --restart-backoff SEC\n"
        "                      base restart delay, doubled per\n"
        "                      restart of the same slot\n"
        "                      (default 0.25)\n"
        "  --lease-ttl N       forwarded to workers (default 3)\n"
        "  --beat-interval SEC forwarded to workers (default 0.5)\n"
        "  --chaos-kills K     SIGKILL K randomly chosen live\n"
        "                      workers mid-sweep (default 0)\n"
        "  --chaos-seed S      deterministic kill schedule seed\n"
        "                      (default 1)\n"
        "  --chaos-interval SEC\n"
        "                      delay before each chaos kill\n"
        "                      (default 1.0)\n"
        "everything after '--' is passed to every cactus_run worker\n"
        "(e.g. --benchmarks lbm,spmv --tiny --sweep l2_kb=256,512).\n");
}

/** One worker slot: a restartable seat in the fleet, not a specific
 *  process. Each incarnation gets a fresh host-pid-epoch worker id
 *  from cactus_run, so a dead incarnation's leases go stale and are
 *  stolen instead of being ambiguously inherited. */
struct Slot
{
    pid_t pid = -1;          ///< Live child, or -1.
    bool done = false;       ///< Exited with status 0.
    bool abandoned = false;  ///< Crashed with no budget left.
    int restarts = 0;        ///< Times this slot was restarted.
    std::chrono::steady_clock::time_point restartAt{};
    bool restartPending = false;
};

int
fleetMain(int argc, char **argv)
{
    int workers = 0;
    int max_restarts = 8;
    int lease_ttl = 3;
    int chaos_kills = 0;
    std::uint64_t chaos_seed = 1;
    double restart_backoff = 0.25;
    double beat_interval = 0.5;
    double chaos_interval = 1.0;
    std::string coordinate_path, out_path, runner;
    std::vector<std::string> passthrough;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value after ", arg);
            return argv[++i];
        };
        if (arg == "--") {
            for (++i; i < argc; ++i)
                passthrough.push_back(argv[i]);
            break;
        } else if (arg == "--workers") {
            workers = parsePositiveInt(next(), "--workers");
        } else if (arg == "--coordinate") {
            coordinate_path = next();
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--runner") {
            runner = next();
        } else if (arg == "--max-restarts") {
            max_restarts =
                parseNonNegativeInt(next(), "--max-restarts");
        } else if (arg == "--restart-backoff") {
            restart_backoff = parseDouble(next(), "--restart-backoff");
            if (restart_backoff < 0)
                fatal("--restart-backoff expects a non-negative "
                      "duration");
        } else if (arg == "--lease-ttl") {
            lease_ttl = parseNonNegativeInt(next(), "--lease-ttl");
        } else if (arg == "--beat-interval") {
            beat_interval = parseDouble(next(), "--beat-interval");
            if (beat_interval < 0)
                fatal("--beat-interval expects a non-negative "
                      "duration");
        } else if (arg == "--chaos-kills") {
            chaos_kills = parseNonNegativeInt(next(), "--chaos-kills");
        } else if (arg == "--chaos-seed") {
            chaos_seed = parseUint64(next(), "--chaos-seed");
        } else if (arg == "--chaos-interval") {
            chaos_interval = parseDouble(next(), "--chaos-interval");
            if (chaos_interval < 0)
                fatal("--chaos-interval expects a non-negative "
                      "duration");
        } else if (arg == "--help" || arg == "-h") {
            printUsage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            printUsage();
            return 1;
        }
    }

    if (workers <= 0 || coordinate_path.empty() || out_path.empty()) {
        printUsage();
        return 1;
    }
    if (passthrough.empty())
        fatal("no worker arguments given after '--' (the workers "
              "would have nothing to sweep)");

    if (runner.empty()) {
        // Default: the cactus_run next to this executable.
        std::string self = argv[0];
        const auto slash = self.find_last_of('/');
        runner = (slash == std::string::npos
                      ? std::string()
                      : self.substr(0, slash + 1)) +
            "cactus_run";
    }
    if (::access(runner.c_str(), X_OK) != 0)
        fatal("runner '", runner, "' is not executable (",
              std::strerror(errno), "); pass --runner");

    // The worker command line: the sweep definition from the caller
    // plus this fleet's coordination settings. No --worker id: each
    // incarnation derives its own unique host-pid-epoch identity.
    std::vector<std::string> worker_args;
    worker_args.push_back(runner);
    worker_args.push_back("--coordinate");
    worker_args.push_back(coordinate_path);
    worker_args.push_back("--lease-ttl");
    worker_args.push_back(std::to_string(lease_ttl));
    worker_args.push_back("--beat-interval");
    {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%g", beat_interval);
        worker_args.push_back(buf);
    }
    for (const auto &arg : passthrough)
        worker_args.push_back(arg);

    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = onStopSignal;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);

    std::vector<Slot> slots(static_cast<std::size_t>(workers));

    const auto spawn = [&](int slot_idx) -> pid_t {
        const std::string log_path = coordinate_path + ".w" +
            std::to_string(slot_idx) + ".log";
        const pid_t pid = ::fork();
        if (pid < 0)
            fatal("fork failed: ", std::strerror(errno));
        if (pid == 0) {
            // Child: quiet stdin, per-slot output log (append, so a
            // restarted incarnation's output follows its
            // predecessor's), then exec the worker.
            const int devnull = ::open("/dev/null", O_RDONLY);
            if (devnull >= 0)
                ::dup2(devnull, STDIN_FILENO);
            const int logfd = ::open(log_path.c_str(),
                                     O_WRONLY | O_CREAT | O_APPEND,
                                     0644);
            if (logfd >= 0) {
                ::dup2(logfd, STDOUT_FILENO);
                ::dup2(logfd, STDERR_FILENO);
            }
            std::vector<char *> cargv;
            cargv.reserve(worker_args.size() + 1);
            for (auto &a : worker_args)
                cargv.push_back(const_cast<char *>(a.c_str()));
            cargv.push_back(nullptr);
            ::execv(runner.c_str(), cargv.data());
            std::fprintf(stderr, "exec '%s' failed: %s\n",
                         runner.c_str(), std::strerror(errno));
            ::_exit(127);
        }
        return pid;
    };

    std::printf("fleet: %d workers over %s (lease ttl %d, beat "
                "interval %gs, restart budget %d)\n",
                workers, coordinate_path.c_str(), lease_ttl,
                beat_interval, max_restarts);
    for (int s = 0; s < workers; ++s) {
        slots[static_cast<std::size_t>(s)].pid = spawn(s);
        std::printf("fleet: worker %d started (pid %ld) -> %s.w%d."
                    "log\n",
                    s, static_cast<long>(
                           slots[static_cast<std::size_t>(s)].pid),
                    coordinate_path.c_str(), s);
    }
    std::fflush(stdout);

    const auto start = std::chrono::steady_clock::now();
    auto next_chaos = start + std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(chaos_interval));
    auto next_progress = start + std::chrono::seconds(2);
    int restarts_used = 0;
    int kills_done = 0;
    bool budget_exhausted = false;

    const auto live_count = [&] {
        int n = 0;
        for (const auto &slot : slots)
            n += slot.pid > 0 ? 1 : 0;
        return n;
    };
    const auto all_settled = [&] {
        for (const auto &slot : slots)
            if (!slot.done && !slot.abandoned)
                return false;
        return true;
    };

    while (!all_settled() && g_stop_signal == 0) {
        const auto now = std::chrono::steady_clock::now();

        // Reap exits and schedule restarts.
        for (std::size_t s = 0; s < slots.size(); ++s) {
            Slot &slot = slots[s];
            if (slot.pid <= 0)
                continue;
            int status = 0;
            const pid_t reaped =
                ::waitpid(slot.pid, &status, WNOHANG);
            if (reaped != slot.pid)
                continue;
            const pid_t old_pid = slot.pid;
            slot.pid = -1;
            if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
                slot.done = true;
                std::printf("fleet: worker %zu (pid %ld) finished\n",
                            s, static_cast<long>(old_pid));
                std::fflush(stdout);
                continue;
            }
            const std::string why = WIFSIGNALED(status)
                ? "killed by signal " +
                    std::to_string(WTERMSIG(status))
                : "exited with status " +
                    std::to_string(WIFEXITED(status)
                                       ? WEXITSTATUS(status)
                                       : status);
            if (restarts_used >= max_restarts) {
                slot.abandoned = true;
                budget_exhausted = true;
                std::printf("fleet: worker %zu (pid %ld) %s; restart "
                            "budget exhausted (%d/%d) — abandoning "
                            "the slot (surviving workers will steal "
                            "its leases)\n",
                            s, static_cast<long>(old_pid),
                            why.c_str(), restarts_used, max_restarts);
                std::fflush(stdout);
                continue;
            }
            ++restarts_used;
            ++slot.restarts;
            const double backoff = restart_backoff *
                static_cast<double>(1 << std::min(slot.restarts - 1,
                                                  16));
            slot.restartPending = true;
            slot.restartAt = now + std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(backoff));
            std::printf("fleet: worker %zu (pid %ld) %s; restarting "
                        "(restart %d/%d, backoff %.2fs)\n",
                        s, static_cast<long>(old_pid), why.c_str(),
                        restarts_used, max_restarts, backoff);
            std::fflush(stdout);
        }

        // Launch due restarts.
        for (std::size_t s = 0; s < slots.size(); ++s) {
            Slot &slot = slots[s];
            if (!slot.restartPending || now < slot.restartAt)
                continue;
            slot.restartPending = false;
            slot.pid = spawn(static_cast<int>(s));
            std::printf("fleet: worker %zu restarted (pid %ld)\n", s,
                        static_cast<long>(slot.pid));
            std::fflush(stdout);
        }

        // Chaos: SIGKILL a deterministically chosen live worker.
        if (kills_done < chaos_kills && now >= next_chaos) {
            const int live = live_count();
            if (live > 0) {
                const double u = FaultInjector::unitValue(
                    chaos_seed,
                    static_cast<std::uint64_t>(kills_done));
                int pick = static_cast<int>(
                    u * static_cast<double>(live));
                pick = std::min(pick, live - 1);
                for (std::size_t s = 0; s < slots.size(); ++s) {
                    if (slots[s].pid <= 0)
                        continue;
                    if (pick-- == 0) {
                        std::printf("fleet: chaos kill %d/%d: "
                                    "SIGKILL worker %zu (pid %ld)\n",
                                    kills_done + 1, chaos_kills, s,
                                    static_cast<long>(slots[s].pid));
                        std::fflush(stdout);
                        ::kill(slots[s].pid, SIGKILL);
                        break;
                    }
                }
                ++kills_done;
                next_chaos = now + std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(chaos_interval));
            }
        }

        // Periodic progress from the log — read-only, no records.
        if (now >= next_progress) {
            try {
                const auto stats =
                    core::CoordinationLog::inspect(coordinate_path);
                std::printf("fleet: progress: %zu done, %zu leases "
                            "(%zu steals), %zu beats, %zu torn, "
                            "%zu desync\n",
                            stats.dones, stats.leases, stats.steals,
                            stats.beats, stats.torn, stats.desync);
                std::fflush(stdout);
            } catch (const Error &) {
                // The log may not exist yet; progress is cosmetic.
            }
            next_progress = now + std::chrono::seconds(2);
        }

        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    if (g_stop_signal != 0) {
        std::printf("fleet: signal %d: stopping workers\n",
                    static_cast<int>(g_stop_signal));
        for (auto &slot : slots)
            if (slot.pid > 0)
                ::kill(slot.pid, SIGTERM);
        for (auto &slot : slots) {
            if (slot.pid <= 0)
                continue;
            int status = 0;
            ::waitpid(slot.pid, &status, 0);
            slot.pid = -1;
        }
        return 130;
    }

    // The fleet has settled: fold the coordination log into the
    // canonical merged report — byte-identical to a serial run when
    // the protocol held (the CI kill-smoke job cmp-checks exactly
    // that).
    const auto mr = core::mergeCheckpoints({coordinate_path},
                                           out_path);
    const auto stats =
        core::CoordinationLog::inspect(coordinate_path);

    std::printf("fleet: coordination log: %zu beats, %zu leases "
                "(%zu steals), %zu releases, %zu dones, %zu torn, "
                "%zu desync, %zu workers, generation %ld\n",
                stats.beats, stats.leases, stats.steals,
                stats.releases, stats.dones, stats.torn, stats.desync,
                stats.workers, stats.maxGeneration);
    for (const auto &[task, fence] : mr.recoveredTasks)
        std::printf("fleet: recovered task %s: fence %ld wins\n",
                    task.c_str(), fence);
    std::printf("fleet: merge: %zu tasks, %zu corrupt, %zu zombie "
                "duplicate%s discarded -> %s\n",
                mr.tasks, mr.corruptTasks.size(), mr.zombieDuplicates,
                mr.zombieDuplicates == 1 ? "" : "s",
                out_path.c_str());
    std::printf("fleet: %d restart%s used, %d chaos kill%s "
                "delivered\n",
                restarts_used, restarts_used == 1 ? "" : "s",
                kills_done, kills_done == 1 ? "" : "s");

    const bool ok = !budget_exhausted && mr.clean() &&
        stats.desync == 0;
    std::printf("fleet: %s\n", ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    return guardedMain([&] { return fleetMain(argc, argv); });
}
