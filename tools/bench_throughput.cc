/**
 * @file
 * Host-side throughput benchmark: measures the wall-clock cost of
 * *simulating* each workload (functional sweep + hierarchy replay) at
 * several host worker-thread counts and writes the measurements to
 * BENCH_host.json, so the speedup from parallel-replay work is
 * tracked in-repo across PRs. Simulated GPU time is a model output
 * and is identical at every thread count; this tool times the
 * simulator itself.
 *
 * Usage:
 *   bench_throughput [--suite SUITE] [--bench NAME] [--small]
 *                    [--threads N[,M...]] [--repeats R]
 *                    [--out BENCH_host.json]
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hh"
#include "common/logging.hh"
#include "common/parse.hh"
#include "core/benchmark.hh"
#include "gpu/device.hh"

namespace {

using namespace cactus;
using core::Registry;
using core::Scale;

double
timeOneRun(const core::BenchmarkInfo &info, Scale scale, int threads)
{
    gpu::DeviceConfig cfg = gpu::DeviceConfig::scaledExperiment();
    cfg.hostThreads = threads;
    gpu::Device dev(cfg);
    auto bench = Registry::instance().create(info.name, scale);
    const auto start = std::chrono::steady_clock::now();
    bench->run(dev);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count();
}

struct Row
{
    std::string name;
    std::string suite;
    std::vector<double> seconds; ///< Aligned with the thread list.
};

int
runMain(int argc, char **argv)
{
    std::string suite;
    std::string bench_name;
    std::string out_path = "BENCH_host.json";
    std::vector<int> thread_counts = {1, 8};
    Scale scale = Scale::Tiny;
    int repeats = 3;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--suite") {
            suite = next();
        } else if (arg == "--bench") {
            bench_name = next();
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--small") {
            scale = Scale::Small;
        } else if (arg == "--repeats") {
            repeats = parseInt(next(), "--repeats");
        } else if (arg == "--threads") {
            thread_counts.clear();
            const std::string list = next();
            for (std::size_t pos = 0; pos <= list.size();) {
                auto comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                thread_counts.push_back(parseInt(
                    list.substr(pos, comma - pos), "--threads"));
                pos = comma + 1;
            }
        } else {
            fatal("unknown argument: ", arg);
        }
    }
    if (thread_counts.empty() || repeats < 1)
        fatal("need at least one thread count and one repeat");

    std::vector<Row> rows;
    for (const auto *info : Registry::instance().list(suite)) {
        if (!bench_name.empty() && info->name != bench_name)
            continue;
        Row row{info->name, info->suite, {}};
        for (const int threads : thread_counts) {
            double best = 0;
            for (int r = 0; r < repeats; ++r) {
                const double s = timeOneRun(*info, scale, threads);
                if (r == 0 || s < best)
                    best = s;
            }
            row.seconds.push_back(best);
        }
        rows.push_back(row);
        std::printf("%-14s", row.name.c_str());
        for (std::size_t t = 0; t < thread_counts.size(); ++t)
            std::printf("  t%d %8.3f ms", thread_counts[t],
                        row.seconds[t] * 1e3);
        if (thread_counts.size() > 1 && row.seconds.back() > 0)
            std::printf("  speedup %.2fx",
                        row.seconds.front() / row.seconds.back());
        std::printf("\n");
    }
    if (rows.empty())
        fatal("no benchmarks matched");

    std::FILE *out = std::fopen(out_path.c_str(), "w");
    if (!out)
        fatal("cannot open ", out_path, " for writing");
    std::fprintf(out, "{\n  \"scale\": \"%s\",\n",
                 scale == Scale::Tiny ? "tiny" : "small");
    std::fprintf(out, "  \"repeats\": %d,\n", repeats);
    std::fprintf(out, "  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(out, "  \"thread_counts\": [");
    for (std::size_t t = 0; t < thread_counts.size(); ++t)
        std::fprintf(out, "%s%d", t ? ", " : "", thread_counts[t]);
    std::fprintf(out, "],\n  \"benchmarks\": [\n");
    std::vector<double> totals(thread_counts.size(), 0.0);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        std::fprintf(out,
                     "    {\"name\": \"%s\", \"suite\": \"%s\", "
                     "\"seconds\": [",
                     row.name.c_str(), row.suite.c_str());
        for (std::size_t t = 0; t < row.seconds.size(); ++t) {
            std::fprintf(out, "%s%.6f", t ? ", " : "",
                         row.seconds[t]);
            totals[t] += row.seconds[t];
        }
        std::fprintf(out, "]}%s\n",
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"total_seconds\": [");
    for (std::size_t t = 0; t < totals.size(); ++t)
        std::fprintf(out, "%s%.6f", t ? ", " : "", totals[t]);
    std::fprintf(out, "]\n}\n");
    std::fclose(out);
    std::printf("wrote %s (%zu benchmarks)\n", out_path.c_str(),
                rows.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return guardedMain([&] { return runMain(argc, argv); });
}
