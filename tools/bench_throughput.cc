/**
 * @file
 * Host-side throughput benchmark: measures the wall-clock cost of
 * *simulating* each workload (functional sweep + hierarchy replay) at
 * several host worker-thread counts and writes the measurements to
 * BENCH_host.json, so the speedup from parallel-replay work is
 * tracked in-repo across PRs. Simulated GPU time is a model output
 * and is identical at every thread count; this tool times the
 * simulator itself.
 *
 * Usage:
 *   bench_throughput [--suite SUITE] [--bench NAME] [--small]
 *                    [--threads N[,M...]] [--repeats R]
 *                    [--fast-forward]
 *                    [--baseline BENCH_host.json]
 *                    [--out BENCH_host.json]
 *
 * --baseline compares the fresh measurements against a previously
 * written BENCH_host.json: per-benchmark speedup ratios are printed
 * for every thread count the two runs share, and any benchmark that
 * regressed by more than 10% beyond run-to-run noise is flagged (and
 * counted in the exit status summary line, without failing the run —
 * wall-clock measurements on shared CI hosts are advisory).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/parse.hh"
#include "core/benchmark.hh"
#include "gpu/device.hh"
#include "gpu/digest.hh"

namespace {

using namespace cactus;
using core::Registry;
using core::Scale;

double
timeOneRun(const core::BenchmarkInfo &info, Scale scale, int threads,
           bool fast_forward)
{
    gpu::DeviceConfig cfg = gpu::DeviceConfig::scaledExperiment();
    cfg.hostThreads = threads;
    cfg.fastForward = fast_forward;
    gpu::Device dev(cfg);
    auto bench = Registry::instance().create(info.name, scale);
    const auto start = std::chrono::steady_clock::now();
    bench->run(dev);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count();
}

struct Row
{
    std::string name;
    std::string suite;
    std::vector<double> seconds; ///< Aligned with the thread list.
};

/** A previously written BENCH_host.json, reduced to what the compare
 *  mode needs: the thread-count list and per-benchmark timings. */
struct Baseline
{
    std::vector<int> threadCounts;
    std::vector<Row> rows;

    const Row *
    find(const std::string &name) const
    {
        for (const auto &row : rows)
            if (row.name == name)
                return &row;
        return nullptr;
    }
};

/** Extract the bracketed list following "key": [ in @p text. */
std::string
bracketList(const std::string &text, const std::string &key,
            std::size_t from, const std::string &path)
{
    const std::size_t k = text.find("\"" + key + "\"", from);
    if (k == std::string::npos)
        throw ConfigError("baseline " + path + ": missing \"" + key +
                          "\"");
    const std::size_t open = text.find('[', k);
    const std::size_t close = text.find(']', open);
    if (open == std::string::npos || close == std::string::npos)
        throw ConfigError("baseline " + path + ": malformed \"" + key +
                          "\" list");
    return text.substr(open + 1, close - open - 1);
}

/**
 * Parse a BENCH_host.json previously written by this tool. The format
 * is this tool's own fixed output — a purpose-built scanner keeps the
 * comparison dependency-free; anything unexpected throws ConfigError.
 */
Baseline
loadBaseline(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw ConfigError("cannot open baseline '" + path + "'");
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    Baseline base;
    {
        std::stringstream list(
            bracketList(text, "thread_counts", 0, path));
        std::string tok;
        while (std::getline(list, tok, ','))
            base.threadCounts.push_back(
                parseInt(tok.find_first_not_of(" \t") == std::string::npos
                             ? tok
                             : tok.substr(tok.find_first_not_of(" \t")),
                         "baseline thread_counts"));
    }

    std::size_t pos = text.find("\"benchmarks\"");
    if (pos == std::string::npos)
        throw ConfigError("baseline " + path +
                          ": missing \"benchmarks\"");
    while ((pos = text.find("{\"name\": \"", pos)) !=
           std::string::npos) {
        const std::size_t name_begin = pos + 10;
        const std::size_t name_end = text.find('"', name_begin);
        if (name_end == std::string::npos)
            throw ConfigError("baseline " + path +
                              ": unterminated benchmark name");
        Row row;
        row.name = text.substr(name_begin, name_end - name_begin);
        std::stringstream list(
            bracketList(text, "seconds", name_end, path));
        std::string tok;
        while (std::getline(list, tok, ','))
            row.seconds.push_back(parseDouble(
                tok.find_first_not_of(" \t") == std::string::npos
                    ? tok
                    : tok.substr(tok.find_first_not_of(" \t")),
                "baseline seconds"));
        if (row.seconds.size() != base.threadCounts.size())
            throw ConfigError("baseline " + path + ": benchmark '" +
                              row.name +
                              "' has a seconds list that does not "
                              "match thread_counts");
        base.rows.push_back(std::move(row));
        pos = name_end;
    }
    if (base.rows.empty())
        throw ConfigError("baseline " + path +
                          ": no benchmark entries");
    return base;
}

/** One prior measurement epoch from an existing BENCH_host.json's
 *  "runs" history. */
struct RunRecord
{
    int run = 0;
    std::vector<int> threadCounts;
    std::vector<double> totalSeconds;
};

/**
 * Load the accumulated "runs" history from a previously written
 * BENCH_host.json, so each rewrite appends this measurement epoch
 * instead of discarding the trend. Absent file or a pre-history file
 * (no "runs" key) yields an empty list — the history starts here.
 */
std::vector<RunRecord>
loadRunHistory(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return {};
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    std::vector<RunRecord> runs;
    std::size_t pos = text.find("\"runs\"");
    if (pos == std::string::npos)
        return runs;
    const auto trimmed = [](const std::string &tok) {
        const auto at = tok.find_first_not_of(" \t");
        return at == std::string::npos ? tok : tok.substr(at);
    };
    while ((pos = text.find("{\"run\": ", pos)) !=
           std::string::npos) {
        const std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            throw ConfigError("history " + path +
                              ": unterminated run entry");
        RunRecord rec;
        rec.run = parseInt(text.substr(pos + 8, comma - pos - 8),
                           "history run number");
        {
            std::stringstream list(
                bracketList(text, "thread_counts", pos, path));
            std::string tok;
            while (std::getline(list, tok, ','))
                rec.threadCounts.push_back(
                    parseInt(trimmed(tok), "history thread_counts"));
        }
        {
            std::stringstream list(
                bracketList(text, "total_seconds", pos, path));
            std::string tok;
            while (std::getline(list, tok, ','))
                rec.totalSeconds.push_back(parseDouble(
                    trimmed(tok), "history total_seconds"));
        }
        runs.push_back(std::move(rec));
        pos = comma;
    }
    return runs;
}

/** Fractional regression beyond which a benchmark is called out. */
constexpr double kRegressionTolerance = 0.10;

int
compareAgainstBaseline(const Baseline &base,
                       const std::vector<Row> &rows,
                       const std::vector<int> &thread_counts)
{
    // Columns shared by both runs, as (current index, baseline index).
    std::vector<std::pair<std::size_t, std::size_t>> cols;
    for (std::size_t t = 0; t < thread_counts.size(); ++t)
        for (std::size_t b = 0; b < base.threadCounts.size(); ++b)
            if (thread_counts[t] == base.threadCounts[b])
                cols.emplace_back(t, b);
    if (cols.empty()) {
        warn("baseline has no thread counts in common with this run; "
             "nothing to compare");
        return 0;
    }

    std::printf("\nvs baseline (speedup = baseline / current; > 1 is "
                "faster now):\n");
    int regressions = 0, missing = 0;
    for (const auto &row : rows) {
        const Row *ref = base.find(row.name);
        if (!ref) {
            ++missing;
            continue;
        }
        std::printf("%-14s", row.name.c_str());
        bool regressed = false;
        for (const auto &[t, b] : cols) {
            const double cur = row.seconds[t];
            const double old = ref->seconds[b];
            std::printf("  t%d %6.2fx", thread_counts[t],
                        cur > 0 ? old / cur : 0.0);
            if (cur > old * (1.0 + kRegressionTolerance))
                regressed = true;
        }
        if (regressed) {
            ++regressions;
            std::printf("  <-- regression > %.0f%%",
                        kRegressionTolerance * 100);
        }
        std::printf("\n");
    }
    if (missing > 0)
        std::printf("(%d benchmark%s not present in the baseline)\n",
                    missing, missing == 1 ? "" : "s");
    std::printf("%d regression%s beyond %.0f%% tolerance\n",
                regressions, regressions == 1 ? "" : "s",
                kRegressionTolerance * 100);
    return regressions;
}

int
runMain(int argc, char **argv)
{
    std::string suite;
    std::string bench_name;
    std::string out_path = "BENCH_host.json";
    std::string baseline_path;
    std::vector<int> thread_counts = {1, 8};
    Scale scale = Scale::Tiny;
    int repeats = 3;
    bool fast_forward = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--suite") {
            suite = next();
        } else if (arg == "--bench") {
            bench_name = next();
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--baseline") {
            baseline_path = next();
        } else if (arg == "--small") {
            scale = Scale::Small;
        } else if (arg == "--fast-forward") {
            fast_forward = true;
        } else if (arg == "--repeats") {
            repeats = parsePositiveInt(next(), "--repeats");
        } else if (arg == "--threads") {
            thread_counts.clear();
            const std::string list = next();
            for (std::size_t pos = 0; pos <= list.size();) {
                auto comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                // A measured run at "0 threads" has no meaning (the
                // device would silently substitute the hardware
                // count and mislabel the column), so counts must be
                // explicit and positive.
                thread_counts.push_back(parsePositiveInt(
                    list.substr(pos, comma - pos), "--threads"));
                pos = comma + 1;
            }
        } else {
            fatal("unknown argument: ", arg);
        }
    }
    if (thread_counts.empty())
        fatal("need at least one thread count");

    Baseline base;
    if (!baseline_path.empty())
        base = loadBaseline(baseline_path);

    std::vector<Row> rows;
    for (const auto *info : Registry::instance().list(suite)) {
        if (!bench_name.empty() && info->name != bench_name)
            continue;
        Row row{info->name, info->suite, {}};
        for (const int threads : thread_counts) {
            double best = 0;
            for (int r = 0; r < repeats; ++r) {
                const double s =
                    timeOneRun(*info, scale, threads, fast_forward);
                if (r == 0 || s < best)
                    best = s;
            }
            row.seconds.push_back(best);
        }
        rows.push_back(row);
        std::printf("%-14s", row.name.c_str());
        for (std::size_t t = 0; t < thread_counts.size(); ++t)
            std::printf("  t%d %8.3f ms", thread_counts[t],
                        row.seconds[t] * 1e3);
        if (thread_counts.size() > 1 && row.seconds.back() > 0)
            std::printf("  speedup %.2fx",
                        row.seconds.front() / row.seconds.back());
        std::printf("\n");
    }
    if (rows.empty())
        fatal("no benchmarks matched");

    // Read the accumulated run history before the rewrite truncates
    // the file: each epoch appends, so the trend survives across PRs.
    const auto history = loadRunHistory(out_path);

    std::FILE *out = std::fopen(out_path.c_str(), "w");
    if (!out)
        fatal("cannot open ", out_path, " for writing");
    // Every string reaches the file through jsonEscape: a benchmark
    // or suite name containing a quote or backslash must not produce
    // an unparseable BENCH_host.json.
    const auto jstr = [](const std::string &s) {
        return jsonEscape(s);
    };
    std::fprintf(out, "{\n  \"scale\": \"%s\",\n",
                 jstr(scale == Scale::Tiny ? "tiny" : "small").c_str());
    // The digest covers the model geometry only (execution knobs like
    // the thread count sweep are excluded by construction), so it
    // names the configuration every timing in this file simulated.
    std::fprintf(out, "  \"config_digest\": \"%s\",\n",
                 gpu::hex16(gpu::DeviceConfig::scaledExperiment()
                                .digest())
                     .c_str());
    std::fprintf(out, "  \"repeats\": %d,\n", repeats);
    std::fprintf(out, "  \"fast_forward\": %s,\n",
                 fast_forward ? "true" : "false");
    std::fprintf(out, "  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(out, "  \"thread_counts\": [");
    for (std::size_t t = 0; t < thread_counts.size(); ++t)
        std::fprintf(out, "%s%d", t ? ", " : "", thread_counts[t]);
    std::fprintf(out, "],\n  \"benchmarks\": [\n");
    std::vector<double> totals(thread_counts.size(), 0.0);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        std::fprintf(out,
                     "    {\"name\": \"%s\", \"suite\": \"%s\", "
                     "\"seconds\": [",
                     jstr(row.name).c_str(), jstr(row.suite).c_str());
        for (std::size_t t = 0; t < row.seconds.size(); ++t) {
            std::fprintf(out, "%s%.6f", t ? ", " : "",
                         row.seconds[t]);
            totals[t] += row.seconds[t];
        }
        std::fprintf(out, "]}%s\n",
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"total_seconds\": [");
    for (std::size_t t = 0; t < totals.size(); ++t)
        std::fprintf(out, "%s%.6f", t ? ", " : "", totals[t]);
    // The runs history: every prior epoch verbatim, then this one.
    // Monotonically growing — the one part of the file a rewrite
    // never shrinks.
    int next_run = 1;
    for (const auto &rec : history)
        next_run = std::max(next_run, rec.run + 1);
    std::fprintf(out, "],\n  \"runs\": [\n");
    const auto write_run = [&](int run,
                               const std::vector<int> &threads,
                               const std::vector<double> &tot,
                               bool last) {
        std::fprintf(out, "    {\"run\": %d, \"thread_counts\": [",
                     run);
        for (std::size_t t = 0; t < threads.size(); ++t)
            std::fprintf(out, "%s%d", t ? ", " : "", threads[t]);
        std::fprintf(out, "], \"total_seconds\": [");
        for (std::size_t t = 0; t < tot.size(); ++t)
            std::fprintf(out, "%s%.6f", t ? ", " : "", tot[t]);
        std::fprintf(out, "]}%s\n", last ? "" : ",");
    };
    for (const auto &rec : history)
        write_run(rec.run, rec.threadCounts, rec.totalSeconds, false);
    write_run(next_run, thread_counts, totals, true);
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s (%zu benchmarks, run %d of the history)\n",
                out_path.c_str(), rows.size(), next_run);

    if (!baseline_path.empty())
        compareAgainstBaseline(base, rows, thread_counts);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return guardedMain([&] { return runMain(argc, argv); });
}
