/**
 * @file
 * Zipf-skewed closed-loop load generator for cactus_serve. Each
 * connection thread draws request keys from a Zipf(theta) popularity
 * distribution over K distinct configurations (YCSB-style: rank-1 is
 * hottest), sends them as newline-delimited JSON, and measures
 * per-request latency. Because the server's results are pure
 * digest-keyed functions of the request, the generator also acts as a
 * correctness oracle: every response body for a given cache key must
 * be byte-identical to the first one observed, whether it was
 * computed fresh, served from cache, or coalesced with a concurrent
 * identical request. Any divergence is a mismatch and fails the run.
 *
 * Usage:
 *   cactus_load (--port N | --port-file PATH)
 *               [--host H] [--connections N] [--requests N]
 *               [--configs K] [--zipf THETA] [--scale tiny|small]
 *               [--benchmarks A,B,...] [--seed S]
 *               [--deadline SEC] [--retries N]
 *
 *   --requests N    total requests across all connections (default 200)
 *   --connections N closed-loop client threads (default 4)
 *   --configs K     distinct (bench, l2_kb) request configs (default 8)
 *   --zipf THETA    skew; 0 = uniform, 0.99 = YCSB default
 *   --benchmarks    comma-separated bench names cycled across configs
 *   --deadline SEC  per-request response deadline (0 = none); an
 *                   expired deadline abandons the connection (the late
 *                   response would desynchronise the stream) and
 *                   reconnects
 *   --retries N     attempts beyond the first for retryable failures:
 *                   connection resets, expired deadlines, failed
 *                   connects, and "overloaded" rejections. Backoff is
 *                   exponential with decorrelated jitter
 *                   (sleep = min(cap, uniform(base, 3*prev))), so a
 *                   thundering herd against a draining or saturated
 *                   server spreads out. Non-retryable error taxonomies
 *                   (config, failed, timeout, corrupt) are terminal
 *                   for that request.
 *
 * Prints throughput, hit rate, overall/cold/hit latency percentiles,
 * the cold-to-hit latency ratio, a resilience section (retries,
 * reconnects, deadline expiries, per-taxonomy error counts, attempts
 * histogram), and the mismatch count. Exits non-zero on any mismatch
 * or unrecovered request.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/parse.hh"
#include "common/rng.hh"
#include "common/zipf.hh"

namespace {

using namespace cactus;

/** One request template: the JSON line sent on the wire. */
struct ConfigItem
{
    std::string line;
};

struct WorkerResult
{
    std::vector<double> coldMs;      ///< source == "computed"
    std::vector<double> hitMs;       ///< source == "cache"
    std::vector<double> coalescedMs; ///< source == "coalesced"
    std::uint64_t errors = 0;     ///< unrecovered after all retries
    std::uint64_t retries = 0;    ///< extra attempts spent
    std::uint64_t reconnects = 0; ///< sockets re-established
    std::uint64_t deadlines = 0;  ///< per-request deadlines expired
    std::uint64_t resets = 0;     ///< send/recv transport failures
    std::map<std::string, std::uint64_t> taxonomy; ///< error kinds
    std::vector<std::uint64_t> attempts; ///< [k] = successes at try k
};

/** Tuning shared by every worker. */
struct ClientOptions
{
    double deadlineSeconds = 0; ///< 0 = wait forever
    int retries = 0;            ///< extra attempts per request
};

/** Shared byte-identity oracle: key -> first-seen result bytes. */
struct Oracle
{
    std::mutex mutex;
    std::map<std::string, std::string> firstBody;
    std::uint64_t mismatches = 0;
};

/** Connect, or -1 on failure (a retryable event under --retries). */
int
tryConnect(const std::string &host, int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        fatal("bad host address '", host, "'");
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}


bool
sendAll(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * Read one newline-terminated response (newline stripped), waiting at
 * most until @p deadline (steady_clock; time_point::max() = forever).
 * Sets @p expired when the failure was the deadline rather than a
 * transport error — the caller must drop the connection either way,
 * but the distinction feeds different counters.
 */
bool
recvLine(int fd, std::string &buffer, std::string &line,
         std::chrono::steady_clock::time_point deadline, bool &expired)
{
    using SClock = std::chrono::steady_clock;
    expired = false;
    for (;;) {
        const std::size_t nl = buffer.find('\n');
        if (nl != std::string::npos) {
            line = buffer.substr(0, nl);
            buffer.erase(0, nl + 1);
            return true;
        }
        if (deadline != SClock::time_point::max()) {
            const auto left = std::chrono::duration_cast<
                std::chrono::milliseconds>(deadline - SClock::now());
            if (left.count() <= 0) {
                expired = true;
                return false;
            }
            pollfd pfd{fd, POLLIN, 0};
            const int rc = ::poll(
                &pfd, 1,
                static_cast<int>(std::min<long long>(
                    left.count(), 60 * 1000)));
            if (rc < 0 && errno != EINTR)
                return false;
            if (rc == 0)
                continue; // Re-check the deadline.
        }
        char chunk[4096];
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        buffer.append(chunk, static_cast<std::size_t>(n));
    }
}

/** The "result":{...} payload — the bytes the server's cache stores
 *  verbatim; the part of the response that must be key-stable. */
bool
resultBody(const std::string &response, std::string &body)
{
    const std::size_t at = response.find("\"result\":");
    if (at == std::string::npos || response.empty() ||
        response.back() != '}')
        return false;
    body = response.substr(at + 9,
                           response.size() - (at + 9) - 1);
    return true;
}

void
worker(const std::string &host, int port,
       const std::vector<ConfigItem> &items,
       const ZipfSampler &zipf, std::uint64_t seed, int requests,
       const ClientOptions &copts, WorkerResult &out, Oracle &oracle)
{
    using SClock = std::chrono::steady_clock;
    Rng rng(seed);
    int fd = tryConnect(host, port);
    std::string buffer;
    std::string response;
    out.attempts.assign(
        static_cast<std::size_t>(copts.retries) + 1, 0);

    // Decorrelated jitter: each retry sleeps uniform(base, 3*prev),
    // capped — concurrent clients retrying into a saturated server
    // decorrelate instead of stampeding in lockstep.
    constexpr double kBackoffBase = 0.025, kBackoffCap = 1.0;
    double prev_sleep = kBackoffBase;
    const auto backoff = [&] {
        const double s = std::min(
            kBackoffCap, rng.uniform(kBackoffBase, prev_sleep * 3));
        prev_sleep = s;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(s));
    };
    const auto dropConnection = [&] {
        if (fd >= 0)
            ::close(fd);
        fd = -1;
        buffer.clear();
    };

    for (int i = 0; i < requests; ++i) {
        const auto &item = items[zipf.sample(rng)];
        bool done = false;
        prev_sleep = kBackoffBase;
        for (int attempt = 0; attempt <= copts.retries && !done;
             ++attempt) {
            if (attempt > 0)
                ++out.retries;
            if (fd < 0) {
                fd = tryConnect(host, port);
                if (fd < 0) {
                    backoff();
                    continue;
                }
                ++out.reconnects;
            }

            const auto t0 = SClock::now();
            const auto deadline = copts.deadlineSeconds > 0
                ? t0 + std::chrono::duration_cast<SClock::duration>(
                      std::chrono::duration<double>(
                          copts.deadlineSeconds))
                : SClock::time_point::max();

            bool expired = false;
            if (!sendAll(fd, item.line + "\n") ||
                !recvLine(fd, buffer, response, deadline, expired)) {
                // Transport failure or expired deadline: either way
                // the stream may be desynchronised (a late response
                // would answer the wrong request), so reconnect.
                ++(expired ? out.deadlines : out.resets);
                dropConnection();
                backoff();
                continue;
            }
            const double ms =
                std::chrono::duration<double, std::milli>(
                    SClock::now() - t0)
                    .count();

            std::string status, source, key, body, tax;
            if (!jsonFindText(response, "status", status)) {
                ++out.resets; // Unparseable frame: treat as reset.
                dropConnection();
                backoff();
                continue;
            }
            if (status != "ok") {
                jsonFindText(response, "taxonomy", tax);
                if (tax.empty())
                    tax = "unknown";
                ++out.taxonomy[tax];
                if (tax == "overloaded") {
                    // Retryable by contract: the server shed load,
                    // nothing ran, a later attempt may be admitted.
                    backoff();
                    continue;
                }
                break; // Terminal taxonomy for this request.
            }
            if (!jsonFindText(response, "source", source) ||
                !jsonFindText(response, "key", key) ||
                !resultBody(response, body)) {
                ++out.taxonomy["malformed"];
                break;
            }

            if (source == "computed")
                out.coldMs.push_back(ms);
            else if (source == "cache")
                out.hitMs.push_back(ms);
            else
                out.coalescedMs.push_back(ms);
            ++out.attempts[static_cast<std::size_t>(attempt)];
            done = true;

            // Byte-identity: every response for a key must match the
            // first one seen, regardless of source.
            std::lock_guard<std::mutex> lock(oracle.mutex);
            const auto [it, inserted] =
                oracle.firstBody.emplace(key, body);
            if (!inserted && it->second != body)
                ++oracle.mismatches;
        }
        if (!done)
            ++out.errors;
    }
    dropConnection();
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0;
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

void
reportLatency(const char *label, std::vector<double> samples)
{
    std::sort(samples.begin(), samples.end());
    std::printf("  %-10s n=%-6zu p50 %8.3f ms   p95 %8.3f ms   "
                "p99 %8.3f ms\n",
                label, samples.size(), percentile(samples, 0.50),
                percentile(samples, 0.95),
                percentile(samples, 0.99));
}

int
runMain(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    std::string port_file;
    std::string scale = "tiny";
    std::string benchmarks = "GMS";
    int port = 0;
    int connections = 4;
    int total_requests = 200;
    int configs = 8;
    double zipf_theta = 0.99;
    std::uint64_t seed = 42;
    ClientOptions copts;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--host")
            host = next();
        else if (arg == "--port")
            port = parsePositiveInt(next(), "--port");
        else if (arg == "--port-file")
            port_file = next();
        else if (arg == "--connections")
            connections = parsePositiveInt(next(), "--connections");
        else if (arg == "--requests")
            total_requests = parsePositiveInt(next(), "--requests");
        else if (arg == "--configs")
            configs = parsePositiveInt(next(), "--configs");
        else if (arg == "--zipf") {
            zipf_theta = parseDouble(next(), "--zipf");
            if (zipf_theta < 0)
                fatal("--zipf expects a non-negative skew");
        } else if (arg == "--scale")
            scale = next();
        else if (arg == "--benchmarks")
            benchmarks = next();
        else if (arg == "--seed")
            seed = parseUint64(next(), "--seed");
        else if (arg == "--deadline") {
            copts.deadlineSeconds = parseDouble(next(), "--deadline");
            if (copts.deadlineSeconds < 0)
                fatal("--deadline expects a non-negative duration");
        } else if (arg == "--retries")
            copts.retries = parseNonNegativeInt(next(), "--retries");
        else
            fatal("unknown argument: ", arg);
    }

    if (!port_file.empty()) {
        std::FILE *f = std::fopen(port_file.c_str(), "r");
        if (!f)
            fatal("cannot read port file '", port_file, "'");
        if (std::fscanf(f, "%d", &port) != 1)
            fatal("port file '", port_file,
                  "' does not hold a port number");
        std::fclose(f);
    }
    if (port < 1)
        fatal("need --port or --port-file");

    // Build the K distinct request configs: cycle the benchmark list
    // and vary the L2 capacity so every rank maps to a distinct cache
    // key on the server.
    std::vector<std::string> bench_list;
    for (std::size_t at = 0; at <= benchmarks.size();) {
        const std::size_t comma = benchmarks.find(',', at);
        const std::size_t end =
            comma == std::string::npos ? benchmarks.size() : comma;
        if (end > at)
            bench_list.push_back(benchmarks.substr(at, end - at));
        at = end + 1;
    }
    if (bench_list.empty())
        fatal("--benchmarks expects at least one name");

    std::vector<ConfigItem> items;
    items.reserve(static_cast<std::size_t>(configs));
    for (int i = 0; i < configs; ++i) {
        const auto &bench =
            bench_list[static_cast<std::size_t>(i) %
                       bench_list.size()];
        const int l2_kb = 256 + 128 * i;
        items.push_back({"{\"bench\":\"" + jsonEscape(bench) +
                         "\",\"scale\":\"" + jsonEscape(scale) +
                         "\",\"l2_kb\":" + std::to_string(l2_kb) +
                         "}"});
    }

    const ZipfSampler zipf(items.size(), zipf_theta);
    std::vector<WorkerResult> results(
        static_cast<std::size_t>(connections));
    Oracle oracle;

    const int per_conn = total_requests / connections;
    const int remainder = total_requests % connections;
    std::vector<std::thread> threads;
    const auto wall0 = std::chrono::steady_clock::now();
    for (int c = 0; c < connections; ++c) {
        const int n = per_conn + (c < remainder ? 1 : 0);
        threads.emplace_back(worker, std::cref(host), port,
                             std::cref(items), std::cref(zipf),
                             seed + 0x9e3779b97f4a7c15ull *
                                 static_cast<std::uint64_t>(c + 1),
                             n, std::cref(copts),
                             std::ref(results[static_cast<
                                 std::size_t>(c)]),
                             std::ref(oracle));
    }
    for (auto &t : threads)
        t.join();
    const double wall_s =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall0)
            .count();

    std::vector<double> cold, hit, coalesced, all;
    std::uint64_t errors = 0, retries = 0, reconnects = 0;
    std::uint64_t deadlines = 0, resets = 0;
    std::map<std::string, std::uint64_t> taxonomy;
    std::vector<std::uint64_t> attempts(
        static_cast<std::size_t>(copts.retries) + 1, 0);
    for (const auto &r : results) {
        cold.insert(cold.end(), r.coldMs.begin(), r.coldMs.end());
        hit.insert(hit.end(), r.hitMs.begin(), r.hitMs.end());
        coalesced.insert(coalesced.end(), r.coalescedMs.begin(),
                         r.coalescedMs.end());
        errors += r.errors;
        retries += r.retries;
        reconnects += r.reconnects;
        deadlines += r.deadlines;
        resets += r.resets;
        for (const auto &[tax, n] : r.taxonomy)
            taxonomy[tax] += n;
        for (std::size_t k = 0;
             k < r.attempts.size() && k < attempts.size(); ++k)
            attempts[k] += r.attempts[k];
    }
    all = cold;
    all.insert(all.end(), hit.begin(), hit.end());
    all.insert(all.end(), coalesced.begin(), coalesced.end());

    const std::uint64_t ok = all.size();
    const std::uint64_t served = ok - cold.size();
    const double hit_rate = ok == 0
        ? 0
        : static_cast<double>(served) / static_cast<double>(ok);

    std::printf("cactus_load: %llu ok responses in %.2f s "
                "(%.1f req/s), %d configs, zipf %.2f\n",
                static_cast<unsigned long long>(ok), wall_s,
                wall_s > 0 ? static_cast<double>(ok) / wall_s : 0,
                configs, zipf_theta);
    std::printf("  hit rate  %.1f%% (%zu computed, %zu cache, "
                "%zu coalesced)\n",
                100.0 * hit_rate, cold.size(), hit.size(),
                coalesced.size());
    reportLatency("overall", all);
    reportLatency("cold", cold);
    reportLatency("hit", hit);
    if (!coalesced.empty())
        reportLatency("coalesced", coalesced);

    if (!cold.empty() && !hit.empty()) {
        auto sc = cold;
        auto sh = hit;
        std::sort(sc.begin(), sc.end());
        std::sort(sh.begin(), sh.end());
        const double ratio = percentile(sh, 0.50) > 0
            ? percentile(sc, 0.50) / percentile(sh, 0.50)
            : 0;
        std::printf("  cold/hit p50 ratio: %.1fx\n", ratio);
    }
    if (retries + reconnects + deadlines + resets > 0 ||
        !taxonomy.empty()) {
        std::printf("  resilience: %llu retries, %llu reconnects, "
                    "%llu deadline expiries, %llu resets\n",
                    static_cast<unsigned long long>(retries),
                    static_cast<unsigned long long>(reconnects),
                    static_cast<unsigned long long>(deadlines),
                    static_cast<unsigned long long>(resets));
        for (const auto &[tax, n] : taxonomy)
            std::printf("    error taxonomy %-12s %llu\n",
                        tax.c_str(),
                        static_cast<unsigned long long>(n));
        for (std::size_t k = 0; k < attempts.size(); ++k)
            if (attempts[k] > 0)
                std::printf("    succeeded on attempt %zu: %llu\n",
                            k + 1,
                            static_cast<unsigned long long>(
                                attempts[k]));
    }
    std::printf("  %llu mismatches, %llu errors\n",
                static_cast<unsigned long long>(oracle.mismatches),
                static_cast<unsigned long long>(errors));

    if (oracle.mismatches > 0) {
        warn("cache-hit responses diverged from fresh-run bytes");
        return 1;
    }
    if (errors > 0) {
        warn("some requests failed");
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return guardedMain([&] { return runMain(argc, argv); });
}
