#include "graph/bfs.hh"

#include <algorithm>
#include <queue>

#include "common/logging.hh"

namespace cactus::graph {

namespace {

using gpu::KernelDesc;
using gpu::ThreadCtx;

/** Shared state of one BFS run. */
struct BfsState
{
    std::vector<int> levels;
    std::vector<int> frontier;      ///< Current vertex frontier.
    std::vector<int> edgeFrontier;  ///< Advance output (unfiltered).
    std::vector<int> nextFrontier;
    std::vector<std::uint8_t> visitedBitmap;
    int frontierSize = 0;
    int edgeFrontierSize = 0;
    int nextSize = 0;
};

/**
 * Top-down advance, thread-per-vertex mapping: each thread serially
 * expands one frontier vertex. Best for low-degree frontiers (roads).
 */
void
advanceThread(gpu::Device &dev, const CsrGraph &g, BfsState &st,
              const BfsOptions &opts)
{
    const auto &offsets = g.offsets();
    const auto &targets = g.targets();
    gpu::DeviceScalar<int> cursor(0);
    dev.launchLinear(
        KernelDesc("advance_twc_thread", 32).serial(), st.frontierSize,
        opts.threadsPerBlock, [&](ThreadCtx &ctx) {
            const int f = static_cast<int>(ctx.globalId());
            const int v = ctx.ld(&st.frontier[f]);
            const int begin = ctx.ld(&offsets[v]);
            const int end = ctx.ld(&offsets[v + 1]);
            ctx.intOp(3);
            for (int e = begin; e < end; ++e) {
                const int u = ctx.ld(&targets[e]);
                const int lvl = ctx.ld(&st.levels[u]);
                ctx.branch(1);
                ctx.intOp(1);
                if (lvl >= 0)
                    continue;
                const int slot = ctx.atomicAdd(cursor.get(), 1);
                ctx.st(&st.edgeFrontier[slot], u);
            }
        });
    st.edgeFrontierSize = *cursor;
}

/**
 * Warp-per-vertex advance: 32 lanes cooperatively strided over one
 * vertex's adjacency list. Best for medium-degree frontiers.
 */
void
advanceWarp(gpu::Device &dev, const CsrGraph &g, BfsState &st,
            const BfsOptions &opts)
{
    const auto &offsets = g.offsets();
    const auto &targets = g.targets();
    gpu::DeviceScalar<int> cursor(0);
    const std::uint64_t threads =
        static_cast<std::uint64_t>(st.frontierSize) * 32;
    dev.launchLinear(
        KernelDesc("advance_twc_warp", 40).serial(), threads,
        opts.threadsPerBlock, [&](ThreadCtx &ctx) {
            const std::uint64_t t = ctx.globalId();
            const int f = static_cast<int>(t / 32);
            const int lane = static_cast<int>(t % 32);
            const int v = ctx.ld(&st.frontier[f]);
            const int begin = ctx.ld(&offsets[v]);
            const int end = ctx.ld(&offsets[v + 1]);
            ctx.intOp(5);
            for (int e = begin + lane; e < end; e += 32) {
                const int u = ctx.ld(&targets[e]);
                const int lvl = ctx.ld(&st.levels[u]);
                ctx.branch(1);
                ctx.intOp(2);
                if (lvl >= 0)
                    continue;
                const int slot = ctx.atomicAdd(cursor.get(), 1);
                ctx.st(&st.edgeFrontier[slot], u);
            }
        });
    st.edgeFrontierSize = *cursor;
}

/**
 * CTA-per-vertex advance: a whole 256-thread block strided over one
 * vertex's adjacency list. Best for the huge hubs of social graphs.
 */
void
advanceCta(gpu::Device &dev, const CsrGraph &g, BfsState &st,
           const BfsOptions &opts)
{
    const auto &offsets = g.offsets();
    const auto &targets = g.targets();
    gpu::DeviceScalar<int> cursor(0);
    const int cta = opts.threadsPerBlock;
    dev.launch(
        KernelDesc("advance_twc_cta", 40, 1024).serial(),
        gpu::Dim3(static_cast<unsigned>(st.frontierSize)),
        gpu::Dim3(static_cast<unsigned>(cta)), [&](ThreadCtx &ctx) {
            const int f = static_cast<int>(ctx.blockIdx.x);
            const int tid = static_cast<int>(ctx.threadIdx.x);
            const int v = ctx.ld(&st.frontier[f]);
            const int begin = ctx.ld(&offsets[v]);
            const int end = ctx.ld(&offsets[v + 1]);
            ctx.intOp(5);
            ctx.sync(1); // Block-wide coordination point.
            for (int e = begin + tid; e < end; e += cta) {
                const int u = ctx.ld(&targets[e]);
                const int lvl = ctx.ld(&st.levels[u]);
                ctx.branch(1);
                ctx.intOp(2);
                if (lvl >= 0)
                    continue;
                const int slot = ctx.atomicAdd(cursor.get(), 1);
                ctx.st(&st.edgeFrontier[slot], u);
            }
        });
    st.edgeFrontierSize = *cursor;
}

/**
 * Filter + compaction, Gunrock-style: claim unvisited candidates with
 * an atomic CAS on the level array (uniquify), then compact the winners
 * with the multi-kernel scan/scatter pattern, and finally refresh the
 * visited bitmap used by the direction-optimized step.
 */
void
filterAndCompact(gpu::Device &dev, BfsState &st, int depth,
                 const BfsOptions &opts)
{
    const int n = st.edgeFrontierSize;
    std::vector<std::uint8_t> flags(n, 1);

    // Kernel: clear the flag buffer (the runtime's memset launch).
    dev.launchLinear(
        KernelDesc("memset_flags", 8), n, opts.threadsPerBlock,
        [&](ThreadCtx &ctx) {
            ctx.st(&flags[ctx.globalId()], std::uint8_t{0});
        });

    // Kernel: claim candidates (winner per vertex via CAS).
    dev.launchLinear(
        KernelDesc("filter_uniquify", 24).serial(), n,
        opts.threadsPerBlock,
        [&](ThreadCtx &ctx) {
            const int i = static_cast<int>(ctx.globalId());
            const int u = ctx.ld(&st.edgeFrontier[i]);
            const int old = ctx.atomicCAS(&st.levels[u], -1, depth);
            ctx.branch(1);
            ctx.st(&flags[i],
                   static_cast<std::uint8_t>(old == -1 ? 1 : 0));
        });

    // Kernel: per-block survivor counts.
    const int scan_block = opts.threadsPerBlock;
    const int num_partials = (n + scan_block - 1) / scan_block;
    std::vector<int> partials(std::max(num_partials, 1), 0);
    dev.launchLinear(
        KernelDesc("frontier_scan_partials", 16), n, scan_block,
        [&](ThreadCtx &ctx) {
            const int i = static_cast<int>(ctx.globalId());
            const int f = ctx.ld(&flags[i]);
            ctx.intOp(2);
            if (f)
                ctx.atomicAdd(&partials[i / scan_block], 1);
        });
    std::vector<int> offsets(num_partials + 1, 0);
    for (int b = 0; b < num_partials; ++b)
        offsets[b + 1] = offsets[b] + partials[b];

    // Kernel: scatter survivors to their scanned positions.
    std::vector<int> running(std::max(num_partials, 1), 0);
    dev.launchLinear(
        KernelDesc("frontier_scatter", 24), n, scan_block,
        [&](ThreadCtx &ctx) {
            const int i = static_cast<int>(ctx.globalId());
            ctx.branch(1);
            if (!ctx.ld(&flags[i]))
                return;
            const int blk = i / scan_block;
            const int base = ctx.ld(&offsets[blk]);
            const int within = ctx.atomicAdd(&running[blk], 1);
            ctx.intOp(3);
            ctx.st(&st.nextFrontier[base + within],
                   ctx.ld(&st.edgeFrontier[i]));
        });
    st.nextSize = offsets[num_partials];

    // Kernel: refresh the visited bitmap for the bottom-up heuristic.
    if (st.nextSize > 0) {
        dev.launchLinear(
            KernelDesc("bitmap_update", 12), st.nextSize,
            opts.threadsPerBlock, [&](ThreadCtx &ctx) {
                const int i = static_cast<int>(ctx.globalId());
                const int u = ctx.ld(&st.nextFrontier[i]);
                ctx.st(&st.visitedBitmap[u],
                       static_cast<std::uint8_t>(1));
            });
    }
}

/**
 * Direction-optimized bottom-up step: every unvisited vertex scans its
 * neighbors for a parent in the current level; much cheaper than
 * top-down when the frontier covers a large share of the graph.
 */
void
bottomUpStep(gpu::Device &dev, const CsrGraph &g, BfsState &st,
             int depth, const BfsOptions &opts)
{
    const auto &offsets = g.offsets();
    const auto &targets = g.targets();
    const int n = g.numVertices();
    gpu::DeviceScalar<int> cursor(0);
    dev.launchLinear(
        KernelDesc("bfs_bottom_up", 32).serial(), n,
        opts.threadsPerBlock,
        [&](ThreadCtx &ctx) {
            const int v = static_cast<int>(ctx.globalId());
            const int lvl = ctx.ld(&st.levels[v]);
            ctx.branch(1);
            if (lvl >= 0)
                return;
            const int begin = ctx.ld(&offsets[v]);
            const int end = ctx.ld(&offsets[v + 1]);
            ctx.intOp(3);
            for (int e = begin; e < end; ++e) {
                const int u = ctx.ld(&targets[e]);
                const int ul = ctx.ld(&st.levels[u]);
                ctx.branch(1);
                ctx.intOp(1);
                if (ul == depth - 1) {
                    ctx.st(&st.levels[v], depth);
                    const int slot = ctx.atomicAdd(cursor.get(), 1);
                    ctx.st(&st.nextFrontier[slot], v);
                    break;
                }
            }
        });
    st.nextSize = *cursor;
}

/** Sum of out-degrees over the frontier (device reduction). */
std::int64_t
frontierDegree(gpu::Device &dev, const CsrGraph &g, BfsState &st,
               const BfsOptions &opts)
{
    const auto &offsets = g.offsets();
    gpu::DeviceScalar<long long> total(0);
    dev.launchLinear(
        KernelDesc("frontier_reduce_degree", 16), st.frontierSize,
        opts.threadsPerBlock, [&](ThreadCtx &ctx) {
            const int f = static_cast<int>(ctx.globalId());
            const int v = ctx.ld(&st.frontier[f]);
            const int deg = ctx.ld(&offsets[v + 1]) - ctx.ld(&offsets[v]);
            ctx.intOp(2);
            ctx.atomicAdd(total.get(), static_cast<long long>(deg));
        });
    return *total;
}

} // namespace

BfsResult
gunrockBfs(gpu::Device &dev, const CsrGraph &g, int source,
           const BfsOptions &opts)
{
    const int n = g.numVertices();
    if (source < 0 || source >= n)
        fatal("BFS source ", source, " out of range");

    BfsState st;
    st.levels.assign(n, -2); // Filled by the init kernel below.
    st.frontier.assign(n, 0);
    st.edgeFrontier.assign(
        std::max<std::size_t>(g.numDirectedEdges(), 1), 0);
    st.nextFrontier.assign(n, 0);
    st.visitedBitmap.assign(n, 0);

    // Kernel: initialize the level array on the device.
    dev.launchLinear(
        KernelDesc("init_levels", 12), n, opts.threadsPerBlock,
        [&](ThreadCtx &ctx) {
            const int v = static_cast<int>(ctx.globalId());
            ctx.st(&st.levels[v], -1);
        });

    st.levels[source] = 0;
    st.visitedBitmap[source] = 1;
    st.frontier[0] = source;
    st.frontierSize = 1;

    BfsResult result;
    result.verticesVisited = 1;
    int depth = 1;
    while (st.frontierSize > 0) {
        const std::int64_t fdeg = frontierDegree(dev, g, st, opts);
        const double avg_deg =
            static_cast<double>(fdeg) / st.frontierSize;
        const bool bottom_up = opts.enableBottomUp &&
            static_cast<double>(fdeg) >
                opts.bottomUpThreshold *
                    static_cast<double>(g.numDirectedEdges());

        if (bottom_up) {
            bottomUpStep(dev, g, st, depth, opts);
            result.kernelSequence.push_back("bfs_bottom_up");
        } else {
            if (avg_deg >= opts.ctaDegreeThreshold) {
                advanceCta(dev, g, st, opts);
                result.kernelSequence.push_back("advance_twc_cta");
            } else if (avg_deg >= opts.warpDegreeThreshold) {
                advanceWarp(dev, g, st, opts);
                result.kernelSequence.push_back("advance_twc_warp");
            } else {
                advanceThread(dev, g, st, opts);
                result.kernelSequence.push_back("advance_twc_thread");
            }
            if (st.edgeFrontierSize > 0)
                filterAndCompact(dev, st, depth, opts);
            else
                st.nextSize = 0;
        }

        std::swap(st.frontier, st.nextFrontier);
        st.frontierSize = st.nextSize;
        st.nextSize = 0;
        result.verticesVisited += st.frontierSize;
        ++result.iterations;
        ++depth;
    }

    result.levels = std::move(st.levels);
    return result;
}

std::vector<int>
referenceBfs(const CsrGraph &g, int source)
{
    std::vector<int> levels(g.numVertices(), -1);
    std::queue<int> q;
    levels[source] = 0;
    q.push(source);
    while (!q.empty()) {
        const int v = q.front();
        q.pop();
        const int *nb = g.neighborsBegin(v);
        for (int k = 0; k < g.degree(v); ++k) {
            const int u = nb[k];
            if (levels[u] == -1) {
                levels[u] = levels[v] + 1;
                q.push(u);
            }
        }
    }
    return levels;
}

} // namespace cactus::graph
