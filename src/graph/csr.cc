#include "graph/csr.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cactus::graph {

CsrGraph
CsrGraph::fromEdges(int num_vertices,
                    std::vector<std::pair<int, int>> edges)
{
    if (num_vertices <= 0)
        fatal("graph needs at least one vertex");

    // Symmetrize, drop self-loops, dedupe.
    std::vector<std::pair<int, int>> all;
    all.reserve(edges.size() * 2);
    for (auto [u, v] : edges) {
        if (u == v)
            continue;
        if (u < 0 || v < 0 || u >= num_vertices || v >= num_vertices)
            fatal("edge (", u, ",", v, ") out of range");
        all.emplace_back(u, v);
        all.emplace_back(v, u);
    }
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());

    CsrGraph g;
    g.offsets_.assign(num_vertices + 1, 0);
    g.targets_.reserve(all.size());
    for (auto [u, v] : all)
        ++g.offsets_[u + 1];
    for (int v = 0; v < num_vertices; ++v)
        g.offsets_[v + 1] += g.offsets_[v];
    for (auto [u, v] : all)
        g.targets_.push_back(v);
    return g;
}

CsrGraph
CsrGraph::rmat(int scale, int edge_factor, Rng &rng, double a, double b,
               double c)
{
    const int n = 1 << scale;
    const std::int64_t m = static_cast<std::int64_t>(n) * edge_factor;
    std::vector<std::pair<int, int>> edges;
    edges.reserve(m);
    for (std::int64_t e = 0; e < m; ++e) {
        int u = 0, v = 0;
        for (int bit = 0; bit < scale; ++bit) {
            const double r = rng.uniform();
            int ub = 0, vb = 0;
            if (r < a) {
                // Top-left quadrant.
            } else if (r < a + b) {
                vb = 1;
            } else if (r < a + b + c) {
                ub = 1;
            } else {
                ub = 1;
                vb = 1;
            }
            u = (u << 1) | ub;
            v = (v << 1) | vb;
        }
        edges.emplace_back(u, v);
    }
    return fromEdges(n, std::move(edges));
}

CsrGraph
CsrGraph::roadGrid(int width, int height, Rng &rng)
{
    const int n = width * height;
    std::vector<std::pair<int, int>> edges;
    edges.reserve(static_cast<std::size_t>(n) * 2);
    auto id = [&](int x, int y) { return y * width + x; };
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            // ~10% of lattice links removed (closed roads).
            if (x + 1 < width && rng.uniform() > 0.10)
                edges.emplace_back(id(x, y), id(x + 1, y));
            if (y + 1 < height && rng.uniform() > 0.10)
                edges.emplace_back(id(x, y), id(x, y + 1));
        }
    }
    // Sparse highways: one long shortcut per ~2000 vertices.
    const int highways = std::max(1, n / 2000);
    for (int h = 0; h < highways; ++h) {
        const int u = static_cast<int>(rng.uniformInt(n));
        const int v = static_cast<int>(rng.uniformInt(n));
        edges.emplace_back(u, v);
    }
    return fromEdges(n, std::move(edges));
}

CsrGraph
CsrGraph::uniformRandom(int num_vertices, int num_edges, Rng &rng)
{
    std::vector<std::pair<int, int>> edges;
    edges.reserve(num_edges);
    for (int e = 0; e < num_edges; ++e) {
        edges.emplace_back(
            static_cast<int>(rng.uniformInt(num_vertices)),
            static_cast<int>(rng.uniformInt(num_vertices)));
    }
    return fromEdges(num_vertices, std::move(edges));
}

int
CsrGraph::maxDegree() const
{
    int best = 0;
    for (int v = 0; v < numVertices(); ++v)
        best = std::max(best, degree(v));
    return best;
}

int
CsrGraph::highestDegreeVertex() const
{
    int best = 0;
    for (int v = 1; v < numVertices(); ++v)
        if (degree(v) > degree(best))
            best = v;
    return best;
}

} // namespace cactus::graph
