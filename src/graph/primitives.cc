#include "graph/primitives.hh"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/logging.hh"

namespace cactus::graph {

namespace {

using gpu::KernelDesc;
using gpu::ThreadCtx;

constexpr float kInf = 1e30f;

} // namespace

std::vector<float>
randomEdgeWeights(const CsrGraph &g, Rng &rng, float lo, float hi)
{
    std::vector<float> weights(g.numDirectedEdges());
    // Symmetric weights: both directions of an undirected edge get the
    // same value, derived from the unordered endpoint pair plus a
    // per-run seed.
    const std::uint64_t run_seed = rng.next();
    for (int u = 0; u < g.numVertices(); ++u) {
        const int *nb = g.neighborsBegin(u);
        const int begin = g.offsets()[u];
        for (int k = 0; k < g.degree(u); ++k) {
            const int v = nb[k];
            const std::uint64_t a = std::min(u, v);
            const std::uint64_t b = std::max(u, v);
            Rng edge_rng(a * 2654435761ull ^ (b << 20) ^ run_seed);
            weights[begin + k] = static_cast<float>(
                edge_rng.uniform(lo, hi));
        }
    }
    return weights;
}

SsspResult
gunrockSssp(gpu::Device &dev, const CsrGraph &g, int source,
            const std::vector<float> &weights, int threads_per_block)
{
    const int n = g.numVertices();
    if (source < 0 || source >= n)
        fatal("SSSP source out of range");
    if (weights.size() != static_cast<std::size_t>(
            g.numDirectedEdges()))
        fatal("SSSP weight array size mismatch");

    const auto &offsets = g.offsets();
    const auto &targets = g.targets();

    SsspResult result;
    result.distances.assign(n, kInf);
    std::vector<std::uint8_t> in_frontier(n, 0), in_next(n, 0);
    std::vector<int> frontier(n, 0), next_frontier(n, 0);

    // Kernel: distance initialization.
    float *dist = result.distances.data();
    dev.launchLinear(
        KernelDesc("sssp_init", 12), n, threads_per_block,
        [&](ThreadCtx &ctx) {
            ctx.st(&dist[ctx.globalId()], kInf);
        });
    result.distances[source] = 0.f;
    frontier[0] = source;
    int frontier_size = 1;

    while (frontier_size > 0 && result.iterations < 4 * n) {
        gpu::DeviceScalar<int> next_size(0);
        // Kernel: relax all edges out of the frontier; push improved
        // vertices into the next worklist (claimed via CAS on a flag).
        dev.launchLinear(
            KernelDesc("sssp_relax", 40).serial(), frontier_size,
            threads_per_block, [&](ThreadCtx &ctx) {
                const int f = static_cast<int>(ctx.globalId());
                const int v = ctx.ld(&frontier[f]);
                const float dv = ctx.ld(&dist[v]);
                const int begin = ctx.ld(&offsets[v]);
                const int end = ctx.ld(&offsets[v + 1]);
                ctx.intOp(3);
                for (int e = begin; e < end; ++e) {
                    const int u = ctx.ld(&targets[e]);
                    const float w = ctx.ld(&weights[e]);
                    const float cand = dv + w;
                    const float du = ctx.ld(&dist[u]);
                    ctx.fp32(2);
                    ctx.branch(1);
                    if (cand >= du)
                        continue;
                    // Serial-ordered execution (this kernel is marked
                    // KernelDesc::serial) makes this plain store
                    // exact; on real hardware it is an atomicMin.
                    ctx.st(&dist[u], cand);
                    const std::uint8_t old = ctx.atomicCAS(
                        &in_next[u], std::uint8_t{0},
                        std::uint8_t{1});
                    if (old == 0) {
                        const int slot =
                            ctx.atomicAdd(next_size.get(), 1);
                        ctx.st(&next_frontier[slot], u);
                    }
                }
            });
        // Kernel: clear the membership flags for the next round.
        if (*next_size > 0) {
            dev.launchLinear(
                KernelDesc("sssp_clear_flags", 8), *next_size,
                threads_per_block, [&](ThreadCtx &ctx) {
                    const int i = static_cast<int>(ctx.globalId());
                    const int u = ctx.ld(&next_frontier[i]);
                    ctx.st(&in_next[u], std::uint8_t{0});
                });
        }
        std::swap(frontier, next_frontier);
        frontier_size = *next_size;
        ++result.iterations;
    }
    return result;
}

std::vector<float>
referenceSssp(const CsrGraph &g, int source,
              const std::vector<float> &weights)
{
    std::vector<float> dist(g.numVertices(), kInf);
    using Entry = std::pair<float, int>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
    dist[source] = 0.f;
    pq.emplace(0.f, source);
    while (!pq.empty()) {
        const auto [d, v] = pq.top();
        pq.pop();
        if (d > dist[v])
            continue;
        const int *nb = g.neighborsBegin(v);
        const int begin = g.offsets()[v];
        for (int k = 0; k < g.degree(v); ++k) {
            const int u = nb[k];
            const float cand = d + weights[begin + k];
            if (cand < dist[u]) {
                dist[u] = cand;
                pq.emplace(cand, u);
            }
        }
    }
    return dist;
}

PageRankResult
gunrockPageRank(gpu::Device &dev, const CsrGraph &g, double damping,
                double tolerance, int max_iterations,
                int threads_per_block)
{
    const int n = g.numVertices();
    const auto &offsets = g.offsets();
    const auto &targets = g.targets();

    PageRankResult result;
    result.ranks.assign(n, 1.f / n);
    std::vector<float> next(n, 0.f);
    const float base = static_cast<float>((1.0 - damping) / n);

    float *rank = result.ranks.data();
    for (int iter = 0; iter < max_iterations; ++iter) {
        // Kernel: collect the dangling (degree-0) mass so it can be
        // redistributed instead of leaking out of the distribution.
        gpu::DeviceScalar<double> dangling(0.0);
        dev.launchLinear(
            KernelDesc("pr_dangling_reduce", 16).serial(), n,
            threads_per_block, [&](ThreadCtx &ctx) {
                const int v = static_cast<int>(ctx.globalId());
                const int deg = ctx.ld(&offsets[v + 1]) -
                                ctx.ld(&offsets[v]);
                ctx.intOp(2);
                ctx.branch(1);
                if (deg == 0)
                    ctx.atomicAdd(dangling.get(),
                                  static_cast<double>(
                                      ctx.ld(&rank[v])));
            });
        const float teleport = base + static_cast<float>(
            damping * *dangling / n);

        // Kernel: reset accumulators to the teleport + dangling term.
        dev.launchLinear(
            KernelDesc("pr_reset", 12), n, threads_per_block,
            [&](ThreadCtx &ctx) {
                ctx.st(&next[ctx.globalId()], teleport);
            });
        // Kernel: push each vertex's rank share to its neighbors.
        dev.launchLinear(
            KernelDesc("pr_push", 32).serial(), n, threads_per_block,
            [&](ThreadCtx &ctx) {
                const int v = static_cast<int>(ctx.globalId());
                const int begin = ctx.ld(&offsets[v]);
                const int end = ctx.ld(&offsets[v + 1]);
                const int deg = end - begin;
                ctx.intOp(3);
                ctx.branch(1);
                if (deg == 0)
                    return;
                const float share = static_cast<float>(damping) *
                                    ctx.ld(&rank[v]) / deg;
                ctx.fp32(2);
                for (int e = begin; e < end; ++e) {
                    const int u = ctx.ld(&targets[e]);
                    ctx.atomicAdd(&next[u], share);
                    ctx.intOp(1);
                }
            });
        // Kernel: L1 delta reduction + swap into rank.
        gpu::DeviceScalar<double> delta(0.0);
        dev.launchLinear(
            KernelDesc("pr_delta_swap", 24).serial(), n, threads_per_block,
            [&](ThreadCtx &ctx) {
                const int v = static_cast<int>(ctx.globalId());
                const float old = ctx.ld(&rank[v]);
                const float nv = ctx.ld(&next[v]);
                ctx.fp32(2);
                ctx.atomicAdd(delta.get(), std::fabs(
                    static_cast<double>(nv) - old));
                ctx.st(&rank[v], nv);
            });
        ++result.iterations;
        result.finalDelta = *delta;
        if (*delta < tolerance)
            break;
    }
    return result;
}

CcResult
gunrockConnectedComponents(gpu::Device &dev, const CsrGraph &g,
                           int threads_per_block)
{
    const int n = g.numVertices();
    const auto &offsets = g.offsets();
    const auto &targets = g.targets();

    CcResult result;
    result.labels.resize(n);
    int *label = result.labels.data();

    // Kernel: label initialization (every vertex its own component).
    dev.launchLinear(
        KernelDesc("cc_init", 12), n, threads_per_block,
        [&](ThreadCtx &ctx) {
            const int v = static_cast<int>(ctx.globalId());
            ctx.st(&label[v], v);
        });

    gpu::DeviceScalar<int> changed(1);
    while (*changed && result.iterations < n) {
        *changed = 0;
        // Kernel: hook - adopt the smallest neighboring label.
        dev.launchLinear(
            KernelDesc("cc_hook", 28).serial(), n, threads_per_block,
            [&](ThreadCtx &ctx) {
                const int v = static_cast<int>(ctx.globalId());
                const int begin = ctx.ld(&offsets[v]);
                const int end = ctx.ld(&offsets[v + 1]);
                int best = ctx.ld(&label[v]);
                ctx.intOp(3);
                for (int e = begin; e < end; ++e) {
                    const int u = ctx.ld(&targets[e]);
                    const int lu = ctx.ld(&label[u]);
                    ctx.branch(1);
                    ctx.intOp(1);
                    if (lu < best)
                        best = lu;
                }
                ctx.branch(1);
                if (best < ctx.ld(&label[v])) {
                    ctx.st(&label[v], best);
                    ctx.atomicMax(changed.get(), 1);
                }
            });
        // Kernel: compress - pointer-jump labels toward the roots.
        dev.launchLinear(
            KernelDesc("cc_compress", 20).serial(), n, threads_per_block,
            [&](ThreadCtx &ctx) {
                const int v = static_cast<int>(ctx.globalId());
                int l = ctx.ld(&label[v]);
                int ll = ctx.ld(&label[l]);
                ctx.branch(1);
                while (l != ll) {
                    l = ll;
                    ll = ctx.ld(&label[l]);
                    ctx.intOp(1);
                    ctx.branch(1);
                }
                ctx.st(&label[v], l);
            });
        ++result.iterations;
    }

    std::vector<int> distinct(result.labels);
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    result.numComponents = static_cast<int>(distinct.size());
    return result;
}

BcResult
gunrockBetweenness(gpu::Device &dev, const CsrGraph &g, int source,
                   int threads_per_block)
{
    const int n = g.numVertices();
    if (source < 0 || source >= n)
        fatal("BC source out of range");
    const auto &offsets = g.offsets();
    const auto &targets = g.targets();

    BcResult result;
    result.centrality.assign(n, 0.f);
    std::vector<int> level(n, -1);
    std::vector<float> sigma(n, 0.f); ///< Shortest-path counts.
    std::vector<float> delta(n, 0.f); ///< Dependency accumulators.

    // Kernel: initialize levels and path counts.
    dev.launchLinear(
        KernelDesc("bc_init", 16), n, threads_per_block,
        [&](ThreadCtx &ctx) {
            const int v = static_cast<int>(ctx.globalId());
            ctx.st(&level[v], -1);
            ctx.st(&sigma[v], 0.f);
            ctx.st(&delta[v], 0.f);
        });
    level[source] = 0;
    sigma[source] = 1.f;

    // Forward phase: level-synchronous BFS accumulating sigma.
    int depth = 0;
    gpu::DeviceScalar<int> advanced(1);
    while (*advanced) {
        *advanced = 0;
        dev.launchLinear(
            KernelDesc("bc_forward", 32).serial(), n, threads_per_block,
            [&](ThreadCtx &ctx) {
                const int v = static_cast<int>(ctx.globalId());
                ctx.branch(1);
                if (ctx.ld(&level[v]) != depth)
                    return;
                const float sv = ctx.ld(&sigma[v]);
                const int begin = ctx.ld(&offsets[v]);
                const int end = ctx.ld(&offsets[v + 1]);
                ctx.intOp(3);
                for (int e = begin; e < end; ++e) {
                    const int u = ctx.ld(&targets[e]);
                    const int lu = ctx.ld(&level[u]);
                    ctx.branch(1);
                    if (lu == -1) {
                        ctx.st(&level[u], depth + 1);
                        ctx.atomicMax(advanced.get(), 1);
                    }
                    if (lu == -1 || lu == depth + 1) {
                        ctx.atomicAdd(&sigma[u], sv);
                        ctx.fp32(1);
                    }
                }
            });
        ++depth;
    }
    result.iterations = depth;

    // Backward phase: accumulate dependencies from the deepest level.
    for (int d = depth - 1; d > 0; --d) {
        dev.launchLinear(
            KernelDesc("bc_backward", 40).serial(), n, threads_per_block,
            [&](ThreadCtx &ctx) {
                const int v = static_cast<int>(ctx.globalId());
                ctx.branch(1);
                if (ctx.ld(&level[v]) != d - 1)
                    return;
                const float sv = ctx.ld(&sigma[v]);
                const int begin = ctx.ld(&offsets[v]);
                const int end = ctx.ld(&offsets[v + 1]);
                ctx.intOp(3);
                float acc = 0.f;
                for (int e = begin; e < end; ++e) {
                    const int u = ctx.ld(&targets[e]);
                    ctx.branch(1);
                    if (ctx.ld(&level[u]) != d)
                        continue;
                    const float su = ctx.ld(&sigma[u]);
                    const float du = ctx.ld(&delta[u]);
                    acc += sv / su * (1.f + du);
                    ctx.fp32(4);
                }
                ctx.st(&delta[v], acc);
                ctx.branch(1);
                if (v != source)
                    ctx.atomicAdd(&result.centrality[v], acc);
            });
    }
    return result;
}

std::vector<float>
referenceBetweenness(const CsrGraph &g, int source)
{
    const int n = g.numVertices();
    std::vector<float> centrality(n, 0.f);
    std::vector<int> level(n, -1);
    std::vector<float> sigma(n, 0.f), delta(n, 0.f);
    level[source] = 0;
    sigma[source] = 1.f;
    std::vector<int> order{source};
    for (std::size_t head = 0; head < order.size(); ++head) {
        const int v = order[head];
        for (int k = 0; k < g.degree(v); ++k) {
            const int u = g.neighborsBegin(v)[k];
            if (level[u] == -1) {
                level[u] = level[v] + 1;
                order.push_back(u);
            }
            if (level[u] == level[v] + 1)
                sigma[u] += sigma[v];
        }
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const int v = *it;
        for (int k = 0; k < g.degree(v); ++k) {
            const int u = g.neighborsBegin(v)[k];
            if (level[u] == level[v] + 1)
                delta[v] += sigma[v] / sigma[u] * (1.f + delta[u]);
        }
        if (v != source)
            centrality[v] += delta[v];
    }
    return centrality;
}

} // namespace cactus::graph
