/**
 * @file
 * Gunrock-style breadth-first search: a bulk-synchronous, frontier-
 * centric pipeline of GPU kernels. Each iteration picks a load-balancing
 * strategy for the advance step (thread-, warp-, or CTA-per-vertex,
 * Gunrock's TWC scheme) based on the frontier's degree profile, then
 * filters duplicates; large frontiers switch to a direction-optimized
 * bottom-up step. Which kernels run is therefore input-dependent,
 * exactly the behavior the paper highlights for GST versus GRU
 * (Observation #3).
 */

#ifndef CACTUS_GRAPH_BFS_HH
#define CACTUS_GRAPH_BFS_HH

#include <string>
#include <vector>

#include "gpu/device.hh"
#include "graph/csr.hh"

namespace cactus::graph {

/** Tuning knobs for the BFS pipeline. */
struct BfsOptions
{
    int threadsPerBlock = 256;
    /** Switch to bottom-up when frontier degree sum exceeds this
     *  fraction of the edges (direction-optimizing BFS). */
    double bottomUpThreshold = 0.05;
    bool enableBottomUp = true;
    /** Average frontier degree above which the warp / CTA advance
     *  kernels are selected. */
    double warpDegreeThreshold = 8.0;
    double ctaDegreeThreshold = 64.0;
};

/** Outcome of a BFS run. */
struct BfsResult
{
    std::vector<int> levels;   ///< -1 for unreached vertices.
    int iterations = 0;
    std::int64_t verticesVisited = 0;
    std::vector<std::string> kernelSequence; ///< Advance kernel per iter.
};

/**
 * Run BFS on the device.
 * @param dev Simulated GPU.
 * @param g Input graph.
 * @param source Source vertex.
 */
BfsResult gunrockBfs(gpu::Device &dev, const CsrGraph &g, int source,
                     const BfsOptions &opts = BfsOptions{});

/** Host reference BFS for validation. */
std::vector<int> referenceBfs(const CsrGraph &g, int source);

} // namespace cactus::graph

#endif // CACTUS_GRAPH_BFS_HH
