/**
 * @file
 * Compressed-sparse-row graph representation plus the synthetic
 * generators standing in for the paper's inputs: an RMAT power-law
 * generator (SOC-Twitter10-like degree skew) and a 2-D grid road-network
 * generator (Road-USA-like low degree and large diameter).
 */

#ifndef CACTUS_GRAPH_CSR_HH
#define CACTUS_GRAPH_CSR_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hh"

namespace cactus::graph {

/** An undirected graph in CSR form (each edge stored both ways). */
class CsrGraph
{
  public:
    /** Build from an edge list; edges are deduplicated and symmetrized. */
    static CsrGraph fromEdges(
        int num_vertices,
        std::vector<std::pair<int, int>> edges);

    /**
     * RMAT power-law generator (Graph500-style parameters), producing
     * the heavy-tailed degree distribution of social networks.
     * @param scale Vertices = 2^scale.
     * @param edge_factor Directed edges generated per vertex.
     */
    static CsrGraph rmat(int scale, int edge_factor, Rng &rng,
                         double a = 0.57, double b = 0.19,
                         double c = 0.19);

    /**
     * Road-network generator: a width x height grid with ~10% of the
     * lattice edges removed and sparse long-range "highway" shortcuts;
     * low uniform degree and a large diameter.
     */
    static CsrGraph roadGrid(int width, int height, Rng &rng);

    /** Uniform random (Erdos-Renyi-style) graph, for tests. */
    static CsrGraph uniformRandom(int num_vertices, int num_edges,
                                  Rng &rng);

    int numVertices() const { return static_cast<int>(offsets_.size()) - 1; }
    std::int64_t numDirectedEdges() const
    {
        return static_cast<std::int64_t>(targets_.size());
    }

    int
    degree(int v) const
    {
        return offsets_[v + 1] - offsets_[v];
    }

    const int *neighborsBegin(int v) const { return &targets_[offsets_[v]]; }

    const std::vector<int> &offsets() const { return offsets_; }
    const std::vector<int> &targets() const { return targets_; }

    /** Largest vertex degree. */
    int maxDegree() const;

    /** A vertex with near-maximal degree (good BFS source for RMAT). */
    int highestDegreeVertex() const;

  private:
    std::vector<int> offsets_; ///< numVertices + 1.
    std::vector<int> targets_;
};

} // namespace cactus::graph

#endif // CACTUS_GRAPH_CSR_HH
