/**
 * @file
 * Further Gunrock-style graph primitives beyond BFS: single-source
 * shortest paths (Bellman-Ford frontier relaxation), PageRank
 * (bulk-synchronous push iterations), and connected components
 * (hook-and-compress label propagation). The paper's future work lists
 * "additional modern-day applications"; these are the primitives the
 * real Gunrock library ships alongside BFS, built on the same
 * frontier/advance kernel machinery.
 */

#ifndef CACTUS_GRAPH_PRIMITIVES_HH
#define CACTUS_GRAPH_PRIMITIVES_HH

#include <vector>

#include "gpu/device.hh"
#include "graph/csr.hh"

namespace cactus::graph {

/** Result of an SSSP run. */
struct SsspResult
{
    std::vector<float> distances; ///< +inf (1e30f) if unreachable.
    int iterations = 0;
};

/**
 * Frontier-based SSSP (Bellman-Ford relaxation with a worklist).
 * @param weights Per-directed-edge weights, aligned with
 *        g.targets(); must be non-negative.
 */
SsspResult gunrockSssp(gpu::Device &dev, const CsrGraph &g, int source,
                       const std::vector<float> &weights,
                       int threads_per_block = 256);

/** Uniform random edge weights in [lo, hi), aligned with targets(). */
std::vector<float> randomEdgeWeights(const CsrGraph &g, Rng &rng,
                                     float lo = 1.f, float hi = 10.f);

/** Host reference SSSP (Dijkstra) for validation. */
std::vector<float> referenceSssp(const CsrGraph &g, int source,
                                 const std::vector<float> &weights);

/** Result of a PageRank run. */
struct PageRankResult
{
    std::vector<float> ranks;
    int iterations = 0;
    double finalDelta = 0; ///< L1 rank change of the last iteration.
};

/**
 * Bulk-synchronous PageRank with damping, run until the L1 delta
 * drops below @p tolerance or @p max_iterations is reached.
 */
PageRankResult gunrockPageRank(gpu::Device &dev, const CsrGraph &g,
                               double damping = 0.85,
                               double tolerance = 1e-4,
                               int max_iterations = 50,
                               int threads_per_block = 256);

/** Result of a connected-components run. */
struct CcResult
{
    std::vector<int> labels; ///< Component representative per vertex.
    int numComponents = 0;
    int iterations = 0;
};

/** Hook-and-compress (Shiloach-Vishkin-style) connected components. */
CcResult gunrockConnectedComponents(gpu::Device &dev, const CsrGraph &g,
                                    int threads_per_block = 256);

/** Result of a betweenness-centrality run. */
struct BcResult
{
    std::vector<float> centrality; ///< Unnormalized BC per vertex.
    int iterations = 0;            ///< BFS depths traversed.
};

/**
 * Brandes-style betweenness centrality from a single source: a
 * forward level-synchronous BFS accumulating shortest-path counts,
 * then a backward sweep accumulating dependencies — the two-phase
 * kernel pipeline Gunrock's BC app uses.
 */
BcResult gunrockBetweenness(gpu::Device &dev, const CsrGraph &g,
                            int source, int threads_per_block = 256);

/** Host reference single-source Brandes BC for validation. */
std::vector<float> referenceBetweenness(const CsrGraph &g, int source);

} // namespace cactus::graph

#endif // CACTUS_GRAPH_PRIMITIVES_HH
