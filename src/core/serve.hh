/**
 * @file
 * Characterization-as-a-service: a long-running daemon that accepts
 * profiling requests (benchmark x DeviceConfig knobs x scale) over a
 * local TCP socket speaking newline-delimited JSON and answers
 * repeats from a content-addressed LRU result cache.
 *
 * Correct by construction: PRs 1-5 made every characterization result
 * a pure, digest-keyed function of (benchmark, config, scale) — the
 * profile is bit-identical across host thread counts, ASLR, replay
 * fast-forward, and process restarts. A cache entry keyed by
 * benchmark name + scale token + DeviceConfig::digest() is therefore
 * provably equivalent to a fresh run, and the load generator asserts
 * exactly that: cache-hit responses are byte-identical to fresh-run
 * responses.
 *
 * Three layers:
 *
 *  - ResultCache: an LRU map from content-address key to the
 *    serialized result body, with in-flight request coalescing — N
 *    concurrent identical requests trigger exactly one simulation;
 *    the N-1 latecomers block on the first request's completion and
 *    share its bytes (and its exception, if it fails).
 *
 *  - processRequest(): one request line in, one response line out.
 *    Pure with respect to the socket layer, so tests drive it
 *    directly. Failures map onto the campaign error taxonomy
 *    (config / failed / timeout / corrupt) instead of tearing down
 *    the connection.
 *
 *  - Server: the socket plumbing — an acceptor thread plus one
 *    thread per connection (the YCSB-style closed-loop clients of
 *    tools/cactus_load.cc supply the concurrency). Shutdown is
 *    cooperative: stop() cancels in-flight simulations through the
 *    same CancelToken machinery the campaign watchdog uses, at the
 *    next kernel-launch boundary.
 *
 * On top of the happy path sits an overload-and-degradation layer:
 *
 *  - AdmissionQueue bounds the simulations the daemon will run
 *    (maxInflight) or queue (maxQueue) at once; beyond that a request
 *    gets a fast, well-formed {"taxonomy":"overloaded"} rejection —
 *    retryable by contract, never cached. Cache hits, coalesced
 *    joins, ping, and health bypass admission entirely: answering
 *    hot keys in microseconds is the point of the cache, so load
 *    shedding must never apply to them.
 *
 *  - Per-connection limits (maxLineBytes, idleTimeoutSeconds,
 *    ioDeadlineSeconds) keep a slowloris client or an unbounded
 *    request line from wedging or OOMing the daemon; all socket I/O
 *    is partial-read/partial-write-correct under those deadlines.
 *
 *  - drain() is the graceful half of shutdown: stop accepting, let
 *    admitted and queued requests finish (their responses are fully
 *    written) up to a deadline, then cancel whatever remains.
 *    {"op":"health"} reports queue depth, inflight count, hit rate,
 *    and uptime for load-balancer readiness, and keeps answering
 *    while draining.
 *
 *  - Deterministic fault sites (CACTUS_FAULT, common/fault.hh):
 *    net-accept / net-read / net-write drop connections at the
 *    named I/O step; cache-write tears the persistence write before
 *    its atomic rename (common/atomic_file.hh), so saveNdjson leaves
 *    either the old or the new complete file, never a hybrid.
 */

#ifndef CACTUS_CORE_SERVE_HH
#define CACTUS_CORE_SERVE_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/cancel.hh"
#include "common/fault.hh"

namespace cactus::gpu {
struct DeviceConfig;
}

namespace cactus::core {

struct BenchmarkProfile;
struct VerifyResult;

/**
 * Content-addressed LRU result cache with in-flight coalescing.
 * Thread-safe; compute callbacks run outside the lock, so slow
 * simulations of *different* keys proceed in parallel while identical
 * ones coalesce.
 */
class ResultCache
{
  public:
    /** @param capacity Entry cap; at least one is enforced. */
    explicit ResultCache(std::size_t capacity);

    /** Where a body came from, reported to the client verbatim. */
    enum class Source
    {
        Computed, ///< This call ran the simulation.
        Cache,    ///< Served from a completed cache entry.
        Coalesced ///< Waited on an identical in-flight request.
    };

    struct Lookup
    {
        std::string body;
        Source source;
    };

    /**
     * Return the cached body for @p key, or run @p compute exactly
     * once — however many threads ask concurrently — and cache its
     * result. If compute throws, the exception propagates to the
     * computing caller and every coalesced waiter, and nothing is
     * cached (errors are not content: a transient failure must not
     * shadow a future success).
     */
    Lookup getOrCompute(const std::string &key,
                        const std::function<std::string()> &compute);

    /**
     * The completed entry for @p key, if any, refreshing its recency.
     * Never blocks on an in-flight computation (campaigns use this to
     * answer sweep points from a warm cache without coalescing
     * semantics). Counts a hit or a miss.
     */
    std::optional<std::string> peek(const std::string &key);

    /** Store @p body under @p key (overwriting any previous entry),
     *  making it most recently used and evicting beyond capacity. */
    void insert(const std::string &key, std::string body);

    /** What loadNdjson() found, record by record. */
    struct LoadStats
    {
        std::size_t loaded = 0;  ///< Well-formed records inserted.
        std::size_t torn = 0;    ///< Unparseable (torn/truncated).
        std::size_t corrupt = 0; ///< Parsed but digest mismatched.
    };

    /**
     * Persist completed entries as NDJSON, one
     * {"key":...,"digest":...,"body":...} record per line (digest =
     * hex16 FNV-1a of the body bytes, validated on load), least
     * recently used first — so a loadNdjson() of the file rebuilds
     * both the contents and the LRU order. The file is replaced
     * atomically (write-temp + fsync + rename, common/atomic_file.hh)
     * so a crash mid-save leaves the previous complete file;
     * ConfigError when the write fails — including an injected
     * 'cache-write' fault through @p fault.
     */
    void saveNdjson(const std::string &path,
                    const FaultInjector &fault =
                        FaultInjector::fromEnv()) const;

    /**
     * Insert every well-formed record of @p path (absent file: no-op).
     * Torn or malformed lines are skipped and counted, the checkpoint
     * reader's discipline; records whose digest field does not match
     * their body bytes are skipped and counted as corrupt (records
     * without a digest field — pre-digest files — are trusted).
     * Returns records loaded; @p stats (optional) receives the full
     * breakdown. Hit/miss counters are not touched — warming is not
     * traffic.
     */
    std::size_t loadNdjson(const std::string &path,
                           LoadStats *stats = nullptr);

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const;

    /** Keys most-recently-used first — the LRU eviction order is the
     *  reverse. For tests and the stats endpoint. */
    std::vector<std::string> keysMruFirst() const;

    /** Threads currently blocked on an in-flight computation of
     *  @p key. Lets a test hold its compute callback open until every
     *  concurrent request has provably coalesced. */
    std::size_t inflightWaiters(const std::string &key) const;

    std::uint64_t hits() const { return counter(hits_); }
    std::uint64_t misses() const { return counter(misses_); }
    std::uint64_t coalesced() const { return counter(coalesced_); }
    std::uint64_t evictions() const { return counter(evictions_); }

  private:
    struct Entry
    {
        std::string key;
        std::string body;
    };

    /** One in-flight computation; waiters block on cv under mutex_. */
    struct Inflight
    {
        bool done = false;
        std::exception_ptr error;
        std::string body;
        int waiters = 0;
        std::condition_variable cv;
    };

    std::uint64_t
    counter(const std::uint64_t &c) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return c;
    }

    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::list<Entry> lru_; ///< Front = most recently used.
    std::unordered_map<std::string, std::list<Entry>::iterator> index_;
    std::unordered_map<std::string, std::shared_ptr<Inflight>>
        inflight_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t coalesced_ = 0;
    std::uint64_t evictions_ = 0;
};

/**
 * Bounded admission control for simulations. At most maxInflight
 * computations run concurrently; up to maxQueue more wait for a slot;
 * anything beyond is rejected immediately (the caller turns that into
 * an "overloaded" response). close() starts a drain: new acquires are
 * refused as Closed, but already-queued waiters still get slots, so
 * accepted work finishes. Thread-safe.
 */
class AdmissionQueue
{
  public:
    /** Floors: at least 1 inflight slot; a negative queue cap is 0. */
    AdmissionQueue(int maxInflight, int maxQueue);

    enum class Outcome
    {
        Admitted, ///< Slot acquired; pair with release().
        Rejected, ///< Queue full: shed this request now.
        Closed    ///< Draining: refuse new work.
    };

    /** Acquire a simulation slot, blocking in the bounded queue when
     *  all slots are busy. Never blocks when the queue is full. */
    Outcome acquire();

    /** Return a slot acquired via Admitted. */
    void release();

    /** Begin draining: refuse new acquires, keep serving the queue. */
    void close();

    /** Block until nothing is inflight or queued, up to @p seconds
     *  (<= 0: just poll). True when fully idle. */
    bool awaitIdle(double seconds);

    int maxInflight() const { return maxInflight_; }
    int maxQueue() const { return maxQueue_; }
    int inflight() const;
    int queued() const;
    std::uint64_t rejected() const;

  private:
    const int maxInflight_;
    const int maxQueue_;
    mutable std::mutex mutex_;
    std::condition_variable slotFree_;
    std::condition_variable idle_;
    int inflight_ = 0;
    int queued_ = 0;
    bool closed_ = false;
    std::uint64_t rejected_ = 0;
};

/** Point-in-time server health, serialized by {"op":"health"}. */
struct HealthSnapshot
{
    bool draining = false;
    int inflight = 0;
    int queued = 0;
    int maxInflight = 0;
    int maxQueue = 0;
    double uptimeSeconds = 0;
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    std::uint64_t overloaded = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::size_t cacheSize = 0;
};

/** Execution context threaded through request processing. */
struct RequestContext
{
    /** Server-lifetime token: requested on shutdown, cancelling
     *  in-flight simulations at their next launch boundary. */
    CancelToken cancel;

    /** Per-request watchdog deadline in wall seconds; 0 disables. */
    double timeoutSeconds = 0;

    /** Host threads for request simulations when the request does not
     *  say (its "threads" key overrides); 0 = all hardware threads.
     *  Results are identical either way (PR 1/2) — this knob only
     *  balances per-request fan-out against cross-request
     *  concurrency. */
    int defaultHostThreads = 1;

    /**
     * Admission hook, called just before a simulation would start —
     * i.e. only on a cache miss that is not coalescing onto an
     * in-flight identical request. Returning false (after filling
     * @p reason) turns the request into an "overloaded" response
     * without touching the cache. Null: always admit (direct
     * processRequest callers, tests).
     */
    std::function<bool(std::string &reason)> admitSimulation;

    /** Paired with a successful admitSimulation; runs after the
     *  simulation finishes (success or failure). */
    std::function<void()> releaseSimulation;

    /** Health provider for {"op":"health"}; null reports a
     *  default-constructed (all-zero) snapshot. */
    std::function<HealthSnapshot()> health;
};

struct RequestOutcome
{
    std::string response; ///< One JSON object, no trailing newline.
    bool error = false;   ///< True when response carries status:error.
    std::string taxonomy; ///< Error taxonomy; empty on success.
};

/**
 * Process one request line against @p cache. Never throws: every
 * failure becomes a {"status":"error","taxonomy":...} response, with
 * the taxonomy mirroring campaign outcomes — "config" (bad request),
 * "failed" (benchmark error), "timeout" (watchdog), "corrupt"
 * (integrity violation) — plus "overloaded" (admission refused; the
 * one retryable-by-contract taxonomy, never cached).
 *
 * Request schema (one JSON object per line; unknown keys ignored;
 * "op" is accepted as a synonym for "cmd"):
 *   {"bench":"GMS","scale":"tiny"}                    — minimal
 *   {"cmd":"ping"}                                    — liveness
 *   {"op":"health"}                                   — readiness:
 *     queue depth, inflight count, hit rate, uptime, draining flag;
 *     bypasses admission so load balancers can probe a saturated or
 *     draining daemon
 *   optional model knobs (all folded into the cache key through
 *   DeviceConfig::digest()): "l1_kb", "l2_kb", "l2_slices",
 *   "sampled_warps", "full_caches"; optional execution knobs (NOT in
 *   the key — results are invariant to them): "threads",
 *   "fast_forward".
 *
 * Response: {"status":"ok","key":K,"source":S,"result":{...}} where
 * S is "computed", "cache", or "coalesced" and the result object's
 * bytes are stored in — and served verbatim from — the cache.
 */
RequestOutcome processRequest(const std::string &line,
                              ResultCache &cache,
                              const RequestContext &ctx);

/**
 * Serialize one characterization result as the canonical JSON body —
 * the bytes the cache stores, the serve layer returns, and campaign
 * checkpoints embed. Deterministic byte-for-byte: the profile is a
 * pure function of (benchmark, config digest, scale) and every double
 * prints with %.17g, so equal inputs always yield equal bytes.
 * @p outputDigest may be null (benchmark records no output).
 */
std::string serializeResultBody(const BenchmarkProfile &profile,
                                const VerifyResult *outputDigest,
                                const std::string &scaleTok,
                                const gpu::DeviceConfig &cfg);

/** Knobs for one server instance. */
struct ServeOptions
{
    std::string bindAddress = "127.0.0.1";
    int port = 0; ///< 0 = ephemeral; see Server::port().
    std::size_t cacheCapacity = 128;
    double timeoutSeconds = 0;  ///< Per-request watchdog; 0 = off.
    int defaultHostThreads = 1; ///< See RequestContext.

    // --- Overload control -------------------------------------------------

    /** Concurrent simulations admitted; at least 1 is enforced. */
    int maxInflight = 4;

    /** Simulations allowed to wait for a slot; beyond this a request
     *  is rejected with taxonomy "overloaded". */
    int maxQueue = 64;

    /** Longest accepted request line in bytes. A connection that
     *  exceeds it gets a config-taxonomy error and is closed (the
     *  frame boundary is lost). Floored at 1. */
    std::size_t maxLineBytes = 64 * 1024;

    /** Close a connection after this many seconds with no bytes at
     *  all between requests; 0 = never. */
    double idleTimeoutSeconds = 0;

    /** Deadline for finishing a started request line (first byte to
     *  newline) and for writing a response — the slowloris guard;
     *  0 = none. */
    double ioDeadlineSeconds = 0;

    /** Fault injection for the net-accept/net-read/net-write sites;
     *  defaults to the process-wide CACTUS_FAULT spec. Tests install
     *  explicit injectors via FaultInjector::parse. */
    FaultInjector fault = FaultInjector::fromEnv();
};

/** Aggregate request counters, snapshot via Server::stats(). */
struct ServeStats
{
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    std::uint64_t overloaded = 0; ///< Subset of errors: shed load.
    std::uint64_t computed = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t evictions = 0;
};

/**
 * The newline-delimited-JSON TCP server. start() binds and spawns the
 * acceptor; stop() (idempotent, also run by the destructor) cancels
 * in-flight simulations, unblocks every connection, and joins all
 * threads before returning.
 */
class Server
{
  public:
    explicit Server(ServeOptions opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen, and start accepting. ConfigError on failure. */
    void start();

    /**
     * Graceful degradation: stop accepting connections, refuse new
     * simulations ("overloaded: server draining" — ping/health still
     * answer), and wait up to @p timeoutSeconds for every admitted or
     * queued request to finish AND have its response fully written.
     * Whatever remains is then cancelled through the CancelToken
     * path. Returns true when the drain completed within the
     * deadline. Idempotent; call stop() afterwards to join
     * connections.
     */
    bool drain(double timeoutSeconds);

    /** Cooperative shutdown; safe to call twice (and after drain). */
    void stop();

    /** The bound port (resolves port 0 after start()). */
    int port() const { return port_; }

    ServeStats stats() const;
    HealthSnapshot health() const;
    bool draining() const;
    const ResultCache &cache() const { return cache_; }
    ResultCache &cache() { return cache_; } ///< For warm-up/persist.

  private:
    void acceptLoop();
    void connectionLoop(int fd);
    void stopAccepting(); ///< Idempotent: join acceptor, close fd.

    const ServeOptions opts_;
    ResultCache cache_;
    AdmissionQueue admission_;
    CancelToken cancel_ = CancelToken::make();
    std::chrono::steady_clock::time_point started_at_;

    int listenFd_ = -1;
    int wakePipe_[2] = {-1, -1};
    int port_ = 0;
    bool started_ = false;
    bool stopped_ = false;
    std::atomic<bool> draining_{false};
    std::atomic<bool> acceptorJoined_{false};

    std::thread acceptor_;
    mutable std::mutex mutex_; ///< Guards conns_/threads_/stats_.
    std::vector<int> conns_;
    std::vector<std::thread> threads_;
    ServeStats stats_;

    /** Request lines being handled right now, response write
     *  included — what drain() waits to reach zero. */
    int activeLines_ = 0;
    std::condition_variable linesIdle_;
};

} // namespace cactus::core

#endif // CACTUS_CORE_SERVE_HH
