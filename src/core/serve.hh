/**
 * @file
 * Characterization-as-a-service: a long-running daemon that accepts
 * profiling requests (benchmark x DeviceConfig knobs x scale) over a
 * local TCP socket speaking newline-delimited JSON and answers
 * repeats from a content-addressed LRU result cache.
 *
 * Correct by construction: PRs 1-5 made every characterization result
 * a pure, digest-keyed function of (benchmark, config, scale) — the
 * profile is bit-identical across host thread counts, ASLR, replay
 * fast-forward, and process restarts. A cache entry keyed by
 * benchmark name + scale token + DeviceConfig::digest() is therefore
 * provably equivalent to a fresh run, and the load generator asserts
 * exactly that: cache-hit responses are byte-identical to fresh-run
 * responses.
 *
 * Three layers:
 *
 *  - ResultCache: an LRU map from content-address key to the
 *    serialized result body, with in-flight request coalescing — N
 *    concurrent identical requests trigger exactly one simulation;
 *    the N-1 latecomers block on the first request's completion and
 *    share its bytes (and its exception, if it fails).
 *
 *  - processRequest(): one request line in, one response line out.
 *    Pure with respect to the socket layer, so tests drive it
 *    directly. Failures map onto the campaign error taxonomy
 *    (config / failed / timeout / corrupt) instead of tearing down
 *    the connection.
 *
 *  - Server: the socket plumbing — an acceptor thread plus one
 *    thread per connection (the YCSB-style closed-loop clients of
 *    tools/cactus_load.cc supply the concurrency). Shutdown is
 *    cooperative: stop() cancels in-flight simulations through the
 *    same CancelToken machinery the campaign watchdog uses, at the
 *    next kernel-launch boundary.
 */

#ifndef CACTUS_CORE_SERVE_HH
#define CACTUS_CORE_SERVE_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/cancel.hh"

namespace cactus::gpu {
struct DeviceConfig;
}

namespace cactus::core {

struct BenchmarkProfile;
struct VerifyResult;

/**
 * Content-addressed LRU result cache with in-flight coalescing.
 * Thread-safe; compute callbacks run outside the lock, so slow
 * simulations of *different* keys proceed in parallel while identical
 * ones coalesce.
 */
class ResultCache
{
  public:
    /** @param capacity Entry cap; at least one is enforced. */
    explicit ResultCache(std::size_t capacity);

    /** Where a body came from, reported to the client verbatim. */
    enum class Source
    {
        Computed, ///< This call ran the simulation.
        Cache,    ///< Served from a completed cache entry.
        Coalesced ///< Waited on an identical in-flight request.
    };

    struct Lookup
    {
        std::string body;
        Source source;
    };

    /**
     * Return the cached body for @p key, or run @p compute exactly
     * once — however many threads ask concurrently — and cache its
     * result. If compute throws, the exception propagates to the
     * computing caller and every coalesced waiter, and nothing is
     * cached (errors are not content: a transient failure must not
     * shadow a future success).
     */
    Lookup getOrCompute(const std::string &key,
                        const std::function<std::string()> &compute);

    /**
     * The completed entry for @p key, if any, refreshing its recency.
     * Never blocks on an in-flight computation (campaigns use this to
     * answer sweep points from a warm cache without coalescing
     * semantics). Counts a hit or a miss.
     */
    std::optional<std::string> peek(const std::string &key);

    /** Store @p body under @p key (overwriting any previous entry),
     *  making it most recently used and evicting beyond capacity. */
    void insert(const std::string &key, std::string body);

    /**
     * Persist completed entries as NDJSON, one
     * {"key":...,"body":...} record per line, least recently used
     * first — so a loadNdjson() of the file rebuilds both the
     * contents and the LRU order. ConfigError when unwritable.
     */
    void saveNdjson(const std::string &path) const;

    /**
     * Insert every well-formed record of @p path (absent file: no-op;
     * torn or malformed lines are skipped with a warning, the
     * checkpoint reader's discipline). Returns records loaded.
     * Hit/miss counters are not touched — warming is not traffic.
     */
    std::size_t loadNdjson(const std::string &path);

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const;

    /** Keys most-recently-used first — the LRU eviction order is the
     *  reverse. For tests and the stats endpoint. */
    std::vector<std::string> keysMruFirst() const;

    /** Threads currently blocked on an in-flight computation of
     *  @p key. Lets a test hold its compute callback open until every
     *  concurrent request has provably coalesced. */
    std::size_t inflightWaiters(const std::string &key) const;

    std::uint64_t hits() const { return counter(hits_); }
    std::uint64_t misses() const { return counter(misses_); }
    std::uint64_t coalesced() const { return counter(coalesced_); }
    std::uint64_t evictions() const { return counter(evictions_); }

  private:
    struct Entry
    {
        std::string key;
        std::string body;
    };

    /** One in-flight computation; waiters block on cv under mutex_. */
    struct Inflight
    {
        bool done = false;
        std::exception_ptr error;
        std::string body;
        int waiters = 0;
        std::condition_variable cv;
    };

    std::uint64_t
    counter(const std::uint64_t &c) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return c;
    }

    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::list<Entry> lru_; ///< Front = most recently used.
    std::unordered_map<std::string, std::list<Entry>::iterator> index_;
    std::unordered_map<std::string, std::shared_ptr<Inflight>>
        inflight_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t coalesced_ = 0;
    std::uint64_t evictions_ = 0;
};

/** Execution context threaded through request processing. */
struct RequestContext
{
    /** Server-lifetime token: requested on shutdown, cancelling
     *  in-flight simulations at their next launch boundary. */
    CancelToken cancel;

    /** Per-request watchdog deadline in wall seconds; 0 disables. */
    double timeoutSeconds = 0;

    /** Host threads for request simulations when the request does not
     *  say (its "threads" key overrides); 0 = all hardware threads.
     *  Results are identical either way (PR 1/2) — this knob only
     *  balances per-request fan-out against cross-request
     *  concurrency. */
    int defaultHostThreads = 1;
};

struct RequestOutcome
{
    std::string response; ///< One JSON object, no trailing newline.
    bool error = false;   ///< True when response carries status:error.
};

/**
 * Process one request line against @p cache. Never throws: every
 * failure becomes a {"status":"error","taxonomy":...} response, with
 * the taxonomy mirroring campaign outcomes — "config" (bad request),
 * "failed" (benchmark error), "timeout" (watchdog), "corrupt"
 * (integrity violation).
 *
 * Request schema (one JSON object per line; unknown keys ignored):
 *   {"bench":"GMS","scale":"tiny"}                    — minimal
 *   {"cmd":"ping"}                                    — liveness
 *   optional model knobs (all folded into the cache key through
 *   DeviceConfig::digest()): "l1_kb", "l2_kb", "l2_slices",
 *   "sampled_warps", "full_caches"; optional execution knobs (NOT in
 *   the key — results are invariant to them): "threads",
 *   "fast_forward".
 *
 * Response: {"status":"ok","key":K,"source":S,"result":{...}} where
 * S is "computed", "cache", or "coalesced" and the result object's
 * bytes are stored in — and served verbatim from — the cache.
 */
RequestOutcome processRequest(const std::string &line,
                              ResultCache &cache,
                              const RequestContext &ctx);

/**
 * Serialize one characterization result as the canonical JSON body —
 * the bytes the cache stores, the serve layer returns, and campaign
 * checkpoints embed. Deterministic byte-for-byte: the profile is a
 * pure function of (benchmark, config digest, scale) and every double
 * prints with %.17g, so equal inputs always yield equal bytes.
 * @p outputDigest may be null (benchmark records no output).
 */
std::string serializeResultBody(const BenchmarkProfile &profile,
                                const VerifyResult *outputDigest,
                                const std::string &scaleTok,
                                const gpu::DeviceConfig &cfg);

/** Knobs for one server instance. */
struct ServeOptions
{
    std::string bindAddress = "127.0.0.1";
    int port = 0; ///< 0 = ephemeral; see Server::port().
    std::size_t cacheCapacity = 128;
    double timeoutSeconds = 0;  ///< Per-request watchdog; 0 = off.
    int defaultHostThreads = 1; ///< See RequestContext.
};

/** Aggregate request counters, snapshot via Server::stats(). */
struct ServeStats
{
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    std::uint64_t computed = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t evictions = 0;
};

/**
 * The newline-delimited-JSON TCP server. start() binds and spawns the
 * acceptor; stop() (idempotent, also run by the destructor) cancels
 * in-flight simulations, unblocks every connection, and joins all
 * threads before returning.
 */
class Server
{
  public:
    explicit Server(ServeOptions opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen, and start accepting. ConfigError on failure. */
    void start();

    /** Cooperative shutdown; safe to call twice. */
    void stop();

    /** The bound port (resolves port 0 after start()). */
    int port() const { return port_; }

    ServeStats stats() const;
    const ResultCache &cache() const { return cache_; }
    ResultCache &cache() { return cache_; } ///< For warm-up/persist.

  private:
    void acceptLoop();
    void connectionLoop(int fd);

    const ServeOptions opts_;
    ResultCache cache_;
    CancelToken cancel_ = CancelToken::make();

    int listenFd_ = -1;
    int wakePipe_[2] = {-1, -1};
    int port_ = 0;
    bool started_ = false;
    bool stopped_ = false;

    std::thread acceptor_;
    mutable std::mutex mutex_; ///< Guards conns_/threads_/stats_.
    std::vector<int> conns_;
    std::vector<std::thread> threads_;
    ServeStats stats_;
};

} // namespace cactus::core

#endif // CACTUS_CORE_SERVE_HH
