#include "core/coord.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/error.hh"
#include "common/json.hh"

namespace cactus::core {

namespace {

/** A lease record line. Deliberately field-ordered so every worker
 *  writes byte-wise comparable records; the line is one write(2), so
 *  concurrent leases never interleave mid-line. */
std::string
leaseLine(long gen, const std::string &task, const std::string &worker,
          long fence)
{
    return "{\"state\":\"lease\",\"gen\":" + std::to_string(gen) +
        ",\"task\":\"" + jsonEscape(task) + "\",\"worker\":\"" +
        jsonEscape(worker) + "\",\"fence\":" + std::to_string(fence) +
        "}";
}

std::string
beatLine(long gen, const std::string &worker, long pid,
         std::uint64_t seq)
{
    return "{\"state\":\"beat\",\"gen\":" + std::to_string(gen) +
        ",\"worker\":\"" + jsonEscape(worker) +
        "\",\"pid\":" + std::to_string(pid) +
        ",\"seq\":" + std::to_string(seq) + "}";
}

std::string
releaseLine(long gen, const std::string &task,
            const std::string &worker)
{
    return "{\"state\":\"release\",\"gen\":" + std::to_string(gen) +
        ",\"task\":\"" + jsonEscape(task) + "\",\"worker\":\"" +
        jsonEscape(worker) + "\"}";
}

/** Shared per-line classifier used by both the member scan and the
 *  read-only inspect(): parses one log line and reports what it is.
 *  Torn lines — truncated by a kill or an injected short write —
 *  parse as Kind::Torn and must have no effect on any table. */
struct ParsedLine
{
    enum class Kind
    {
        Beat,
        Lease,
        Release,
        Done,
        Ignored, ///< Well-formed but irrelevant (e.g. non-ok status).
        Torn
    };
    Kind kind = Kind::Torn;
    std::string task;
    std::string worker;
    long gen = 0;
    long fence = 0;      ///< Lease/done fence (0 for legacy records).
    long pid = 0;        ///< Beat writer pid.
    std::uint64_t seq = 0;
};

ParsedLine
parseLine(const std::string &line)
{
    ParsedLine p;
    std::string state;
    if (jsonFindText(line, "state", state)) {
        double gen = 0, num = 0;
        if (state == "beat") {
            if (!jsonFindText(line, "worker", p.worker) ||
                !jsonFindNumber(line, "gen", gen) ||
                !jsonFindNumber(line, "pid", num))
                return p;
            p.pid = static_cast<long>(num);
            if (!jsonFindNumber(line, "seq", num))
                return p;
            p.seq = static_cast<std::uint64_t>(num);
            p.gen = static_cast<long>(gen);
            p.kind = ParsedLine::Kind::Beat;
        } else if (state == "lease") {
            if (!jsonFindText(line, "task", p.task) ||
                !jsonFindText(line, "worker", p.worker) ||
                !jsonFindNumber(line, "gen", gen))
                return p;
            p.gen = static_cast<long>(gen);
            // Legacy (pre-fencing) leases carry no fence: 0.
            if (jsonFindNumber(line, "fence", num))
                p.fence = static_cast<long>(num);
            p.kind = ParsedLine::Kind::Lease;
        } else if (state == "release") {
            if (!jsonFindText(line, "task", p.task) ||
                !jsonFindText(line, "worker", p.worker) ||
                !jsonFindNumber(line, "gen", gen))
                return p;
            p.gen = static_cast<long>(gen);
            p.kind = ParsedLine::Kind::Release;
        }
        return p; // Unknown state: torn/foreign, claims nothing.
    }
    std::string status;
    if (jsonFindText(line, "status", status)) {
        if (status != "ok" || !jsonFindText(line, "task", p.task)) {
            p.kind = ParsedLine::Kind::Ignored;
            return p;
        }
        double num = 0;
        if (jsonFindNumber(line, "fence", num))
            p.fence = static_cast<long>(num);
        // Legacy done records carry no worker; that only costs the
        // liveness tracker one update.
        jsonFindText(line, "worker", p.worker);
        p.kind = ParsedLine::Kind::Done;
    }
    return p;
}

} // namespace

CoordinationLog::CoordinationLog(std::string path, std::string worker,
                                 Options options)
    : path_(std::move(path)), worker_(std::move(worker)),
      options_(options), pid_(static_cast<long>(::getpid()))
{
    // O_APPEND makes each write land atomically at the current end of
    // file, giving concurrent workers a total order on records — the
    // property the claim protocol and the torn-line discipline both
    // lean on.
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0)
        throw ConfigError("cannot open coordination log '" + path_ +
                          "': " + std::strerror(errno));

    // Newline guard: a writer that died mid-append leaves a torn
    // final line with no terminator. Appending our first record
    // straight after it would weld two records into one unparseable
    // line — so if the file does not end in '\n', add one now. The
    // torn fragment then stands alone as a line the scan/load
    // discipline already skips.
    {
        const int rfd = ::open(path_.c_str(), O_RDONLY);
        if (rfd >= 0) {
            const off_t size = ::lseek(rfd, 0, SEEK_END);
            char last = '\n';
            if (size > 0 &&
                ::pread(rfd, &last, 1, size - 1) == 1 &&
                last != '\n')
                appendLine("");
            ::close(rfd);
        }
    }

    // Fix the generation: join the fleet already leasing in this log
    // (a late-starting worker must honour its peers' leases, not
    // supersede them), or open the next generation when recovering
    // from a crashed fleet whose stale leases must stop binding.
    long max_gen = 0;
    {
        std::ifstream in(path_);
        std::string line;
        while (std::getline(in, line)) {
            std::string state;
            double gen = 0;
            if (jsonFindText(line, "state", state) &&
                state == "lease" &&
                jsonFindNumber(line, "gen", gen) && gen > max_gen)
                max_gen = static_cast<long>(gen);
        }
    }
    generation_ =
        options_.newGeneration ? max_gen + 1 : std::max(max_gen, 1L);
    scan();
}

CoordinationLog::~CoordinationLog()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
CoordinationLog::appendLine(const std::string &line)
{
    std::string buf = line + "\n";
    // 'coord-append' fault site: the shared filesystem runs out of
    // space (or tears the write) partway through the record. We leave
    // a genuinely torn line behind — no terminator — so the recovery
    // discipline (newline guard + torn-line skip) is what gets
    // exercised, not a polite failure.
    const bool torn = fault_.shouldFail("coord-append");
    if (torn)
        buf.resize(buf.size() / 2);
    std::size_t off = 0;
    while (off < buf.size()) {
        const ssize_t n =
            ::write(fd_, buf.data() + off, buf.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw ConfigError("cannot append to coordination log '" +
                              path_ + "': " + std::strerror(errno));
        }
        off += static_cast<std::size_t>(n);
    }
    if (torn)
        throw ConfigError(
            "injected fault at site 'coord-append': short write on "
            "coordination log '" + path_ + "' (ENOSPC)");
    // Durability: a lease or completion record another worker may act
    // on must survive this process crashing right after the append.
    if (::fsync(fd_) != 0 && errno != EINVAL && errno != EROFS)
        throw ConfigError("cannot fsync coordination log '" + path_ +
                          "': " + std::strerror(errno));
}

void
CoordinationLog::scan()
{
    completed_.clear();
    leaseWinner_.clear();
    leaseCount_.clear();
    lastActivity_.clear();
    myBeatLines_.clear();
    scanStats_ = ScanStats{};

    // Per-task highest fence seen in any generation: a lease below it
    // is a protocol contradiction (desync) and must never displace or
    // re-seat a winner, even after a release erased the entry.
    std::unordered_map<std::string, long> maxFence;
    // Per-(worker,pid) highest beat seq: regressions are desync.
    std::unordered_map<std::string, std::uint64_t> maxSeq;

    long foreignPid = 0; // A live process sharing our worker id.

    std::ifstream in(path_);
    if (!in)
        return;
    std::string line;
    std::size_t lineIdx = 0;
    while (std::getline(in, line)) {
        ++lineIdx;
        if (line.empty())
            continue;
        ++scanStats_.lines;
        const ParsedLine p = parseLine(line);
        switch (p.kind) {
          case ParsedLine::Kind::Torn:
            ++scanStats_.torn;
            continue;
          case ParsedLine::Kind::Ignored:
            continue;
          case ParsedLine::Kind::Beat: {
            ++scanStats_.beats;
            const std::string key =
                p.worker + '\0' + std::to_string(p.pid);
            if (const auto it = maxSeq.find(key);
                it != maxSeq.end() && p.seq <= it->second)
                ++scanStats_.desync;
            else
                maxSeq[key] = p.seq;
            lastActivity_[p.worker] = lineIdx;
            if (p.worker == worker_) {
                if (p.pid == pid_) {
                    myBeatLines_.push_back(lineIdx);
                    mySeq_ = std::max(mySeq_, p.seq);
                } else if (!myBeatLines_.empty()) {
                    // Interleaved with our own beats: a concurrent
                    // process is aliasing our identity. (A foreign
                    // beat with no own beat before it is a dead
                    // predecessor that reused the name — harmless.)
                    foreignPid = p.pid;
                }
            }
            break;
          }
          case ParsedLine::Kind::Lease: {
            ++scanStats_.leases;
            long &seen = maxFence[p.task];
            if (p.fence < seen) {
                ++scanStats_.desync;
                ++leaseCount_[p.task];
                lastActivity_[p.worker] = lineIdx;
                continue; // Never binds.
            }
            seen = p.fence;
            ++leaseCount_[p.task];
            lastActivity_[p.worker] = lineIdx;
            if (p.gen != generation_)
                continue; // A stale pass; its claims do not bind.
            const auto it = leaseWinner_.find(p.task);
            if (it == leaseWinner_.end())
                leaseWinner_.emplace(
                    p.task, LeaseInfo{p.worker, p.fence, lineIdx});
            else if (p.fence > it->second.fence)
                // A steal: the higher fence supersedes the holder.
                it->second = LeaseInfo{p.worker, p.fence, lineIdx};
            // Equal fence: the first lease in append order wins.
            break;
          }
          case ParsedLine::Kind::Release: {
            ++scanStats_.releases;
            lastActivity_[p.worker] = lineIdx;
            if (p.gen != generation_)
                continue;
            const auto it = leaseWinner_.find(p.task);
            // Only the current holder can unbind its own lease — a
            // release racing a steal must not evict the thief.
            if (it != leaseWinner_.end() &&
                it->second.worker == p.worker)
                leaseWinner_.erase(it);
            break;
          }
          case ParsedLine::Kind::Done:
            ++scanStats_.dones;
            completed_.insert(p.task);
            if (!p.worker.empty())
                lastActivity_[p.worker] = lineIdx;
            break;
        }
    }

    if (foreignPid != 0)
        throw ConfigError(
            "coordination log '" + path_ + "': worker id '" + worker_ +
            "' is shared by two live processes (pid " +
            std::to_string(pid_) + " and pid " +
            std::to_string(foreignPid) +
            "); give each worker a unique --worker id");
}

long
CoordinationLog::nextFence(const std::string &taskId) const
{
    const auto it = leaseCount_.find(taskId);
    return it == leaseCount_.end() ? 0 : it->second;
}

bool
CoordinationLog::ownerStale(const std::string &owner) const
{
    if (options_.leaseTtl <= 0 || owner == worker_)
        return false;
    const auto act = lastActivity_.find(owner);
    if (act == lastActivity_.end())
        return true; // A lease with no record at all cannot bind.
    // Staleness is measured on this worker's own clock: the number of
    // our own beats appended after the owner's last record. That is a
    // property of the log alone — deterministic for every reader, no
    // wall-clock comparison across machines.
    const auto first = std::upper_bound(
        myBeatLines_.begin(), myBeatLines_.end(), act->second);
    return myBeatLines_.end() - first >=
        static_cast<std::ptrdiff_t>(options_.leaseTtl);
}

std::optional<CoordinationLog::Claim>
CoordinationLog::decide(const std::string &taskId)
{
    if (completed_.count(taskId)) {
        myLeases_.erase(taskId);
        return Claim::Completed;
    }
    const auto it = leaseWinner_.find(taskId);
    if (it == leaseWinner_.end())
        return std::nullopt; // Unclaimed (or released): lease it.
    if (it->second.worker == worker_) {
        myLeases_[taskId] = it->second.fence;
        return Claim::Won;
    }
    if (myLeases_.count(taskId)) {
        // We held this lease and a higher fence displaced it: we are
        // the zombie. Abandon — our result must not be recorded.
        myLeases_.erase(taskId);
        return Claim::Stolen;
    }
    if (!ownerStale(it->second.worker))
        return Claim::Leased;
    return std::nullopt; // Stale holder: steal with a higher fence.
}

CoordinationLog::Claim
CoordinationLog::claim(const std::string &taskId)
{
    // With stealing enabled the cached tables can be stale in the
    // dangerous direction — believing we still hold a lease a peer
    // has fenced off — so re-read before deciding. With stealing off
    // leases never move under us, and the last scan suffices: a task
    // another worker already finished or holds a live lease on needs
    // no new record.
    if (options_.leaseTtl > 0)
        scan();
    if (const auto cached = decide(taskId))
        return *cached;

    // Stake the claim, then let append order decide: re-read the log
    // and honour the first lease at the highest fence for this task
    // in our generation. nextFence() counts every prior lease, so a
    // steal always fences the stale holder off.
    appendLine(
        leaseLine(generation_, taskId, worker_, nextFence(taskId)));
    scan();
    if (const auto resolved = decide(taskId))
        return *resolved;
    // Our own lease must be visible after the rescan; if it is not,
    // the log is being truncated under us.
    throw ConfigError("coordination log '" + path_ +
                      "' lost a lease record for task '" + taskId +
                      "'");
}

void
CoordinationLog::beat()
{
    ++mySeq_;
    appendLine(beatLine(generation_, worker_, pid_, mySeq_));
    lastBeat_ = std::chrono::steady_clock::now();
    everBeat_ = true;
    scan();
}

bool
CoordinationLog::maybeBeat()
{
    if (everBeat_) {
        const auto elapsed =
            std::chrono::steady_clock::now() - lastBeat_;
        if (std::chrono::duration<double>(elapsed).count() <
            options_.beatIntervalSeconds)
            return false;
    }
    beat();
    return true;
}

bool
CoordinationLog::recordDone(const std::string &taskId,
                            const std::string &resultBody)
{
    // Re-read before publishing: a zombie that was fenced off while
    // it computed must abandon its result here, not overwrite the
    // thief's. The rescan-then-append order is safe because a done
    // record is idempotent — if the thief publishes between our scan
    // and our append, the merge collapses the equal-body duplicate
    // and attributes the task to the highest fence.
    scan();
    if (completed_.count(taskId)) {
        myLeases_.erase(taskId);
        return false;
    }
    const auto it = leaseWinner_.find(taskId);
    if (it != leaseWinner_.end() && it->second.worker != worker_) {
        myLeases_.erase(taskId);
        return false;
    }
    long fence = 0;
    if (const auto mine = myLeases_.find(taskId);
        mine != myLeases_.end())
        fence = mine->second;
    else if (it != leaseWinner_.end())
        fence = it->second.fence;
    // Fence and worker sit BEFORE "result" so the checkpoint reader's
    // body extraction ("result":{ ... to end of line) still sees the
    // canonical tail.
    appendLine("{\"task\":\"" + jsonEscape(taskId) +
               "\",\"status\":\"ok\",\"fence\":" +
               std::to_string(fence) + ",\"worker\":\"" +
               jsonEscape(worker_) + "\",\"result\":" + resultBody +
               "}");
    scan();
    myLeases_.erase(taskId);
    return true;
}

void
CoordinationLog::recordDone(const std::string &recordLine)
{
    appendLine(recordLine);
    scan();
}

void
CoordinationLog::release(const std::string &taskId)
{
    if (!myLeases_.count(taskId))
        return;
    appendLine(releaseLine(generation_, taskId, worker_));
    myLeases_.erase(taskId);
    scan();
}

CoordinationLog::Stats
CoordinationLog::inspect(const std::string &path)
{
    Stats stats;
    std::unordered_map<std::string, long> maxFence;
    std::unordered_map<std::string, std::uint64_t> maxSeq;
    std::unordered_set<std::string> workers;

    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        const ParsedLine p = parseLine(line);
        switch (p.kind) {
          case ParsedLine::Kind::Torn:
            ++stats.torn;
            continue;
          case ParsedLine::Kind::Ignored:
            continue;
          case ParsedLine::Kind::Beat: {
            ++stats.beats;
            workers.insert(p.worker);
            const std::string key =
                p.worker + '\0' + std::to_string(p.pid);
            if (const auto it = maxSeq.find(key);
                it != maxSeq.end() && p.seq <= it->second)
                ++stats.desync;
            else
                maxSeq[key] = p.seq;
            break;
          }
          case ParsedLine::Kind::Lease: {
            ++stats.leases;
            workers.insert(p.worker);
            if (p.fence > 0)
                ++stats.steals;
            if (long &seen = maxFence[p.task]; p.fence < seen)
                ++stats.desync;
            else
                seen = p.fence;
            if (p.gen > stats.maxGeneration)
                stats.maxGeneration = p.gen;
            break;
          }
          case ParsedLine::Kind::Release:
            ++stats.releases;
            workers.insert(p.worker);
            break;
          case ParsedLine::Kind::Done:
            ++stats.dones;
            if (!p.worker.empty())
                workers.insert(p.worker);
            break;
        }
    }
    stats.workers = workers.size();
    return stats;
}

} // namespace cactus::core
