#include "core/coord.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/error.hh"
#include "common/json.hh"

namespace cactus::core {

namespace {

/** A lease record line. Deliberately field-ordered so every worker
 *  writes byte-wise comparable records; the line is one write(2), so
 *  concurrent leases never interleave mid-line. */
std::string
leaseLine(long gen, const std::string &task, const std::string &worker)
{
    return "{\"state\":\"lease\",\"gen\":" + std::to_string(gen) +
        ",\"task\":\"" + jsonEscape(task) + "\",\"worker\":\"" +
        jsonEscape(worker) + "\"}";
}

} // namespace

CoordinationLog::CoordinationLog(std::string path, std::string worker,
                                 bool newGeneration)
    : path_(std::move(path)), worker_(std::move(worker))
{
    // O_APPEND makes each write land atomically at the current end of
    // file, giving concurrent workers a total order on records — the
    // property the claim protocol and the torn-line discipline both
    // lean on.
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0)
        throw ConfigError("cannot open coordination log '" + path_ +
                          "': " + std::strerror(errno));

    // Newline guard: a writer that died mid-append leaves a torn
    // final line with no terminator. Appending our first record
    // straight after it would weld two records into one unparseable
    // line — so if the file does not end in '\n', add one now. The
    // torn fragment then stands alone as a line the scan/load
    // discipline already skips.
    {
        const int rfd = ::open(path_.c_str(), O_RDONLY);
        if (rfd >= 0) {
            const off_t size = ::lseek(rfd, 0, SEEK_END);
            char last = '\n';
            if (size > 0 &&
                ::pread(rfd, &last, 1, size - 1) == 1 &&
                last != '\n')
                appendLine("");
            ::close(rfd);
        }
    }

    // Fix the generation: join the fleet already leasing in this log
    // (a late-starting worker must honour its peers' leases, not
    // supersede them), or open the next generation when recovering
    // from a crashed fleet whose stale leases must stop binding.
    long max_gen = 0;
    {
        std::ifstream in(path_);
        std::string line;
        while (std::getline(in, line)) {
            std::string state;
            double gen = 0;
            if (jsonFindText(line, "state", state) &&
                state == "lease" &&
                jsonFindNumber(line, "gen", gen) && gen > max_gen)
                max_gen = static_cast<long>(gen);
        }
    }
    generation_ = newGeneration ? max_gen + 1 : std::max(max_gen, 1L);
    scan();
}

CoordinationLog::~CoordinationLog()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
CoordinationLog::appendLine(const std::string &line)
{
    const std::string buf = line + "\n";
    std::size_t off = 0;
    while (off < buf.size()) {
        const ssize_t n =
            ::write(fd_, buf.data() + off, buf.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw ConfigError("cannot append to coordination log '" +
                              path_ + "': " + std::strerror(errno));
        }
        off += static_cast<std::size_t>(n);
    }
    // Durability: a lease or completion record another worker may act
    // on must survive this process crashing right after the append.
    if (::fsync(fd_) != 0 && errno != EINVAL && errno != EROFS)
        throw ConfigError("cannot fsync coordination log '" + path_ +
                          "': " + std::strerror(errno));
}

void
CoordinationLog::scan()
{
    completed_.clear();
    leaseWinner_.clear();
    std::ifstream in(path_);
    if (!in)
        return;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::string state, task, worker, status;
        double gen = 0;
        if (jsonFindText(line, "state", state) && state == "lease") {
            if (!jsonFindText(line, "task", task) ||
                !jsonFindText(line, "worker", worker) ||
                !jsonFindNumber(line, "gen", gen))
                continue; // Torn lease: claims nothing.
            if (static_cast<long>(gen) != generation_)
                continue; // A stale pass; its claims do not bind.
            leaseWinner_.emplace(task, worker); // First lease wins.
        } else if (jsonFindText(line, "status", status) &&
                   status == "ok" &&
                   jsonFindText(line, "task", task)) {
            completed_.insert(task);
        }
        // Anything else: a torn or foreign record; ignore.
    }
}

CoordinationLog::Claim
CoordinationLog::claim(const std::string &taskId)
{
    // Cheap pre-check against the last scan — a task another worker
    // already finished or leased needs no new lease record.
    if (completed_.count(taskId))
        return Claim::Completed;
    if (const auto it = leaseWinner_.find(taskId);
        it != leaseWinner_.end())
        return it->second == worker_ ? Claim::Won : Claim::Leased;

    // Stake the claim, then let append order decide: re-read the log
    // and honour the first lease for this task in our generation.
    appendLine(leaseLine(generation_, taskId, worker_));
    scan();
    if (completed_.count(taskId))
        return Claim::Completed;
    const auto it = leaseWinner_.find(taskId);
    if (it == leaseWinner_.end())
        // Our own lease must be visible after the rescan; if it is
        // not, the log is being truncated under us.
        throw ConfigError("coordination log '" + path_ +
                          "' lost a lease record for task '" +
                          taskId + "'");
    return it->second == worker_ ? Claim::Won : Claim::Leased;
}

void
CoordinationLog::recordDone(const std::string &recordLine)
{
    appendLine(recordLine);
    scan();
}

} // namespace cactus::core
