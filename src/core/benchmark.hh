/**
 * @file
 * The benchmark abstraction at the heart of the suite: a Benchmark runs
 * a complete application on a simulated device; the Registry holds
 * factories for every benchmark in every suite (Cactus, Parboil,
 * Rodinia, Tango) so harnesses and tests can enumerate them.
 */

#ifndef CACTUS_CORE_BENCHMARK_HH
#define CACTUS_CORE_BENCHMARK_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/verify.hh"
#include "gpu/device.hh"

namespace cactus::core {

/** Workload scale: Tiny for unit tests, Small for the experiments. */
enum class Scale
{
    Tiny,
    Small
};

/** A runnable GPU-compute application. */
class Benchmark
{
  public:
    virtual ~Benchmark() = default;

    /** Short name, e.g. "GMS" or "sgemm". */
    virtual std::string name() const = 0;

    /** Owning suite: "Cactus", "Parboil", "Rodinia", or "Tango". */
    virtual std::string suite() const = 0;

    /** Application domain, e.g. "Molecular", "Graph", "ML". */
    virtual std::string domain() const = 0;

    /** Execute the full application on @p dev. */
    virtual void run(gpu::Device &dev) = 0;

    /**
     * The digest of the outputs run() recorded via recordOutput(), or
     * nullopt when the benchmark records nothing (it is then
     * "audit-only": its counters are still audited, but no functional
     * golden is checked). Campaigns call this after run() and compare
     * against the goldens under tests/goldens/.
     */
    virtual std::optional<VerifyResult>
    verify() const
    {
        if (digest_.empty())
            return std::nullopt;
        return digest_.result();
    }

  protected:
    /** Fold an output buffer into this run's digest; call at the end
     *  of run() for every buffer that constitutes the application's
     *  answer. Buffers are indexed from @p base so multiple buffers
     *  occupy disjoint index ranges of one logical output. */
    template <typename T>
    void
    recordOutput(const std::vector<T> &values, std::uint64_t base = 0)
    {
        digest_.addBuffer(values, base);
    }

    /** Fold a single scalar result (e.g. an energy) into the digest. */
    void
    recordOutput(double value, std::uint64_t index = 0)
    {
        digest_.add(index, value);
    }

    /** Fold a raw buffer (e.g. a dnn::Tensor's storage, which does not
     *  expose its backing vector) into the digest. */
    void
    recordOutput(const float *values, std::size_t count,
                 std::uint64_t base = 0)
    {
        for (std::size_t i = 0; i < count; ++i)
            digest_.add(base + i, static_cast<double>(values[i]));
    }

  private:
    OutputDigest digest_;
};

/** Descriptor + factory for one registered benchmark. */
struct BenchmarkInfo
{
    std::string name;
    std::string suite;
    std::string domain;
    std::function<std::unique_ptr<Benchmark>(Scale)> factory;
};

/** Global benchmark registry (populated by static registrars). */
class Registry
{
  public:
    static Registry &instance();

    void add(BenchmarkInfo info);

    /** All registered benchmarks, optionally filtered by suite. */
    std::vector<const BenchmarkInfo *> list(
        const std::string &suite = "") const;

    /** Create a benchmark by name; throws ConfigError if unknown. */
    std::unique_ptr<Benchmark> create(const std::string &name,
                                      Scale scale = Scale::Small) const;

    bool contains(const std::string &name) const;

  private:
    std::vector<BenchmarkInfo> benchmarks_;
};

/** Static-initialization helper used by the registration macro. */
struct Registrar
{
    explicit Registrar(BenchmarkInfo info)
    {
        Registry::instance().add(std::move(info));
    }
};

/**
 * Register a benchmark class constructible as cls(Scale).
 * Usage: CACTUS_REGISTER_BENCHMARK(GmsBenchmark, "GMS", "Cactus",
 *                                  "Molecular");
 */
#define CACTUS_REGISTER_BENCHMARK(cls, bench_name, bench_suite,          \
                                  bench_domain)                          \
    static ::cactus::core::Registrar registrar_##cls(                    \
        ::cactus::core::BenchmarkInfo{                                   \
            bench_name, bench_suite, bench_domain,                       \
            [](::cactus::core::Scale s) {                                \
                return std::unique_ptr<::cactus::core::Benchmark>(       \
                    new cls(s));                                         \
            }})

} // namespace cactus::core

#endif // CACTUS_CORE_BENCHMARK_HH
