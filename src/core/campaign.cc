#include "core/campaign.hh"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/error.hh"
#include "common/json.hh"
#include "common/logging.hh"

namespace cactus::core {

namespace {

/**
 * Arms a steady-clock (monotonic — immune to wall-clock steps) timer
 * that requests cancellation on @p token when the deadline passes
 * before disarm. Disarmed and joined by the destructor, so a watchdog
 * never outlives its attempt, whichever way the attempt exits.
 */
class Watchdog
{
  public:
    Watchdog(CancelToken token, double seconds)
    {
        if (seconds <= 0)
            return;
        const auto deadline = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(seconds));
        thread_ = std::thread([this, token, deadline] {
            std::unique_lock<std::mutex> lock(mutex_);
            if (!disarm_.wait_until(lock, deadline,
                                    [this] { return disarmed_; }))
                token.request();
        });
    }

    ~Watchdog()
    {
        if (!thread_.joinable())
            return;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            disarmed_ = true;
        }
        disarm_.notify_all();
        thread_.join();
    }

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

  private:
    std::mutex mutex_;
    std::condition_variable disarm_;
    bool disarmed_ = false;
    std::thread thread_;
};

void
appendCheckpointRecord(std::ostream &out, const BenchmarkProfile &p)
{
    out.precision(17);
    out << "{\"name\":\"" << jsonEscape(p.name) << "\""
        << ",\"suite\":\"" << jsonEscape(p.suite) << "\""
        << ",\"domain\":\"" << jsonEscape(p.domain) << "\""
        << ",\"status\":\"ok\""
        << ",\"kernels\":" << p.kernelCount()
        << ",\"launches\":" << p.launches
        << ",\"total_seconds\":" << p.totalSeconds
        << ",\"total_warp_insts\":" << p.totalWarpInsts
        << ",\"total_dram_sectors\":" << p.totalDramSectors
        << ",\"min_coverage\":" << p.minSampleCoverage << "}\n";
    // One completed benchmark per line, flushed immediately: a kill
    // between benchmarks loses at most the record being written, and
    // the lenient reader skips that torn line on resume.
    out.flush();
}

std::string
fmtCoverage(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.4f", value);
    return buf;
}

/**
 * The post-run integrity gate: coverage floor, then golden recording
 * or checking. Violations throw IntegrityError, which the attempt
 * loop maps to RunStatus::Corrupt without retrying.
 */
void
enforceIntegrity(const Benchmark &bench,
                 const BenchmarkProfile &profile,
                 const CampaignOptions &opts)
{
    if (opts.minCoverage > 0 &&
        profile.minSampleCoverage < opts.minCoverage)
        throw IntegrityError(
            profile.name,
            "sampleCoverage >= --min-coverage (min " +
                fmtCoverage(profile.minSampleCoverage) +
                " < floor " + fmtCoverage(opts.minCoverage) + ")");

    const auto digest = bench.verify();
    if (opts.recordGoldens) {
        if (digest)
            opts.recordGoldens->set(profile.name,
                                    scaleToken(opts.scale), *digest);
        return;
    }
    if (!opts.verifyOutputs)
        return;

    const std::string scale = scaleToken(opts.scale);
    if (!digest)
        throw IntegrityError(profile.name,
                             "run records an output digest "
                             "(benchmark recorded nothing to verify)");
    const auto golden = opts.goldens->find(profile.name, scale);
    if (!golden)
        throw IntegrityError(
            profile.name,
            "a golden digest exists for scale '" + scale +
                "' (none recorded; run --update-goldens first)");
    if (golden->digest != digest->digest ||
        golden->elements != digest->elements)
        throw IntegrityError(
            profile.name,
            "output digest == golden (got " + digest->hex() + "/" +
                std::to_string(digest->elements) + " elements, want " +
                golden->hex() + "/" + std::to_string(golden->elements) +
                ")");
}

} // namespace

const char *
runStatusName(RunStatus status)
{
    switch (status) {
      case RunStatus::OK:
        return "OK";
      case RunStatus::Failed:
        return "FAILED";
      case RunStatus::Timeout:
        return "TIMEOUT";
      case RunStatus::Corrupt:
        return "CORRUPT";
      case RunStatus::Skipped:
        return "SKIPPED";
    }
    return "UNKNOWN";
}

std::vector<CampaignEntry>
readCheckpoint(const std::string &path)
{
    std::vector<CampaignEntry> entries;
    std::ifstream in(path);
    if (!in)
        return entries; // No manifest yet: nothing completed.

    std::string line;
    long line_number = 0;
    std::size_t bad_records = 0;
    while (std::getline(in, line)) {
        ++line_number;
        if (line.empty())
            continue;
        CampaignEntry entry;
        std::string status;
        double launches = 0, seconds = 0, warp_insts = 0, sectors = 0;
        if (!jsonFindText(line, "name", entry.name) ||
            !jsonFindText(line, "status", status) || status != "ok" ||
            !jsonFindNumber(line, "launches", launches) ||
            !jsonFindNumber(line, "total_seconds", seconds) ||
            !jsonFindNumber(line, "total_warp_insts", warp_insts) ||
            !jsonFindNumber(line, "total_dram_sectors", sectors)) {
            ++bad_records;
            continue;
        }
        jsonFindText(line, "suite", entry.profile.suite);
        jsonFindText(line, "domain", entry.profile.domain);
        // Manifests written before coverage tracking lack the key;
        // default to full coverage rather than rejecting the record.
        double coverage = 1.0;
        if (jsonFindNumber(line, "min_coverage", coverage))
            entry.profile.minSampleCoverage = coverage;
        entry.status = RunStatus::OK;
        entry.profile.name = entry.name;
        entry.profile.launches =
            static_cast<std::uint64_t>(launches);
        entry.profile.totalSeconds = seconds;
        entry.profile.totalWarpInsts =
            static_cast<std::uint64_t>(warp_insts);
        entry.profile.totalDramSectors =
            static_cast<std::uint64_t>(sectors);
        entries.push_back(std::move(entry));
    }
    if (bad_records > 0)
        warn("checkpoint '", path, "': skipped ", bad_records,
             " malformed record", bad_records == 1 ? "" : "s",
             " (likely torn by an interrupted run)");
    return entries;
}

CampaignResult
runCampaign(const std::vector<BenchmarkInfo> &benchmarks,
            const CampaignOptions &opts)
{
    if (opts.verifyOutputs && !opts.goldens && !opts.recordGoldens)
        throw ConfigError(
            "campaign verifyOutputs set without a golden table");

    std::unordered_map<std::string, CampaignEntry> completed;
    if (!opts.checkpointPath.empty()) {
        for (auto &entry : readCheckpoint(opts.checkpointPath))
            completed.emplace(entry.name, std::move(entry));
    }

    std::ofstream manifest;
    if (!opts.checkpointPath.empty()) {
        // A record torn by a kill may have left the file without a
        // trailing newline; appending onto that line would corrupt
        // the next record too, so start a fresh line.
        bool needs_newline = false;
        if (std::ifstream existing(opts.checkpointPath,
                                   std::ios::binary);
            existing) {
            existing.seekg(0, std::ios::end);
            if (existing.tellg() > 0) {
                existing.seekg(-1, std::ios::end);
                needs_newline = existing.get() != '\n';
            }
        }
        manifest.open(opts.checkpointPath, std::ios::app);
        if (!manifest)
            throw ConfigError("cannot open checkpoint '" +
                              opts.checkpointPath +
                              "' for appending");
        if (needs_newline)
            manifest << '\n';
    }

    CampaignResult result;
    for (const auto &info : benchmarks) {
        CampaignEntry entry;
        entry.name = info.name;

        if (const auto it = completed.find(info.name);
            it != completed.end()) {
            entry = it->second;
            entry.status = RunStatus::Skipped;
            entry.attempts = 0;
        } else {
            const auto campaign_start =
                std::chrono::steady_clock::now();
            const int max_attempts = 1 + std::max(0, opts.retries);
            for (int attempt = 1; attempt <= max_attempts; ++attempt) {
                entry.attempts = attempt;
                if (attempt > 1 && opts.backoffSeconds > 0)
                    std::this_thread::sleep_for(
                        std::chrono::duration<double>(
                            opts.backoffSeconds *
                            static_cast<double>(1 << (attempt - 2))));

                // Fresh token per attempt: a late-firing watchdog from
                // a previous attempt can never cancel this one.
                gpu::DeviceConfig cfg = opts.config;
                const CancelToken token = CancelToken::make();
                cfg.cancel = token;
                Watchdog watchdog(token, opts.timeoutSeconds);
                try {
                    auto bench = info.factory(opts.scale);
                    entry.profile = runProfiled(*bench, cfg);
                    enforceIntegrity(*bench, entry.profile, opts);
                    entry.status = RunStatus::OK;
                    entry.error.clear();
                    break;
                } catch (const TimeoutError &e) {
                    // Deadline misses are not transient: retrying
                    // would just spend another full timeout.
                    entry.status = RunStatus::Timeout;
                    entry.error = e.what();
                    break;
                } catch (const IntegrityError &e) {
                    // A violated invariant or a wrong answer is
                    // deterministic: retrying cannot fix it, and the
                    // result must not look like a transient failure.
                    entry.status = RunStatus::Corrupt;
                    entry.error = e.what();
                    break;
                } catch (const std::exception &e) {
                    entry.status = RunStatus::Failed;
                    entry.error = e.what();
                }
            }
            entry.wallSeconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - campaign_start)
                    .count();

            if (entry.status == RunStatus::OK && manifest.is_open())
                appendCheckpointRecord(manifest, entry.profile);
        }

        switch (entry.status) {
          case RunStatus::OK:
            ++result.okCount;
            break;
          case RunStatus::Failed:
            ++result.failedCount;
            break;
          case RunStatus::Timeout:
            ++result.timeoutCount;
            break;
          case RunStatus::Corrupt:
            ++result.corruptCount;
            break;
          case RunStatus::Skipped:
            ++result.skippedCount;
            break;
        }
        if (opts.onEntry)
            opts.onEntry(entry);
        result.entries.push_back(std::move(entry));
    }
    return result;
}

} // namespace cactus::core
