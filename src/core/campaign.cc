#include "core/campaign.hh"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/error.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "core/coord.hh"
#include "core/serve.hh"
#include "core/sweep.hh"

namespace cactus::core {

namespace {

/**
 * Arms a steady-clock (monotonic — immune to wall-clock steps) timer
 * that requests cancellation on @p token when the deadline passes
 * before disarm. Disarmed and joined by the destructor, so a watchdog
 * never outlives its attempt, whichever way the attempt exits.
 */
class Watchdog
{
  public:
    Watchdog(CancelToken token, double seconds)
    {
        if (seconds <= 0)
            return;
        const auto deadline = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(seconds));
        thread_ = std::thread([this, token, deadline] {
            std::unique_lock<std::mutex> lock(mutex_);
            if (!disarm_.wait_until(lock, deadline,
                                    [this] { return disarmed_; }))
                token.request();
        });
    }

    ~Watchdog()
    {
        if (!thread_.joinable())
            return;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            disarmed_ = true;
        }
        disarm_.notify_all();
        thread_.join();
    }

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

  private:
    std::mutex mutex_;
    std::condition_variable disarm_;
    bool disarmed_ = false;
    std::thread thread_;
};

std::string
fmtCoverage(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.4f", value);
    return buf;
}

/**
 * The post-run integrity gate: coverage floor, then golden recording
 * or checking. Violations throw IntegrityError, which the attempt
 * loop maps to RunStatus::Corrupt without retrying.
 */
void
enforceIntegrity(const Benchmark &bench,
                 const BenchmarkProfile &profile,
                 const CampaignOptions &opts)
{
    if (opts.minCoverage > 0 &&
        profile.minSampleCoverage < opts.minCoverage)
        throw IntegrityError(
            profile.name,
            "sampleCoverage >= --min-coverage (min " +
                fmtCoverage(profile.minSampleCoverage) +
                " < floor " + fmtCoverage(opts.minCoverage) + ")");

    const auto digest = bench.verify();
    if (opts.recordGoldens) {
        if (digest)
            opts.recordGoldens->set(profile.name,
                                    scaleToken(opts.scale), *digest);
        return;
    }
    if (!opts.verifyOutputs)
        return;

    const std::string scale = scaleToken(opts.scale);
    if (!digest)
        throw IntegrityError(profile.name,
                             "run records an output digest "
                             "(benchmark recorded nothing to verify)");
    const auto golden = opts.goldens->find(profile.name, scale);
    if (!golden)
        throw IntegrityError(
            profile.name,
            "a golden digest exists for scale '" + scale +
                "' (none recorded; run --update-goldens first)");
    if (golden->digest != digest->digest ||
        golden->elements != digest->elements)
        throw IntegrityError(
            profile.name,
            "output digest == golden (got " + digest->hex() + "/" +
                std::to_string(digest->elements) + " elements, want " +
                golden->hex() + "/" + std::to_string(golden->elements) +
                ")");
}

/**
 * The same integrity gate for an entry restored from the result
 * cache: the cached body carries the coverage and output digest of
 * the original run, so the floor and golden checks apply unchanged.
 */
void
enforceRestoredIntegrity(const CampaignEntry &entry,
                         const CampaignOptions &opts)
{
    if (opts.minCoverage > 0 &&
        entry.profile.minSampleCoverage < opts.minCoverage)
        throw IntegrityError(
            entry.name,
            "sampleCoverage >= --min-coverage (min " +
                fmtCoverage(entry.profile.minSampleCoverage) +
                " < floor " + fmtCoverage(opts.minCoverage) + ")");

    if (opts.recordGoldens) {
        if (entry.hasOutputDigest) {
            VerifyResult digest;
            digest.digest = std::strtoull(
                entry.outputDigestHex.c_str(), nullptr, 16);
            digest.elements = entry.outputElements;
            opts.recordGoldens->set(entry.name,
                                    scaleToken(opts.scale), digest);
        }
        return;
    }
    if (!opts.verifyOutputs)
        return;

    const std::string scale = scaleToken(opts.scale);
    if (!entry.hasOutputDigest)
        throw IntegrityError(entry.name,
                             "run records an output digest (cached "
                             "result recorded nothing to verify)");
    const auto golden = opts.goldens->find(entry.name, scale);
    if (!golden)
        throw IntegrityError(
            entry.name,
            "a golden digest exists for scale '" + scale +
                "' (none recorded; run --update-goldens first)");
    if (golden->hex() != entry.outputDigestHex ||
        golden->elements != entry.outputElements)
        throw IntegrityError(
            entry.name,
            "output digest == golden (got " + entry.outputDigestHex +
                "/" + std::to_string(entry.outputElements) +
                " elements, want " + golden->hex() + "/" +
                std::to_string(golden->elements) + ")");
}

/** Rebuild an entry's aggregate profile fields from a canonical
 *  result body (a cache hit). The per-kernel rows are not serialized
 *  and stay empty. */
void
restoreEntryFromBody(CampaignEntry &entry, const std::string &body)
{
    entry.profile.name = entry.name;
    jsonFindText(body, "suite", entry.profile.suite);
    jsonFindText(body, "domain", entry.profile.domain);
    double launches = 0, seconds = 0, warp_insts = 0, sectors = 0,
           coverage = 1.0, elements = 0;
    jsonFindNumber(body, "launches", launches);
    jsonFindNumber(body, "total_seconds", seconds);
    jsonFindNumber(body, "total_warp_insts", warp_insts);
    jsonFindNumber(body, "total_dram_sectors", sectors);
    if (jsonFindNumber(body, "min_coverage", coverage))
        entry.profile.minSampleCoverage = coverage;
    entry.profile.launches = static_cast<std::uint64_t>(launches);
    entry.profile.totalSeconds = seconds;
    entry.profile.totalWarpInsts =
        static_cast<std::uint64_t>(warp_insts);
    entry.profile.totalDramSectors =
        static_cast<std::uint64_t>(sectors);
    std::string digest_hex;
    if (jsonFindText(body, "output_digest", digest_hex)) {
        entry.hasOutputDigest = true;
        entry.outputDigestHex = digest_hex;
        if (jsonFindNumber(body, "output_elements", elements))
            entry.outputElements =
                static_cast<std::uint64_t>(elements);
    }
    entry.resultBody = body;
}

} // namespace

const char *
runStatusName(RunStatus status)
{
    switch (status) {
      case RunStatus::OK:
        return "OK";
      case RunStatus::Failed:
        return "FAILED";
      case RunStatus::Timeout:
        return "TIMEOUT";
      case RunStatus::Corrupt:
        return "CORRUPT";
      case RunStatus::Skipped:
        return "SKIPPED";
      case RunStatus::Cached:
        return "CACHED";
      case RunStatus::Stolen:
        return "STOLEN";
    }
    return "UNKNOWN";
}

std::string
checkpointRecordLine(const std::string &taskId,
                     const std::string &resultBody)
{
    return "{\"task\":\"" + jsonEscape(taskId) +
        "\",\"status\":\"ok\",\"result\":" + resultBody + "}";
}

std::vector<CampaignEntry>
readCheckpoint(const std::string &path)
{
    std::vector<CampaignEntry> entries;
    std::ifstream in(path);
    if (!in)
        return entries; // No manifest yet: nothing completed.

    std::string line;
    std::size_t bad_records = 0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        // Coordination logs double as manifests; their lease records
        // are claims, not results.
        std::string state;
        if (jsonFindText(line, "state", state) && state == "lease")
            continue;
        CampaignEntry entry;
        std::string status;
        double launches = 0, seconds = 0, warp_insts = 0, sectors = 0;
        // Task-keyed records (PR 7) nest the canonical result body and
        // name the benchmark "benchmark"; legacy records are flat and
        // name it "name". The flat scanner reads both.
        const bool task_keyed =
            jsonFindText(line, "task", entry.taskId);
        const bool has_name =
            jsonFindText(line, "benchmark", entry.name) ||
            jsonFindText(line, "name", entry.name);
        if (!has_name ||
            !jsonFindText(line, "status", status) || status != "ok" ||
            !jsonFindNumber(line, "launches", launches) ||
            !jsonFindNumber(line, "total_seconds", seconds) ||
            !jsonFindNumber(line, "total_warp_insts", warp_insts) ||
            !jsonFindNumber(line, "total_dram_sectors", sectors)) {
            ++bad_records;
            continue;
        }
        jsonFindText(line, "suite", entry.profile.suite);
        jsonFindText(line, "domain", entry.profile.domain);
        // Manifests written before coverage tracking lack the key;
        // default to full coverage rather than rejecting the record.
        double coverage = 1.0;
        if (jsonFindNumber(line, "min_coverage", coverage))
            entry.profile.minSampleCoverage = coverage;
        entry.status = RunStatus::OK;
        entry.profile.name = entry.name;
        entry.profile.launches =
            static_cast<std::uint64_t>(launches);
        entry.profile.totalSeconds = seconds;
        entry.profile.totalWarpInsts =
            static_cast<std::uint64_t>(warp_insts);
        entry.profile.totalDramSectors =
            static_cast<std::uint64_t>(sectors);
        std::string digest_hex;
        if (jsonFindText(line, "output_digest", digest_hex)) {
            double elements = 0;
            entry.hasOutputDigest = true;
            entry.outputDigestHex = digest_hex;
            if (jsonFindNumber(line, "output_elements", elements))
                entry.outputElements =
                    static_cast<std::uint64_t>(elements);
        }
        if (task_keyed) {
            // Recover the embedded body verbatim, so a resumed entry
            // keeps the canonical bytes (for cache warm-up).
            const auto at = line.find("\"result\":{");
            if (at != std::string::npos && line.back() == '}')
                entry.resultBody =
                    line.substr(at + 9, line.size() - at - 10);
        }
        entries.push_back(std::move(entry));
    }
    if (bad_records > 0)
        warn("checkpoint '", path, "': skipped ", bad_records,
             " malformed record", bad_records == 1 ? "" : "s",
             " (likely torn by an interrupted run)");
    return entries;
}

CampaignResult
runSweep(const std::vector<CampaignTask> &tasks,
         const CampaignOptions &opts)
{
    if (opts.verifyOutputs && !opts.goldens && !opts.recordGoldens)
        throw ConfigError(
            "campaign verifyOutputs set without a golden table");

    const std::string scale_tok = scaleToken(opts.scale);

    // How many tasks each benchmark name appears in: legacy
    // (name-keyed) checkpoint records are trusted only when the name
    // maps to exactly one task — in a sweep a name alone cannot say
    // WHICH configuration completed, and honouring it would silently
    // skip unexplored points (the pre-PR-7 resume bug).
    std::unordered_map<std::string, int> name_task_count;
    for (const auto &task : tasks)
        ++name_task_count[task.info.name];

    std::unordered_map<std::string, CampaignEntry> completed_by_task;
    std::unordered_map<std::string, CampaignEntry> completed_by_name;
    if (!opts.checkpointPath.empty()) {
        for (auto &entry : readCheckpoint(opts.checkpointPath)) {
            if (!entry.taskId.empty())
                completed_by_task.emplace(entry.taskId,
                                          std::move(entry));
            else
                completed_by_name.emplace(entry.name,
                                          std::move(entry));
        }
    }

    std::ofstream manifest;
    if (!opts.checkpointPath.empty()) {
        // A record torn by a kill may have left the file without a
        // trailing newline; appending onto that line would corrupt
        // the next record too, so start a fresh line.
        bool needs_newline = false;
        if (std::ifstream existing(opts.checkpointPath,
                                   std::ios::binary);
            existing) {
            existing.seekg(0, std::ios::end);
            if (existing.tellg() > 0) {
                existing.seekg(-1, std::ios::end);
                needs_newline = existing.get() != '\n';
            }
        }
        manifest.open(opts.checkpointPath, std::ios::app);
        if (!manifest)
            throw ConfigError("cannot open checkpoint '" +
                              opts.checkpointPath +
                              "' for appending");
        if (needs_newline)
            manifest << '\n';
    }

    CampaignResult result;
    result.entries.resize(tasks.size());

    const bool stealing =
        opts.coordination && opts.coordination->stealingEnabled();

    // Settle one task's entry into its campaign slot: tally, notify,
    // store. Every task passes through here exactly once.
    const auto finalize = [&](std::size_t idx, CampaignEntry &&entry) {
        switch (entry.status) {
          case RunStatus::OK:
            ++result.okCount;
            break;
          case RunStatus::Failed:
            ++result.failedCount;
            break;
          case RunStatus::Timeout:
            ++result.timeoutCount;
            break;
          case RunStatus::Corrupt:
            ++result.corruptCount;
            break;
          case RunStatus::Skipped:
            ++result.skippedCount;
            break;
          case RunStatus::Cached:
            ++result.cachedCount;
            break;
          case RunStatus::Stolen:
            ++result.stolenCount;
            break;
        }
        if (opts.onEntry)
            opts.onEntry(entry);
        result.entries[idx] = std::move(entry);
    };

    // Execute one claimed task: answer from the result cache if
    // possible, otherwise simulate under the attempt/watchdog policy.
    const auto runTask = [&](const CampaignTask &task,
                             CampaignEntry &entry) {
        const auto &info = task.info;
        if (opts.cache) {
            if (auto body = opts.cache->peek(entry.taskId)) {
                restoreEntryFromBody(entry, *body);
                entry.status = RunStatus::Cached;
                entry.attempts = 0;
                try {
                    enforceRestoredIntegrity(entry, opts);
                } catch (const IntegrityError &e) {
                    entry.status = RunStatus::Corrupt;
                    entry.error = e.what();
                }
                return;
            }
        }

        const auto campaign_start = std::chrono::steady_clock::now();
        const int max_attempts = 1 + std::max(0, opts.retries);
        for (int attempt = 1; attempt <= max_attempts; ++attempt) {
            entry.attempts = attempt;
            if (attempt > 1 && opts.backoffSeconds > 0)
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(
                        opts.backoffSeconds *
                        static_cast<double>(1 << (attempt - 2))));

            // Fresh token per attempt: a late-firing watchdog from
            // a previous attempt can never cancel this one.
            gpu::DeviceConfig cfg = task.config;
            const CancelToken token = CancelToken::make();
            cfg.cancel = token;
            if (stealing)
                // Heartbeat from inside the simulation: every
                // kernel-launch boundary gives the fleet a (throttled)
                // liveness proof, so only a worker that died — or
                // wedged inside one launch — ever goes stale.
                cfg.onLaunchBoundary = [&opts] {
                    opts.coordination->maybeBeat();
                };
            Watchdog watchdog(token, opts.timeoutSeconds);
            try {
                auto bench = info.factory(opts.scale);
                entry.profile = runProfiled(*bench, cfg);
                enforceIntegrity(*bench, entry.profile, opts);
                const auto digest = bench->verify();
                entry.resultBody = serializeResultBody(
                    entry.profile, digest ? &*digest : nullptr,
                    scale_tok, cfg);
                if (digest) {
                    entry.hasOutputDigest = true;
                    entry.outputDigestHex = digest->hex();
                    entry.outputElements = digest->elements;
                }
                entry.status = RunStatus::OK;
                entry.error.clear();
                break;
            } catch (const TimeoutError &e) {
                // Deadline misses are not transient: retrying
                // would just spend another full timeout.
                entry.status = RunStatus::Timeout;
                entry.error = e.what();
                break;
            } catch (const IntegrityError &e) {
                // A violated invariant or a wrong answer is
                // deterministic: retrying cannot fix it, and the
                // result must not look like a transient failure.
                entry.status = RunStatus::Corrupt;
                entry.error = e.what();
                break;
            } catch (const std::exception &e) {
                entry.status = RunStatus::Failed;
                entry.error = e.what();
            }
        }
        entry.wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - campaign_start)
                .count();

        if (entry.status == RunStatus::OK && opts.cache)
            opts.cache->insert(entry.taskId, entry.resultBody);
    };

    // Publish a settled task's outcome. Fresh and cache-answered
    // completions carry the canonical body, so the record is
    // byte-identical to what any other worker would write for this
    // task; failures under coordination release the lease so a peer
    // can retry the task immediately instead of waiting out the TTL.
    const auto recordCompletion = [&](CampaignEntry &entry) {
        const bool completed = (entry.status == RunStatus::OK ||
                                entry.status == RunStatus::Cached) &&
            !entry.resultBody.empty();
        if (!completed) {
            if (opts.coordination &&
                (entry.status == RunStatus::Failed ||
                 entry.status == RunStatus::Timeout ||
                 entry.status == RunStatus::Corrupt))
                opts.coordination->release(entry.taskId);
            return;
        }
        if (opts.coordination &&
            !opts.coordination->recordDone(entry.taskId,
                                           entry.resultBody)) {
            // Fenced off while we computed: the thief's completion is
            // the one of record, ours must leave no trace — not even
            // in the private manifest, where it could masquerade as a
            // credited completion on resume.
            entry.status = RunStatus::Stolen;
            entry.error =
                "result abandoned: task stolen (higher lease fence)";
            return;
        }
        if (manifest.is_open()) {
            // One completed task per line, flushed immediately: a
            // kill loses at most the record being written, and the
            // lenient reader skips that torn line on resume.
            manifest << checkpointRecordLine(entry.taskId,
                                             entry.resultBody)
                     << '\n';
            manifest.flush();
        }
        completed_by_task.emplace(entry.taskId, entry);
    };

    // Tasks whose lease is held by a live peer, parked for the
    // self-healing retry loop below (only when stealing is enabled;
    // without it they are Skipped immediately, the PR 7 semantics).
    struct DeferredTask
    {
        std::size_t idx;
        CampaignEntry entry;
    };
    std::vector<DeferredTask> pending;

    for (std::size_t i = 0; i < tasks.size(); ++i) {
        const auto &task = tasks[i];
        const auto &info = task.info;
        CampaignEntry entry;
        entry.name = info.name;
        entry.label = task.label;
        entry.taskId = sweepTaskId(info.name, scale_tok, task.config);

        bool run_it = false;
        if (const auto it = completed_by_task.find(entry.taskId);
            it != completed_by_task.end()) {
            // Task-keyed resume — also covers a later sweep point
            // with the same id (execution-knob axes) completed
            // earlier in this very run.
            const std::string task_id = entry.taskId;
            const std::string label = entry.label;
            entry = it->second;
            entry.taskId = task_id;
            entry.label = label;
            entry.status = RunStatus::Skipped;
            entry.attempts = 0;
            entry.error.clear();
        } else if (const auto legacy =
                       completed_by_name.find(info.name);
                   legacy != completed_by_name.end() &&
                   name_task_count[info.name] == 1) {
            // Legacy name-keyed record, unambiguous here.
            const std::string task_id = entry.taskId;
            const std::string label = entry.label;
            entry = legacy->second;
            entry.taskId = task_id;
            entry.label = label;
            entry.status = RunStatus::Skipped;
            entry.attempts = 0;
            entry.error.clear();
        } else {
            run_it = true;
        }

        if (run_it && opts.coordination) {
            if (stealing)
                opts.coordination->maybeBeat();
            switch (opts.coordination->claim(entry.taskId)) {
              case CoordinationLog::Claim::Completed:
                entry.status = RunStatus::Skipped;
                entry.error = "completed in coordination log";
                entry.attempts = 0;
                run_it = false;
                break;
              case CoordinationLog::Claim::Leased:
                if (stealing) {
                    // Park it: the holder may yet die or fail, and
                    // then this worker picks the task up — no manual
                    // --new-generation recovery.
                    pending.push_back({i, std::move(entry)});
                    continue;
                }
                entry.status = RunStatus::Skipped;
                entry.error = "leased by another worker";
                entry.attempts = 0;
                run_it = false;
                break;
              case CoordinationLog::Claim::Stolen:
                entry.status = RunStatus::Stolen;
                entry.error = "lease stolen (higher lease fence)";
                entry.attempts = 0;
                run_it = false;
                break;
              case CoordinationLog::Claim::Won:
                break;
            }
        }

        if (run_it)
            runTask(task, entry);
        recordCompletion(entry);
        finalize(i, std::move(entry));
    }

    // Self-healing loop: every parked task is leased to a peer. Keep
    // beating (our beats are the staleness clock) and re-claiming;
    // each pass a parked task either completes elsewhere, is released
    // or stolen into our hands and runs here, or stays leased to a
    // still-live holder. The loop always drains: a holder that makes
    // no progress stops beating and goes stale within leaseTtl of our
    // beats, and a holder that fails its task releases the lease.
    while (!pending.empty()) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            opts.coordination->beatIntervalSeconds()));
        opts.coordination->beat();
        for (auto it = pending.begin(); it != pending.end();) {
            CampaignEntry &entry = it->entry;
            bool settled = true;
            switch (opts.coordination->claim(entry.taskId)) {
              case CoordinationLog::Claim::Leased:
                settled = false;
                break;
              case CoordinationLog::Claim::Completed:
                entry.status = RunStatus::Skipped;
                entry.error = "completed by another worker";
                entry.attempts = 0;
                break;
              case CoordinationLog::Claim::Stolen:
                entry.status = RunStatus::Stolen;
                entry.error = "lease stolen (higher lease fence)";
                entry.attempts = 0;
                break;
              case CoordinationLog::Claim::Won:
                runTask(tasks[it->idx], entry);
                recordCompletion(entry);
                break;
            }
            if (settled) {
                finalize(it->idx, std::move(entry));
                it = pending.erase(it);
            } else {
                ++it;
            }
        }
    }
    return result;
}

CampaignResult
runCampaign(const std::vector<BenchmarkInfo> &benchmarks,
            const CampaignOptions &opts)
{
    std::vector<CampaignTask> tasks;
    tasks.reserve(benchmarks.size());
    for (const auto &info : benchmarks)
        tasks.push_back({info, opts.config, ""});
    return runSweep(tasks, opts);
}

} // namespace cactus::core
