/**
 * @file
 * The fault-tolerant campaign runner. The paper's evaluation is a long
 * multi-benchmark sweep (10 Cactus apps plus 32 Parboil/Rodinia/Tango
 * workloads, each profiled end-to-end); at that scale one bad input or
 * hung kernel must not kill the whole process. runCampaign() executes
 * a benchmark list with:
 *
 *  - per-benchmark isolation: a benchmark that throws (any
 *    cactus::Error or std::exception, including exceptions surfacing
 *    from worker-pool threads) is recorded as a structured failure and
 *    the campaign moves on;
 *  - a monotonic-clock watchdog: a benchmark exceeding its deadline is
 *    cancelled cooperatively at the next kernel-launch boundary and
 *    recorded as Timeout;
 *  - bounded retries with exponential backoff for transient failures
 *    (timeouts are not retried — a deadline miss is not transient);
 *  - a JSONL checkpoint manifest recording each completed profile, so
 *    an interrupted campaign re-runs only the incomplete benchmarks.
 *    Benchmarks run on fresh devices with deterministic statistics, so
 *    a resumed campaign's profiles are bit-identical to an
 *    uninterrupted run's.
 *
 * PR 7 generalizes the runner into a design-space-exploration engine:
 * runSweep() executes a list of (benchmark, DeviceConfig) tasks, each
 * identified by the content address bench/scale/hex16(config digest)
 * — the serve-layer cache key. Checkpoint records are keyed by that
 * task id (so a sweep resumes per configuration, not per benchmark
 * name), a ResultCache can answer tasks without simulating, and a
 * CoordinationLog lets multiple worker processes claim tasks from one
 * shared matrix dynamically.
 */

#ifndef CACTUS_CORE_CAMPAIGN_HH
#define CACTUS_CORE_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/benchmark.hh"
#include "core/harness.hh"

namespace cactus::core {

class ResultCache;
class CoordinationLog;

/** Outcome of one benchmark within a campaign. */
enum class RunStatus
{
    OK,      ///< Profiled successfully (possibly after retries).
    Failed,  ///< Every attempt threw; see CampaignEntry::error.
    Timeout, ///< Cancelled by the watchdog.
    Corrupt, ///< Ran to completion but violated an integrity check:
             ///< a stats-conservation invariant, the golden output
             ///< digest, or the --min-coverage floor. Never retried —
             ///< a wrong answer is deterministic, not transient.
    Skipped, ///< Checkpoint already records a completed run, another
             ///< worker holds the task's lease, or an earlier sweep
             ///< point with the same task id already produced the
             ///< result (execution-knob sweeps).
    Cached,  ///< Answered from the persistent result cache — provably
             ///< identical to a fresh run (the cache key is the task's
             ///< full content address).
    Stolen   ///< This worker's lease was fenced off by another worker
             ///< (heartbeat TTL steal) and its result was abandoned —
             ///< the thief's completion is the one that counts. Not a
             ///< failure: the task IS done, just credited elsewhere.
};

/** Display name: "OK", "FAILED", "TIMEOUT", "CORRUPT", "SKIPPED",
 *  "CACHED", "STOLEN". */
const char *runStatusName(RunStatus status);

/** Structured record of one benchmark's campaign outcome. */
struct CampaignEntry
{
    std::string name;

    /** Content-addressed task id, bench/scale/hex16(config digest) —
     *  the checkpoint key and the serve-layer cache key. */
    std::string taskId;

    /** Human-readable sweep point ("l2_kb=512,threads=4"); "" for the
     *  base configuration. Presentation only — never persisted, so
     *  checkpoint records stay byte-identical across shards. */
    std::string label;

    RunStatus status = RunStatus::Failed;
    std::string error;      ///< what() of the final failure, if any.
    int attempts = 0;       ///< Attempts consumed (0 for Skipped).
    double wallSeconds = 0; ///< Host wall clock across attempts.

    /**
     * The profile when status is OK. For Skipped and Cached entries
     * the aggregate fields (name/suite/domain, launches, totalSeconds,
     * totalWarpInsts, totalDramSectors, minSampleCoverage) are
     * restored from the checkpoint manifest or cached result body;
     * the per-kernel rows are not persisted and stay empty.
     */
    BenchmarkProfile profile;

    /**
     * The canonical serialized result body (serializeResultBody
     * bytes) for OK and Cached entries — what the cache stores and
     * checkpoint records embed. Empty for failures and for entries
     * restored from legacy (pre-task-id) checkpoints.
     */
    std::string resultBody;

    bool hasOutputDigest = false;
    std::string outputDigestHex; ///< hex16 of the output digest.
    std::uint64_t outputElements = 0;
};

/** One unit of sweep work: a benchmark at one device configuration. */
struct CampaignTask
{
    BenchmarkInfo info;
    gpu::DeviceConfig config;
    std::string label; ///< SweepPoint label; "" for the base config.
};

/** Knobs for one campaign. */
struct CampaignOptions
{
    Scale scale = Scale::Small;
    gpu::DeviceConfig config;

    /** Watchdog deadline per attempt, in wall seconds; 0 disables. */
    double timeoutSeconds = 0;

    /** Extra attempts after a failed (not timed-out) one. */
    int retries = 0;

    /** Sleep before retry k is backoffSeconds * 2^(k-1). */
    double backoffSeconds = 0.05;

    /** JSONL manifest path; empty disables checkpointing. Existing
     *  entries are honoured (resume), new completions appended. */
    std::string checkpointPath;

    /**
     * Check every completed benchmark's recorded output digest against
     * @p goldens (which must then be non-null). A mismatch — or a
     * benchmark with no golden recorded for this scale — is an
     * IntegrityError and the entry becomes Corrupt.
     */
    bool verifyOutputs = false;
    const GoldenTable *goldens = nullptr;

    /**
     * When set, record mode: each completed benchmark's digest is
     * written into this table (for GoldenTable::save) instead of being
     * checked. Takes precedence over verifyOutputs.
     */
    GoldenTable *recordGoldens = nullptr;

    /**
     * Reject completed runs whose minSampleCoverage falls below this
     * floor (their counters lean too heavily on extrapolation to
     * trust); 0 disables the check. Rejected runs become Corrupt.
     */
    double minCoverage = 0;

    /**
     * Persistent result cache consulted (by task id) before
     * simulating; hits become RunStatus::Cached and fresh completions
     * are inserted. Borrowed, not owned; null disables.
     */
    ResultCache *cache = nullptr;

    /**
     * Shared coordination log for dynamic sharding: each task is
     * claimed before running, already-completed tasks are Skipped,
     * and completions are appended as fenced done records. With
     * heartbeat stealing off (leaseTtl 0) a task leased to another
     * worker is Skipped immediately; with it on, leased tasks are
     * DEFERRED — the worker keeps beating and re-claiming them until
     * the holder completes them, releases them, or goes stale and is
     * stolen from, so a sweep self-heals past killed workers with no
     * manual intervention. Borrowed, not owned; null disables.
     */
    CoordinationLog *coordination = nullptr;

    /** Invoked after each benchmark settles. Settlement is in
     *  campaign order except for deferred leased tasks (see
     *  coordination), which settle when the fleet resolves them. */
    std::function<void(const CampaignEntry &)> onEntry;
};

/** Aggregated campaign outcome. */
struct CampaignResult
{
    std::vector<CampaignEntry> entries;
    int okCount = 0;
    int failedCount = 0;
    int timeoutCount = 0;
    int corruptCount = 0;
    int skippedCount = 0;
    int cachedCount = 0;
    int stolenCount = 0;

    /** True when nothing failed, timed out, or was found corrupt
     *  (skips and stolen tasks are fine — a stolen task was completed
     *  and credited to the thief's fence). */
    bool
    allOk() const
    {
        return failedCount == 0 && timeoutCount == 0 &&
            corruptCount == 0;
    }
};

/**
 * Run a task matrix under the fault-tolerance policy in @p opts
 * (opts.config is ignored — each task carries its own). Tasks are
 * identified by bench/scale/hex16(config digest); a task whose id
 * already completed — in the checkpoint, in the coordination log, in
 * the result cache, or earlier in this same matrix (execution-knob
 * sweep points share an id) — is not simulated again. Never throws
 * for a benchmark failure — those become entries; only campaign-level
 * misconfiguration (e.g. an unwritable checkpoint path) raises
 * ConfigError.
 */
CampaignResult runSweep(const std::vector<CampaignTask> &tasks,
                        const CampaignOptions &opts);

/**
 * Run @p benchmarks at opts.config: a single-configuration sweep.
 * Kept as the simple entry point for suite campaigns and tests.
 */
CampaignResult runCampaign(const std::vector<BenchmarkInfo> &benchmarks,
                           const CampaignOptions &opts);

/**
 * The canonical checkpoint record for one completed task: the task id
 * plus the serialized result body, as a single JSONL line (no
 * trailing newline). Byte-identical for equal inputs — the property
 * the deterministic merge rests on.
 */
std::string checkpointRecordLine(const std::string &taskId,
                                 const std::string &resultBody);

/**
 * Load the completed entries of a checkpoint manifest. Missing files
 * yield an empty list; malformed lines (e.g. a record truncated by a
 * kill mid-write) are skipped with a warning, so a damaged manifest
 * degrades to re-running benchmarks, never to aborting. Task-keyed
 * records fill CampaignEntry::taskId; legacy name-keyed records leave
 * it empty (resume honours those only when the name maps to exactly
 * one task).
 */
std::vector<CampaignEntry> readCheckpoint(const std::string &path);

} // namespace cactus::core

#endif // CACTUS_CORE_CAMPAIGN_HH
