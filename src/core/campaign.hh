/**
 * @file
 * The fault-tolerant campaign runner. The paper's evaluation is a long
 * multi-benchmark sweep (10 Cactus apps plus 32 Parboil/Rodinia/Tango
 * workloads, each profiled end-to-end); at that scale one bad input or
 * hung kernel must not kill the whole process. runCampaign() executes
 * a benchmark list with:
 *
 *  - per-benchmark isolation: a benchmark that throws (any
 *    cactus::Error or std::exception, including exceptions surfacing
 *    from worker-pool threads) is recorded as a structured failure and
 *    the campaign moves on;
 *  - a monotonic-clock watchdog: a benchmark exceeding its deadline is
 *    cancelled cooperatively at the next kernel-launch boundary and
 *    recorded as Timeout;
 *  - bounded retries with exponential backoff for transient failures
 *    (timeouts are not retried — a deadline miss is not transient);
 *  - a JSONL checkpoint manifest recording each completed profile, so
 *    an interrupted campaign re-runs only the incomplete benchmarks.
 *    Benchmarks run on fresh devices with deterministic statistics, so
 *    a resumed campaign's profiles are bit-identical to an
 *    uninterrupted run's.
 */

#ifndef CACTUS_CORE_CAMPAIGN_HH
#define CACTUS_CORE_CAMPAIGN_HH

#include <functional>
#include <string>
#include <vector>

#include "core/benchmark.hh"
#include "core/harness.hh"

namespace cactus::core {

/** Outcome of one benchmark within a campaign. */
enum class RunStatus
{
    OK,      ///< Profiled successfully (possibly after retries).
    Failed,  ///< Every attempt threw; see CampaignEntry::error.
    Timeout, ///< Cancelled by the watchdog.
    Corrupt, ///< Ran to completion but violated an integrity check:
             ///< a stats-conservation invariant, the golden output
             ///< digest, or the --min-coverage floor. Never retried —
             ///< a wrong answer is deterministic, not transient.
    Skipped  ///< Checkpoint already records a completed run.
};

/** Display name: "OK", "FAILED", "TIMEOUT", "CORRUPT", "SKIPPED". */
const char *runStatusName(RunStatus status);

/** Structured record of one benchmark's campaign outcome. */
struct CampaignEntry
{
    std::string name;
    RunStatus status = RunStatus::Failed;
    std::string error;      ///< what() of the final failure, if any.
    int attempts = 0;       ///< Attempts consumed (0 for Skipped).
    double wallSeconds = 0; ///< Host wall clock across attempts.

    /**
     * The profile when status is OK. For Skipped entries the
     * aggregate fields (name/suite/domain, launches, totalSeconds,
     * totalWarpInsts, totalDramSectors) are restored from the
     * checkpoint manifest; the per-kernel rows are not persisted and
     * stay empty.
     */
    BenchmarkProfile profile;
};

/** Knobs for one campaign. */
struct CampaignOptions
{
    Scale scale = Scale::Small;
    gpu::DeviceConfig config;

    /** Watchdog deadline per attempt, in wall seconds; 0 disables. */
    double timeoutSeconds = 0;

    /** Extra attempts after a failed (not timed-out) one. */
    int retries = 0;

    /** Sleep before retry k is backoffSeconds * 2^(k-1). */
    double backoffSeconds = 0.05;

    /** JSONL manifest path; empty disables checkpointing. Existing
     *  entries are honoured (resume), new completions appended. */
    std::string checkpointPath;

    /**
     * Check every completed benchmark's recorded output digest against
     * @p goldens (which must then be non-null). A mismatch — or a
     * benchmark with no golden recorded for this scale — is an
     * IntegrityError and the entry becomes Corrupt.
     */
    bool verifyOutputs = false;
    const GoldenTable *goldens = nullptr;

    /**
     * When set, record mode: each completed benchmark's digest is
     * written into this table (for GoldenTable::save) instead of being
     * checked. Takes precedence over verifyOutputs.
     */
    GoldenTable *recordGoldens = nullptr;

    /**
     * Reject completed runs whose minSampleCoverage falls below this
     * floor (their counters lean too heavily on extrapolation to
     * trust); 0 disables the check. Rejected runs become Corrupt.
     */
    double minCoverage = 0;

    /** Invoked after each benchmark settles, in campaign order. */
    std::function<void(const CampaignEntry &)> onEntry;
};

/** Aggregated campaign outcome. */
struct CampaignResult
{
    std::vector<CampaignEntry> entries;
    int okCount = 0;
    int failedCount = 0;
    int timeoutCount = 0;
    int corruptCount = 0;
    int skippedCount = 0;

    /** True when nothing failed, timed out, or was found corrupt
     *  (skips are fine). */
    bool
    allOk() const
    {
        return failedCount == 0 && timeoutCount == 0 &&
            corruptCount == 0;
    }
};

/**
 * Run @p benchmarks under the fault-tolerance policy in @p opts.
 * Never throws for a benchmark failure — those become entries; only
 * campaign-level misconfiguration (e.g. an unwritable checkpoint
 * path) raises ConfigError.
 */
CampaignResult runCampaign(const std::vector<BenchmarkInfo> &benchmarks,
                           const CampaignOptions &opts);

/**
 * Load the completed entries of a checkpoint manifest. Missing files
 * yield an empty list; malformed lines (e.g. a record truncated by a
 * kill mid-write) are skipped with a warning, so a damaged manifest
 * degrades to re-running benchmarks, never to aborting.
 */
std::vector<CampaignEntry> readCheckpoint(const std::string &path);

} // namespace cactus::core

#endif // CACTUS_CORE_CAMPAIGN_HH
