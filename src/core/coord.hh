/**
 * @file
 * The shared coordination log for dynamically sharded campaigns: an
 * append-only JSONL file on a filesystem every worker process can
 * reach, reusing the torn-line-tolerant checkpoint discipline (one
 * record per line, each line written by a single O_APPEND write, a
 * torn trailing line degrades to "not recorded").
 *
 * Two record kinds share the file:
 *
 *  - lease records, {"state":"lease","gen":G,"task":T,"worker":W}:
 *    a worker's claim on one sweep task. Claims race by append order:
 *    after appending its own lease, a worker re-reads the log, and the
 *    FIRST lease for the task within the highest generation wins —
 *    O_APPEND gives concurrent appends a total order, so every worker
 *    agrees on the winner without locks.
 *
 *  - done records: ordinary campaign checkpoint records (written by
 *    the campaign runner through the same canonical serializer as
 *    --checkpoint manifests), marking a task completed. Done records
 *    make the log double as the shared checkpoint: resume, merge, and
 *    cache warm-up all read them.
 *
 * Generations make crashed fleets recoverable without letting late
 * joiners duplicate live work: a worker JOINS the highest generation
 * already in the log (so workers of one fleet honour each other's
 * leases whatever order they started in), and only an explicit
 * new-generation open — the recovery path after a crashed fleet —
 * bumps to max(gen)+1, which unbinds the dead fleet's leases while
 * still honouring its done records. A recovery fleet racing a live
 * one can duplicate in-flight work, which is harmless — results are
 * deterministic and the merge dedups by task digest.
 */

#ifndef CACTUS_CORE_COORD_HH
#define CACTUS_CORE_COORD_HH

#include <string>
#include <unordered_map>
#include <unordered_set>

namespace cactus::core {

/** One worker's handle on a shared coordination log. */
class CoordinationLog
{
  public:
    /**
     * Open (creating if absent) the log at @p path as @p worker. The
     * generation is fixed at construction: the highest lease
     * generation already in the log (1 for a fresh log), or one above
     * it when @p newGeneration is set — the recovery path that
     * unbinds a crashed fleet's stale leases. ConfigError when the
     * file cannot be opened for appending.
     */
    CoordinationLog(std::string path, std::string worker,
                    bool newGeneration = false);
    ~CoordinationLog();

    CoordinationLog(const CoordinationLog &) = delete;
    CoordinationLog &operator=(const CoordinationLog &) = delete;

    /** Outcome of one claim attempt. */
    enum class Claim
    {
        Won,      ///< This worker owns the task: run it.
        Leased,   ///< Another worker's lease won: skip it.
        Completed ///< A done record already covers it: skip it.
    };

    /**
     * Try to claim @p taskId: append a lease record, then re-read the
     * log and let append order decide. Deterministic across racing
     * workers — every reader sees the same first-lease-in-generation.
     */
    Claim claim(const std::string &taskId);

    /** Append one completed-task checkpoint record (a single line,
     *  no trailing newline needed) with a single atomic write. */
    void recordDone(const std::string &recordLine);

    /** Tasks with a done record at the last scan (claim() rescans). */
    const std::unordered_set<std::string> &
    completedTasks() const
    {
        return completed_;
    }

    const std::string &path() const { return path_; }
    const std::string &worker() const { return worker_; }
    long generation() const { return generation_; }

  private:
    void appendLine(const std::string &line);
    void scan();

    std::string path_;
    std::string worker_;
    long generation_ = 1;
    int fd_ = -1;

    std::unordered_set<std::string> completed_;

    /** task -> first-leasing worker within this generation. */
    std::unordered_map<std::string, std::string> leaseWinner_;
};

} // namespace cactus::core

#endif // CACTUS_CORE_COORD_HH
