/**
 * @file
 * The shared coordination log for dynamically sharded campaigns: an
 * append-only JSONL file on a filesystem every worker process can
 * reach, reusing the torn-line-tolerant checkpoint discipline (one
 * record per line, each line written by a single O_APPEND write, a
 * torn trailing line degrades to "not recorded").
 *
 * Four record kinds share the file:
 *
 *  - lease records, {"state":"lease","gen":G,"task":T,"worker":W,
 *    "fence":K}: a worker's claim on one sweep task. Claims race by
 *    append order: after appending its own lease, a worker re-reads
 *    the log, and within the highest generation the winner is the
 *    FIRST lease carrying the HIGHEST fence — O_APPEND gives
 *    concurrent appends a total order, so every worker agrees on the
 *    winner without locks. K counts the lease records that preceded
 *    this one for the task, so fences grow monotonically: a steal
 *    (see below) always carries a fence strictly above the lease it
 *    supersedes, and a zombie holder re-reading the log can tell its
 *    claim has been fenced off.
 *
 *  - beat records, {"state":"beat","gen":G,"worker":W,"pid":P,
 *    "seq":N}: the liveness side-channel. Workers append beats from
 *    the campaign runner at kernel-launch boundaries (throttled), so
 *    a worker that is making progress keeps beating and a worker
 *    that died — or wedged inside a launch — goes silent. A lease
 *    whose owner has appended nothing while the OBSERVER emitted
 *    leaseTtl beats of its own is stale and may be stolen. Beats
 *    carry the writer's pid so two processes sharing one worker id
 *    are detected (a fail-fast ConfigError) instead of silently
 *    honouring each other's leases.
 *
 *  - release records, {"state":"release","gen":G,"task":T,
 *    "worker":W}: a voluntary unbind, appended when a worker's
 *    attempt at a task failed locally. Peers may re-lease the task
 *    immediately instead of waiting for the holder to go stale —
 *    without this, two live workers could wait on each other's
 *    failed tasks forever.
 *
 *  - done records: campaign checkpoint records wrapped with the
 *    fence they ran under ({"task":T,"status":"ok","fence":K,
 *    "worker":W,"result":...}), marking a task completed. Done
 *    records make the log double as the shared checkpoint: resume,
 *    merge, and cache warm-up all read them. The fence lets the
 *    merge attribute each recovered task to exactly one winning
 *    lease and discard a zombie's duplicate deterministically.
 *
 * Generations are retained as the coarse manual recovery path: a
 * worker JOINS the highest generation already in the log, and an
 * explicit new-generation open bumps to max(gen)+1, unbinding every
 * stale lease at once. With heartbeat leases enabled (leaseTtl > 0)
 * generations are rarely needed — dead workers' leases are stolen
 * one by one with fencing, no human in the loop.
 */

#ifndef CACTUS_CORE_COORD_HH
#define CACTUS_CORE_COORD_HH

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/fault.hh"

namespace cactus::core {

/** One worker's handle on a shared coordination log. */
class CoordinationLog
{
  public:
    /** Liveness and recovery knobs. */
    struct Options
    {
        /** Open a new lease generation, unbinding a crashed fleet's
         *  stale leases (the manual recovery path). */
        bool newGeneration = false;

        /**
         * Heartbeat leases: a lease whose owner has appended nothing
         * to the log while THIS worker emitted leaseTtl beats of its
         * own is stale and will be stolen by claim() with a fencing
         * token. 0 disables stealing (the pre-fencing semantics:
         * stale leases bind until --new-generation).
         */
        int leaseTtl = 0;

        /** Minimum seconds between maybeBeat() appends. beat() is
         *  never throttled. */
        double beatIntervalSeconds = 0.5;
    };

    /**
     * Open (creating if absent) the log at @p path as @p worker. The
     * generation is fixed at construction: the highest lease
     * generation already in the log (1 for a fresh log), or one above
     * it when options.newGeneration is set. ConfigError when the
     * file cannot be opened for appending.
     */
    CoordinationLog(std::string path, std::string worker,
                    Options options);
    CoordinationLog(std::string path, std::string worker,
                    bool newGeneration = false)
        : CoordinationLog(std::move(path), std::move(worker),
                          Options{newGeneration})
    {
    }
    ~CoordinationLog();

    CoordinationLog(const CoordinationLog &) = delete;
    CoordinationLog &operator=(const CoordinationLog &) = delete;

    /** Outcome of one claim attempt. */
    enum class Claim
    {
        Won,       ///< This worker owns the task: run it.
        Leased,    ///< Another worker's live lease wins: skip/wait.
        Completed, ///< A done record already covers it: skip it.
        Stolen     ///< This worker's own lease was fenced off by a
                   ///< higher-fence steal: abandon the task.
    };

    /**
     * Try to claim @p taskId: append a lease record, then re-read the
     * log and let append order decide. When the current holder is
     * stale (missed leaseTtl of this worker's beats), the appended
     * lease is a steal — it carries a fence above every prior lease
     * for the task, so the holder sees itself superseded on its next
     * re-read. Deterministic across racing workers: every reader
     * sees the same first-lease-at-the-highest-fence.
     */
    Claim claim(const std::string &taskId);

    /**
     * Append one heartbeat record (monotonic per-worker seq, fsync'd)
     * and rescan. Throws ConfigError if the rescan finds a beat under
     * this worker id from a different pid interleaved with ours —
     * two live processes sharing a worker id must fail fast, not
     * honour each other's leases.
     */
    void beat();

    /** beat(), throttled to one append per beatIntervalSeconds.
     *  Returns true when a beat was actually appended. */
    bool maybeBeat();

    /** Seconds between maybeBeat() appends (Options value). */
    double
    beatIntervalSeconds() const
    {
        return options_.beatIntervalSeconds;
    }

    /** True when stale leases are stolen (leaseTtl > 0). */
    bool
    stealingEnabled() const
    {
        return options_.leaseTtl > 0;
    }

    /**
     * Record @p taskId completed with the canonical serialized
     * result body, wrapped with the fence this worker's lease ran
     * under. Re-reads the log first: if the lease has been fenced
     * off by a steal — or another worker already completed the task
     * — the result is ABANDONED (nothing appended) and false is
     * returned, so a zombie can never claim credit for a task that
     * was stolen from it.
     */
    bool recordDone(const std::string &taskId,
                    const std::string &resultBody);

    /** Legacy form: append a pre-built checkpoint record verbatim
     *  (no fence wrapper, no abandonment check). */
    void recordDone(const std::string &recordLine);

    /** Voluntarily unbind this worker's lease on @p taskId after a
     *  failed attempt, letting peers re-lease it immediately. No-op
     *  when this worker holds no lease on the task. */
    void release(const std::string &taskId);

    /** Tasks with a done record at the last scan (claim() rescans). */
    const std::unordered_set<std::string> &
    completedTasks() const
    {
        return completed_;
    }

    /** Line-level health of the last scan. */
    struct ScanStats
    {
        std::size_t lines = 0;    ///< Non-empty lines read.
        std::size_t beats = 0;    ///< Well-formed beat records.
        std::size_t leases = 0;   ///< Well-formed lease records.
        std::size_t releases = 0; ///< Well-formed release records.
        std::size_t dones = 0;    ///< Completed-task records.
        std::size_t torn = 0;     ///< Truncated/unparseable lines,
                                  ///< skipped without effect.
        std::size_t desync = 0;   ///< Well-formed records that
                                  ///< contradict the protocol (beat
                                  ///< seq regression, lease fence
                                  ///< regression) — 0 in any log
                                  ///< written only by this code.
    };

    const ScanStats &lastScan() const { return scanStats_; }

    /** Whole-log summary, read-only — no newline guard, no
     *  generation join, no records appended. For supervisors and
     *  post-mortems. */
    struct Stats
    {
        std::size_t beats = 0;
        std::size_t leases = 0;
        std::size_t steals = 0; ///< Leases with fence > 0.
        std::size_t releases = 0;
        std::size_t dones = 0;
        std::size_t torn = 0;
        std::size_t desync = 0;
        long maxGeneration = 0;
        std::size_t workers = 0; ///< Distinct worker ids seen.
    };

    static Stats inspect(const std::string &path);

    const std::string &path() const { return path_; }
    const std::string &worker() const { return worker_; }
    long generation() const { return generation_; }

    /** Install an explicit fault injector (tests); the default is
     *  the process-wide CACTUS_FAULT spec. Site: 'coord-append'
     *  tears an append mid-record and throws, simulating ENOSPC or
     *  a short write on the shared filesystem. */
    void setFaultInjector(FaultInjector injector)
    {
        fault_ = std::move(injector);
    }

  private:
    struct LeaseInfo
    {
        std::string worker;
        long fence = 0;
        std::size_t line = 0; ///< Log line index of the record.
    };

    void appendLine(const std::string &line);
    void scan();
    long nextFence(const std::string &taskId) const;
    bool ownerStale(const std::string &owner) const;

    /** Resolve a claim from the current tables; nullopt means "no
     *  binding lease — append one (or a steal) and re-decide". */
    std::optional<Claim> decide(const std::string &taskId);

    std::string path_;
    std::string worker_;
    Options options_;
    long generation_ = 1;
    int fd_ = -1;
    long pid_ = 0;

    std::uint64_t mySeq_ = 0; ///< Last beat seq this worker emitted.
    std::chrono::steady_clock::time_point lastBeat_{};
    bool everBeat_ = false;

    std::unordered_set<std::string> completed_;

    /** task -> winning lease (first at the highest fence) within
     *  this generation. */
    std::unordered_map<std::string, LeaseInfo> leaseWinner_;

    /** task -> count of lease records in the log (any generation) —
     *  the next fence value. */
    std::unordered_map<std::string, long> leaseCount_;

    /** worker -> log line of its most recent record of any kind. */
    std::unordered_map<std::string, std::size_t> lastActivity_;

    /** Log lines of this process's own beats (worker id AND pid
     *  match), the observer clock for staleness. */
    std::vector<std::size_t> myBeatLines_;

    /** Tasks this worker currently believes it holds, and the fence
     *  its lease carried when it last won the claim. */
    std::unordered_map<std::string, long> myLeases_;

    ScanStats scanStats_;

    FaultInjector fault_ = FaultInjector::fromEnv();
};

} // namespace cactus::core

#endif // CACTUS_CORE_COORD_HH
