#include "core/sweep.hh"

#include <algorithm>
#include <fstream>
#include <map>

#include "common/error.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/parse.hh"
#include "core/campaign.hh"
#include "gpu/digest.hh"

namespace cactus::core {

namespace {

/** Apply one swept value to a config. The keys mirror the serve
 *  request schema, so "what can be swept" and "what can be requested"
 *  stay one vocabulary. */
void
applySweepValue(gpu::DeviceConfig &cfg, const std::string &key,
                const std::string &value)
{
    const std::string opt = "--sweep " + key;
    if (key == "threads") {
        cfg.hostThreads = parseNonNegativeInt(value, opt.c_str());
    } else if (key == "l1_kb") {
        cfg.l1SizeBytes =
            parsePositiveInt(value, opt.c_str()) * 1024;
    } else if (key == "l2_kb") {
        cfg.l2SizeBytes =
            parsePositiveInt(value, opt.c_str()) * 1024;
    } else if (key == "l2_slices") {
        cfg.numL2Slices = parsePositiveInt(value, opt.c_str());
    } else if (key == "sampled_warps") {
        cfg.maxSampledWarps = parsePositiveInt(value, opt.c_str());
    } else if (key == "fast_forward") {
        if (value == "on" || value == "1")
            cfg.fastForward = true;
        else if (value == "off" || value == "0")
            cfg.fastForward = false;
        else
            throw ConfigError("--sweep fast_forward expects "
                              "on|off|1|0, got '" + value + "'");
    } else {
        throw ConfigError("unknown sweep key '" + key + "'");
    }
}

std::string
knownKeysList()
{
    std::string out;
    for (const auto &key : sweepKeys()) {
        if (!out.empty())
            out += ", ";
        out += key;
    }
    return out;
}

} // namespace

const std::vector<std::string> &
sweepKeys()
{
    static const std::vector<std::string> keys = {
        "threads",       "l1_kb",        "l2_kb",
        "l2_slices",     "sampled_warps", "fast_forward"};
    return keys;
}

SweepAxis
parseSweepAxis(const std::string &spec)
{
    const auto eq = spec.find('=');
    if (eq == std::string::npos || eq == 0)
        throw ConfigError("--sweep expects key=v1,v2,..., got '" +
                          spec + "'");
    SweepAxis axis;
    axis.key = spec.substr(0, eq);
    if (std::find(sweepKeys().begin(), sweepKeys().end(), axis.key) ==
        sweepKeys().end())
        throw ConfigError("unknown sweep key '" + axis.key +
                          "' (known: " + knownKeysList() + ")");
    for (std::size_t at = eq + 1; at <= spec.size();) {
        auto comma = spec.find(',', at);
        if (comma == std::string::npos)
            comma = spec.size();
        if (comma > at)
            axis.values.push_back(spec.substr(at, comma - at));
        at = comma + 1;
    }
    if (axis.values.empty())
        throw ConfigError("--sweep " + axis.key +
                          " needs at least one value");
    return axis;
}

std::vector<SweepPoint>
expandSweep(const gpu::DeviceConfig &base,
            const std::vector<SweepAxis> &axes)
{
    std::vector<SweepPoint> points{{base, ""}};
    for (const auto &axis : axes) {
        std::vector<SweepPoint> next;
        next.reserve(points.size() * axis.values.size());
        for (const auto &point : points) {
            for (const auto &value : axis.values) {
                SweepPoint expanded = point;
                applySweepValue(expanded.config, axis.key, value);
                expanded.label += (expanded.label.empty() ? "" : ",") +
                    axis.key + "=" + value;
                next.push_back(std::move(expanded));
            }
        }
        points = std::move(next);
    }
    return points;
}

std::string
sweepTaskId(const std::string &bench, const std::string &scaleTok,
            const gpu::DeviceConfig &config)
{
    return bench + "/" + scaleTok + "/" + gpu::hex16(config.digest());
}

bool
taskInShard(const std::string &taskId, int shards, int shardId)
{
    if (shards <= 1)
        return true;
    return gpu::fnv1aBytes(taskId) %
        static_cast<std::uint64_t>(shards) ==
        static_cast<std::uint64_t>(shardId);
}

MergeResult
mergeCheckpoints(const std::vector<std::string> &inputs,
                 const std::string &outPath)
{
    MergeResult result;
    // Everything the merge keeps per task id: the distinct result
    // bodies seen (in first-seen order, so the corrupt report is
    // stable) and the fence of every completed record, for zombie
    // accounting and winning-fence attribution.
    struct TaskRecords
    {
        std::vector<std::string> bodies;
        std::vector<long> fences;
        long maxFence = 0;
    };
    std::map<std::string, TaskRecords> byTask;

    for (const auto &path : inputs) {
        std::ifstream in(path, std::ios::binary);
        bool missing = !in;
        if (!missing) {
            // A zero-length shard is a worker that died before its
            // first completion: nothing to merge, same as absent.
            in.seekg(0, std::ios::end);
            missing = in.tellg() == 0;
            in.seekg(0, std::ios::beg);
        }
        if (missing) {
            // A crashed fleet must still merge: skip and count, and
            // let the caller decide whether missing shards are fatal.
            warn("merge: input '", path, "' is missing or empty");
            ++result.missingInputs;
            continue;
        }
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty())
                continue;
            std::string state, status, task;
            if (jsonFindText(line, "state", state)) {
                ++result.ignored; // Coordination noise (lease, beat,
                continue;         // release), not results.
            }
            if (!jsonFindText(line, "status", status) ||
                status != "ok") {
                ++result.ignored; // Torn or foreign line.
                continue;
            }
            if (!jsonFindText(line, "task", task)) {
                ++result.legacy; // Pre-task-id record: no identity
                continue;        // to dedup on; merge skips it.
            }
            // Dedup on the result BODY, not the raw line: a done
            // record from a coordination log wraps the same canonical
            // body with fence/worker attribution, and must collapse
            // against the plain checkpoint record for the same run.
            const auto at = line.find("\"result\":{");
            if (at == std::string::npos || line.back() != '}') {
                ++result.ignored; // Body torn off: not a completion.
                continue;
            }
            std::string body =
                line.substr(at + 9, line.size() - at - 10);
            double fence = 0;
            jsonFindNumber(line, "fence", fence);

            ++result.records;
            auto &records = byTask[task];
            records.fences.push_back(static_cast<long>(fence));
            records.maxFence =
                std::max(records.maxFence, static_cast<long>(fence));
            if (std::find(records.bodies.begin(),
                          records.bodies.end(),
                          body) != records.bodies.end())
                ++result.duplicates;
            else
                records.bodies.push_back(std::move(body));
        }
    }

    std::ofstream out(outPath, std::ios::trunc);
    if (!out)
        throw ConfigError("cannot write merged report '" + outPath +
                          "'");
    for (const auto &[task, records] : byTask) {
        ++result.tasks;
        if (records.bodies.size() > 1) {
            // Same task id means same config digest: two different
            // record bodies are a determinism violation, not noise —
            // no fence, however high, can bless a wrong answer.
            result.corruptTasks.push_back(task);
            continue;
        }
        for (const long fence : records.fences)
            if (fence < records.maxFence)
                ++result.zombieDuplicates;
        if (records.maxFence > 0)
            result.recoveredTasks.emplace_back(task, records.maxFence);
        // Re-emit canonically: the fence/worker wrapper is stripped,
        // so the merged bytes match a serial run's exactly.
        out << checkpointRecordLine(task, records.bodies.front())
            << '\n';
    }
    if (!out.flush())
        throw ConfigError("short write to merged report '" + outPath +
                          "'");
    if (result.legacy > 0)
        warn("merge: skipped ", result.legacy, " record",
             result.legacy == 1 ? "" : "s",
             " without a task id (written before sweep-aware "
             "checkpoints)");
    return result;
}

} // namespace cactus::core
