#include "core/sweep.hh"

#include <algorithm>
#include <fstream>
#include <map>

#include "common/error.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/parse.hh"
#include "gpu/digest.hh"

namespace cactus::core {

namespace {

/** Apply one swept value to a config. The keys mirror the serve
 *  request schema, so "what can be swept" and "what can be requested"
 *  stay one vocabulary. */
void
applySweepValue(gpu::DeviceConfig &cfg, const std::string &key,
                const std::string &value)
{
    const std::string opt = "--sweep " + key;
    if (key == "threads") {
        cfg.hostThreads = parseNonNegativeInt(value, opt.c_str());
    } else if (key == "l1_kb") {
        cfg.l1SizeBytes =
            parsePositiveInt(value, opt.c_str()) * 1024;
    } else if (key == "l2_kb") {
        cfg.l2SizeBytes =
            parsePositiveInt(value, opt.c_str()) * 1024;
    } else if (key == "l2_slices") {
        cfg.numL2Slices = parsePositiveInt(value, opt.c_str());
    } else if (key == "sampled_warps") {
        cfg.maxSampledWarps = parsePositiveInt(value, opt.c_str());
    } else if (key == "fast_forward") {
        if (value == "on" || value == "1")
            cfg.fastForward = true;
        else if (value == "off" || value == "0")
            cfg.fastForward = false;
        else
            throw ConfigError("--sweep fast_forward expects "
                              "on|off|1|0, got '" + value + "'");
    } else {
        throw ConfigError("unknown sweep key '" + key + "'");
    }
}

std::string
knownKeysList()
{
    std::string out;
    for (const auto &key : sweepKeys()) {
        if (!out.empty())
            out += ", ";
        out += key;
    }
    return out;
}

} // namespace

const std::vector<std::string> &
sweepKeys()
{
    static const std::vector<std::string> keys = {
        "threads",       "l1_kb",        "l2_kb",
        "l2_slices",     "sampled_warps", "fast_forward"};
    return keys;
}

SweepAxis
parseSweepAxis(const std::string &spec)
{
    const auto eq = spec.find('=');
    if (eq == std::string::npos || eq == 0)
        throw ConfigError("--sweep expects key=v1,v2,..., got '" +
                          spec + "'");
    SweepAxis axis;
    axis.key = spec.substr(0, eq);
    if (std::find(sweepKeys().begin(), sweepKeys().end(), axis.key) ==
        sweepKeys().end())
        throw ConfigError("unknown sweep key '" + axis.key +
                          "' (known: " + knownKeysList() + ")");
    for (std::size_t at = eq + 1; at <= spec.size();) {
        auto comma = spec.find(',', at);
        if (comma == std::string::npos)
            comma = spec.size();
        if (comma > at)
            axis.values.push_back(spec.substr(at, comma - at));
        at = comma + 1;
    }
    if (axis.values.empty())
        throw ConfigError("--sweep " + axis.key +
                          " needs at least one value");
    return axis;
}

std::vector<SweepPoint>
expandSweep(const gpu::DeviceConfig &base,
            const std::vector<SweepAxis> &axes)
{
    std::vector<SweepPoint> points{{base, ""}};
    for (const auto &axis : axes) {
        std::vector<SweepPoint> next;
        next.reserve(points.size() * axis.values.size());
        for (const auto &point : points) {
            for (const auto &value : axis.values) {
                SweepPoint expanded = point;
                applySweepValue(expanded.config, axis.key, value);
                expanded.label += (expanded.label.empty() ? "" : ",") +
                    axis.key + "=" + value;
                next.push_back(std::move(expanded));
            }
        }
        points = std::move(next);
    }
    return points;
}

std::string
sweepTaskId(const std::string &bench, const std::string &scaleTok,
            const gpu::DeviceConfig &config)
{
    return bench + "/" + scaleTok + "/" + gpu::hex16(config.digest());
}

bool
taskInShard(const std::string &taskId, int shards, int shardId)
{
    if (shards <= 1)
        return true;
    return gpu::fnv1aBytes(taskId) %
        static_cast<std::uint64_t>(shards) ==
        static_cast<std::uint64_t>(shardId);
}

MergeResult
mergeCheckpoints(const std::vector<std::string> &inputs,
                 const std::string &outPath)
{
    MergeResult result;
    // task id -> every distinct record line seen for it (in first-seen
    // order, so the corrupt report is stable).
    std::map<std::string, std::vector<std::string>> byTask;

    for (const auto &path : inputs) {
        std::ifstream in(path);
        if (!in)
            throw ConfigError("cannot read merge input '" + path +
                              "'");
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty())
                continue;
            std::string state, status, task;
            if (jsonFindText(line, "state", state) &&
                state == "lease") {
                ++result.ignored; // Coordination noise, not results.
                continue;
            }
            if (!jsonFindText(line, "status", status) ||
                status != "ok") {
                ++result.ignored; // Torn or foreign line.
                continue;
            }
            if (!jsonFindText(line, "task", task)) {
                ++result.legacy; // Pre-task-id record: no identity
                continue;        // to dedup on; merge skips it.
            }
            ++result.records;
            auto &lines = byTask[task];
            if (std::find(lines.begin(), lines.end(), line) !=
                lines.end())
                ++result.duplicates;
            else
                lines.push_back(line);
        }
    }

    std::ofstream out(outPath, std::ios::trunc);
    if (!out)
        throw ConfigError("cannot write merged report '" + outPath +
                          "'");
    for (const auto &[task, lines] : byTask) {
        ++result.tasks;
        if (lines.size() > 1) {
            // Same task id means same config digest: two different
            // record bodies are a determinism violation, not noise.
            result.corruptTasks.push_back(task);
            continue;
        }
        out << lines.front() << '\n';
    }
    if (!out.flush())
        throw ConfigError("short write to merged report '" + outPath +
                          "'");
    if (result.legacy > 0)
        warn("merge: skipped ", result.legacy, " record",
             result.legacy == 1 ? "" : "s",
             " without a task id (written before sweep-aware "
             "checkpoints)");
    return result;
}

} // namespace cactus::core
