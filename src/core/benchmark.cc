#include "core/benchmark.hh"

#include <algorithm>

#include "common/error.hh"
#include "common/logging.hh"

namespace cactus::core {

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

void
Registry::add(BenchmarkInfo info)
{
    for (const auto &existing : benchmarks_)
        if (existing.name == info.name)
            panic("duplicate benchmark registration: ", info.name);
    benchmarks_.push_back(std::move(info));
}

std::vector<const BenchmarkInfo *>
Registry::list(const std::string &suite) const
{
    std::vector<const BenchmarkInfo *> out;
    for (const auto &info : benchmarks_)
        if (suite.empty() || info.suite == suite)
            out.push_back(&info);
    std::sort(out.begin(), out.end(),
              [](const BenchmarkInfo *a, const BenchmarkInfo *b) {
                  if (a->suite != b->suite)
                      return a->suite < b->suite;
                  return a->name < b->name;
              });
    return out;
}

std::unique_ptr<Benchmark>
Registry::create(const std::string &name, Scale scale) const
{
    for (const auto &info : benchmarks_)
        if (info.name == name)
            return info.factory(scale);
    throw ConfigError("unknown benchmark '" + name + "'");
}

bool
Registry::contains(const std::string &name) const
{
    for (const auto &info : benchmarks_)
        if (info.name == name)
            return true;
    return false;
}

} // namespace cactus::core
