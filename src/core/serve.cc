#include "core/serve.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/atomic_file.hh"
#include "common/error.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "core/benchmark.hh"
#include "core/harness.hh"
#include "core/verify.hh"
#include "gpu/digest.hh"

namespace cactus::core {

// ---------------------------------------------------------------------------
// ResultCache

ResultCache::ResultCache(std::size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1)
{
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lru_.size();
}

std::vector<std::string>
ResultCache::keysMruFirst() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> keys;
    keys.reserve(lru_.size());
    for (const auto &entry : lru_)
        keys.push_back(entry.key);
    return keys;
}

std::size_t
ResultCache::inflightWaiters(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = inflight_.find(key);
    return it == inflight_.end()
        ? 0
        : static_cast<std::size_t>(it->second->waiters);
}

ResultCache::Lookup
ResultCache::getOrCompute(const std::string &key,
                          const std::function<std::string()> &compute)
{
    std::unique_lock<std::mutex> lock(mutex_);

    if (const auto it = index_.find(key); it != index_.end()) {
        // Completed entry: refresh its recency and serve its bytes.
        lru_.splice(lru_.begin(), lru_, it->second);
        ++hits_;
        return {it->second->body, Source::Cache};
    }

    if (const auto it = inflight_.find(key); it != inflight_.end()) {
        // An identical request is already simulating: wait for its
        // result instead of spending a second simulation.
        auto fl = it->second;
        ++fl->waiters;
        ++coalesced_;
        fl->cv.wait(lock, [&] { return fl->done; });
        if (fl->error)
            std::rethrow_exception(fl->error);
        return {fl->body, Source::Coalesced};
    }

    // First asker: compute outside the lock so distinct keys overlap.
    auto fl = std::make_shared<Inflight>();
    inflight_.emplace(key, fl);
    ++misses_;
    lock.unlock();

    std::string body;
    std::exception_ptr error;
    try {
        body = compute();
    } catch (...) {
        error = std::current_exception();
    }

    lock.lock();
    if (!error) {
        while (lru_.size() >= capacity_) {
            index_.erase(lru_.back().key);
            lru_.pop_back();
            ++evictions_;
        }
        lru_.push_front(Entry{key, body});
        index_[key] = lru_.begin();
    }
    fl->done = true;
    fl->error = error;
    fl->body = body;
    inflight_.erase(key);
    fl->cv.notify_all();
    lock.unlock();

    if (error)
        std::rethrow_exception(error);
    return {std::move(body), Source::Computed};
}

std::optional<std::string>
ResultCache::peek(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
        ++misses_;
        return std::nullopt;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    return it->second->body;
}

void
ResultCache::insert(const std::string &key, std::string body)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = index_.find(key); it != index_.end()) {
        it->second->body = std::move(body);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    while (lru_.size() >= capacity_) {
        index_.erase(lru_.back().key);
        lru_.pop_back();
        ++evictions_;
    }
    lru_.push_front(Entry{key, std::move(body)});
    index_[key] = lru_.begin();
}

void
ResultCache::saveNdjson(const std::string &path,
                        const FaultInjector &fault) const
{
    std::string content;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // LRU-first: loadNdjson() pushes each record to the front, so
        // the last line written (the MRU entry) ends up at the front
        // again. Each record carries an FNV-1a digest of its body
        // bytes so the loader can tell a corrupted record from a
        // merely torn one.
        for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
            content += "{\"key\":\"" + jsonEscape(it->key) +
                "\",\"digest\":\"" +
                gpu::hex16(gpu::fnv1aBytes(it->body)) +
                "\",\"body\":\"" + jsonEscape(it->body) + "\"}\n";
        }
    }
    // Either the previous complete file or the new complete file —
    // a crash (or injected cache-write fault) mid-save never tears
    // the bytes a loader will see.
    atomicWriteFile(path, content, fault);
}

std::size_t
ResultCache::loadNdjson(const std::string &path, LoadStats *stats)
{
    LoadStats local;
    LoadStats &s = stats ? *stats : local;
    s = LoadStats{};
    std::ifstream in(path);
    if (!in)
        return 0; // Absent cache file: cold start, not an error.
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::string key, body, digest;
        if (!jsonFindText(line, "key", key) ||
            !jsonFindText(line, "body", body) || key.empty()) {
            ++s.torn; // Torn trailing line, most likely.
            continue;
        }
        // Digest-validated records: a parseable line whose body bytes
        // do not hash to the recorded digest is silent corruption —
        // skip it rather than serve wrong bytes as a "cache hit".
        // Records without a digest field (pre-digest files) are
        // trusted as before.
        if (jsonFindText(line, "digest", digest) &&
            digest != gpu::hex16(gpu::fnv1aBytes(body))) {
            ++s.corrupt;
            continue;
        }
        insert(key, std::move(body));
        ++s.loaded;
    }
    if (s.torn > 0)
        warn("cache file '", path, "': skipped ", s.torn,
             " torn line", s.torn == 1 ? "" : "s");
    if (s.corrupt > 0)
        warn("cache file '", path, "': skipped ", s.corrupt,
             " corrupt record", s.corrupt == 1 ? "" : "s",
             " (digest mismatch)");
    return s.loaded;
}

// ---------------------------------------------------------------------------
// AdmissionQueue

AdmissionQueue::AdmissionQueue(int maxInflight, int maxQueue)
    : maxInflight_(maxInflight > 0 ? maxInflight : 1),
      maxQueue_(maxQueue > 0 ? maxQueue : 0)
{
}

AdmissionQueue::Outcome
AdmissionQueue::acquire()
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (closed_) {
        ++rejected_;
        return Outcome::Closed;
    }
    if (inflight_ < maxInflight_) {
        ++inflight_;
        return Outcome::Admitted;
    }
    if (queued_ >= maxQueue_) {
        // The fast rejection path: never block when saturated.
        ++rejected_;
        return Outcome::Rejected;
    }
    ++queued_;
    slotFree_.wait(lock, [&] { return inflight_ < maxInflight_; });
    --queued_;
    ++inflight_;
    return Outcome::Admitted;
}

void
AdmissionQueue::release()
{
    std::lock_guard<std::mutex> lock(mutex_);
    --inflight_;
    slotFree_.notify_one();
    if (inflight_ == 0 && queued_ == 0)
        idle_.notify_all();
}

void
AdmissionQueue::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    // Queued waiters are deliberately NOT woken to fail: work the
    // server already accepted drains to completion; only new work is
    // refused.
    if (inflight_ == 0 && queued_ == 0)
        idle_.notify_all();
}

bool
AdmissionQueue::awaitIdle(double seconds)
{
    std::unique_lock<std::mutex> lock(mutex_);
    const auto idle = [&] { return inflight_ == 0 && queued_ == 0; };
    if (seconds <= 0)
        return idle();
    return idle_.wait_for(lock,
                          std::chrono::duration<double>(seconds),
                          idle);
}

int
AdmissionQueue::inflight() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return inflight_;
}

int
AdmissionQueue::queued() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queued_;
}

std::uint64_t
AdmissionQueue::rejected() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return rejected_;
}

// ---------------------------------------------------------------------------
// Request processing

namespace {

/** Arms a deadline + server-shutdown forwarder for one simulation:
 *  requests @p victim when the deadline passes or @p server is
 *  requested, polling the latter at a coarse period (shutdown
 *  latency, not correctness — the simulation itself still cancels at
 *  its next launch boundary). Mirrors the campaign Watchdog. */
class RequestGuard
{
  public:
    RequestGuard(CancelToken victim, CancelToken server,
                 double seconds)
    {
        // A shutdown that already happened must win deterministically
        // — check synchronously before the simulation even starts,
        // not at the poller's first tick.
        if (server.requested()) {
            victim.request();
            return;
        }
        const bool deadline_armed = seconds > 0;
        const auto deadline = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(
                    deadline_armed ? seconds : 0));
        thread_ = std::thread([this, victim, server, deadline,
                               deadline_armed] {
            std::unique_lock<std::mutex> lock(mutex_);
            for (;;) {
                if (server.requested() ||
                    (deadline_armed &&
                     std::chrono::steady_clock::now() >= deadline)) {
                    victim.request();
                    return;
                }
                if (disarm_.wait_for(lock,
                                     std::chrono::milliseconds(50),
                                     [this] { return disarmed_; }))
                    return;
            }
        });
    }

    ~RequestGuard()
    {
        if (!thread_.joinable())
            return;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            disarmed_ = true;
        }
        disarm_.notify_all();
        thread_.join();
    }

    RequestGuard(const RequestGuard &) = delete;
    RequestGuard &operator=(const RequestGuard &) = delete;

  private:
    std::mutex mutex_;
    std::condition_variable disarm_;
    bool disarmed_ = false;
    std::thread thread_;
};

std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/** A positive integer knob; throws ConfigError naming the key. */
int
positiveKnob(const std::string &line, const char *key, int fallback)
{
    double v = 0;
    if (!jsonFindNumber(line, key, v))
        return fallback;
    const int n = static_cast<int>(v);
    if (n < 1 || static_cast<double>(n) != v)
        throw ConfigError(std::string("request \"") + key +
                          "\" expects a positive integer");
    return n;
}

bool
flagKnob(const std::string &line, const char *key, bool fallback)
{
    double v = 0;
    if (!jsonFindNumber(line, key, v))
        return fallback;
    return v != 0;
}

/** Run one characterization and serialize the result object through
 *  the canonical serializer. */
std::string
runCharacterization(const std::string &bench_name, Scale scale,
                    const std::string &scale_tok,
                    gpu::DeviceConfig cfg, const RequestContext &ctx)
{
    const CancelToken token = CancelToken::make();
    cfg.cancel = token;
    RequestGuard guard(token, ctx.cancel, ctx.timeoutSeconds);

    auto bench = Registry::instance().create(bench_name, scale);
    const BenchmarkProfile profile = runProfiled(*bench, cfg);
    const auto digest = bench->verify();
    return serializeResultBody(profile, digest ? &*digest : nullptr,
                               scale_tok, cfg);
}

RequestOutcome
errorOutcome(const char *taxonomy, const std::string &message)
{
    return {std::string("{\"status\":\"error\",\"taxonomy\":\"") +
                taxonomy + "\",\"error\":\"" + jsonEscape(message) +
                "\"}",
            true, taxonomy};
}

/** The {"op":"health"} readiness payload. */
std::string
healthResponse(const HealthSnapshot &h)
{
    const std::uint64_t lookups = h.cacheHits + h.cacheMisses;
    const double hit_rate = lookups == 0
        ? 0.0
        : static_cast<double>(h.cacheHits) /
            static_cast<double>(lookups);
    std::string out = "{\"status\":\"ok\",\"health\":{";
    out += std::string("\"draining\":") +
        (h.draining ? "true" : "false");
    out += ",\"inflight\":" + std::to_string(h.inflight);
    out += ",\"queued\":" + std::to_string(h.queued);
    out += ",\"max_inflight\":" + std::to_string(h.maxInflight);
    out += ",\"max_queue\":" + std::to_string(h.maxQueue);
    out += ",\"uptime_seconds\":" + fmtDouble(h.uptimeSeconds);
    out += ",\"requests\":" + std::to_string(h.requests);
    out += ",\"errors\":" + std::to_string(h.errors);
    out += ",\"overloaded\":" + std::to_string(h.overloaded);
    out += ",\"cache_size\":" + std::to_string(h.cacheSize);
    out += ",\"cache_hits\":" + std::to_string(h.cacheHits);
    out += ",\"cache_misses\":" + std::to_string(h.cacheMisses);
    out += ",\"hit_rate\":" + fmtDouble(hit_rate);
    out += "}}";
    return out;
}

const char *
sourceName(ResultCache::Source source)
{
    switch (source) {
      case ResultCache::Source::Computed:
        return "computed";
      case ResultCache::Source::Cache:
        return "cache";
      case ResultCache::Source::Coalesced:
        return "coalesced";
    }
    return "unknown";
}

} // namespace

std::string
serializeResultBody(const BenchmarkProfile &profile,
                    const VerifyResult *outputDigest,
                    const std::string &scaleTok,
                    const gpu::DeviceConfig &cfg)
{
    std::string out;
    out.reserve(384);
    out += "{\"benchmark\":\"" + jsonEscape(profile.name) + "\"";
    out += ",\"suite\":\"" + jsonEscape(profile.suite) + "\"";
    out += ",\"domain\":\"" + jsonEscape(profile.domain) + "\"";
    out += ",\"scale\":\"" + jsonEscape(scaleTok) + "\"";
    out += ",\"config_digest\":\"" + gpu::hex16(cfg.digest()) + "\"";
    out += ",\"kernels\":" + std::to_string(profile.kernelCount());
    out += ",\"launches\":" + std::to_string(profile.launches);
    out += ",\"total_seconds\":" + fmtDouble(profile.totalSeconds);
    out += ",\"total_warp_insts\":" +
        std::to_string(profile.totalWarpInsts);
    out += ",\"total_dram_sectors\":" +
        std::to_string(profile.totalDramSectors);
    out += ",\"min_coverage\":" +
        fmtDouble(profile.minSampleCoverage);
    out += ",\"aggregate_gips\":" + fmtDouble(profile.aggregateGips());
    out += ",\"aggregate_intensity\":" +
        fmtDouble(profile.aggregateIntensity());
    if (outputDigest != nullptr) {
        out += ",\"output_digest\":\"" + outputDigest->hex() + "\"";
        out += ",\"output_elements\":" +
            std::to_string(outputDigest->elements);
    } else {
        out += ",\"output_digest\":null";
    }
    out += "}";
    return out;
}

RequestOutcome
processRequest(const std::string &line, ResultCache &cache,
               const RequestContext &ctx)
{
    try {
        std::string cmd;
        if (jsonFindText(line, "cmd", cmd) ||
            jsonFindText(line, "op", cmd)) {
            if (cmd == "ping")
                return {"{\"status\":\"ok\",\"pong\":true}", false, {}};
            if (cmd == "health")
                return {healthResponse(ctx.health ? ctx.health()
                                                  : HealthSnapshot{}),
                        false, {}};
            throw ConfigError("unknown cmd '" + cmd + "'");
        }

        std::string bench;
        if (!jsonFindText(line, "bench", bench))
            throw ConfigError(
                "request needs \"bench\" (or \"cmd\":\"ping\")");
        if (!Registry::instance().contains(bench))
            throw ConfigError("unknown benchmark '" + bench + "'");

        std::string scale_tok = "small";
        jsonFindText(line, "scale", scale_tok);
        Scale scale;
        if (scale_tok == "tiny")
            scale = Scale::Tiny;
        else if (scale_tok == "small")
            scale = Scale::Small;
        else
            throw ConfigError("request \"scale\" must be "
                              "\"tiny\" or \"small\", got '" +
                              scale_tok + "'");

        // Model knobs: start from the reproduction experiments'
        // scaled configuration, optionally reset to the full device,
        // then apply the per-request geometry overrides. All of this
        // lands in DeviceConfig::digest(), i.e. in the cache key.
        gpu::DeviceConfig cfg = gpu::DeviceConfig::scaledExperiment();
        if (flagKnob(line, "full_caches", false))
            cfg = gpu::DeviceConfig{};
        cfg.l1SizeBytes =
            positiveKnob(line, "l1_kb", cfg.l1SizeBytes / 1024) * 1024;
        cfg.l2SizeBytes =
            positiveKnob(line, "l2_kb", cfg.l2SizeBytes / 1024) * 1024;
        cfg.numL2Slices =
            positiveKnob(line, "l2_slices", cfg.numL2Slices);
        cfg.maxSampledWarps =
            positiveKnob(line, "sampled_warps", cfg.maxSampledWarps);

        // Execution knobs: results are invariant to them (PRs 1/2/5),
        // so they deliberately do NOT enter the key — a fast-forward
        // request can be answered by a cached full-replay result.
        double threads = ctx.defaultHostThreads;
        jsonFindNumber(line, "threads", threads);
        if (threads < 0)
            throw ConfigError(
                "request \"threads\" expects a non-negative count");
        cfg.hostThreads = static_cast<int>(threads);
        cfg.fastForward = flagKnob(line, "fast_forward", false);

        const std::string key =
            bench + "/" + scale_tok + "/" + gpu::hex16(cfg.digest());
        const auto lookup = cache.getOrCompute(key, [&] {
            // Admission control sits INSIDE the compute callback, so
            // it prices exactly what is expensive: a fresh
            // simulation. Cache hits return before reaching here, and
            // coalesced waiters block on the first asker's condition
            // variable without consuming a slot — load shedding never
            // applies to work that is already paid for.
            if (ctx.admitSimulation) {
                std::string why;
                if (!ctx.admitSimulation(why))
                    throw OverloadedError(why);
            }
            struct Release
            {
                const RequestContext &ctx;
                ~Release()
                {
                    if (ctx.releaseSimulation)
                        ctx.releaseSimulation();
                }
            } release{ctx};
            return runCharacterization(bench, scale, scale_tok, cfg,
                                       ctx);
        });
        return {"{\"status\":\"ok\",\"key\":\"" + key +
                    "\",\"source\":\"" + sourceName(lookup.source) +
                    "\",\"result\":" + lookup.body + "}",
                false, {}};
    } catch (const OverloadedError &e) {
        return errorOutcome("overloaded", e.what());
    } catch (const TimeoutError &e) {
        return errorOutcome("timeout", e.what());
    } catch (const IntegrityError &e) {
        return errorOutcome("corrupt", e.what());
    } catch (const ConfigError &e) {
        return errorOutcome("config", e.what());
    } catch (const std::exception &e) {
        return errorOutcome("failed", e.what());
    }
}

// ---------------------------------------------------------------------------
// Server

namespace {

using Clock = std::chrono::steady_clock;

/** The "no deadline, wait forever" sentinel. A plain time_point with
 *  a sentinel (rather than std::optional) keeps the deadline state
 *  trivially trackable across the poll loops below. */
constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

/** poll(2) timeout in ms from @p now until @p deadline; never
 *  negative. -1 (wait forever) when no deadline applies; capped at
 *  60 s so a stuck peer is re-examined periodically. */
int
pollTimeoutMs(Clock::time_point deadline, Clock::time_point now)
{
    if (deadline == kNoDeadline)
        return -1;
    const auto left = std::chrono::duration_cast<
        std::chrono::milliseconds>(deadline - now);
    return left.count() <= 0
        ? 0
        : static_cast<int>(
              std::min<long long>(left.count(), 60 * 1000));
}

/**
 * Write the whole buffer to a (possibly non-blocking) socket,
 * handling partial writes, EINTR, and EAGAIN via poll(POLLOUT).
 * False on a broken connection, an expired deadline, or an injected
 * net-write fault.
 */
bool
sendAll(int fd, const std::string &data, Clock::time_point deadline,
        const FaultInjector &fault)
{
    if (fault.shouldFail("net-write"))
        return false;
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            const int timeout = pollTimeoutMs(deadline, Clock::now());
            if (timeout == 0)
                return false; // Write deadline expired.
            pollfd pfd{fd, POLLOUT, 0};
            const int rc = ::poll(&pfd, 1, timeout);
            if (rc < 0 && errno != EINTR)
                return false;
            if (rc == 0 &&
                pollTimeoutMs(deadline, Clock::now()) == 0)
                return false;
            continue;
        }
        return false;
    }
    return true;
}

} // namespace

Server::Server(ServeOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.cacheCapacity),
      admission_(opts_.maxInflight, opts_.maxQueue)
{
}

Server::~Server()
{
    stop();
}

void
Server::start()
{
    if (started_)
        throw ConfigError("server already started");

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        throw ConfigError(std::string("socket: ") +
                          std::strerror(errno));
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port =
        htons(static_cast<std::uint16_t>(opts_.port));
    if (::inet_pton(AF_INET, opts_.bindAddress.c_str(),
                    &addr.sin_addr) != 1) {
        ::close(listenFd_);
        listenFd_ = -1;
        throw ConfigError("bad bind address '" + opts_.bindAddress +
                          "'");
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(listenFd_, 64) != 0) {
        const std::string why = std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        throw ConfigError("cannot listen on " + opts_.bindAddress +
                          ":" + std::to_string(opts_.port) + ": " +
                          why);
    }

    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&bound),
                  &len);
    port_ = ntohs(bound.sin_port);

    if (::pipe(wakePipe_) != 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        throw ConfigError(std::string("pipe: ") +
                          std::strerror(errno));
    }

    started_ = true;
    started_at_ = Clock::now();
    acceptor_ = std::thread(&Server::acceptLoop, this);
}

void
Server::acceptLoop()
{
    for (;;) {
        pollfd fds[2] = {{listenFd_, POLLIN, 0},
                         {wakePipe_[0], POLLIN, 0}};
        const int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        if (fds[1].revents != 0)
            return; // stop()/drain() wrote the wake byte.
        if ((fds[0].revents & POLLIN) == 0)
            continue;
        const int client = ::accept(listenFd_, nullptr, nullptr);
        if (client < 0)
            continue;
        if (opts_.fault.shouldFail("net-accept")) {
            // Injected accept failure: the client sees an immediate
            // reset before its first byte.
            ::close(client);
            continue;
        }
        std::lock_guard<std::mutex> lock(mutex_);
        conns_.push_back(client);
        threads_.emplace_back(&Server::connectionLoop, this, client);
    }
}

void
Server::connectionLoop(int fd)
{
    // Non-blocking I/O so every read and write can honour a deadline:
    // a peer that stops reading or trickles bytes cannot park this
    // thread forever.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

    RequestContext ctx;
    ctx.cancel = cancel_;
    ctx.timeoutSeconds = opts_.timeoutSeconds;
    ctx.defaultHostThreads = opts_.defaultHostThreads;
    ctx.admitSimulation = [this](std::string &why) {
        switch (admission_.acquire()) {
          case AdmissionQueue::Outcome::Admitted:
            return true;
          case AdmissionQueue::Outcome::Closed:
            why = "server draining";
            return false;
          case AdmissionQueue::Outcome::Rejected:
          default:
            why = "admission queue full (" +
                std::to_string(admission_.maxInflight()) +
                " inflight, " +
                std::to_string(admission_.maxQueue()) + " queued)";
            return false;
        }
    };
    ctx.releaseSimulation = [this] { admission_.release(); };
    ctx.health = [this] { return health(); };

    const std::size_t max_line =
        opts_.maxLineBytes > 0 ? opts_.maxLineBytes : 1;

    // handleLine() returns false when the connection must close. The
    // activeLines_ span covers processing AND the response write, so
    // drain() only returns once accepted requests have their bytes on
    // the wire.
    const auto handleLine = [&](std::string line) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            return true;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++activeLines_;
        }
        const auto outcome = processRequest(line, cache_, ctx);
        auto wdeadline = kNoDeadline;
        if (opts_.ioDeadlineSeconds > 0)
            wdeadline = Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(
                        opts_.ioDeadlineSeconds));
        const bool sent = sendAll(fd, outcome.response + "\n",
                                  wdeadline, opts_.fault);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.requests;
            if (outcome.error)
                ++stats_.errors;
            if (outcome.taxonomy == "overloaded")
                ++stats_.overloaded;
            --activeLines_;
            if (activeLines_ == 0)
                linesIdle_.notify_all();
        }
        return sent;
    };

    std::string buffer;
    char chunk[4096];
    auto line_deadline = kNoDeadline;
    bool open = true;
    while (open) {
        // Drain complete lines already buffered.
        std::size_t nl;
        while (open &&
               (nl = buffer.find('\n')) != std::string::npos) {
            std::string line = buffer.substr(0, nl);
            buffer.erase(0, nl + 1);
            open = handleLine(std::move(line));
        }
        if (!open)
            break;
        line_deadline = kNoDeadline;
        if (buffer.empty()) {
            if (opts_.idleTimeoutSeconds > 0)
                line_deadline = Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            opts_.idleTimeoutSeconds));
        } else {
            if (buffer.size() > max_line) {
                // The frame boundary is unrecoverable: answer with a
                // taxonomy-correct error, then close.
                const auto outcome = errorOutcome(
                    "config",
                    "request line exceeds " +
                        std::to_string(max_line) + " bytes");
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    ++stats_.requests;
                    ++stats_.errors;
                }
                sendAll(fd, outcome.response + "\n", kNoDeadline,
                        opts_.fault);
                break;
            }
            // The slowloris guard: a started line must finish within
            // the I/O deadline however slowly its bytes trickle in.
            if (opts_.ioDeadlineSeconds > 0)
                line_deadline = Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            opts_.ioDeadlineSeconds));
        }

        // Wait for more bytes under the applicable deadline, then
        // read. Partial reads are the normal case, not an error.
        bool got_bytes = false;
        while (!got_bytes) {
            const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
            if (n > 0) {
                if (opts_.fault.shouldFail("net-read")) {
                    // Injected read failure: treat as a reset.
                    open = false;
                    break;
                }
                buffer.append(chunk, static_cast<std::size_t>(n));
                got_bytes = true;
                break;
            }
            if (n == 0) { // Peer closed cleanly.
                open = false;
                break;
            }
            if (errno == EINTR)
                continue;
            if (errno != EAGAIN && errno != EWOULDBLOCK) {
                open = false;
                break;
            }
            const int timeout =
                pollTimeoutMs(line_deadline, Clock::now());
            if (timeout == 0) { // Idle/slowloris deadline expired.
                open = false;
                break;
            }
            pollfd pfd{fd, POLLIN, 0};
            const int rc = ::poll(&pfd, 1, timeout);
            if (rc < 0 && errno != EINTR) {
                open = false;
                break;
            }
            if (rc == 0 &&
                pollTimeoutMs(line_deadline, Clock::now()) == 0) {
                open = false;
                break;
            }
        }
    }
    ::close(fd);
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = conns_.begin(); it != conns_.end(); ++it) {
        if (*it == fd) {
            conns_.erase(it);
            break;
        }
    }
}

void
Server::stopAccepting()
{
    if (acceptorJoined_.exchange(true))
        return;
    const char byte = 'x';
    [[maybe_unused]] const ssize_t w =
        ::write(wakePipe_[1], &byte, 1);
    acceptor_.join();
    ::close(listenFd_);
    listenFd_ = -1;
}

bool
Server::drain(double timeoutSeconds)
{
    if (!started_ || stopped_)
        return true;
    if (draining_.exchange(true))
        return true; // Already draining.

    // Refuse new simulations and new connections; queued and
    // in-flight work keeps running.
    admission_.close();
    stopAccepting();

    // Wait for every accepted request to finish — response bytes
    // written, not merely computed.
    bool drained;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        const auto idle = [&] { return activeLines_ == 0; };
        drained = timeoutSeconds > 0
            ? linesIdle_.wait_for(
                  lock,
                  std::chrono::duration<double>(timeoutSeconds),
                  idle)
            : idle();
    }

    // Whatever outlived the deadline is cancelled cooperatively at
    // its next launch boundary (those clients get timeout errors).
    if (!drained)
        cancel_.request();
    return drained;
}

void
Server::stop()
{
    if (!started_ || stopped_)
        return;
    stopped_ = true;

    // Cancel in-flight simulations (observed at the next launch
    // boundary) and stop accepting.
    cancel_.request();
    admission_.close();
    stopAccepting();

    // Unblock every connection thread's recv(); they close their own
    // fds on the way out.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const int fd : conns_)
            ::shutdown(fd, SHUT_RDWR);
    }
    // threads_ only grows under mutex_ from the acceptor, which has
    // exited — safe to walk without the lock (join would deadlock
    // against connectionLoop's final erase otherwise).
    for (auto &t : threads_)
        t.join();
    threads_.clear();

    ::close(wakePipe_[0]);
    ::close(wakePipe_[1]);
    wakePipe_[0] = wakePipe_[1] = -1;
}

ServeStats
Server::stats() const
{
    ServeStats out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out = stats_;
    }
    out.computed = cache_.misses();
    out.cacheHits = cache_.hits();
    out.coalesced = cache_.coalesced();
    out.evictions = cache_.evictions();
    return out;
}

HealthSnapshot
Server::health() const
{
    HealthSnapshot h;
    h.draining = draining_.load();
    h.inflight = admission_.inflight();
    h.queued = admission_.queued();
    h.maxInflight = admission_.maxInflight();
    h.maxQueue = admission_.maxQueue();
    h.uptimeSeconds = started_
        ? std::chrono::duration<double>(Clock::now() - started_at_)
              .count()
        : 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        h.requests = stats_.requests;
        h.errors = stats_.errors;
        h.overloaded = stats_.overloaded;
    }
    h.cacheHits = cache_.hits();
    h.cacheMisses = cache_.misses();
    h.cacheSize = cache_.size();
    return h;
}

bool
Server::draining() const
{
    return draining_.load();
}

} // namespace cactus::core
