#include "core/serve.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/error.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "core/benchmark.hh"
#include "core/harness.hh"
#include "core/verify.hh"
#include "gpu/digest.hh"

namespace cactus::core {

// ---------------------------------------------------------------------------
// ResultCache

ResultCache::ResultCache(std::size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1)
{
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lru_.size();
}

std::vector<std::string>
ResultCache::keysMruFirst() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> keys;
    keys.reserve(lru_.size());
    for (const auto &entry : lru_)
        keys.push_back(entry.key);
    return keys;
}

std::size_t
ResultCache::inflightWaiters(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = inflight_.find(key);
    return it == inflight_.end()
        ? 0
        : static_cast<std::size_t>(it->second->waiters);
}

ResultCache::Lookup
ResultCache::getOrCompute(const std::string &key,
                          const std::function<std::string()> &compute)
{
    std::unique_lock<std::mutex> lock(mutex_);

    if (const auto it = index_.find(key); it != index_.end()) {
        // Completed entry: refresh its recency and serve its bytes.
        lru_.splice(lru_.begin(), lru_, it->second);
        ++hits_;
        return {it->second->body, Source::Cache};
    }

    if (const auto it = inflight_.find(key); it != inflight_.end()) {
        // An identical request is already simulating: wait for its
        // result instead of spending a second simulation.
        auto fl = it->second;
        ++fl->waiters;
        ++coalesced_;
        fl->cv.wait(lock, [&] { return fl->done; });
        if (fl->error)
            std::rethrow_exception(fl->error);
        return {fl->body, Source::Coalesced};
    }

    // First asker: compute outside the lock so distinct keys overlap.
    auto fl = std::make_shared<Inflight>();
    inflight_.emplace(key, fl);
    ++misses_;
    lock.unlock();

    std::string body;
    std::exception_ptr error;
    try {
        body = compute();
    } catch (...) {
        error = std::current_exception();
    }

    lock.lock();
    if (!error) {
        while (lru_.size() >= capacity_) {
            index_.erase(lru_.back().key);
            lru_.pop_back();
            ++evictions_;
        }
        lru_.push_front(Entry{key, body});
        index_[key] = lru_.begin();
    }
    fl->done = true;
    fl->error = error;
    fl->body = body;
    inflight_.erase(key);
    fl->cv.notify_all();
    lock.unlock();

    if (error)
        std::rethrow_exception(error);
    return {std::move(body), Source::Computed};
}

std::optional<std::string>
ResultCache::peek(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
        ++misses_;
        return std::nullopt;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    return it->second->body;
}

void
ResultCache::insert(const std::string &key, std::string body)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = index_.find(key); it != index_.end()) {
        it->second->body = std::move(body);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    while (lru_.size() >= capacity_) {
        index_.erase(lru_.back().key);
        lru_.pop_back();
        ++evictions_;
    }
    lru_.push_front(Entry{key, std::move(body)});
    index_[key] = lru_.begin();
}

void
ResultCache::saveNdjson(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        throw ConfigError("cannot write cache file '" + path + "'");
    std::lock_guard<std::mutex> lock(mutex_);
    // LRU-first: loadNdjson() pushes each record to the front, so the
    // last line written (the MRU entry) ends up at the front again.
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it)
        out << "{\"key\":\"" << jsonEscape(it->key)
            << "\",\"body\":\"" << jsonEscape(it->body) << "\"}\n";
    if (!out.flush())
        throw ConfigError("short write to cache file '" + path + "'");
}

std::size_t
ResultCache::loadNdjson(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return 0; // Absent cache file: cold start, not an error.
    std::size_t loaded = 0, skipped = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::string key, body;
        if (!jsonFindText(line, "key", key) ||
            !jsonFindText(line, "body", body) || key.empty()) {
            ++skipped; // Torn trailing line, most likely.
            continue;
        }
        insert(key, std::move(body));
        ++loaded;
    }
    if (skipped > 0)
        warn("cache file '", path, "': skipped ", skipped,
             " malformed line", skipped == 1 ? "" : "s");
    return loaded;
}

// ---------------------------------------------------------------------------
// Request processing

namespace {

/** Arms a deadline + server-shutdown forwarder for one simulation:
 *  requests @p victim when the deadline passes or @p server is
 *  requested, polling the latter at a coarse period (shutdown
 *  latency, not correctness — the simulation itself still cancels at
 *  its next launch boundary). Mirrors the campaign Watchdog. */
class RequestGuard
{
  public:
    RequestGuard(CancelToken victim, CancelToken server,
                 double seconds)
    {
        // A shutdown that already happened must win deterministically
        // — check synchronously before the simulation even starts,
        // not at the poller's first tick.
        if (server.requested()) {
            victim.request();
            return;
        }
        const bool deadline_armed = seconds > 0;
        const auto deadline = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(
                    deadline_armed ? seconds : 0));
        thread_ = std::thread([this, victim, server, deadline,
                               deadline_armed] {
            std::unique_lock<std::mutex> lock(mutex_);
            for (;;) {
                if (server.requested() ||
                    (deadline_armed &&
                     std::chrono::steady_clock::now() >= deadline)) {
                    victim.request();
                    return;
                }
                if (disarm_.wait_for(lock,
                                     std::chrono::milliseconds(50),
                                     [this] { return disarmed_; }))
                    return;
            }
        });
    }

    ~RequestGuard()
    {
        if (!thread_.joinable())
            return;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            disarmed_ = true;
        }
        disarm_.notify_all();
        thread_.join();
    }

    RequestGuard(const RequestGuard &) = delete;
    RequestGuard &operator=(const RequestGuard &) = delete;

  private:
    std::mutex mutex_;
    std::condition_variable disarm_;
    bool disarmed_ = false;
    std::thread thread_;
};

std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/** A positive integer knob; throws ConfigError naming the key. */
int
positiveKnob(const std::string &line, const char *key, int fallback)
{
    double v = 0;
    if (!jsonFindNumber(line, key, v))
        return fallback;
    const int n = static_cast<int>(v);
    if (n < 1 || static_cast<double>(n) != v)
        throw ConfigError(std::string("request \"") + key +
                          "\" expects a positive integer");
    return n;
}

bool
flagKnob(const std::string &line, const char *key, bool fallback)
{
    double v = 0;
    if (!jsonFindNumber(line, key, v))
        return fallback;
    return v != 0;
}

/** Run one characterization and serialize the result object through
 *  the canonical serializer. */
std::string
runCharacterization(const std::string &bench_name, Scale scale,
                    const std::string &scale_tok,
                    gpu::DeviceConfig cfg, const RequestContext &ctx)
{
    const CancelToken token = CancelToken::make();
    cfg.cancel = token;
    RequestGuard guard(token, ctx.cancel, ctx.timeoutSeconds);

    auto bench = Registry::instance().create(bench_name, scale);
    const BenchmarkProfile profile = runProfiled(*bench, cfg);
    const auto digest = bench->verify();
    return serializeResultBody(profile, digest ? &*digest : nullptr,
                               scale_tok, cfg);
}

std::string
errorResponse(const char *taxonomy, const std::string &message)
{
    return std::string("{\"status\":\"error\",\"taxonomy\":\"") +
        taxonomy + "\",\"error\":\"" + jsonEscape(message) + "\"}";
}

const char *
sourceName(ResultCache::Source source)
{
    switch (source) {
      case ResultCache::Source::Computed:
        return "computed";
      case ResultCache::Source::Cache:
        return "cache";
      case ResultCache::Source::Coalesced:
        return "coalesced";
    }
    return "unknown";
}

} // namespace

std::string
serializeResultBody(const BenchmarkProfile &profile,
                    const VerifyResult *outputDigest,
                    const std::string &scaleTok,
                    const gpu::DeviceConfig &cfg)
{
    std::string out;
    out.reserve(384);
    out += "{\"benchmark\":\"" + jsonEscape(profile.name) + "\"";
    out += ",\"suite\":\"" + jsonEscape(profile.suite) + "\"";
    out += ",\"domain\":\"" + jsonEscape(profile.domain) + "\"";
    out += ",\"scale\":\"" + jsonEscape(scaleTok) + "\"";
    out += ",\"config_digest\":\"" + gpu::hex16(cfg.digest()) + "\"";
    out += ",\"kernels\":" + std::to_string(profile.kernelCount());
    out += ",\"launches\":" + std::to_string(profile.launches);
    out += ",\"total_seconds\":" + fmtDouble(profile.totalSeconds);
    out += ",\"total_warp_insts\":" +
        std::to_string(profile.totalWarpInsts);
    out += ",\"total_dram_sectors\":" +
        std::to_string(profile.totalDramSectors);
    out += ",\"min_coverage\":" +
        fmtDouble(profile.minSampleCoverage);
    out += ",\"aggregate_gips\":" + fmtDouble(profile.aggregateGips());
    out += ",\"aggregate_intensity\":" +
        fmtDouble(profile.aggregateIntensity());
    if (outputDigest != nullptr) {
        out += ",\"output_digest\":\"" + outputDigest->hex() + "\"";
        out += ",\"output_elements\":" +
            std::to_string(outputDigest->elements);
    } else {
        out += ",\"output_digest\":null";
    }
    out += "}";
    return out;
}

RequestOutcome
processRequest(const std::string &line, ResultCache &cache,
               const RequestContext &ctx)
{
    try {
        std::string cmd;
        if (jsonFindText(line, "cmd", cmd)) {
            if (cmd == "ping")
                return {"{\"status\":\"ok\",\"pong\":true}", false};
            throw ConfigError("unknown cmd '" + cmd + "'");
        }

        std::string bench;
        if (!jsonFindText(line, "bench", bench))
            throw ConfigError(
                "request needs \"bench\" (or \"cmd\":\"ping\")");
        if (!Registry::instance().contains(bench))
            throw ConfigError("unknown benchmark '" + bench + "'");

        std::string scale_tok = "small";
        jsonFindText(line, "scale", scale_tok);
        Scale scale;
        if (scale_tok == "tiny")
            scale = Scale::Tiny;
        else if (scale_tok == "small")
            scale = Scale::Small;
        else
            throw ConfigError("request \"scale\" must be "
                              "\"tiny\" or \"small\", got '" +
                              scale_tok + "'");

        // Model knobs: start from the reproduction experiments'
        // scaled configuration, optionally reset to the full device,
        // then apply the per-request geometry overrides. All of this
        // lands in DeviceConfig::digest(), i.e. in the cache key.
        gpu::DeviceConfig cfg = gpu::DeviceConfig::scaledExperiment();
        if (flagKnob(line, "full_caches", false))
            cfg = gpu::DeviceConfig{};
        cfg.l1SizeBytes =
            positiveKnob(line, "l1_kb", cfg.l1SizeBytes / 1024) * 1024;
        cfg.l2SizeBytes =
            positiveKnob(line, "l2_kb", cfg.l2SizeBytes / 1024) * 1024;
        cfg.numL2Slices =
            positiveKnob(line, "l2_slices", cfg.numL2Slices);
        cfg.maxSampledWarps =
            positiveKnob(line, "sampled_warps", cfg.maxSampledWarps);

        // Execution knobs: results are invariant to them (PRs 1/2/5),
        // so they deliberately do NOT enter the key — a fast-forward
        // request can be answered by a cached full-replay result.
        double threads = ctx.defaultHostThreads;
        jsonFindNumber(line, "threads", threads);
        if (threads < 0)
            throw ConfigError(
                "request \"threads\" expects a non-negative count");
        cfg.hostThreads = static_cast<int>(threads);
        cfg.fastForward = flagKnob(line, "fast_forward", false);

        const std::string key =
            bench + "/" + scale_tok + "/" + gpu::hex16(cfg.digest());
        const auto lookup = cache.getOrCompute(key, [&] {
            return runCharacterization(bench, scale, scale_tok, cfg,
                                       ctx);
        });
        return {"{\"status\":\"ok\",\"key\":\"" + key +
                    "\",\"source\":\"" + sourceName(lookup.source) +
                    "\",\"result\":" + lookup.body + "}",
                false};
    } catch (const TimeoutError &e) {
        return {errorResponse("timeout", e.what()), true};
    } catch (const IntegrityError &e) {
        return {errorResponse("corrupt", e.what()), true};
    } catch (const ConfigError &e) {
        return {errorResponse("config", e.what()), true};
    } catch (const std::exception &e) {
        return {errorResponse("failed", e.what()), true};
    }
}

// ---------------------------------------------------------------------------
// Server

namespace {

/** send() the whole buffer; false on a broken connection. */
bool
sendAll(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

Server::Server(ServeOptions opts)
    : opts_(std::move(opts)), cache_(opts_.cacheCapacity)
{
}

Server::~Server()
{
    stop();
}

void
Server::start()
{
    if (started_)
        throw ConfigError("server already started");

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        throw ConfigError(std::string("socket: ") +
                          std::strerror(errno));
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port =
        htons(static_cast<std::uint16_t>(opts_.port));
    if (::inet_pton(AF_INET, opts_.bindAddress.c_str(),
                    &addr.sin_addr) != 1) {
        ::close(listenFd_);
        listenFd_ = -1;
        throw ConfigError("bad bind address '" + opts_.bindAddress +
                          "'");
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(listenFd_, 64) != 0) {
        const std::string why = std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        throw ConfigError("cannot listen on " + opts_.bindAddress +
                          ":" + std::to_string(opts_.port) + ": " +
                          why);
    }

    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&bound),
                  &len);
    port_ = ntohs(bound.sin_port);

    if (::pipe(wakePipe_) != 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        throw ConfigError(std::string("pipe: ") +
                          std::strerror(errno));
    }

    started_ = true;
    acceptor_ = std::thread(&Server::acceptLoop, this);
}

void
Server::acceptLoop()
{
    for (;;) {
        pollfd fds[2] = {{listenFd_, POLLIN, 0},
                         {wakePipe_[0], POLLIN, 0}};
        const int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        if (fds[1].revents != 0)
            return; // stop() wrote the wake byte.
        if ((fds[0].revents & POLLIN) == 0)
            continue;
        const int client = ::accept(listenFd_, nullptr, nullptr);
        if (client < 0)
            continue;
        std::lock_guard<std::mutex> lock(mutex_);
        conns_.push_back(client);
        threads_.emplace_back(&Server::connectionLoop, this, client);
    }
}

void
Server::connectionLoop(int fd)
{
    RequestContext ctx;
    ctx.cancel = cancel_;
    ctx.timeoutSeconds = opts_.timeoutSeconds;
    ctx.defaultHostThreads = opts_.defaultHostThreads;

    std::string buffer;
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            break;
        }
        buffer.append(chunk, static_cast<std::size_t>(n));

        std::size_t nl;
        bool closed = false;
        while ((nl = buffer.find('\n')) != std::string::npos) {
            std::string line = buffer.substr(0, nl);
            buffer.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.empty())
                continue;
            const auto outcome = processRequest(line, cache_, ctx);
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.requests;
                if (outcome.error)
                    ++stats_.errors;
            }
            if (!sendAll(fd, outcome.response + "\n")) {
                closed = true;
                break;
            }
        }
        if (closed)
            break;
    }
    ::close(fd);
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = conns_.begin(); it != conns_.end(); ++it) {
        if (*it == fd) {
            conns_.erase(it);
            break;
        }
    }
}

void
Server::stop()
{
    if (!started_ || stopped_)
        return;
    stopped_ = true;

    // Cancel in-flight simulations (observed at the next launch
    // boundary) and wake the acceptor.
    cancel_.request();
    const char byte = 'x';
    [[maybe_unused]] const ssize_t w =
        ::write(wakePipe_[1], &byte, 1);
    acceptor_.join();
    ::close(listenFd_);
    listenFd_ = -1;

    // Unblock every connection thread's recv(); they close their own
    // fds on the way out.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const int fd : conns_)
            ::shutdown(fd, SHUT_RDWR);
    }
    // threads_ only grows under mutex_ from the acceptor, which has
    // exited — safe to walk without the lock (join would deadlock
    // against connectionLoop's final erase otherwise).
    for (auto &t : threads_)
        t.join();
    threads_.clear();

    ::close(wakePipe_[0]);
    ::close(wakePipe_[1]);
    wakePipe_[0] = wakePipe_[1] = -1;
}

ServeStats
Server::stats() const
{
    ServeStats out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out = stats_;
    }
    out.computed = cache_.misses();
    out.cacheHits = cache_.hits();
    out.coalesced = cache_.coalesced();
    out.evictions = cache_.evictions();
    return out;
}

} // namespace cactus::core
