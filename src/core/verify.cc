#include "core/verify.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hh"
#include "core/benchmark.hh"

namespace cactus::core {

std::string
VerifyResult::hex() const
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(digest));
    return buf;
}

std::string
scaleToken(Scale scale)
{
    switch (scale) {
      case Scale::Tiny:
        return "tiny";
      case Scale::Small:
        return "small";
    }
    return "unknown";
}

GoldenTable
GoldenTable::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw ConfigError("cannot open golden table '" + path + "'");
    GoldenTable table;
    std::string line;
    long line_number = 0;
    while (std::getline(in, line)) {
        ++line_number;
        const auto start = line.find_first_not_of(" \t");
        if (start == std::string::npos || line[start] == '#')
            continue;
        std::istringstream fields(line);
        std::string name, scale, digest;
        std::uint64_t elements = 0;
        if (!(fields >> name >> scale >> digest >> elements) ||
            digest.size() != 16 ||
            digest.find_first_not_of("0123456789abcdef") !=
                std::string::npos)
            throw ConfigError("golden table '" + path + "' line " +
                              std::to_string(line_number) +
                              ": expected 'name scale digest16 "
                              "elements', got '" + line + "'");
        VerifyResult result;
        result.digest = std::stoull(digest, nullptr, 16);
        result.elements = elements;
        table.entries_[{name, scale}] = result;
    }
    return table;
}

GoldenTable
GoldenTable::loadOrEmpty(const std::string &path)
{
    if (std::ifstream probe(path); !probe)
        return GoldenTable{};
    return load(path);
}

std::optional<VerifyResult>
GoldenTable::find(const std::string &name,
                  const std::string &scale) const
{
    const auto it = entries_.find({name, scale});
    if (it == entries_.end())
        return std::nullopt;
    return it->second;
}

void
GoldenTable::set(const std::string &name, const std::string &scale,
                 const VerifyResult &result)
{
    entries_[{name, scale}] = result;
}

void
GoldenTable::save(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        throw ConfigError("cannot write golden table '" + path + "'");
    out << "# Golden output digests (see src/core/verify.hh).\n"
        << "# name scale digest elements\n";
    for (const auto &[key, result] : entries_)
        out << key.first << ' ' << key.second << ' ' << result.hex()
            << ' ' << result.elements << '\n';
    if (!out.flush())
        throw ConfigError("failed writing golden table '" + path +
                          "'");
}

} // namespace cactus::core
