#include "core/harness.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace cactus::core {

int
BenchmarkProfile::kernelsForTimeFraction(double fraction) const
{
    if (totalSeconds <= 0)
        return 0;
    double cum = 0;
    int count = 0;
    for (const auto &kp : kernels) {
        cum += kp.seconds;
        ++count;
        if (cum / totalSeconds >= fraction)
            return count;
    }
    return count;
}

std::vector<double>
BenchmarkProfile::cumulativeTimeShares() const
{
    std::vector<double> shares;
    shares.reserve(kernels.size());
    double cum = 0;
    for (const auto &kp : kernels) {
        cum += kp.seconds;
        shares.push_back(totalSeconds > 0 ? cum / totalSeconds : 0.0);
    }
    return shares;
}

double
BenchmarkProfile::aggregateGips() const
{
    return totalSeconds > 0
        ? static_cast<double>(totalWarpInsts) / totalSeconds / 1e9
        : 0.0;
}

double
BenchmarkProfile::aggregateIntensity() const
{
    return totalDramSectors > 0
        ? static_cast<double>(totalWarpInsts) / totalDramSectors
        : 1e6;
}

double
BenchmarkProfile::weightedAvgWarpInstsPerKernel() const
{
    return kernels.empty()
        ? 0.0
        : static_cast<double>(totalWarpInsts) / kernels.size();
}

BenchmarkProfile
profileFromDevice(const Benchmark &bench, const gpu::Device &dev,
                  const gpu::DeviceConfig &cfg)
{
    BenchmarkProfile profile;
    profile.name = bench.name();
    profile.suite = bench.suite();
    profile.domain = bench.domain();
    profile.config = cfg;
    profile.kernels = gpu::aggregateLaunches(dev.launches(), cfg);
    profile.launches = dev.launches().size();
    for (const auto &kp : profile.kernels) {
        profile.totalSeconds += kp.seconds;
        profile.totalWarpInsts += kp.warpInsts;
        profile.totalDramSectors +=
            kp.dramReadSectors + kp.dramWriteSectors;
    }
    for (const auto &launch : dev.launches())
        profile.minSampleCoverage =
            std::min(profile.minSampleCoverage, launch.sampleCoverage);
    return profile;
}

BenchmarkProfile
runProfiled(Benchmark &bench, const gpu::DeviceConfig &cfg)
{
    gpu::Device dev(cfg);
    bench.run(dev);
    return profileFromDevice(bench, dev, cfg);
}

BenchmarkProfile
runProfiled(const std::string &name, Scale scale,
            const gpu::DeviceConfig &cfg)
{
    auto bench = Registry::instance().create(name, scale);
    return runProfiled(*bench, cfg);
}

std::vector<KernelObservation>
dominantKernelObservations(const std::vector<BenchmarkProfile> &profiles,
                           double time_fraction)
{
    std::vector<KernelObservation> observations;
    for (const auto &profile : profiles) {
        const int dominant =
            profile.kernelsForTimeFraction(time_fraction);
        for (int k = 0; k < dominant; ++k) {
            const auto &kp = profile.kernels[k];
            KernelObservation obs;
            obs.benchmark = profile.name;
            obs.suite = profile.suite;
            obs.kernel = kp.name;
            obs.metrics = kp.metrics;
            obs.timeShare = profile.totalSeconds > 0
                ? kp.seconds / profile.totalSeconds : 0.0;
            observations.push_back(std::move(obs));
        }
    }
    return observations;
}

analysis::MixedData
buildMixedData(const std::vector<KernelObservation> &observations,
               const gpu::DeviceConfig &cfg)
{
    const analysis::Roofline roof(cfg);
    const int n = static_cast<int>(observations.size());
    const int p = gpu::KernelMetrics::kNumColumns;

    analysis::MixedData data;
    data.quantitative = analysis::Matrix(n, p);
    for (int j = 0; j < p; ++j)
        data.quantNames.push_back(gpu::KernelMetrics::columnName(j));

    std::vector<int> intensity_label(n), bound_label(n);
    for (int i = 0; i < n; ++i) {
        const auto row = observations[i].metrics.toVector();
        for (int j = 0; j < p; ++j) {
            double v = row[j];
            // Compress the two unbounded columns to log scale so a
            // single extreme kernel does not dominate the factors.
            if (std::string(gpu::KernelMetrics::columnName(j)) ==
                    "dram_read_bps" ||
                std::string(gpu::KernelMetrics::columnName(j)) ==
                    "inst_intensity")
                v = std::log10(std::max(v, 1e-3));
            data.quantitative(i, j) = v;
        }
        intensity_label[i] =
            roof.classifyIntensity(observations[i].metrics
                                       .instIntensity) ==
                analysis::IntensityClass::ComputeIntensive ? 1 : 0;
        bound_label[i] =
            roof.classifyBound(observations[i].metrics.gips) ==
                analysis::BoundClass::BandwidthBound ? 1 : 0;
    }
    data.qualitative.push_back(std::move(intensity_label));
    data.qualNames.push_back("intensity_class");
    data.qualitative.push_back(std::move(bound_label));
    data.qualNames.push_back("bound_class");
    return data;
}

} // namespace cactus::core
