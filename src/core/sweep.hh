/**
 * @file
 * Design-space sweeps: expand `--sweep key=v1,v2,...` axes into a
 * deterministic cartesian matrix of device configurations, identify
 * each (benchmark, scale, config) task by the same content address
 * the serve layer caches on, partition the matrix across shards, and
 * fold shard checkpoints back into one canonical report.
 *
 * Task identity is
 *
 *   task = <bench> "/" <scale> "/" hex16(DeviceConfig::digest())
 *
 * — exactly the ResultCache key, so a sweep point, a serve request,
 * and a checkpoint record for the same characterization all share one
 * name. Sweeping an execution knob (threads, fast_forward) therefore
 * yields points with *equal* task ids: results are provably invariant
 * to those knobs, and the first point to complete satisfies the rest
 * (the campaign skips them; the merge dedups them).
 *
 * The merge is deterministic by construction: records are re-read
 * from any number of shard checkpoints or coordination logs, deduped
 * by task id, and emitted sorted by task id — every record was
 * written by the same canonical serializer, so the merged bytes are
 * identical whatever the shard count or completion order. Two records
 * with the same task id (hence the same config digest) but different
 * bytes mean a determinism violation; the merge flags the task as
 * CORRUPT and excludes it from the report.
 */

#ifndef CACTUS_CORE_SWEEP_HH
#define CACTUS_CORE_SWEEP_HH

#include <string>
#include <utility>
#include <vector>

#include "gpu/config.hh"

namespace cactus::core {

/** One swept knob and its value list, as parsed from --sweep. */
struct SweepAxis
{
    std::string key;
    std::vector<std::string> values;
};

/** The swept keys this engine understands. Model knobs enter the
 *  config digest (distinct task per value); execution knobs do not
 *  (all values share one task). */
const std::vector<std::string> &sweepKeys();

/**
 * Parse "key=v1,v2,..." into an axis. ConfigError on an unknown key,
 * a missing '=', or an empty value list.
 */
SweepAxis parseSweepAxis(const std::string &spec);

/** One point of the expanded matrix. */
struct SweepPoint
{
    gpu::DeviceConfig config;
    std::string label; ///< "l2_kb=512,threads=4"; "" for no axes.
};

/**
 * Expand the cartesian product of @p axes over @p base. Axis order is
 * preserved (the first axis varies slowest), so the matrix order — and
 * everything downstream: shard assignment, claim order, labels — is a
 * pure function of the command line. No axes yields the single base
 * point. ConfigError on a value that does not parse for its key.
 */
std::vector<SweepPoint> expandSweep(const gpu::DeviceConfig &base,
                                    const std::vector<SweepAxis> &axes);

/** The content-addressed task id shared with the serve cache. */
std::string sweepTaskId(const std::string &bench,
                        const std::string &scaleTok,
                        const gpu::DeviceConfig &config);

/**
 * Static partitioning: does @p taskId belong to shard @p shardId of
 * @p shards? FNV-1a over the task id bytes modulo the shard count, so
 * every worker computes the same partition with no coordination.
 */
bool taskInShard(const std::string &taskId, int shards, int shardId);

/** Outcome of one merge. */
struct MergeResult
{
    std::size_t records = 0;    ///< Completed records read.
    std::size_t tasks = 0;      ///< Distinct task ids among them.
    std::size_t duplicates = 0; ///< Repeat records whose result body
                                ///< is byte-identical to one already
                                ///< seen for the task.
    std::size_t legacy = 0;     ///< Pre-task-id records (skipped).
    std::size_t ignored = 0;    ///< Coordination records (leases,
                                ///< beats, releases) and malformed
                                ///< lines.

    /** Inputs that were missing, unreadable, or zero-length — a
     *  partially crashed fleet's shards. Warned and skipped, never
     *  fatal (the caller decides whether that fails the merge). */
    std::size_t missingInputs = 0;

    /** Completed records carrying a fence below the task's highest —
     *  a zombie worker's abandoned result, discarded in favour of the
     *  winning fence. Only counted for clean (non-corrupt) tasks. */
    std::size_t zombieDuplicates = 0;

    /** Tasks whose winning completion ran under a stolen lease
     *  (fence > 0), each attributed to exactly one winning fence. */
    std::vector<std::pair<std::string, long>> recoveredTasks;

    /** Task ids whose records disagree — a determinism violation. */
    std::vector<std::string> corruptTasks;

    bool clean() const { return corruptTasks.empty(); }
};

/**
 * Fold the completed records of @p inputs (shard checkpoints and/or
 * coordination logs) into @p outPath: deduped by task id and result
 * body, sorted by task id, one canonical record per line. Done
 * records from a coordination log carry fence/worker attribution;
 * the merge strips it and re-emits the canonical checkpoint record,
 * so the merged bytes are identical whatever mix of checkpoints and
 * coordination logs produced them — and identical to a serial run.
 * Two records for one task id with *different* result bodies are a
 * determinism violation whatever their fences; the task is flagged
 * CORRUPT and excluded. Missing, unreadable, or empty inputs are
 * warned about and counted (MergeResult::missingInputs), never
 * fatal, so a partially crashed fleet still merges. ConfigError only
 * when the output cannot be written.
 */
MergeResult mergeCheckpoints(const std::vector<std::string> &inputs,
                             const std::string &outPath);

} // namespace cactus::core

#endif // CACTUS_CORE_SWEEP_HH
