/**
 * @file
 * Golden functional verification. The determinism PRs prove a
 * parallel run computes the same answer as a serial one; nothing yet
 * proves either answer is *right*. A benchmark records its output
 * buffers into an OutputDigest — an order-independent FNV-1a checksum
 * over (element index, canonical value bits) pairs — and campaigns
 * compare the digest against goldens recorded under tests/goldens/.
 * A mismatch is an IntegrityError (campaign outcome CORRUPT): the run
 * completed, but the answer is wrong.
 *
 * The digest is order-independent (per-element hashes combine by
 * wrapping addition) so recording the same logical output in any
 * order — or from any number of buffers, each indexed from its own
 * base — produces the same value. Floating-point values are
 * canonicalized (-0 folds to +0; non-finite values hash as a fixed
 * pattern and are counted separately) so the digest is a function of
 * the mathematical output, not its encoding.
 */

#ifndef CACTUS_CORE_VERIFY_HH
#define CACTUS_CORE_VERIFY_HH

#include <bit>
#include <cmath>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cactus::core {

enum class Scale; // core/benchmark.hh

/** Summary of one benchmark's recorded functional output. */
struct VerifyResult
{
    std::uint64_t digest = 0;    ///< Order-independent FNV-1a sum.
    std::uint64_t elements = 0;  ///< Values recorded.
    std::uint64_t nonFinite = 0; ///< NaN/Inf values among them.

    /** Digest as the fixed-width hex token stored in golden tables. */
    std::string hex() const;
};

/** Accumulator building a VerifyResult from output buffers. */
class OutputDigest
{
  public:
    /** Record one value at @p index within the logical output. */
    void
    add(std::uint64_t index, double value)
    {
        std::uint64_t bits;
        if (!std::isfinite(value)) {
            ++nonFinite_;
            bits = 0x7ff8000000000000ull; // Canonical non-finite.
        } else {
            if (value == 0.0)
                value = 0.0; // Fold -0 into +0.
            bits = std::bit_cast<std::uint64_t>(value);
        }
        addBits(index, bits);
    }

    void
    add(std::uint64_t index, std::int64_t value)
    {
        addBits(index, static_cast<std::uint64_t>(value));
    }

    /** Record a whole buffer, elements indexed from @p base. */
    template <typename T>
    void
    addBuffer(const std::vector<T> &values, std::uint64_t base = 0)
    {
        for (std::size_t i = 0; i < values.size(); ++i) {
            if constexpr (std::is_floating_point_v<T>)
                add(base + i, static_cast<double>(values[i]));
            else
                add(base + i, static_cast<std::int64_t>(values[i]));
        }
    }

    VerifyResult
    result() const
    {
        return VerifyResult{sum_, elements_, nonFinite_};
    }

    bool empty() const { return elements_ == 0; }

  private:
    void
    addBits(std::uint64_t index, std::uint64_t bits)
    {
        // FNV-1a over the 16 bytes (index LE, bits LE); per-element
        // hashes combine by wrapping addition, so the digest does not
        // depend on recording order.
        std::uint64_t h = 0xcbf29ce484222325ull;
        for (int byte = 0; byte < 8; ++byte) {
            h ^= (index >> (8 * byte)) & 0xff;
            h *= 0x100000001b3ull;
        }
        for (int byte = 0; byte < 8; ++byte) {
            h ^= (bits >> (8 * byte)) & 0xff;
            h *= 0x100000001b3ull;
        }
        sum_ += h;
        ++elements_;
    }

    std::uint64_t sum_ = 0;
    std::uint64_t elements_ = 0;
    std::uint64_t nonFinite_ = 0;
};

/**
 * The golden digests of a benchmark scale set, persisted as a plain
 * text table (one "name scale digest elements" line per golden, '#'
 * comments) under tests/goldens/.
 */
class GoldenTable
{
  public:
    /** Parse @p path; ConfigError when unreadable or malformed. */
    static GoldenTable load(const std::string &path);

    /** Like load(), but an absent file yields an empty table (the
     *  starting state of --update-goldens). */
    static GoldenTable loadOrEmpty(const std::string &path);

    /** The golden for (@p name, @p scale), if one is recorded. */
    std::optional<VerifyResult> find(const std::string &name,
                                     const std::string &scale) const;

    void set(const std::string &name, const std::string &scale,
             const VerifyResult &result);

    /** Write the table back, sorted by (name, scale) for stable
     *  diffs; ConfigError when the file cannot be written. */
    void save(const std::string &path) const;

    std::size_t size() const { return entries_.size(); }

  private:
    std::map<std::pair<std::string, std::string>, VerifyResult>
        entries_;
};

/** The canonical token for a Scale in golden tables ("tiny"/"small"). */
std::string scaleToken(Scale scale);

} // namespace cactus::core

#endif // CACTUS_CORE_VERIFY_HH
