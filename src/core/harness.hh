/**
 * @file
 * The profiling harness: run a benchmark on a fresh simulated device,
 * aggregate its launches into per-kernel profiles, and expose the
 * quantities the paper's analyses consume — dominant-kernel sets
 * (r_i x t_i ranking with the 70% cumulative-time rule), cumulative
 * time distributions, aggregate roofline coordinates, and FAMD-ready
 * mixed observations per kernel.
 */

#ifndef CACTUS_CORE_HARNESS_HH
#define CACTUS_CORE_HARNESS_HH

#include <string>
#include <vector>

#include "analysis/famd.hh"
#include "analysis/roofline.hh"
#include "core/benchmark.hh"
#include "gpu/profiler.hh"

namespace cactus::core {

/** Full profile of one benchmark run. */
struct BenchmarkProfile
{
    std::string name;
    std::string suite;
    std::string domain;
    gpu::DeviceConfig config;

    /** Per-kernel profiles, sorted by descending total GPU time. */
    std::vector<gpu::KernelProfile> kernels;

    double totalSeconds = 0;
    std::uint64_t totalWarpInsts = 0;
    std::uint64_t totalDramSectors = 0;
    std::uint64_t launches = 0;

    /**
     * The smallest per-launch sampled-warp coverage across the run
     * (1.0 when every launch replayed all of its warps, or when the
     * run had no launches). Low coverage means the published counters
     * lean heavily on extrapolation; campaigns can reject runs below
     * a --min-coverage threshold as untrustworthy.
     */
    double minSampleCoverage = 1.0;

    /** Number of distinct kernels executed (100% of time). */
    int kernelCount() const { return static_cast<int>(kernels.size()); }

    /**
     * Smallest number of dominant kernels covering at least
     * @p fraction of total GPU time (the paper's 70% rule).
     */
    int kernelsForTimeFraction(double fraction) const;

    /** Cumulative time share after the k most dominant kernels. */
    std::vector<double> cumulativeTimeShares() const;

    /** Application-aggregate GIPS over all kernels. */
    double aggregateGips() const;

    /** Application-aggregate instruction intensity. */
    double aggregateIntensity() const;

    /** Average warp instructions per kernel, weighted as in Table I
     *  (total instructions divided by kernel count). */
    double weightedAvgWarpInstsPerKernel() const;
};

/**
 * Aggregate the launches a benchmark has already executed on @p dev
 * into a profile. Shared by runProfiled() and drivers that own the
 * device (e.g. to export its raw trace afterwards).
 */
BenchmarkProfile profileFromDevice(const Benchmark &bench,
                                   const gpu::Device &dev,
                                   const gpu::DeviceConfig &cfg);

/** Run one benchmark under the profiler on a fresh device. */
BenchmarkProfile runProfiled(Benchmark &bench,
                             const gpu::DeviceConfig &cfg =
                                 gpu::DeviceConfig{});

/** Create-by-name convenience wrapper. */
BenchmarkProfile runProfiled(const std::string &name, Scale scale,
                             const gpu::DeviceConfig &cfg =
                                 gpu::DeviceConfig{});

/** One FAMD observation: a dominant kernel with its labels. */
struct KernelObservation
{
    std::string benchmark;
    std::string suite;
    std::string kernel;
    gpu::KernelMetrics metrics;
    double timeShare = 0;
};

/**
 * Collect the dominant kernels (covering @p time_fraction of each
 * benchmark's GPU time) of every profile as analysis observations.
 */
std::vector<KernelObservation>
dominantKernelObservations(const std::vector<BenchmarkProfile> &profiles,
                           double time_fraction = 0.7);

/**
 * Build the FAMD input from kernel observations: the Table IV metric
 * columns as quantitative variables plus the two roofline labels
 * (memory/compute-intensive and latency/bandwidth-bound) as
 * qualitative variables.
 */
analysis::MixedData
buildMixedData(const std::vector<KernelObservation> &observations,
               const gpu::DeviceConfig &cfg);

} // namespace cactus::core

#endif // CACTUS_CORE_HARNESS_HH
