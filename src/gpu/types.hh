/**
 * @file
 * Fundamental types shared across the GPU-compute simulator: launch
 * geometry, instruction classes, memory access records, and per-lane
 * instruction counters.
 */

#ifndef CACTUS_GPU_TYPES_HH
#define CACTUS_GPU_TYPES_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace cactus::gpu {

/**
 * A scalar (or small aggregate) living in simulated device global
 * memory. Kernel-visible reduction targets — energy accumulators,
 * frontier cursors, convergence flags — must not live on the host
 * stack: a traced stack address shifts with ASLR and call depth, so
 * its cache-line placement (line sharing, set index) would leak into
 * the traffic statistics run to run. Heap storage is served by the
 * canonical-address arena instead (see common/host_alloc.hh), which
 * gives the value a stable, 128-byte-aligned modeled placement —
 * exactly the role of a small cudaMalloc'd buffer in real CUDA code.
 */
template <typename T>
class DeviceScalar
{
  public:
    explicit DeviceScalar(T v = T{}) : p_(new T(std::move(v))) {}

    /** Device address of the value, for ThreadCtx accesses. */
    T *get() { return p_.get(); }

    T &operator*() { return *p_; }
    const T &operator*() const { return *p_; }
    T *operator->() { return p_.get(); }
    const T *operator->() const { return p_.get(); }

  private:
    std::unique_ptr<T> p_;
};

/** CUDA-style three-dimensional launch geometry. */
struct Dim3
{
    unsigned x = 1;
    unsigned y = 1;
    unsigned z = 1;

    Dim3() = default;
    Dim3(unsigned xx, unsigned yy = 1, unsigned zz = 1)
        : x(xx), y(yy), z(zz)
    {
    }

    std::uint64_t
    count() const
    {
        return static_cast<std::uint64_t>(x) * y * z;
    }

    /** True when any dimension is zero, i.e. the geometry spans no
     *  threads (or blocks) at all. Such launches are invalid. */
    bool
    empty() const
    {
        return x == 0 || y == 0 || z == 0;
    }
};

/**
 * Dynamic instruction classes tracked per lane. The taxonomy mirrors the
 * pipelines on an Ampere SM that the paper's Table IV metrics reference:
 * FP32 (SP pipe), integer (ALU pipe), special function unit, load/store,
 * shared-memory access, atomics, branches and barriers.
 */
enum class OpClass : int
{
    FP32 = 0,
    INT,
    SFU,
    LOAD,
    STORE,
    SHARED,
    ATOMIC,
    BRANCH,
    SYNC,
    NumClasses
};

constexpr int kNumOpClasses = static_cast<int>(OpClass::NumClasses);

/** Human-readable name for an instruction class. */
const char *opClassName(OpClass cls);

/** Kind of memory reference recorded in a sampled warp trace. */
enum class AccessKind : std::uint8_t
{
    Load = 0,
    Store,
    Atomic,
    /** Evict-first streaming load (__ldcs): bypasses cache residency
     *  so one-shot streams do not thrash reused data. */
    StreamLoad
};

/** One per-lane memory reference recorded in a sampled warp. */
struct MemAccess
{
    std::uint64_t addr = 0;
    std::uint32_t size = 0;
    AccessKind kind = AccessKind::Load;
    /** Recording ordinal: offset of this access in the flat per-warp
     *  lane arena at the time it was recorded (lane grouping itself
     *  comes from LaneTraceArena's per-lane spans). Diagnostic only. */
    std::uint32_t index = 0;
};

/** Per-lane dynamic instruction counters. */
struct LaneCounters
{
    std::array<std::uint64_t, kNumOpClasses> counts{};

    void
    add(OpClass cls, std::uint64_t n)
    {
        counts[static_cast<int>(cls)] += n;
    }

    std::uint64_t
    get(OpClass cls) const
    {
        return counts[static_cast<int>(cls)];
    }

    std::uint64_t
    total() const
    {
        std::uint64_t t = 0;
        for (auto c : counts)
            t += c;
        return t;
    }
};

/**
 * Warp-level instruction counts. A warp instruction bundles up to 32
 * thread instructions; under divergence the warp executes the union of
 * the lane paths, which we approximate by the per-class maximum across
 * lanes.
 */
struct WarpCounts
{
    std::array<std::uint64_t, kNumOpClasses> warpInsts{};
    /** Sum of thread-level instructions, for execution-efficiency. */
    std::uint64_t threadInsts = 0;
    /** Number of lanes that executed at least one instruction. */
    std::uint32_t activeLanes = 0;

    std::uint64_t
    get(OpClass cls) const
    {
        return warpInsts[static_cast<int>(cls)];
    }

    std::uint64_t
    total() const
    {
        std::uint64_t t = 0;
        for (auto c : warpInsts)
            t += c;
        return t;
    }

    std::uint64_t
    memInsts() const
    {
        return get(OpClass::LOAD) + get(OpClass::STORE) +
               get(OpClass::ATOMIC);
    }

    void
    accumulate(const WarpCounts &other)
    {
        for (int i = 0; i < kNumOpClasses; ++i)
            warpInsts[i] += other.warpInsts[i];
        threadInsts += other.threadInsts;
        activeLanes += other.activeLanes;
    }
};

/**
 * Static metadata describing a kernel, supplied at launch time. Mirrors
 * what a real runtime knows from compilation: resource usage that bounds
 * occupancy, plus a stable name used by the profiler to aggregate
 * invocations.
 */
struct KernelDesc
{
    std::string name;
    /** Architectural registers per thread; bounds occupancy. */
    int regsPerThread = 32;
    /** Static shared memory per thread block in bytes. */
    int sharedBytesPerBlock = 0;
    /**
     * True for kernels whose functional behavior depends on the
     * sequential block order of the legacy engine — cross-block
     * read-after-write within one launch, or atomic return values used
     * as store indices. The device always executes such launches on
     * the serial path so their results (and hence their LaunchStats)
     * stay reproducible; see DESIGN.md.
     */
    bool serialOrdered = false;

    KernelDesc() = default;
    KernelDesc(std::string n, int regs = 32, int smem = 0)
        : name(std::move(n)), regsPerThread(regs), sharedBytesPerBlock(smem)
    {
    }

    /** Mark this kernel serial-ordered (chainable at launch sites). */
    KernelDesc &
    serial()
    {
        serialOrdered = true;
        return *this;
    }
};

} // namespace cactus::gpu

#endif // CACTUS_GPU_TYPES_HH
