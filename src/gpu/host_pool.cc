#include "gpu/host_pool.hh"

namespace cactus::gpu {

WorkerPool::WorkerPool(int workers)
{
    const int helpers = workers > 1 ? workers - 1 : 0;
    threads_.reserve(helpers);
    for (int i = 0; i < helpers; ++i)
        threads_.emplace_back(&WorkerPool::helperLoop, this, i + 1);
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
WorkerPool::run(std::uint64_t num_tasks,
                const std::function<void(std::uint64_t, int)> &fn)
{
    if (threads_.empty() || num_tasks <= 1) {
        // Inline path touches no pool state, so an exception from fn
        // propagates directly and leaves the pool untouched.
        for (std::uint64_t t = 0; t < num_tasks; ++t)
            fn(t, 0);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &fn;
        failure_ = nullptr;
        numTasks_ = num_tasks;
        nextTask_.store(0, std::memory_order_relaxed);
        active_ = static_cast<int>(threads_.size());
        ++generation_;
    }
    wake_.notify_all();

    // The caller is worker 0 and drains tasks alongside the helpers. A
    // throw here must not leave job_ dangling or skip the active_ wait
    // (helpers would deadlock the next run on a dead generation), so
    // the failure is recorded like a helper's and rethrown only after
    // the generation has fully retired.
    try {
        for (;;) {
            const std::uint64_t t =
                nextTask_.fetch_add(1, std::memory_order_relaxed);
            if (t >= num_tasks)
                break;
            fn(t, 0);
        }
    } catch (...) {
        recordFailure(std::current_exception(), num_tasks);
    }

    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return active_ == 0; });
    job_ = nullptr;
    if (failure_) {
        std::exception_ptr error = std::move(failure_);
        failure_ = nullptr;
        lock.unlock();
        std::rethrow_exception(error);
    }
}

void
WorkerPool::recordFailure(std::exception_ptr error,
                          std::uint64_t num_tasks)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!failure_)
            failure_ = std::move(error);
    }
    // Exhaust the claim counter: every subsequent fetch_add returns at
    // least num_tasks, so the remaining tasks become no-ops and all
    // workers retire promptly. Tasks already in flight still finish.
    nextTask_.store(num_tasks, std::memory_order_relaxed);
}

void
WorkerPool::helperLoop(int worker_index)
{
    std::uint64_t seen_generation = 0;
    for (;;) {
        const std::function<void(std::uint64_t, int)> *job;
        std::uint64_t num_tasks;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return stop_ || generation_ != seen_generation;
            });
            if (stop_)
                return;
            seen_generation = generation_;
            job = job_;
            num_tasks = numTasks_;
        }
        for (;;) {
            const std::uint64_t t =
                nextTask_.fetch_add(1, std::memory_order_relaxed);
            if (t >= num_tasks)
                break;
            // An exception must never escape helperLoop (that would be
            // std::terminate); capture the first and drain the rest.
            try {
                (*job)(t, worker_index);
            } catch (...) {
                recordFailure(std::current_exception(), num_tasks);
            }
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--active_ == 0)
                done_.notify_one();
        }
    }
}

} // namespace cactus::gpu
