#include "gpu/host_pool.hh"

namespace cactus::gpu {

WorkerPool::WorkerPool(int workers)
{
    const int helpers = workers > 1 ? workers - 1 : 0;
    threads_.reserve(helpers);
    for (int i = 0; i < helpers; ++i)
        threads_.emplace_back(&WorkerPool::helperLoop, this, i + 1);
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
WorkerPool::run(std::uint64_t num_tasks,
                const std::function<void(std::uint64_t, int)> &fn)
{
    if (threads_.empty() || num_tasks <= 1) {
        for (std::uint64_t t = 0; t < num_tasks; ++t)
            fn(t, 0);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &fn;
        numTasks_ = num_tasks;
        nextTask_.store(0, std::memory_order_relaxed);
        active_ = static_cast<int>(threads_.size());
        ++generation_;
    }
    wake_.notify_all();

    // The caller is worker 0 and drains tasks alongside the helpers.
    for (;;) {
        const std::uint64_t t =
            nextTask_.fetch_add(1, std::memory_order_relaxed);
        if (t >= num_tasks)
            break;
        fn(t, 0);
    }

    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return active_ == 0; });
    job_ = nullptr;
}

void
WorkerPool::helperLoop(int worker_index)
{
    std::uint64_t seen_generation = 0;
    for (;;) {
        const std::function<void(std::uint64_t, int)> *job;
        std::uint64_t num_tasks;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return stop_ || generation_ != seen_generation;
            });
            if (stop_)
                return;
            seen_generation = generation_;
            job = job_;
            num_tasks = numTasks_;
        }
        for (;;) {
            const std::uint64_t t =
                nextTask_.fetch_add(1, std::memory_order_relaxed);
            if (t >= num_tasks)
                break;
            (*job)(t, worker_index);
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--active_ == 0)
                done_.notify_one();
        }
    }
}

} // namespace cactus::gpu
