#include "gpu/coalescer.hh"

#include <algorithm>

namespace cactus::gpu {

std::vector<CoalescedAccess>
Coalescer::coalesce(
    const std::vector<std::vector<MemAccess>> &lane_accesses) const
{
    // Align the k-th access *of each kind* across lanes: under
    // divergence, lanes may interleave loads, streaming loads and
    // stores differently, and mixing kinds in one warp instruction
    // would mis-route sectors in the memory hierarchy.
    constexpr int kNumKinds = 4;
    std::vector<std::vector<const MemAccess *>> per_kind[kNumKinds];
    for (auto &v : per_kind)
        v.resize(lane_accesses.size());
    for (std::size_t lane = 0; lane < lane_accesses.size(); ++lane)
        for (const MemAccess &acc : lane_accesses[lane])
            per_kind[static_cast<int>(acc.kind)][lane].push_back(&acc);

    std::vector<CoalescedAccess> result;
    std::vector<std::uint64_t> sectors;
    for (int kind = 0; kind < kNumKinds; ++kind) {
        const auto &lanes = per_kind[kind];
        std::size_t max_len = 0;
        for (const auto &lane : lanes)
            max_len = std::max(max_len, lane.size());
        for (std::size_t k = 0; k < max_len; ++k) {
            sectors.clear();
            for (const auto &lane : lanes) {
                if (k >= lane.size())
                    continue;
                const MemAccess &acc = *lane[k];
                // A lane reference may straddle sector boundaries.
                const std::uint64_t first = acc.addr / sectorBytes_;
                const std::uint64_t last =
                    (acc.addr + (acc.size ? acc.size - 1 : 0)) /
                    sectorBytes_;
                for (std::uint64_t s = first; s <= last; ++s)
                    sectors.push_back(s * sectorBytes_);
            }
            if (sectors.empty())
                continue;
            std::sort(sectors.begin(), sectors.end());
            sectors.erase(
                std::unique(sectors.begin(), sectors.end()),
                sectors.end());
            CoalescedAccess ca;
            ca.sectors = sectors;
            ca.kind = static_cast<AccessKind>(kind);
            result.push_back(std::move(ca));
        }
    }
    return result;
}

} // namespace cactus::gpu
