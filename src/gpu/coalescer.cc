#include "gpu/coalescer.hh"

#include <algorithm>

namespace cactus::gpu {

void
Coalescer::coalesce(const LaneTraceArena &lanes, CoalesceScratch &scratch,
                    TraceArena &out) const
{
    // Align the k-th access *of each kind* across lanes: under
    // divergence, lanes may interleave loads, streaming loads and
    // stores differently, and mixing kinds in one warp instruction
    // would mis-route sectors in the memory hierarchy.
    constexpr int kNumKinds = CoalesceScratch::kNumKinds;
    const int num_lanes = lanes.lanes();
    for (int kind = 0; kind < kNumKinds; ++kind) {
        scratch.idx[kind].clear();
        scratch.laneOff[kind].clear();
        scratch.laneOff[kind].push_back(0);
    }
    // Lanes are stored lane-major, so one in-order pass fills every
    // kind's CSR rows contiguously.
    for (int lane = 0; lane < num_lanes; ++lane) {
        const std::uint32_t begin = lanes.laneBegin(lane);
        const std::uint32_t end = lanes.laneEnd[lane];
        for (std::uint32_t a = begin; a < end; ++a)
            scratch.idx[static_cast<int>(lanes.accesses[a].kind)]
                .push_back(a);
        for (int kind = 0; kind < kNumKinds; ++kind)
            scratch.laneOff[kind].push_back(
                static_cast<std::uint32_t>(scratch.idx[kind].size()));
    }

    for (int kind = 0; kind < kNumKinds; ++kind) {
        const auto &idx = scratch.idx[kind];
        const auto &off = scratch.laneOff[kind];
        std::uint32_t max_len = 0;
        for (int lane = 0; lane < num_lanes; ++lane)
            max_len = std::max(max_len, off[lane + 1] - off[lane]);
        for (std::uint32_t k = 0; k < max_len; ++k) {
            const std::uint32_t sector_begin =
                static_cast<std::uint32_t>(out.sectors.size());
            for (int lane = 0; lane < num_lanes; ++lane) {
                if (k >= off[lane + 1] - off[lane])
                    continue;
                const MemAccess &acc = lanes.accesses[idx[off[lane] + k]];
                // A lane reference may straddle sector boundaries.
                const std::uint64_t first = acc.addr / sectorBytes_;
                const std::uint64_t last =
                    (acc.addr + (acc.size ? acc.size - 1 : 0)) /
                    sectorBytes_;
                for (std::uint64_t s = first; s <= last; ++s) {
                    // Deduplicate in first-touch (lane) order rather
                    // than by address: a divergent warp instruction can
                    // span distinct buffers, and address order would
                    // then depend on where the host allocator placed
                    // them — placement noise, not access pattern. Lane
                    // order is a pure function of the program. Sector
                    // counts are tiny (<= a few per lane), so the
                    // quadratic scan is cheaper than sorting.
                    const std::uint64_t addr = s * sectorBytes_;
                    bool seen = false;
                    for (std::size_t t = sector_begin;
                         t < out.sectors.size(); ++t)
                        if (out.sectors[t] == addr) {
                            seen = true;
                            break;
                        }
                    if (!seen)
                        out.sectors.push_back(addr);
                }
            }
            const std::uint32_t count =
                static_cast<std::uint32_t>(out.sectors.size()) -
                sector_begin;
            if (count == 0)
                continue;
            out.insts.push_back(TraceInst{sector_begin, count,
                                          static_cast<AccessKind>(kind)});
        }
    }
}

std::vector<CoalescedAccess>
Coalescer::coalesce(
    const std::vector<std::vector<MemAccess>> &lane_accesses) const
{
    LaneTraceArena lanes;
    for (const auto &lane : lane_accesses) {
        lanes.accesses.insert(lanes.accesses.end(), lane.begin(),
                              lane.end());
        lanes.endLane();
    }
    CoalesceScratch scratch;
    TraceArena out;
    coalesce(lanes, scratch, out);

    std::vector<CoalescedAccess> result;
    result.reserve(out.insts.size());
    for (const TraceInst &inst : out.insts) {
        CoalescedAccess ca;
        ca.kind = inst.kind;
        ca.sectors.assign(
            out.sectors.begin() + inst.sectorBegin,
            out.sectors.begin() + inst.sectorBegin + inst.sectorCount);
        result.push_back(std::move(ca));
    }
    return result;
}

} // namespace cactus::gpu
