#include "gpu/coalescer.hh"

#include <algorithm>

namespace cactus::gpu {

std::vector<CoalescedAccess>
Coalescer::coalesce(
    const std::vector<std::vector<MemAccess>> &lane_accesses) const
{
    // Align the k-th access *of each kind* across lanes: under
    // divergence, lanes may interleave loads, streaming loads and
    // stores differently, and mixing kinds in one warp instruction
    // would mis-route sectors in the memory hierarchy.
    constexpr int kNumKinds = 4;
    std::vector<std::vector<const MemAccess *>> per_kind[kNumKinds];
    for (auto &v : per_kind)
        v.resize(lane_accesses.size());
    for (std::size_t lane = 0; lane < lane_accesses.size(); ++lane)
        for (const MemAccess &acc : lane_accesses[lane])
            per_kind[static_cast<int>(acc.kind)][lane].push_back(&acc);

    std::vector<CoalescedAccess> result;
    std::vector<std::uint64_t> sectors;
    for (int kind = 0; kind < kNumKinds; ++kind) {
        const auto &lanes = per_kind[kind];
        std::size_t max_len = 0;
        for (const auto &lane : lanes)
            max_len = std::max(max_len, lane.size());
        for (std::size_t k = 0; k < max_len; ++k) {
            sectors.clear();
            for (const auto &lane : lanes) {
                if (k >= lane.size())
                    continue;
                const MemAccess &acc = *lane[k];
                // A lane reference may straddle sector boundaries.
                const std::uint64_t first = acc.addr / sectorBytes_;
                const std::uint64_t last =
                    (acc.addr + (acc.size ? acc.size - 1 : 0)) /
                    sectorBytes_;
                for (std::uint64_t s = first; s <= last; ++s)
                    sectors.push_back(s * sectorBytes_);
            }
            if (sectors.empty())
                continue;
            // Deduplicate in first-touch (lane) order rather than by
            // address: a divergent warp instruction can span distinct
            // buffers, and address order would then depend on where
            // the host allocator placed them — placement noise, not
            // access pattern. Lane order is a pure function of the
            // program. Sector counts are tiny (<= a few per lane), so
            // the quadratic scan is cheaper than sorting.
            CoalescedAccess ca;
            for (const std::uint64_t s : sectors) {
                bool seen = false;
                for (const std::uint64_t t : ca.sectors)
                    if (t == s) {
                        seen = true;
                        break;
                    }
                if (!seen)
                    ca.sectors.push_back(s);
            }
            ca.kind = static_cast<AccessKind>(kind);
            result.push_back(std::move(ca));
        }
    }
    return result;
}

} // namespace cactus::gpu
