/**
 * @file
 * The simulated GPU device. Kernel bodies are ordinary C++ callables
 * invoked once per thread with a ThreadCtx; the device executes every
 * thread functionally, aggregates warp-level instruction counts, replays
 * sampled warps' memory traces through the coalescer and the L1/L2/DRAM
 * hierarchy, and evaluates the interval timing model to produce a
 * LaunchStats record per launch.
 *
 * The memory hierarchy is organized the way the modeled hardware is:
 * every SM owns a private L1 (DeviceConfig::numL1Units, blocks assigned
 * round-robin, block b on SM b % units) and the L2 is split into
 * address-interleaved slices (DeviceConfig::numL2Slices). L2 slice
 * contents persist across launches within a device (modeling
 * producer-consumer reuse between dependent kernels); the L1s are
 * flushed at each launch boundary.
 *
 * Execution and replay are both host-parallel (DeviceConfig::
 * hostThreads) yet bit-deterministic:
 *  1. The functional sweep fans thread blocks across a persistent
 *     worker pool, each worker accumulating private counters and
 *     recording sampled blocks' coalesced traces into per-block
 *     storage.
 *  2. A serial pre-pass translates every traced host address into the
 *     canonical device address space: line addresses map to
 *     sequential frames in first-touch order (ascending block order),
 *     so cache statistics do not depend on where the host allocator
 *     happened to place the workload's buffers.
 *  3. Replay stage 1 runs per-SM: each SM replays its sampled blocks'
 *     traces (ascending block order) through its own L1 and stream
 *     buffer, emitting its L1 misses as per-slice streams tagged with
 *     (block, seq) ordering keys. SMs are independent, so they replay
 *     concurrently.
 *  4. Replay stage 2 runs per-L2-slice: each slice merges the streams
 *     aimed at it and replays them in ascending (block, seq) order.
 *     Slices cache disjoint addresses, so they replay concurrently.
 * Every aggregate is an integer sum over fixed index spaces, so
 * LaunchStats are bit-identical for any hostThreads value; 1 runs the
 * same algorithm inline and serves as the reference schedule.
 */

#ifndef CACTUS_GPU_DEVICE_HH
#define CACTUS_GPU_DEVICE_HH

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "gpu/cache.hh"
#include "gpu/coalescer.hh"
#include "gpu/config.hh"
#include "gpu/host_pool.hh"
#include "gpu/metrics.hh"
#include "gpu/occupancy.hh"
#include "gpu/thread_ctx.hh"
#include "gpu/timing.hh"
#include "gpu/types.hh"

namespace cactus::gpu {

/**
 * L2 slice owning an address. The hash input is the 128-byte line
 * address, so consecutive lines interleave across slices while a
 * line's sectors all live in one slice — hashing at sector granularity
 * would scatter each line over ~4 slices and duplicate its tag in
 * every one of them, fragmenting the aggregate capacity (transactions
 * remain 32-byte sectors either way). The XOR fold keeps power-of-two
 * strided streams from resonating onto a single slice while
 * consecutive lines still spread round-robin.
 */
inline int
l2SliceIndex(std::uint64_t addr, int line_shift, int num_slices)
{
    const std::uint64_t line = addr >> line_shift;
    const std::uint64_t folded = line ^ (line >> 9) ^ (line >> 18);
    return static_cast<int>(folded %
                            static_cast<std::uint64_t>(num_slices));
}

/**
 * Translate @p addr into the address space local to its L2 slice: the
 * log2(num_slices) slice-selection bits are dropped from the line
 * part, exactly as interleaved hardware excludes bank-select bits from
 * the index/tag path. Without this the hash constraint freezes the low
 * line bits within any local window, so a slice's set index would
 * collapse onto a couple of sets.
 *
 * The translation is collision-free within one slice: two lines in the
 * same 2^k-line group (identical high bits) differ only in their low k
 * bits, and the XOR fold then assigns them different slices, so
 * (slice, line >> k) identifies the line uniquely. This argument needs
 * num_slices to be a power of two, which resolvedL2Slices() enforces.
 */
inline std::uint64_t
l2SliceLocalAddr(std::uint64_t addr, int line_shift, int num_slices)
{
    const int k = std::countr_zero(
        static_cast<unsigned>(num_slices));
    const std::uint64_t line = addr >> line_shift;
    const std::uint64_t offset =
        addr & ((std::uint64_t{1} << line_shift) - 1);
    return ((line >> k) << line_shift) | offset;
}

/** A simulated GPU-compute device. */
class Device
{
  public:
    explicit Device(DeviceConfig cfg = DeviceConfig{});

    /**
     * Launch a kernel: invoke @p body once per thread.
     *
     * Blocks may execute concurrently on host worker threads (see
     * DeviceConfig::hostThreads); @p body must therefore be safe to
     * call concurrently for threads of different blocks. Kernels
     * following the thread-independent contract of DESIGN.md already
     * are; cross-block communication must go through the ThreadCtx
     * atomics, which the device linearizes per address.
     *
     * @param desc Kernel metadata (name, registers, shared memory).
     * @param grid Grid dimensions in blocks.
     * @param block Block dimensions in threads.
     * @param body Callable with signature void(ThreadCtx &).
     * @return The recorded launch statistics.
     */
    template <typename F>
    const LaunchStats &
    launch(const KernelDesc &desc, Dim3 grid, Dim3 block, F &&body)
    {
        LaunchState state = beginLaunch(desc, grid, block);
        const std::uint64_t num_blocks = grid.count();
        const int workers =
            desc.serialOrdered ? 1 : resolveWorkerCount(num_blocks);

        // Functional sweep: execute every block, recording sampled
        // blocks' coalesced traces into per-block storage keyed by
        // sample ordinal. Replay happens afterwards, so the sweep's
        // schedule cannot influence the cache statistics.
        std::vector<std::vector<CoalescedAccess>> block_traces(
            sampledBlockCount(state, num_blocks));
        if (workers <= 1) {
            WorkerScratch ws = makeScratch();
            for (std::uint64_t b = 0; b < num_blocks; ++b) {
                const bool sampled = blockIsSampled(state, b);
                auto *trace = sampled
                    ? &block_traces[b / state.blockSampleStride]
                    : nullptr;
                runBlock(state, b, sampled, ws, trace, nullptr, body);
            }
            mergeScratch(state, ws);
        } else {
            WorkerPool &pool = workerPool();
            std::vector<WorkerScratch> scratch(pool.workers(),
                                               makeScratch());
            pool.run(num_blocks, [&](std::uint64_t b, int wi) {
                WorkerScratch &ws = scratch[wi];
                const bool sampled = blockIsSampled(state, b);
                auto *trace = sampled
                    ? &block_traces[b / state.blockSampleStride]
                    : nullptr;
                runBlock(state, b, sampled, ws, trace, &atomicLocks_,
                         body);
            });
            // Integer sums merged in fixed worker order: exact and
            // independent of how blocks were scheduled.
            for (const auto &ws : scratch)
                mergeScratch(state, ws);
        }

        replayHierarchy(state, block_traces);
        return endLaunch(state);
    }

    /** Convenience 1-D launch over @p n threads with given block size. */
    template <typename F>
    const LaunchStats &
    launchLinear(const KernelDesc &desc, std::uint64_t n, int block_size,
                 F &&body)
    {
        if (block_size <= 0)
            fatal("kernel '", desc.name,
                  "' launched with non-positive block size ", block_size);
        const std::uint64_t blocks =
            (n + block_size - 1) / static_cast<std::uint64_t>(block_size);
        return launch(desc, Dim3(static_cast<unsigned>(blocks)),
                      Dim3(static_cast<unsigned>(block_size)),
                      [&](ThreadCtx &ctx) {
                          if (ctx.globalId() < n)
                              body(ctx);
                      });
    }

    const DeviceConfig &config() const { return config_; }

    /**
     * Change the host worker-thread count between launches. An
     * existing pool of a different size is torn down and lazily
     * rebuilt on the next parallel launch. LaunchStats are
     * schedule-independent, so this never changes results — it exists
     * so callers (and the determinism tests) can compare thread
     * counts on one device without reallocating the workload.
     */
    void setHostThreads(int n);

    /**
     * Drop all cached contents (L1s, stream buffers, L2 slices)
     * without counting write-backs, returning the hierarchy to its
     * post-construction cold state. Launch statistics already
     * recorded are unaffected.
     */
    void flushCaches();

    /** All launches recorded since construction or clearHistory(). */
    const std::vector<LaunchStats> &launches() const { return launches_; }

    /** Total simulated GPU seconds across recorded launches. */
    double elapsedSeconds() const { return elapsedSeconds_; }

    /** Forget recorded launches (e.g., after a warm-up phase). */
    void clearHistory();

  private:
    /** Per-launch bookkeeping shared between begin/finish/end. */
    struct LaunchState
    {
        KernelDesc desc;
        Dim3 grid;
        Dim3 block;
        int warpsPerBlock = 0;
        std::uint64_t blockSampleStride = 1;
        /** Maximum number of sampled blocks per launch (fixed at
         *  beginLaunch; sampling decisions derive from it and the
         *  stride alone, independent of execution order). */
        std::int64_t sampledBlockBudget = 0;
        Occupancy occ;

        WarpCounts totals;
        std::uint64_t totalWarps = 0;
        std::uint64_t sampledWarps = 0;

        // Sampled-warp traffic, in sectors.
        std::uint64_t sampledMemInsts = 0; ///< Coalesced warp-level insts.
        std::uint64_t sampledL1Accesses = 0;
        std::uint64_t sampledL1Misses = 0;
        std::uint64_t sampledL2Accesses = 0;
        std::uint64_t sampledL2Misses = 0;
        std::uint64_t sampledL2SliceMax = 0; ///< Busiest-slice accesses.
        /** DRAM reads from stream-buffer (__ldcs) misses, which bypass
         *  L1/L2 — kept separate from slice reads so the auditor can
         *  check each against its own conservation law. */
        std::uint64_t sampledStreamMisses = 0;
        std::uint64_t sampledSliceDramRead = 0; ///< L2 read-miss fetches.
    };

    /** Private per-worker execution state: lane counters and traces for
     *  the warp in flight plus the worker's partial launch totals. */
    struct WorkerScratch
    {
        std::vector<LaneCounters> laneCounters;
        std::vector<std::vector<MemAccess>> laneTraces;
        WarpCounts totals;
        std::uint64_t totalWarps = 0;
        std::uint64_t sampledWarps = 0;
    };

    LaunchState beginLaunch(const KernelDesc &desc, Dim3 grid, Dim3 block);
    const LaunchStats &endLaunch(LaunchState &state);

    /** Number of host workers to use for a launch of @p num_blocks. */
    int resolveWorkerCount(std::uint64_t num_blocks) const;

    /** The persistent worker pool, created on first parallel use. */
    WorkerPool &workerPool();

    /** Whether block @p b records address traces. Pure function of the
     *  launch geometry, identical for every execution schedule. */
    static bool blockIsSampled(const LaunchState &state, std::uint64_t b);

    /** Number of blocks blockIsSampled() accepts for this launch. */
    static std::uint64_t sampledBlockCount(const LaunchState &state,
                                           std::uint64_t num_blocks);

    WorkerScratch makeScratch() const;
    static void beginWarp(WorkerScratch &ws, bool sampled);
    static void countWarp(WorkerScratch &ws, int lanes, bool sampled);
    static void mergeScratch(LaunchState &state, const WorkerScratch &ws);

    /**
     * Replay the sampled blocks' coalesced traces through the
     * hierarchy. A serial pre-pass first rewrites every traced host
     * address into the canonical device address space (sequential
     * line frames in first-touch order), then two deterministic
     * parallel stages run: per-SM L1 replay emitting keyed per-slice
     * miss streams, and per-slice L2 replay in (block, seq) key
     * order. Both stages fan out over the worker pool; results are
     * bit-identical for any hostThreads value.
     */
    void replayHierarchy(
        LaunchState &state,
        std::vector<std::vector<CoalescedAccess>> &block_traces);

    /**
     * Execute every warp of block @p b functionally, accumulating
     * instruction counts into @p ws and, when @p sampled, appending the
     * block's coalesced warp accesses to @p block_trace in warp order.
     * Touches no shared mutable device state, so distinct blocks can
     * run on distinct workers concurrently.
     */
    template <typename F>
    void
    runBlock(const LaunchState &state, std::uint64_t b, bool sampled,
             WorkerScratch &ws, std::vector<CoalescedAccess> *block_trace,
             AtomicLockTable *atomic_locks, F &body)
    {
        const Dim3 grid = state.grid;
        const Dim3 block = state.block;
        ThreadCtx ctx;
        ctx.blockDim = block;
        ctx.gridDim = grid;
        ctx.atomicLocks_ = atomic_locks;
        ctx.blockIdx.x = static_cast<unsigned>(b % grid.x);
        ctx.blockIdx.y = static_cast<unsigned>((b / grid.x) % grid.y);
        ctx.blockIdx.z = static_cast<unsigned>(
            b / (static_cast<std::uint64_t>(grid.x) * grid.y));
        const int threads_per_block = static_cast<int>(block.count());
        for (int w = 0; w < state.warpsPerBlock; ++w) {
            beginWarp(ws, sampled);
            const int lane_base = w * config_.warpSize;
            const int lanes = std::min(config_.warpSize,
                                       threads_per_block - lane_base);
            for (int lane = 0; lane < lanes; ++lane) {
                const int t = lane_base + lane;
                ctx.threadIdx.x = static_cast<unsigned>(t % block.x);
                ctx.threadIdx.y =
                    static_cast<unsigned>((t / block.x) % block.y);
                ctx.threadIdx.z = static_cast<unsigned>(
                    t / (static_cast<std::uint64_t>(block.x) * block.y));
                ctx.lane_ = lane;
                ctx.counters_ = &ws.laneCounters[lane];
                ctx.trace_ = sampled ? &ws.laneTraces[lane] : nullptr;
                body(ctx);
            }
            countWarp(ws, lanes, sampled);
            if (sampled && block_trace) {
                auto warp_insts = coalescer_.coalesce(ws.laneTraces);
                block_trace->insert(
                    block_trace->end(),
                    std::make_move_iterator(warp_insts.begin()),
                    std::make_move_iterator(warp_insts.end()));
            }
        }
    }

    DeviceConfig config_;
    Coalescer coalescer_;
    int lineShift_; ///< log2(lineBytes), for translation and slicing.

    /**
     * Canonical device address map: host line address -> sequential
     * frame, assigned in first-touch order during the (deterministic)
     * replay pre-pass. Cache set indexing, slice hashing, and LRU
     * state therefore never see raw host pointers, making every
     * traffic statistic reproducible for a given access pattern no
     * matter where the host allocator placed the buffers. Persists
     * across launches (L2 slices cache translated addresses);
     * flushCaches() clears it together with the cached contents.
     */
    std::unordered_map<std::uint64_t, std::uint64_t> lineFrames_;
    std::uint64_t nextFrame_ = 0;

    std::vector<SectorCache> l1s_;      ///< One private L1 per SM.
    /** Small evict-first buffers for streaming (__ldcs) loads, one per
     *  SM: capture within-line spatial reuse without polluting L1/L2. */
    std::vector<SectorCache> streamBuffers_;
    std::vector<SectorCache> l2Slices_; ///< Address-interleaved banks.

    /** Striped locks linearizing ThreadCtx atomics per address across
     *  concurrently executing blocks; unused (never handed to
     *  ThreadCtx) on the serial path. */
    AtomicLockTable atomicLocks_;

    /** Persistent worker pool shared by the sweep and both replay
     *  stages; null until the first parallel launch. */
    std::unique_ptr<WorkerPool> pool_;

    std::vector<LaunchStats> launches_;
    double elapsedSeconds_ = 0.0;
};

} // namespace cactus::gpu

#endif // CACTUS_GPU_DEVICE_HH
