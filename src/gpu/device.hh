/**
 * @file
 * The simulated GPU device. Kernel bodies are ordinary C++ callables
 * invoked once per thread with a ThreadCtx; the device executes every
 * thread functionally, aggregates warp-level instruction counts, replays
 * sampled warps' memory traces through the coalescer and the L1/L2/DRAM
 * hierarchy, and evaluates the interval timing model to produce a
 * LaunchStats record per launch.
 *
 * The memory hierarchy is organized the way the modeled hardware is:
 * every SM owns a private L1 (DeviceConfig::numL1Units, blocks assigned
 * round-robin, block b on SM b % units) and the L2 is split into
 * address-interleaved slices (DeviceConfig::numL2Slices). L2 slice
 * contents persist across launches within a device (modeling
 * producer-consumer reuse between dependent kernels); the L1s are
 * flushed at each launch boundary.
 *
 * Execution and replay are both host-parallel (DeviceConfig::
 * hostThreads) yet bit-deterministic:
 *  1. The functional sweep fans thread blocks across a persistent
 *     worker pool, each worker accumulating private counters and
 *     recording sampled blocks' coalesced traces into per-block trace
 *     arenas (flat sector buffers; see gpu/coalescer.hh). Arenas and
 *     per-worker scratch persist across launches, so a workload
 *     relaunching similar kernels allocates nothing per warp.
 *  2. A serial pre-pass translates every traced host address into the
 *     canonical device address space: line addresses map to
 *     sequential frames in first-touch order (ascending block order),
 *     so cache statistics do not depend on where the host allocator
 *     happened to place the workload's buffers.
 *  3. Replay stage 1 runs per-SM: each SM replays its sampled blocks'
 *     traces (ascending block order) through its own L1 and stream
 *     buffer, emitting its L1 misses as per-slice streams tagged with
 *     (block, seq) ordering keys. SMs are independent, so they replay
 *     concurrently.
 *  4. Replay stage 2 runs per-L2-slice: each slice merges the streams
 *     aimed at it and replays them in ascending (block, seq) order.
 *     Slices cache disjoint addresses, so they replay concurrently.
 * Every aggregate is an integer sum over fixed index spaces, so
 * LaunchStats are bit-identical for any hostThreads value; the serial
 * path runs the same algorithm inline and serves as the reference
 * schedule. Fan-out is work-gated (DeviceConfig::minWarpsPerWorker):
 * launches too small to amortize pool wakeups run fully inline.
 *
 * With DeviceConfig::fastForward, the device additionally digests each
 * launch's canonical trace and the persistent hierarchy state at launch
 * boundaries; once a window of launches provably repeats, further
 * repeats are verified by digest and their LaunchStats synthesized
 * instead of replayed (see gpu/fastforward.hh for the argument).
 */

#ifndef CACTUS_GPU_DEVICE_HH
#define CACTUS_GPU_DEVICE_HH

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "gpu/cache.hh"
#include "gpu/coalescer.hh"
#include "gpu/config.hh"
#include "gpu/fastforward.hh"
#include "gpu/host_pool.hh"
#include "gpu/metrics.hh"
#include "gpu/occupancy.hh"
#include "gpu/thread_ctx.hh"
#include "gpu/timing.hh"
#include "gpu/types.hh"

namespace cactus::gpu {

/**
 * L2 slice owning an address. The hash input is the 128-byte line
 * address, so consecutive lines interleave across slices while a
 * line's sectors all live in one slice — hashing at sector granularity
 * would scatter each line over ~4 slices and duplicate its tag in
 * every one of them, fragmenting the aggregate capacity (transactions
 * remain 32-byte sectors either way). The XOR fold keeps power-of-two
 * strided streams from resonating onto a single slice while
 * consecutive lines still spread round-robin.
 */
inline int
l2SliceIndex(std::uint64_t addr, int line_shift, int num_slices)
{
    const std::uint64_t line = addr >> line_shift;
    const std::uint64_t folded = line ^ (line >> 9) ^ (line >> 18);
    return static_cast<int>(folded %
                            static_cast<std::uint64_t>(num_slices));
}

/**
 * Translate @p addr into the address space local to its L2 slice: the
 * log2(num_slices) slice-selection bits are dropped from the line
 * part, exactly as interleaved hardware excludes bank-select bits from
 * the index/tag path. Without this the hash constraint freezes the low
 * line bits within any local window, so a slice's set index would
 * collapse onto a couple of sets.
 *
 * The translation is collision-free within one slice: two lines in the
 * same 2^k-line group (identical high bits) differ only in their low k
 * bits, and the XOR fold then assigns them different slices, so
 * (slice, line >> k) identifies the line uniquely. This argument needs
 * num_slices to be a power of two, which resolvedL2Slices() enforces.
 */
inline std::uint64_t
l2SliceLocalAddr(std::uint64_t addr, int line_shift, int num_slices)
{
    const int k = std::countr_zero(
        static_cast<unsigned>(num_slices));
    const std::uint64_t line = addr >> line_shift;
    const std::uint64_t offset =
        addr & ((std::uint64_t{1} << line_shift) - 1);
    return ((line >> k) << line_shift) | offset;
}

/** A simulated GPU-compute device. */
class Device
{
  public:
    explicit Device(DeviceConfig cfg = DeviceConfig{});

    /**
     * Launch a kernel: invoke @p body once per thread.
     *
     * Blocks may execute concurrently on host worker threads (see
     * DeviceConfig::hostThreads); @p body must therefore be safe to
     * call concurrently for threads of different blocks. Kernels
     * following the thread-independent contract of DESIGN.md already
     * are; cross-block communication must go through the ThreadCtx
     * atomics, which the device linearizes per address.
     *
     * @param desc Kernel metadata (name, registers, shared memory).
     * @param grid Grid dimensions in blocks.
     * @param block Block dimensions in threads.
     * @param body Callable with signature void(ThreadCtx &).
     * @return The recorded launch statistics.
     */
    template <typename F>
    const LaunchStats &
    launch(const KernelDesc &desc, Dim3 grid, Dim3 block, F &&body)
    {
        LaunchState state = beginLaunch(desc, grid, block);
        const std::uint64_t num_blocks = grid.count();
        state.sampledBlocks = sampledBlockCount(state, num_blocks);
        // Fan-out gate: distributing a launch that traces only a
        // handful of warps costs more in pool wakeups and scratch
        // merging than it saves, so tiny launches run fully inline.
        // Sampled-warp volume is exact before the sweep (sampling is
        // a pure function of the geometry), so the gate is too.
        const int gated = resolveWorkerCount(
            num_blocks,
            state.sampledBlocks *
                static_cast<std::uint64_t>(state.warpsPerBlock));
        state.replayParallel = gated > 1;
        const int workers = desc.serialOrdered ? 1 : gated;

        // Functional sweep: execute every block, recording sampled
        // blocks' coalesced traces into the persistent per-block
        // arenas keyed by sample ordinal. Replay happens afterwards,
        // so the sweep's schedule cannot influence cache statistics.
        if (workers <= 1) {
            prepareSweep(state, 1);
            WorkerScratch &ws = scratch_[0];
            for (std::uint64_t b = 0; b < num_blocks; ++b) {
                const bool sampled = blockIsSampled(state, b);
                TraceArena *trace = sampled
                    ? &blockArenas_[b / state.blockSampleStride]
                    : nullptr;
                runBlock(state, b, sampled, ws, trace, nullptr, body);
            }
            mergeScratch(state, ws);
        } else {
            WorkerPool &pool = workerPool();
            prepareSweep(state, pool.workers());
            pool.run(num_blocks, [&](std::uint64_t b, int wi) {
                WorkerScratch &ws = scratch_[wi];
                const bool sampled = blockIsSampled(state, b);
                TraceArena *trace = sampled
                    ? &blockArenas_[b / state.blockSampleStride]
                    : nullptr;
                runBlock(state, b, sampled, ws, trace, &atomicLocks_,
                         body);
            });
            // Integer sums merged in fixed worker order: exact and
            // independent of how blocks were scheduled.
            for (int wi = 0; wi < pool.workers(); ++wi)
                mergeScratch(state, scratch_[wi]);
        }

        return finishLaunch(state);
    }

    /** Convenience 1-D launch over @p n threads with given block size. */
    template <typename F>
    const LaunchStats &
    launchLinear(const KernelDesc &desc, std::uint64_t n, int block_size,
                 F &&body)
    {
        if (block_size <= 0)
            fatal("kernel '", desc.name,
                  "' launched with non-positive block size ", block_size);
        const std::uint64_t blocks =
            (n + block_size - 1) / static_cast<std::uint64_t>(block_size);
        return launch(desc, Dim3(static_cast<unsigned>(blocks)),
                      Dim3(static_cast<unsigned>(block_size)),
                      [&](ThreadCtx &ctx) {
                          if (ctx.globalId() < n)
                              body(ctx);
                      });
    }

    const DeviceConfig &config() const { return config_; }

    /**
     * Change the host worker-thread count between launches. An
     * existing pool of a different size is torn down and lazily
     * rebuilt on the next parallel launch. LaunchStats are
     * schedule-independent, so this never changes results — it exists
     * so callers (and the determinism tests) can compare thread
     * counts on one device without reallocating the workload.
     */
    void setHostThreads(int n);

    /**
     * Drop all cached contents (L1s, stream buffers, L2 slices)
     * without counting write-backs, returning the hierarchy to its
     * post-construction cold state. Launch statistics already
     * recorded are unaffected. Also resets the fast-forward detector:
     * the hierarchy state changed outside the launch sequence, so any
     * established periodicity no longer holds.
     */
    void flushCaches();

    /** All launches recorded since construction or clearHistory(). */
    const std::vector<LaunchStats> &launches() const { return launches_; }

    /** Total simulated GPU seconds across recorded launches. */
    double elapsedSeconds() const { return elapsedSeconds_; }

    /** Forget recorded launches (e.g., after a warm-up phase). */
    void clearHistory();

    /** Fast-forward activity counters (all zero unless
     *  DeviceConfig::fastForward is set). */
    const FastForwardSummary &
    fastForwardSummary() const
    {
        return ff_.summary;
    }

  private:
    /** Per-launch bookkeeping shared between begin/finish/end. */
    struct LaunchState
    {
        KernelDesc desc;
        Dim3 grid;
        Dim3 block;
        int warpsPerBlock = 0;
        std::uint64_t blockSampleStride = 1;
        /** Maximum number of sampled blocks per launch (fixed at
         *  beginLaunch; sampling decisions derive from it and the
         *  stride alone, independent of execution order). */
        std::int64_t sampledBlockBudget = 0;
        /** Blocks actually sampled this launch: the first
         *  sampledBlocks entries of blockArenas_ are live. */
        std::uint64_t sampledBlocks = 0;
        /** Whether the replay stages fan out over the worker pool.
         *  Gated like the sweep but independent of serialOrdered —
         *  replay consumes recorded traces, so it parallelizes even
         *  when the sweep could not. */
        bool replayParallel = false;
        Occupancy occ;

        WarpCounts totals;
        std::uint64_t totalWarps = 0;
        std::uint64_t sampledWarps = 0;

        // Sampled-warp traffic, in sectors.
        std::uint64_t sampledMemInsts = 0; ///< Coalesced warp-level insts.
        std::uint64_t sampledL1Accesses = 0;
        std::uint64_t sampledL1Misses = 0;
        std::uint64_t sampledL2Accesses = 0;
        std::uint64_t sampledL2Misses = 0;
        std::uint64_t sampledL2SliceMax = 0; ///< Busiest-slice accesses.
        /** DRAM reads from stream-buffer (__ldcs) misses, which bypass
         *  L1/L2 — kept separate from slice reads so the auditor can
         *  check each against its own conservation law. */
        std::uint64_t sampledStreamMisses = 0;
        std::uint64_t sampledSliceDramRead = 0; ///< L2 read-miss fetches.

        /** Launch digest over the canonical trace (fast-forward only). */
        std::uint64_t ffDigest = 0;
    };

    /** Private per-worker execution state: flat lane-trace and
     *  coalescer arenas for the warp in flight plus the worker's
     *  partial launch totals. Owned by the device and reused across
     *  launches, so steady-state sweeps allocate nothing per warp. */
    struct WorkerScratch
    {
        std::vector<LaneCounters> laneCounters;
        LaneTraceArena lanes;
        CoalesceScratch coalesce;
        WarpCounts totals;
        std::uint64_t totalWarps = 0;
        std::uint64_t sampledWarps = 0;
    };

    LaunchState beginLaunch(const KernelDesc &desc, Dim3 grid, Dim3 block);

    /**
     * Everything after the functional sweep: canonical-address
     * translation, hierarchy replay (or fast-forward synthesis), and
     * the LaunchStats record. Non-template so the heavy tail of the
     * launch path is compiled once, not per kernel body.
     */
    const LaunchStats &finishLaunch(LaunchState &state);
    const LaunchStats &endLaunch(LaunchState &state);

    /**
     * Number of host workers for a launch of @p num_blocks tracing
     * @p sampled_warps warps: min(hostThreads, blocks,
     * sampled_warps / minWarpsPerWorker), floored at one.
     */
    int resolveWorkerCount(std::uint64_t num_blocks,
                           std::uint64_t sampled_warps) const;

    /** The persistent worker pool, created on first parallel use. */
    WorkerPool &workerPool();

    /** Whether block @p b records address traces. Pure function of the
     *  launch geometry, identical for every execution schedule. */
    static bool blockIsSampled(const LaunchState &state, std::uint64_t b);

    /** Number of blocks blockIsSampled() accepts for this launch. */
    static std::uint64_t sampledBlockCount(const LaunchState &state,
                                           std::uint64_t num_blocks);

    /** Clear the first sampledBlocks trace arenas and ready
     *  @p scratch_count workers' scratch (capacity preserved). */
    void prepareSweep(const LaunchState &state, int scratch_count);

    static void beginWarp(WorkerScratch &ws, bool sampled);
    static void countWarp(WorkerScratch &ws, int lanes, bool sampled);
    static void mergeScratch(LaunchState &state, const WorkerScratch &ws);

    /**
     * Serial pre-pass rewriting every traced host address in the live
     * block arenas into the canonical device address space (sequential
     * line frames in first-touch order) and counting the sampled
     * warp-level memory instructions.
     */
    void canonicalizeTraces(LaunchState &state);

    /**
     * Replay the canonicalized block arenas through the hierarchy: the
     * per-SM L1 stage emits keyed per-slice miss streams and the
     * per-slice L2 stage replays them in (block, seq) key order. The
     * stages fan out over the worker pool when state.replayParallel,
     * and run inline otherwise; results are bit-identical either way.
     */
    void replayHierarchy(LaunchState &state);

    // --- Fast-forward (DeviceConfig::fastForward) -----------------------

    /** Digest of the launch identity: kernel desc, geometry, warp
     *  counters, and the canonicalized trace arenas. */
    std::uint64_t launchDigest(const LaunchState &state) const;

    /** Digest of the hierarchy state that survives launch boundaries:
     *  stream buffers and L2 slices, in unit order. L1s are flushed at
     *  every beginLaunch, so their boundary state is always empty and
     *  carries no information. */
    std::uint64_t hierarchyTagDigest() const;

    /** Record a fully replayed launch with the detector; on window
     *  establishment, snapshot the last W records as the window. */
    void recordFullLaunch(const LaunchState &state,
                          const LaunchStats &stats,
                          const AuditInputs &live);

    /** Copy the canonicalized live arenas into @p rec for later
     *  catch-up replay. */
    void captureWindowTrace(const LaunchState &state,
                            FastForwardRecord &rec);

    /** Synthesize the current launch's stats from verified phase
     *  record @p rec without replaying. */
    const LaunchStats &synthesizeLaunch(const FastForwardRecord &rec);

    /**
     * The workload diverged at phase @p diverged_phase of the
     * established window: replay the stored traces of the skipped
     * phases [0, diverged_phase) — including the L1 flush and dirty
     * drain each launch boundary performs — so the hierarchy reaches
     * exactly the state a never-fast-forwarded run would be in, then
     * restore the clean-boundary invariants for the current launch's
     * full replay.
     */
    void ffCatchUp(int diverged_phase);

    /** Serial stats-free replay of one stored window trace (used only
     *  by ffCatchUp; mirrors replayHierarchy's access order). */
    void replayStoredTrace(const FastForwardRecord &rec);

    /** Grow launches_ in large steps so long campaigns do not
     *  reallocate the history vector every few launches. */
    void reserveLaunchRecord();

    /**
     * Execute every warp of block @p b functionally, accumulating
     * instruction counts into @p ws and, when @p sampled, appending the
     * block's coalesced warp accesses to @p block_trace in warp order.
     * Touches no shared mutable device state, so distinct blocks can
     * run on distinct workers concurrently.
     */
    template <typename F>
    void
    runBlock(const LaunchState &state, std::uint64_t b, bool sampled,
             WorkerScratch &ws, TraceArena *block_trace,
             AtomicLockTable *atomic_locks, F &body)
    {
        const Dim3 grid = state.grid;
        const Dim3 block = state.block;
        ThreadCtx ctx;
        ctx.blockDim = block;
        ctx.gridDim = grid;
        ctx.atomicLocks_ = atomic_locks;
        ctx.blockIdx.x = static_cast<unsigned>(b % grid.x);
        ctx.blockIdx.y = static_cast<unsigned>((b / grid.x) % grid.y);
        ctx.blockIdx.z = static_cast<unsigned>(
            b / (static_cast<std::uint64_t>(grid.x) * grid.y));
        const int threads_per_block = static_cast<int>(block.count());
        for (int w = 0; w < state.warpsPerBlock; ++w) {
            beginWarp(ws, sampled);
            const int lane_base = w * config_.warpSize;
            const int lanes = std::min(config_.warpSize,
                                       threads_per_block - lane_base);
            for (int lane = 0; lane < lanes; ++lane) {
                const int t = lane_base + lane;
                ctx.threadIdx.x = static_cast<unsigned>(t % block.x);
                ctx.threadIdx.y =
                    static_cast<unsigned>((t / block.x) % block.y);
                ctx.threadIdx.z = static_cast<unsigned>(
                    t / (static_cast<std::uint64_t>(block.x) * block.y));
                ctx.lane_ = lane;
                ctx.counters_ = &ws.laneCounters[lane];
                ctx.trace_ = sampled ? &ws.lanes.accesses : nullptr;
                body(ctx);
                if (sampled)
                    ws.lanes.endLane();
            }
            countWarp(ws, lanes, sampled);
            if (sampled && block_trace)
                coalescer_.coalesce(ws.lanes, ws.coalesce, *block_trace);
        }
    }

    DeviceConfig config_;
    Coalescer coalescer_;
    int lineShift_; ///< log2(lineBytes), for translation and slicing.

    /**
     * Canonical device address map: host line address -> sequential
     * frame, assigned in first-touch order during the (deterministic)
     * replay pre-pass. Cache set indexing, slice hashing, and LRU
     * state therefore never see raw host pointers, making every
     * traffic statistic reproducible for a given access pattern no
     * matter where the host allocator placed the buffers. Persists
     * across launches (L2 slices cache translated addresses);
     * flushCaches() clears it together with the cached contents.
     */
    std::unordered_map<std::uint64_t, std::uint64_t> lineFrames_;
    std::uint64_t nextFrame_ = 0;

    std::vector<SectorCache> l1s_;      ///< One private L1 per SM.
    /** Small evict-first buffers for streaming (__ldcs) loads, one per
     *  SM: capture within-line spatial reuse without polluting L1/L2. */
    std::vector<SectorCache> streamBuffers_;
    std::vector<SectorCache> l2Slices_; ///< Address-interleaved banks.

    /** Striped locks linearizing ThreadCtx atomics per address across
     *  concurrently executing blocks; unused (never handed to
     *  ThreadCtx) on the serial path. */
    AtomicLockTable atomicLocks_;

    /** Persistent worker pool shared by the sweep and both replay
     *  stages; null until the first parallel launch. */
    std::unique_ptr<WorkerPool> pool_;

    /** Persistent per-sampled-block coalesced trace arenas (cleared,
     *  never freed, per launch) and per-worker sweep scratch. */
    std::vector<TraceArena> blockArenas_;
    std::vector<WorkerScratch> scratch_;

    /** Fast-forward machinery (inert unless config_.fastForward). */
    struct FastForward
    {
        explicit FastForward(int max_window) : detector(max_window) {}

        PeriodicityDetector detector;
        /** Established window, phase-indexed; empty while detecting. */
        std::vector<FastForwardRecord> window;
        /** Last <= maxWindow fully replayed launches (no traces),
         *  from which an established window is snapshotted. */
        std::vector<FastForwardRecord> history;
        FastForwardSummary summary;
    };
    FastForward ff_;

    std::vector<LaunchStats> launches_;
    double elapsedSeconds_ = 0.0;
};

} // namespace cactus::gpu

#endif // CACTUS_GPU_DEVICE_HH
