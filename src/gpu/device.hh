/**
 * @file
 * The simulated GPU device. Kernel bodies are ordinary C++ callables
 * invoked once per thread with a ThreadCtx; the device executes every
 * thread functionally, aggregates warp-level instruction counts, replays
 * sampled warps' memory traces through the coalescer and the L1/L2/DRAM
 * hierarchy, and evaluates the interval timing model to produce a
 * LaunchStats record per launch.
 *
 * The L2 cache persists across launches within a device (modeling
 * producer-consumer reuse between dependent kernels); the L1 is flushed
 * at each launch boundary.
 */

#ifndef CACTUS_GPU_DEVICE_HH
#define CACTUS_GPU_DEVICE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "gpu/cache.hh"
#include "gpu/coalescer.hh"
#include "gpu/config.hh"
#include "gpu/metrics.hh"
#include "gpu/occupancy.hh"
#include "gpu/thread_ctx.hh"
#include "gpu/timing.hh"
#include "gpu/types.hh"

namespace cactus::gpu {

/** A simulated GPU-compute device. */
class Device
{
  public:
    explicit Device(DeviceConfig cfg = DeviceConfig{});

    /**
     * Launch a kernel: invoke @p body once per thread.
     * @param desc Kernel metadata (name, registers, shared memory).
     * @param grid Grid dimensions in blocks.
     * @param block Block dimensions in threads.
     * @param body Callable with signature void(ThreadCtx &).
     * @return The recorded launch statistics.
     */
    template <typename F>
    const LaunchStats &
    launch(const KernelDesc &desc, Dim3 grid, Dim3 block, F &&body)
    {
        LaunchState state = beginLaunch(desc, grid, block);

        const std::uint64_t num_blocks = grid.count();
        const int threads_per_block = static_cast<int>(block.count());
        const int warps_per_block = state.warpsPerBlock;

        ThreadCtx ctx;
        ctx.blockDim = block;
        ctx.gridDim = grid;

        for (std::uint64_t b = 0; b < num_blocks; ++b) {
            ctx.blockIdx.x = static_cast<unsigned>(b % grid.x);
            ctx.blockIdx.y = static_cast<unsigned>((b / grid.x) % grid.y);
            ctx.blockIdx.z =
                static_cast<unsigned>(b / (static_cast<std::uint64_t>(
                    grid.x) * grid.y));
            const bool sampled = (b % state.blockSampleStride) == 0 &&
                                 state.sampledBlockBudget > 0;
            if (sampled)
                --state.sampledBlockBudget;
            for (int w = 0; w < warps_per_block; ++w) {
                prepareWarp(sampled);
                const int lane_base = w * config_.warpSize;
                const int lanes = std::min(config_.warpSize,
                                           threads_per_block - lane_base);
                for (int lane = 0; lane < lanes; ++lane) {
                    const int t = lane_base + lane;
                    ctx.threadIdx.x = static_cast<unsigned>(t % block.x);
                    ctx.threadIdx.y =
                        static_cast<unsigned>((t / block.x) % block.y);
                    ctx.threadIdx.z = static_cast<unsigned>(
                        t / (static_cast<std::uint64_t>(block.x) *
                             block.y));
                    bindLane(ctx, lane, sampled);
                    body(ctx);
                }
                finishWarp(state, lanes, sampled);
            }
        }
        return endLaunch(state);
    }

    /** Convenience 1-D launch over @p n threads with given block size. */
    template <typename F>
    const LaunchStats &
    launchLinear(const KernelDesc &desc, std::uint64_t n, int block_size,
                 F &&body)
    {
        const std::uint64_t blocks =
            (n + block_size - 1) / std::max(1, block_size);
        return launch(desc, Dim3(static_cast<unsigned>(blocks)),
                      Dim3(static_cast<unsigned>(block_size)),
                      [&](ThreadCtx &ctx) {
                          if (ctx.globalId() < n)
                              body(ctx);
                      });
    }

    const DeviceConfig &config() const { return config_; }

    /** All launches recorded since construction or clearHistory(). */
    const std::vector<LaunchStats> &launches() const { return launches_; }

    /** Total simulated GPU seconds across recorded launches. */
    double elapsedSeconds() const { return elapsedSeconds_; }

    /** Forget recorded launches (e.g., after a warm-up phase). */
    void clearHistory();

  private:
    /** Per-launch bookkeeping shared between begin/finish/end. */
    struct LaunchState
    {
        KernelDesc desc;
        Dim3 grid;
        Dim3 block;
        int warpsPerBlock = 0;
        std::uint64_t blockSampleStride = 1;
        std::int64_t sampledBlockBudget = 0;
        Occupancy occ;

        WarpCounts totals;
        std::uint64_t totalWarps = 0;
        std::uint64_t sampledWarps = 0;

        // Sampled-warp traffic, in sectors.
        std::uint64_t sampledMemInsts = 0; ///< Coalesced warp-level insts.
        std::uint64_t sampledL1Accesses = 0;
        std::uint64_t sampledL1Misses = 0;
        std::uint64_t sampledL2Accesses = 0;
        std::uint64_t sampledL2Misses = 0;
        std::uint64_t sampledDramRead = 0;
        std::uint64_t sampledDramWrite = 0;
    };

    LaunchState beginLaunch(const KernelDesc &desc, Dim3 grid, Dim3 block);
    void prepareWarp(bool sampled);
    void bindLane(ThreadCtx &ctx, int lane, bool sampled);
    void finishWarp(LaunchState &state, int lanes, bool sampled);
    const LaunchStats &endLaunch(LaunchState &state);

    DeviceConfig config_;
    Coalescer coalescer_;
    SectorCache l1_;
    SectorCache l2_;
    /** Small evict-first buffer for streaming (__ldcs) loads: captures
     *  their within-line spatial reuse without polluting L1/L2. */
    SectorCache streamBuffer_;

    // Reused per-warp scratch.
    std::vector<LaneCounters> laneCounters_;
    std::vector<std::vector<MemAccess>> laneTraces_;

    std::vector<LaunchStats> launches_;
    double elapsedSeconds_ = 0.0;
};

} // namespace cactus::gpu

#endif // CACTUS_GPU_DEVICE_HH
