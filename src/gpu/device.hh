/**
 * @file
 * The simulated GPU device. Kernel bodies are ordinary C++ callables
 * invoked once per thread with a ThreadCtx; the device executes every
 * thread functionally, aggregates warp-level instruction counts, replays
 * sampled warps' memory traces through the coalescer and the L1/L2/DRAM
 * hierarchy, and evaluates the interval timing model to produce a
 * LaunchStats record per launch.
 *
 * The L2 cache persists across launches within a device (modeling
 * producer-consumer reuse between dependent kernels); the L1 is flushed
 * at each launch boundary.
 *
 * Execution is block-parallel on the host when DeviceConfig::hostThreads
 * allows it: thread blocks are fanned out across a worker pool, each
 * worker accumulating private instruction counters and recording sampled
 * warps' traces into per-block storage. The stateful part of the model —
 * the coalesced traces' replay through the shared stream-buffer/L1/L2
 * hierarchy — happens after the functional sweep, in ascending block
 * order, so per-launch LaunchStats are bit-identical to the serial
 * (hostThreads = 1) path regardless of how blocks were scheduled.
 */

#ifndef CACTUS_GPU_DEVICE_HH
#define CACTUS_GPU_DEVICE_HH

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "gpu/cache.hh"
#include "gpu/coalescer.hh"
#include "gpu/config.hh"
#include "gpu/metrics.hh"
#include "gpu/occupancy.hh"
#include "gpu/thread_ctx.hh"
#include "gpu/timing.hh"
#include "gpu/types.hh"

namespace cactus::gpu {

/** A simulated GPU-compute device. */
class Device
{
  public:
    explicit Device(DeviceConfig cfg = DeviceConfig{});

    /**
     * Launch a kernel: invoke @p body once per thread.
     *
     * Blocks may execute concurrently on host worker threads (see
     * DeviceConfig::hostThreads); @p body must therefore be safe to
     * call concurrently for threads of different blocks. Kernels
     * following the thread-independent contract of DESIGN.md already
     * are; cross-block communication must go through the ThreadCtx
     * atomics, which the device linearizes.
     *
     * @param desc Kernel metadata (name, registers, shared memory).
     * @param grid Grid dimensions in blocks.
     * @param block Block dimensions in threads.
     * @param body Callable with signature void(ThreadCtx &).
     * @return The recorded launch statistics.
     */
    template <typename F>
    const LaunchStats &
    launch(const KernelDesc &desc, Dim3 grid, Dim3 block, F &&body)
    {
        LaunchState state = beginLaunch(desc, grid, block);
        const std::uint64_t num_blocks = grid.count();
        const int workers =
            desc.serialOrdered ? 1 : resolveWorkerCount(num_blocks);

        if (workers <= 1) {
            // Serial path: execute and replay block by block, in order.
            WorkerScratch ws = makeScratch();
            std::vector<CoalescedAccess> block_trace;
            for (std::uint64_t b = 0; b < num_blocks; ++b) {
                const bool sampled = blockIsSampled(state, b);
                block_trace.clear();
                runBlock(state, b, sampled, ws,
                         sampled ? &block_trace : nullptr, nullptr, body);
                if (sampled)
                    replayBlock(state, block_trace);
            }
            mergeScratch(state, ws);
            return endLaunch(state);
        }

        // Parallel path: fan the functional sweep out across workers,
        // each with private counter/trace scratch, then replay the
        // sampled blocks' coalesced traces through the shared cache
        // hierarchy in ascending block order. Replay order — not
        // execution order — determines the cache statistics, so the
        // resulting LaunchStats are bit-identical to the serial path.
        std::vector<WorkerScratch> scratch(workers, makeScratch());
        std::vector<std::vector<CoalescedAccess>> block_traces(
            sampledBlockCount(state, num_blocks));
        std::atomic<std::uint64_t> next_block{0};
        auto work = [&](int wi) {
            WorkerScratch &ws = scratch[wi];
            for (;;) {
                const std::uint64_t b =
                    next_block.fetch_add(1, std::memory_order_relaxed);
                if (b >= num_blocks)
                    break;
                const bool sampled = blockIsSampled(state, b);
                auto *trace = sampled
                    ? &block_traces[b / state.blockSampleStride]
                    : nullptr;
                runBlock(state, b, sampled, ws, trace, &atomicMutex_,
                         body);
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (int wi = 0; wi < workers; ++wi)
            pool.emplace_back(work, wi);
        for (auto &t : pool)
            t.join();

        for (const auto &ws : scratch)
            mergeScratch(state, ws);
        for (const auto &trace : block_traces)
            replayBlock(state, trace);
        return endLaunch(state);
    }

    /** Convenience 1-D launch over @p n threads with given block size. */
    template <typename F>
    const LaunchStats &
    launchLinear(const KernelDesc &desc, std::uint64_t n, int block_size,
                 F &&body)
    {
        if (block_size <= 0)
            fatal("kernel '", desc.name,
                  "' launched with non-positive block size ", block_size);
        const std::uint64_t blocks =
            (n + block_size - 1) / static_cast<std::uint64_t>(block_size);
        return launch(desc, Dim3(static_cast<unsigned>(blocks)),
                      Dim3(static_cast<unsigned>(block_size)),
                      [&](ThreadCtx &ctx) {
                          if (ctx.globalId() < n)
                              body(ctx);
                      });
    }

    const DeviceConfig &config() const { return config_; }

    /** All launches recorded since construction or clearHistory(). */
    const std::vector<LaunchStats> &launches() const { return launches_; }

    /** Total simulated GPU seconds across recorded launches. */
    double elapsedSeconds() const { return elapsedSeconds_; }

    /** Forget recorded launches (e.g., after a warm-up phase). */
    void clearHistory();

  private:
    /** Per-launch bookkeeping shared between begin/finish/end. */
    struct LaunchState
    {
        KernelDesc desc;
        Dim3 grid;
        Dim3 block;
        int warpsPerBlock = 0;
        std::uint64_t blockSampleStride = 1;
        /** Maximum number of sampled blocks per launch (fixed at
         *  beginLaunch; sampling decisions derive from it and the
         *  stride alone, independent of execution order). */
        std::int64_t sampledBlockBudget = 0;
        Occupancy occ;

        WarpCounts totals;
        std::uint64_t totalWarps = 0;
        std::uint64_t sampledWarps = 0;

        // Sampled-warp traffic, in sectors.
        std::uint64_t sampledMemInsts = 0; ///< Coalesced warp-level insts.
        std::uint64_t sampledL1Accesses = 0;
        std::uint64_t sampledL1Misses = 0;
        std::uint64_t sampledL2Accesses = 0;
        std::uint64_t sampledL2Misses = 0;
        std::uint64_t sampledDramRead = 0;
        std::uint64_t sampledDramWrite = 0;
    };

    /** Private per-worker execution state: lane counters and traces for
     *  the warp in flight plus the worker's partial launch totals. */
    struct WorkerScratch
    {
        std::vector<LaneCounters> laneCounters;
        std::vector<std::vector<MemAccess>> laneTraces;
        WarpCounts totals;
        std::uint64_t totalWarps = 0;
        std::uint64_t sampledWarps = 0;
    };

    LaunchState beginLaunch(const KernelDesc &desc, Dim3 grid, Dim3 block);
    const LaunchStats &endLaunch(LaunchState &state);

    /** Number of host workers to use for a launch of @p num_blocks. */
    int resolveWorkerCount(std::uint64_t num_blocks) const;

    /** Whether block @p b records address traces. Pure function of the
     *  launch geometry, identical for every execution schedule. */
    static bool blockIsSampled(const LaunchState &state, std::uint64_t b);

    /** Number of blocks blockIsSampled() accepts for this launch. */
    static std::uint64_t sampledBlockCount(const LaunchState &state,
                                           std::uint64_t num_blocks);

    WorkerScratch makeScratch() const;
    static void beginWarp(WorkerScratch &ws, bool sampled);
    static void countWarp(WorkerScratch &ws, int lanes, bool sampled);
    static void mergeScratch(LaunchState &state, const WorkerScratch &ws);

    /** Replay one sampled block's coalesced accesses (in warp order)
     *  through the stream-buffer/L1/L2 hierarchy. Main thread only. */
    void replayBlock(LaunchState &state,
                     const std::vector<CoalescedAccess> &insts);

    /**
     * Execute every warp of block @p b functionally, accumulating
     * instruction counts into @p ws and, when @p sampled, appending the
     * block's coalesced warp accesses to @p block_trace in warp order.
     * Touches no shared mutable device state, so distinct blocks can
     * run on distinct workers concurrently.
     */
    template <typename F>
    void
    runBlock(const LaunchState &state, std::uint64_t b, bool sampled,
             WorkerScratch &ws, std::vector<CoalescedAccess> *block_trace,
             std::mutex *atomic_lock, F &body)
    {
        const Dim3 grid = state.grid;
        const Dim3 block = state.block;
        ThreadCtx ctx;
        ctx.blockDim = block;
        ctx.gridDim = grid;
        ctx.atomicLock_ = atomic_lock;
        ctx.blockIdx.x = static_cast<unsigned>(b % grid.x);
        ctx.blockIdx.y = static_cast<unsigned>((b / grid.x) % grid.y);
        ctx.blockIdx.z = static_cast<unsigned>(
            b / (static_cast<std::uint64_t>(grid.x) * grid.y));
        const int threads_per_block = static_cast<int>(block.count());
        for (int w = 0; w < state.warpsPerBlock; ++w) {
            beginWarp(ws, sampled);
            const int lane_base = w * config_.warpSize;
            const int lanes = std::min(config_.warpSize,
                                       threads_per_block - lane_base);
            for (int lane = 0; lane < lanes; ++lane) {
                const int t = lane_base + lane;
                ctx.threadIdx.x = static_cast<unsigned>(t % block.x);
                ctx.threadIdx.y =
                    static_cast<unsigned>((t / block.x) % block.y);
                ctx.threadIdx.z = static_cast<unsigned>(
                    t / (static_cast<std::uint64_t>(block.x) * block.y));
                ctx.lane_ = lane;
                ctx.counters_ = &ws.laneCounters[lane];
                ctx.trace_ = sampled ? &ws.laneTraces[lane] : nullptr;
                body(ctx);
            }
            countWarp(ws, lanes, sampled);
            if (sampled && block_trace) {
                auto warp_insts = coalescer_.coalesce(ws.laneTraces);
                block_trace->insert(
                    block_trace->end(),
                    std::make_move_iterator(warp_insts.begin()),
                    std::make_move_iterator(warp_insts.end()));
            }
        }
    }

    DeviceConfig config_;
    Coalescer coalescer_;
    SectorCache l1_;
    SectorCache l2_;
    /** Small evict-first buffer for streaming (__ldcs) loads: captures
     *  their within-line spatial reuse without polluting L1/L2. */
    SectorCache streamBuffer_;

    /** Linearizes ThreadCtx atomics across concurrently executing
     *  blocks; unused (never handed to ThreadCtx) on the serial path. */
    std::mutex atomicMutex_;

    std::vector<LaunchStats> launches_;
    double elapsedSeconds_ = 0.0;
};

} // namespace cactus::gpu

#endif // CACTUS_GPU_DEVICE_HH
