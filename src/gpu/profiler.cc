#include "gpu/profiler.hh"

#include <algorithm>
#include <map>

namespace cactus::gpu {

std::vector<KernelProfile>
aggregateLaunches(const std::vector<LaunchStats> &launches,
                  const DeviceConfig &cfg)
{
    std::map<std::string, KernelProfile> by_name;
    std::map<std::string, std::vector<double>> weighted;

    for (const auto &launch : launches) {
        KernelProfile &kp = by_name[launch.desc.name];
        kp.name = launch.desc.name;
        ++kp.invocations;
        kp.seconds += launch.timing.seconds;
        kp.warpInsts += launch.counts.total();
        kp.dramReadSectors += launch.dramReadSectors;
        kp.dramWriteSectors += launch.dramWriteSectors;
        kp.l1Accesses += launch.l1Accesses;
        kp.l1Misses += launch.l1Misses;
        kp.l2Accesses += launch.l2Accesses;
        kp.l2Misses += launch.l2Misses;

        auto &acc = weighted[launch.desc.name];
        const std::vector<double> row = launch.metrics.toVector();
        if (acc.empty())
            acc.assign(row.size(), 0.0);
        for (std::size_t i = 0; i < row.size(); ++i)
            acc[i] += row[i] * launch.timing.seconds;
    }

    std::vector<KernelProfile> result;
    result.reserve(by_name.size());
    for (auto &[name, kp] : by_name) {
        const auto &acc = weighted[name];
        const double w = kp.seconds > 0 ? kp.seconds : 1.0;
        KernelMetrics &m = kp.metrics;
        m.warpOccupancy = acc[0] / w;
        m.smEfficiency = acc[1] / w;
        m.l1HitRate = kp.l1Accesses
            ? 1.0 - static_cast<double>(kp.l1Misses) / kp.l1Accesses
            : acc[2] / w;
        m.l2HitRate = kp.l2Accesses
            ? 1.0 - static_cast<double>(kp.l2Misses) / kp.l2Accesses
            : acc[3] / w;
        m.dramReadBps = static_cast<double>(kp.dramReadSectors) *
                        cfg.sectorBytes / w;
        m.ldstUtilization = acc[5] / w;
        m.spUtilization = acc[6] / w;
        m.fracBranch = acc[7] / w;
        m.fracLdst = acc[8] / w;
        m.execStall = acc[9] / w;
        m.pipeStall = acc[10] / w;
        m.syncStall = acc[11] / w;
        m.memStall = acc[12] / w;
        m.gips = static_cast<double>(kp.warpInsts) / w / 1e9;
        const std::uint64_t txn = kp.dramReadSectors + kp.dramWriteSectors;
        m.instIntensity = txn
            ? static_cast<double>(kp.warpInsts) / txn
            : 1e6;
        m.instIntensity = std::min(m.instIntensity, 1e6);
        result.push_back(std::move(kp));
    }

    std::sort(result.begin(), result.end(),
              [](const KernelProfile &a, const KernelProfile &b) {
                  if (a.seconds != b.seconds)
                      return a.seconds > b.seconds;
                  return a.name < b.name;
              });
    return result;
}

} // namespace cactus::gpu
