/**
 * @file
 * The FNV-1a digest primitives shared by every digest in the
 * simulator: launch/trace digests and hierarchy tags (fastforward.hh),
 * cache state digests (cache.hh), and the DeviceConfig digest that
 * content-addresses characterization results (config.hh, serve layer).
 * One header so every digest agrees on the offset basis and folding
 * discipline — two subsystems hashing the same bytes produce the same
 * 64-bit value.
 */

#ifndef CACTUS_GPU_DIGEST_HH
#define CACTUS_GPU_DIGEST_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace cactus::gpu {

/** FNV-1a 64-bit offset basis, the digests' seed. */
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;

/** Fold one 64-bit word into an FNV-1a digest, byte-wise LE. Used for
 *  the (small) hierarchy state digests, matching the OutputDigest
 *  idiom of core/verify.hh. */
inline std::uint64_t
fnv1a(std::uint64_t h, std::uint64_t v)
{
    for (int byte = 0; byte < 8; ++byte) {
        h ^= (v >> (8 * byte)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Word-wise FNV-1a step for bulk trace digests: one XOR and one
 *  multiply per 64-bit word instead of eight, because the launch
 *  digest runs over every traced sector and must stay far cheaper
 *  than the replay it lets the device skip. Weaker per-bit diffusion
 *  than the byte-wise fold, but the full 64-bit digest is compared,
 *  and the multiply propagates every input bit into the high half. */
inline std::uint64_t
mix64(std::uint64_t h, std::uint64_t v)
{
    return (h ^ v) * 0x100000001b3ull;
}

/** Byte-wise FNV-1a over a byte string. Content-addresses textual
 *  identities (e.g. sweep task ids for shard assignment). */
inline std::uint64_t
fnv1aBytes(std::string_view s, std::uint64_t h = kFnvOffset)
{
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

/** The canonical 16-hex-digit rendering of a 64-bit digest, as it
 *  appears in cache keys, task ids, and serialized records. */
inline std::string
hex16(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace cactus::gpu

#endif // CACTUS_GPU_DIGEST_HH
