/**
 * @file
 * Device configuration for the GPU-compute simulator. The defaults model
 * the Nvidia RTX 3080 used in the Cactus paper (Table II): 68 SMs with
 * 128 CUDA cores each at 1.9 GHz, 5 MB L2, 10 GB GDDR6X at 760.3 GB/s
 * with 32-byte transactions. The derived peak rates reproduce the paper's
 * roofline geometry exactly: 516.8 peak GIPS, 23.75 peak GTXN/s, and an
 * elbow at 21.76 warp instructions per DRAM transaction.
 */

#ifndef CACTUS_GPU_CONFIG_HH
#define CACTUS_GPU_CONFIG_HH

#include <algorithm>
#include <bit>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/cancel.hh"
#include "common/fault.hh"
#include "gpu/digest.hh"

namespace cactus::gpu {

/** Architectural parameters of the simulated device. */
struct DeviceConfig
{
    std::string name = "Simulated RTX 3080 (Ampere-class)";

    // --- Compute organization -------------------------------------------
    int numSms = 68;
    int warpSchedulersPerSm = 4;
    int warpSize = 32;
    double clockGhz = 1.9;

    // --- Occupancy limits (Ampere GA102) --------------------------------
    int maxWarpsPerSm = 48;
    int maxThreadsPerSm = 1536;
    int maxBlocksPerSm = 16;
    int regsPerSm = 65536;
    int sharedBytesPerSm = 100 * 1024;

    // --- Per-class issue throughput, warp instructions per SM per cycle --
    double fp32PerCycle = 4.0;   ///< 128 FP32 lanes = 4 warps/cycle.
    double intPerCycle = 2.0;    ///< 64 INT32 lanes on GA102.
    double sfuPerCycle = 0.5;    ///< 16 SFUs.
    double ldstPerCycle = 4.0;   ///< LSU ports.
    double sharedPerCycle = 4.0;
    double branchPerCycle = 4.0;

    // --- Memory hierarchy ------------------------------------------------
    int l1SizeBytes = 128 * 1024;  ///< Unified L1/shared per SM.
    int l1Assoc = 4;
    int l2SizeBytes = 5 * 1024 * 1024;
    int l2Assoc = 16;
    int lineBytes = 128;
    int sectorBytes = 32;          ///< DRAM transaction granularity.

    /**
     * Private L1 cache units, each of l1SizeBytes, with a deterministic
     * round-robin block-to-SM assignment (block b lives on SM
     * b % units). 0 derives one unit per SM, matching the hardware; 1
     * restores the legacy single device-wide L1 model.
     */
    int numL1Units = 0;

    /**
     * Address-interleaved L2 slices. The l2SizeBytes capacity is split
     * evenly across slices and 128-byte line addresses are hashed to a
     * slice (line-interleaved with an XOR fold; see l2SliceIndex()),
     * so slices replay disjoint address streams while a line's sectors
     * stay together. Rounded down to a power of two; 1 restores the
     * monolithic L2 model.
     */
    int numL2Slices = 8;

    double l1LatencyCycles = 32.0;
    double l2LatencyCycles = 210.0;
    double dramLatencyCycles = 440.0;

    double dramBandwidthGBps = 760.3;
    /** L2-to-SM aggregate bandwidth, bytes per core cycle. */
    double l2BytesPerCycle = 1600.0;

    // --- Launch / wave overheads ----------------------------------------
    double launchOverheadCycles = 2200.0; ///< Driver+front-end per launch.

    // --- Sampling --------------------------------------------------------
    /** Blocks whose warps record full address traces are sampled with a
     *  stride so that at most this many warps are traced per launch. */
    int maxSampledWarps = 4096;

    // --- Host execution ---------------------------------------------------

    /** Host worker threads available for the functional sweep. */
    static int
    defaultHostThreads()
    {
        const unsigned n = std::thread::hardware_concurrency();
        return n != 0 ? static_cast<int>(n) : 1;
    }

    /**
     * Host threads used to execute simulated thread blocks and to
     * replay the sliced memory hierarchy. 1 runs the exact
     * single-threaded reference path; larger values fan blocks (and
     * per-SM / per-slice replay) out across a worker pool. Per-launch
     * LaunchStats are bit-identical either way: traces are rewritten
     * into canonical device addresses, per-SM L1 replay runs in
     * ascending block order, and each L2 slice replays its merged
     * stream in (block, seq) key order (see Device::replayHierarchy).
     * Values <= 0 fall back to defaultHostThreads().
     */
    int hostThreads = defaultHostThreads();

    /**
     * Floor on sampled warps per worker before the sweep and replay
     * fan out. Tiny launches (a handful of blocks at reduced scale)
     * cost more in pool wakeups and scratch merging than the work they
     * distribute, so the device uses
     * min(hostThreads, blocks, sampledWarps / minWarpsPerWorker)
     * workers (floored at one) and runs fully inline — no pool
     * involvement at all — when that resolves to one. 0 disables the
     * gate and fans out on raw block count as before. Has no effect on
     * results; only on wall-clock.
     */
    int minWarpsPerWorker = 256;

    // --- Steady-state fast-forward ---------------------------------------

    /**
     * Opt-in launch-replay fast-forward. When true, the device digests
     * every launch's canonical coalesced trace and the persistent
     * hierarchy state at launch boundaries; once a window of launches
     * repeats verbatim with a matching boundary state, subsequent
     * repeats of the window are verified by digest and their
     * LaunchStats synthesized instead of replayed. Bit-identical to a
     * full run (each skipped launch is digest-verified first and the
     * hierarchy state is provably periodic; see gpu/fastforward.hh),
     * assuming no 64-bit FNV-1a collisions. The functional sweep —
     * and therefore all kernel outputs — always runs in full.
     */
    bool fastForward = false;

    /**
     * Longest repetition period searched by the fast-forward detector,
     * in launches. Iterative workloads commonly run several kernels
     * per timestep/iteration, so the window must cover one full
     * iteration. Values <= 0 are treated as 1.
     */
    int fastForwardWindow = 64;

    // --- Robustness -------------------------------------------------------

    /**
     * Cooperative cancellation token, polled at every kernel-launch
     * boundary (Device::beginLaunch). When a watchdog requests it, the
     * next launch throws TimeoutError, unwinding the benchmark at a
     * clean boundary. Default-constructed tokens are inert; the
     * campaign runner installs a live per-attempt token.
     */
    CancelToken cancel;

    /**
     * Deterministic fault injection, parsed once per process from
     * CACTUS_FAULT=site:probability:seed (see common/fault.hh). Device
     * sites: 'alloc' fails device construction, 'launch' throws at a
     * kernel-launch boundary. Tests install explicit injectors via
     * FaultInjector::parse without touching the environment.
     */
    FaultInjector fault = FaultInjector::fromEnv();

    /**
     * Invoked at every kernel-launch boundary (Device::beginLaunch),
     * before the cancellation poll. Control plane only — must not
     * affect simulated results. The campaign runner installs a
     * coordination-log heartbeat here so a fleet worker proves
     * liveness exactly as often as it reaches a clean boundary: a
     * worker wedged inside one launch stops beating and its leases
     * go stale. Null (the default) is a no-op.
     */
    std::function<void()> onLaunchBoundary;

    // --- Derived organization ---------------------------------------------

    /** Number of private L1 units after resolving the 0 default. */
    int
    resolvedL1Units() const
    {
        return numL1Units > 0 ? numL1Units : numSms;
    }

    /** Number of L2 slices, floored at one and rounded down to a
     *  power of two (the slice-local address translation relies on
     *  it; see l2SliceLocalAddr()). */
    int
    resolvedL2Slices() const
    {
        const unsigned n =
            numL2Slices > 0 ? static_cast<unsigned>(numL2Slices) : 1u;
        return static_cast<int>(std::bit_floor(n));
    }

    /**
     * Capacity of one L2 slice. Floored at one full set so extreme
     * withScaledCaches() factors still yield a functioning slice; the
     * aggregate capacity is then slightly above l2SizeBytes, which is
     * the conservative direction for hit rates at tiny scales.
     */
    int
    l2SliceBytes() const
    {
        return std::max(l2SizeBytes / resolvedL2Slices(),
                        l2Assoc * lineBytes);
    }

    // --- Derived rates ----------------------------------------------------

    /** Peak warp-instruction rate in Giga instructions per second. */
    double
    peakGips() const
    {
        return numSms * warpSchedulersPerSm * clockGhz;
    }

    /** Peak DRAM transaction rate in Giga transactions per second. */
    double
    peakGtxnPerSec() const
    {
        return dramBandwidthGBps / sectorBytes;
    }

    /** Roofline elbow in warp instructions per DRAM transaction. */
    double
    elbowIntensity() const
    {
        return peakGips() / peakGtxnPerSec();
    }

    /** DRAM bandwidth expressed in bytes per core clock cycle. */
    double
    dramBytesPerCycle() const
    {
        return dramBandwidthGBps / clockGhz;
    }

    /** Core clock in Hz. */
    double
    clockHz() const
    {
        return clockGhz * 1e9;
    }

    /**
     * FNV-1a digest over every parameter that can change simulated
     * results. Two configs with equal digests produce bit-identical
     * LaunchStats, profiles, and output digests for the same
     * (benchmark, scale) — the content-address the serve layer's
     * result cache keys on.
     *
     * Deliberately excluded, because results are proven invariant to
     * them (PRs 1/2/5) or they never reach the model:
     *  - hostThreads / minWarpsPerWorker (host execution fan-out);
     *  - fastForward / fastForwardWindow (digest-verified skip is
     *    bit-identical to full replay);
     *  - name (cosmetic), cancel, fault, onLaunchBoundary (control
     *    plane, not model).
     * Derived values (resolvedL1Units, resolvedL2Slices) are folded
     * instead of their raw knobs so e.g. numL1Units = 0 and an
     * explicit numL1Units = numSms hash identically.
     */
    std::uint64_t
    digest() const
    {
        std::uint64_t h = kFnvOffset;
        const auto fi = [&h](std::int64_t v) {
            h = fnv1a(h, static_cast<std::uint64_t>(v));
        };
        const auto fd = [&h](double v) {
            h = fnv1a(h, std::bit_cast<std::uint64_t>(v));
        };
        fi(numSms);
        fi(warpSchedulersPerSm);
        fi(warpSize);
        fd(clockGhz);
        fi(maxWarpsPerSm);
        fi(maxThreadsPerSm);
        fi(maxBlocksPerSm);
        fi(regsPerSm);
        fi(sharedBytesPerSm);
        fd(fp32PerCycle);
        fd(intPerCycle);
        fd(sfuPerCycle);
        fd(ldstPerCycle);
        fd(sharedPerCycle);
        fd(branchPerCycle);
        fi(l1SizeBytes);
        fi(l1Assoc);
        fi(l2SizeBytes);
        fi(l2Assoc);
        fi(lineBytes);
        fi(sectorBytes);
        fi(resolvedL1Units());
        fi(resolvedL2Slices());
        fd(l1LatencyCycles);
        fd(l2LatencyCycles);
        fd(dramLatencyCycles);
        fd(dramBandwidthGBps);
        fd(l2BytesPerCycle);
        fd(launchOverheadCycles);
        fi(maxSampledWarps);
        return h;
    }

    /**
     * The configuration used by the reproduction experiments. The
     * workloads run at inputs scaled down by roughly two to three
     * orders of magnitude from the paper's (see DESIGN.md), so the
     * cache capacities are scaled down with them to keep the
     * working-set-to-cache ratios — and hence the memory- versus
     * compute-intensity of each kernel — representative. The compute
     * and bandwidth roofs are untouched: the roofline geometry
     * (516.8 GIPS, 23.76 GTXN/s, elbow 21.76) is identical to the
     * full-size device.
     */
    static DeviceConfig
    scaledExperiment()
    {
        DeviceConfig cfg;
        cfg.name = "Simulated RTX 3080 (scaled caches for reduced-"
                   "scale inputs)";
        cfg.l1SizeBytes = 16 * 1024;
        cfg.l2SizeBytes = 256 * 1024;
        return cfg;
    }

    /** Copy of this config with L1/L2 capacities divided by
     *  @p factor (floored at one line per way). Used to evaluate other
     *  GPU platforms at the same reduced input scale. */
    DeviceConfig
    withScaledCaches(int factor) const
    {
        DeviceConfig cfg = *this;
        cfg.l1SizeBytes =
            std::max(cfg.l1SizeBytes / factor, cfg.l1Assoc * 128);
        cfg.l2SizeBytes =
            std::max(cfg.l2SizeBytes / factor, cfg.l2Assoc * 128);
        return cfg;
    }

    /**
     * Turing-generation preset (RTX 2080 Ti): same SM count as the
     * RTX 3080 but lower clock, narrower FP32 (64 lanes/SM), and
     * GDDR6 bandwidth. Peak 420.2 GIPS, 19.25 GTXN/s.
     */
    static DeviceConfig
    rtx2080Ti()
    {
        DeviceConfig cfg;
        cfg.name = "Simulated RTX 2080 Ti (Turing-class)";
        cfg.numSms = 68;
        cfg.clockGhz = 1.545;
        cfg.fp32PerCycle = 2.0; // 64 FP32 lanes per Turing SM.
        cfg.intPerCycle = 2.0;
        cfg.l2SizeBytes = 5632 * 1024;
        cfg.dramBandwidthGBps = 616.0;
        cfg.maxWarpsPerSm = 32;
        cfg.maxThreadsPerSm = 1024;
        return cfg;
    }

    /**
     * Data-center preset (A100-SXM4-40GB): more SMs at a lower clock
     * with HBM2 bandwidth and a large L2. Peak 609.1 GIPS,
     * 48.6 GTXN/s — the roofline elbow moves to 12.5, so workloads
     * that are memory-bound on the RTX 3080 may become compute-bound.
     */
    static DeviceConfig
    a100()
    {
        DeviceConfig cfg;
        cfg.name = "Simulated A100 (Ampere data-center)";
        cfg.numSms = 108;
        cfg.clockGhz = 1.41;
        cfg.fp32PerCycle = 2.0; // 64 FP32 + 64 INT lanes on GA100.
        cfg.l1SizeBytes = 192 * 1024;
        cfg.l2SizeBytes = 40 * 1024 * 1024;
        cfg.dramBandwidthGBps = 1555.0;
        cfg.regsPerSm = 65536;
        cfg.maxWarpsPerSm = 64;
        cfg.maxThreadsPerSm = 2048;
        return cfg;
    }
};

} // namespace cactus::gpu

#endif // CACTUS_GPU_CONFIG_HH
