/**
 * @file
 * Stats-conservation auditor. Every figure and table the suite
 * reproduces is a pure function of LaunchStats, so a counter that
 * breaks the memory hierarchy's own conservation laws silently
 * poisons every downstream result. auditLaunchStats() re-derives the
 * laws a correct replay must satisfy — sector traffic shrinking
 * monotonically down the hierarchy, slice decompositions summing to
 * their aggregates, warp counts matching the launch geometry, every
 * derived metric finite — and throws IntegrityError naming the first
 * violated invariant.
 *
 * Two audit depths:
 *  - Recorded stats alone (live == nullptr): the invariants any
 *    consumer of a LaunchStats record may rely on. Safe to apply to
 *    stats of unknown provenance (checkpoints, traces, tests).
 *  - With AuditInputs (live != nullptr): additionally proves the
 *    extrapolated fields conserve the sampled replay counters they
 *    were scaled from, and that the sampled counters themselves obey
 *    the stage-1/stage-2 replay contract. Device::endLaunch audits at
 *    this depth on every launch.
 */

#ifndef CACTUS_GPU_AUDIT_HH
#define CACTUS_GPU_AUDIT_HH

#include <cstdint>

#include "gpu/config.hh"
#include "gpu/metrics.hh"

namespace cactus::gpu {

/**
 * The pre-extrapolation replay counters of one launch, captured by
 * Device::endLaunch so the auditor can prove the published stats are
 * a faithful scaling of what the replay actually measured.
 */
struct AuditInputs
{
    std::uint64_t sampledMemInsts = 0;
    std::uint64_t sampledL1Accesses = 0;
    std::uint64_t sampledL1Misses = 0;
    std::uint64_t sampledL2Accesses = 0;
    std::uint64_t sampledL2Misses = 0;
    std::uint64_t sampledL2SliceMax = 0;
    /** Stream-buffer (__ldcs) misses: DRAM reads that bypass L1/L2. */
    std::uint64_t sampledStreamMisses = 0;
    /** L2-slice read misses that fetched from DRAM. */
    std::uint64_t sampledSliceDramRead = 0;
    /** Dirty sectors written back to DRAM (evictions + drain). */
    std::uint64_t writebackSectors = 0;
    /** Extrapolation factor applied to every sampled counter. */
    double scale = 1.0;
};

/**
 * Validate @p stats against the conservation invariants; with @p live
 * also validate the sampled-counter contract and extrapolation
 * conservation (see file comment). Throws IntegrityError carrying the
 * kernel name and the violated invariant; returns normally when every
 * invariant holds.
 */
void auditLaunchStats(const LaunchStats &stats, const DeviceConfig &cfg,
                      const AuditInputs *live = nullptr);

} // namespace cactus::gpu

#endif // CACTUS_GPU_AUDIT_HH
