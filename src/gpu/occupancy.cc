#include "gpu/occupancy.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cactus::gpu {

Occupancy
computeOccupancy(const DeviceConfig &cfg, const KernelDesc &desc,
                 const Dim3 &block)
{
    const std::uint64_t threads_per_block = block.count();
    if (threads_per_block == 0)
        fatal("kernel '", desc.name, "' launched with an empty block");
    if (threads_per_block > static_cast<std::uint64_t>(cfg.maxThreadsPerSm))
        fatal("kernel '", desc.name, "' block of ", threads_per_block,
              " threads exceeds the per-SM thread limit");

    const int warps_per_block = static_cast<int>(
        (threads_per_block + cfg.warpSize - 1) / cfg.warpSize);

    Occupancy occ;
    occ.limiter = Occupancy::Limiter::Blocks;
    int blocks = cfg.maxBlocksPerSm;

    const int by_threads = static_cast<int>(
        cfg.maxThreadsPerSm / threads_per_block);
    if (by_threads < blocks) {
        blocks = by_threads;
        occ.limiter = Occupancy::Limiter::Threads;
    }

    const int by_warps = cfg.maxWarpsPerSm / warps_per_block;
    if (by_warps < blocks) {
        blocks = by_warps;
        occ.limiter = Occupancy::Limiter::Warps;
    }

    // Registers are allocated per warp in practice; model per block.
    const std::uint64_t regs_per_block =
        static_cast<std::uint64_t>(desc.regsPerThread) * threads_per_block;
    if (regs_per_block > 0) {
        const int by_regs = static_cast<int>(cfg.regsPerSm / regs_per_block);
        if (by_regs < blocks) {
            blocks = by_regs;
            occ.limiter = Occupancy::Limiter::Registers;
        }
    }

    if (desc.sharedBytesPerBlock > 0) {
        const int by_smem = cfg.sharedBytesPerSm / desc.sharedBytesPerBlock;
        if (by_smem < blocks) {
            blocks = by_smem;
            occ.limiter = Occupancy::Limiter::SharedMem;
        }
    }

    blocks = std::max(blocks, 0);
    occ.blocksPerSm = blocks;
    occ.warpsPerSm = blocks * warps_per_block;
    occ.occupancy =
        static_cast<double>(occ.warpsPerSm) / cfg.maxWarpsPerSm;
    if (blocks == 0)
        fatal("kernel '", desc.name,
              "' cannot fit a single block on an SM (regs=",
              desc.regsPerThread, ", smem=", desc.sharedBytesPerBlock, ")");
    return occ;
}

} // namespace cactus::gpu
