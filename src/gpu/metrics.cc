#include "gpu/metrics.hh"

#include "common/logging.hh"

namespace cactus::gpu {

const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::FP32: return "fp32";
      case OpClass::INT: return "int";
      case OpClass::SFU: return "sfu";
      case OpClass::LOAD: return "load";
      case OpClass::STORE: return "store";
      case OpClass::SHARED: return "shared";
      case OpClass::ATOMIC: return "atomic";
      case OpClass::BRANCH: return "branch";
      case OpClass::SYNC: return "sync";
      default: panic("invalid op class");
    }
}

const char *
KernelMetrics::columnName(int i)
{
    static const char *names[kNumColumns] = {
        "warp_occupancy", "sm_efficiency", "l1_hit_rate", "l2_hit_rate",
        "dram_read_bps", "ldst_utilization", "sp_utilization",
        "frac_branch", "frac_ldst", "exec_stall", "pipe_stall",
        "sync_stall", "mem_stall", "gips", "inst_intensity",
    };
    if (i < 0 || i >= kNumColumns)
        panic("metric column index ", i, " out of range");
    return names[i];
}

std::vector<double>
KernelMetrics::toVector() const
{
    return {warpOccupancy, smEfficiency, l1HitRate, l2HitRate, dramReadBps,
            ldstUtilization, spUtilization, fracBranch, fracLdst,
            execStall, pipeStall, syncStall, memStall, gips,
            instIntensity};
}

} // namespace cactus::gpu
