/**
 * @file
 * Persistent host worker pool for the simulator's parallel stages. The
 * block-parallel functional sweep and the two replay stages (per-SM L1,
 * per-slice L2) each fan an index space out across the same pool;
 * keeping the threads alive across launches avoids a thread
 * create/join cycle per launch, which dominates for the many small
 * launches the ML workloads issue.
 */

#ifndef CACTUS_GPU_HOST_POOL_HH
#define CACTUS_GPU_HOST_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cactus::gpu {

/**
 * A fixed-size pool of host worker threads executing an indexed task
 * space. run() dispatches tasks [0, numTasks) to the pool plus the
 * calling thread; tasks are claimed from a shared atomic counter, so
 * any worker can pick up any task (callers must not depend on the
 * task-to-worker mapping for correctness — the simulator's stages are
 * written so only *aggregation order*, not execution order, matters).
 */
class WorkerPool
{
  public:
    /**
     * @param workers Total worker count including the calling thread;
     *                workers - 1 helper threads are spawned. Values
     *                <= 1 create no threads and run() executes inline.
     */
    explicit WorkerPool(int workers);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /**
     * Execute @p fn(task, worker) for every task in [0, numTasks).
     * The caller participates as worker 0; helpers are 1..workers-1.
     * Returns when every task has finished. Not reentrant.
     *
     * Exception-safe: if @p fn throws on any worker (helper or
     * caller), the first exception is captured, the remaining
     * unclaimed tasks are drained as no-ops, and the exception is
     * rethrown here on the calling thread once every helper has gone
     * idle — the pool is reusable afterwards. Helpers never let an
     * exception escape to std::terminate. When multiple workers
     * throw concurrently, one exception is kept and the rest are
     * discarded.
     */
    void run(std::uint64_t num_tasks,
             const std::function<void(std::uint64_t, int)> &fn);

    /** Total workers (helpers + caller) this pool dispatches to. */
    int workers() const { return static_cast<int>(threads_.size()) + 1; }

  private:
    void helperLoop(int worker_index);

    /** Record @p error as the run's failure (first one wins) and push
     *  the claim counter past @p num_tasks so every worker sees an
     *  exhausted task space and drains. */
    void recordFailure(std::exception_ptr error,
                       std::uint64_t num_tasks);

    std::vector<std::thread> threads_;
    std::mutex mutex_;
    std::condition_variable wake_;  ///< Signals a new generation.
    std::condition_variable done_;  ///< Signals active_ reaching zero.
    const std::function<void(std::uint64_t, int)> *job_ = nullptr;
    std::exception_ptr failure_;    ///< First exception of the run.
    std::atomic<std::uint64_t> nextTask_{0};
    std::uint64_t numTasks_ = 0;
    std::uint64_t generation_ = 0;
    int active_ = 0;
    bool stop_ = false;
};

} // namespace cactus::gpu

#endif // CACTUS_GPU_HOST_POOL_HH
