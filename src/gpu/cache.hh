/**
 * @file
 * Sectored set-associative cache model. Modern Nvidia caches track 128-byte
 * lines split into four 32-byte sectors: a tag is allocated per line but
 * data is filled per sector, so a hit requires both the line tag and the
 * referenced sector to be present. The model is trace-driven and LRU.
 */

#ifndef CACTUS_GPU_CACHE_HH
#define CACTUS_GPU_CACHE_HH

#include <cstdint>
#include <vector>

namespace cactus::gpu {

/** Outcome of a single sector access. */
enum class CacheOutcome
{
    Hit,        ///< Line and sector present.
    SectorMiss, ///< Line present, sector needs a fill from below.
    LineMiss    ///< Line absent; allocate and fill the sector.
};

/** Aggregate hit/miss statistics for a cache instance. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t sectorMisses = 0;
    std::uint64_t lineMisses = 0;
    /** Dirty sectors evicted: write-back traffic to the next level. */
    std::uint64_t writebackSectors = 0;

    std::uint64_t
    misses() const
    {
        return sectorMisses + lineMisses;
    }

    double
    hitRate() const
    {
        return accesses ? static_cast<double>(hits) / accesses : 0.0;
    }
};

/**
 * A sectored, set-associative, write-allocate cache with LRU replacement.
 * Addresses are byte addresses; the cache operates on sector granularity.
 */
class SectorCache
{
  public:
    /**
     * @param size_bytes Total capacity in bytes.
     * @param assoc Ways per set.
     * @param line_bytes Line (tag) granularity in bytes; power of two.
     * @param sector_bytes Fill granularity in bytes; divides line_bytes.
     */
    SectorCache(int size_bytes, int assoc, int line_bytes, int sector_bytes);

    /**
     * Access one sector-aligned address.
     * @param addr Byte address (any alignment; truncated to sector).
     * @param is_write True for stores (write-allocate, mark dirty).
     * @return The access outcome.
     */
    CacheOutcome access(std::uint64_t addr, bool is_write);

    /** Invalidate all contents; statistics are preserved. */
    void flush();

    /**
     * Count resident dirty sectors and clear their dirty bits (data
     * stays valid). Models draining pending write-backs at a kernel
     * boundary without double-counting them on later evictions.
     */
    std::uint64_t drainDirty();

    /** Reset statistics; contents are preserved. */
    void resetStats();

    /**
     * Fold this cache's *behavioral* state into the running FNV-1a
     * digest @p h and return the result. Two caches with equal digests
     * respond identically to any future access sequence (modulo hash
     * collisions): the fold covers, per way in index order, the tag,
     * sector-valid mask, dirty bit, and the way's LRU *rank* among the
     * valid ways of its set — never the absolute lruStamp values,
     * which grow monotonically and would differ between two
     * behaviorally identical states reached at different times.
     * Statistics are excluded. Used by the steady-state fast-forward
     * periodicity check (see gpu/fastforward.hh).
     */
    std::uint64_t stateDigest(std::uint64_t h) const;

    const CacheStats &stats() const { return stats_; }
    int numSets() const { return numSets_; }
    int assoc() const { return assoc_; }

  private:
    struct Way
    {
        std::uint64_t tag = 0;
        std::uint32_t sectorValid = 0; ///< Bit per sector.
        std::uint64_t lruStamp = 0;
        bool valid = false;
        bool dirty = false;
    };

    int assoc_;
    int lineBytes_;
    int sectorBytes_;
    int sectorsPerLine_;
    int numSets_;
    int lineShift_;
    int sectorShift_; ///< log2(sectorBytes_), cached off the hot path.
    std::uint64_t stamp_ = 0;
    std::vector<Way> ways_; ///< numSets_ * assoc_, row-major by set.
    CacheStats stats_;
};

} // namespace cactus::gpu

#endif // CACTUS_GPU_CACHE_HH
