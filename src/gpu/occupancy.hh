/**
 * @file
 * CUDA-style occupancy calculator: given a kernel's per-thread register
 * count, per-block shared memory, and block size, computes how many
 * blocks and warps can be resident on one SM.
 */

#ifndef CACTUS_GPU_OCCUPANCY_HH
#define CACTUS_GPU_OCCUPANCY_HH

#include "gpu/config.hh"
#include "gpu/types.hh"

namespace cactus::gpu {

/** Result of the occupancy computation for one kernel launch. */
struct Occupancy
{
    int blocksPerSm = 0;
    int warpsPerSm = 0;
    /** Fraction of the SM's warp slots occupied, in [0, 1]. */
    double occupancy = 0.0;
    /** The resource that bounds residency, for diagnostics. */
    enum class Limiter { Blocks, Threads, Warps, Registers, SharedMem }
        limiter = Limiter::Warps;
};

/**
 * Compute theoretical occupancy for a launch.
 * @param cfg Device configuration.
 * @param desc Kernel resource usage.
 * @param block Thread-block dimensions.
 */
Occupancy computeOccupancy(const DeviceConfig &cfg, const KernelDesc &desc,
                           const Dim3 &block);

} // namespace cactus::gpu

#endif // CACTUS_GPU_OCCUPANCY_HH
