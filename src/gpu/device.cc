#include "gpu/device.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cactus::gpu {

Device::Device(DeviceConfig cfg)
    : config_(std::move(cfg)),
      coalescer_(config_.sectorBytes),
      l1_(config_.l1SizeBytes, config_.l1Assoc, config_.lineBytes,
          config_.sectorBytes),
      l2_(config_.l2SizeBytes, config_.l2Assoc, config_.lineBytes,
          config_.sectorBytes),
      streamBuffer_(8 * 1024, 4, config_.lineBytes,
                    config_.sectorBytes)
{
}

void
Device::clearHistory()
{
    launches_.clear();
    elapsedSeconds_ = 0.0;
}

Device::LaunchState
Device::beginLaunch(const KernelDesc &desc, Dim3 grid, Dim3 block)
{
    if (grid.empty())
        fatal("kernel '", desc.name, "' launched with an empty grid");
    if (block.empty())
        fatal("kernel '", desc.name, "' launched with an empty block");

    LaunchState state;
    state.desc = desc;
    state.grid = grid;
    state.block = block;
    state.warpsPerBlock = static_cast<int>(
        (block.count() + config_.warpSize - 1) / config_.warpSize);
    state.occ = computeOccupancy(config_, desc, block);

    const std::uint64_t total_warps = grid.count() * state.warpsPerBlock;
    const std::uint64_t max_sampled =
        std::max<std::uint64_t>(1, config_.maxSampledWarps);
    if (total_warps <= max_sampled) {
        state.blockSampleStride = 1;
    } else {
        const std::uint64_t sampled_blocks = std::max<std::uint64_t>(
            1, max_sampled / state.warpsPerBlock);
        state.blockSampleStride =
            std::max<std::uint64_t>(1, grid.count() / sampled_blocks);
    }
    state.sampledBlockBudget = static_cast<std::int64_t>(
        std::max<std::uint64_t>(1, max_sampled / state.warpsPerBlock));

    // L1 contents do not survive kernel boundaries; L2 does.
    l1_.flush();
    l1_.resetStats();
    l2_.resetStats();
    return state;
}

int
Device::resolveWorkerCount(std::uint64_t num_blocks) const
{
    int n = config_.hostThreads;
    if (n <= 0)
        n = DeviceConfig::defaultHostThreads();
    const std::uint64_t cap = std::max<std::uint64_t>(1, num_blocks);
    return static_cast<int>(
        std::min<std::uint64_t>(static_cast<std::uint64_t>(n), cap));
}

bool
Device::blockIsSampled(const LaunchState &state, std::uint64_t b)
{
    if (b % state.blockSampleStride != 0)
        return false;
    // Candidates appear in ascending block order, one every stride
    // blocks, and the first sampledBlockBudget of them are accepted —
    // exactly the blocks a serial in-order sweep with a decrementing
    // budget would sample.
    return static_cast<std::int64_t>(b / state.blockSampleStride) <
           state.sampledBlockBudget;
}

std::uint64_t
Device::sampledBlockCount(const LaunchState &state,
                          std::uint64_t num_blocks)
{
    const std::uint64_t candidates =
        (num_blocks + state.blockSampleStride - 1) /
        state.blockSampleStride;
    return std::min(candidates,
                    static_cast<std::uint64_t>(state.sampledBlockBudget));
}

Device::WorkerScratch
Device::makeScratch() const
{
    WorkerScratch ws;
    ws.laneCounters.resize(config_.warpSize);
    ws.laneTraces.resize(config_.warpSize);
    return ws;
}

void
Device::beginWarp(WorkerScratch &ws, bool sampled)
{
    for (auto &c : ws.laneCounters)
        c = LaneCounters{};
    if (sampled) {
        for (auto &t : ws.laneTraces)
            t.clear();
    }
}

void
Device::countWarp(WorkerScratch &ws, int lanes, bool sampled)
{
    WarpCounts wc;
    for (int cls = 0; cls < kNumOpClasses; ++cls) {
        std::uint64_t max_count = 0;
        for (int lane = 0; lane < lanes; ++lane)
            max_count = std::max(max_count,
                                 ws.laneCounters[lane].counts[cls]);
        wc.warpInsts[cls] = max_count;
    }
    for (int lane = 0; lane < lanes; ++lane)
        wc.threadInsts += ws.laneCounters[lane].total();
    wc.activeLanes = static_cast<std::uint32_t>(lanes);

    ws.totals.accumulate(wc);
    ++ws.totalWarps;
    if (sampled)
        ++ws.sampledWarps;
}

void
Device::mergeScratch(LaunchState &state, const WorkerScratch &ws)
{
    // All merged quantities are integer sums, so the merge is exact and
    // independent of how blocks were distributed across workers.
    state.totals.accumulate(ws.totals);
    state.totalWarps += ws.totalWarps;
    state.sampledWarps += ws.sampledWarps;
}

void
Device::replayBlock(LaunchState &state,
                    const std::vector<CoalescedAccess> &insts)
{
    state.sampledMemInsts += insts.size();
    for (const auto &wi : insts) {
        // Streaming (evict-first) loads run through a small dedicated
        // buffer: within-line spatial reuse is captured, but the
        // stream never displaces reused data from L1/L2.
        if (wi.kind == AccessKind::StreamLoad) {
            for (std::uint64_t sector : wi.sectors) {
                if (streamBuffer_.access(sector, false) !=
                    CacheOutcome::Hit)
                    ++state.sampledDramRead;
            }
            continue;
        }
        const bool is_write = wi.kind == AccessKind::Store;
        for (std::uint64_t sector : wi.sectors) {
            ++state.sampledL1Accesses;
            const CacheOutcome l1_out = l1_.access(sector, is_write);
            if (l1_out == CacheOutcome::Hit)
                continue;
            ++state.sampledL1Misses;
            ++state.sampledL2Accesses;
            const CacheOutcome l2_out = l2_.access(sector, is_write);
            if (l2_out == CacheOutcome::Hit)
                continue;
            ++state.sampledL2Misses;
            // Write-allocate-no-fetch: a missing store dirties the
            // sector and reaches DRAM later as a write-back (counted
            // via the L2 eviction/drain statistics).
            if (!is_write)
                ++state.sampledDramRead;
        }
    }
}

const LaunchStats &
Device::endLaunch(LaunchState &state)
{
    LaunchStats stats;
    stats.desc = state.desc;
    stats.grid = state.grid;
    stats.block = state.block;
    stats.counts = state.totals;
    stats.totalWarps = state.totalWarps;
    stats.sampledWarps = state.sampledWarps;
    stats.occupancyFraction = state.occ.occupancy;
    stats.residentWarpsPerSm = state.occ.warpsPerSm;

    // Extrapolate sampled traffic to the whole launch. The scale factor
    // is the ratio of total to sampled warp-level memory instructions.
    const std::uint64_t total_mem_insts = state.totals.memInsts();
    double scale = 1.0;
    if (state.sampledMemInsts > 0) {
        scale = static_cast<double>(total_mem_insts) /
                static_cast<double>(state.sampledMemInsts);
    }
    auto scaled = [scale](std::uint64_t v) {
        return static_cast<std::uint64_t>(
            static_cast<double>(v) * scale + 0.5);
    };
    stats.l1Accesses = scaled(state.sampledL1Accesses);
    stats.l1Misses = scaled(state.sampledL1Misses);
    stats.l2Accesses = scaled(state.sampledL2Accesses);
    stats.l2Misses = scaled(state.sampledL2Misses);
    stats.dramReadSectors = scaled(state.sampledDramRead);
    // DRAM writes are the L2 write-backs: dirty evictions during the
    // launch plus the dirty sectors drained at the kernel boundary.
    stats.dramWriteSectors = scaled(l2_.stats().writebackSectors +
                                    l2_.drainDirty());

    TimingInputs in;
    in.counts = state.totals;
    in.numBlocks = state.grid.count();
    in.warpsPerBlock = state.warpsPerBlock;
    in.residentWarpsPerSm = state.occ.warpsPerSm;
    in.residentBlocksPerSm = state.occ.blocksPerSm;
    in.l1Accesses = stats.l1Accesses;
    in.l1Misses = stats.l1Misses;
    in.l2Accesses = stats.l2Accesses;
    in.l2Misses = stats.l2Misses;
    in.dramReadSectors = stats.dramReadSectors;
    in.dramWriteSectors = stats.dramWriteSectors;

    const TimingOutputs out = evaluateTiming(config_, in);
    stats.timing = out.timing;
    stats.metrics = out.metrics;

    elapsedSeconds_ += stats.timing.seconds;
    launches_.push_back(std::move(stats));
    return launches_.back();
}

} // namespace cactus::gpu
