#include "gpu/device.hh"

#include <algorithm>
#include <bit>

#include "common/error.hh"
#include "common/host_alloc.hh"
#include "common/logging.hh"
#include "gpu/audit.hh"

namespace cactus {

/**
 * Weak fallback for binaries that do not link the cactus_hostalign
 * OBJECT library: no arena exists, so traced host addresses translate
 * as themselves and the first-touch frame mapping alone absorbs
 * placement differences.
 */
__attribute__((weak)) bool
canonicalRange(const void *, CanonicalRange &)
{
    return false;
}

} // namespace cactus

namespace cactus::gpu {

namespace {

/** One L1 miss bound for an L2 slice, with its global ordering key.
 *  Slices replay their merged streams in ascending (block, seq) order,
 *  which is the order a monolithic in-order replay would present. */
struct SliceRef
{
    std::uint64_t block;  ///< Linear block id of the emitting block.
    std::uint64_t sector; ///< Slice-local sector address
                          ///< (l2SliceLocalAddr of the miss address).
    std::uint32_t seq;    ///< Emission ordinal within the block.
    bool isWrite;
};

} // namespace

Device::Device(DeviceConfig cfg)
    : config_(std::move(cfg)),
      coalescer_(config_.sectorBytes),
      lineShift_(std::countr_zero(
          static_cast<unsigned>(config_.lineBytes))),
      ff_(config_.fastForwardWindow)
{
    if (config_.fault.shouldFail("alloc"))
        throw BenchmarkError(
            "injected fault at site 'alloc': device memory-hierarchy "
            "allocation failed");
    const int units = config_.resolvedL1Units();
    l1s_.reserve(units);
    streamBuffers_.reserve(units);
    for (int u = 0; u < units; ++u) {
        l1s_.emplace_back(config_.l1SizeBytes, config_.l1Assoc,
                          config_.lineBytes, config_.sectorBytes);
        streamBuffers_.emplace_back(8 * 1024, 4, config_.lineBytes,
                                    config_.sectorBytes);
    }
    const int slices = config_.resolvedL2Slices();
    l2Slices_.reserve(slices);
    for (int s = 0; s < slices; ++s)
        l2Slices_.emplace_back(config_.l2SliceBytes(), config_.l2Assoc,
                               config_.lineBytes, config_.sectorBytes);
}

void
Device::clearHistory()
{
    launches_.clear();
    elapsedSeconds_ = 0.0;
}

void
Device::setHostThreads(int n)
{
    config_.hostThreads = n;
    const int resolved =
        n > 0 ? n : DeviceConfig::defaultHostThreads();
    if (pool_ && pool_->workers() != resolved)
        pool_.reset();
}

void
Device::flushCaches()
{
    for (auto &l1 : l1s_)
        l1.flush();
    for (auto &sb : streamBuffers_)
        sb.flush();
    for (auto &slice : l2Slices_)
        slice.flush();
    // Also restart the canonical address numbering: the next cold run
    // re-derives it from its own first-touch order, so two cold runs
    // of the same access pattern translate identically even when the
    // allocator moved the underlying buffers.
    lineFrames_.clear();
    nextFrame_ = 0;
    // The hierarchy state just changed outside the launch sequence,
    // so any established (or half-detected) periodicity is void.
    ff_.detector.reset();
    ff_.window.clear();
    ff_.history.clear();
    ff_.summary.window = 0;
}

Device::LaunchState
Device::beginLaunch(const KernelDesc &desc, Dim3 grid, Dim3 block)
{
    // The launch boundary is the device's liveness and cancellation
    // point: fleet workers prove progress here (heartbeat hook), and
    // a watchdog-cancelled benchmark unwinds here, between kernels,
    // leaving no launch half-recorded.
    if (config_.onLaunchBoundary)
        config_.onLaunchBoundary();
    if (config_.cancel.requested())
        throw TimeoutError("kernel '" + desc.name +
                           "' not launched: cancellation requested "
                           "(watchdog deadline exceeded)");
    if (config_.fault.shouldFail("launch"))
        throw BenchmarkError("injected fault at site 'launch': kernel '" +
                             desc.name + "' failed to launch");
    if (grid.empty())
        fatal("kernel '", desc.name, "' launched with an empty grid");
    if (block.empty())
        fatal("kernel '", desc.name, "' launched with an empty block");

    LaunchState state;
    state.desc = desc;
    state.grid = grid;
    state.block = block;
    state.warpsPerBlock = static_cast<int>(
        (block.count() + config_.warpSize - 1) / config_.warpSize);
    state.occ = computeOccupancy(config_, desc, block);

    const std::uint64_t total_warps = grid.count() * state.warpsPerBlock;
    const std::uint64_t max_sampled =
        std::max<std::uint64_t>(1, config_.maxSampledWarps);
    if (total_warps <= max_sampled) {
        state.blockSampleStride = 1;
    } else {
        const std::uint64_t sampled_blocks = std::max<std::uint64_t>(
            1, max_sampled / state.warpsPerBlock);
        state.blockSampleStride =
            std::max<std::uint64_t>(1, grid.count() / sampled_blocks);
    }
    state.sampledBlockBudget = static_cast<std::int64_t>(
        std::max<std::uint64_t>(1, max_sampled / state.warpsPerBlock));

    // L1 contents do not survive kernel boundaries; L2 slices do.
    for (auto &l1 : l1s_) {
        l1.flush();
        l1.resetStats();
    }
    for (auto &slice : l2Slices_)
        slice.resetStats();
    return state;
}

int
Device::resolveWorkerCount(std::uint64_t num_blocks,
                           std::uint64_t sampled_warps) const
{
    int n = config_.hostThreads;
    if (n <= 0)
        n = DeviceConfig::defaultHostThreads();
    std::uint64_t cap = std::max<std::uint64_t>(1, num_blocks);
    if (config_.minWarpsPerWorker > 0) {
        const std::uint64_t by_warps = std::max<std::uint64_t>(
            1, sampled_warps /
                   static_cast<std::uint64_t>(config_.minWarpsPerWorker));
        cap = std::min(cap, by_warps);
    }
    return static_cast<int>(
        std::min<std::uint64_t>(static_cast<std::uint64_t>(n), cap));
}

WorkerPool &
Device::workerPool()
{
    if (!pool_) {
        int n = config_.hostThreads;
        if (n <= 0)
            n = DeviceConfig::defaultHostThreads();
        pool_ = std::make_unique<WorkerPool>(n);
    }
    return *pool_;
}

bool
Device::blockIsSampled(const LaunchState &state, std::uint64_t b)
{
    if (b % state.blockSampleStride != 0)
        return false;
    // Candidates appear in ascending block order, one every stride
    // blocks, and the first sampledBlockBudget of them are accepted —
    // exactly the blocks a serial in-order sweep with a decrementing
    // budget would sample.
    return static_cast<std::int64_t>(b / state.blockSampleStride) <
           state.sampledBlockBudget;
}

std::uint64_t
Device::sampledBlockCount(const LaunchState &state,
                          std::uint64_t num_blocks)
{
    const std::uint64_t candidates =
        (num_blocks + state.blockSampleStride - 1) /
        state.blockSampleStride;
    return std::min(candidates,
                    static_cast<std::uint64_t>(state.sampledBlockBudget));
}

void
Device::prepareSweep(const LaunchState &state, int scratch_count)
{
    if (blockArenas_.size() < state.sampledBlocks)
        blockArenas_.resize(state.sampledBlocks);
    for (std::uint64_t i = 0; i < state.sampledBlocks; ++i)
        blockArenas_[i].clear();
    if (scratch_.size() < static_cast<std::size_t>(scratch_count))
        scratch_.resize(static_cast<std::size_t>(scratch_count));
    for (int i = 0; i < scratch_count; ++i) {
        WorkerScratch &ws = scratch_[i];
        if (static_cast<int>(ws.laneCounters.size()) != config_.warpSize)
            ws.laneCounters.resize(config_.warpSize);
        ws.totals = WarpCounts{};
        ws.totalWarps = 0;
        ws.sampledWarps = 0;
    }
}

void
Device::beginWarp(WorkerScratch &ws, bool sampled)
{
    for (auto &c : ws.laneCounters)
        c = LaneCounters{};
    if (sampled)
        ws.lanes.beginWarp();
}

void
Device::countWarp(WorkerScratch &ws, int lanes, bool sampled)
{
    WarpCounts wc;
    for (int cls = 0; cls < kNumOpClasses; ++cls) {
        std::uint64_t max_count = 0;
        for (int lane = 0; lane < lanes; ++lane)
            max_count = std::max(max_count,
                                 ws.laneCounters[lane].counts[cls]);
        wc.warpInsts[cls] = max_count;
    }
    for (int lane = 0; lane < lanes; ++lane)
        wc.threadInsts += ws.laneCounters[lane].total();
    wc.activeLanes = static_cast<std::uint32_t>(lanes);

    ws.totals.accumulate(wc);
    ++ws.totalWarps;
    if (sampled)
        ++ws.sampledWarps;
}

void
Device::mergeScratch(LaunchState &state, const WorkerScratch &ws)
{
    // All merged quantities are integer sums, so the merge is exact and
    // independent of how blocks were distributed across workers.
    state.totals.accumulate(ws.totals);
    state.totalWarps += ws.totalWarps;
    state.sampledWarps += ws.sampledWarps;
}

void
Device::canonicalizeTraces(LaunchState &state)
{
    // Rewrite every traced host address into the canonical device
    // address space in two steps. First the host pointer is mapped to
    // its arena logical address (see common/host_alloc.hh) — logical
    // bases are never recycled, so a freed-and-reallocated buffer can
    // never alias a dead buffer's cached lines. Then each logical line
    // gets a sequential frame in first-touch order; the pass is serial
    // and walks blocks in ascending order, so the mapping — and
    // therefore every set index, slice hash, and LRU decision
    // downstream — depends only on the access pattern, never on where
    // the host allocator placed the workload's buffers.
    const std::uint64_t offset_mask = config_.lineBytes - 1;
    CanonicalRange range{0, 0, 0};
    std::uint64_t last_line = ~std::uint64_t{0};
    std::uint64_t last_frame = 0;
    for (std::uint64_t i = 0; i < state.sampledBlocks; ++i) {
        TraceArena &arena = blockArenas_[i];
        state.sampledMemInsts += arena.insts.size();
        for (auto &sector : arena.sectors) {
            std::uint64_t logical = sector;
            if (sector >= range.begin && sector < range.end) {
                logical = range.logicalBase + (sector - range.begin);
            } else if (canonicalRange(
                           reinterpret_cast<const void *>(sector),
                           range)) {
                logical = range.logicalBase + (sector - range.begin);
            } else {
                range = CanonicalRange{0, 0, 0};
            }
            const std::uint64_t line = logical >> lineShift_;
            if (line != last_line) {
                const auto [it, inserted] =
                    lineFrames_.try_emplace(line, nextFrame_);
                if (inserted)
                    ++nextFrame_;
                last_line = line;
                last_frame = it->second;
            }
            sector = (last_frame << lineShift_) |
                     (logical & offset_mask);
        }
    }
}

void
Device::replayHierarchy(LaunchState &state)
{
    const int units = config_.resolvedL1Units();
    const int slices = config_.resolvedL2Slices();

    // Deterministic round-robin block-to-SM assignment: sampled block
    // ordinal o is block o * stride, living on SM (o * stride) % units.
    // Ordinals are gathered in ascending order, so every unit replays
    // its blocks in ascending block order.
    std::vector<std::vector<std::uint32_t>> unit_ordinals(units);
    for (std::uint32_t o = 0;
         o < static_cast<std::uint32_t>(state.sampledBlocks); ++o) {
        const std::uint64_t b = o * state.blockSampleStride;
        unit_ordinals[b % units].push_back(o);
    }
    std::vector<int> active_units;
    for (int u = 0; u < units; ++u)
        if (!unit_ordinals[u].empty())
            active_units.push_back(u);

    // Both stages fan their index space out over the pool only when
    // the launch passed the work gate; small launches run the same
    // loops inline without waking (or even creating) the pool.
    const auto for_each_task = [&](std::size_t n, auto &&fn) {
        if (state.replayParallel && n > 1)
            workerPool().run(n, fn);
        else
            for (std::size_t i = 0; i < n; ++i)
                fn(i, 0);
    };

    // --- Stage 1: per-SM L1 replay --------------------------------------
    // Each SM's L1 and stream buffer see only that SM's blocks, so
    // units replay concurrently; L1 misses are emitted as per-slice
    // streams tagged with (block, seq) ordering keys.
    struct UnitResult
    {
        std::uint64_t l1Accesses = 0;
        std::uint64_t l1Misses = 0;
        std::uint64_t dramRead = 0; ///< Stream-buffer misses.
        std::vector<std::vector<SliceRef>> perSlice;
    };
    std::vector<UnitResult> unit_results(active_units.size());
    for (auto &r : unit_results)
        r.perSlice.resize(slices);

    for_each_task(
        active_units.size(), [&](std::uint64_t task, int) {
            const int u = active_units[task];
            UnitResult &r = unit_results[task];
            SectorCache &l1 = l1s_[u];
            SectorCache &stream_buffer = streamBuffers_[u];
            for (const std::uint32_t o : unit_ordinals[u]) {
                const TraceArena &arena = blockArenas_[o];
                const std::uint64_t b = o * state.blockSampleStride;
                std::uint32_t seq = 0;
                for (const TraceInst &wi : arena.insts) {
                    const std::uint64_t *sectors =
                        arena.sectors.data() + wi.sectorBegin;
                    // Streaming (evict-first) loads run through the
                    // SM's dedicated buffer: within-line spatial reuse
                    // is captured, but the stream never displaces
                    // reused data from L1/L2.
                    if (wi.kind == AccessKind::StreamLoad) {
                        for (std::uint32_t j = 0; j < wi.sectorCount;
                             ++j) {
                            if (stream_buffer.access(sectors[j],
                                                     false) !=
                                CacheOutcome::Hit)
                                ++r.dramRead;
                        }
                        continue;
                    }
                    const bool is_write = wi.kind == AccessKind::Store;
                    for (std::uint32_t j = 0; j < wi.sectorCount; ++j) {
                        const std::uint64_t sector = sectors[j];
                        ++r.l1Accesses;
                        if (l1.access(sector, is_write) ==
                            CacheOutcome::Hit)
                            continue;
                        ++r.l1Misses;
                        const int s = l2SliceIndex(sector, lineShift_,
                                                   slices);
                        r.perSlice[s].push_back(SliceRef{
                            b,
                            l2SliceLocalAddr(sector, lineShift_, slices),
                            seq++, is_write});
                    }
                }
            }
        });

    // --- Stage 2: per-slice L2 replay -----------------------------------
    // Slices cache disjoint addresses, so they replay concurrently;
    // each merges the streams aimed at it and replays in ascending
    // (block, seq) order — the schedule-independent reference order.
    std::vector<int> active_slices;
    for (int s = 0; s < slices; ++s) {
        for (const auto &r : unit_results) {
            if (!r.perSlice[s].empty()) {
                active_slices.push_back(s);
                break;
            }
        }
    }
    struct SliceResult
    {
        std::uint64_t accesses = 0;
        std::uint64_t misses = 0;
        std::uint64_t dramRead = 0;
    };
    std::vector<SliceResult> slice_results(active_slices.size());

    for_each_task(
        active_slices.size(), [&](std::uint64_t task, int) {
            const int s = active_slices[task];
            std::size_t total = 0;
            for (const auto &r : unit_results)
                total += r.perSlice[s].size();
            std::vector<SliceRef> stream;
            stream.reserve(total);
            for (const auto &r : unit_results)
                stream.insert(stream.end(), r.perSlice[s].begin(),
                              r.perSlice[s].end());
            std::sort(stream.begin(), stream.end(),
                      [](const SliceRef &a, const SliceRef &b) {
                          return a.block != b.block ? a.block < b.block
                                                    : a.seq < b.seq;
                      });
            SectorCache &l2 = l2Slices_[s];
            SliceResult &res = slice_results[task];
            for (const auto &e : stream) {
                ++res.accesses;
                if (l2.access(e.sector, e.isWrite) == CacheOutcome::Hit)
                    continue;
                ++res.misses;
                // Write-allocate-no-fetch: a missing store dirties the
                // sector and reaches DRAM later as a write-back
                // (counted via the slice eviction/drain statistics).
                if (!e.isWrite)
                    ++res.dramRead;
            }
        });

    // Fixed-order integer merges: identical for every schedule.
    for (const auto &r : unit_results) {
        state.sampledL1Accesses += r.l1Accesses;
        state.sampledL1Misses += r.l1Misses;
        state.sampledStreamMisses += r.dramRead;
    }
    for (const auto &res : slice_results) {
        state.sampledL2Accesses += res.accesses;
        state.sampledL2Misses += res.misses;
        state.sampledSliceDramRead += res.dramRead;
        state.sampledL2SliceMax =
            std::max(state.sampledL2SliceMax, res.accesses);
    }
}

const LaunchStats &
Device::finishLaunch(LaunchState &state)
{
    canonicalizeTraces(state);
    if (!config_.fastForward) {
        replayHierarchy(state);
        return endLaunch(state);
    }

    state.ffDigest = launchDigest(state);
    if (ff_.detector.steady()) {
        FastForwardRecord &rec = ff_.window[ff_.detector.phase()];
        if (state.ffDigest == rec.digest) {
            // The launch is, bit for bit, the expected phase of the
            // established window, and the hierarchy state is frozen at
            // the boundary the window was proven against — replay
            // would reproduce the recorded stats exactly.
            if (!rec.hasTrace)
                captureWindowTrace(state, rec);
            return synthesizeLaunch(rec);
        }
        // The workload left its loop mid-window: bring the hierarchy
        // to the state a never-fast-forwarded run would be in, then
        // fall back to full replay and start detecting afresh.
        ++ff_.summary.divergences;
        ffCatchUp(ff_.detector.phase());
        ff_.detector.reset();
        ff_.window.clear();
        ff_.summary.window = 0;
    }
    replayHierarchy(state);
    return endLaunch(state);
}

std::uint64_t
Device::launchDigest(const LaunchState &state) const
{
    std::uint64_t h = kFnvOffset;
    for (const char c : state.desc.name)
        h = mix64(h, static_cast<unsigned char>(c));
    h = mix64(h, state.desc.name.size());
    h = mix64(h, static_cast<std::uint64_t>(state.desc.regsPerThread));
    h = mix64(h,
              static_cast<std::uint64_t>(state.desc.sharedBytesPerBlock));
    h = mix64(h, state.desc.serialOrdered ? 1 : 0);
    h = mix64(h, (static_cast<std::uint64_t>(state.grid.x) << 32) |
                     state.grid.y);
    h = mix64(h, (static_cast<std::uint64_t>(state.grid.z) << 32) |
                     state.block.x);
    h = mix64(h, (static_cast<std::uint64_t>(state.block.y) << 32) |
                     state.block.z);
    h = mix64(h, state.blockSampleStride);
    h = mix64(h, state.sampledBlocks);
    for (int cls = 0; cls < kNumOpClasses; ++cls)
        h = mix64(h, state.totals.warpInsts[cls]);
    h = mix64(h, state.totals.threadInsts);
    h = mix64(h, state.totals.activeLanes);
    h = mix64(h, state.totalWarps);
    h = mix64(h, state.sampledWarps);
    h = mix64(h, state.sampledMemInsts);
    for (std::uint64_t i = 0; i < state.sampledBlocks; ++i) {
        const TraceArena &arena = blockArenas_[i];
        h = mix64(h, arena.insts.size());
        for (const TraceInst &inst : arena.insts)
            h = mix64(h,
                      (static_cast<std::uint64_t>(inst.sectorCount)
                       << 8) |
                          static_cast<std::uint64_t>(inst.kind));
        h = mix64(h, arena.sectors.size());
        for (const std::uint64_t sector : arena.sectors)
            h = mix64(h, sector);
    }
    return h;
}

std::uint64_t
Device::hierarchyTagDigest() const
{
    std::uint64_t h = kFnvOffset;
    for (const auto &sb : streamBuffers_)
        h = sb.stateDigest(h);
    for (const auto &slice : l2Slices_)
        h = slice.stateDigest(h);
    return h;
}

void
Device::recordFullLaunch(const LaunchState &state,
                         const LaunchStats &stats,
                         const AuditInputs &live)
{
    ++ff_.summary.replayedLaunches;
    FastForwardRecord rec;
    rec.digest = state.ffDigest;
    rec.stats = stats;
    rec.live = live;
    ff_.history.push_back(std::move(rec));
    if (ff_.history.size() >
        static_cast<std::size_t>(ff_.detector.maxWindow()))
        ff_.history.erase(ff_.history.begin());

    const std::uint64_t tag = hierarchyTagDigest();
    const int w = ff_.detector.recordFull(state.ffDigest, tag);
    if (w > 0) {
        // The last w history records are the window, oldest first =
        // phase 0. Their traces were consumed by their own replays;
        // captureWindowTrace() snapshots them lazily during the first
        // steady cycle, where the identical trace is live again.
        ff_.window.assign(
            std::make_move_iterator(ff_.history.end() - w),
            std::make_move_iterator(ff_.history.end()));
        ff_.history.clear();
        ++ff_.summary.windowsEstablished;
        ff_.summary.window = w;
    }
}

void
Device::captureWindowTrace(const LaunchState &state,
                           FastForwardRecord &rec)
{
    rec.sectors.clear();
    rec.insts.clear();
    rec.blocks.clear();
    for (std::uint64_t o = 0; o < state.sampledBlocks; ++o) {
        const TraceArena &arena = blockArenas_[o];
        const auto inst_begin =
            static_cast<std::uint32_t>(rec.insts.size());
        const auto sector_base =
            static_cast<std::uint32_t>(rec.sectors.size());
        rec.sectors.insert(rec.sectors.end(), arena.sectors.begin(),
                           arena.sectors.end());
        for (const TraceInst &inst : arena.insts)
            rec.insts.push_back(TraceInst{
                inst.sectorBegin + sector_base, inst.sectorCount,
                inst.kind});
        rec.blocks.push_back(FastForwardRecord::BlockSpan{
            o * state.blockSampleStride, inst_begin,
            static_cast<std::uint32_t>(rec.insts.size())});
    }
    rec.hasTrace = true;
}

const LaunchStats &
Device::synthesizeLaunch(const FastForwardRecord &rec)
{
    LaunchStats stats = rec.stats;
    // Fault site 'stats-corrupt' stays live on the synthesized path so
    // fault-injection campaigns exercise the auditor here too.
    if (config_.fault.shouldFail("stats-corrupt"))
        stats.l1Misses = stats.l1Accesses + 1;
    AuditInputs live = rec.live;
    auditLaunchStats(stats, config_, &live);

    ++ff_.summary.skippedLaunches;
    ff_.detector.advance();
    elapsedSeconds_ += stats.timing.seconds;
    reserveLaunchRecord();
    launches_.push_back(std::move(stats));
    return launches_.back();
}

void
Device::ffCatchUp(int diverged_phase)
{
    for (int p = 0; p < diverged_phase; ++p) {
        // Mimic each skipped launch's boundary effects exactly: L1s
        // flushed at beginLaunch, the trace replayed, dirty L2 sectors
        // drained at endLaunch (stream buffers carry no boundary op).
        for (auto &l1 : l1s_)
            l1.flush();
        replayStoredTrace(ff_.window[p]);
        for (auto &slice : l2Slices_)
            slice.drainDirty();
    }
    if (diverged_phase > 0) {
        // Restore the clean-boundary invariants beginLaunch had
        // established for the current launch before the catch-up
        // replays polluted them.
        for (auto &l1 : l1s_) {
            l1.flush();
            l1.resetStats();
        }
        for (auto &slice : l2Slices_)
            slice.resetStats();
    }
}

void
Device::replayStoredTrace(const FastForwardRecord &rec)
{
    const int units = config_.resolvedL1Units();
    const int slices = config_.resolvedL2Slices();
    std::vector<std::vector<SliceRef>> per_slice(slices);
    for (const auto &bs : rec.blocks) {
        const int u = static_cast<int>(
            bs.block % static_cast<std::uint64_t>(units));
        SectorCache &l1 = l1s_[u];
        SectorCache &stream_buffer = streamBuffers_[u];
        std::uint32_t seq = 0;
        for (std::uint32_t i = bs.instBegin; i < bs.instEnd; ++i) {
            const TraceInst &wi = rec.insts[i];
            const std::uint64_t *sectors =
                rec.sectors.data() + wi.sectorBegin;
            if (wi.kind == AccessKind::StreamLoad) {
                for (std::uint32_t j = 0; j < wi.sectorCount; ++j)
                    stream_buffer.access(sectors[j], false);
                continue;
            }
            const bool is_write = wi.kind == AccessKind::Store;
            for (std::uint32_t j = 0; j < wi.sectorCount; ++j) {
                const std::uint64_t sector = sectors[j];
                if (l1.access(sector, is_write) == CacheOutcome::Hit)
                    continue;
                const int s =
                    l2SliceIndex(sector, lineShift_, slices);
                per_slice[s].push_back(SliceRef{
                    bs.block,
                    l2SliceLocalAddr(sector, lineShift_, slices),
                    seq++, is_write});
            }
        }
    }
    // Blocks were walked in ascending order and seq ascends within a
    // block, so each per-slice stream is already in (block, seq)
    // order — the order the live stage-2 sort establishes.
    for (int s = 0; s < slices; ++s) {
        SectorCache &l2 = l2Slices_[s];
        for (const auto &e : per_slice[s])
            l2.access(e.sector, e.isWrite);
    }
}

void
Device::reserveLaunchRecord()
{
    if (launches_.size() == launches_.capacity())
        launches_.reserve(
            std::max<std::size_t>(256, launches_.capacity() * 2));
}

const LaunchStats &
Device::endLaunch(LaunchState &state)
{
    LaunchStats stats;
    stats.desc = state.desc;
    stats.grid = state.grid;
    stats.block = state.block;
    stats.counts = state.totals;
    stats.totalWarps = state.totalWarps;
    stats.sampledWarps = state.sampledWarps;
    stats.occupancyFraction = state.occ.occupancy;
    stats.residentWarpsPerSm = state.occ.warpsPerSm;

    // Extrapolate sampled traffic to the whole launch. The scale factor
    // is the ratio of total to sampled warp-level memory instructions.
    const std::uint64_t total_mem_insts = state.totals.memInsts();
    double scale = 1.0;
    if (state.sampledMemInsts > 0) {
        scale = static_cast<double>(total_mem_insts) /
                static_cast<double>(state.sampledMemInsts);
        stats.sampleCoverage = std::min(
            1.0, static_cast<double>(state.sampledMemInsts) /
                     std::max<std::uint64_t>(1, total_mem_insts));
    } else if (total_mem_insts > 0) {
        // No memory instruction fell into a sampled block (e.g. only
        // late blocks touch memory): the extrapolation has nothing to
        // scale from and reports zero traffic.
        stats.sampleCoverage = 0.0;
        warn("kernel '", state.desc.name, "': ", total_mem_insts,
             " warp-level memory instructions but none were sampled; "
             "memory traffic extrapolates to zero (raise "
             "DeviceConfig::maxSampledWarps)");
    }
    auto scaled = [scale](std::uint64_t v) {
        return static_cast<std::uint64_t>(
            static_cast<double>(v) * scale + 0.5);
    };
    stats.l1Accesses = scaled(state.sampledL1Accesses);
    stats.l1Misses = scaled(state.sampledL1Misses);
    stats.l2Accesses = scaled(state.sampledL2Accesses);
    stats.l2Misses = scaled(state.sampledL2Misses);
    stats.l2SliceMaxAccesses = scaled(state.sampledL2SliceMax);
    stats.dramReadSectors = scaled(state.sampledStreamMisses +
                                   state.sampledSliceDramRead);
    // DRAM writes are the L2 write-backs: dirty evictions during the
    // launch plus the dirty sectors drained at the kernel boundary.
    std::uint64_t writeback_sectors = 0;
    for (auto &slice : l2Slices_)
        writeback_sectors +=
            slice.stats().writebackSectors + slice.drainDirty();
    stats.dramWriteSectors = scaled(writeback_sectors);

    TimingInputs in;
    in.counts = state.totals;
    in.numBlocks = state.grid.count();
    in.warpsPerBlock = state.warpsPerBlock;
    in.residentWarpsPerSm = state.occ.warpsPerSm;
    in.residentBlocksPerSm = state.occ.blocksPerSm;
    in.l1Accesses = stats.l1Accesses;
    in.l1Misses = stats.l1Misses;
    in.l2Accesses = stats.l2Accesses;
    in.l2Misses = stats.l2Misses;
    in.busiestL2SliceAccesses = stats.l2SliceMaxAccesses;
    in.dramReadSectors = stats.dramReadSectors;
    in.dramWriteSectors = stats.dramWriteSectors;

    const TimingOutputs out = evaluateTiming(config_, in);
    stats.timing = out.timing;
    stats.metrics = out.metrics;

    // Fault site 'stats-corrupt': silently break a conservation law in
    // the record about to be published. The auditor below must catch
    // it — this is how CI proves corruption is detected, not shipped.
    if (config_.fault.shouldFail("stats-corrupt"))
        stats.l1Misses = stats.l1Accesses + 1;

    AuditInputs live;
    live.sampledMemInsts = state.sampledMemInsts;
    live.sampledL1Accesses = state.sampledL1Accesses;
    live.sampledL1Misses = state.sampledL1Misses;
    live.sampledL2Accesses = state.sampledL2Accesses;
    live.sampledL2Misses = state.sampledL2Misses;
    live.sampledL2SliceMax = state.sampledL2SliceMax;
    live.sampledStreamMisses = state.sampledStreamMisses;
    live.sampledSliceDramRead = state.sampledSliceDramRead;
    live.writebackSectors = writeback_sectors;
    live.scale = scale;
    // Throws IntegrityError before the record is pushed: a launch that
    // fails its audit leaves no trace in the device history.
    auditLaunchStats(stats, config_, &live);

    elapsedSeconds_ += stats.timing.seconds;
    reserveLaunchRecord();
    launches_.push_back(std::move(stats));
    if (config_.fastForward)
        recordFullLaunch(state, launches_.back(), live);
    return launches_.back();
}

} // namespace cactus::gpu
