#include "gpu/device.hh"

#include <algorithm>
#include <bit>

#include "common/error.hh"
#include "common/host_alloc.hh"
#include "common/logging.hh"
#include "gpu/audit.hh"

namespace cactus {

/**
 * Weak fallback for binaries that do not link the cactus_hostalign
 * OBJECT library: no arena exists, so traced host addresses translate
 * as themselves and the first-touch frame mapping alone absorbs
 * placement differences.
 */
__attribute__((weak)) bool
canonicalRange(const void *, CanonicalRange &)
{
    return false;
}

} // namespace cactus

namespace cactus::gpu {

namespace {

/** One L1 miss bound for an L2 slice, with its global ordering key.
 *  Slices replay their merged streams in ascending (block, seq) order,
 *  which is the order a monolithic in-order replay would present. */
struct SliceRef
{
    std::uint64_t block;  ///< Linear block id of the emitting block.
    std::uint64_t sector; ///< Slice-local sector address
                          ///< (l2SliceLocalAddr of the miss address).
    std::uint32_t seq;    ///< Emission ordinal within the block.
    bool isWrite;
};

} // namespace

Device::Device(DeviceConfig cfg)
    : config_(std::move(cfg)),
      coalescer_(config_.sectorBytes),
      lineShift_(std::countr_zero(
          static_cast<unsigned>(config_.lineBytes)))
{
    if (config_.fault.shouldFail("alloc"))
        throw BenchmarkError(
            "injected fault at site 'alloc': device memory-hierarchy "
            "allocation failed");
    const int units = config_.resolvedL1Units();
    l1s_.reserve(units);
    streamBuffers_.reserve(units);
    for (int u = 0; u < units; ++u) {
        l1s_.emplace_back(config_.l1SizeBytes, config_.l1Assoc,
                          config_.lineBytes, config_.sectorBytes);
        streamBuffers_.emplace_back(8 * 1024, 4, config_.lineBytes,
                                    config_.sectorBytes);
    }
    const int slices = config_.resolvedL2Slices();
    l2Slices_.reserve(slices);
    for (int s = 0; s < slices; ++s)
        l2Slices_.emplace_back(config_.l2SliceBytes(), config_.l2Assoc,
                               config_.lineBytes, config_.sectorBytes);
}

void
Device::clearHistory()
{
    launches_.clear();
    elapsedSeconds_ = 0.0;
}

void
Device::setHostThreads(int n)
{
    config_.hostThreads = n;
    const int resolved =
        n > 0 ? n : DeviceConfig::defaultHostThreads();
    if (pool_ && pool_->workers() != resolved)
        pool_.reset();
}

void
Device::flushCaches()
{
    for (auto &l1 : l1s_)
        l1.flush();
    for (auto &sb : streamBuffers_)
        sb.flush();
    for (auto &slice : l2Slices_)
        slice.flush();
    // Also restart the canonical address numbering: the next cold run
    // re-derives it from its own first-touch order, so two cold runs
    // of the same access pattern translate identically even when the
    // allocator moved the underlying buffers.
    lineFrames_.clear();
    nextFrame_ = 0;
}

Device::LaunchState
Device::beginLaunch(const KernelDesc &desc, Dim3 grid, Dim3 block)
{
    // The launch boundary is the device's cancellation point: a
    // watchdog-cancelled benchmark unwinds here, between kernels,
    // leaving no launch half-recorded.
    if (config_.cancel.requested())
        throw TimeoutError("kernel '" + desc.name +
                           "' not launched: cancellation requested "
                           "(watchdog deadline exceeded)");
    if (config_.fault.shouldFail("launch"))
        throw BenchmarkError("injected fault at site 'launch': kernel '" +
                             desc.name + "' failed to launch");
    if (grid.empty())
        fatal("kernel '", desc.name, "' launched with an empty grid");
    if (block.empty())
        fatal("kernel '", desc.name, "' launched with an empty block");

    LaunchState state;
    state.desc = desc;
    state.grid = grid;
    state.block = block;
    state.warpsPerBlock = static_cast<int>(
        (block.count() + config_.warpSize - 1) / config_.warpSize);
    state.occ = computeOccupancy(config_, desc, block);

    const std::uint64_t total_warps = grid.count() * state.warpsPerBlock;
    const std::uint64_t max_sampled =
        std::max<std::uint64_t>(1, config_.maxSampledWarps);
    if (total_warps <= max_sampled) {
        state.blockSampleStride = 1;
    } else {
        const std::uint64_t sampled_blocks = std::max<std::uint64_t>(
            1, max_sampled / state.warpsPerBlock);
        state.blockSampleStride =
            std::max<std::uint64_t>(1, grid.count() / sampled_blocks);
    }
    state.sampledBlockBudget = static_cast<std::int64_t>(
        std::max<std::uint64_t>(1, max_sampled / state.warpsPerBlock));

    // L1 contents do not survive kernel boundaries; L2 slices do.
    for (auto &l1 : l1s_) {
        l1.flush();
        l1.resetStats();
    }
    for (auto &slice : l2Slices_)
        slice.resetStats();
    return state;
}

int
Device::resolveWorkerCount(std::uint64_t num_blocks) const
{
    int n = config_.hostThreads;
    if (n <= 0)
        n = DeviceConfig::defaultHostThreads();
    const std::uint64_t cap = std::max<std::uint64_t>(1, num_blocks);
    return static_cast<int>(
        std::min<std::uint64_t>(static_cast<std::uint64_t>(n), cap));
}

WorkerPool &
Device::workerPool()
{
    if (!pool_) {
        int n = config_.hostThreads;
        if (n <= 0)
            n = DeviceConfig::defaultHostThreads();
        pool_ = std::make_unique<WorkerPool>(n);
    }
    return *pool_;
}

bool
Device::blockIsSampled(const LaunchState &state, std::uint64_t b)
{
    if (b % state.blockSampleStride != 0)
        return false;
    // Candidates appear in ascending block order, one every stride
    // blocks, and the first sampledBlockBudget of them are accepted —
    // exactly the blocks a serial in-order sweep with a decrementing
    // budget would sample.
    return static_cast<std::int64_t>(b / state.blockSampleStride) <
           state.sampledBlockBudget;
}

std::uint64_t
Device::sampledBlockCount(const LaunchState &state,
                          std::uint64_t num_blocks)
{
    const std::uint64_t candidates =
        (num_blocks + state.blockSampleStride - 1) /
        state.blockSampleStride;
    return std::min(candidates,
                    static_cast<std::uint64_t>(state.sampledBlockBudget));
}

Device::WorkerScratch
Device::makeScratch() const
{
    WorkerScratch ws;
    ws.laneCounters.resize(config_.warpSize);
    ws.laneTraces.resize(config_.warpSize);
    return ws;
}

void
Device::beginWarp(WorkerScratch &ws, bool sampled)
{
    for (auto &c : ws.laneCounters)
        c = LaneCounters{};
    if (sampled) {
        for (auto &t : ws.laneTraces)
            t.clear();
    }
}

void
Device::countWarp(WorkerScratch &ws, int lanes, bool sampled)
{
    WarpCounts wc;
    for (int cls = 0; cls < kNumOpClasses; ++cls) {
        std::uint64_t max_count = 0;
        for (int lane = 0; lane < lanes; ++lane)
            max_count = std::max(max_count,
                                 ws.laneCounters[lane].counts[cls]);
        wc.warpInsts[cls] = max_count;
    }
    for (int lane = 0; lane < lanes; ++lane)
        wc.threadInsts += ws.laneCounters[lane].total();
    wc.activeLanes = static_cast<std::uint32_t>(lanes);

    ws.totals.accumulate(wc);
    ++ws.totalWarps;
    if (sampled)
        ++ws.sampledWarps;
}

void
Device::mergeScratch(LaunchState &state, const WorkerScratch &ws)
{
    // All merged quantities are integer sums, so the merge is exact and
    // independent of how blocks were distributed across workers.
    state.totals.accumulate(ws.totals);
    state.totalWarps += ws.totalWarps;
    state.sampledWarps += ws.sampledWarps;
}

void
Device::replayHierarchy(
    LaunchState &state,
    std::vector<std::vector<CoalescedAccess>> &block_traces)
{
    const int units = config_.resolvedL1Units();
    const int slices = config_.resolvedL2Slices();

    // --- Canonical-address pre-pass --------------------------------------
    // Rewrite every traced host address into the canonical device
    // address space in two steps. First the host pointer is mapped to
    // its arena logical address (see common/host_alloc.hh) — logical
    // bases are never recycled, so a freed-and-reallocated buffer can
    // never alias a dead buffer's cached lines. Then each logical line
    // gets a sequential frame in first-touch order; the pass is serial
    // and walks blocks in ascending order, so the mapping — and
    // therefore every set index, slice hash, and LRU decision
    // downstream — depends only on the access pattern, never on where
    // the host allocator placed the workload's buffers.
    const std::uint64_t offset_mask = config_.lineBytes - 1;
    CanonicalRange range{0, 0, 0};
    std::uint64_t last_line = ~std::uint64_t{0};
    std::uint64_t last_frame = 0;
    for (auto &trace : block_traces) {
        for (auto &wi : trace) {
            for (auto &sector : wi.sectors) {
                std::uint64_t logical = sector;
                if (sector >= range.begin && sector < range.end) {
                    logical =
                        range.logicalBase + (sector - range.begin);
                } else if (canonicalRange(
                               reinterpret_cast<const void *>(sector),
                               range)) {
                    logical =
                        range.logicalBase + (sector - range.begin);
                } else {
                    range = CanonicalRange{0, 0, 0};
                }
                const std::uint64_t line = logical >> lineShift_;
                if (line != last_line) {
                    const auto [it, inserted] =
                        lineFrames_.try_emplace(line, nextFrame_);
                    if (inserted)
                        ++nextFrame_;
                    last_line = line;
                    last_frame = it->second;
                }
                sector = (last_frame << lineShift_) |
                         (logical & offset_mask);
            }
        }
    }

    // Deterministic round-robin block-to-SM assignment: sampled block
    // ordinal o is block o * stride, living on SM (o * stride) % units.
    // Ordinals are gathered in ascending order, so every unit replays
    // its blocks in ascending block order.
    std::vector<std::vector<std::uint32_t>> unit_ordinals(units);
    for (std::uint32_t o = 0;
         o < static_cast<std::uint32_t>(block_traces.size()); ++o) {
        const std::uint64_t b = o * state.blockSampleStride;
        unit_ordinals[b % units].push_back(o);
        state.sampledMemInsts += block_traces[o].size();
    }
    std::vector<int> active_units;
    for (int u = 0; u < units; ++u)
        if (!unit_ordinals[u].empty())
            active_units.push_back(u);

    // --- Stage 1: per-SM L1 replay --------------------------------------
    // Each SM's L1 and stream buffer see only that SM's blocks, so
    // units replay concurrently; L1 misses are emitted as per-slice
    // streams tagged with (block, seq) ordering keys.
    struct UnitResult
    {
        std::uint64_t l1Accesses = 0;
        std::uint64_t l1Misses = 0;
        std::uint64_t dramRead = 0; ///< Stream-buffer misses.
        std::vector<std::vector<SliceRef>> perSlice;
    };
    std::vector<UnitResult> unit_results(active_units.size());
    for (auto &r : unit_results)
        r.perSlice.resize(slices);

    workerPool().run(
        active_units.size(), [&](std::uint64_t task, int) {
            const int u = active_units[task];
            UnitResult &r = unit_results[task];
            SectorCache &l1 = l1s_[u];
            SectorCache &stream_buffer = streamBuffers_[u];
            for (const std::uint32_t o : unit_ordinals[u]) {
                const std::uint64_t b = o * state.blockSampleStride;
                std::uint32_t seq = 0;
                for (const auto &wi : block_traces[o]) {
                    // Streaming (evict-first) loads run through the
                    // SM's dedicated buffer: within-line spatial reuse
                    // is captured, but the stream never displaces
                    // reused data from L1/L2.
                    if (wi.kind == AccessKind::StreamLoad) {
                        for (const std::uint64_t sector : wi.sectors) {
                            if (stream_buffer.access(sector, false) !=
                                CacheOutcome::Hit)
                                ++r.dramRead;
                        }
                        continue;
                    }
                    const bool is_write = wi.kind == AccessKind::Store;
                    for (const std::uint64_t sector : wi.sectors) {
                        ++r.l1Accesses;
                        if (l1.access(sector, is_write) ==
                            CacheOutcome::Hit)
                            continue;
                        ++r.l1Misses;
                        const int s = l2SliceIndex(sector, lineShift_,
                                                   slices);
                        r.perSlice[s].push_back(SliceRef{
                            b,
                            l2SliceLocalAddr(sector, lineShift_, slices),
                            seq++, is_write});
                    }
                }
            }
        });

    // --- Stage 2: per-slice L2 replay -----------------------------------
    // Slices cache disjoint addresses, so they replay concurrently;
    // each merges the streams aimed at it and replays in ascending
    // (block, seq) order — the schedule-independent reference order.
    std::vector<int> active_slices;
    for (int s = 0; s < slices; ++s) {
        for (const auto &r : unit_results) {
            if (!r.perSlice[s].empty()) {
                active_slices.push_back(s);
                break;
            }
        }
    }
    struct SliceResult
    {
        std::uint64_t accesses = 0;
        std::uint64_t misses = 0;
        std::uint64_t dramRead = 0;
    };
    std::vector<SliceResult> slice_results(active_slices.size());

    workerPool().run(
        active_slices.size(), [&](std::uint64_t task, int) {
            const int s = active_slices[task];
            std::size_t total = 0;
            for (const auto &r : unit_results)
                total += r.perSlice[s].size();
            std::vector<SliceRef> stream;
            stream.reserve(total);
            for (const auto &r : unit_results)
                stream.insert(stream.end(), r.perSlice[s].begin(),
                              r.perSlice[s].end());
            std::sort(stream.begin(), stream.end(),
                      [](const SliceRef &a, const SliceRef &b) {
                          return a.block != b.block ? a.block < b.block
                                                    : a.seq < b.seq;
                      });
            SectorCache &l2 = l2Slices_[s];
            SliceResult &res = slice_results[task];
            for (const auto &e : stream) {
                ++res.accesses;
                if (l2.access(e.sector, e.isWrite) == CacheOutcome::Hit)
                    continue;
                ++res.misses;
                // Write-allocate-no-fetch: a missing store dirties the
                // sector and reaches DRAM later as a write-back
                // (counted via the slice eviction/drain statistics).
                if (!e.isWrite)
                    ++res.dramRead;
            }
        });

    // Fixed-order integer merges: identical for every schedule.
    for (const auto &r : unit_results) {
        state.sampledL1Accesses += r.l1Accesses;
        state.sampledL1Misses += r.l1Misses;
        state.sampledStreamMisses += r.dramRead;
    }
    for (const auto &res : slice_results) {
        state.sampledL2Accesses += res.accesses;
        state.sampledL2Misses += res.misses;
        state.sampledSliceDramRead += res.dramRead;
        state.sampledL2SliceMax =
            std::max(state.sampledL2SliceMax, res.accesses);
    }
}

const LaunchStats &
Device::endLaunch(LaunchState &state)
{
    LaunchStats stats;
    stats.desc = state.desc;
    stats.grid = state.grid;
    stats.block = state.block;
    stats.counts = state.totals;
    stats.totalWarps = state.totalWarps;
    stats.sampledWarps = state.sampledWarps;
    stats.occupancyFraction = state.occ.occupancy;
    stats.residentWarpsPerSm = state.occ.warpsPerSm;

    // Extrapolate sampled traffic to the whole launch. The scale factor
    // is the ratio of total to sampled warp-level memory instructions.
    const std::uint64_t total_mem_insts = state.totals.memInsts();
    double scale = 1.0;
    if (state.sampledMemInsts > 0) {
        scale = static_cast<double>(total_mem_insts) /
                static_cast<double>(state.sampledMemInsts);
        stats.sampleCoverage = std::min(
            1.0, static_cast<double>(state.sampledMemInsts) /
                     std::max<std::uint64_t>(1, total_mem_insts));
    } else if (total_mem_insts > 0) {
        // No memory instruction fell into a sampled block (e.g. only
        // late blocks touch memory): the extrapolation has nothing to
        // scale from and reports zero traffic.
        stats.sampleCoverage = 0.0;
        warn("kernel '", state.desc.name, "': ", total_mem_insts,
             " warp-level memory instructions but none were sampled; "
             "memory traffic extrapolates to zero (raise "
             "DeviceConfig::maxSampledWarps)");
    }
    auto scaled = [scale](std::uint64_t v) {
        return static_cast<std::uint64_t>(
            static_cast<double>(v) * scale + 0.5);
    };
    stats.l1Accesses = scaled(state.sampledL1Accesses);
    stats.l1Misses = scaled(state.sampledL1Misses);
    stats.l2Accesses = scaled(state.sampledL2Accesses);
    stats.l2Misses = scaled(state.sampledL2Misses);
    stats.l2SliceMaxAccesses = scaled(state.sampledL2SliceMax);
    stats.dramReadSectors = scaled(state.sampledStreamMisses +
                                   state.sampledSliceDramRead);
    // DRAM writes are the L2 write-backs: dirty evictions during the
    // launch plus the dirty sectors drained at the kernel boundary.
    std::uint64_t writeback_sectors = 0;
    for (auto &slice : l2Slices_)
        writeback_sectors +=
            slice.stats().writebackSectors + slice.drainDirty();
    stats.dramWriteSectors = scaled(writeback_sectors);

    TimingInputs in;
    in.counts = state.totals;
    in.numBlocks = state.grid.count();
    in.warpsPerBlock = state.warpsPerBlock;
    in.residentWarpsPerSm = state.occ.warpsPerSm;
    in.residentBlocksPerSm = state.occ.blocksPerSm;
    in.l1Accesses = stats.l1Accesses;
    in.l1Misses = stats.l1Misses;
    in.l2Accesses = stats.l2Accesses;
    in.l2Misses = stats.l2Misses;
    in.busiestL2SliceAccesses = stats.l2SliceMaxAccesses;
    in.dramReadSectors = stats.dramReadSectors;
    in.dramWriteSectors = stats.dramWriteSectors;

    const TimingOutputs out = evaluateTiming(config_, in);
    stats.timing = out.timing;
    stats.metrics = out.metrics;

    // Fault site 'stats-corrupt': silently break a conservation law in
    // the record about to be published. The auditor below must catch
    // it — this is how CI proves corruption is detected, not shipped.
    if (config_.fault.shouldFail("stats-corrupt"))
        stats.l1Misses = stats.l1Accesses + 1;

    AuditInputs live;
    live.sampledMemInsts = state.sampledMemInsts;
    live.sampledL1Accesses = state.sampledL1Accesses;
    live.sampledL1Misses = state.sampledL1Misses;
    live.sampledL2Accesses = state.sampledL2Accesses;
    live.sampledL2Misses = state.sampledL2Misses;
    live.sampledL2SliceMax = state.sampledL2SliceMax;
    live.sampledStreamMisses = state.sampledStreamMisses;
    live.sampledSliceDramRead = state.sampledSliceDramRead;
    live.writebackSectors = writeback_sectors;
    live.scale = scale;
    // Throws IntegrityError before the record is pushed: a launch that
    // fails its audit leaves no trace in the device history.
    auditLaunchStats(stats, config_, &live);

    elapsedSeconds_ += stats.timing.seconds;
    launches_.push_back(std::move(stats));
    return launches_.back();
}

} // namespace cactus::gpu
