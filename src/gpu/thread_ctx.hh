/**
 * @file
 * ThreadCtx: the view one GPU thread (lane) has of the simulator. Kernel
 * bodies are ordinary C++ callables invoked once per thread; they perform
 * their computation on host memory and account for the dynamic
 * instructions they would execute on the device through this interface.
 *
 * Loads and stores are functional *and* instrumented: ld()/st() return or
 * write the value and record the byte address, which the simulator
 * coalesces per warp and replays through the cache hierarchy for sampled
 * warps. Arithmetic is accounted with fp32()/intOp()/sfu() bulk counters
 * so the functional math can stay ordinary C++ expressions.
 *
 * Execution-model contract (see DESIGN.md): kernels are written
 * thread-independent; block-level cooperation uses multi-kernel patterns
 * or atomics. Lanes of one warp always execute sequentially on one host
 * thread, but distinct blocks may run concurrently on a worker pool
 * (DeviceConfig::hostThreads), so the atomic operations take a lock
 * striped by target address when blocks execute in parallel — every
 * access to one address serializes on one stripe, so atomics stay
 * linearizable per address under any schedule, while atomics to
 * unrelated addresses proceed concurrently. Linearization makes
 * *integer* accumulation exact for any schedule; floating-point
 * addition commutes but does not associate, so kernels that accumulate
 * FP values across blocks (or consume atomic return values as store
 * indices) must declare KernelDesc::serial() to keep their results —
 * and everything data-dependent downstream — schedule-independent.
 */

#ifndef CACTUS_GPU_THREAD_CTX_HH
#define CACTUS_GPU_THREAD_CTX_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <type_traits>
#include <vector>

#include "common/logging.hh"
#include "gpu/types.hh"

namespace cactus::gpu {

class Device;

/** One-shot process-wide warning for schedule-dependent FP atomics
 *  reaching the parallel sweep (see the file comment). */
inline void
warnParallelFpAtomic()
{
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed))
        warn("floating-point atomic executed in a parallel block "
             "sweep; the accumulation order is schedule-dependent — "
             "mark the kernel KernelDesc::serial() to keep its "
             "results reproducible across hostThreads settings");
}

/**
 * Address-striped lock array linearizing ThreadCtx atomics across
 * concurrently executing blocks. A single device-wide mutex serializes
 * every worker of an atomic-heavy kernel (histogram, frontier push) on
 * one cache line; striping by target address keeps same-address
 * operations mutually exclusive — which is all linearizability needs —
 * while updates to distinct counters spread over independent stripes.
 */
class AtomicLockTable
{
  public:
    static constexpr int kStripes = 64;

    /** The stripe guarding @p addr. Addresses within one 16-byte
     *  granule share a stripe, so any torn-access window of a scalar
     *  update is covered by a single lock. */
    std::mutex &
    forAddr(std::uint64_t addr)
    {
        std::uint64_t h = addr >> 4;
        h *= 0x9E3779B97F4A7C15ull; // Fibonacci hash: mix low bits up.
        return stripes_[(h >> 58) & (kStripes - 1)];
    }

  private:
    std::array<std::mutex, kStripes> stripes_;
};

/** Per-thread execution context handed to kernel bodies. */
class ThreadCtx
{
  public:
    Dim3 threadIdx;
    Dim3 blockIdx;
    Dim3 blockDim;
    Dim3 gridDim;

    /** Flattened global thread id (x-major). */
    std::uint64_t
    globalId() const
    {
        const std::uint64_t threads_per_block = blockDim.count();
        const std::uint64_t block_linear =
            (static_cast<std::uint64_t>(blockIdx.z) * gridDim.y +
             blockIdx.y) * gridDim.x + blockIdx.x;
        const std::uint64_t thread_linear =
            (static_cast<std::uint64_t>(threadIdx.z) * blockDim.y +
             threadIdx.y) * blockDim.x + threadIdx.x;
        return block_linear * threads_per_block + thread_linear;
    }

    /** Lane index within the warp, [0, 32). */
    int lane() const { return lane_; }

    /** Whether this thread's warp records a full address trace. */
    bool sampled() const { return trace_ != nullptr; }

    // --- Global memory ----------------------------------------------------

    /** Functional global load: returns *p and accounts one load. */
    template <typename T>
    T
    ld(const T *p)
    {
        counters_->add(OpClass::LOAD, 1);
        record(reinterpret_cast<std::uint64_t>(p), sizeof(T),
               AccessKind::Load);
        return *p;
    }

    /**
     * Functional streaming load (__ldcs-style): like ld() but marked
     * evict-first, so the simulator routes it straight to DRAM instead
     * of letting a one-shot stream thrash the caches.
     */
    template <typename T>
    T
    ldStream(const T *p)
    {
        counters_->add(OpClass::LOAD, 1);
        record(reinterpret_cast<std::uint64_t>(p), sizeof(T),
               AccessKind::StreamLoad);
        return *p;
    }

    /** Functional global store: writes *p and accounts one store. */
    template <typename T>
    void
    st(T *p, T v)
    {
        counters_->add(OpClass::STORE, 1);
        record(reinterpret_cast<std::uint64_t>(p), sizeof(T),
               AccessKind::Store);
        *p = v;
    }

    /**
     * Functional atomic add returning the old value. Linearized across
     * concurrently executing blocks via the address-striped atomic
     * locks; within one block, lanes already execute sequentially.
     */
    template <typename T>
    T
    atomicAdd(T *p, T v)
    {
        counters_->add(OpClass::ATOMIC, 1);
        const auto addr = reinterpret_cast<std::uint64_t>(p);
        record(addr, sizeof(T), AccessKind::Atomic);
        if constexpr (std::is_floating_point_v<T>) {
            // FP addition does not associate, so the accumulation
            // order — and hence the sum — would depend on the host
            // schedule. Kernels doing this must run serial-ordered.
            if (atomicLocks_)
                warnParallelFpAtomic();
        }
        const auto guard = lockAtomics(addr);
        T old = *p;
        *p = old + v;
        return old;
    }

    /** Atomic max returning the old value. */
    template <typename T>
    T
    atomicMax(T *p, T v)
    {
        counters_->add(OpClass::ATOMIC, 1);
        const auto addr = reinterpret_cast<std::uint64_t>(p);
        record(addr, sizeof(T), AccessKind::Atomic);
        const auto guard = lockAtomics(addr);
        T old = *p;
        if (v > old)
            *p = v;
        return old;
    }

    /** Atomic compare-and-swap returning the old value. */
    template <typename T>
    T
    atomicCAS(T *p, T expected, T desired)
    {
        counters_->add(OpClass::ATOMIC, 1);
        const auto addr = reinterpret_cast<std::uint64_t>(p);
        record(addr, sizeof(T), AccessKind::Atomic);
        const auto guard = lockAtomics(addr);
        T old = *p;
        if (old == expected)
            *p = desired;
        return old;
    }

    // --- Arithmetic accounting ---------------------------------------------

    /** Account n FP32 instructions (an FMA counts as one). */
    void fp32(std::uint64_t n = 1) { counters_->add(OpClass::FP32, n); }

    /** Account n integer ALU instructions (address math, loop control). */
    void intOp(std::uint64_t n = 1) { counters_->add(OpClass::INT, n); }

    /** Account n special-function instructions (exp, rsqrt, sin...). */
    void sfu(std::uint64_t n = 1) { counters_->add(OpClass::SFU, n); }

    /** Account n branch instructions. */
    void branch(std::uint64_t n = 1) { counters_->add(OpClass::BRANCH, n); }

    /** Account a block-wide barrier. */
    void sync(std::uint64_t n = 1) { counters_->add(OpClass::SYNC, n); }

    /** Account n shared-memory accesses (modeled, not simulated). */
    void shared(std::uint64_t n = 1) { counters_->add(OpClass::SHARED, n); }

  private:
    friend class Device;

    void
    record(std::uint64_t addr, std::uint32_t size, AccessKind kind)
    {
        if (!trace_)
            return;
        MemAccess acc;
        acc.addr = addr;
        acc.size = size;
        acc.kind = kind;
        acc.index = static_cast<std::uint32_t>(trace_->size());
        trace_->push_back(acc);
    }

    /** Lock the stripe guarding @p addr when blocks run in parallel;
     *  a no-op (empty lock) on the serial path, where atomicLocks_ is
     *  null and plain read-modify-write is already linearizable. */
    std::unique_lock<std::mutex>
    lockAtomics(std::uint64_t addr)
    {
        return atomicLocks_
            ? std::unique_lock<std::mutex>(atomicLocks_->forAddr(addr))
            : std::unique_lock<std::mutex>();
    }

    LaneCounters *counters_ = nullptr;
    std::vector<MemAccess> *trace_ = nullptr; ///< Null if not sampled.
    /** Striped atomic locks; non-null only under parallel execution. */
    AtomicLockTable *atomicLocks_ = nullptr;
    int lane_ = 0;
};

} // namespace cactus::gpu

#endif // CACTUS_GPU_THREAD_CTX_HH
