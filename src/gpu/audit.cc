#include "gpu/audit.hh"

#include <cmath>
#include <string>

#include "common/error.hh"

namespace cactus::gpu {

namespace {

/** Throw the auditor's verdict: the invariant is stated first as the
 *  law that should have held, then the observed values that broke it. */
[[noreturn]] void
violated(const LaunchStats &stats, const std::string &invariant,
         const std::string &observed)
{
    throw IntegrityError(stats.desc.name, invariant + " (" + observed + ")");
}

void
checkLe(const LaunchStats &stats, std::uint64_t lhs, std::uint64_t rhs,
        const char *law)
{
    if (lhs > rhs)
        violated(stats, law,
                 std::to_string(lhs) + " > " + std::to_string(rhs));
}

void
checkEq(const LaunchStats &stats, std::uint64_t lhs, std::uint64_t rhs,
        const char *law)
{
    if (lhs != rhs)
        violated(stats, law,
                 std::to_string(lhs) + " != " + std::to_string(rhs));
}

void
checkUnit(const LaunchStats &stats, double v, const char *law)
{
    if (!std::isfinite(v) || v < 0.0 || v > 1.0)
        violated(stats, law, "value " + std::to_string(v));
}

void
checkFiniteNonNegative(const LaunchStats &stats, double v,
                       const char *what)
{
    if (!std::isfinite(v) || v < 0.0)
        violated(stats, std::string(what) + " finite and >= 0",
                 "value " + std::to_string(v));
}

/** The extrapolation Device::endLaunch applies to sampled counters;
 *  duplicated here on purpose so the auditor is an independent witness
 *  rather than a call into the code it checks. */
std::uint64_t
scaledCounter(std::uint64_t v, double scale)
{
    return static_cast<std::uint64_t>(static_cast<double>(v) * scale +
                                      0.5);
}

} // namespace

void
auditLaunchStats(const LaunchStats &stats, const DeviceConfig &cfg,
                 const AuditInputs *live)
{
    // --- Launch geometry -------------------------------------------------
    if (stats.grid.empty() || stats.block.empty())
        violated(stats, "grid and block non-empty",
                 "grid " + std::to_string(stats.grid.count()) +
                     ", block " + std::to_string(stats.block.count()));
    const std::uint64_t warps_per_block =
        (stats.block.count() + cfg.warpSize - 1) / cfg.warpSize;
    checkEq(stats, stats.totalWarps,
            stats.grid.count() * warps_per_block,
            "totalWarps == gridBlocks * ceil(blockThreads / warpSize)");
    checkLe(stats, stats.sampledWarps, stats.totalWarps,
            "sampledWarps <= totalWarps");
    // A warp instruction bundles at most warpSize thread instructions.
    checkLe(stats, stats.counts.threadInsts,
            stats.counts.total() *
                static_cast<std::uint64_t>(cfg.warpSize),
            "threadInsts <= warpInsts * warpSize");

    // --- Hierarchy conservation ------------------------------------------
    // Sector traffic can only shrink on the way down: misses are a
    // subset of accesses at both levels, and every L1 miss is exactly
    // one L2 access (streaming loads bypass both caches). The latter
    // survives extrapolation because equal sampled counters scale to
    // equal published counters.
    checkLe(stats, stats.l1Misses, stats.l1Accesses,
            "l1Misses <= l1Accesses");
    checkEq(stats, stats.l2Accesses, stats.l1Misses,
            "l2Accesses == l1Misses");
    checkLe(stats, stats.l2Misses, stats.l2Accesses,
            "l2Misses <= l2Accesses");
    // The busiest slice carries at least its fair share of the total
    // and never more than all of it. The lower bound gets one sector
    // of rounding slack per slice: each side of the comparison was
    // rounded independently during extrapolation.
    checkLe(stats, stats.l2SliceMaxAccesses, stats.l2Accesses,
            "l2SliceMaxAccesses <= l2Accesses");
    const std::uint64_t slices =
        static_cast<std::uint64_t>(cfg.resolvedL2Slices());
    if (stats.l2Accesses >
        stats.l2SliceMaxAccesses * slices + slices)
        violated(stats,
                 "l2Accesses <= l2SliceMaxAccesses * numL2Slices "
                 "(+rounding)",
                 std::to_string(stats.l2Accesses) + " > " +
                     std::to_string(stats.l2SliceMaxAccesses) + " * " +
                     std::to_string(slices) + " + " +
                     std::to_string(slices));

    // --- Sampling and occupancy ------------------------------------------
    checkUnit(stats, stats.sampleCoverage, "sampleCoverage in [0, 1]");
    checkUnit(stats, stats.occupancyFraction,
              "occupancyFraction in [0, 1]");
    if (stats.residentWarpsPerSm < 0 ||
        stats.residentWarpsPerSm > cfg.maxWarpsPerSm)
        violated(stats, "residentWarpsPerSm in [0, maxWarpsPerSm]",
                 std::to_string(stats.residentWarpsPerSm) +
                     " outside [0, " +
                     std::to_string(cfg.maxWarpsPerSm) + "]");

    // --- Derived metrics and timing --------------------------------------
    // NaN here propagates straight into Figs. 2-9; every exported
    // column and every timing term must be finite and non-negative.
    const auto columns = stats.metrics.toVector();
    for (std::size_t i = 0; i < columns.size(); ++i)
        checkFiniteNonNegative(
            stats, columns[i],
            KernelMetrics::columnName(static_cast<int>(i)));
    checkUnit(stats, stats.metrics.l1HitRate, "l1HitRate in [0, 1]");
    checkUnit(stats, stats.metrics.l2HitRate, "l2HitRate in [0, 1]");
    checkFiniteNonNegative(stats, stats.timing.pureIssueCycles,
                           "timing.pureIssueCycles");
    checkFiniteNonNegative(stats, stats.timing.issueCycles,
                           "timing.issueCycles");
    checkFiniteNonNegative(stats, stats.timing.dramCycles,
                           "timing.dramCycles");
    checkFiniteNonNegative(stats, stats.timing.l2Cycles,
                           "timing.l2Cycles");
    checkFiniteNonNegative(stats, stats.timing.latencyCycles,
                           "timing.latencyCycles");
    checkFiniteNonNegative(stats, stats.timing.execCycles,
                           "timing.execCycles");
    checkFiniteNonNegative(stats, stats.timing.totalCycles,
                           "timing.totalCycles");
    checkFiniteNonNegative(stats, stats.timing.seconds,
                           "timing.seconds");
    if (stats.timing.totalCycles + 1e-9 < stats.timing.execCycles)
        violated(stats, "totalCycles >= execCycles",
                 std::to_string(stats.timing.totalCycles) + " < " +
                     std::to_string(stats.timing.execCycles));

    if (live == nullptr)
        return;

    // --- Sampled-counter replay contract ---------------------------------
    // Stage 1 (per-SM L1s) and stage 2 (per-slice L2s) must agree:
    // every L1 miss was handed to exactly one slice and replayed there
    // exactly once, and only L2 read misses (plus stream-buffer
    // misses, which bypass the caches entirely) reach DRAM as reads.
    checkLe(stats, live->sampledL1Misses, live->sampledL1Accesses,
            "sampled l1Misses <= l1Accesses");
    checkEq(stats, live->sampledL2Accesses, live->sampledL1Misses,
            "sampled l2Accesses == l1Misses");
    checkLe(stats, live->sampledL2Misses, live->sampledL2Accesses,
            "sampled l2Misses <= l2Accesses");
    checkLe(stats, live->sampledL2SliceMax, live->sampledL2Accesses,
            "sampled l2SliceMax <= l2Accesses");
    checkLe(stats, live->sampledSliceDramRead, live->sampledL2Misses,
            "sampled slice dramRead <= l2Misses");
    if (!std::isfinite(live->scale) || live->scale < 0.0)
        violated(stats, "extrapolation scale finite and >= 0",
                 "scale " + std::to_string(live->scale));

    // --- Extrapolation conservation --------------------------------------
    // Each published field must be exactly the deterministic scaling
    // of its sampled counterpart: any divergence means the record was
    // altered between replay and publication.
    const double s = live->scale;
    checkEq(stats, stats.l1Accesses,
            scaledCounter(live->sampledL1Accesses, s),
            "l1Accesses == scaled(sampled l1Accesses)");
    checkEq(stats, stats.l1Misses,
            scaledCounter(live->sampledL1Misses, s),
            "l1Misses == scaled(sampled l1Misses)");
    checkEq(stats, stats.l2Accesses,
            scaledCounter(live->sampledL2Accesses, s),
            "l2Accesses == scaled(sampled l2Accesses)");
    checkEq(stats, stats.l2Misses,
            scaledCounter(live->sampledL2Misses, s),
            "l2Misses == scaled(sampled l2Misses)");
    checkEq(stats, stats.l2SliceMaxAccesses,
            scaledCounter(live->sampledL2SliceMax, s),
            "l2SliceMaxAccesses == scaled(sampled l2SliceMax)");
    checkEq(stats, stats.dramReadSectors,
            scaledCounter(live->sampledStreamMisses +
                              live->sampledSliceDramRead,
                          s),
            "dramReadSectors == scaled(stream misses + slice reads)");
    checkEq(stats, stats.dramWriteSectors,
            scaledCounter(live->writebackSectors, s),
            "dramWriteSectors == scaled(writeback sectors)");
}

} // namespace cactus::gpu
