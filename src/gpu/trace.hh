/**
 * @file
 * Launch-trace export and import. The Cactus paper's future work plans
 * "instruction traces compatible with state-of-the-art GPU simulators
 * so that researchers can simulate Cactus workloads without requiring
 * access to a real GPU device"; this module provides exactly that for
 * the simulated runs: every kernel launch is serialized as one
 * JSON-lines record carrying the launch geometry, the per-class warp
 * instruction counts, the memory-hierarchy traffic and the timing, and
 * can be re-loaded for replay-style analysis without re-executing the
 * workload.
 */

#ifndef CACTUS_GPU_TRACE_HH
#define CACTUS_GPU_TRACE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "common/fault.hh"
#include "gpu/config.hh"
#include "gpu/metrics.hh"

namespace cactus::gpu {

/**
 * Serialize launches as JSON lines (one object per launch). Stops
 * early on a stream-write failure or an injected 'trace-write' fault
 * (see common/fault.hh), so the return value can be short.
 * @return Number of records written; callers that need the full trace
 *         must compare it against launches.size().
 */
std::size_t writeLaunchTrace(std::ostream &out,
                             const std::vector<LaunchStats> &launches,
                             const FaultInjector &fault =
                                 FaultInjector::fromEnv());

/** Convenience file-path overload; throws TraceError when the file
 *  cannot be opened. */
std::size_t writeLaunchTrace(const std::string &path,
                             const std::vector<LaunchStats> &launches);

/**
 * Parse a JSON-lines trace produced by writeLaunchTrace. Unknown keys
 * are ignored. A malformed or truncated record throws TraceError
 * carrying its 1-based line number — unless @p lenient is set, in
 * which case bad records are skipped (counted into @p skipped when
 * non-null) and a single warning summarizes them. Only the replayable
 * fields are restored: kernel descriptor, launch geometry, instruction
 * counts, memory traffic and timing.
 */
std::vector<LaunchStats> readLaunchTrace(std::istream &in,
                                         bool lenient = false,
                                         std::size_t *skipped = nullptr);

/** Convenience file-path overload; throws TraceError when the file
 *  cannot be opened. */
std::vector<LaunchStats> readLaunchTrace(const std::string &path,
                                         bool lenient = false,
                                         std::size_t *skipped = nullptr);

/**
 * What-if retiming: re-evaluate the timing model for a (possibly
 * loaded-from-trace) launch under a different device configuration,
 * keeping the instruction counts and memory traffic fixed. This is the
 * trace-replay projection workflow: capture once, explore machine
 * configurations offline. Cache-sensitive workloads carry their
 * recorded traffic, so projections across very different cache sizes
 * are approximate (documented in DESIGN.md).
 */
LaunchStats retimeLaunch(const DeviceConfig &cfg, LaunchStats launch);

/** Retime a whole trace; returns the new total seconds. */
double retimeTrace(const DeviceConfig &cfg,
                   std::vector<LaunchStats> &launches);

} // namespace cactus::gpu

#endif // CACTUS_GPU_TRACE_HH
