/**
 * @file
 * Launch-trace export and import. The Cactus paper's future work plans
 * "instruction traces compatible with state-of-the-art GPU simulators
 * so that researchers can simulate Cactus workloads without requiring
 * access to a real GPU device"; this module provides exactly that for
 * the simulated runs: every kernel launch is serialized as one
 * JSON-lines record carrying the launch geometry, the per-class warp
 * instruction counts, the memory-hierarchy traffic and the timing, and
 * can be re-loaded for replay-style analysis without re-executing the
 * workload.
 */

#ifndef CACTUS_GPU_TRACE_HH
#define CACTUS_GPU_TRACE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "gpu/config.hh"
#include "gpu/metrics.hh"

namespace cactus::gpu {

/**
 * Serialize launches as JSON lines (one object per launch).
 * @return Number of records written.
 */
std::size_t writeLaunchTrace(std::ostream &out,
                             const std::vector<LaunchStats> &launches);

/** Convenience file-path overload; fatal on I/O failure. */
std::size_t writeLaunchTrace(const std::string &path,
                             const std::vector<LaunchStats> &launches);

/**
 * Parse a JSON-lines trace produced by writeLaunchTrace. Unknown keys
 * are ignored; malformed lines are fatal (a trace is machine-written).
 * Only the replayable fields are restored: kernel descriptor, launch
 * geometry, instruction counts, memory traffic and timing.
 */
std::vector<LaunchStats> readLaunchTrace(std::istream &in);

/** Convenience file-path overload; fatal on I/O failure. */
std::vector<LaunchStats> readLaunchTrace(const std::string &path);

/**
 * What-if retiming: re-evaluate the timing model for a (possibly
 * loaded-from-trace) launch under a different device configuration,
 * keeping the instruction counts and memory traffic fixed. This is the
 * trace-replay projection workflow: capture once, explore machine
 * configurations offline. Cache-sensitive workloads carry their
 * recorded traffic, so projections across very different cache sizes
 * are approximate (documented in DESIGN.md).
 */
LaunchStats retimeLaunch(const DeviceConfig &cfg, LaunchStats launch);

/** Retime a whole trace; returns the new total seconds. */
double retimeTrace(const DeviceConfig &cfg,
                   std::vector<LaunchStats> &launches);

} // namespace cactus::gpu

#endif // CACTUS_GPU_TRACE_HH
