#include "gpu/cache.hh"

#include <bit>

#include "common/logging.hh"

namespace cactus::gpu {

namespace {

int
log2Exact(int v)
{
    if (v <= 0 || (v & (v - 1)) != 0)
        panic("cache geometry must be a power of two, got ", v);
    return std::countr_zero(static_cast<unsigned>(v));
}

} // namespace

SectorCache::SectorCache(int size_bytes, int assoc, int line_bytes,
                         int sector_bytes)
    : assoc_(assoc), lineBytes_(line_bytes), sectorBytes_(sector_bytes),
      sectorsPerLine_(line_bytes / sector_bytes),
      numSets_(size_bytes / (line_bytes * assoc)),
      lineShift_(log2Exact(line_bytes)),
      sectorShift_(log2Exact(sector_bytes))
{
    if (assoc <= 0 || size_bytes < line_bytes * assoc)
        fatal("invalid cache geometry: size=", size_bytes,
              " assoc=", assoc, " line=", line_bytes);
    if (line_bytes % sector_bytes != 0)
        fatal("line size must be a multiple of the sector size");
    if (numSets_ == 0)
        numSets_ = 1;
    // Round set count down to a power of two for cheap indexing.
    numSets_ = static_cast<int>(
        std::bit_floor(static_cast<unsigned>(numSets_)));
    ways_.resize(static_cast<std::size_t>(numSets_) * assoc_);
}

CacheOutcome
SectorCache::access(std::uint64_t addr, bool is_write)
{
    ++stats_.accesses;
    ++stamp_;

    const std::uint64_t line_addr = addr >> lineShift_;
    const int sector =
        static_cast<int>((addr >> sectorShift_) &
                         (sectorsPerLine_ - 1));
    const std::uint32_t sector_bit = 1u << sector;
    const int set = static_cast<int>(line_addr & (numSets_ - 1));
    Way *base = &ways_[static_cast<std::size_t>(set) * assoc_];

    // Lookup.
    for (int w = 0; w < assoc_; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == line_addr) {
            way.lruStamp = stamp_;
            if (is_write)
                way.dirty = true;
            if (way.sectorValid & sector_bit) {
                ++stats_.hits;
                return CacheOutcome::Hit;
            }
            way.sectorValid |= sector_bit;
            ++stats_.sectorMisses;
            return CacheOutcome::SectorMiss;
        }
    }

    // Miss: evict the LRU way.
    Way *victim = base;
    for (int w = 1; w < assoc_; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lruStamp < victim->lruStamp)
            victim = &base[w];
    }
    if (victim->valid && victim->dirty) {
        stats_.writebackSectors += static_cast<std::uint64_t>(
            std::popcount(victim->sectorValid));
    }
    victim->valid = true;
    victim->tag = line_addr;
    victim->sectorValid = sector_bit;
    victim->dirty = is_write;
    victim->lruStamp = stamp_;
    ++stats_.lineMisses;
    return CacheOutcome::LineMiss;
}

void
SectorCache::flush()
{
    for (auto &way : ways_) {
        way.valid = false;
        way.sectorValid = 0;
        way.dirty = false;
    }
}

std::uint64_t
SectorCache::drainDirty()
{
    std::uint64_t drained = 0;
    for (auto &way : ways_) {
        if (way.valid && way.dirty) {
            drained += static_cast<std::uint64_t>(
                std::popcount(way.sectorValid));
            way.dirty = false;
        }
    }
    return drained;
}

void
SectorCache::resetStats()
{
    stats_ = CacheStats{};
}

} // namespace cactus::gpu
