#include "gpu/cache.hh"

#include <bit>
#include <vector>

#include "common/logging.hh"

namespace cactus::gpu {

namespace {

int
log2Exact(int v)
{
    if (v <= 0 || (v & (v - 1)) != 0)
        panic("cache geometry must be a power of two, got ", v);
    return std::countr_zero(static_cast<unsigned>(v));
}

} // namespace

SectorCache::SectorCache(int size_bytes, int assoc, int line_bytes,
                         int sector_bytes)
    : assoc_(assoc), lineBytes_(line_bytes), sectorBytes_(sector_bytes),
      sectorsPerLine_(line_bytes / sector_bytes),
      numSets_(size_bytes / (line_bytes * assoc)),
      lineShift_(log2Exact(line_bytes)),
      sectorShift_(log2Exact(sector_bytes))
{
    if (assoc <= 0 || size_bytes < line_bytes * assoc)
        fatal("invalid cache geometry: size=", size_bytes,
              " assoc=", assoc, " line=", line_bytes);
    if (line_bytes % sector_bytes != 0)
        fatal("line size must be a multiple of the sector size");
    if (numSets_ == 0)
        numSets_ = 1;
    // Round set count down to a power of two for cheap indexing.
    numSets_ = static_cast<int>(
        std::bit_floor(static_cast<unsigned>(numSets_)));
    ways_.resize(static_cast<std::size_t>(numSets_) * assoc_);
}

CacheOutcome
SectorCache::access(std::uint64_t addr, bool is_write)
{
    ++stats_.accesses;
    ++stamp_;

    const std::uint64_t line_addr = addr >> lineShift_;
    const int sector =
        static_cast<int>((addr >> sectorShift_) &
                         (sectorsPerLine_ - 1));
    const std::uint32_t sector_bit = 1u << sector;
    const int set = static_cast<int>(line_addr & (numSets_ - 1));
    Way *base = &ways_[static_cast<std::size_t>(set) * assoc_];

    // Lookup.
    for (int w = 0; w < assoc_; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == line_addr) {
            way.lruStamp = stamp_;
            if (is_write)
                way.dirty = true;
            if (way.sectorValid & sector_bit) {
                ++stats_.hits;
                return CacheOutcome::Hit;
            }
            way.sectorValid |= sector_bit;
            ++stats_.sectorMisses;
            return CacheOutcome::SectorMiss;
        }
    }

    // Miss: evict the LRU way.
    Way *victim = base;
    for (int w = 1; w < assoc_; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lruStamp < victim->lruStamp)
            victim = &base[w];
    }
    if (victim->valid && victim->dirty) {
        stats_.writebackSectors += static_cast<std::uint64_t>(
            std::popcount(victim->sectorValid));
    }
    victim->valid = true;
    victim->tag = line_addr;
    victim->sectorValid = sector_bit;
    victim->dirty = is_write;
    victim->lruStamp = stamp_;
    ++stats_.lineMisses;
    return CacheOutcome::LineMiss;
}

void
SectorCache::flush()
{
    for (auto &way : ways_) {
        way.valid = false;
        way.sectorValid = 0;
        way.dirty = false;
    }
}

std::uint64_t
SectorCache::drainDirty()
{
    std::uint64_t drained = 0;
    for (auto &way : ways_) {
        if (way.valid && way.dirty) {
            drained += static_cast<std::uint64_t>(
                std::popcount(way.sectorValid));
            way.dirty = false;
        }
    }
    return drained;
}

void
SectorCache::resetStats()
{
    stats_ = CacheStats{};
}

std::uint64_t
SectorCache::stateDigest(std::uint64_t h) const
{
    // Word-wise multiply fold: this digest runs over every way of
    // every stream buffer and L2 slice at each fully replayed launch
    // boundary, so it must stay cheap relative to the replay itself.
    const auto fold = [&h](std::uint64_t v) {
        h = (h ^ v) * 0x100000001b3ull;
    };
    // Scratch for one set's valid way indices, LRU order.
    std::vector<int> order(static_cast<std::size_t>(assoc_));
    for (int set = 0; set < numSets_; ++set) {
        const Way *base = &ways_[static_cast<std::size_t>(set) * assoc_];
        // Hole positions are behavioral state: the victim scan takes
        // the first invalid way by index before consulting stamps.
        std::uint64_t valid_mask = 0;
        int nvalid = 0;
        for (int w = 0; w < assoc_; ++w) {
            if (base[w].valid) {
                valid_mask |= std::uint64_t{1} << (w & 63);
                order[nvalid++] = w;
            }
        }
        fold(valid_mask);
        // Fold lines in LRU order, not way order. A full set's victim
        // is its LRU line and lookup is fully associative, so which
        // way index holds which line is unobservable — and it does
        // drift: each eviction refills the LRU line at its victim's
        // index, permuting the set launch over launch even once the
        // resident lines and their ranks have converged. Rank order
        // is the canonical form under that permutation; stamps are
        // unique (one global counter), so it is a total order.
        for (int i = 1; i < nvalid; ++i) {
            const int w = order[i];
            int j = i;
            while (j > 0 &&
                   base[order[j - 1]].lruStamp > base[w].lruStamp) {
                order[j] = order[j - 1];
                --j;
            }
            order[j] = w;
        }
        for (int i = 0; i < nvalid; ++i) {
            const Way &way = base[order[i]];
            fold(way.tag);
            fold(way.sectorValid |
                 (static_cast<std::uint64_t>(way.dirty) << 32));
        }
    }
    return h;
}

} // namespace cactus::gpu
