/**
 * @file
 * Warp-level memory coalescer. The 32 lanes of a warp issue one logical
 * memory instruction together; the coalescer merges the per-lane byte
 * ranges into the minimal set of 32-byte sectors, which is exactly the
 * unit the paper's instruction-roofline model counts ("warp instructions
 * per DRAM transaction", 32-byte transactions).
 *
 * The hot path works on flat SoA arenas instead of nested vectors:
 * lanes append into one shared LaneTraceArena buffer with per-lane end
 * offsets, and coalesced instructions land in a TraceArena as spans
 * into one flat sector buffer. Arenas are cleared, never freed, so a
 * device replaying thousands of near-identical launches performs no
 * per-warp allocation once the buffers reach steady-state capacity.
 */

#ifndef CACTUS_GPU_COALESCER_HH
#define CACTUS_GPU_COALESCER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "gpu/types.hh"

namespace cactus::gpu {

/** One coalesced warp-level memory instruction (legacy nested-vector
 *  form, kept for tests and ad-hoc callers; the device's hot path uses
 *  TraceArena spans instead). */
struct CoalescedAccess
{
    /** Distinct sector-aligned addresses touched by the warp. */
    std::vector<std::uint64_t> sectors;
    AccessKind kind = AccessKind::Load;
};

/** One coalesced warp-level memory instruction inside a TraceArena:
 *  a span of the arena's flat sector buffer. */
struct TraceInst
{
    std::uint32_t sectorBegin = 0; ///< Offset into TraceArena::sectors.
    std::uint32_t sectorCount = 0;
    AccessKind kind = AccessKind::Load;
};

/**
 * Flat coalesced-trace storage for one sampled block: every warp-level
 * memory instruction is a TraceInst span into one shared sector
 * buffer. clear() keeps the capacity, so arenas owned by the device
 * stop allocating once a workload's steady-state trace size is
 * reached.
 */
struct TraceArena
{
    std::vector<std::uint64_t> sectors; ///< Flat, instruction-major.
    std::vector<TraceInst> insts;

    void
    clear()
    {
        sectors.clear();
        insts.clear();
    }

    bool empty() const { return insts.empty(); }
};

/**
 * Flat per-lane access storage for the warp in flight. Lanes execute
 * sequentially on one host thread and append to the shared flat
 * buffer; laneEnd() records each lane's end offset, so lane i's
 * accesses occupy [laneEnd[i-1], laneEnd[i]) (from 0 for lane 0).
 */
struct LaneTraceArena
{
    std::vector<MemAccess> accesses; ///< Flat, lane-major.
    std::vector<std::uint32_t> laneEnd;

    /** Start a new warp: drop the previous warp's spans, keep capacity. */
    void
    beginWarp()
    {
        accesses.clear();
        laneEnd.clear();
    }

    /** Close the current lane's span. Call once per lane, in order. */
    void
    endLane()
    {
        laneEnd.push_back(static_cast<std::uint32_t>(accesses.size()));
    }

    int lanes() const { return static_cast<int>(laneEnd.size()); }

    std::uint32_t
    laneBegin(int lane) const
    {
        return lane == 0 ? 0 : laneEnd[lane - 1];
    }
};

/**
 * Reusable per-worker scratch for Coalescer::coalesce: the per-kind
 * lane grouping in flat CSR form (indices into the LaneTraceArena plus
 * per-lane offsets). Cleared per warp, never freed.
 */
class CoalesceScratch
{
  private:
    friend class Coalescer;
    static constexpr int kNumKinds = 4;
    /** Per kind: indices into LaneTraceArena::accesses, lane-major. */
    std::array<std::vector<std::uint32_t>, kNumKinds> idx;
    /** Per kind: laneOff[l]..laneOff[l+1] bounds lane l's entries. */
    std::array<std::vector<std::uint32_t>, kNumKinds> laneOff;
};

/**
 * Groups the sampled per-lane accesses of one warp into warp-level memory
 * instructions and coalesces each into sectors.
 *
 * Lanes record an ordered access list; the k-th access of every lane is
 * assumed to belong to the same warp-level instruction (exact under
 * converged control flow, a standard approximation under divergence).
 */
class Coalescer
{
  public:
    explicit Coalescer(int sector_bytes) : sectorBytes_(sector_bytes) {}

    /**
     * Coalesce one warp's sampled accesses, appending the warp's
     * instructions to @p out. @p scratch is caller-owned reusable
     * state; the call performs no allocation once the arenas' and the
     * scratch's capacities have grown to the workload's steady state.
     */
    void coalesce(const LaneTraceArena &lanes, CoalesceScratch &scratch,
                  TraceArena &out) const;

    /**
     * Legacy nested-vector entry point (tests, ad-hoc callers): builds
     * arenas internally and converts the result.
     * @param lane_accesses Per-lane ordered access lists (up to 32 lanes).
     * @return One CoalescedAccess per warp-level memory instruction.
     */
    std::vector<CoalescedAccess>
    coalesce(const std::vector<std::vector<MemAccess>> &lane_accesses) const;

  private:
    int sectorBytes_;
};

} // namespace cactus::gpu

#endif // CACTUS_GPU_COALESCER_HH
