/**
 * @file
 * Warp-level memory coalescer. The 32 lanes of a warp issue one logical
 * memory instruction together; the coalescer merges the per-lane byte
 * ranges into the minimal set of 32-byte sectors, which is exactly the
 * unit the paper's instruction-roofline model counts ("warp instructions
 * per DRAM transaction", 32-byte transactions).
 */

#ifndef CACTUS_GPU_COALESCER_HH
#define CACTUS_GPU_COALESCER_HH

#include <cstdint>
#include <vector>

#include "gpu/types.hh"

namespace cactus::gpu {

/** One coalesced warp-level memory instruction. */
struct CoalescedAccess
{
    /** Distinct sector-aligned addresses touched by the warp. */
    std::vector<std::uint64_t> sectors;
    AccessKind kind = AccessKind::Load;
};

/**
 * Groups the sampled per-lane accesses of one warp into warp-level memory
 * instructions and coalesces each into sectors.
 *
 * Lanes record an ordered access list; the k-th access of every lane is
 * assumed to belong to the same warp-level instruction (exact under
 * converged control flow, a standard approximation under divergence).
 */
class Coalescer
{
  public:
    explicit Coalescer(int sector_bytes) : sectorBytes_(sector_bytes) {}

    /**
     * Coalesce one warp's sampled accesses.
     * @param lane_accesses Per-lane ordered access lists (up to 32 lanes).
     * @return One CoalescedAccess per warp-level memory instruction.
     */
    std::vector<CoalescedAccess>
    coalesce(const std::vector<std::vector<MemAccess>> &lane_accesses) const;

  private:
    int sectorBytes_;
};

} // namespace cactus::gpu

#endif // CACTUS_GPU_COALESCER_HH
