/**
 * @file
 * Nsight-Compute-style profile aggregation: collapse the per-launch
 * records of a device into one KernelProfile per kernel name, with raw
 * quantities summed and ratio metrics time-weighted. The dominant-kernel
 * definition of the paper (rank by r_i x t_i, i.e., total time across all
 * invocations) falls out directly from the aggregation.
 */

#ifndef CACTUS_GPU_PROFILER_HH
#define CACTUS_GPU_PROFILER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gpu/config.hh"
#include "gpu/metrics.hh"

namespace cactus::gpu {

/** Aggregated statistics for one kernel across all its invocations. */
struct KernelProfile
{
    std::string name;
    std::uint64_t invocations = 0;
    double seconds = 0;              ///< Total GPU time (r_i x t_i).
    std::uint64_t warpInsts = 0;     ///< Total dynamic warp instructions.
    std::uint64_t dramReadSectors = 0;
    std::uint64_t dramWriteSectors = 0;
    std::uint64_t l1Accesses = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;

    /** Time-weighted average metrics; gips/intIntensity recomputed from
     *  the summed raw quantities. */
    KernelMetrics metrics;

    /** Warp instructions per invocation. */
    double
    warpInstsPerInvocation() const
    {
        return invocations ? static_cast<double>(warpInsts) / invocations
                           : 0.0;
    }
};

/**
 * Aggregate a launch history into per-kernel profiles, sorted by
 * descending total GPU time (the paper's dominance order).
 */
std::vector<KernelProfile>
aggregateLaunches(const std::vector<LaunchStats> &launches,
                  const DeviceConfig &cfg);

} // namespace cactus::gpu

#endif // CACTUS_GPU_PROFILER_HH
