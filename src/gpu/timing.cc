#include "gpu/timing.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace cactus::gpu {

namespace {

/** Cost in cycles charged per barrier warp-instruction. */
constexpr double kSyncCostCycles = 25.0;

/** Cap reported instruction intensity for kernels with no DRAM traffic. */
constexpr double kMaxIntensity = 1e6;

} // namespace

TimingOutputs
evaluateTiming(const DeviceConfig &cfg, const TimingInputs &in)
{
    TimingOutputs out;
    KernelTiming &t = out.timing;
    KernelMetrics &m = out.metrics;

    const std::uint64_t w_total = in.counts.total();
    if (in.numBlocks == 0)
        panic("timing model invoked with zero blocks");

    // --- Work distribution across SMs ----------------------------------
    // The critical path is the busiest SM; blocks distribute round-robin.
    const std::uint64_t blocks_busiest =
        (in.numBlocks + cfg.numSms - 1) / cfg.numSms;
    const double sm_share =
        static_cast<double>(blocks_busiest) / in.numBlocks;
    const double sm_efficiency =
        static_cast<double>(in.numBlocks) /
        (static_cast<double>(blocks_busiest) * cfg.numSms);

    const double w_sm = static_cast<double>(w_total) * sm_share;
    const double sched = cfg.warpSchedulersPerSm;

    // --- Issue / pipe component ----------------------------------------
    t.pureIssueCycles = w_sm / sched;
    auto classCycles = [&](OpClass cls, double per_cycle) {
        return static_cast<double>(in.counts.get(cls)) * sm_share /
               per_cycle;
    };
    double pipe = t.pureIssueCycles;
    pipe = std::max(pipe, classCycles(OpClass::FP32, cfg.fp32PerCycle));
    pipe = std::max(pipe, classCycles(OpClass::INT, cfg.intPerCycle));
    pipe = std::max(pipe, classCycles(OpClass::SFU, cfg.sfuPerCycle));
    const double ldst_cycles =
        classCycles(OpClass::LOAD, cfg.ldstPerCycle) +
        classCycles(OpClass::STORE, cfg.ldstPerCycle) +
        classCycles(OpClass::ATOMIC, cfg.ldstPerCycle);
    pipe = std::max(pipe, ldst_cycles);
    pipe = std::max(pipe, classCycles(OpClass::SHARED, cfg.sharedPerCycle));
    t.issueCycles = pipe;

    // --- Bandwidth components (device-global resources) ----------------
    const double dram_bytes =
        static_cast<double>(in.dramReadSectors + in.dramWriteSectors) *
        cfg.sectorBytes;
    t.dramCycles = dram_bytes / cfg.dramBytesPerCycle();
    // The L2's aggregate bandwidth comes from its address-interleaved
    // slices; when the hash is uneven, the busiest slice bounds the
    // transfer (with a perfectly even split this reduces to the
    // aggregate formula).
    double l2_bytes =
        static_cast<double>(in.l2Accesses) * cfg.sectorBytes;
    if (in.busiestL2SliceAccesses > 0) {
        const double slice_bound =
            static_cast<double>(in.busiestL2SliceAccesses) *
            cfg.resolvedL2Slices() * cfg.sectorBytes;
        l2_bytes = std::max(l2_bytes, slice_bound);
    }
    t.l2Cycles = l2_bytes / cfg.l2BytesPerCycle;

    // --- Latency-exposure component -------------------------------------
    // Average latency per memory instruction, weighted by where it hits.
    const double l1_hit = in.l1Accesses
        ? 1.0 - static_cast<double>(in.l1Misses) / in.l1Accesses : 1.0;
    const double l2_hit = in.l2Accesses
        ? 1.0 - static_cast<double>(in.l2Misses) / in.l2Accesses : 1.0;
    const double avg_lat =
        l1_hit * cfg.l1LatencyCycles +
        (1.0 - l1_hit) * (l2_hit * cfg.l2LatencyCycles +
                          (1.0 - l2_hit) * cfg.dramLatencyCycles);

    // Resident warps on the busiest SM may be limited by the launch size.
    const double warps_available =
        static_cast<double>(blocks_busiest) * in.warpsPerBlock;
    const double resident = std::max(
        1.0, std::min(static_cast<double>(in.residentWarpsPerSm),
                      warps_available));
    const double warps_per_sched = std::max(1.0, resident / sched);
    const double w_mem_sm =
        static_cast<double>(in.counts.memInsts()) * sm_share;
    t.latencyCycles = (w_mem_sm / sched) * avg_lat /
                      (warps_per_sched * std::max(1.0, in.mlpPerWarp));

    // --- Combine ---------------------------------------------------------
    const double mem_bound =
        std::max({t.dramCycles, t.l2Cycles, t.latencyCycles});
    t.execCycles = std::max({t.issueCycles, mem_bound, 1.0});
    t.totalCycles = t.execCycles + cfg.launchOverheadCycles;
    t.seconds = t.totalCycles / cfg.clockHz();

    // --- Metrics ----------------------------------------------------------
    m.smEfficiency = sm_efficiency;
    m.warpOccupancy = resident * sm_efficiency;
    m.l1HitRate = l1_hit;
    m.l2HitRate = l2_hit;
    m.dramReadBps = static_cast<double>(in.dramReadSectors) *
                    cfg.sectorBytes / t.seconds;
    m.ldstUtilization = std::min(1.0, ldst_cycles / t.execCycles);
    m.spUtilization = std::min(
        1.0, classCycles(OpClass::FP32, cfg.fp32PerCycle) / t.execCycles);
    m.fracBranch = w_total
        ? static_cast<double>(in.counts.get(OpClass::BRANCH)) / w_total
        : 0.0;
    m.fracLdst = w_total
        ? static_cast<double>(in.counts.memInsts()) / w_total : 0.0;

    // Stall attribution. These are independent ratios in [0, 1], in the
    // spirit of profiler stall-reason breakdowns; they need not sum to 1.
    m.memStall = std::max(0.0, mem_bound - t.issueCycles) / t.execCycles;
    m.pipeStall = (t.issueCycles - t.pureIssueCycles) / t.execCycles;
    const double sync_cycles =
        static_cast<double>(in.counts.get(OpClass::SYNC)) * sm_share *
        kSyncCostCycles / sched;
    m.syncStall = std::min(1.0, sync_cycles / t.execCycles);
    // Dependency stalls shrink as more warps are available to hide them.
    const double dep_factor = 1.0 / std::max(1.0, std::sqrt(2.0 *
        warps_per_sched));
    m.execStall = std::min(1.0, t.pureIssueCycles * dep_factor /
        t.execCycles);

    // Roofline coordinates.
    m.gips = static_cast<double>(w_total) / t.seconds / 1e9;
    const std::uint64_t dram_txn =
        in.dramReadSectors + in.dramWriteSectors;
    m.instIntensity = dram_txn
        ? static_cast<double>(w_total) / dram_txn
        : kMaxIntensity;
    m.instIntensity = std::min(m.instIntensity, kMaxIntensity);
    return out;
}

} // namespace cactus::gpu
